// Quickstart: compile a loop at every transformation level and watch the
// cycle counts drop.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The pipeline mirrors the paper: DSL source -> conventional optimizations
// (Conv) -> loop unrolling (Lev1) -> register renaming (Lev2) -> operation
// combining + strength reduction + tree height reduction (Lev3) ->
// accumulator/induction/search variable expansion (Lev4) -> superblock
// scheduling -> execution-driven simulation.
#include <cstdio>

#include "frontend/compile.hpp"
#include "ir/printer.hpp"
#include "machine/machine.hpp"
#include "sim/simulator.hpp"
#include "trans/level.hpp"

int main() {
  using namespace ilp;

  // A dot product: the classic accumulator recurrence (paper Figure 3).
  const char* source = R"(
    program quickstart
    array A[512] fp
    array B[512] fp
    scalar sum fp out
    loop i = 0 to 511 {
      sum = sum + A[i] * B[i];
    }
  )";

  std::printf("source:\n%s\n", source);
  const MachineModel machine = MachineModel::issue(8);
  std::printf("machine: %s\n\n", machine.describe().c_str());

  std::uint64_t base = 0;
  for (OptLevel level : {OptLevel::Conv, OptLevel::Lev1, OptLevel::Lev2, OptLevel::Lev3,
                         OptLevel::Lev4}) {
    DiagnosticEngine diags;
    auto compiled = dsl::compile(source, diags);
    if (!compiled) {
      std::fprintf(stderr, "compile error:\n%s", diags.to_string().c_str());
      return 1;
    }
    compile_at_level(compiled->fn, level, machine);

    const RunOutcome run = run_seeded(compiled->fn, machine);
    if (!run.result.ok) {
      std::fprintf(stderr, "simulation failed: %s\n", run.result.error.c_str());
      return 1;
    }
    if (level == OptLevel::Conv) base = run.result.cycles;
    std::printf("%-5s  cycles=%8llu   speedup over Conv: %5.2fx   (sum = %.6f)\n",
                level_name(level), static_cast<unsigned long long>(run.result.cycles),
                static_cast<double>(base) / static_cast<double>(run.result.cycles),
                run.result.regs.get_fp(compiled->fn.live_out()[0].id));
  }

  std::printf(
      "\nLev4's accumulator + induction variable expansion break the sum's\n"
      "recurrence (paper Section 2, Figures 2-5); rerun with issue(2) in the\n"
      "source to see the gains shrink on a narrower machine.\n");
  return 0;
}
