// Pipeline inspection: print the IR of a loop after each stage so the
// transformations can be read directly — the same walk-through the paper's
// Figures 1, 3, and 5 present.
#include <cstdio>

#include "frontend/compile.hpp"
#include "ir/printer.hpp"
#include "machine/machine.hpp"
#include "opt/pipeline.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/scheduler.hpp"
#include "trans/accexpand.hpp"
#include "trans/indexpand.hpp"
#include "trans/rename.hpp"
#include "trans/unroll.hpp"

namespace {

void show(const char* stage, const ilp::Function& fn) {
  const ilp::RegUsage regs = ilp::measure_register_usage(fn);
  std::printf("---- %s (%zu instructions, %d int + %d fp registers) ----\n%s\n", stage,
              fn.num_insts(), regs.int_regs, regs.fp_regs, ilp::to_string(fn).c_str());
}

}  // namespace

int main() {
  using namespace ilp;

  const char* source = R"(
    program walkthrough
    array A[64] fp
    array B[64] fp
    scalar sum fp out
    loop k = 0 to 63 {
      sum = sum + A[k] * B[k];
    }
  )";

  DiagnosticEngine diags;
  auto compiled = dsl::compile(source, diags);
  if (!compiled) {
    std::fprintf(stderr, "%s", diags.to_string().c_str());
    return 1;
  }
  Function& fn = compiled->fn;
  show("naive lowering", fn);

  run_conventional_optimizations(fn);
  show("conventional optimizations (Conv): pointer-bumping form", fn);

  UnrollOptions unroll_opts;
  unroll_opts.max_factor = 4;  // small factor keeps the listing readable
  unroll_loops(fn, unroll_opts);
  show("after 4x preconditioned unrolling (Lev1)", fn);

  accumulator_expansion(fn);
  show("after accumulator variable expansion (paper Figure 2)", fn);

  induction_expansion(fn);
  show("after induction variable expansion (paper Figure 4)", fn);

  rename_registers(fn);
  show("after register renaming", fn);

  schedule_function(fn, MachineModel::issue(8));
  show("after superblock scheduling for issue-8", fn);

  return 0;
}
