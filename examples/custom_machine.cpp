// Custom machine study: retune the latency table (paper Table 1) and watch
// which transformation pays.  Here: a machine with slow integer multiply and
// divide (as in early microprocessors), where strength reduction — the
// paper's least effective transformation under Table 1's short latencies —
// becomes significant, exactly as Section 3.2 predicts ("with a more
// restricted processor model, strength reduction is expected to be a more
// effective transformation").
#include <cstdio>

#include "frontend/compile.hpp"
#include "machine/machine.hpp"
#include "sim/simulator.hpp"
#include "trans/level.hpp"

namespace {

std::uint64_t run_once(const char* source, const ilp::TransformSet& set,
                       const ilp::MachineModel& m) {
  using namespace ilp;
  DiagnosticEngine diags;
  auto compiled = dsl::compile(source, diags);
  if (!compiled) {
    std::fprintf(stderr, "%s", diags.to_string().c_str());
    std::exit(1);
  }
  compile_with_transforms(compiled->fn, set, m);
  const RunOutcome run = run_seeded(compiled->fn, m);
  if (!run.result.ok) {
    std::fprintf(stderr, "simulation failed: %s\n", run.result.error.c_str());
    std::exit(1);
  }
  return run.result.cycles;
}

}  // namespace

int main() {
  using namespace ilp;

  // Integer-heavy kernel: scaling, averaging, and histogram-style binning.
  const char* source = R"(
    program intkernel
    array K[512] int
    array OUT1[512] int
    array OUT2[512] int
    scalar s int out
    loop i = 0 to 511 {
      OUT1[i] = K[i] * 36;
      OUT2[i] = K[i] / 10;
      s = s + K[i] % 8;
    }
  )";

  MachineModel table1 = MachineModel::issue(8);  // the paper's latencies
  MachineModel slow = MachineModel::issue(8);
  slow.lat_int_mul = 12;  // e.g. a multi-cycle iterative multiplier
  slow.lat_int_div = 40;  // iterative divider

  TransformSet with_sr = TransformSet::for_level(OptLevel::Lev4);
  TransformSet without_sr = with_sr;
  without_sr.strength = false;

  std::printf("integer kernel, issue-8, Lev4 pipeline\n\n");
  std::printf("%-34s %14s %14s %9s\n", "machine", "no strength-red", "strength-red",
              "gain");
  for (const auto& [name, m] :
       {std::pair<const char*, MachineModel>{"Table 1 (mul=3, div=10)", table1},
        std::pair<const char*, MachineModel>{"restricted (mul=12, div=40)", slow}}) {
    const std::uint64_t a = run_once(source, without_sr, m);
    const std::uint64_t b = run_once(source, with_sr, m);
    std::printf("%-34s %14llu %14llu %8.2fx\n", name, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b),
                static_cast<double>(a) / static_cast<double>(b));
  }
  return 0;
}
