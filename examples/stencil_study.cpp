// Domain scenario: a 1-D stencil sweep (tomcatv-style SOR smoothing) studied
// across issue widths — the paper's central question "does widening the
// processor help without the ILP transformations?" answered on one kernel.
#include <cstdio>

#include "frontend/compile.hpp"
#include "machine/machine.hpp"
#include "sim/simulator.hpp"
#include "support/strings.hpp"
#include "trans/level.hpp"

int main() {
  using namespace ilp;

  // Jacobi-style smoother: reads the old grid, writes the new one (DOALL),
  // plus a residual reduction that makes the nest serial overall.
  const char* source = R"(
    program stencil
    array U[514] fp
    array V[514] fp
    array F[514] fp
    scalar resid fp out
    loop sweep = 0 to 2 {
      loop i = 1 to 512 {
        V[i] = (U[i-1] + U[i+1]) * 0.5 + F[i] * 0.25;
        resid = resid + (V[i] - U[i]);
      }
    }
  )";

  std::printf("1-D stencil sweep with residual reduction\n\n");
  std::printf("%-6s", "width");
  for (OptLevel l : {OptLevel::Conv, OptLevel::Lev2, OptLevel::Lev4})
    std::printf("  %10s", level_name(l));
  std::printf("   Lev4/Conv\n");

  for (int width : {1, 2, 4, 8, 16}) {
    const MachineModel m = MachineModel::issue(width);
    std::printf("%-6d", width);
    std::uint64_t conv = 0;
    std::uint64_t lev4 = 0;
    for (OptLevel level : {OptLevel::Conv, OptLevel::Lev2, OptLevel::Lev4}) {
      DiagnosticEngine diags;
      auto compiled = dsl::compile(source, diags);
      if (!compiled) {
        std::fprintf(stderr, "%s", diags.to_string().c_str());
        return 1;
      }
      compile_at_level(compiled->fn, level, m);
      const RunOutcome run = run_seeded(compiled->fn, m);
      if (!run.result.ok) {
        std::fprintf(stderr, "simulation failed: %s\n", run.result.error.c_str());
        return 1;
      }
      std::printf("  %10llu", static_cast<unsigned long long>(run.result.cycles));
      if (level == OptLevel::Conv) conv = run.result.cycles;
      if (level == OptLevel::Lev4) lev4 = run.result.cycles;
    }
    std::printf("   %8.2fx\n", static_cast<double>(conv) / static_cast<double>(lev4));
  }

  std::printf(
      "\nReading the table: at width 1 the transformations barely matter; as\n"
      "the machine widens, Conv cycles stop improving (the serial residual\n"
      "chain binds) while Lev4 keeps scaling — the paper's Section 1 claim\n"
      "that 'increasing execution resources yields little performance\n"
      "improvement unless the ILP transformations are applied'.\n");
  return 0;
}
