file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_15_nondoall.dir/bench_fig14_15_nondoall.cpp.o"
  "CMakeFiles/bench_fig14_15_nondoall.dir/bench_fig14_15_nondoall.cpp.o.d"
  "bench_fig14_15_nondoall"
  "bench_fig14_15_nondoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15_nondoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
