# Empty dependencies file for bench_fig9_issue4.
# This may be replaced when dependencies are built.
