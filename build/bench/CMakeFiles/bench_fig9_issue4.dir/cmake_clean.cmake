file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_issue4.dir/bench_fig9_issue4.cpp.o"
  "CMakeFiles/bench_fig9_issue4.dir/bench_fig9_issue4.cpp.o.d"
  "bench_fig9_issue4"
  "bench_fig9_issue4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_issue4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
