file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_issue8.dir/bench_fig10_issue8.cpp.o"
  "CMakeFiles/bench_fig10_issue8.dir/bench_fig10_issue8.cpp.o.d"
  "bench_fig10_issue8"
  "bench_fig10_issue8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_issue8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
