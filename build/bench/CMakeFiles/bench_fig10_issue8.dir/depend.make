# Empty dependencies file for bench_fig10_issue8.
# This may be replaced when dependencies are built.
