file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_13_doall.dir/bench_fig12_13_doall.cpp.o"
  "CMakeFiles/bench_fig12_13_doall.dir/bench_fig12_13_doall.cpp.o.d"
  "bench_fig12_13_doall"
  "bench_fig12_13_doall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_13_doall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
