# Empty dependencies file for bench_fig12_13_doall.
# This may be replaced when dependencies are built.
