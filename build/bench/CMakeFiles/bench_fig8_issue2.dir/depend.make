# Empty dependencies file for bench_fig8_issue2.
# This may be replaced when dependencies are built.
