# Empty dependencies file for bench_fig11_regs.
# This may be replaced when dependencies are built.
