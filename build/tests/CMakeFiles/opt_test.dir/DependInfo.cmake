
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/opt/constprop_test.cpp" "tests/CMakeFiles/opt_test.dir/opt/constprop_test.cpp.o" "gcc" "tests/CMakeFiles/opt_test.dir/opt/constprop_test.cpp.o.d"
  "/root/repo/tests/opt/cse_dce_test.cpp" "tests/CMakeFiles/opt_test.dir/opt/cse_dce_test.cpp.o" "gcc" "tests/CMakeFiles/opt_test.dir/opt/cse_dce_test.cpp.o.d"
  "/root/repo/tests/opt/licm_ivopt_test.cpp" "tests/CMakeFiles/opt_test.dir/opt/licm_ivopt_test.cpp.o" "gcc" "tests/CMakeFiles/opt_test.dir/opt/licm_ivopt_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/ilp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ilp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ilp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/trans/CMakeFiles/ilp_trans.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ilp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/ilp_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ilp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ilp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ilp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ilp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ilp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ilp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
