file(REMOVE_RECURSE
  "CMakeFiles/trans_test.dir/trans/combine_test.cpp.o"
  "CMakeFiles/trans_test.dir/trans/combine_test.cpp.o.d"
  "CMakeFiles/trans_test.dir/trans/expand_test.cpp.o"
  "CMakeFiles/trans_test.dir/trans/expand_test.cpp.o.d"
  "CMakeFiles/trans_test.dir/trans/level_test.cpp.o"
  "CMakeFiles/trans_test.dir/trans/level_test.cpp.o.d"
  "CMakeFiles/trans_test.dir/trans/rename_test.cpp.o"
  "CMakeFiles/trans_test.dir/trans/rename_test.cpp.o.d"
  "CMakeFiles/trans_test.dir/trans/strengthred_test.cpp.o"
  "CMakeFiles/trans_test.dir/trans/strengthred_test.cpp.o.d"
  "CMakeFiles/trans_test.dir/trans/swp_test.cpp.o"
  "CMakeFiles/trans_test.dir/trans/swp_test.cpp.o.d"
  "CMakeFiles/trans_test.dir/trans/treeheight_test.cpp.o"
  "CMakeFiles/trans_test.dir/trans/treeheight_test.cpp.o.d"
  "CMakeFiles/trans_test.dir/trans/unroll_test.cpp.o"
  "CMakeFiles/trans_test.dir/trans/unroll_test.cpp.o.d"
  "trans_test"
  "trans_test.pdb"
  "trans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
