# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/regalloc_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/param_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/trans_test[1]_include.cmake")
