file(REMOVE_RECURSE
  "libilp_support.a"
)
