# Empty compiler generated dependencies file for ilp_support.
# This may be replaced when dependencies are built.
