file(REMOVE_RECURSE
  "CMakeFiles/ilp_support.dir/bitvector.cpp.o"
  "CMakeFiles/ilp_support.dir/bitvector.cpp.o.d"
  "CMakeFiles/ilp_support.dir/diagnostics.cpp.o"
  "CMakeFiles/ilp_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/ilp_support.dir/strings.cpp.o"
  "CMakeFiles/ilp_support.dir/strings.cpp.o.d"
  "libilp_support.a"
  "libilp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
