# Empty compiler generated dependencies file for ilp_ir.
# This may be replaced when dependencies are built.
