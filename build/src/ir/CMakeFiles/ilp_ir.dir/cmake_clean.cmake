file(REMOVE_RECURSE
  "CMakeFiles/ilp_ir.dir/builder.cpp.o"
  "CMakeFiles/ilp_ir.dir/builder.cpp.o.d"
  "CMakeFiles/ilp_ir.dir/function.cpp.o"
  "CMakeFiles/ilp_ir.dir/function.cpp.o.d"
  "CMakeFiles/ilp_ir.dir/opcode.cpp.o"
  "CMakeFiles/ilp_ir.dir/opcode.cpp.o.d"
  "CMakeFiles/ilp_ir.dir/printer.cpp.o"
  "CMakeFiles/ilp_ir.dir/printer.cpp.o.d"
  "CMakeFiles/ilp_ir.dir/verifier.cpp.o"
  "CMakeFiles/ilp_ir.dir/verifier.cpp.o.d"
  "libilp_ir.a"
  "libilp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
