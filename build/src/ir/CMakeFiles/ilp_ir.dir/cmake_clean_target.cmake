file(REMOVE_RECURSE
  "libilp_ir.a"
)
