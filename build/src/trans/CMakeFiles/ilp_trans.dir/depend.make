# Empty dependencies file for ilp_trans.
# This may be replaced when dependencies are built.
