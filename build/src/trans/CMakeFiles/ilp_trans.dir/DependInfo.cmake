
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trans/accexpand.cpp" "src/trans/CMakeFiles/ilp_trans.dir/accexpand.cpp.o" "gcc" "src/trans/CMakeFiles/ilp_trans.dir/accexpand.cpp.o.d"
  "/root/repo/src/trans/combine.cpp" "src/trans/CMakeFiles/ilp_trans.dir/combine.cpp.o" "gcc" "src/trans/CMakeFiles/ilp_trans.dir/combine.cpp.o.d"
  "/root/repo/src/trans/expand_common.cpp" "src/trans/CMakeFiles/ilp_trans.dir/expand_common.cpp.o" "gcc" "src/trans/CMakeFiles/ilp_trans.dir/expand_common.cpp.o.d"
  "/root/repo/src/trans/indexpand.cpp" "src/trans/CMakeFiles/ilp_trans.dir/indexpand.cpp.o" "gcc" "src/trans/CMakeFiles/ilp_trans.dir/indexpand.cpp.o.d"
  "/root/repo/src/trans/level.cpp" "src/trans/CMakeFiles/ilp_trans.dir/level.cpp.o" "gcc" "src/trans/CMakeFiles/ilp_trans.dir/level.cpp.o.d"
  "/root/repo/src/trans/rename.cpp" "src/trans/CMakeFiles/ilp_trans.dir/rename.cpp.o" "gcc" "src/trans/CMakeFiles/ilp_trans.dir/rename.cpp.o.d"
  "/root/repo/src/trans/searchexpand.cpp" "src/trans/CMakeFiles/ilp_trans.dir/searchexpand.cpp.o" "gcc" "src/trans/CMakeFiles/ilp_trans.dir/searchexpand.cpp.o.d"
  "/root/repo/src/trans/strengthred.cpp" "src/trans/CMakeFiles/ilp_trans.dir/strengthred.cpp.o" "gcc" "src/trans/CMakeFiles/ilp_trans.dir/strengthred.cpp.o.d"
  "/root/repo/src/trans/swp.cpp" "src/trans/CMakeFiles/ilp_trans.dir/swp.cpp.o" "gcc" "src/trans/CMakeFiles/ilp_trans.dir/swp.cpp.o.d"
  "/root/repo/src/trans/treeheight.cpp" "src/trans/CMakeFiles/ilp_trans.dir/treeheight.cpp.o" "gcc" "src/trans/CMakeFiles/ilp_trans.dir/treeheight.cpp.o.d"
  "/root/repo/src/trans/tripcount.cpp" "src/trans/CMakeFiles/ilp_trans.dir/tripcount.cpp.o" "gcc" "src/trans/CMakeFiles/ilp_trans.dir/tripcount.cpp.o.d"
  "/root/repo/src/trans/unroll.cpp" "src/trans/CMakeFiles/ilp_trans.dir/unroll.cpp.o" "gcc" "src/trans/CMakeFiles/ilp_trans.dir/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/ilp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ilp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ilp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ilp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ilp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ilp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
