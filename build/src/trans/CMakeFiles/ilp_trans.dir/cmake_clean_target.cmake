file(REMOVE_RECURSE
  "libilp_trans.a"
)
