file(REMOVE_RECURSE
  "CMakeFiles/ilp_trans.dir/accexpand.cpp.o"
  "CMakeFiles/ilp_trans.dir/accexpand.cpp.o.d"
  "CMakeFiles/ilp_trans.dir/combine.cpp.o"
  "CMakeFiles/ilp_trans.dir/combine.cpp.o.d"
  "CMakeFiles/ilp_trans.dir/expand_common.cpp.o"
  "CMakeFiles/ilp_trans.dir/expand_common.cpp.o.d"
  "CMakeFiles/ilp_trans.dir/indexpand.cpp.o"
  "CMakeFiles/ilp_trans.dir/indexpand.cpp.o.d"
  "CMakeFiles/ilp_trans.dir/level.cpp.o"
  "CMakeFiles/ilp_trans.dir/level.cpp.o.d"
  "CMakeFiles/ilp_trans.dir/rename.cpp.o"
  "CMakeFiles/ilp_trans.dir/rename.cpp.o.d"
  "CMakeFiles/ilp_trans.dir/searchexpand.cpp.o"
  "CMakeFiles/ilp_trans.dir/searchexpand.cpp.o.d"
  "CMakeFiles/ilp_trans.dir/strengthred.cpp.o"
  "CMakeFiles/ilp_trans.dir/strengthred.cpp.o.d"
  "CMakeFiles/ilp_trans.dir/swp.cpp.o"
  "CMakeFiles/ilp_trans.dir/swp.cpp.o.d"
  "CMakeFiles/ilp_trans.dir/treeheight.cpp.o"
  "CMakeFiles/ilp_trans.dir/treeheight.cpp.o.d"
  "CMakeFiles/ilp_trans.dir/tripcount.cpp.o"
  "CMakeFiles/ilp_trans.dir/tripcount.cpp.o.d"
  "CMakeFiles/ilp_trans.dir/unroll.cpp.o"
  "CMakeFiles/ilp_trans.dir/unroll.cpp.o.d"
  "libilp_trans.a"
  "libilp_trans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_trans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
