file(REMOVE_RECURSE
  "CMakeFiles/ilp_sim.dir/simulator.cpp.o"
  "CMakeFiles/ilp_sim.dir/simulator.cpp.o.d"
  "libilp_sim.a"
  "libilp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
