file(REMOVE_RECURSE
  "libilp_sim.a"
)
