# Empty compiler generated dependencies file for ilp_sim.
# This may be replaced when dependencies are built.
