# Empty compiler generated dependencies file for ilpc.
# This may be replaced when dependencies are built.
