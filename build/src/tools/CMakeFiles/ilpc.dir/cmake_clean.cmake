file(REMOVE_RECURSE
  "CMakeFiles/ilpc.dir/ilpc.cpp.o"
  "CMakeFiles/ilpc.dir/ilpc.cpp.o.d"
  "ilpc"
  "ilpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
