# Empty dependencies file for ilpc.
# This may be replaced when dependencies are built.
