# Empty compiler generated dependencies file for ilp_analysis.
# This may be replaced when dependencies are built.
