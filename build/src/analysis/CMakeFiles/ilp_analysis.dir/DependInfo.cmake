
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/addresses.cpp" "src/analysis/CMakeFiles/ilp_analysis.dir/addresses.cpp.o" "gcc" "src/analysis/CMakeFiles/ilp_analysis.dir/addresses.cpp.o.d"
  "/root/repo/src/analysis/cfg.cpp" "src/analysis/CMakeFiles/ilp_analysis.dir/cfg.cpp.o" "gcc" "src/analysis/CMakeFiles/ilp_analysis.dir/cfg.cpp.o.d"
  "/root/repo/src/analysis/depgraph.cpp" "src/analysis/CMakeFiles/ilp_analysis.dir/depgraph.cpp.o" "gcc" "src/analysis/CMakeFiles/ilp_analysis.dir/depgraph.cpp.o.d"
  "/root/repo/src/analysis/dominators.cpp" "src/analysis/CMakeFiles/ilp_analysis.dir/dominators.cpp.o" "gcc" "src/analysis/CMakeFiles/ilp_analysis.dir/dominators.cpp.o.d"
  "/root/repo/src/analysis/liveness.cpp" "src/analysis/CMakeFiles/ilp_analysis.dir/liveness.cpp.o" "gcc" "src/analysis/CMakeFiles/ilp_analysis.dir/liveness.cpp.o.d"
  "/root/repo/src/analysis/loops.cpp" "src/analysis/CMakeFiles/ilp_analysis.dir/loops.cpp.o" "gcc" "src/analysis/CMakeFiles/ilp_analysis.dir/loops.cpp.o.d"
  "/root/repo/src/analysis/reaching.cpp" "src/analysis/CMakeFiles/ilp_analysis.dir/reaching.cpp.o" "gcc" "src/analysis/CMakeFiles/ilp_analysis.dir/reaching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ilp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ilp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ilp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
