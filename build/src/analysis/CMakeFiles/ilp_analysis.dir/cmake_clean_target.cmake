file(REMOVE_RECURSE
  "libilp_analysis.a"
)
