file(REMOVE_RECURSE
  "CMakeFiles/ilp_analysis.dir/addresses.cpp.o"
  "CMakeFiles/ilp_analysis.dir/addresses.cpp.o.d"
  "CMakeFiles/ilp_analysis.dir/cfg.cpp.o"
  "CMakeFiles/ilp_analysis.dir/cfg.cpp.o.d"
  "CMakeFiles/ilp_analysis.dir/depgraph.cpp.o"
  "CMakeFiles/ilp_analysis.dir/depgraph.cpp.o.d"
  "CMakeFiles/ilp_analysis.dir/dominators.cpp.o"
  "CMakeFiles/ilp_analysis.dir/dominators.cpp.o.d"
  "CMakeFiles/ilp_analysis.dir/liveness.cpp.o"
  "CMakeFiles/ilp_analysis.dir/liveness.cpp.o.d"
  "CMakeFiles/ilp_analysis.dir/loops.cpp.o"
  "CMakeFiles/ilp_analysis.dir/loops.cpp.o.d"
  "CMakeFiles/ilp_analysis.dir/reaching.cpp.o"
  "CMakeFiles/ilp_analysis.dir/reaching.cpp.o.d"
  "libilp_analysis.a"
  "libilp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
