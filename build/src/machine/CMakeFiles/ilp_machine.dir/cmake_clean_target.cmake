file(REMOVE_RECURSE
  "libilp_machine.a"
)
