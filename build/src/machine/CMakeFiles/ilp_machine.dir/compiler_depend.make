# Empty compiler generated dependencies file for ilp_machine.
# This may be replaced when dependencies are built.
