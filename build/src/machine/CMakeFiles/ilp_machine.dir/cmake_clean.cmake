file(REMOVE_RECURSE
  "CMakeFiles/ilp_machine.dir/machine.cpp.o"
  "CMakeFiles/ilp_machine.dir/machine.cpp.o.d"
  "libilp_machine.a"
  "libilp_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
