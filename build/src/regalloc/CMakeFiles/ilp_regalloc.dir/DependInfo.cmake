
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regalloc/assign.cpp" "src/regalloc/CMakeFiles/ilp_regalloc.dir/assign.cpp.o" "gcc" "src/regalloc/CMakeFiles/ilp_regalloc.dir/assign.cpp.o.d"
  "/root/repo/src/regalloc/regalloc.cpp" "src/regalloc/CMakeFiles/ilp_regalloc.dir/regalloc.cpp.o" "gcc" "src/regalloc/CMakeFiles/ilp_regalloc.dir/regalloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ilp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ilp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ilp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ilp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
