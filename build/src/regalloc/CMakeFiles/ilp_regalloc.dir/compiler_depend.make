# Empty compiler generated dependencies file for ilp_regalloc.
# This may be replaced when dependencies are built.
