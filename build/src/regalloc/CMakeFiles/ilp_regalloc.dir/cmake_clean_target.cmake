file(REMOVE_RECURSE
  "libilp_regalloc.a"
)
