file(REMOVE_RECURSE
  "CMakeFiles/ilp_regalloc.dir/assign.cpp.o"
  "CMakeFiles/ilp_regalloc.dir/assign.cpp.o.d"
  "CMakeFiles/ilp_regalloc.dir/regalloc.cpp.o"
  "CMakeFiles/ilp_regalloc.dir/regalloc.cpp.o.d"
  "libilp_regalloc.a"
  "libilp_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
