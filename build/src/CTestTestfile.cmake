# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("machine")
subdirs("sim")
subdirs("analysis")
subdirs("opt")
subdirs("trans")
subdirs("sched")
subdirs("regalloc")
subdirs("frontend")
subdirs("workloads")
subdirs("harness")
subdirs("tools")
