file(REMOVE_RECURSE
  "libilp_frontend.a"
)
