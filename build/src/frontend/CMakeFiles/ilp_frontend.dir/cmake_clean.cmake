file(REMOVE_RECURSE
  "CMakeFiles/ilp_frontend.dir/classify.cpp.o"
  "CMakeFiles/ilp_frontend.dir/classify.cpp.o.d"
  "CMakeFiles/ilp_frontend.dir/compile.cpp.o"
  "CMakeFiles/ilp_frontend.dir/compile.cpp.o.d"
  "CMakeFiles/ilp_frontend.dir/lexer.cpp.o"
  "CMakeFiles/ilp_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/ilp_frontend.dir/parser.cpp.o"
  "CMakeFiles/ilp_frontend.dir/parser.cpp.o.d"
  "libilp_frontend.a"
  "libilp_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
