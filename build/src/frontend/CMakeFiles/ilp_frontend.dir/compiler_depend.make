# Empty compiler generated dependencies file for ilp_frontend.
# This may be replaced when dependencies are built.
