file(REMOVE_RECURSE
  "libilp_sched.a"
)
