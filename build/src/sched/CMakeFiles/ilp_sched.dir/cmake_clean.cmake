file(REMOVE_RECURSE
  "CMakeFiles/ilp_sched.dir/scheduler.cpp.o"
  "CMakeFiles/ilp_sched.dir/scheduler.cpp.o.d"
  "libilp_sched.a"
  "libilp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
