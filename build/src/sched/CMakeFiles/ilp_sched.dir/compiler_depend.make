# Empty compiler generated dependencies file for ilp_sched.
# This may be replaced when dependencies are built.
