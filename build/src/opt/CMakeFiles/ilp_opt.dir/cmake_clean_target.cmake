file(REMOVE_RECURSE
  "libilp_opt.a"
)
