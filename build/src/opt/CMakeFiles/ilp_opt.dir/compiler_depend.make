# Empty compiler generated dependencies file for ilp_opt.
# This may be replaced when dependencies are built.
