
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/constprop.cpp" "src/opt/CMakeFiles/ilp_opt.dir/constprop.cpp.o" "gcc" "src/opt/CMakeFiles/ilp_opt.dir/constprop.cpp.o.d"
  "/root/repo/src/opt/copyprop.cpp" "src/opt/CMakeFiles/ilp_opt.dir/copyprop.cpp.o" "gcc" "src/opt/CMakeFiles/ilp_opt.dir/copyprop.cpp.o.d"
  "/root/repo/src/opt/cse.cpp" "src/opt/CMakeFiles/ilp_opt.dir/cse.cpp.o" "gcc" "src/opt/CMakeFiles/ilp_opt.dir/cse.cpp.o.d"
  "/root/repo/src/opt/dce.cpp" "src/opt/CMakeFiles/ilp_opt.dir/dce.cpp.o" "gcc" "src/opt/CMakeFiles/ilp_opt.dir/dce.cpp.o.d"
  "/root/repo/src/opt/ivopt.cpp" "src/opt/CMakeFiles/ilp_opt.dir/ivopt.cpp.o" "gcc" "src/opt/CMakeFiles/ilp_opt.dir/ivopt.cpp.o.d"
  "/root/repo/src/opt/licm.cpp" "src/opt/CMakeFiles/ilp_opt.dir/licm.cpp.o" "gcc" "src/opt/CMakeFiles/ilp_opt.dir/licm.cpp.o.d"
  "/root/repo/src/opt/pipeline.cpp" "src/opt/CMakeFiles/ilp_opt.dir/pipeline.cpp.o" "gcc" "src/opt/CMakeFiles/ilp_opt.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ilp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ilp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ilp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ilp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
