file(REMOVE_RECURSE
  "CMakeFiles/ilp_opt.dir/constprop.cpp.o"
  "CMakeFiles/ilp_opt.dir/constprop.cpp.o.d"
  "CMakeFiles/ilp_opt.dir/copyprop.cpp.o"
  "CMakeFiles/ilp_opt.dir/copyprop.cpp.o.d"
  "CMakeFiles/ilp_opt.dir/cse.cpp.o"
  "CMakeFiles/ilp_opt.dir/cse.cpp.o.d"
  "CMakeFiles/ilp_opt.dir/dce.cpp.o"
  "CMakeFiles/ilp_opt.dir/dce.cpp.o.d"
  "CMakeFiles/ilp_opt.dir/ivopt.cpp.o"
  "CMakeFiles/ilp_opt.dir/ivopt.cpp.o.d"
  "CMakeFiles/ilp_opt.dir/licm.cpp.o"
  "CMakeFiles/ilp_opt.dir/licm.cpp.o.d"
  "CMakeFiles/ilp_opt.dir/pipeline.cpp.o"
  "CMakeFiles/ilp_opt.dir/pipeline.cpp.o.d"
  "libilp_opt.a"
  "libilp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
