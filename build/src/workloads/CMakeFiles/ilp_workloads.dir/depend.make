# Empty dependencies file for ilp_workloads.
# This may be replaced when dependencies are built.
