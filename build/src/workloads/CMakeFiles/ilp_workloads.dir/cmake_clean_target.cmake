file(REMOVE_RECURSE
  "libilp_workloads.a"
)
