file(REMOVE_RECURSE
  "CMakeFiles/ilp_workloads.dir/suite.cpp.o"
  "CMakeFiles/ilp_workloads.dir/suite.cpp.o.d"
  "libilp_workloads.a"
  "libilp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
