file(REMOVE_RECURSE
  "CMakeFiles/ilp_harness.dir/experiment.cpp.o"
  "CMakeFiles/ilp_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/ilp_harness.dir/report.cpp.o"
  "CMakeFiles/ilp_harness.dir/report.cpp.o.d"
  "libilp_harness.a"
  "libilp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
