# Empty dependencies file for ilp_harness.
# This may be replaced when dependencies are built.
