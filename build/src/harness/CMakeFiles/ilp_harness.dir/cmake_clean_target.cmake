file(REMOVE_RECURSE
  "libilp_harness.a"
)
