file(REMOVE_RECURSE
  "CMakeFiles/stencil_study.dir/stencil_study.cpp.o"
  "CMakeFiles/stencil_study.dir/stencil_study.cpp.o.d"
  "stencil_study"
  "stencil_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
