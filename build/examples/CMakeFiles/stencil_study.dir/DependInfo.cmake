
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/stencil_study.cpp" "examples/CMakeFiles/stencil_study.dir/stencil_study.cpp.o" "gcc" "examples/CMakeFiles/stencil_study.dir/stencil_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/ilp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ilp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ilp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/trans/CMakeFiles/ilp_trans.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ilp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/ilp_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ilp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ilp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ilp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ilp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ilp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ilp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
