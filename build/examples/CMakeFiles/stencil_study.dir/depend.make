# Empty dependencies file for stencil_study.
# This may be replaced when dependencies are built.
