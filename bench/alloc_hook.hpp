// Process-wide heap-allocation counters for the benchmarks.
//
// bench/alloc_hook.cpp replaces the global operator new/delete family with
// forwarding versions that bump these counters (one relaxed atomic add per
// call — noise next to malloc itself).  Benchmarks snapshot the counters
// around their timing loop to report allocs/op next to ns/op, which is how
// BENCH_4.json tracks the pipeline's allocation behavior and how the bench
// smoke can flag alloc regressions that wall-clock noise would hide.
//
// The hook is linked into the bench binaries only; the library and tests run
// on the stock allocator.
#pragma once

#include <cstdint>

namespace ilp::allochook {

struct Snapshot {
  std::uint64_t count = 0;  // operator new/new[] calls
  std::uint64_t bytes = 0;  // bytes requested through them
};

// Current totals since process start (monotonic; frees do not subtract).
Snapshot snapshot();

// Convenience delta helper: allocations between two snapshots.
inline Snapshot delta(const Snapshot& before, const Snapshot& after) {
  return {after.count - before.count, after.bytes - before.bytes};
}

}  // namespace ilp::allochook
