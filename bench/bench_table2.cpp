// Regenerates Table 2: the 40 loop nests and their attributes, with the
// classifier re-deriving Type/Conds from each reconstructed source.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  ilp::bench::init(argc, argv);
  ilp::bench::print_header("Table 2: description of the 40 loop nests");
  std::printf("%s", ilp::render_table2().c_str());
  ilp::bench::paper_note(
      "Loop nests reconstructed to match the published Size/Iters/Nest/Type/"
      "Conds attributes; see DESIGN.md for the substitution rationale.");
  ilp::bench::finish();
  return 0;
}
