// Regenerates Figure 11: register usage distribution (int + fp registers per
// loop nest) for the issue-8 configuration at each level.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  ilp::bench::init(argc, argv);
  using namespace ilp;
  bench::print_header("Figure 11: register usage distribution, issue-8 processor");
  const StudyResult& s = bench::study();
  const Histogram h = register_histogram(s);
  std::printf("%s", render_histogram(h, "loops per register-usage range").c_str());
  std::printf("\nmean registers:");
  for (OptLevel l : kLevels)
    std::printf("  %s=%.0f", level_name(l), s.mean_registers(l));
  int under128 = 0;
  for (const auto& l : s.loops)
    if (l.regs[4].total() < 128) ++under128;
  std::printf("\nloops under 128 registers at Lev4: %d / %zu   (paper: 37 / 40)\n",
              under128, s.loops.size());
  const double growth = s.mean_registers(OptLevel::Lev4) / s.mean_registers(OptLevel::Conv);
  std::printf("register growth Conv -> Lev4: %.1fx   (paper: 2.6x)\n", growth);
  bench::paper_note(
      "Paper: averages 28 (Lev1) -> 57 (Lev2) -> 65 (Lev3) -> 71 (Lev4); the "
      "largest increase comes from register renaming, and Lev3/Lev4 are "
      "register-efficient ways to expose further ILP.");
  ilp::bench::finish();
  return 0;
}
