// Regenerates Figure 10: speedup distribution for an issue-8 processor.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  ilp::bench::init(argc, argv);
  using namespace ilp;
  bench::print_header("Figure 10: speedup distribution, issue-8 processor");
  const StudyResult& s = bench::study();
  const Histogram h = speedup_histogram(s, /*width_index=*/3, fig10_speedup_buckets());
  std::printf("%s", render_histogram(h, "loops per speedup range (issue-8)").c_str());
  std::printf("\nmean speedups:");
  for (OptLevel l : kLevels) std::printf("  %s=%.2f", level_name(l), s.mean_speedup(l, 3));
  std::printf("\n\nper-loop speedups (issue-8):\n%s", render_speedup_table(s, 3).c_str());
  bench::paper_note(
      "Paper averages for issue-8: Lev3 = 5.10, Lev4 = 6.68 (Section 3.2); "
      "unrolling+renaming alone average 5.1 with the advanced transformations "
      "adding the rest (Section 4).");
  ilp::bench::finish();
  return 0;
}
