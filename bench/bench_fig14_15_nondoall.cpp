// Regenerates Figures 14 and 15: speedup and register-usage distributions of
// the non-DOALL (DOACROSS + serial) loops, issue-8 processor.
#include "bench_common.hpp"
#include "frontend/parser.hpp"

int main(int argc, char** argv) {
  ilp::bench::init(argc, argv);
  using namespace ilp;
  bench::print_header("Figures 14-15: non-DOALL loops only, issue-8 processor");
  const StudyResult& s = bench::study();

  const Histogram hs =
      speedup_histogram(s, 3, fig10_speedup_buckets(), LoopFilter::NonDoAllOnly);
  std::printf("%s",
              render_histogram(hs, "Figure 14: non-DOALL speedup distribution").c_str());
  std::printf("\nmean non-DOALL speedups:");
  for (OptLevel l : kLevels)
    std::printf("  %s=%.2f", level_name(l), s.mean_speedup_where(l, 3, false));
  std::printf("\n\n");

  // Breakdown (ours): serial loops whose only recurrences are reductions are
  // exactly what the Lev4 expansions fix; genuinely serial loops are not.
  {
    double fix2 = 0, fix4 = 0, gen2 = 0, gen4 = 0;
    int nfix = 0, ngen = 0;
    for (const auto& l : s.loops) {
      if (l.type == dsl::LoopType::DoAll) continue;
      DiagnosticEngine d;
      const auto ast = dsl::parse(find_workload(l.name)->source, d);
      const auto cls = dsl::classify_innermost_loops(*ast);
      const bool fixable = cls[0].reduction_only;
      (fixable ? fix2 : gen2) += l.speedup(OptLevel::Lev2, 3);
      (fixable ? fix4 : gen4) += l.speedup(OptLevel::Lev4, 3);
      (fixable ? nfix : ngen) += 1;
    }
    std::printf("reduction-only serial loops (%d): Lev2=%.2f -> Lev4=%.2f\n", nfix,
                fix2 / nfix, fix4 / nfix);
    std::printf("other non-DOALL loops       (%d): Lev2=%.2f -> Lev4=%.2f\n\n", ngen,
                gen2 / ngen, gen4 / ngen);
  }

  const Histogram hr = register_histogram(s, LoopFilter::NonDoAllOnly);
  std::printf(
      "%s", render_histogram(hr, "Figure 15: non-DOALL register usage distribution").c_str());
  bench::paper_note(
      "Paper: non-DOALL loops average 3.7 at Lev2 and 5.8 with the expansion "
      "transformations (Lev4), which remove the loop's recurrences; Lev3 "
      "alone helps only a little.  Register usage stays below the DOALL "
      "loops' (less overlap among unrolled bodies).");
  ilp::bench::finish();
  return 0;
}
