// Ablation study (ours, beyond the paper): contribution of each individual
// transformation, measured as the issue-8 mean-speedup drop when it is
// removed from the full Lev4 pipeline — plus the build-up when each is the
// only addition over Lev2.
#include <cstdio>

#include "bench_common.hpp"
#include "frontend/compile.hpp"

namespace {

using namespace ilp;

double mean_speedup_with(const TransformSet& set) {
  const MachineModel m8 = MachineModel::issue(8);
  const MachineModel m1 = MachineModel::issue(1);
  double sum = 0.0;
  for (const Workload& w : workload_suite()) {
    DiagnosticEngine d1;
    auto base = dsl::compile(w.source, d1);
    compile_with_transforms(base->fn, TransformSet::for_level(OptLevel::Conv), m1);
    const std::uint64_t base_cycles = simulate_cycles(base->fn, m1);

    DiagnosticEngine d2;
    auto opt = dsl::compile(w.source, d2);
    compile_with_transforms(opt->fn, set, m8);
    sum += static_cast<double>(base_cycles) /
           static_cast<double>(simulate_cycles(opt->fn, m8));
  }
  return sum / static_cast<double>(workload_suite().size());
}

}  // namespace

int main(int argc, char** argv) {
  ilp::bench::init(argc, argv);
  using namespace ilp;
  bench::print_header("Ablation: per-transformation contribution at issue-8");

  const TransformSet lev4 = TransformSet::for_level(OptLevel::Lev4);
  const double full = mean_speedup_with(lev4);
  std::printf("full Lev4 pipeline mean speedup: %.2f\n\n", full);

  struct Knob {
    const char* name;
    bool TransformSet::* member;
  };
  const Knob knobs[] = {
      {"loop unrolling", &TransformSet::unroll},
      {"register renaming", &TransformSet::rename},
      {"operation combining", &TransformSet::combine},
      {"strength reduction", &TransformSet::strength},
      {"tree height reduction", &TransformSet::height},
      {"accumulator expansion", &TransformSet::acc_expand},
      {"induction expansion", &TransformSet::ind_expand},
      {"search expansion", &TransformSet::search_expand},
  };

  std::printf("%-26s %10s %10s\n", "transformation removed", "mean", "drop");
  for (const Knob& k : knobs) {
    TransformSet s = lev4;
    s.*(k.member) = false;
    const double m = mean_speedup_with(s);
    std::printf("%-26s %10.2f %10.2f\n", k.name, m, full - m);
  }

  std::printf("\n%-26s %10s %10s\n", "added alone over Lev2", "mean", "gain");
  const double lev2 = mean_speedup_with(TransformSet::for_level(OptLevel::Lev2));
  std::printf("%-26s %10.2f %10s\n", "(Lev2 baseline)", lev2, "-");
  for (const Knob& k : knobs) {
    TransformSet s = TransformSet::for_level(OptLevel::Lev2);
    if (s.*(k.member)) continue;  // already in Lev2
    s.*(k.member) = true;
    const double m = mean_speedup_with(s);
    std::printf("%-26s %10.2f %10.2f\n", k.name, m, m - lev2);
  }

  bench::paper_note(
      "Paper Section 3.2: induction variable expansion is the most often "
      "applied transformation; accumulator and search expansion give the "
      "largest speedups beyond unrolling/renaming; strength reduction is the "
      "least effective under these latencies.");
  ilp::bench::finish();
  return 0;
}
