// Register-pressure study (ours, extending Figure 11's discussion): the paper
// reports that 37 of 40 loops need fewer than 128 total registers after all
// transformations and argues the requirement "is not unreasonable".  With the
// finite-register allocator this binary measures what actually happens when
// the file shrinks: mean issue-8 Lev4 speedup and spill counts per file size.
#include <cstdio>

#include "bench_common.hpp"
#include "frontend/compile.hpp"
#include "regalloc/assign.hpp"

namespace {

using namespace ilp;

struct Row {
  double mean_speedup = 0.0;
  int loops_with_spills = 0;
  int total_spills = 0;
};

Row measure(int k) {
  const MachineModel m8 = MachineModel::issue(8);
  const MachineModel m1 = MachineModel::issue(1);
  Row row;
  int counted = 0;
  for (const Workload& w : workload_suite()) {
    DiagnosticEngine d0;
    auto base = dsl::compile(w.source, d0);
    compile_at_level(base->fn, OptLevel::Conv, m1);
    const std::uint64_t base_cycles = simulate_cycles(base->fn, m1);

    DiagnosticEngine d1;
    auto opt = dsl::compile(w.source, d1);
    compile_at_level(opt->fn, OptLevel::Lev4, m8);
    if (k > 0) {
      // Per-class file of k/2 registers each, matching the paper's
      // "total integer and floating point registers" accounting.
      const AssignResult ar = assign_registers(opt->fn, {k / 2, k / 2, 0x7f000000});
      if (!ar.ok) {
        std::fprintf(stderr, "  %s failed to allocate at k=%d\n", w.name.c_str(), k);
        continue;
      }
      if (ar.spilled_int + ar.spilled_fp > 0) ++row.loops_with_spills;
      row.total_spills += ar.spilled_int + ar.spilled_fp;
    }
    row.mean_speedup += static_cast<double>(base_cycles) /
                        static_cast<double>(simulate_cycles(opt->fn, m8));
    ++counted;
  }
  row.mean_speedup /= counted;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ilp::bench::init(argc, argv);
  using namespace ilp;
  bench::print_header(
      "Register pressure: issue-8 Lev4 mean speedup vs. register file size");

  std::printf("%-22s %14s %14s %14s\n", "total registers", "mean speedup",
              "loops w/spill", "regs spilled");
  {
    const Row r = measure(0);
    std::printf("%-22s %14.2f %14s %14s\n", "unlimited (paper)", r.mean_speedup, "-",
                "-");
  }
  for (int k : {256, 128, 64, 48, 32, 24}) {
    const Row r = measure(k);
    std::printf("%-22d %14.2f %14d %14d\n", k, r.mean_speedup, r.loops_with_spills,
                r.total_spills);
  }
  bench::paper_note(
      "Paper Figure 11: all transformed loops here fit under 128 registers, "
      "so the 128-row should match 'unlimited'; the knee below it shows what "
      "the paper's 'production compiler can control register usage with "
      "Lev3/Lev4' remark is protecting against.");
  ilp::bench::finish();
  return 0;
}
