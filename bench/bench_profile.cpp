// Cycle-accounting axis (BENCH_8): where the machine's issue slots go, per
// workload x level x width x scheduler, under the closed attribution
// taxonomy of sim/profile.hpp.  This is the quantitative form of the paper's
// argument: at Conv the suite is recurrence-bound (raw_wait dominates the
// lost slots), and the Lev1-Lev4 transformations convert that dependence
// wait into issued work until the remaining loss is the machine's own width
// and branch structure (resource_width + branch_fetch).  The modulo rows pin
// the scheduler delta on the same axis.
//
// Every cell's profile is checked for exact slot conservation
// (sum over causes == width * cycles) before it is reported; a violation
// aborts the bench, so the artifact doubles as an oracle run.
//
//   bench_profile [--out PATH]     write the JSON artifact (default BENCH_8.json)
//   bench_profile --no-json        table only
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "sim/profile.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace ilp;

struct CellRow {
  std::string workload;
  OptLevel level = OptLevel::Conv;
  int width = 1;
  SchedulerKind scheduler = SchedulerKind::List;
  bool ok = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::array<std::uint64_t, kNumStallCauses> slots{};
  std::vector<std::uint64_t> occupancy;
};

CellRow run_cell(const Workload& w, OptLevel level, int width,
                 SchedulerKind scheduler) {
  CellRow cell;
  cell.workload = w.name;
  cell.level = level;
  cell.width = width;
  cell.scheduler = scheduler;
  const MachineModel m = MachineModel::issue(width);
  CompileOptions opts;
  opts.scheduler = scheduler;

  auto compiled = try_compile_workload(w, level, m, opts);
  if (!compiled) return cell;
  auto sim = try_simulate_profile(compiled->fn, m);
  if (!sim) return cell;

  const std::string violation = sim->profile.check_conservation();
  if (!violation.empty()) {
    std::fprintf(stderr, "bench_profile: conservation violated (%s %s w%d): %s\n",
                 w.name.c_str(), level_name(level), width, violation.c_str());
    std::exit(1);
  }
  cell.ok = true;
  cell.cycles = sim->result.cycles;
  cell.instructions = sim->result.instructions;
  cell.slots = sim->profile.slots;
  cell.occupancy = sim->profile.occupancy;
  return cell;
}

// Suite-wide cause shares for one (level, scheduler) at one width.
struct LevelSummary {
  std::array<std::uint64_t, kNumStallCauses> slots{};
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
};

void write_json(const std::vector<CellRow>& cells, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"ilp92-profile-v1\",\n  \"causes\": [";
  for (int i = 0; i < kNumStallCauses; ++i)
    out << (i ? ", \"" : "\"") << stall_cause_name(static_cast<StallCause>(i))
        << "\"";
  out << "],\n  \"cells\": [";
  bool first = true;
  for (const CellRow& c : cells) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"workload\": \"" << c.workload << "\", \"level\": \""
        << level_name(c.level) << "\", \"width\": " << c.width
        << ", \"scheduler\": \""
        << (c.scheduler == SchedulerKind::Modulo ? "modulo" : "list")
        << "\", \"ok\": " << (c.ok ? "true" : "false");
    if (c.ok) {
      out << ", \"cycles\": " << c.cycles
          << ", \"instructions\": " << c.instructions << ", \"slots\": [";
      for (int i = 0; i < kNumStallCauses; ++i)
        out << (i ? ", " : "") << c.slots[static_cast<std::size_t>(i)];
      out << "], \"occupancy\": [";
      for (std::size_t k = 0; k < c.occupancy.size(); ++k)
        out << (k ? ", " : "") << c.occupancy[k];
      out << "]";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  std::fprintf(stderr, "[bench] profile results -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_8.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
      out_path = argv[++i];
    else if (!std::strcmp(argv[i], "--no-json"))
      out_path.clear();
    else {
      std::fprintf(stderr, "usage: %s [--out PATH | --no-json]\n", argv[0]);
      return 1;
    }
  }

  bench::print_header(
      "Cycle accounting: issue-slot attribution per level and scheduler");

  std::vector<CellRow> cells;
  for (const Workload& w : workload_suite())
    for (OptLevel level : kLevels)
      for (int width : kIssueWidths)
        for (SchedulerKind sched : {SchedulerKind::List, SchedulerKind::Modulo})
          cells.push_back(run_cell(w, level, width, sched));

  // Printed summary: suite-aggregated slot shares at issue-8, where the
  // taxonomy separates the levels most sharply (the JSON has every cell).
  constexpr int kSummaryWidth = 8;
  std::printf("%-6s %-9s %6s | %7s %8s %8s %8s %8s %6s\n", "level", "scheduler",
              "IPC", "issued", "raw", "mem", "width", "branch", "drain");
  for (OptLevel level : kLevels)
    for (SchedulerKind sched : {SchedulerKind::List, SchedulerKind::Modulo}) {
      LevelSummary s;
      for (const CellRow& c : cells) {
        if (!c.ok || c.level != level || c.width != kSummaryWidth ||
            c.scheduler != sched)
          continue;
        s.cycles += c.cycles;
        s.instructions += c.instructions;
        for (int i = 0; i < kNumStallCauses; ++i)
          s.slots[static_cast<std::size_t>(i)] +=
              c.slots[static_cast<std::size_t>(i)];
      }
      if (s.cycles == 0) continue;
      const double total = static_cast<double>(kSummaryWidth) *
                           static_cast<double>(s.cycles);
      auto share = [&](StallCause cause) {
        return 100.0 *
               static_cast<double>(s.slots[static_cast<std::size_t>(cause)]) /
               total;
      };
      std::printf("%-6s %-9s %6.2f | %6.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %5.1f%%\n",
                  level_name(level),
                  sched == SchedulerKind::Modulo ? "modulo" : "list",
                  static_cast<double>(s.instructions) /
                      static_cast<double>(s.cycles),
                  share(StallCause::Issued), share(StallCause::RawWait),
                  share(StallCause::MemWait), share(StallCause::ResourceWidth),
                  share(StallCause::BranchFetch), share(StallCause::Drain));
    }

  bench::paper_note(
      "Reading: at Conv the issue-8 machine spends most of its slots in "
      "raw_wait -- the loops are recurrence-bound, exactly the starting "
      "point of the paper's Figure 1 walkthrough.  Each level converts "
      "dependence wait into issued slots (issued roughly doubles Conv -> "
      "Lev4 while raw_wait halves), and what the transformations cannot "
      "touch stays put: branch_fetch and resource_width are the machine's "
      "fetch/issue structure, and the residual raw_wait at Lev4 is the "
      "suite's true recurrences -- the loops the paper itself classifies as "
      "non-DOALL.  The "
      "modulo rows shift raw_wait further down on the software-pipelinable "
      "workloads by overlapping iterations at steady state.  Every cell in "
      "the artifact passed exact slot conservation (causes sum to width * "
      "cycles), so these shares partition the machine's whole capacity -- "
      "nothing is double-counted or dropped.");

  if (!out_path.empty()) write_json(cells, out_path);
  return 0;
}
