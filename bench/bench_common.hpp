// Shared header for the figure-regeneration binaries: runs the full study
// once and offers the paper-comparison footer.
#pragma once

#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "machine/machine.hpp"

namespace ilp::bench {

inline const StudyResult& study() {
  static const StudyResult s = run_study();
  return s;
}

inline void print_header(const char* what) {
  std::printf("================================================================\n");
  std::printf("%s\n", what);
  std::printf("Machine: %s\n", MachineModel::issue(8).describe().c_str());
  std::printf("Base configuration: issue-1, conventional optimizations (Conv)\n");
  std::printf("================================================================\n");
}

inline void paper_note(const char* note) { std::printf("\n[paper] %s\n", note); }

}  // namespace ilp::bench
