// Shared header for the figure-regeneration binaries: engine-backed study
// execution (thread pool + result cache + telemetry) and the
// paper-comparison footer.
//
// Every bench accepts:
//   --jobs N        run the study's 800 cells on N pool workers (0 = one per
//                   hardware thread; default 1 = serial)
//   --seq           force serial execution (same as --jobs 1; the reference
//                   for determinism checks)
//   --json [PATH]   write the deterministic study JSON (default
//                   BENCH_study.json); byte-identical for any --jobs value
//   --cache-dir D   persist per-cell results under D so unchanged cells are
//                   near-free across bench binaries and re-runs
//   --metrics PATH  write engine telemetry JSON (wall times, cache hits,
//                   per-pass timings); non-deterministic by nature
//   --trace PATH    write a Chrome trace (chrome://tracing / Perfetto) of
//                   how the cells packed onto the workers
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "engine/cache.hpp"
#include "engine/metrics.hpp"
#include "engine/trace.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "machine/machine.hpp"

namespace ilp::bench {

struct Options {
  int jobs = 1;
  std::string json_path;     // empty = no JSON dump
  std::string cache_dir;     // empty = no cache
  std::string metrics_path;  // empty = no telemetry dump
  std::string trace_path;    // empty = no Chrome trace
};

inline Options& options() {
  static Options o;
  return o;
}

inline void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--jobs N | --seq] [--json [PATH]] [--cache-dir DIR]\n"
               "       %*s [--metrics PATH] [--trace PATH]\n",
               argv0, static_cast<int>(std::strlen(argv0)), "");
}

// Parses the shared engine flags; exits on malformed input.  Call first in
// every bench main.
inline void init(int argc, char** argv) {
  Options& o = options();
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    // PATH is optional for --json: default BENCH_study.json.
    auto optional_next = [&](const char* fallback) -> std::string {
      if (i + 1 < argc && argv[i + 1][0] != '-') return argv[++i];
      return fallback;
    };
    if (a == "--jobs") {
      o.jobs = std::atoi(next());
      if (o.jobs < 0) {
        usage(argv[0]);
        std::exit(1);
      }
    } else if (a == "--seq") {
      o.jobs = 1;
    } else if (a == "--json") {
      o.json_path = optional_next("BENCH_study.json");
    } else if (a == "--cache-dir") {
      o.cache_dir = next();
    } else if (a == "--metrics") {
      o.metrics_path = next();
    } else if (a == "--trace") {
      o.trace_path = next();
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      usage(argv[0]);
      std::exit(1);
    }
  }
  if (!o.trace_path.empty()) engine::TraceRecorder::global().enable();
}

// The process-wide cell cache (honours --cache-dir), shared across every
// run_study call a bench makes.
inline engine::ResultCache& cache() {
  static engine::ResultCache c(options().cache_dir);
  return c;
}

// Runs the full study once through the engine with the parsed options.
inline const StudyResult& study() {
  static const StudyResult s = [] {
    StudyOptions opts;
    opts.jobs = options().jobs;
    opts.cache = &cache();
    return run_study(opts);
  }();
  return s;
}

// Writes --json/--metrics/--trace artifacts.  Call last in every bench main
// (safe even if the bench never ran the study).
inline void finish() {
  const Options& o = options();
  if (!o.json_path.empty()) {
    std::ofstream out(o.json_path, std::ios::trunc);
    if (out) out << study().to_json();
    if (out)
      std::fprintf(stderr, "[engine] study JSON -> %s\n", o.json_path.c_str());
    else
      std::fprintf(stderr, "[engine] cannot write %s\n", o.json_path.c_str());
  }
  if (!o.metrics_path.empty()) {
    std::ofstream out(o.metrics_path, std::ios::trunc);
    if (out) out << study().telemetry_json();
  }
  if (!o.trace_path.empty() &&
      engine::TraceRecorder::global().write_chrome_trace(o.trace_path))
    std::fprintf(stderr, "[engine] Chrome trace -> %s\n", o.trace_path.c_str());
}

inline void print_header(const char* what) {
  std::printf("================================================================\n");
  std::printf("%s\n", what);
  std::printf("Machine: %s\n", MachineModel::issue(8).describe().c_str());
  std::printf("Base configuration: issue-1, conventional optimizations (Conv)\n");
  std::printf("================================================================\n");
}

inline void paper_note(const char* note) { std::printf("\n[paper] %s\n", note); }

}  // namespace ilp::bench
