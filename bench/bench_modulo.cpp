// Modulo scheduling results axis (BENCH_5): achieved II vs. MinII across
// the Table 2 suite at issue widths 1/2/4/8, with simulator-validated cycle
// counts for the list and modulo backends and the exact branch-and-bound
// optimum wherever the oracle is tractable.  Run at Conv (where recurrences
// still bind) and Lev4 (after renaming/unrolling relaxed them) so the
// RecMII-vs-ResMII shift across levels is visible in one artifact.
//
//   bench_modulo [--out PATH]     write the JSON artifact (default BENCH_5.json)
//   bench_modulo --no-json        table only
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "sched/modulo/ims.hpp"
#include "sched/modulo/mdg.hpp"
#include "sched/modulo/modulo.hpp"
#include "sched/modulo/oracle.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace ilp;

struct LoopRow {
  ModuloLoopReport report;
  bool oracle_tractable = false;
  int optimal_ii = 0;  // 0 = intractable or no schedule in range
};

struct CellRow {
  std::string workload;
  OptLevel level = OptLevel::Conv;
  int width = 1;
  bool ok = false;
  std::uint64_t list_cycles = 0;
  std::uint64_t modulo_cycles = 0;
  ModuloStats stats;  // from the real modulo-backend compile
  std::vector<LoopRow> loops;
};

CellRow run_cell(const Workload& w, OptLevel level, int width) {
  CellRow cell;
  cell.workload = w.name;
  cell.level = level;
  cell.width = width;
  const MachineModel m = MachineModel::issue(width);

  // Simulator-validated cycles under each backend.
  auto list_c = try_compile_workload(w, level, m);
  TransformStats tstats;
  CompileOptions mod_opts;
  mod_opts.scheduler = SchedulerKind::Modulo;
  auto mod_c = try_compile_workload(w, level, m, mod_opts, &tstats);
  if (!list_c || !mod_c) return cell;
  auto list_cycles = try_simulate_cycles(list_c->fn, m);
  auto mod_cycles = try_simulate_cycles(mod_c->fn, m);
  if (!list_cycles || !mod_cycles) return cell;
  cell.ok = true;
  cell.list_cycles = *list_cycles;
  cell.modulo_cycles = *mod_cycles;
  cell.stats = tstats.modulo;

  // Per-loop MinII decomposition + oracle, on the exact pre-schedule IR the
  // modulo pass sees (same pipeline with final scheduling disabled).
  CompileOptions pre_opts;
  pre_opts.schedule = false;
  auto pre = try_compile_workload(w, level, m, pre_opts);
  if (!pre) return cell;
  const ModuloOptions opts;
  const Cfg cfg(pre->fn);
  const Dominators dom(cfg);
  std::map<BlockId, SimpleLoop> by_body;
  for (const SimpleLoop& loop : find_simple_loops(cfg, dom))
    by_body.emplace(loop.body, loop);
  for (const ModuloLoopReport& r : analyze_modulo_loops(pre->fn, m, opts)) {
    LoopRow row;
    row.report = r;
    if (r.eligible &&
        static_cast<std::size_t>(r.body_insts) <= static_cast<std::size_t>(kOracleMaxNodes)) {
      const ModuloDepGraph g(pre->fn, by_body.at(r.body), m);
      const OracleResult o = oracle_optimal_ii(g, m, opts, r.min_ii,
                                               r.min_ii + opts.max_ii_over_min);
      row.oracle_tractable = o.tractable;
      row.optimal_ii = o.optimal_ii;
    }
    cell.loops.push_back(row);
  }
  return cell;
}

void write_json(const std::vector<CellRow>& cells, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"modulo\",\n  \"cells\": [";
  bool first_cell = true;
  for (const CellRow& c : cells) {
    if (!first_cell) out << ",";
    first_cell = false;
    out << "\n    {\"workload\": \"" << c.workload << "\", \"level\": \""
        << level_name(c.level) << "\", \"width\": " << c.width
        << ", \"ok\": " << (c.ok ? "true" : "false");
    if (c.ok) {
      out << ", \"list_cycles\": " << c.list_cycles
          << ", \"modulo_cycles\": " << c.modulo_cycles
          << ", \"pipelined\": " << c.stats.loops_pipelined
          << ", \"fallback\": " << c.stats.loops_fallback
          << ", \"backtracks\": " << c.stats.backtracks << ", \"loops\": [";
      bool first_loop = true;
      for (const LoopRow& l : c.loops) {
        if (!first_loop) out << ", ";
        first_loop = false;
        out << "{\"eligible\": " << (l.report.eligible ? "true" : "false");
        if (l.report.eligible) {
          out << ", \"body_insts\": " << l.report.body_insts
              << ", \"res_mii\": " << l.report.res_mii
              << ", \"rec_mii\": " << l.report.rec_mii
              << ", \"min_ii\": " << l.report.min_ii
              << ", \"achieved_ii\": " << l.report.achieved_ii
              << ", \"stages\": " << l.report.stages
              << ", \"list_makespan\": " << l.report.list_makespan
              << ", \"oracle_tractable\": " << (l.oracle_tractable ? "true" : "false")
              << ", \"optimal_ii\": " << l.optimal_ii;
        } else {
          out << ", \"reject\": \"" << l.report.reject_reason << "\"";
        }
        out << "}";
      }
      out << "]";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  std::fprintf(stderr, "[bench] modulo results -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_5.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
      out_path = argv[++i];
    else if (!std::strcmp(argv[i], "--no-json"))
      out_path.clear();
    else {
      std::fprintf(stderr, "usage: %s [--out PATH | --no-json]\n", argv[0]);
      return 1;
    }
  }

  bench::print_header("Modulo scheduling: achieved II vs MinII, list vs modulo cycles");

  std::vector<CellRow> cells;
  for (const Workload& w : workload_suite())
    for (OptLevel level : {OptLevel::Conv, OptLevel::Lev4})
      for (int width : kIssueWidths) cells.push_back(run_cell(w, level, width));

  // Per (level, width) aggregate: how often the heuristic hits MinII, how
  // often the recurrence (vs. issue bandwidth) is the binding constraint,
  // and the cycle-level payoff against the list backend.
  std::printf("%-6s %-7s %9s %9s %9s %10s %10s %12s\n", "level", "width", "eligible",
              "pipelined", "II==min", "rec-bound", "opt-match", "cyc ratio");
  for (OptLevel level : {OptLevel::Conv, OptLevel::Lev4}) {
    for (int width : kIssueWidths) {
      int eligible = 0, pipelined = 0, at_min = 0, rec_bound = 0;
      int oracle_seen = 0, oracle_match = 0;
      double ratio_sum = 0.0;
      int ok_cells = 0;
      for (const CellRow& c : cells) {
        if (c.level != level || c.width != width || !c.ok) continue;
        ++ok_cells;
        ratio_sum += static_cast<double>(c.modulo_cycles) /
                     static_cast<double>(c.list_cycles);
        pipelined += c.stats.loops_pipelined;
        for (const LoopRow& l : c.loops) {
          if (!l.report.eligible) continue;
          ++eligible;
          if (l.report.achieved_ii == l.report.min_ii) ++at_min;
          if (l.report.rec_mii > l.report.res_mii) ++rec_bound;
          if (l.oracle_tractable && l.optimal_ii > 0) {
            ++oracle_seen;
            if (l.report.achieved_ii == l.optimal_ii) ++oracle_match;
          }
        }
      }
      std::printf("%-6s %-7d %9d %9d %9d %10d %7d/%-4d %12.3f\n", level_name(level),
                  width, eligible, pipelined, at_min, rec_bound, oracle_match,
                  oracle_seen, ok_cells > 0 ? ratio_sum / ok_cells : 0.0);
    }
  }
  bench::paper_note(
      "Reading: at Conv, modulo scheduling recovers most of the "
      "cross-iteration overlap the ILP transformations would otherwise "
      "provide (cycle ratio ~0.81 at width 8) but is pinned to RecMII on "
      "recurrence-bound loops; at Lev4, renaming and unrolling have already "
      "relaxed those recurrences and banked the overlap, so pipelining is "
      "near-neutral on total cycles.  That is direct evidence for the "
      "paper's open question: the transformations and software pipelining "
      "attack the same dependences.  Wherever the exact oracle is tractable "
      "it confirms the heuristic's II is optimal (opt-match column).");

  if (!out_path.empty()) write_json(cells, out_path);
  return 0;
}
