// Autotuner axis (BENCH_9): what the cost-model-pruned beam search finds and
// what the pruning costs, across the workload suite and a fuzz corpus.
//
// Three sections, each doubling as an oracle run (a violation aborts the
// bench, so the artifact certifies its own claims):
//
//   suite   one search per suite workload at the service-default budget.
//           Checked: the search succeeds and best_cycles <= lev4_cycles on
//           every workload (the Lev4 seed is always simulated, so a miss
//           means the search lost a result).
//   audit   the fixed sub-grid pruning audit per workload (every level x
//           unroll {1,2,4,8,16}, 25 configs).  The exhaustive pass measures
//           the pruned-away set too, so the report is exact: equal-best must
//           hold on every workload and the suite-aggregate pruned fraction
//           must be >= 30% -- the issue's accountability contract for the
//           cost model.
//   fuzz    one small-budget search per random fuzz program.  Checked: the
//           Lev4 floor, plus the compile-determinism oracle -- the winning
//           config recompiled twice produces identical interpreter digests.
//
// Every simulation inside the tuner runs profiled with exact slot
// conservation enforced (sum over causes == width * cycles), so every cycle
// count in the artifact has already passed that check.
//
//   bench_autotune [--out PATH]   write the JSON artifact (default BENCH_9.json)
//   bench_autotune --no-json      table only
//   bench_autotune --jobs N       evaluator pool size (default: hardware)
//   bench_autotune --fuzz N       fuzz corpus size (default 12, ILP_FUZZ_SEEDS-scaled)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/fixtures.hpp"
#include "common/interp.hpp"
#include "engine/cache.hpp"
#include "engine/pool.hpp"
#include "tune/tune.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace ilp;

struct SuiteRow {
  std::string workload;
  tune::TuneResult result;
};

struct AuditRow {
  std::string workload;
  tune::PruningAudit audit;
};

struct FuzzSummary {
  int count = 0;
  std::uint64_t simulated = 0;
  std::uint64_t pruned = 0;
  std::uint64_t improved = 0;  // searches that beat the Lev4 seed
  double speedup_sum = 0.0;
};

[[noreturn]] void fail(const std::string& what) {
  std::fprintf(stderr, "bench_autotune: %s\n", what.c_str());
  std::exit(1);
}

void write_json(const std::vector<SuiteRow>& suite,
                const std::vector<AuditRow>& audits, const FuzzSummary& fuzz,
                double aggregate_pruned_fraction, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"ilp92-autotune-v1\",\n  \"issue\": 8,\n"
      << "  \"suite\": [";
  bool first = true;
  for (const SuiteRow& row : suite) {
    const tune::TuneResult& r = row.result;
    out << (first ? "" : ",") << "\n    {\"workload\": \"" << row.workload
        << "\", \"best\": \"" << r.best.name()
        << "\", \"best_cycles\": " << r.best_cycles
        << ", \"lev4_cycles\": " << r.lev4_cycles;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  ", \"speedup_vs_lev4\": %.4f, \"rounds\": %d, "
                  "\"considered\": %llu, \"simulated\": %llu, "
                  "\"pruned\": %llu, \"cache_hits\": %llu, "
                  "\"model_mape\": %.4f}",
                  r.speedup_vs_lev4(), r.rounds,
                  static_cast<unsigned long long>(r.considered),
                  static_cast<unsigned long long>(r.simulated),
                  static_cast<unsigned long long>(r.pruned),
                  static_cast<unsigned long long>(r.cache_hits), r.model_mape);
    out << buf;
    first = false;
  }
  out << "\n  ],\n  \"audit\": [";
  first = true;
  for (const AuditRow& row : audits) {
    const tune::PruningAudit& a = row.audit;
    char buf[240];
    std::snprintf(buf, sizeof buf,
                  "\n    {\"workload\": \"%s\", \"grid_size\": %llu, "
                  "\"simulated\": %llu, \"pruned\": %llu, "
                  "\"pruned_fraction\": %.4f, \"equal_best\": %s, "
                  "\"exhaustive_best\": %llu, \"pruned_best\": %llu, "
                  "\"precision\": %.4f, \"model_mape\": %.4f}",
                  row.workload.c_str(),
                  static_cast<unsigned long long>(a.grid_size),
                  static_cast<unsigned long long>(a.simulated),
                  static_cast<unsigned long long>(a.pruned),
                  a.pruned_fraction(), a.equal_best() ? "true" : "false",
                  static_cast<unsigned long long>(a.exhaustive_best),
                  static_cast<unsigned long long>(a.pruned_best), a.precision(),
                  a.model_mape);
    out << (first ? "" : ",") << buf;
    first = false;
  }
  char buf[240];
  std::snprintf(buf, sizeof buf,
                "\n  ],\n  \"aggregate_pruned_fraction\": %.4f,\n"
                "  \"fuzz\": {\"count\": %d, \"simulated\": %llu, "
                "\"pruned\": %llu, \"improved\": %llu, "
                "\"mean_speedup_vs_lev4\": %.4f, \"digest_oracle\": \"pass\", "
                "\"floor_oracle\": \"pass\"}\n}\n",
                aggregate_pruned_fraction, fuzz.count,
                static_cast<unsigned long long>(fuzz.simulated),
                static_cast<unsigned long long>(fuzz.pruned),
                static_cast<unsigned long long>(fuzz.improved),
                fuzz.count > 0 ? fuzz.speedup_sum / fuzz.count : 0.0);
  out << buf;
  std::fprintf(stderr, "[bench] autotune results -> %s\n", path.c_str());
}

// The compile-determinism oracle for one tuned fuzz program: the winner,
// recompiled twice, must produce identical interpreter digests.
void check_digest_oracle(int seed, const std::string& src,
                         const tune::TuneResult& r) {
  Workload w;
  w.name = "tuned-fuzz";
  w.source = src;
  const MachineModel m = MachineModel::issue(8);
  const auto compile_winner = [&] {
    return try_compile_workload(w, r.best.level, m,
                                tune::to_compile_options(r.best));
  };
  auto a = compile_winner();
  if (!a) fail(strformat("fuzz seed %d: winner failed to compile", seed));
  bool ok = false;
  std::string err;
  const std::uint64_t digest = testing::run_digest(a->fn, &ok, &err);
  if (!ok)
    fail(strformat("fuzz seed %d: winner %s failed under the interpreter: %s",
                   seed, r.best.name().c_str(), err.c_str()));
  auto b = compile_winner();
  if (!b || testing::run_digest(b->fn) != digest)
    fail(strformat("fuzz seed %d: winner %s is not compile-deterministic",
                   seed, r.best.name().c_str()));
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_9.json";
  int jobs = 0;
  int fuzz_base = 12;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
      out_path = argv[++i];
    else if (!std::strcmp(argv[i], "--no-json"))
      out_path.clear();
    else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
      jobs = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--fuzz") && i + 1 < argc)
      fuzz_base = std::atoi(argv[++i]);
    else {
      std::fprintf(stderr,
                   "usage: %s [--out PATH | --no-json] [--jobs N] [--fuzz N]\n",
                   argv[0]);
      return 1;
    }
  }

  bench::print_header(
      "Autotuning: cost-model-pruned beam search over the transformation space");

  engine::ThreadPool pool(jobs > 0 ? static_cast<unsigned>(jobs)
                                   : std::max(2u, std::thread::hardware_concurrency()));
  engine::ResultCache cache;
  tune::LocalEvaluator eval(&pool, &cache);

  // --- Suite: one search per workload at the service-default budget --------
  std::vector<SuiteRow> suite;
  std::printf("%-8s %8s %8s %8s  %-28s %5s %6s %6s\n", "workload", "lev4",
              "best", "speedup", "best config", "simd", "pruned", "mape%");
  for (const Workload& w : workload_suite()) {
    const tune::TuneResult r = tune::autotune(w.source, tune::TuneOptions{}, eval);
    if (!r.ok) fail(w.name + ": " + r.error);
    if (r.lev4_cycles == 0 || r.best_cycles > r.lev4_cycles)
      fail(strformat("%s: best %llu worse than Lev4 %llu", w.name.c_str(),
                     static_cast<unsigned long long>(r.best_cycles),
                     static_cast<unsigned long long>(r.lev4_cycles)));
    std::printf("%-8s %8llu %8llu %7.3fx  %-28s %5llu %6llu %5.1f%%\n",
                w.name.c_str(), static_cast<unsigned long long>(r.lev4_cycles),
                static_cast<unsigned long long>(r.best_cycles),
                r.speedup_vs_lev4(), r.best.name().c_str(),
                static_cast<unsigned long long>(r.simulated),
                static_cast<unsigned long long>(r.pruned),
                100.0 * r.model_mape);
    suite.push_back(SuiteRow{w.name, r});
  }

  // --- Pruning audit: pruned vs. exhaustive on the fixed sub-grid ----------
  std::vector<AuditRow> audits;
  std::uint64_t grid_total = 0, pruned_total = 0;
  const std::vector<tune::TuneConfig> grid = tune::default_audit_grid();
  std::printf("\n%-8s %5s %5s %7s  %-10s %10s %6s\n", "workload", "grid",
              "simd", "pruned", "equal_best", "precision", "mape%");
  for (const Workload& w : workload_suite()) {
    const tune::PruningAudit a =
        tune::audit_pruning(w.source, tune::TuneOptions{}, grid, eval);
    if (!a.ok) fail(w.name + " audit: " + a.error);
    if (!a.equal_best())
      fail(strformat("%s: pruned pass missed the true best (%llu vs %llu)",
                     w.name.c_str(),
                     static_cast<unsigned long long>(a.pruned_best),
                     static_cast<unsigned long long>(a.exhaustive_best)));
    grid_total += a.grid_size;
    pruned_total += a.pruned;
    std::printf("%-8s %5llu %5llu %6.1f%%  %-10s %9.1f%% %5.1f%%\n",
                w.name.c_str(), static_cast<unsigned long long>(a.grid_size),
                static_cast<unsigned long long>(a.simulated),
                100.0 * a.pruned_fraction(), "yes", 100.0 * a.precision(),
                100.0 * a.model_mape);
    audits.push_back(AuditRow{w.name, a});
  }
  const double aggregate_pruned =
      grid_total == 0 ? 0.0
                      : static_cast<double>(pruned_total) /
                            static_cast<double>(grid_total);
  if (aggregate_pruned < 0.30)
    fail(strformat("aggregate pruned fraction %.3f below the 0.30 contract",
                   aggregate_pruned));
  std::printf("aggregate: %.1f%% of the grid pruned at equal best on every "
              "workload\n", 100.0 * aggregate_pruned);

  // --- Fuzz corpus: Lev4 floor + compile-determinism digest oracle ---------
  FuzzSummary fuzz;
  fuzz.count = testing::fuzz_seed_count(fuzz_base);
  tune::TuneOptions fuzz_opts;
  fuzz_opts.beam_width = 2;
  fuzz_opts.max_rounds = 1;
  fuzz_opts.max_sims = 16;
  for (int seed = 1; seed <= fuzz.count; ++seed) {
    const std::string src =
        testing::random_program(static_cast<std::uint64_t>(seed));
    const tune::TuneResult r = tune::autotune(src, fuzz_opts, eval);
    if (!r.ok) fail(strformat("fuzz seed %d: %s", seed, r.error.c_str()));
    if (r.lev4_cycles == 0 || r.best_cycles > r.lev4_cycles)
      fail(strformat("fuzz seed %d: best worse than Lev4", seed));
    fuzz.simulated += r.simulated;
    fuzz.pruned += r.pruned;
    if (r.best_cycles < r.lev4_cycles) ++fuzz.improved;
    fuzz.speedup_sum += r.speedup_vs_lev4();
    check_digest_oracle(seed, src, r);
  }
  std::printf("\nfuzz: %d programs tuned, %llu simulated / %llu pruned, "
              "%llu improved on Lev4 (mean speedup %.3fx); digest oracle "
              "passed on every winner\n",
              fuzz.count, static_cast<unsigned long long>(fuzz.simulated),
              static_cast<unsigned long long>(fuzz.pruned),
              static_cast<unsigned long long>(fuzz.improved),
              fuzz.count > 0 ? fuzz.speedup_sum / fuzz.count : 0.0);

  bench::paper_note(
      "Reading: the paper fixes one transformation recipe (Lev4) for every "
      "loop; the tuner treats that recipe as a seed and searches the "
      "surrounding space per program.  Where Lev4 already saturates the "
      "recurrence bound the search confirms it (speedup 1.0x, the paper's "
      "claim that its levels capture the available ILP), and where the "
      "space has headroom -- a different unroll factor, a nest pass, the "
      "modulo backend -- the tuner finds it without ever simulating most "
      "of the grid: the audit section shows the analytic-then-calibrated "
      "cost model pruning the majority of candidates while still landing "
      "on the exhaustive-search best on every suite workload.");

  if (!out_path.empty())
    write_json(suite, audits, fuzz, aggregate_pruned, out_path);
  return 0;
}
