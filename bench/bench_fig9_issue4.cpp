// Regenerates Figure 9: speedup distribution for an issue-4 processor.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  ilp::bench::init(argc, argv);
  using namespace ilp;
  bench::print_header("Figure 9: speedup distribution, issue-4 processor");
  const StudyResult& s = bench::study();
  const Histogram h = speedup_histogram(s, /*width_index=*/2, fig9_speedup_buckets());
  std::printf("%s", render_histogram(h, "loops per speedup range (issue-4)").c_str());
  std::printf("\nmean speedups:");
  for (OptLevel l : kLevels) std::printf("  %s=%.2f", level_name(l), s.mean_speedup(l, 2));
  // The paper's two checkpoint counts.
  int lev2_ge3 = 0, lev2_ge4 = 0, lev4_ge3 = 0, lev4_ge4 = 0;
  for (const auto& l : s.loops) {
    if (l.speedup(OptLevel::Lev2, 2) >= 3.0) ++lev2_ge3;
    if (l.speedup(OptLevel::Lev2, 2) >= 4.0) ++lev2_ge4;
    if (l.speedup(OptLevel::Lev4, 2) >= 3.0) ++lev4_ge3;
    if (l.speedup(OptLevel::Lev4, 2) >= 4.0) ++lev4_ge4;
  }
  std::printf("\nLev2: %d loops >=3x, %d loops >=4x   (paper: 29 and 18)\n", lev2_ge3,
              lev2_ge4);
  std::printf("Lev4: %d loops >=3x, %d loops >=4x   (paper: 36 and 23)\n", lev4_ge3,
              lev4_ge4);
  std::printf("\nper-loop speedups (issue-4):\n%s", render_speedup_table(s, 2).c_str());
  bench::paper_note(
      "Paper averages for issue-4: Lev3 = 3.73, Lev4 = 4.35 (Section 3.2).");
  ilp::bench::finish();
  return 0;
}
