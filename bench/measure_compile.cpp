// Standalone compile-phase measurement: ns/compile and allocs/compile for
// the full pass pipeline on NAS-5 at Lev4/issue-8, plus a per-phase
// allocation breakdown on a warm context.  The same tool (sans breakdown)
// was run against the pre-arena tree for the BENCH_4 comparison recorded in
// EXPERIMENTS.md.
#include <chrono>
#include <cstdio>

#include "alloc_hook.hpp"
#include "frontend/compile.hpp"
#include "harness/experiment.hpp"
#include "ir/verifier.hpp"
#include "machine/machine.hpp"
#include "opt/constprop.hpp"
#include "opt/copyprop.hpp"
#include "opt/cse.hpp"
#include "opt/dce.hpp"
#include "opt/ivopt.hpp"
#include "opt/licm.hpp"
#include "opt/pipeline.hpp"
#include "sched/scheduler.hpp"
#include "support/compile_ctx.hpp"
#include "trans/accexpand.hpp"
#include "trans/combine.hpp"
#include "trans/indexpand.hpp"
#include "trans/rename.hpp"
#include "trans/searchexpand.hpp"
#include "trans/strengthred.hpp"
#include "trans/treeheight.hpp"
#include "trans/unroll.hpp"
#include "workloads/suite.hpp"

using namespace ilp;

namespace {

std::uint64_t phase_allocs(const char* name, const std::uint64_t base,
                           void (*run)(Function&, CompileContext&), Function& fn,
                           CompileContext& ctx) {
  const allochook::Snapshot before = allochook::snapshot();
  run(fn, ctx);
  const std::uint64_t n = allochook::delta(before, allochook::snapshot()).count;
  std::printf("  %-16s %6llu allocs\n", name, static_cast<unsigned long long>(n));
  return base + n;
}

}  // namespace

int main(int argc, char** argv) {
  DiagnosticEngine d;
  auto r = dsl::compile(find_workload("NAS-5")->source, d);
  if (!r) return 1;
  const Function base = r->fn;
  const MachineModel m = MachineModel::issue(8);
  const TransformSet set = TransformSet::for_level(OptLevel::Lev4);

  // Warm-up: 20 compiles so any lazily-built state is in place.
  for (int i = 0; i < 20; ++i) {
    Function fn = base;
    compile_with_transforms(fn, set, m, {});
  }

  const int kIters = 500;
  std::uint64_t ns = 0;
  std::uint64_t allocs = 0;
  std::uint64_t bytes = 0;
  for (int i = 0; i < kIters; ++i) {
    Function fn = base;
    const allochook::Snapshot before = allochook::snapshot();
    const auto t0 = std::chrono::steady_clock::now();
    compile_with_transforms(fn, set, m, {});
    const auto t1 = std::chrono::steady_clock::now();
    const allochook::Snapshot diff = allochook::delta(before, allochook::snapshot());
    ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    allocs += diff.count;
    bytes += diff.bytes;
  }
  std::printf("ns/compile=%llu allocs/compile=%llu alloc_bytes/compile=%llu\n",
              static_cast<unsigned long long>(ns / kIters),
              static_cast<unsigned long long>(allocs / kIters),
              static_cast<unsigned long long>(bytes / kIters));

  if (argc > 1 && argv[1][0] == 'c') {  // "conv": conventional sub-pass breakdown
    CompileContext& ctx = CompileContext::local();
    Function fn = base;
    ctx.begin_compile();
    std::uint64_t counts[8] = {};
    const char* names[8] = {"constprop", "copyprop", "cse", "copyprop2",
                            "dce", "licm", "ivopt", "verify"};
    auto probe = [&](int which, auto&& call) {
      const allochook::Snapshot before = allochook::snapshot();
      call();
      counts[which] += allochook::delta(before, allochook::snapshot()).count;
      return true;
    };
    probe(7, [&] { verify_or_die(fn, "probe"); });
    for (int round = 0; round < 8; ++round) {
      bool changed = false;
      probe(0, [&] { changed |= constant_propagation(fn, ctx); });
      probe(1, [&] { changed |= copy_propagation(fn, ctx); });
      probe(2, [&] { changed |= common_subexpression_elimination(fn, ctx); });
      probe(3, [&] { changed |= copy_propagation(fn, ctx); });
      probe(4, [&] { changed |= dead_code_elimination(fn, ctx); });
      if (!changed) break;
    }
    probe(5, [&] { loop_invariant_code_motion(fn, ctx); });
    probe(6, [&] { induction_variable_optimization(fn, ctx); });
    for (int round = 0; round < 8; ++round) {
      bool changed = false;
      probe(0, [&] { changed |= constant_propagation(fn, ctx); });
      probe(1, [&] { changed |= copy_propagation(fn, ctx); });
      probe(2, [&] { changed |= common_subexpression_elimination(fn, ctx); });
      probe(3, [&] { changed |= copy_propagation(fn, ctx); });
      probe(4, [&] { changed |= dead_code_elimination(fn, ctx); });
      if (!changed) break;
    }
    std::printf("conventional sub-pass allocs (one warm compile):\n");
    for (int i = 0; i < 8; ++i)
      std::printf("  %-12s %6llu\n", names[i], static_cast<unsigned long long>(counts[i]));
    return 0;
  }
  if (argc > 1) {  // any argument: print the warm per-phase breakdown
    CompileContext& ctx = CompileContext::local();
    Function fn = base;
    ctx.begin_compile();
    std::uint64_t total = 0;
    std::printf("warm per-phase allocs (one compile):\n");
    total = phase_allocs("conventional", total,
                         [](Function& f, CompileContext& c) {
                           run_conventional_optimizations(f, c);
                         }, fn, ctx);
    total = phase_allocs("unroll", total,
                         [](Function& f, CompileContext&) { unroll_loops(f); }, fn, ctx);
    total = phase_allocs("accexpand", total,
                         [](Function& f, CompileContext& c) {
                           accumulator_expansion(f, {}, c);
                         }, fn, ctx);
    total = phase_allocs("indexpand", total,
                         [](Function& f, CompileContext& c) { induction_expansion(f, c); },
                         fn, ctx);
    total = phase_allocs("searchexpand", total,
                         [](Function& f, CompileContext& c) { search_expansion(f, c); },
                         fn, ctx);
    total = phase_allocs("rename", total,
                         [](Function& f, CompileContext& c) { rename_registers(f, c); },
                         fn, ctx);
    total = phase_allocs("combine", total,
                         [](Function& f, CompileContext&) { operation_combining(f); },
                         fn, ctx);
    total = phase_allocs("strengthred", total,
                         [](Function& f, CompileContext&) { strength_reduction(f); },
                         fn, ctx);
    total = phase_allocs("treeheight", total,
                         [](Function& f, CompileContext& c) {
                           tree_height_reduction(f, {}, c);
                         }, fn, ctx);
    total = phase_allocs("cleanup", total,
                         [](Function& f, CompileContext& c) { run_cleanup(f, c); }, fn,
                         ctx);
    total = phase_allocs("schedule", total,
                         [](Function& f, CompileContext& c) {
                           schedule_function(f, MachineModel::issue(8), c);
                         }, fn, ctx);
    std::printf("  %-16s %6llu allocs\n", "total", static_cast<unsigned long long>(total));
  }
  return 0;
}
