// Regenerates Figure 8: speedup distribution for an issue-2 superscalar/VLIW
// processor at transformation levels Conv..Lev4.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  ilp::bench::init(argc, argv);
  using namespace ilp;
  bench::print_header("Figure 8: speedup distribution, issue-2 processor");
  const StudyResult& s = bench::study();
  const Histogram h = speedup_histogram(s, /*width_index=*/1, fig8_speedup_buckets());
  std::printf("%s", render_histogram(h, "loops per speedup range (issue-2)").c_str());
  std::printf("\nmean speedups:");
  for (OptLevel l : kLevels) std::printf("  %s=%.2f", level_name(l), s.mean_speedup(l, 1));
  std::printf("\n\nper-loop speedups (issue-2):\n%s", render_speedup_table(s, 1).c_str());
  bench::paper_note(
      "For an issue-2 processor, loop unrolling and register renaming are "
      "sufficient compiler transformations to fully utilize the processor "
      "resources (Section 3.2): Lev3/Lev4 should add little over Lev2 here.");
  ilp::bench::finish();
  return 0;
}
