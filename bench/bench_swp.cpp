// Software pipelining study (ours): the paper's Related Work notes that
// software pipelining methods "also benefit from dependence elimination but
// the effect of the transformations on these methods is not evaluated in
// this study".  This binary evaluates exactly that: issue-8 mean speedups
// with and without loop shifting, at Conv, Lev2 and Lev4, over the 40 nests.
#include <cstdio>

#include "bench_common.hpp"
#include "frontend/compile.hpp"
#include "sched/scheduler.hpp"
#include "trans/swp.hpp"

namespace {

using namespace ilp;

double mean_speedup(OptLevel level, int stages) {
  const MachineModel m8 = MachineModel::issue(8);
  const MachineModel m1 = MachineModel::issue(1);
  double sum = 0.0;
  for (const Workload& w : workload_suite()) {
    DiagnosticEngine d0;
    auto base = dsl::compile(w.source, d0);
    compile_at_level(base->fn, OptLevel::Conv, m1);
    const std::uint64_t base_cycles = simulate_cycles(base->fn, m1);

    DiagnosticEngine d1;
    auto opt = dsl::compile(w.source, d1);
    CompileOptions copts;
    copts.schedule = false;
    compile_at_level(opt->fn, level, m8, copts);
    if (stages >= 2) {
      SwpOptions so;
      so.stages = stages;
      software_pipeline(opt->fn, m8, so);
    }
    schedule_function(opt->fn, m8);
    sum += static_cast<double>(base_cycles) /
           static_cast<double>(simulate_cycles(opt->fn, m8));
  }
  return sum / static_cast<double>(workload_suite().size());
}

}  // namespace

int main(int argc, char** argv) {
  ilp::bench::init(argc, argv);
  using namespace ilp;
  bench::print_header(
      "Software pipelining (loop shifting) x transformation level, issue-8");

  std::printf("%-8s %12s %12s %12s\n", "level", "no pipeline", "2-stage", "3-stage");
  for (OptLevel level : {OptLevel::Conv, OptLevel::Lev2, OptLevel::Lev4}) {
    std::printf("%-8s %12.2f %12.2f %12.2f\n", level_name(level), mean_speedup(level, 0),
                mean_speedup(level, 2), mean_speedup(level, 3));
  }
  bench::paper_note(
      "Reading: pipelining recovers cross-iteration overlap that unrolling "
      "would otherwise provide, so its marginal gain is largest at Conv (no "
      "unrolling) and smallest at Lev4 — which answers the paper's open "
      "question: the ILP transformations and software pipelining attack the "
      "same recurrences, and the expansions still matter because pipelining "
      "alone cannot break an accumulator's dependence chain.");
  ilp::bench::finish();
  return 0;
}
