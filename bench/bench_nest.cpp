// Affine nest restructuring axis (BENCH_7): simulator-validated cycles for
// the nest_suite() workloads with the restructuring pre-passes off vs. on
// (interchange + fusion + fission + tiling, tile size 4), across Conv and
// Lev4 at issue widths 1/2/4/8, plus which passes fired per cell.  The
// NEST-SKEW row is the legality baseline: its only dependence is
// interchange-illegal, so on == off there by construction.
//
//   bench_nest [--out PATH]     write the JSON artifact (default BENCH_7.json)
//   bench_nest --no-json        table only
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness/experiment.hpp"
#include "workloads/nest_suite.hpp"

namespace {

using namespace ilp;

constexpr int kTileSize = 4;

struct CellRow {
  std::string workload;
  OptLevel level = OptLevel::Conv;
  int width = 1;
  bool ok = false;
  std::uint64_t off_cycles = 0;  // nest passes disabled
  std::uint64_t on_cycles = 0;   // interchange+fuse+fission+tile
  int interchanged = 0;
  int fused = 0;
  int fissioned = 0;
  int tiled = 0;
};

CellRow run_cell(const Workload& w, OptLevel level, int width) {
  CellRow cell;
  cell.workload = w.name;
  cell.level = level;
  cell.width = width;
  const MachineModel m = MachineModel::issue(width);

  auto off_c = try_compile_workload(w, level, m);

  CompileOptions on_opts;
  on_opts.nest.interchange = true;
  on_opts.nest.fuse = true;
  on_opts.nest.fission = true;
  on_opts.nest.tile = true;
  on_opts.nest.tile_size = kTileSize;
  TransformStats tstats;
  auto on_c = try_compile_workload(w, level, m, on_opts, &tstats);
  if (!off_c || !on_c) return cell;

  auto off_cycles = try_simulate_cycles(off_c->fn, m);
  auto on_cycles = try_simulate_cycles(on_c->fn, m);
  if (!off_cycles || !on_cycles) return cell;

  cell.ok = true;
  cell.off_cycles = *off_cycles;
  cell.on_cycles = *on_cycles;
  cell.interchanged = tstats.loops_interchanged;
  cell.fused = tstats.loops_fused;
  cell.fissioned = tstats.loops_fissioned;
  cell.tiled = tstats.loops_tiled;
  return cell;
}

void write_json(const std::vector<CellRow>& cells, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"ilp92-nest-v1\",\n  \"tile_size\": " << kTileSize
      << ",\n  \"cells\": [";
  bool first = true;
  for (const CellRow& c : cells) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"workload\": \"" << c.workload << "\", \"level\": \""
        << level_name(c.level) << "\", \"width\": " << c.width
        << ", \"ok\": " << (c.ok ? "true" : "false");
    if (c.ok) {
      out << ", \"off_cycles\": " << c.off_cycles
          << ", \"on_cycles\": " << c.on_cycles
          << ", \"interchanged\": " << c.interchanged
          << ", \"fused\": " << c.fused << ", \"fissioned\": " << c.fissioned
          << ", \"tiled\": " << c.tiled;
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  std::fprintf(stderr, "[bench] nest results -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_7.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
      out_path = argv[++i];
    else if (!std::strcmp(argv[i], "--no-json"))
      out_path.clear();
    else {
      std::fprintf(stderr, "usage: %s [--out PATH | --no-json]\n", argv[0]);
      return 1;
    }
  }

  bench::print_header("Affine nest restructuring: cycles off vs on, passes fired");

  std::vector<CellRow> cells;
  for (const Workload& w : nest_suite())
    for (OptLevel level : {OptLevel::Conv, OptLevel::Lev4})
      for (int width : kIssueWidths) cells.push_back(run_cell(w, level, width));

  std::printf("%-10s %-6s %-6s %10s %10s %7s  %s\n", "workload", "level", "width",
              "off-cyc", "on-cyc", "ratio", "fired (i/f/s/t)");
  for (const CellRow& c : cells) {
    if (!c.ok) {
      std::printf("%-10s %-6s %-6d %10s %10s %7s\n", c.workload.c_str(),
                  level_name(c.level), c.width, "-", "-", "-");
      continue;
    }
    std::printf("%-10s %-6s %-6d %10llu %10llu %7.3f  %d/%d/%d/%d\n",
                c.workload.c_str(), level_name(c.level), c.width,
                static_cast<unsigned long long>(c.off_cycles),
                static_cast<unsigned long long>(c.on_cycles),
                static_cast<double>(c.on_cycles) / static_cast<double>(c.off_cycles),
                c.interchanged, c.fused, c.fissioned, c.tiled);
  }
  bench::paper_note(
      "Reading: the fired (i/f/s/t) matrix pins where each pass engages -- "
      "interchange+tile on the transposed traversals (NEST-XPOSE, NEST-TILE), "
      "fusion on the adjacent streams (NEST-FUSE, NEST-CHAIN), fission on "
      "the mixed recurrence (NEST-FISS) -- and NEST-SKEW is the legality "
      "control: its (<,>) dependence rejects every reordering, so on == off "
      "there exactly.  The simulator models a flat memory (every load is 2 "
      "cycles), so the locality payoff that motivates interchange/tiling is "
      "invisible here; what the cycle columns show instead is the pure "
      "loop-control cost the restructured nests pay (ratio > 1), i.e. the "
      "overhead a cache hierarchy must amortize.  Fusion, whose benefit IS "
      "control overhead removal, is the one pass that already wins on this "
      "machine model.  That split is the paper's own framing: its eight ILP "
      "transformations target issue width, and it defers memory-hierarchy "
      "restructuring to future cache-aware compilers (Section 5).");

  if (!out_path.empty()) write_json(cells, out_path);
  return 0;
}
