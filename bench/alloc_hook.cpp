// Global operator new/delete interposer counting every heap allocation made
// by the process.  See alloc_hook.hpp for the reading side.
//
// Only the allocating forms are replaced (plain, array, aligned, nothrow);
// every operator delete forwards straight to free.  Counting is two relaxed
// atomic adds — safe from any thread, including before main().
#include "alloc_hook.hpp"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_count{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  return p;
}

}  // namespace

namespace ilp::allochook {

Snapshot snapshot() {
  return {g_count.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

}  // namespace ilp::allochook

void* operator new(std::size_t size) {
  void* p = counted_alloc(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size, alignof(std::max_align_t));
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size, alignof(std::max_align_t));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
