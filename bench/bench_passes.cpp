// google-benchmark microbenchmarks of compiler-pass throughput: how fast each
// phase of the pipeline runs on representative workloads.
//
// The "HotPath" benchmarks isolate the per-cell pipeline the study spends its
// cold-cache time in — dependence-graph construction, list scheduling and
// cycle-accurate simulation on the largest Lev4/issue-8 superblock — plus one
// end-to-end cold study.  Their JSON output (--benchmark_format=json) is the
// perf-trajectory record checked in as BENCH_<pr>.json; CI runs them as a
// crash smoke without asserting timings.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>

#include "alloc_hook.hpp"
#include "analysis/cfg.hpp"
#include "analysis/depgraph.hpp"
#include "analysis/dominators.hpp"
#include "analysis/liveness.hpp"
#include "analysis/loops.hpp"
#include "frontend/compile.hpp"
#include "harness/experiment.hpp"
#include "opt/constprop.hpp"
#include "opt/cse.hpp"
#include "opt/dce.hpp"
#include "opt/pipeline.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "support/compile_ctx.hpp"
#include "trans/accexpand.hpp"
#include "trans/combine.hpp"
#include "trans/indexpand.hpp"
#include "trans/level.hpp"
#include "trans/rename.hpp"
#include "trans/strengthred.hpp"
#include "trans/treeheight.hpp"
#include "trans/unroll.hpp"

namespace {

using namespace ilp;

const Workload& big_loop() { return *find_workload("NAS-5"); }
const Workload& small_loop() { return *find_workload("dotprod"); }

Function compiled_conv(const Workload& w) {
  DiagnosticEngine d;
  auto r = dsl::compile(w.source, d);
  run_conventional_optimizations(r->fn);
  return std::move(r->fn);
}

void BM_FrontendCompile(benchmark::State& state) {
  for (auto _ : state) {
    DiagnosticEngine d;
    auto r = dsl::compile(big_loop().source, d);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FrontendCompile);

void BM_ConventionalPipeline(benchmark::State& state) {
  for (auto _ : state) {
    DiagnosticEngine d;
    auto r = dsl::compile(big_loop().source, d);
    run_conventional_optimizations(r->fn);
    benchmark::DoNotOptimize(r->fn.num_insts());
  }
}
BENCHMARK(BM_ConventionalPipeline);

void BM_UnrollPlusRename(benchmark::State& state) {
  const Function base = compiled_conv(small_loop());
  for (auto _ : state) {
    Function fn = base;
    unroll_loops(fn);
    rename_registers(fn);
    benchmark::DoNotOptimize(fn.num_insts());
  }
}
BENCHMARK(BM_UnrollPlusRename);

void BM_ExpansionTransforms(benchmark::State& state) {
  Function base = compiled_conv(small_loop());
  unroll_loops(base);
  for (auto _ : state) {
    Function fn = base;
    accumulator_expansion(fn);
    induction_expansion(fn);
    benchmark::DoNotOptimize(fn.num_insts());
  }
}
BENCHMARK(BM_ExpansionTransforms);

void BM_Lev3Transforms(benchmark::State& state) {
  Function base = compiled_conv(small_loop());
  unroll_loops(base);
  rename_registers(base);
  for (auto _ : state) {
    Function fn = base;
    operation_combining(fn);
    strength_reduction(fn);
    tree_height_reduction(fn);
    benchmark::DoNotOptimize(fn.num_insts());
  }
}
BENCHMARK(BM_Lev3Transforms);

void BM_SuperblockSchedule(benchmark::State& state) {
  DiagnosticEngine d;
  auto r = dsl::compile(big_loop().source, d);
  compile_at_level(r->fn, OptLevel::Lev4, MachineModel::issue(8),
                   CompileOptions{{8, 160}, /*schedule=*/false});
  for (auto _ : state) {
    Function fn = r->fn;
    schedule_function(fn, MachineModel::issue(8));
    benchmark::DoNotOptimize(fn.num_insts());
  }
}
BENCHMARK(BM_SuperblockSchedule);

void BM_RegisterUsageMeasurement(benchmark::State& state) {
  DiagnosticEngine d;
  auto r = dsl::compile(big_loop().source, d);
  compile_at_level(r->fn, OptLevel::Lev4, MachineModel::issue(8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_register_usage(r->fn).total());
  }
}
BENCHMARK(BM_RegisterUsageMeasurement);

void BM_SimulatorThroughput(benchmark::State& state) {
  DiagnosticEngine d;
  auto r = dsl::compile(find_workload("NAS-3")->source, d);
  compile_at_level(r->fn, OptLevel::Lev4, MachineModel::issue(8));
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const RunOutcome out = run_seeded(r->fn, MachineModel::issue(8));
    instructions += out.result.instructions;
    benchmark::DoNotOptimize(out.result.cycles);
  }
  state.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput);

void BM_EndToEndWorkload(benchmark::State& state) {
  const Workload& w = *find_workload("add");
  for (auto _ : state) {
    const CompiledLoop c = compile_workload(w, OptLevel::Lev4, MachineModel::issue(8));
    benchmark::DoNotOptimize(simulate_cycles(c.fn, MachineModel::issue(8)));
  }
}
BENCHMARK(BM_EndToEndWorkload);

// ---- Hot-path suite -------------------------------------------------------
// Fixture: the largest workload of the suite (NAS-5, 71 statements) at Lev4
// for the issue-8 machine, unscheduled — the biggest superblock the study
// ever hands to DepGraph/list_schedule.

struct HotPathFixture {
  Function fn{"x"};
  BlockId big_block = kNoBlock;
  std::vector<BlockId> preheaders;

  HotPathFixture() {
    DiagnosticEngine d;
    auto r = dsl::compile(find_workload("NAS-5")->source, d);
    fn = std::move(r->fn);
    compile_at_level(fn, OptLevel::Lev4, MachineModel::issue(8),
                     CompileOptions{{}, /*schedule=*/false});
    const Cfg cfg(fn);
    const Dominators dom(cfg);
    preheaders.assign(fn.num_blocks(), kNoBlock);
    for (const SimpleLoop& loop : find_simple_loops(cfg, dom))
      preheaders[loop.body] = loop.preheader;
    std::size_t best = 0;
    for (const Block& b : fn.blocks())
      if (b.insts.size() > best) {
        best = b.insts.size();
        big_block = b.id;
      }
  }
};

const HotPathFixture& hot_path() {
  static HotPathFixture f;
  return f;
}

void BM_HotPathDepGraphBuild(benchmark::State& state) {
  const HotPathFixture& f = hot_path();
  const MachineModel m = MachineModel::issue(8);
  const Cfg cfg(f.fn);
  const Liveness live(cfg);
  for (auto _ : state) {
    const DepGraph g(f.fn, f.big_block, m, live, f.preheaders[f.big_block]);
    benchmark::DoNotOptimize(g.edges().size());
  }
  state.counters["insts"] =
      static_cast<double>(f.fn.block(f.big_block).insts.size());
}
BENCHMARK(BM_HotPathDepGraphBuild);

void BM_HotPathListSchedule(benchmark::State& state) {
  const HotPathFixture& f = hot_path();
  const MachineModel m = MachineModel::issue(8);
  const Cfg cfg(f.fn);
  const Liveness live(cfg);
  const DepGraph g(f.fn, f.big_block, m, live, f.preheaders[f.big_block]);
  for (auto _ : state) {
    const BlockSchedule s = list_schedule(g, f.fn, f.big_block, m);
    benchmark::DoNotOptimize(s.makespan);
  }
}
BENCHMARK(BM_HotPathListSchedule);

// The acceptance metric for this PR's speedup target: dependence-graph
// construction plus list scheduling of the largest Lev4/issue-8 superblock.
void BM_HotPathDepGraphPlusSchedule(benchmark::State& state) {
  const HotPathFixture& f = hot_path();
  const MachineModel m = MachineModel::issue(8);
  const Cfg cfg(f.fn);
  const Liveness live(cfg);
  for (auto _ : state) {
    const DepGraph g(f.fn, f.big_block, m, live, f.preheaders[f.big_block]);
    const BlockSchedule s = list_schedule(g, f.fn, f.big_block, m);
    benchmark::DoNotOptimize(s.makespan);
  }
}
BENCHMARK(BM_HotPathDepGraphPlusSchedule);

void BM_HotPathScheduleFunction(benchmark::State& state) {
  const HotPathFixture& f = hot_path();
  const MachineModel m = MachineModel::issue(8);
  for (auto _ : state) {
    Function fn = f.fn;
    schedule_function(fn, m);
    benchmark::DoNotOptimize(fn.num_insts());
  }
}
BENCHMARK(BM_HotPathScheduleFunction);

// Interlock-heavy simulation: dotprod's loop-carried fadd recurrence on the
// issue-8 machine stalls most cycles, the case stall cycle-skipping targets.
void BM_HotPathSimulateStallHeavy(benchmark::State& state) {
  DiagnosticEngine d;
  auto r = dsl::compile(find_workload("dotprod")->source, d);
  compile_at_level(r->fn, OptLevel::Conv, MachineModel::issue(8));
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const RunOutcome out = run_seeded(r->fn, MachineModel::issue(8));
    cycles += out.result.cycles;
    benchmark::DoNotOptimize(out.result.stall_cycles);
  }
  state.counters["cycles/s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HotPathSimulateStallHeavy);

void BM_HotPathSimulateLev4Issue8(benchmark::State& state) {
  const HotPathFixture& f = hot_path();
  Function fn = f.fn;
  schedule_function(fn, MachineModel::issue(8));
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const RunOutcome out = run_seeded(fn, MachineModel::issue(8));
    instructions += out.result.instructions;
    benchmark::DoNotOptimize(out.result.cycles);
  }
  state.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HotPathSimulateLev4Issue8);

// ---- Compile-pipeline allocation benchmarks -------------------------------
// The full pass pipeline (conventional opts through scheduling, no
// simulation) on the largest workload, with heap-allocation counts from the
// operator-new interposer (alloc_hook.cpp) reported next to ns/compile.
// The Warm variant is the service steady state: every compile reuses the
// calling thread's pooled CompileContext, so pass scratch (dense maps,
// liveness rows, arena chunks) is already hot.  The ColdContext variant
// constructs a fresh context per compile — the difference is what the
// context pooling buys.

void BM_HotPathCompileLev4Issue8Warm(benchmark::State& state) {
  DiagnosticEngine d;
  auto r = dsl::compile(big_loop().source, d);
  const Function base = r->fn;
  const MachineModel m = MachineModel::issue(8);
  const TransformSet set = TransformSet::for_level(OptLevel::Lev4);
  {
    Function fn = base;  // prime the thread's context: measure steady state
    compile_with_transforms(fn, set, m, {});
  }
  std::uint64_t allocs = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    Function fn = base;
    const allochook::Snapshot before = allochook::snapshot();
    compile_with_transforms(fn, set, m, {});
    const allochook::Snapshot diff = allochook::delta(before, allochook::snapshot());
    allocs += diff.count;
    bytes += diff.bytes;
    benchmark::DoNotOptimize(fn.num_insts());
  }
  state.counters["allocs/compile"] =
      benchmark::Counter(static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  state.counters["alloc_bytes/compile"] =
      benchmark::Counter(static_cast<double>(bytes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_HotPathCompileLev4Issue8Warm);

void BM_HotPathCompileLev4Issue8ColdContext(benchmark::State& state) {
  DiagnosticEngine d;
  auto r = dsl::compile(big_loop().source, d);
  const Function base = r->fn;
  const MachineModel m = MachineModel::issue(8);
  const TransformSet set = TransformSet::for_level(OptLevel::Lev4);
  std::uint64_t allocs = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    Function fn = base;
    const allochook::Snapshot before = allochook::snapshot();
    CompileContext ctx;
    compile_with_transforms(fn, set, m, {}, nullptr, ctx);
    const allochook::Snapshot diff = allochook::delta(before, allochook::snapshot());
    allocs += diff.count;
    bytes += diff.bytes;
    benchmark::DoNotOptimize(fn.num_insts());
  }
  state.counters["allocs/compile"] =
      benchmark::Counter(static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
  state.counters["alloc_bytes/compile"] =
      benchmark::Counter(static_cast<double>(bytes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_HotPathCompileLev4Issue8ColdContext);

// Full cold-cache study, serial: every cell recompiled, rescheduled and
// resimulated — the end-to-end wall-time figure the ROADMAP tracks.
void BM_HotPathColdStudySerial(benchmark::State& state) {
  for (auto _ : state) {
    StudyOptions opts;
    opts.jobs = 1;
    const StudyResult res = run_study(opts);
    benchmark::DoNotOptimize(res.loops.size());
    if (res.stats.failed_cells != 0) state.SkipWithError("study cell failed");
  }
}
BENCHMARK(BM_HotPathColdStudySerial)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

BENCHMARK_MAIN();
