// google-benchmark microbenchmarks of compiler-pass throughput: how fast each
// phase of the pipeline runs on representative workloads.
#include <benchmark/benchmark.h>

#include "frontend/compile.hpp"
#include "harness/experiment.hpp"
#include "opt/constprop.hpp"
#include "opt/cse.hpp"
#include "opt/dce.hpp"
#include "opt/pipeline.hpp"
#include "regalloc/regalloc.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "trans/accexpand.hpp"
#include "trans/combine.hpp"
#include "trans/indexpand.hpp"
#include "trans/rename.hpp"
#include "trans/strengthred.hpp"
#include "trans/treeheight.hpp"
#include "trans/unroll.hpp"

namespace {

using namespace ilp;

const Workload& big_loop() { return *find_workload("NAS-5"); }
const Workload& small_loop() { return *find_workload("dotprod"); }

Function compiled_conv(const Workload& w) {
  DiagnosticEngine d;
  auto r = dsl::compile(w.source, d);
  run_conventional_optimizations(r->fn);
  return std::move(r->fn);
}

void BM_FrontendCompile(benchmark::State& state) {
  for (auto _ : state) {
    DiagnosticEngine d;
    auto r = dsl::compile(big_loop().source, d);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FrontendCompile);

void BM_ConventionalPipeline(benchmark::State& state) {
  for (auto _ : state) {
    DiagnosticEngine d;
    auto r = dsl::compile(big_loop().source, d);
    run_conventional_optimizations(r->fn);
    benchmark::DoNotOptimize(r->fn.num_insts());
  }
}
BENCHMARK(BM_ConventionalPipeline);

void BM_UnrollPlusRename(benchmark::State& state) {
  const Function base = compiled_conv(small_loop());
  for (auto _ : state) {
    Function fn = base;
    unroll_loops(fn);
    rename_registers(fn);
    benchmark::DoNotOptimize(fn.num_insts());
  }
}
BENCHMARK(BM_UnrollPlusRename);

void BM_ExpansionTransforms(benchmark::State& state) {
  Function base = compiled_conv(small_loop());
  unroll_loops(base);
  for (auto _ : state) {
    Function fn = base;
    accumulator_expansion(fn);
    induction_expansion(fn);
    benchmark::DoNotOptimize(fn.num_insts());
  }
}
BENCHMARK(BM_ExpansionTransforms);

void BM_Lev3Transforms(benchmark::State& state) {
  Function base = compiled_conv(small_loop());
  unroll_loops(base);
  rename_registers(base);
  for (auto _ : state) {
    Function fn = base;
    operation_combining(fn);
    strength_reduction(fn);
    tree_height_reduction(fn);
    benchmark::DoNotOptimize(fn.num_insts());
  }
}
BENCHMARK(BM_Lev3Transforms);

void BM_SuperblockSchedule(benchmark::State& state) {
  DiagnosticEngine d;
  auto r = dsl::compile(big_loop().source, d);
  compile_at_level(r->fn, OptLevel::Lev4, MachineModel::issue(8),
                   CompileOptions{{8, 160}, /*schedule=*/false});
  for (auto _ : state) {
    Function fn = r->fn;
    schedule_function(fn, MachineModel::issue(8));
    benchmark::DoNotOptimize(fn.num_insts());
  }
}
BENCHMARK(BM_SuperblockSchedule);

void BM_RegisterUsageMeasurement(benchmark::State& state) {
  DiagnosticEngine d;
  auto r = dsl::compile(big_loop().source, d);
  compile_at_level(r->fn, OptLevel::Lev4, MachineModel::issue(8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_register_usage(r->fn).total());
  }
}
BENCHMARK(BM_RegisterUsageMeasurement);

void BM_SimulatorThroughput(benchmark::State& state) {
  DiagnosticEngine d;
  auto r = dsl::compile(find_workload("NAS-3")->source, d);
  compile_at_level(r->fn, OptLevel::Lev4, MachineModel::issue(8));
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const RunOutcome out = run_seeded(r->fn, MachineModel::issue(8));
    instructions += out.result.instructions;
    benchmark::DoNotOptimize(out.result.cycles);
  }
  state.counters["instrs/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput);

void BM_EndToEndWorkload(benchmark::State& state) {
  const Workload& w = *find_workload("add");
  for (auto _ : state) {
    const CompiledLoop c = compile_workload(w, OptLevel::Lev4, MachineModel::issue(8));
    benchmark::DoNotOptimize(simulate_cycles(c.fn, MachineModel::issue(8)));
  }
}
BENCHMARK(BM_EndToEndWorkload);

}  // namespace

BENCHMARK_MAIN();
