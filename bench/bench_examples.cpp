// Regenerates the paper's Section 2 worked examples (Figures 1, 3, 5, 6, 7)
// through the full pipeline: DSL source -> Conv/Lev2/Lev3/Lev4 -> superblock
// schedule -> execution-driven cycles per innermost iteration on the
// infinite-issue machine the figures assume.
#include <cstdio>
#include <functional>
#include <string>

#include "bench_common.hpp"
#include "frontend/compile.hpp"
#include "sim/simulator.hpp"
#include "support/strings.hpp"

namespace {

using namespace ilp;

// Steady-state cycles per iteration by differencing two trip counts.
double cycles_per_iter(const std::function<std::string(std::int64_t)>& src_for,
                       OptLevel level, std::int64_t n1, std::int64_t n2) {
  auto run = [&](std::int64_t n) {
    DiagnosticEngine diags;
    auto r = dsl::compile(src_for(n), diags);
    if (!r) {
      std::fprintf(stderr, "compile failed: %s\n", diags.to_string().c_str());
      std::exit(1);
    }
    compile_at_level(r->fn, level, MachineModel::issue(64));
    return simulate_cycles(r->fn, MachineModel::issue(64));
  };
  return static_cast<double>(run(n2) - run(n1)) / static_cast<double>(n2 - n1);
}

void report(const char* figure, const char* what,
            const std::function<std::string(std::int64_t)>& src_for, const char* paper) {
  std::printf("%-42s", strformat("%s  (%s)", figure, what).c_str());
  for (OptLevel l : {OptLevel::Conv, OptLevel::Lev2, OptLevel::Lev3, OptLevel::Lev4})
    std::printf("  %s=%5.2f", level_name(l), cycles_per_iter(src_for, l, 64, 256));
  std::printf("   [paper: %s]\n", paper);
}

}  // namespace

int main(int argc, char** argv) {
  ilp::bench::init(argc, argv);
  using namespace ilp;
  bench::print_header(
      "Figures 1/3/5/6/7: worked examples, cycles per innermost iteration "
      "(infinite issue)");

  report("Figure 1 C(j)=A(j)+B(j)", "unroll+rename", [](std::int64_t n) {
    return strformat(R"(
program fig1
array A[%lld] fp
array B[%lld] fp
array C[%lld] fp
loop j = 0 to %lld {
  C[j] = A[j] + B[j];
}
)", (long long)n, (long long)n, (long long)n, (long long)(n - 1));
  }, "7.0 Conv, 2.7 unroll3+rename");

  report("Figure 3 matmul inner", "acc expansion", [](std::int64_t n) {
    return strformat(R"(
program fig3
array A[%lld] fp
array B[%lld] fp
scalar c fp out
loop k = 0 to %lld {
  c = c + A[k] * B[k];
}
)", (long long)n, (long long)n, (long long)(n - 1));
  }, "8.0 Conv, 4.7 Lev2(3x), 3.3 +acc, 2.7 +ind");

  report("Figure 5 strided C(j)=A(j)*B(j)", "ind expansion", [](std::int64_t n) {
    return strformat(R"(
program fig5
array A[%lld] fp
array B[%lld] fp
array C[%lld] fp
loop i = 0 to %lld step 2 {
  C[i] = A[i] * B[i];
}
)", (long long)(2 * n), (long long)(2 * n), (long long)(2 * n), (long long)(2 * n - 2));
  }, "6.0 Conv, 2.7 Lev2(3x), 2.0 +ind");

  report("Figure 6 search loop", "op combining", [](std::int64_t n) {
    return strformat(R"(
program fig6
array A[%lld] fp
scalar t fp out
loop i = 0 to %lld {
  t = A[i] - 3.2;
  if (t >= 10.0) break;
}
)", (long long)(n + 4), (long long)(n + 2));
  }, "7.0 Conv, 5.0 after combining (illustrative)");

  report("Figure 7 B*(C+D)*E*F/G", "height reduction", [](std::int64_t n) {
    return strformat(R"(
program fig7
array B[%lld] fp
array C[%lld] fp
array D[%lld] fp
array E[%lld] fp
array F[%lld] fp
array G[%lld] fp
array R[%lld] fp
loop i = 0 to %lld {
  R[i] = B[i] * (C[i] + D[i]) * E[i] * F[i] / G[i];
}
)", (long long)n, (long long)n, (long long)n, (long long)n, (long long)n, (long long)n,
        (long long)n, (long long)(n - 1));
  }, "22 -> 13 cycles for the expression dependence height");

  ilp::bench::paper_note(
      "Figure labels are per-example illustrations; the loop-level numbers "
      "here run the full pipeline on equivalent DSL sources, so unroll "
      "factors (8x) and extra transformations can beat the figures' 3x "
      "illustrations.  Exact figure-for-figure issue-time checks live in "
      "tests/sim/figures_test.cpp and the transformation tests.");
  ilp::bench::finish();
  return 0;
}
