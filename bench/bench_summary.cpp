// Regenerates the paper's Section 4 headline numbers side by side with ours.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  ilp::bench::init(argc, argv);
  using namespace ilp;
  bench::print_header("Section 4 summary: paper vs. this reproduction");
  const StudyResult& s = bench::study();

  auto row = [](const char* what, double paper, double ours) {
    std::printf("  %-58s %8.2f %8.2f\n", what, paper, ours);
  };
  std::printf("  %-58s %8s %8s\n", "metric", "paper", "ours");
  row("issue-8 mean speedup, unroll+rename (Lev2)", 5.10, s.mean_speedup(OptLevel::Lev2, 3));
  row("issue-8 mean speedup, all transformations (Lev4)", 6.68,
      s.mean_speedup(OptLevel::Lev4, 3));
  row("issue-4 mean speedup, Lev3", 3.73, s.mean_speedup(OptLevel::Lev3, 2));
  row("issue-4 mean speedup, Lev4", 4.35, s.mean_speedup(OptLevel::Lev4, 2));
  row("issue-8 DOALL mean, Lev2", 6.8, s.mean_speedup_where(OptLevel::Lev2, 3, true));
  row("issue-8 DOALL mean, Lev4", 7.8, s.mean_speedup_where(OptLevel::Lev4, 3, true));
  row("issue-8 non-DOALL mean, Lev2", 3.7,
      s.mean_speedup_where(OptLevel::Lev2, 3, false));
  row("issue-8 non-DOALL mean, Lev4", 5.8,
      s.mean_speedup_where(OptLevel::Lev4, 3, false));
  row("register growth factor, Conv -> Lev4", 2.6,
      s.mean_registers(OptLevel::Lev4) / s.mean_registers(OptLevel::Conv));
  int under128 = 0;
  for (const auto& l : s.loops)
    if (l.regs[4].total() < 128) ++under128;
  row("loops under 128 registers at Lev4 (of 40)", 37, under128);

  bench::paper_note(
      "Absolute speedups depend on the reconstructed loop bodies; the claims "
      "to check are the orderings: Lev2 >> Conv, Lev4 >> Lev2 for non-DOALL, "
      "Lev4 ~ Lev2 for DOALL at low issue, and the ~2-3x register growth.");
  ilp::bench::finish();
  return 0;
}
