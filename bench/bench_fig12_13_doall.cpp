// Regenerates Figures 12 and 13: speedup and register-usage distributions of
// the DOALL loops only, issue-8 processor.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  ilp::bench::init(argc, argv);
  using namespace ilp;
  bench::print_header("Figures 12-13: DOALL loops only, issue-8 processor");
  const StudyResult& s = bench::study();

  const Histogram hs =
      speedup_histogram(s, 3, fig10_speedup_buckets(), LoopFilter::DoAllOnly);
  std::printf("%s", render_histogram(hs, "Figure 12: DOALL speedup distribution").c_str());
  std::printf("\nmean DOALL speedups:");
  for (OptLevel l : kLevels)
    std::printf("  %s=%.2f", level_name(l), s.mean_speedup_where(l, 3, true));
  std::printf("\n\n");

  const Histogram hr = register_histogram(s, LoopFilter::DoAllOnly);
  std::printf("%s",
              render_histogram(hr, "Figure 13: DOALL register usage distribution").c_str());
  bench::paper_note(
      "Paper: for DOALL loops unrolling+renaming expose most of the ILP "
      "(average 6.8 at Lev2), with Lev3/Lev4 adding modestly (7.8); register "
      "usage rises sharply with renaming.  'In general, though, "
      "transformations beyond loop unrolling and register renaming are not "
      "profitable for DOALL loops.'");
  ilp::bench::finish();
  return 0;
}
