#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "opt/copyprop.hpp"
#include "opt/cse.hpp"
#include "opt/dce.hpp"
#include "sim/simulator.hpp"

namespace ilp {
namespace {

int count_op(const Function& fn, Opcode op) {
  int n = 0;
  for (const auto& b : fn.blocks())
    for (const auto& in : b.insts)
      if (in.op == op) ++n;
  return n;
}

TEST(Cse, ReusesIdenticalArithmetic) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_int_reg();
  const Reg a = b.imuli(x, 3);
  const Reg c = b.imuli(x, 3);  // duplicate -> becomes imov
  const Reg s = b.iadd(a, c);
  b.ret();
  fn.add_live_out(s);
  fn.renumber();
  EXPECT_TRUE(common_subexpression_elimination(fn));
  EXPECT_EQ(count_op(fn, Opcode::IMUL), 1);
  EXPECT_EQ(count_op(fn, Opcode::IMOV), 1);
}

TEST(Cse, CommutativeOperandsMatch) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_int_reg();
  const Reg y = fn.new_int_reg();
  const Reg a = b.iadd(x, y);
  const Reg c = b.iadd(y, x);  // same value
  const Reg s = b.iadd(a, c);
  b.ret();
  fn.add_live_out(s);
  fn.renumber();
  EXPECT_TRUE(common_subexpression_elimination(fn));
  EXPECT_EQ(count_op(fn, Opcode::IMOV), 1);
}

TEST(Cse, InvalidatedByRedefinition) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_int_reg();
  const Reg a = b.imuli(x, 3);
  b.iaddi_to(x, x, 1);          // x changes
  const Reg c = b.imuli(x, 3);  // NOT a duplicate
  const Reg s = b.iadd(a, c);
  b.ret();
  fn.add_live_out(s);
  fn.renumber();
  common_subexpression_elimination(fn);
  EXPECT_EQ(count_op(fn, Opcode::IMUL), 2);
}

TEST(Cse, RedundantLoadEliminated) {
  Function fn;
  const std::int32_t A = fn.add_array({"A", 0, 4, 8, true});
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg base = fn.new_int_reg();
  const Reg v1 = b.fld(base, 0, A);
  const Reg v2 = b.fld(base, 0, A);  // same address, no store between
  const Reg s = b.fadd(v1, v2);
  b.ret();
  fn.add_live_out(s);
  fn.renumber();
  EXPECT_TRUE(common_subexpression_elimination(fn));
  EXPECT_EQ(count_op(fn, Opcode::FLD), 1);
}

TEST(Cse, LoadNotEliminatedAcrossAliasingStore) {
  Function fn;
  const std::int32_t A = fn.add_array({"A", 0, 4, 8, true});
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg base = fn.new_int_reg();
  const Reg w = fn.new_fp_reg();
  const Reg v1 = b.fld(base, 0, A);
  b.fst(base, 0, w, A);              // clobbers (same array, same addr)
  const Reg v2 = b.fld(base, 0, A);  // forwarded from the store instead
  const Reg s = b.fadd(v1, v2);
  b.ret();
  fn.add_live_out(s);
  fn.renumber();
  common_subexpression_elimination(fn);
  // Second load replaced by a move of the stored value, not of v1.
  const auto& insts = fn.blocks().front().insts;
  EXPECT_EQ(insts[2].op, Opcode::FMOV);
  EXPECT_EQ(insts[2].src1, w);
}

TEST(Cse, LoadSurvivesStoreToDifferentArray) {
  Function fn;
  const std::int32_t A = fn.add_array({"A", 0, 4, 8, true});
  const std::int32_t B = fn.add_array({"B", 100, 4, 8, true});
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg base = fn.new_int_reg();
  const Reg w = fn.new_fp_reg();
  const Reg v1 = b.fld(base, 0, A);
  b.fst(base, 100, w, B);            // different array: no clobber
  const Reg v2 = b.fld(base, 0, A);  // still redundant
  const Reg s = b.fadd(v1, v2);
  b.ret();
  fn.add_live_out(s);
  fn.renumber();
  EXPECT_TRUE(common_subexpression_elimination(fn));
  EXPECT_EQ(count_op(fn, Opcode::FLD), 1);
}

TEST(Cse, UnknownAliasStoreClobbersEverything) {
  Function fn;
  const std::int32_t A = fn.add_array({"A", 0, 4, 8, true});
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg base = fn.new_int_reg();
  const Reg p = fn.new_int_reg();
  const Reg w = fn.new_fp_reg();
  const Reg v1 = b.fld(base, 0, A);
  b.fst(p, 0, w, kMayAliasAll);
  const Reg v2 = b.fld(base, 0, A);
  const Reg s = b.fadd(v1, v2);
  b.ret();
  fn.add_live_out(s);
  fn.renumber();
  common_subexpression_elimination(fn);
  EXPECT_EQ(count_op(fn, Opcode::FLD), 2);
}

TEST(Dce, RemovesDeadKeepsLive) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg keep = b.ldi(1);
  const Reg dead1 = b.ldi(2);
  const Reg dead2 = b.iaddi(dead1, 1);  // chain of dead code
  (void)dead2;
  b.ret();
  fn.add_live_out(keep);
  fn.renumber();
  EXPECT_TRUE(dead_code_elimination(fn));
  EXPECT_EQ(fn.num_insts(), 2u);  // ldi + ret
}

TEST(Dce, KeepsStoresAndValuesTheyNeed) {
  Function fn;
  fn.add_array({"A", 0, 4, 4, true});
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg base = b.ldi(0);
  const Reg v = b.fldi(2.0);
  b.fst(base, 0, v, 0);
  b.ret();
  fn.renumber();
  EXPECT_FALSE(dead_code_elimination(fn));
  EXPECT_EQ(fn.num_insts(), 4u);
}

TEST(Dce, KeepsBranchOperands) {
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId t = b.create_block("t");
  b.set_block(e);
  const Reg c = b.ldi(1);
  b.bri(Opcode::BEQ, c, 1, t);
  b.ret();
  b.set_block(t);
  b.ret();
  fn.renumber();
  dead_code_elimination(fn);
  EXPECT_EQ(fn.block(e).insts.size(), 3u);
}

TEST(CopyProp, ForwardsThroughMove) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_int_reg();
  const Reg m = b.imov(x);
  const Reg s = b.iaddi(m, 1);
  b.ret();
  fn.add_live_out(s);
  fn.renumber();
  EXPECT_TRUE(copy_propagation(fn));
  EXPECT_EQ(fn.blocks().front().insts[1].src1, x);
  dead_code_elimination(fn);
  EXPECT_EQ(fn.num_insts(), 2u);  // iaddi + ret
}

TEST(CopyProp, StopsAtRedefinitionOfSource) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_int_reg();
  const Reg m = b.imov(x);
  b.iaddi_to(x, x, 1);          // source changes
  const Reg s = b.iaddi(m, 1);  // must still read m
  b.ret();
  fn.add_live_out(s);
  fn.renumber();
  copy_propagation(fn);
  EXPECT_EQ(fn.blocks().front().insts[2].src1, m);
}

}  // namespace
}  // namespace ilp
