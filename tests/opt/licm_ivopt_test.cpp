#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "analysis/loops.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "machine/machine.hpp"
#include "opt/dce.hpp"
#include "opt/ivopt.hpp"
#include "opt/licm.hpp"
#include "opt/pipeline.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace ilp {
namespace {

int count_in_block(const Function& fn, BlockId b, Opcode op) {
  int n = 0;
  for (const auto& in : fn.block(b).insts)
    if (in.op == op) ++n;
  return n;
}

// A naive lowered loop:  for i in 0..n-1 { C[i] = A[i] * s }  with the
// address arithmetic recomputed every iteration, plus an invariant multiply.
struct NaiveLoop {
  Function fn{"naive"};
  BlockId entry, loop, exit;
  Reg i, n, s, inv_a, inv_b;
  NaiveLoop(std::int64_t trip = 16) {
    fn.add_array({"A", 1000, 4, trip, true});
    fn.add_array({"C", 5000, 4, trip, true});
    IRBuilder b(fn);
    entry = b.create_block("entry");
    loop = b.create_block("loop");
    exit = b.create_block("exit");
    b.set_block(entry);
    i = b.ldi(0);
    n = b.ldi(trip);
    s = b.fldi(1.5);
    inv_a = b.ldi(21);
    inv_b = b.ldi(2);
    b.jump(loop);
    b.set_block(loop);
    const Reg invariant = b.imul(inv_a, inv_b);  // hoistable
    (void)invariant;
    const Reg off = b.imuli(i, 4);          // derived IV: i*4
    const Reg v = b.fld(off, 1000, 0);      // A[i]
    const Reg w = b.fmul(v, s);
    b.fst(off, 5000, w, 1);                 // C[i]
    b.iaddi_to(i, i, 1);
    b.br(Opcode::BLT, i, n, loop);
    b.set_block(exit);
    b.ret();
    fn.renumber();
  }
};

TEST(Licm, HoistsInvariantComputation) {
  NaiveLoop nl;
  const Function before = nl.fn;
  EXPECT_TRUE(loop_invariant_code_motion(nl.fn));
  EXPECT_TRUE(verify(nl.fn).ok) << verify(nl.fn).message;
  EXPECT_EQ(count_in_block(nl.fn, nl.loop, Opcode::IMUL), 1);   // only i*4 left
  EXPECT_EQ(count_in_block(nl.fn, nl.entry, Opcode::IMUL), 1);  // hoisted
  const RunOutcome a = run_seeded(before, MachineModel::issue(8));
  const RunOutcome b = run_seeded(nl.fn, MachineModel::issue(8));
  EXPECT_EQ(compare_observable(before, a, b), "");
}

TEST(Licm, DoesNotHoistVariantOrStores) {
  NaiveLoop nl;
  loop_invariant_code_motion(nl.fn);
  // The loads/stores and IV arithmetic must stay.
  EXPECT_EQ(count_in_block(nl.fn, nl.loop, Opcode::FLD), 1);
  EXPECT_EQ(count_in_block(nl.fn, nl.loop, Opcode::FST), 1);
  EXPECT_EQ(count_in_block(nl.fn, nl.loop, Opcode::IADD), 1);
}

TEST(Licm, LoadHoistBlockedByAliasingStore) {
  // load A[0] is invariant but a store to A stays in the loop: no hoist.
  Function fn;
  fn.add_array({"A", 0, 4, 8, true});
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId x = b.create_block("exit");
  b.set_block(e);
  const Reg i = b.ldi(0);
  const Reg zero = b.ldi(0);
  b.jump(loop);
  b.set_block(loop);
  const Reg v = b.fld(zero, 0, 0);   // A[0], loop-invariant address
  const Reg w = b.faddi(v, 1.0);
  b.fst(zero, 0, w, 0);              // stores A[0]: recurrence!
  b.iaddi_to(i, i, 1);
  b.bri(Opcode::BLT, i, 4, loop);
  b.set_block(x);
  b.ret();
  fn.renumber();
  const Function before = fn;
  loop_invariant_code_motion(fn);
  EXPECT_EQ(count_in_block(fn, loop, Opcode::FLD), 1);  // not hoisted
  const RunOutcome ra = run_seeded(before, MachineModel::issue(8));
  const RunOutcome rb = run_seeded(fn, MachineModel::issue(8));
  EXPECT_EQ(compare_observable(before, ra, rb), "");
}

TEST(Licm, HoistsLoadFromUnstoredArray) {
  Function fn;
  fn.add_array({"K", 0, 4, 1, true});
  fn.add_array({"C", 100, 4, 8, true});
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId x = b.create_block("exit");
  b.set_block(e);
  const Reg i = b.ldi(0);
  const Reg zero = b.ldi(0);
  b.jump(loop);
  b.set_block(loop);
  const Reg k = b.fld(zero, 0, 0);  // K[0]: invariant, K never stored
  const Reg off = b.imuli(i, 4);
  b.fst(off, 100, k, 1);
  b.iaddi_to(i, i, 1);
  b.bri(Opcode::BLT, i, 8, loop);
  b.set_block(x);
  b.ret();
  fn.renumber();
  EXPECT_TRUE(loop_invariant_code_motion(fn));
  EXPECT_EQ(count_in_block(fn, loop, Opcode::FLD), 0);
}

TEST(IvOpt, StrengthReducesSubscriptMultiply) {
  NaiveLoop nl;
  const Function before = nl.fn;
  loop_invariant_code_motion(nl.fn);
  EXPECT_TRUE(induction_variable_optimization(nl.fn));
  dead_code_elimination(nl.fn);
  EXPECT_TRUE(verify(nl.fn).ok) << verify(nl.fn).message;
  // The i*4 multiply is gone from the loop body.
  EXPECT_EQ(count_in_block(nl.fn, nl.loop, Opcode::IMUL), 0) << to_string(nl.fn);
  const RunOutcome a = run_seeded(before, MachineModel::issue(8));
  const RunOutcome b = run_seeded(nl.fn, MachineModel::issue(8));
  EXPECT_EQ(compare_observable(before, a, b), "");
}

TEST(IvOpt, EliminatesLoopCounter) {
  NaiveLoop nl;
  const Function before = nl.fn;
  loop_invariant_code_motion(nl.fn);
  induction_variable_optimization(nl.fn);
  dead_code_elimination(nl.fn);
  // After elimination + DCE only one IV update remains (the promoted one),
  // and the branch compares the promoted IV.
  EXPECT_EQ(count_in_block(nl.fn, nl.loop, Opcode::IADD), 1) << to_string(nl.fn);
  const Instruction& br = nl.fn.block(nl.loop).insts.back();
  EXPECT_NE(br.src1, nl.i);
  const RunOutcome a = run_seeded(before, MachineModel::issue(8));
  const RunOutcome b = run_seeded(nl.fn, MachineModel::issue(8));
  EXPECT_EQ(compare_observable(before, a, b), "");
}

TEST(IvOpt, HandlesDownCountingLoops) {
  Function fn;
  fn.add_array({"A", 0, 4, 32, true});
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId x = b.create_block("exit");
  b.set_block(e);
  const Reg i = b.ldi(15);
  const Reg s = b.fldi(0.5);
  b.jump(loop);
  b.set_block(loop);
  const Reg off = b.imuli(i, 4);
  const Reg v = b.fld(off, 0, 0);
  const Reg w = b.fmul(v, s);
  b.fst(off, 0, w, 0);
  b.append(make_binary_imm(Opcode::ISUB, i, i, 1));
  b.bri(Opcode::BGE, i, 0, loop);
  b.set_block(x);
  b.ret();
  fn.renumber();
  const Function before = fn;
  induction_variable_optimization(fn);
  dead_code_elimination(fn);
  EXPECT_EQ(count_in_block(fn, loop, Opcode::IMUL), 0);
  const RunOutcome ra = run_seeded(before, MachineModel::issue(8));
  const RunOutcome rb = run_seeded(fn, MachineModel::issue(8));
  EXPECT_EQ(compare_observable(before, ra, rb), "");
}

TEST(Pipeline, NaiveLoopReachesFigure1Shape) {
  // The integration claim: naive lowering + Conv + scheduling reaches the
  // paper's Figure-1b steady state of 7 cycles/iteration for C(j)=A(j)+B(j).
  auto make = [](std::int64_t n) {
    Function fn("vadd");
    fn.add_array({"A", 1000, 4, n, true});
    fn.add_array({"B", 9000, 4, n, true});
    fn.add_array({"C", 17000, 4, n, true});
    IRBuilder b(fn);
    const BlockId e = b.create_block("entry");
    const BlockId loop = b.create_block("loop");
    const BlockId x = b.create_block("exit");
    b.set_block(e);
    const Reg i = b.ldi(0);
    const Reg lim = b.ldi(n);
    b.jump(loop);
    b.set_block(loop);
    const Reg off = b.imuli(i, 4);
    const Reg va = b.fld(off, 1000, 0);
    const Reg vb = b.fld(off, 9000, 1);
    const Reg vc = b.fadd(va, vb);
    b.fst(off, 17000, vc, 2);
    b.iaddi_to(i, i, 1);
    b.br(Opcode::BLT, i, lim, loop);
    b.set_block(x);
    b.ret();
    fn.renumber();
    run_conventional_optimizations(fn);
    schedule_function(fn, MachineModel::issue(64));
    return fn;
  };
  const Function f1 = make(50);
  const Function f2 = make(150);
  const RunOutcome r1 = run_seeded(f1, MachineModel::issue(64));
  const RunOutcome r2 = run_seeded(f2, MachineModel::issue(64));
  ASSERT_TRUE(r1.result.ok && r2.result.ok);
  EXPECT_EQ((r2.result.cycles - r1.result.cycles) / 100, 7u)
      << to_string(f1);
}

}  // namespace
}  // namespace ilp
