#include "opt/constprop.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "opt/dce.hpp"
#include "sim/simulator.hpp"

namespace ilp {
namespace {

TEST(ConstProp, FoldsConstantChains) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg a = b.ldi(6);
  const Reg c = b.ldi(7);
  const Reg p = b.imul(a, c);   // folds to 42
  const Reg q = b.iaddi(p, 8);  // folds to 50
  b.ret();
  fn.add_live_out(q);
  fn.renumber();
  constant_propagation(fn);
  const Block& blk = fn.blocks().front();
  EXPECT_EQ(blk.insts[2].op, Opcode::LDI);
  EXPECT_EQ(blk.insts[2].ival, 42);
  EXPECT_EQ(blk.insts[3].op, Opcode::LDI);
  EXPECT_EQ(blk.insts[3].ival, 50);
}

TEST(ConstProp, MovesConstantIntoImmediateSlot) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_int_reg();  // unknown live-in
  const Reg c = b.ldi(5);
  const Reg s = b.iadd(x, c);
  b.ret();
  fn.add_live_out(s);
  fn.renumber();
  constant_propagation(fn);
  const Instruction& add = fn.blocks().front().insts[1];
  EXPECT_TRUE(add.src2_is_imm);
  EXPECT_EQ(add.ival, 5);
}

TEST(ConstProp, CommutesConstantOutOfSrc1) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg c = b.ldi(5);
  const Reg x = fn.new_int_reg();
  const Reg s = b.iadd(c, x);  // 5 + x -> x + 5
  b.ret();
  fn.add_live_out(s);
  fn.renumber();
  constant_propagation(fn);
  const Instruction& add = fn.blocks().front().insts[1];
  EXPECT_EQ(add.src1, x);
  EXPECT_TRUE(add.src2_is_imm);
  EXPECT_EQ(add.ival, 5);
}

TEST(ConstProp, PropagatesGloballyAcrossDominatedBlocks) {
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId t = b.create_block("tail");
  b.set_block(e);
  const Reg n = b.ldi(100);
  b.jump(t);
  b.set_block(t);
  const Reg x = fn.new_int_reg();
  b.br(Opcode::BLT, x, n, t);
  b.ret();
  fn.renumber();
  constant_propagation(fn);
  const Instruction& br = fn.block(t).insts[0];
  EXPECT_TRUE(br.src2_is_imm);
  EXPECT_EQ(br.ival, 100);
}

TEST(ConstProp, DoesNotPropagateMultiplyDefined) {
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId x = b.create_block("exit");
  b.set_block(e);
  const Reg i = b.ldi(0);
  b.jump(loop);
  b.set_block(loop);
  b.iaddi_to(i, i, 1);  // second def of i
  const Reg u = b.iaddi(i, 0);
  b.bri(Opcode::BLT, i, 3, loop);
  b.set_block(x);
  b.ret();
  fn.add_live_out(u);
  fn.renumber();
  constant_propagation(fn);
  // The use of i inside the loop must not have been replaced by 0.
  const Instruction& upd = fn.block(loop).insts[0];
  EXPECT_EQ(upd.src1, i);
  EXPECT_FALSE(upd.op == Opcode::LDI);
}

TEST(ConstProp, FpIdentityMulOne) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_fp_reg();
  const Reg y = b.fmuli(x, 1.0);
  b.ret();
  fn.add_live_out(y);
  fn.renumber();
  constant_propagation(fn);
  EXPECT_EQ(fn.blocks().front().insts[0].op, Opcode::FMOV);
}

TEST(ConstProp, IntAlgebraicIdentities) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_int_reg();
  const Reg a = b.iaddi(x, 0);   // -> imov
  const Reg m = b.imuli(x, 0);   // -> ldi 0
  const Reg s = b.ishli(x, 0);   // -> imov
  b.ret();
  fn.add_live_out(a);
  fn.add_live_out(m);
  fn.add_live_out(s);
  fn.renumber();
  constant_propagation(fn);
  const auto& insts = fn.blocks().front().insts;
  EXPECT_EQ(insts[0].op, Opcode::IMOV);
  EXPECT_EQ(insts[1].op, Opcode::LDI);
  EXPECT_EQ(insts[1].ival, 0);
  EXPECT_EQ(insts[2].op, Opcode::IMOV);
}

TEST(ConstProp, BehaviourPreservedOnFigureLoop) {
  Function fn;
  fn.add_array({"A", 0, 4, 8, true});
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId x = b.create_block("exit");
  b.set_block(e);
  const Reg i = b.ldi(0);
  const Reg four = b.ldi(4);
  const Reg lim = b.ldi(32);
  b.jump(loop);
  b.set_block(loop);
  const Reg v = b.fld(i, 0, 0);
  const Reg w = b.fmuli(v, 2.0);
  b.fst(i, 0, w, 0);
  b.iadd_to(i, i, four);
  b.br(Opcode::BLT, i, lim, loop);
  b.set_block(x);
  b.ret();
  fn.renumber();

  const Function before = fn;
  constant_propagation(fn);
  dead_code_elimination(fn);
  EXPECT_TRUE(verify(fn).ok) << verify(fn).message;
  const RunOutcome ra = run_seeded(before, MachineModel::issue(8));
  const RunOutcome rb = run_seeded(fn, MachineModel::issue(8));
  EXPECT_EQ(compare_observable(before, ra, rb), "");
}

}  // namespace
}  // namespace ilp
