// Tests for physical register assignment with spilling.
#include "regalloc/assign.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "frontend/compile.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "sim/simulator.hpp"
#include "trans/level.hpp"
#include "workloads/suite.hpp"

namespace ilp {
namespace {

using ilp::testing::infinite_issue;

// Every physical register id must be below the file size.
void expect_within_file(const Function& fn, int k_int, int k_fp) {
  for (const auto& b : fn.blocks())
    for (const auto& in : b.insts) {
      auto check = [&](const Reg& r) {
        if (!r.valid()) return;
        const int k = r.cls == RegClass::Int ? k_int : k_fp;
        EXPECT_LT(r.id, static_cast<std::uint32_t>(k)) << to_string(in, &fn);
      };
      if (in.has_dest()) check(in.dst);
      check(in.src1);
      if (!in.src2_is_imm) check(in.src2);
    }
}

// Compares observable results where the allocated function's live-out list
// maps positionally onto the original's.
void expect_same_behaviour(const Function& plain, const Function& alloc,
                           double tol = 1e-9) {
  const RunOutcome a = run_seeded(plain, infinite_issue());
  const RunOutcome b = run_seeded(alloc, infinite_issue());
  ASSERT_TRUE(a.result.ok) << a.result.error;
  ASSERT_TRUE(b.result.ok) << b.result.error;
  for (const auto& arr : plain.arrays()) {
    for (std::int64_t i = 0; i < arr.length; ++i) {
      const std::int64_t addr = arr.base + i * arr.elem_size;
      if (arr.is_fp)
        ASSERT_NEAR(a.memory.load_fp(addr), b.memory.load_fp(addr), tol)
            << arr.name << "[" << i << "]";
      else
        ASSERT_EQ(a.memory.load_int(addr), b.memory.load_int(addr))
            << arr.name << "[" << i << "]";
    }
  }
  ASSERT_EQ(plain.live_out().size(), alloc.live_out().size());
  for (std::size_t i = 0; i < plain.live_out().size(); ++i) {
    const Reg pr = plain.live_out()[i];
    const Reg ar = alloc.live_out()[i];
    if (pr.cls == RegClass::Fp)
      EXPECT_NEAR(a.result.regs.get_fp(pr.id), b.result.regs.get_fp(ar.id), tol);
    else
      EXPECT_EQ(a.result.regs.get_int(pr.id), b.result.regs.get_int(ar.id));
  }
}

TEST(Assign, NoSpillWhenFileIsLarge) {
  Function fn = ilp::testing::make_fig3_loop(24);
  Function plain = fn;
  const AssignResult r = assign_registers(fn, {32, 32, 0x7f000000});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.spilled_int + r.spilled_fp, 0);
  EXPECT_TRUE(verify(fn).ok) << verify(fn).message;
  expect_within_file(fn, 32, 32);
  expect_same_behaviour(plain, fn);
}

TEST(Assign, SpillsWhenPressureExceedsFile) {
  // Many simultaneously live fp values (a wide sum of loads) against a tiny
  // fp file.
  Function fn;
  fn.add_array({"A", 0, 4, 16, true});
  fn.add_array({"O", 1000, 4, 1, true});
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg base = b.ldi(0);
  std::vector<Reg> vals;
  for (int i = 0; i < 12; ++i) vals.push_back(b.fld(base, 4 * i, 0));
  Reg acc = vals[0];
  for (int i = 1; i < 12; ++i) acc = b.fadd(acc, vals[static_cast<std::size_t>(i)]);
  b.fst(base, 1000, acc, 1);
  b.ret();
  fn.renumber();
  Function plain = fn;

  const AssignResult r = assign_registers(fn, {8, 4, 0x7f000000});
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.spilled_fp, 0);
  EXPECT_GT(r.spill_slots, 0);
  EXPECT_TRUE(verify(fn).ok) << verify(fn).message;
  expect_within_file(fn, 8, 4);
  expect_same_behaviour(plain, fn);
}

TEST(Assign, SpilledLiveOutStillObservable) {
  Function fn;
  fn.add_array({"A", 0, 4, 20, true});
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg base = b.ldi(0);
  // `early` is defined first, stays live across high pressure, and is the
  // function's observable output: a prime spill victim.
  const Reg early = b.fld(base, 0, 0);
  std::vector<Reg> vals;
  for (int i = 1; i < 10; ++i) vals.push_back(b.fld(base, 4 * i, 0));
  Reg acc = vals[0];
  for (std::size_t i = 1; i < vals.size(); ++i) acc = b.fadd(acc, vals[i]);
  const Reg out = b.fadd(acc, early);
  b.ret();
  fn.add_live_out(out);
  fn.add_live_out(early);
  fn.renumber();
  Function plain = fn;

  const AssignResult r = assign_registers(fn, {8, 3, 0x7f000000});
  ASSERT_TRUE(r.ok) << "rounds=" << r.rounds;
  expect_within_file(fn, 8, 3);
  expect_same_behaviour(plain, fn);
}

TEST(Assign, WholePipelineUnderVariousFileSizes) {
  for (const char* name : {"dotprod", "SDS-4", "maxval"}) {
    for (int k : {64, 24, 12}) {
      DiagnosticEngine d0;
      auto plain = dsl::compile(find_workload(name)->source, d0);
      ASSERT_TRUE(plain.has_value());
      DiagnosticEngine d1;
      auto opt = dsl::compile(find_workload(name)->source, d1);
      compile_at_level(opt->fn, OptLevel::Lev4, MachineModel::issue(8));
      const AssignResult r = assign_registers(opt->fn, {k, k, 0x7f000000});
      ASSERT_TRUE(r.ok) << name << " k=" << k;
      EXPECT_TRUE(verify(opt->fn).ok) << name << " k=" << k;
      expect_within_file(opt->fn, k, k);
      expect_same_behaviour(plain->fn, opt->fn, 1e-6);
    }
  }
}

TEST(Assign, SmallFileCostsCycles) {
  // Spill code must slow the loop down relative to a roomy file.
  auto cycles_with = [&](int k) {
    DiagnosticEngine d;
    auto r = dsl::compile(find_workload("dotprod")->source, d);
    compile_at_level(r->fn, OptLevel::Lev4, MachineModel::issue(8));
    const AssignResult ar = assign_registers(r->fn, {k, k, 0x7f000000});
    EXPECT_TRUE(ar.ok) << "k=" << k;
    const RunOutcome out = run_seeded(r->fn, MachineModel::issue(8));
    EXPECT_TRUE(out.result.ok);
    return out.result.cycles;
  };
  EXPECT_GT(cycles_with(8), cycles_with(64));
}

TEST(Assign, FailsGracefullyWhenFileTooSmall) {
  Function fn = ilp::testing::make_fig3_loop(8);
  const AssignResult r = assign_registers(fn, {2, 1, 0x7f000000});
  // Either it allocates (with heavy spilling) or reports failure — it must
  // not crash or mangle the IR silently.
  if (r.ok) {
    EXPECT_TRUE(verify(fn).ok);
    expect_within_file(fn, 2, 1);
  } else {
    SUCCEED();
  }
}

}  // namespace
}  // namespace ilp
