#include "regalloc/regalloc.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "ir/builder.hpp"

namespace ilp {
namespace {

TEST(RegAlloc, SequentialReuseNeedsFewRegisters) {
  // t1 = 1; t2 = t1+1; t3 = t2+1; ... each value dies immediately: 2 colors
  // suffice (def overlaps its source).
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  Reg t = b.ldi(1);
  for (int i = 0; i < 10; ++i) t = b.iaddi(t, 1);
  b.ret();
  fn.add_live_out(t);
  fn.renumber();
  const RegUsage u = measure_register_usage(fn);
  EXPECT_LE(u.int_regs, 2);
  EXPECT_EQ(u.fp_regs, 0);
}

TEST(RegAlloc, SimultaneouslyLiveValuesNeedDistinctRegisters) {
  // Ten constants all summed at the end: all live at once.
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  std::vector<Reg> vals;
  for (int i = 0; i < 10; ++i) vals.push_back(b.ldi(i));
  Reg acc = vals[0];
  for (int i = 1; i < 10; ++i) acc = b.iadd(acc, vals[static_cast<std::size_t>(i)]);
  b.ret();
  fn.add_live_out(acc);
  fn.renumber();
  const RegUsage u = measure_register_usage(fn);
  EXPECT_GE(u.int_regs, 10);
}

TEST(RegAlloc, ClassesAreIndependentFiles) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg i = b.ldi(1);
  const Reg f = b.fldi(1.0);
  const Reg g = b.fadd(f, f);
  b.iaddi(i, 1);
  b.ret();
  fn.add_live_out(g);
  fn.renumber();
  const RegUsage u = measure_register_usage(fn);
  EXPECT_GE(u.int_regs, 1);
  EXPECT_GE(u.fp_regs, 1);
  EXPECT_EQ(u.total(), u.int_regs + u.fp_regs);
}

TEST(RegAlloc, InterferenceQueries) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg a = b.ldi(1);
  const Reg c = b.ldi(2);     // a live across c's def
  const Reg s = b.iadd(a, c);
  b.ret();
  fn.add_live_out(s);
  fn.renumber();
  const InterferenceGraph g(fn);
  EXPECT_TRUE(g.interferes(a, c));
  EXPECT_FALSE(g.interferes(a, s) && g.interferes(c, s) &&
               false);  // s defined as a,c die; no constraint required
}

TEST(RegAlloc, LoopBodyUsageIsStable) {
  const Function fn = ilp::testing::make_fig1_loop(16);
  const RegUsage u = measure_register_usage(fn);
  // r1i, r5i live across the loop; r2f..r4f reusable.
  EXPECT_GE(u.int_regs, 2);
  EXPECT_LE(u.int_regs, 3);
  EXPECT_GE(u.fp_regs, 2);
  EXPECT_LE(u.fp_regs, 3);
}

}  // namespace
}  // namespace ilp
