// Differential test: the modulo scheduling backend must produce the same
// observable simulator state (live-out registers + array memory) as the
// list backend for every cell of the study grid, and for fuzzed programs
// whose trip-count mix includes the zero-trip and single-trip loops that
// exercise the guard/fallback path.
#include <gtest/gtest.h>

#include <string>

#include "common/fixtures.hpp"
#include "frontend/compile.hpp"
#include "harness/experiment.hpp"
#include "sched/modulo/modulo.hpp"
#include "sim/simulator.hpp"
#include "trans/level.hpp"
#include "workloads/suite.hpp"

namespace ilp {
namespace {

using testing::fuzz_seed_count;
using testing::random_program;

TEST(ModuloDiff, MatchesListAcrossStudyGrid) {
  for (const Workload& w : workload_suite()) {
    for (OptLevel level : kLevels) {
      for (int width : kIssueWidths) {
        const MachineModel m = MachineModel::issue(width);
        const std::string tag =
            w.name + " " + level_name(level) + " issue-" + std::to_string(width);

        auto list_c = try_compile_workload(w, level, m);
        CompileOptions mod_opts;
        mod_opts.scheduler = SchedulerKind::Modulo;
        auto mod_c = try_compile_workload(w, level, m, mod_opts);
        ASSERT_EQ(static_cast<bool>(list_c), static_cast<bool>(mod_c)) << tag;
        if (!list_c) continue;

        const RunOutcome a = run_seeded(list_c->fn, m);
        const RunOutcome b = run_seeded(mod_c->fn, m);
        ASSERT_TRUE(a.result.ok) << tag << ": " << a.result.error;
        ASSERT_TRUE(b.result.ok) << tag << ": " << b.result.error;
        ASSERT_EQ(compare_observable(list_c->fn, a, b, 1e-6), "") << tag;
      }
    }
  }
}

// Fuzzed single-nest programs at the most aggressive level, where unrolled /
// renamed bodies give the modulo scheduler its richest inputs.  random_program
// emits zero-trip and single-trip loops with small probability, so a large
// seed sweep also covers the T < stages guard taking the fallback body.
TEST(ModuloDiff, FuzzedProgramsMatchList) {
  const int seeds = fuzz_seed_count(120);
  for (int seed = 500; seed < 500 + seeds; ++seed) {
    const std::string src = random_program(static_cast<std::uint64_t>(seed));
    for (int width : {2, 8}) {
      const MachineModel m = MachineModel::issue(width);

      DiagnosticEngine d1;
      auto list_c = dsl::compile(src, d1);
      ASSERT_TRUE(list_c) << "seed=" << seed << "\n" << d1.to_string();
      compile_at_level(list_c->fn, OptLevel::Lev4, m);

      DiagnosticEngine d2;
      auto mod_c = dsl::compile(src, d2);
      ASSERT_TRUE(mod_c) << "seed=" << seed;
      CompileOptions opts;
      opts.scheduler = SchedulerKind::Modulo;
      compile_at_level(mod_c->fn, OptLevel::Lev4, m, opts);

      const RunOutcome a = run_seeded(list_c->fn, m);
      const RunOutcome b = run_seeded(mod_c->fn, m);
      ASSERT_TRUE(a.result.ok) << "seed=" << seed << ": " << a.result.error;
      ASSERT_TRUE(b.result.ok) << "seed=" << seed << ": " << b.result.error;
      ASSERT_EQ(compare_observable(list_c->fn, a, b, 1e-6), "")
          << "seed=" << seed << " issue-" << width;
    }
  }
}

// Explicit tiny trip counts through the DSL pipeline: the kernel must never
// execute for T < stages, and the guard must route execution through the
// preserved original body with identical results.
TEST(ModuloDiff, ZeroAndSingleTripLoopsFallBackCleanly) {
  for (int trip : {0, 1, 2, 3}) {
    const std::string src =
        "program tiny\n"
        "array A[16] fp\n"
        "array B[16] fp\n"
        "array C[16] fp\n"
        "scalar s fp out\n"
        "loop i = 4 to " + std::to_string(4 + trip - 1) + " {\n"
        "    C[i] = A[i] + B[i];\n"
        "    s = s + A[i] * B[i];\n"
        "}\n";
    for (int width : {1, 4}) {
      const MachineModel m = MachineModel::issue(width);
      DiagnosticEngine d1;
      auto list_c = dsl::compile(src, d1);
      ASSERT_TRUE(list_c) << "trip=" << trip << "\n" << d1.to_string();
      compile_at_level(list_c->fn, OptLevel::Lev4, m);

      DiagnosticEngine d2;
      auto mod_c = dsl::compile(src, d2);
      ASSERT_TRUE(mod_c);
      CompileOptions opts;
      opts.scheduler = SchedulerKind::Modulo;
      compile_at_level(mod_c->fn, OptLevel::Lev4, m, opts);

      const RunOutcome a = run_seeded(list_c->fn, m);
      const RunOutcome b = run_seeded(mod_c->fn, m);
      ASSERT_TRUE(a.result.ok) << "trip=" << trip << ": " << a.result.error;
      ASSERT_TRUE(b.result.ok) << "trip=" << trip << ": " << b.result.error;
      ASSERT_EQ(compare_observable(list_c->fn, a, b, 1e-6), "")
          << "trip=" << trip << " issue-" << width;
    }
  }
}

}  // namespace
}  // namespace ilp
