// Differential tests: the optimized dependence graph + heap-based list
// scheduler must produce byte-identical schedules to the retained reference
// implementations (sched/reference.hpp) for every block of every workload in
// the study grid.  This is the contract that lets the hot path change its
// data structures freely: same issue_time, same order, same makespan.
#include <gtest/gtest.h>

#include "analysis/depgraph.hpp"
#include "harness/experiment.hpp"
#include "machine/machine.hpp"
#include "sched/reference.hpp"
#include "sched/scheduler.hpp"
#include "trans/swp.hpp"
#include "workloads/suite.hpp"

namespace ilp {
namespace {

// Compiles a workload with scheduling disabled so the test can schedule each
// block itself through both pipelines.
Expected<CompiledLoop> compile_unscheduled(const Workload& w, OptLevel level,
                                           const MachineModel& m) {
  CompileOptions opts;
  opts.schedule = false;
  return try_compile_workload(w, level, m, opts);
}

TEST(SchedulerDiff, BlockSchedulesMatchReferenceAcrossStudyGrid) {
  for (const Workload& w : workload_suite()) {
    for (OptLevel level : kLevels) {
      for (int width : kIssueWidths) {
        const MachineModel m = MachineModel::issue(width);
        auto compiled = compile_unscheduled(w, level, m);
        if (!compiled) continue;  // cell fails before scheduling either way
        const Function& fn = compiled->fn;
        const ScheduleAnalyses analyses(fn);
        for (const Block& b : fn.blocks()) {
          if (b.insts.size() < 2) continue;
          const DepGraph g(fn, b.id, m, analyses.live, analyses.preheaders[b.id]);
          const RefDepGraph rg(fn, b.id, m, analyses.live, analyses.preheaders[b.id]);
          const BlockSchedule got = list_schedule(g, fn, b.id, m);
          const BlockSchedule want = reference_list_schedule(rg, fn, b.id, m);
          ASSERT_EQ(got.order, want.order)
              << w.name << " " << level_name(level) << " issue-" << width
              << " block " << b.id;
          ASSERT_EQ(got.issue_time, want.issue_time)
              << w.name << " " << level_name(level) << " issue-" << width
              << " block " << b.id;
          ASSERT_EQ(got.makespan, want.makespan)
              << w.name << " " << level_name(level) << " issue-" << width
              << " block " << b.id;
        }
      }
    }
  }
}

// Whole-function check: schedule_function (shared analyses, heap scheduler)
// emits the same instruction sequence as the reference pipeline.
TEST(SchedulerDiff, ScheduleFunctionMatchesReferencePipeline) {
  for (const Workload& w : workload_suite()) {
    for (OptLevel level : kLevels) {
      for (int width : kIssueWidths) {
        const MachineModel m = MachineModel::issue(width);
        auto compiled = compile_unscheduled(w, level, m);
        if (!compiled) continue;
        Function opt_fn = compiled->fn;
        Function ref_fn = compiled->fn;
        schedule_function(opt_fn, m);
        reference_schedule_function(ref_fn, m);
        ASSERT_EQ(opt_fn.num_blocks(), ref_fn.num_blocks());
        for (const Block& b : opt_fn.blocks()) {
          const Block& rb = ref_fn.block(b.id);
          ASSERT_EQ(b.insts.size(), rb.insts.size())
              << w.name << " " << level_name(level) << " issue-" << width
              << " block " << b.id;
          for (std::size_t i = 0; i < b.insts.size(); ++i) {
            ASSERT_EQ(b.insts[i].uid, rb.insts[i].uid)
                << w.name << " " << level_name(level) << " issue-" << width
                << " block " << b.id << " position " << i;
          }
        }
      }
    }
  }
}

// Software-pipelined code is the scheduler's hardest input: the kernel block
// mixes instructions from several iterations with non-trivial cross-stage
// dependences, and the prologue/epilogue blocks are long and straight-line.
// Both pipelines must still agree on every block.
TEST(SchedulerDiff, SoftwarePipelinedSchedulesMatchReference) {
  for (const Workload& w : workload_suite()) {
    for (int width : {2, 8}) {
      for (int stages : {2, 3}) {
        const MachineModel m = MachineModel::issue(width);
        auto compiled = compile_unscheduled(w, OptLevel::Lev4, m);
        if (!compiled) continue;
        Function opt_fn = compiled->fn;
        SwpOptions so;
        so.stages = stages;
        software_pipeline(opt_fn, m, so);
        Function ref_fn = opt_fn;  // identical pipelined IR into both schedulers
        schedule_function(opt_fn, m);
        reference_schedule_function(ref_fn, m);
        ASSERT_EQ(opt_fn.num_blocks(), ref_fn.num_blocks());
        for (const Block& b : opt_fn.blocks()) {
          const Block& rb = ref_fn.block(b.id);
          ASSERT_EQ(b.insts.size(), rb.insts.size())
              << w.name << " swp-" << stages << " issue-" << width << " block "
              << b.id;
          for (std::size_t i = 0; i < b.insts.size(); ++i) {
            ASSERT_EQ(b.insts[i].uid, rb.insts[i].uid)
                << w.name << " swp-" << stages << " issue-" << width << " block "
                << b.id << " position " << i;
          }
        }
      }
    }
  }
}

// Per-block differential over pipelined kernels through the raw scheduler
// entry points (DepGraph vs RefDepGraph), as the study-grid test does for
// the unpipelined IR.
TEST(SchedulerDiff, PipelinedBlockSchedulesMatchReference) {
  for (const Workload& w : workload_suite()) {
    const MachineModel m = MachineModel::issue(4);
    auto compiled = compile_unscheduled(w, OptLevel::Lev4, m);
    if (!compiled) continue;
    Function fn = compiled->fn;
    SwpOptions so;
    so.stages = 2;
    software_pipeline(fn, m, so);
    const ScheduleAnalyses analyses(fn);
    for (const Block& b : fn.blocks()) {
      if (b.insts.size() < 2) continue;
      const DepGraph g(fn, b.id, m, analyses.live, analyses.preheaders[b.id]);
      const RefDepGraph rg(fn, b.id, m, analyses.live, analyses.preheaders[b.id]);
      const BlockSchedule got = list_schedule(g, fn, b.id, m);
      const BlockSchedule want = reference_list_schedule(rg, fn, b.id, m);
      ASSERT_EQ(got.order, want.order) << w.name << " block " << b.id;
      ASSERT_EQ(got.issue_time, want.issue_time) << w.name << " block " << b.id;
      ASSERT_EQ(got.makespan, want.makespan) << w.name << " block " << b.id;
    }
  }
}

}  // namespace
}  // namespace ilp
