// Differential tests: the optimized dependence graph + heap-based list
// scheduler must produce byte-identical schedules to the retained reference
// implementations (sched/reference.hpp) for every block of every workload in
// the study grid.  This is the contract that lets the hot path change its
// data structures freely: same issue_time, same order, same makespan.
#include <gtest/gtest.h>

#include "analysis/depgraph.hpp"
#include "harness/experiment.hpp"
#include "machine/machine.hpp"
#include "sched/reference.hpp"
#include "sched/scheduler.hpp"
#include "workloads/suite.hpp"

namespace ilp {
namespace {

// Compiles a workload with scheduling disabled so the test can schedule each
// block itself through both pipelines.
Expected<CompiledLoop> compile_unscheduled(const Workload& w, OptLevel level,
                                           const MachineModel& m) {
  CompileOptions opts;
  opts.schedule = false;
  return try_compile_workload(w, level, m, opts);
}

TEST(SchedulerDiff, BlockSchedulesMatchReferenceAcrossStudyGrid) {
  for (const Workload& w : workload_suite()) {
    for (OptLevel level : kLevels) {
      for (int width : kIssueWidths) {
        const MachineModel m = MachineModel::issue(width);
        auto compiled = compile_unscheduled(w, level, m);
        if (!compiled) continue;  // cell fails before scheduling either way
        const Function& fn = compiled->fn;
        const ScheduleAnalyses analyses(fn);
        for (const Block& b : fn.blocks()) {
          if (b.insts.size() < 2) continue;
          const DepGraph g(fn, b.id, m, analyses.live, analyses.preheaders[b.id]);
          const RefDepGraph rg(fn, b.id, m, analyses.live, analyses.preheaders[b.id]);
          const BlockSchedule got = list_schedule(g, fn, b.id, m);
          const BlockSchedule want = reference_list_schedule(rg, fn, b.id, m);
          ASSERT_EQ(got.order, want.order)
              << w.name << " " << level_name(level) << " issue-" << width
              << " block " << b.id;
          ASSERT_EQ(got.issue_time, want.issue_time)
              << w.name << " " << level_name(level) << " issue-" << width
              << " block " << b.id;
          ASSERT_EQ(got.makespan, want.makespan)
              << w.name << " " << level_name(level) << " issue-" << width
              << " block " << b.id;
        }
      }
    }
  }
}

// Whole-function check: schedule_function (shared analyses, heap scheduler)
// emits the same instruction sequence as the reference pipeline.
TEST(SchedulerDiff, ScheduleFunctionMatchesReferencePipeline) {
  for (const Workload& w : workload_suite()) {
    for (OptLevel level : kLevels) {
      for (int width : kIssueWidths) {
        const MachineModel m = MachineModel::issue(width);
        auto compiled = compile_unscheduled(w, level, m);
        if (!compiled) continue;
        Function opt_fn = compiled->fn;
        Function ref_fn = compiled->fn;
        schedule_function(opt_fn, m);
        reference_schedule_function(ref_fn, m);
        ASSERT_EQ(opt_fn.num_blocks(), ref_fn.num_blocks());
        for (const Block& b : opt_fn.blocks()) {
          const Block& rb = ref_fn.block(b.id);
          ASSERT_EQ(b.insts.size(), rb.insts.size())
              << w.name << " " << level_name(level) << " issue-" << width
              << " block " << b.id;
          for (std::size_t i = 0; i < b.insts.size(); ++i) {
            ASSERT_EQ(b.insts[i].uid, rb.insts[i].uid)
                << w.name << " " << level_name(level) << " issue-" << width
                << " block " << b.id << " position " << i;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace ilp
