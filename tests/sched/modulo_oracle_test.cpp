// Exact-II oracle tests: for small loops the branch-and-bound checker
// enumerates the same schedule universe as IMS (same reservation table,
// same stage cap), so IMS can never beat it — achieved < optimal is a hard
// bug in one of the two.  Across the workload corpus we require achieved ==
// optimal for every tractable loop, or an explicit gap report; the heuristic
// is also cross-checked against the list backend's steady-state bar.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "common/fixtures.hpp"
#include "harness/experiment.hpp"
#include "sched/modulo/ims.hpp"
#include "sched/modulo/mdg.hpp"
#include "sched/modulo/modulo.hpp"
#include "sched/modulo/oracle.hpp"
#include "workloads/suite.hpp"

namespace ilp {
namespace {

using testing::make_fig1_loop;
using testing::make_fig3_loop;

TEST(ModuloOracle, Fig1OptimumIsMinII) {
  const Function fn = make_fig1_loop(64);
  const Cfg cfg(fn);
  const Dominators dom(cfg);
  const auto loops = find_simple_loops(cfg, dom);
  ASSERT_EQ(loops.size(), 1u);
  const MachineModel m = MachineModel::issue(4);
  const ModuloDepGraph g(fn, loops.front(), m);
  const ModuloOptions opts;
  const int min_ii = g.min_ii(m);
  const OracleResult o =
      oracle_optimal_ii(g, m, opts, min_ii, min_ii + opts.max_ii_over_min);
  ASSERT_TRUE(o.tractable);
  EXPECT_EQ(o.optimal_ii, min_ii);  // MinII (6) is achievable; oracle finds it
  const auto sched = ims_schedule(g, m, opts, min_ii, min_ii + opts.max_ii_over_min);
  ASSERT_TRUE(sched.has_value());
  EXPECT_EQ(sched->ii, o.optimal_ii);
}

TEST(ModuloOracle, Fig3OptimumMatchesIms) {
  const Function fn = make_fig3_loop(64);
  const Cfg cfg(fn);
  const Dominators dom(cfg);
  const auto loops = find_simple_loops(cfg, dom);
  ASSERT_EQ(loops.size(), 1u);
  for (const int width : {1, 2, 8}) {
    const MachineModel m = MachineModel::issue(width);
    const ModuloDepGraph g(fn, loops.front(), m);
    const ModuloOptions opts;
    const int min_ii = g.min_ii(m);
    const int max_ii = min_ii + opts.max_ii_over_min;
    const OracleResult o = oracle_optimal_ii(g, m, opts, min_ii, max_ii);
    ASSERT_TRUE(o.tractable) << "width " << width;
    const auto sched = ims_schedule(g, m, opts, min_ii, max_ii);
    ASSERT_TRUE(sched.has_value()) << "width " << width;
    EXPECT_EQ(sched->ii, o.optimal_ii) << "width " << width;
  }
}

// Sweeps every oracle-tractable loop the modulo backend actually sees in the
// study corpus (post-cleanup, pre-schedule IR at Conv and Lev1, where bodies
// are small enough for exhaustive search).  Invariants:
//   * IMS never beats the oracle (shared schedule universe) — hard failure;
//   * IMS never fails where the oracle proved a schedule exists — hard
//     failure (eviction search with our budget is complete enough in range);
//   * achieved == optimal, or the gap is reported explicitly and counted.
TEST(ModuloOracle, AchievedMatchesOptimalAcrossCorpus) {
  const ModuloOptions opts;
  int tractable_loops = 0;
  int gaps = 0;
  for (const Workload& w : workload_suite()) {
    for (OptLevel level : {OptLevel::Conv, OptLevel::Lev1}) {
      for (int width : kIssueWidths) {
        const MachineModel m = MachineModel::issue(width);
        CompileOptions copts;
        copts.schedule = false;  // analyze the exact IR the modulo pass sees
        auto compiled = try_compile_workload(w, level, m, copts);
        if (!compiled) continue;
        const Cfg cfg(compiled->fn);
        const Dominators dom(cfg);
        for (const SimpleLoop& loop : find_simple_loops(cfg, dom)) {
          if (loop.has_side_exits()) continue;
          const Block& body = compiled->fn.block(loop.body);
          if (body.insts.size() < 3 ||
              body.insts.size() > static_cast<std::size_t>(kOracleMaxNodes) + 1)
            continue;
          const ModuloDepGraph g(compiled->fn, loop, m);
          const int min_ii = g.min_ii(m);
          const int max_ii = min_ii + opts.max_ii_over_min;
          const OracleResult o = oracle_optimal_ii(g, m, opts, min_ii, max_ii);
          if (!o.tractable) continue;
          ++tractable_loops;
          const auto sched = ims_schedule(g, m, opts, min_ii, max_ii);
          const std::string tag = w.name + " " + level_name(level) + " issue-" +
                                  std::to_string(width) + " body=" +
                                  std::to_string(g.num_nodes());
          if (o.optimal_ii == 0) {
            // No schedule exists in [MinII, MaxII]: IMS must agree.
            EXPECT_FALSE(sched.has_value()) << tag;
            continue;
          }
          ASSERT_TRUE(sched.has_value())
              << tag << ": oracle found II=" << o.optimal_ii << " but IMS failed";
          ASSERT_GE(sched->ii, o.optimal_ii)
              << tag << ": IMS beat the exhaustive oracle — impossible";
          if (sched->ii != o.optimal_ii) {
            ++gaps;
            std::printf("II-GAP %s: achieved=%d optimal=%d min_ii=%d\n", tag.c_str(),
                        sched->ii, o.optimal_ii, min_ii);
          }
        }
      }
    }
  }
  std::printf("oracle corpus: %d tractable loops, %d heuristic gaps\n",
              tractable_loops, gaps);
  EXPECT_GT(tractable_loops, 0);
  // Eviction-based IMS is a heuristic: a small number of +1 gaps against the
  // exhaustive oracle is expected (Rau reports "near-MinII almost always",
  // not always).  Each gap is printed above (II-GAP lines); this bound keeps
  // the rate from regressing past 5% of tractable loops.
  EXPECT_LE(gaps, tractable_loops / 20);
}

}  // namespace
}  // namespace ilp
