// Unit tests for the modulo scheduling backend: MinII analysis on the
// paper's Figure 1 loop, IMS schedule legality (dependences + reservation
// table), codegen structure, fallback discipline on tiny trip counts, and
// the SchedulerKind plumbing (parsing + cache-key separation).
#include <gtest/gtest.h>

#include <set>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "common/fixtures.hpp"
#include "harness/experiment.hpp"
#include "sched/modulo/ims.hpp"
#include "sched/modulo/mdg.hpp"
#include "sched/modulo/modulo.hpp"
#include "sim/simulator.hpp"
#include "workloads/suite.hpp"

namespace ilp {
namespace {

using testing::make_fig1_loop;
using testing::make_fig3_loop;

// Finds the unique simple loop of a single-loop fixture function.
SimpleLoop only_loop(const Function& fn) {
  const Cfg cfg(fn);
  const Dominators dom(cfg);
  const auto loops = find_simple_loops(cfg, dom);
  EXPECT_EQ(loops.size(), 1u);
  return loops.front();
}

TEST(ModuloMinII, Fig1RecurrenceIsTheAddressRegisterCycle) {
  const Function fn = make_fig1_loop(64);
  const MachineModel m = MachineModel::issue(4);
  const ModuloDepGraph g(fn, only_loop(fn), m);
  ASSERT_EQ(g.num_nodes(), 5u);  // 2 loads, fadd, store, iv update
  // Without renaming the shared address register r1, the whole body chain is
  // a recurrence: fld ->(flow, lat_load 2) fadd ->(flow, lat_fp 3) fst
  // ->(anti, 0) iaddi ->(carried flow, lat_int 1) next iteration's fld.
  // RecMII = 2 + 3 + 0 + 1 = 6 — exactly the paper's point that renaming
  // (Lev2/Lev4), not scheduling, is what unlocks overlap here.
  EXPECT_EQ(g.rec_mii(), m.lat_load + m.lat_fp_alu + m.lat_int_alu);
  // 5 body ops + countdown ISUB + branch = 7 issue slots per II at width 4.
  EXPECT_EQ(g.res_mii(m), 2);
  EXPECT_EQ(g.min_ii(m), 6);
  // Width 1 flips the binding constraint to issue bandwidth.
  EXPECT_EQ(g.res_mii(MachineModel::issue(1)), 7);
  EXPECT_EQ(g.min_ii(MachineModel::issue(1)), 7);
}

TEST(ModuloMinII, Fig3AccumulatorRecurrenceBinds) {
  const Function fn = make_fig3_loop(64);
  const MachineModel m = MachineModel::issue(8);
  const ModuloDepGraph g(fn, only_loop(fn), m);
  // r1f += ... is a distance-1 flow self-recurrence through the fp add.
  EXPECT_GE(g.rec_mii(), m.lat_fp_alu);
  EXPECT_EQ(g.min_ii(m), g.rec_mii());
}

TEST(ModuloIms, SchedulesAreLegalAtTheirII) {
  for (const int width : {1, 2, 4, 8}) {
    const Function fn = make_fig1_loop(64);
    const MachineModel m = MachineModel::issue(width);
    const ModuloDepGraph g(fn, only_loop(fn), m);
    const ModuloOptions opts;
    const int min_ii = g.min_ii(m);
    const auto sched = ims_schedule(g, m, opts, min_ii, min_ii + opts.max_ii_over_min);
    ASSERT_TRUE(sched.has_value()) << "width " << width;
    EXPECT_GE(sched->ii, min_ii);
    // Every dependence edge holds at the achieved II.
    for (const ModuloDepEdge& e : g.edges()) {
      EXPECT_GE(sched->time[e.to],
                sched->time[e.from] + e.latency - sched->ii * e.distance)
          << "width " << width << " edge " << e.from << "->" << e.to;
    }
    // Modulo reservation table: at most issue_width ops per row.
    std::vector<int> rows(static_cast<std::size_t>(sched->ii), 0);
    for (const int t : sched->time)
      ++rows[static_cast<std::size_t>(t % sched->ii)];
    for (const int r : rows) EXPECT_LE(r, m.issue_width) << "width " << width;
    EXPECT_LE(sched->num_stages, opts.max_stages);
  }
}

TEST(ModuloIms, AchievesMinIIOnBothFigures) {
  for (const bool fig3 : {false, true}) {
    const Function fn = fig3 ? make_fig3_loop(64) : make_fig1_loop(64);
    const MachineModel m = MachineModel::issue(4);
    const ModuloDepGraph g(fn, only_loop(fn), m);
    const ModuloOptions opts;
    const auto sched = ims_schedule(g, m, opts, g.min_ii(m), g.min_ii(m) + 16);
    ASSERT_TRUE(sched.has_value()) << "fig3=" << fig3;
    EXPECT_EQ(sched->ii, g.min_ii(m)) << "fig3=" << fig3;  // MinII is achievable
  }
}

// Fig1's address-register recurrence (RecMII 6 ~= the body's list makespan)
// makes pipelining unprofitable there; Fig3's accumulator loop (RecMII 3,
// makespan ~8) is the shape modulo scheduling exists for.
TEST(ModuloPipeline, RewritesFig3IntoProKernelEpi) {
  Function fn = make_fig3_loop(64);
  const Function original = fn;
  const MachineModel m = MachineModel::issue(4);
  const ModuloStats stats = modulo_pipeline_function(fn, m);
  ASSERT_EQ(stats.loops_pipelined, 1);
  EXPECT_GE(stats.achieved_ii_sum, stats.min_ii_sum);
  EXPECT_GE(stats.max_stages, 2);

  std::set<std::string> names;
  for (const Block& b : fn.blocks()) names.insert(b.name);
  EXPECT_TRUE(names.count("L1.pro"));
  EXPECT_TRUE(names.count("L1.mod"));
  EXPECT_TRUE(names.count("L1.epi"));
  EXPECT_TRUE(names.count("L1"));  // fallback body kept behind the guard

  const RunOutcome want = run_seeded(original, m);
  const RunOutcome got = run_seeded(fn, m);
  ASSERT_TRUE(want.result.ok);
  ASSERT_TRUE(got.result.ok) << got.result.error;
  EXPECT_EQ(compare_observable(original, want, got), "");
  EXPECT_LT(got.result.cycles, want.result.cycles);  // pipelining must pay off
}

// Zero-overlap trip counts: the guard must route T < stages executions to
// the untouched original body, and a pipelined T == stages execution runs
// the kernel exactly once.  Observable state must match in every case.
TEST(ModuloPipeline, TinyTripCountsFallBackCleanly) {
  for (const std::int64_t n : {1, 2, 3, 4, 5}) {
    Function fn = make_fig3_loop(n);
    const Function original = fn;
    const MachineModel m = MachineModel::issue(4);
    modulo_pipeline_function(fn, m);
    const RunOutcome want = run_seeded(original, m);
    const RunOutcome got = run_seeded(fn, m);
    ASSERT_TRUE(want.result.ok) << "n=" << n;
    ASSERT_TRUE(got.result.ok) << "n=" << n << ": " << got.result.error;
    EXPECT_EQ(compare_observable(original, want, got), "") << "n=" << n;
  }
}

// The emitted kernel is itself a simple counted loop (countdown + BGT); the
// driver's re-derive loop must not pipeline its own output.  If it did,
// we'd see loops_pipelined > 1, extra blocks, or nested ".mod.mod" names.
TEST(ModuloPipeline, DriverDoesNotRepipelineItsOwnKernel) {
  Function fn = make_fig3_loop(64);
  const std::size_t blocks_before = fn.num_blocks();
  const MachineModel m = MachineModel::issue(4);
  const ModuloStats stats = modulo_pipeline_function(fn, m);
  ASSERT_EQ(stats.loops_pipelined, 1);
  EXPECT_EQ(fn.num_blocks(), blocks_before + 3);  // .pro/.mod/.epi only
  for (const Block& b : fn.blocks())
    EXPECT_EQ(b.name.find(".mod.mod"), std::string::npos) << b.name;
}

TEST(ModuloAnalyze, ReportsMatchPipelineDecisions) {
  const MachineModel m = MachineModel::issue(4);
  {
    const Function fn = make_fig1_loop(64);
    const auto reports = analyze_modulo_loops(fn, m);
    ASSERT_EQ(reports.size(), 1u);
    const ModuloLoopReport& r = reports.front();
    EXPECT_TRUE(r.eligible);
    EXPECT_EQ(r.body_insts, 5);
    EXPECT_EQ(r.min_ii, 6);  // address-register recurrence
    EXPECT_EQ(r.achieved_ii, 6);
  }
  {
    const Function fn = make_fig3_loop(64);
    const auto reports = analyze_modulo_loops(fn, m);
    ASSERT_EQ(reports.size(), 1u);
    const ModuloLoopReport& r = reports.front();
    EXPECT_TRUE(r.eligible);
    EXPECT_EQ(r.body_insts, 6);
    EXPECT_EQ(r.min_ii, 3);  // accumulator recurrence: lat_fp_alu
    EXPECT_EQ(r.achieved_ii, 3);
    EXPECT_GT(r.list_makespan, r.achieved_ii);  // why pipelining is profitable
  }
}

TEST(ModuloKind, ParseAndName) {
  EXPECT_EQ(parse_scheduler_kind("list"), SchedulerKind::List);
  EXPECT_EQ(parse_scheduler_kind("modulo"), SchedulerKind::Modulo);
  EXPECT_FALSE(parse_scheduler_kind("swing").has_value());
  EXPECT_STREQ(scheduler_kind_name(SchedulerKind::List), "list");
  EXPECT_STREQ(scheduler_kind_name(SchedulerKind::Modulo), "modulo");
}

// Engine cache separation: the same cell under different backends (or a
// different modulo scheduler version) must hash differently, so warm caches
// can never serve one backend's results to the other.
TEST(ModuloKind, StudyCellKeySeparatesBackends) {
  const Workload& w = workload_suite().front();
  const MachineModel m = MachineModel::issue(4);
  CompileOptions list_opts;
  CompileOptions modulo_opts;
  modulo_opts.scheduler = SchedulerKind::Modulo;
  const std::uint64_t a = study_cell_key(w, OptLevel::Lev4, m, list_opts);
  const std::uint64_t b = study_cell_key(w, OptLevel::Lev4, m, modulo_opts);
  EXPECT_NE(a, b);
  CompileOptions deeper = modulo_opts;
  deeper.modulo.max_stages = 4;
  EXPECT_NE(study_cell_key(w, OptLevel::Lev4, m, deeper), b);
}

}  // namespace
}  // namespace ilp
