#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "analysis/liveness.hpp"
#include "common/fixtures.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "sim/simulator.hpp"

namespace ilp {
namespace {

using ilp::testing::cycles_per_iteration;
using ilp::testing::infinite_issue;

TEST(Scheduler, EmissionOrderIsTopological) {
  Function fn = ilp::testing::make_fig1_loop(30);
  const Function before = fn;
  schedule_function(fn, infinite_issue());
  EXPECT_TRUE(verify(fn).ok) << verify(fn).message;
  // Behaviour unchanged.
  const RunOutcome a = run_seeded(before, infinite_issue());
  const RunOutcome b = run_seeded(fn, infinite_issue());
  EXPECT_EQ(compare_observable(before, a, b), "");
}

TEST(Scheduler, Fig5bSchedulesTo6CyclesPerIteration) {
  // The paper's Figure 5b: scheduled conventional code runs at 6 cycles per
  // iteration (the i++ hoists to cycle 0; the branch pairs with the store).
  auto make = [](std::int64_t n) {
    Function fn = ilp::testing::make_fig5_loop(n);
    schedule_function(fn, infinite_issue());
    return fn;
  };
  EXPECT_DOUBLE_EQ(cycles_per_iteration(make, 50, 150, infinite_issue()), 6.0);
}

TEST(Scheduler, Fig1bScheduleKeeps7Cycles) {
  // No schedule can beat the recurrence in Figure 1b's body.
  auto make = [](std::int64_t n) {
    Function fn = ilp::testing::make_fig1_loop(n);
    schedule_function(fn, infinite_issue());
    return fn;
  };
  EXPECT_DOUBLE_EQ(cycles_per_iteration(make, 50, 150, infinite_issue()), 7.0);
}

TEST(Scheduler, KeepsStoreBeforeSideExit) {
  Function fn;
  const std::int32_t A = fn.add_array({"A", 0, 4, 8, true});
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId body = b.create_block("body");
  const BlockId out = b.create_block("out");
  b.set_block(e);
  const Reg base = b.ldi(0);
  const Reg v = b.fldi(1.5);
  const Reg c = b.ldi(1);
  b.jump(body);
  b.set_block(body);
  b.fst(base, 0, v, A);
  b.bri(Opcode::BEQ, c, 1, out);
  b.fst(base, 4, v, A);
  b.ret();
  b.set_block(out);
  b.ret();
  fn.renumber();

  schedule_function(fn, infinite_issue());
  const Block& body_blk = fn.block(body);
  std::size_t st1 = 99, br = 99, st2 = 99;
  for (std::size_t i = 0; i < body_blk.insts.size(); ++i) {
    const Instruction& in = body_blk.insts[i];
    if (in.op == Opcode::FST && in.ival == 0) st1 = i;
    if (in.is_branch()) br = i;
    if (in.op == Opcode::FST && in.ival == 4) st2 = i;
  }
  EXPECT_LT(st1, br);
  EXPECT_LT(br, st2);
}

TEST(Scheduler, WidthLimitedScheduleRespectsIssueWidth) {
  // Eight independent constant loads on a 2-wide machine: makespan >= 4.
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  b.set_block(e);
  for (int i = 0; i < 8; ++i) b.ldi(i);
  b.ret();
  fn.renumber();
  const Cfg cfg(fn);
  const Liveness live(cfg);
  const MachineModel m2 = MachineModel::issue(2);
  const DepGraph g(fn, e, m2, live);
  const BlockSchedule s = list_schedule(g, fn, e, m2);
  EXPECT_GE(s.makespan, 5);  // 4 cycles of ldis + ret
  int per_cycle[16] = {0};
  for (std::size_t i = 0; i + 1 < s.issue_time.size(); ++i)
    per_cycle[s.issue_time[i]]++;
  for (int c = 0; c < 16; ++c) EXPECT_LE(per_cycle[c], 2);
}

TEST(Scheduler, CriticalPathScheduledFirst) {
  // A long fdiv chain and independent cheap ops: the chain head must issue
  // at cycle 0 on a 1-wide machine.
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  b.set_block(e);
  const Reg x = b.fldi(1.0);  // head of critical chain
  b.ldi(1);
  b.ldi(2);
  const Reg y = b.fdiv(x, x);
  b.fdiv(y, y);
  b.ret();
  fn.renumber();
  const Cfg cfg(fn);
  const Liveness live(cfg);
  const MachineModel m1 = MachineModel::issue(1);
  const DepGraph g(fn, e, m1, live);
  const BlockSchedule s = list_schedule(g, fn, e, m1);
  EXPECT_EQ(s.issue_time[0], 0);  // fldi first despite ldi ties
  EXPECT_EQ(s.order[0], 0u);
}

TEST(Scheduler, BranchSlotLimitInSchedule) {
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId out = b.create_block("out");
  b.set_block(e);
  const Reg c = fn.new_int_reg();
  b.bri(Opcode::BEQ, c, 1, out);
  b.bri(Opcode::BEQ, c, 2, out);
  b.ret();
  b.set_block(out);
  b.ret();
  fn.renumber();
  const Cfg cfg(fn);
  const Liveness live(cfg);
  const MachineModel m = infinite_issue();
  const DepGraph g(fn, e, m, live);
  const BlockSchedule s = list_schedule(g, fn, e, m);
  // Three control ops, one branch slot each cycle.
  EXPECT_EQ(s.issue_time[0], 0);
  EXPECT_EQ(s.issue_time[1], 1);
  EXPECT_EQ(s.issue_time[2], 2);
}

TEST(Scheduler, SchedulerNeverWorsensTheSimulatedLoop) {
  for (std::int64_t n : {30, 60}) {
    Function plain = ilp::testing::make_fig3_loop(n);
    Function sched = ilp::testing::make_fig3_loop(n);
    schedule_function(sched, infinite_issue());
    const RunOutcome a = run_seeded(plain, infinite_issue());
    const RunOutcome b = run_seeded(sched, infinite_issue());
    ASSERT_TRUE(a.result.ok && b.result.ok);
    EXPECT_LE(b.result.cycles, a.result.cycles);
    EXPECT_EQ(compare_observable(plain, a, b), "");
  }
}

}  // namespace
}  // namespace ilp
