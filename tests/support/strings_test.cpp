#include "support/strings.hpp"

#include <gtest/gtest.h>

namespace ilp {
namespace {

TEST(Strings, Format) {
  EXPECT_EQ(strformat("x=%d y=%s", 3, "abc"), "x=3 y=abc");
  EXPECT_EQ(strformat("%.2f", 1.5), "1.50");
  EXPECT_EQ(strformat("empty"), "empty");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Pad) {
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace ilp
