#include "support/bitvector.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ilp {
namespace {

TEST(BitVector, SetTestReset) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_FALSE(v.any());
  v.set(0);
  v.set(64);
  v.set(129);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(129));
  EXPECT_FALSE(v.test(1));
  EXPECT_EQ(v.count(), 3u);
  v.reset(64);
  EXPECT_FALSE(v.test(64));
  EXPECT_EQ(v.count(), 2u);
}

TEST(BitVector, SetAllRespectsSize) {
  BitVector v(70, true);
  EXPECT_EQ(v.count(), 70u);
  v.reset_all();
  EXPECT_FALSE(v.any());
  v.set_all();
  EXPECT_EQ(v.count(), 70u);
}

TEST(BitVector, UnionIntersectSubtract) {
  BitVector a(100);
  BitVector b(100);
  a.set(3);
  a.set(50);
  b.set(50);
  b.set(99);
  BitVector u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);
  BitVector i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(50));
  BitVector s = a;
  s.subtract(b);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.test(3));
}

TEST(BitVector, ForEachSetIteratesInOrder) {
  BitVector v(200);
  const std::vector<std::size_t> want = {1, 63, 64, 65, 128, 199};
  for (auto i : want) v.set(i);
  std::vector<std::size_t> got;
  v.for_each_set([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(BitVector, ResizeGrowWithValue) {
  BitVector v(10);
  v.set(9);
  v.resize(100, true);
  EXPECT_TRUE(v.test(9));
  EXPECT_FALSE(v.test(0));
  EXPECT_TRUE(v.test(10));
  EXPECT_TRUE(v.test(99));
  EXPECT_EQ(v.count(), 91u);
}

TEST(BitVector, EqualityIgnoresNothing) {
  BitVector a(65);
  BitVector b(65);
  EXPECT_TRUE(a == b);
  a.set(64);
  EXPECT_FALSE(a == b);
  b.set(64);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace ilp
