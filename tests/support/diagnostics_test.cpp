#include "support/diagnostics.hpp"

#include <gtest/gtest.h>

namespace ilp {
namespace {

TEST(Diagnostics, CollectsAndCountsErrors) {
  DiagnosticEngine d;
  EXPECT_FALSE(d.has_errors());
  d.warning({1, 2}, "w");
  EXPECT_FALSE(d.has_errors());
  d.error({3, 4}, "e");
  EXPECT_TRUE(d.has_errors());
  ASSERT_EQ(d.all().size(), 2u);
  EXPECT_EQ(d.all()[0].severity, Severity::Warning);
  EXPECT_EQ(d.all()[1].severity, Severity::Error);
}

TEST(Diagnostics, RendersLocations) {
  DiagnosticEngine d;
  d.error({7, 12}, "bad token");
  d.report(Severity::Note, {}, "hint");
  const std::string s = d.to_string();
  EXPECT_NE(s.find("7:12: error: bad token"), std::string::npos);
  EXPECT_NE(s.find("note: hint"), std::string::npos);
  // Locationless notes must not print "0:0".
  EXPECT_EQ(s.find("0:0"), std::string::npos);
}

}  // namespace
}  // namespace ilp
