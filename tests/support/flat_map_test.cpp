#include "support/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

namespace ilp {
namespace {

TEST(FlatHashMap64, PutFindOverwrite) {
  FlatHashMap64 m;
  EXPECT_EQ(m.find(42), nullptr);
  m.put(42, 7);
  ASSERT_NE(m.find(42), nullptr);
  EXPECT_EQ(*m.find(42), 7u);
  m.put(42, 9);  // overwrite, not a second entry
  EXPECT_EQ(*m.find(42), 9u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMap64, NegativeAndExtremeKeys) {
  FlatHashMap64 m;
  m.put(-1, 1);
  m.put(0, 2);
  m.put(INT64_MIN, 3);
  m.put(INT64_MAX, 4);
  EXPECT_EQ(*m.find(-1), 1u);
  EXPECT_EQ(*m.find(0), 2u);
  EXPECT_EQ(*m.find(INT64_MIN), 3u);
  EXPECT_EQ(*m.find(INT64_MAX), 4u);
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(m.size(), 4u);
}

TEST(FlatHashMap64, GrowthPreservesEntries) {
  FlatHashMap64 m;
  // Far past the initial capacity of 64; forces several rehashes.
  for (std::int64_t k = 0; k < 10000; ++k) m.put(k * 8 + 1000, static_cast<std::uint64_t>(k));
  EXPECT_EQ(m.size(), 10000u);
  for (std::int64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(m.find(k * 8 + 1000), nullptr) << k;
    EXPECT_EQ(*m.find(k * 8 + 1000), static_cast<std::uint64_t>(k));
  }
  EXPECT_EQ(m.find(999), nullptr);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(1000), nullptr);
}

// Randomized differential check against std::unordered_map using a
// deterministic LCG (no global entropy in tests).
TEST(FlatHashMap64, MatchesUnorderedMapOracle) {
  FlatHashMap64 m;
  std::unordered_map<std::int64_t, std::uint64_t> oracle;
  std::uint64_t state = 0x243f6a8885a308d3ull;
  auto next = [&] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state;
  };
  for (int step = 0; step < 50000; ++step) {
    // Small key space so overwrites are frequent.
    const std::int64_t key = static_cast<std::int64_t>(next() % 4096) - 2048;
    const std::uint64_t val = next();
    m.put(key, val);
    oracle[key] = val;
  }
  EXPECT_EQ(m.size(), oracle.size());
  for (const auto& [key, val] : oracle) {
    ASSERT_NE(m.find(key), nullptr) << key;
    EXPECT_EQ(*m.find(key), val) << key;
  }
  for (std::int64_t key = -3000; key < 3000; ++key) {
    const bool in_oracle = oracle.count(key) > 0;
    EXPECT_EQ(m.find(key) != nullptr, in_oracle) << key;
  }
}

}  // namespace
}  // namespace ilp
