// MpscRing: the lock-free dispatch primitive under the shard-per-core
// server.  Single-producer sanity, full/empty boundaries, drain ordering,
// and a multi-producer stress that the CI TSan job runs to keep the
// publish/consume fences honest.
#include "support/mpsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace ilp {
namespace {

TEST(MpscRing, SingleProducerRoundTrips) {
  MpscRing<int> ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));  // starts empty

  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size_approx(), 5u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty_approx());
}

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  MpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  MpscRing<int> tiny(0);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(MpscRing, FullRingRejectsPushWithoutConsuming) {
  MpscRing<std::unique_ptr<int>> ring(4);
  for (int i = 0; i < 4; ++i) {
    auto p = std::make_unique<int>(i);
    EXPECT_TRUE(ring.try_push(std::move(p)));
  }
  auto extra = std::make_unique<int>(99);
  EXPECT_FALSE(ring.try_push(extra));
  ASSERT_NE(extra, nullptr);  // a failed push must not steal the element
  EXPECT_EQ(*extra, 99);

  // Freeing one slot re-admits exactly one element.
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 0);
  EXPECT_TRUE(ring.try_push(std::move(extra)));
  auto another = std::make_unique<int>(100);
  EXPECT_FALSE(ring.try_push(another));
}

// Wrap the ring several times through interleaved push/pop so the slot
// sequence numbers are exercised past one lap.
TEST(MpscRing, SurvivesManyWraps) {
  MpscRing<int> ring(4);
  int out = 0;
  for (int lap = 0; lap < 1000; ++lap) {
    EXPECT_TRUE(ring.try_push(2 * lap));
    EXPECT_TRUE(ring.try_push(2 * lap + 1));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, 2 * lap);
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, 2 * lap + 1);
  }
}

// Drain ordering: everything pushed before the consumer starts draining
// comes out in push order, and the drain observes every element exactly
// once — the property the graceful-drain path relies on.
TEST(MpscRing, DrainAfterStopSeesAllElementsInOrder) {
  MpscRing<std::uint64_t> ring(64);
  for (std::uint64_t i = 0; i < 50; ++i) {
    std::uint64_t v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  std::vector<std::uint64_t> drained;
  std::uint64_t out = 0;
  while (ring.try_pop(out)) drained.push_back(out);
  ASSERT_EQ(drained.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(drained[i], i);
}

// Multi-producer stress: N producers push tagged values while one consumer
// drains; every element must arrive exactly once and per-producer FIFO must
// hold.  Run under TSan in CI (tsan job builds support_test).
TEST(MpscRing, MultiProducerStressKeepsPerProducerFifo) {
  constexpr unsigned kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;
  MpscRing<std::uint64_t> ring(256);
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!ring.try_push(v)) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t received = 0;
  std::thread consumer([&] {
    std::uint64_t v = 0;
    while (received < kProducers * kPerProducer) {
      if (!ring.try_pop(v)) {
        if (done.load(std::memory_order_acquire) && !ring.try_pop(v)) {
          if (received < kProducers * kPerProducer) continue;
          break;
        }
        std::this_thread::yield();
        continue;
      }
      const auto p = static_cast<unsigned>(v >> 32);
      const std::uint64_t seq = v & 0xffffffffull;
      ASSERT_LT(p, kProducers);
      ASSERT_EQ(seq, next[p]) << "per-producer FIFO violated";
      ++next[p];
      ++received;
    }
  });

  for (std::thread& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(received, kProducers * kPerProducer);
  for (unsigned p = 0; p < kProducers; ++p) EXPECT_EQ(next[p], kPerProducer);
  EXPECT_TRUE(ring.empty_approx());
}

}  // namespace
}  // namespace ilp
