// Printer coverage across every opcode form, and opcode-property sanity.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/printer.hpp"

namespace ilp {
namespace {

TEST(PrinterAllOps, EveryOpcodeHasANameAndPrints) {
  Function fn;
  const std::int32_t arr = fn.add_array({"A", 64, 4, 4, true});
  IRBuilder b(fn);
  const BlockId e = b.create_block("e");
  const BlockId t = b.create_block("t");
  b.set_block(e);
  const Reg i1 = b.ldi(3);
  const Reg i2 = b.ldi(4);
  const Reg f1 = b.fldi(1.5);
  const Reg f2 = b.fldi(2.5);

  // Every binary arithmetic opcode in reg-reg and reg-imm form.
  for (int op = 0; op < kNumOpcodes; ++op) {
    const Opcode o = static_cast<Opcode>(op);
    EXPECT_FALSE(opcode_name(o).empty());
    if (!op_is_binary_arith(o)) continue;
    const bool fp = op_dest_is_fp(o);
    const Reg d = fn.new_reg(fp ? RegClass::Fp : RegClass::Int);
    Instruction rr = make_binary(o, d, fp ? f1 : i1, fp ? f2 : i2);
    EXPECT_FALSE(to_string(rr, &fn).empty()) << opcode_name(o);
    Instruction ri = fp ? make_binary_fimm(o, d, f1, 2.0) : make_binary_imm(o, d, i1, 2);
    const std::string s = to_string(ri, &fn);
    EXPECT_NE(s.find(opcode_name(o)), std::string::npos) << s;
  }

  // Memory, branches, moves.
  b.fld(i1, 64, arr);
  b.fst(i1, 64, f1, arr);
  b.ld(i1, 200, kMayAliasAll);
  b.st(i1, 200, i2, kMayAliasAll);
  b.br(Opcode::FBGE, f1, f2, t);
  b.bri(Opcode::BNE, i1, 7, t);
  b.brf(Opcode::FBLE, f1, 9.5, t);
  b.jump(t);
  b.set_block(t);
  b.imov(i1);
  b.fmov(f1);
  b.fneg(f1);
  b.itof(i1);
  b.ftoi(f1);
  b.imax(i1, i2);
  b.fmin(f1, f2);
  b.ret();
  fn.renumber();

  for (const auto& blk : fn.blocks())
    for (const auto& in : blk.insts) {
      const std::string s = to_string(in, &fn);
      EXPECT_FALSE(s.empty());
    }
  // Specific renderings.
  const auto& insts = fn.block(e).insts;
  const std::size_t n = insts.size();
  EXPECT_EQ(to_string(insts[n - 3], &fn), "bne r0.i, 7 -> t");
  EXPECT_EQ(to_string(insts[n - 2], &fn), "fble r0.f, 9.5 -> t");
  EXPECT_EQ(to_string(insts[n - 1], &fn), "jump -> t");
}

TEST(PrinterAllOps, BranchHelpersAreInverses) {
  for (Opcode op : {Opcode::BEQ, Opcode::BNE, Opcode::BLT, Opcode::BLE, Opcode::BGT,
                    Opcode::BGE, Opcode::FBEQ, Opcode::FBNE, Opcode::FBLT, Opcode::FBLE,
                    Opcode::FBGT, Opcode::FBGE}) {
    EXPECT_EQ(op_invert_branch(op_invert_branch(op)), op) << opcode_name(op);
    EXPECT_EQ(op_swap_branch(op_swap_branch(op)), op) << opcode_name(op);
    EXPECT_EQ(op_is_fp_compare(op), op_is_fp_compare(op_invert_branch(op)));
  }
}

TEST(PrinterAllOps, UnknownOffsetsRenderNumerically) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("e"));
  const Reg base = b.ldi(0);
  const Reg v = b.fld(base, 48, kMayAliasAll);
  (void)v;
  b.ret();
  EXPECT_EQ(to_string(fn.blocks().front().insts[1], &fn), "r0.f = fld [r0.i + 48]");
}

}  // namespace
}  // namespace ilp
