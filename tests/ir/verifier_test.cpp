#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/verifier.hpp"

namespace ilp {
namespace {

Function valid_fn() {
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  b.set_block(e);
  const Reg x = b.ldi(1);
  b.iaddi(x, 1);
  b.ret();
  return fn;
}

TEST(Verifier, AcceptsValidFunction) {
  const Function fn = valid_fn();
  EXPECT_TRUE(verify(fn).ok) << verify(fn).message;
}

TEST(Verifier, RejectsEmptyFunction) {
  Function fn;
  EXPECT_FALSE(verify(fn).ok);
}

TEST(Verifier, RejectsMissingRet) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  b.ldi(1);
  EXPECT_FALSE(verify(fn).ok);
}

TEST(Verifier, RejectsFallthroughPastEnd) {
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId t = b.create_block("tail");
  b.set_block(e);
  b.ret();
  b.set_block(t);
  b.ldi(1);  // tail has no terminator and is last in layout
  EXPECT_FALSE(verify(fn).ok);
}

TEST(Verifier, RejectsClassMismatch) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg i = b.ldi(1);
  Instruction bad = make_unary(Opcode::FMOV, fn.new_fp_reg(), i);  // fp move of int src
  bad.src1 = i;
  b.append(bad);
  b.ret();
  EXPECT_FALSE(verify(fn).ok);
}

TEST(Verifier, RejectsBranchToNowhere) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg i = b.ldi(1);
  b.bri(Opcode::BLT, i, 5, BlockId{42});
  b.ret();
  EXPECT_FALSE(verify(fn).ok);
}

TEST(Verifier, RejectsCodeAfterTerminator) {
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  b.set_block(e);
  b.ret();
  fn.block(e).insts.push_back(make_ldi(fn.new_int_reg(), 3));
  // RET is now mid-block.
  fn.block(e).insts.push_back(make_ret());
  EXPECT_FALSE(verify(fn).ok);
}

TEST(Verifier, RejectsUnknownArrayId) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg i = b.ldi(0);
  b.fld(i, 0, 7);  // array id 7 does not exist
  b.ret();
  EXPECT_FALSE(verify(fn).ok);
}

TEST(Verifier, AcceptsMayAliasAllMemoryOps) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg i = b.ldi(0);
  b.fld(i, 0, kMayAliasAll);
  b.ret();
  EXPECT_TRUE(verify(fn).ok) << verify(fn).message;
}

}  // namespace
}  // namespace ilp
