#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/function.hpp"
#include "ir/printer.hpp"

namespace ilp {
namespace {

TEST(Ir, RegistersAreDensePerClass) {
  Function fn;
  const Reg i0 = fn.new_int_reg();
  const Reg i1 = fn.new_int_reg();
  const Reg f0 = fn.new_fp_reg();
  EXPECT_EQ(i0.id, 0u);
  EXPECT_EQ(i1.id, 1u);
  EXPECT_EQ(f0.id, 0u);
  EXPECT_TRUE(i0.is_int());
  EXPECT_TRUE(f0.is_fp());
  EXPECT_NE(i0, Reg({RegClass::Fp, 0}));
  EXPECT_EQ(fn.num_regs(RegClass::Int), 2u);
  EXPECT_EQ(fn.num_regs(RegClass::Fp), 1u);
}

TEST(Ir, BlockLayoutAndInsertAfter) {
  Function fn;
  const BlockId a = fn.add_block("a");
  const BlockId b = fn.add_block("b");
  EXPECT_EQ(fn.layout_next(a), b);
  EXPECT_EQ(fn.layout_next(b), kNoBlock);
  const BlockId mid = fn.insert_block_after(a, "mid");
  EXPECT_EQ(fn.layout_next(a), mid);
  EXPECT_EQ(fn.layout_next(mid), b);
  EXPECT_EQ(fn.block(mid).name, "mid");
  // Ids keep resolving after layout changes.
  EXPECT_EQ(fn.block(a).name, "a");
  EXPECT_EQ(fn.block(b).name, "b");
}

TEST(Ir, InstructionUsesAndReplace) {
  Function fn;
  const Reg a = fn.new_fp_reg();
  const Reg b = fn.new_fp_reg();
  const Reg d = fn.new_fp_reg();
  Instruction in = make_binary(Opcode::FADD, d, a, b);
  EXPECT_TRUE(in.reads(a));
  EXPECT_TRUE(in.reads(b));
  EXPECT_FALSE(in.reads(d));
  EXPECT_TRUE(in.writes(d));
  const Reg c = fn.new_fp_reg();
  EXPECT_EQ(in.replace_uses(a, c), 1);
  EXPECT_TRUE(in.reads(c));
  EXPECT_FALSE(in.reads(a));
}

TEST(Ir, ImmediateOperandIsNotARegisterUse) {
  Function fn;
  const Reg a = fn.new_int_reg();
  const Reg d = fn.new_int_reg();
  Instruction in = make_binary_imm(Opcode::IADD, d, a, 4);
  EXPECT_EQ(in.uses().size(), 1u);
  EXPECT_EQ(in.uses()[0], a);
}

TEST(Ir, BuilderEmitsIntoCurrentBlock) {
  Function fn;
  IRBuilder b(fn);
  const BlockId blk = b.create_block("entry");
  b.set_block(blk);
  const Reg x = b.ldi(5);
  const Reg y = b.iaddi(x, 2);
  b.ret();
  (void)y;
  EXPECT_EQ(fn.block(blk).insts.size(), 3u);
  EXPECT_EQ(fn.block(blk).insts[0].op, Opcode::LDI);
  EXPECT_EQ(fn.block(blk).insts[1].op, Opcode::IADD);
  EXPECT_TRUE(fn.block(blk).has_terminator());
}

TEST(Ir, RenumberAssignsSequentialUids) {
  Function fn;
  IRBuilder b(fn);
  const BlockId b0 = b.create_block("b0");
  const BlockId b1 = b.create_block("b1");
  b.set_block(b0);
  b.ldi(1);
  b.set_block(b1);
  b.ldi(2);
  b.ret();
  fn.renumber();
  EXPECT_EQ(fn.block(b0).insts[0].uid, 0u);
  EXPECT_EQ(fn.block(b1).insts[0].uid, 1u);
  EXPECT_EQ(fn.block(b1).insts[1].uid, 2u);
  EXPECT_EQ(fn.num_insts(), 3u);
}

TEST(Ir, PrinterRendersCoreForms) {
  Function fn;
  const std::int32_t arr = fn.add_array({"A", 1000, 4, 8, true});
  IRBuilder b(fn);
  const BlockId blk = b.create_block("L1");
  b.set_block(blk);
  const Reg i = b.ldi(0);
  const Reg v = b.fld(i, 1000, arr);
  const Reg w = b.fmuli(v, 2.5);
  b.fst(i, 1004, w, arr);
  b.bri(Opcode::BLT, i, 100, blk);
  b.ret();

  EXPECT_EQ(to_string(i), "r0.i");
  EXPECT_EQ(to_string(v), "r0.f");
  const auto& insts = fn.block(blk).insts;
  EXPECT_EQ(to_string(insts[0], &fn), "r0.i = 0");
  EXPECT_EQ(to_string(insts[1], &fn), "r0.f = fld [r0.i + A]");
  EXPECT_EQ(to_string(insts[2], &fn), "r1.f = fmul r0.f, 2.5");
  EXPECT_EQ(to_string(insts[3], &fn), "fst [r0.i + A+4] = r1.f");
  EXPECT_EQ(to_string(insts[4], &fn), "blt r0.i, 100 -> L1");
  EXPECT_EQ(to_string(insts[5], &fn), "ret");
  // Full-function rendering includes array header and labels.
  const std::string s = to_string(fn);
  EXPECT_NE(s.find("array A"), std::string::npos);
  EXPECT_NE(s.find("L1:"), std::string::npos);
}

TEST(Ir, ArrayLookup) {
  Function fn;
  fn.add_array({"A", 0, 4, 1, true});
  const std::int32_t b = fn.add_array({"B", 100, 8, 2, false});
  EXPECT_EQ(fn.find_array("B"), b);
  EXPECT_EQ(fn.find_array("Z"), -1);
  EXPECT_EQ(fn.array(b)->elem_size, 8);
  EXPECT_EQ(fn.array(kMayAliasAll), nullptr);
}

}  // namespace
}  // namespace ilp
