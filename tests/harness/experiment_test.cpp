#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include "harness/report.hpp"

namespace ilp {
namespace {

// A small sub-suite keeps the test fast while covering all three loop types.
std::vector<Workload> mini_suite() {
  std::vector<Workload> out;
  for (const char* name : {"add", "dotprod", "SDS-4", "maxval"})
    out.push_back(*find_workload(name));
  return out;
}

TEST(Experiment, StudyShapesAreSane) {
  const StudyResult s = run_study(mini_suite());
  ASSERT_EQ(s.loops.size(), 4u);
  for (const auto& l : s.loops) {
    // Base config (Conv, issue-1) defines speedup 1.0.
    EXPECT_DOUBLE_EQ(l.speedup(OptLevel::Conv, 0), 1.0) << l.name;
    for (std::size_t li = 0; li < kLevels.size(); ++li) {
      for (std::size_t wi = 0; wi < kIssueWidths.size(); ++wi) {
        EXPECT_GT(l.cycles[li][wi], 0u) << l.name;
        // Wider machines never hurt (same code, more slots).
        if (wi > 0) EXPECT_LE(l.cycles[li][wi], l.cycles[li][wi - 1]) << l.name;
      }
      EXPECT_GT(l.regs[li].total(), 0) << l.name;
    }
  }
}

TEST(Experiment, DotProductNeedsLev4) {
  const StudyResult s = run_study(mini_suite());
  const LoopStudy* dot = nullptr;
  const LoopStudy* add = nullptr;
  for (const auto& l : s.loops) {
    if (l.name == "dotprod") dot = &l;
    if (l.name == "add") add = &l;
  }
  ASSERT_NE(dot, nullptr);
  ASSERT_NE(add, nullptr);
  // The accumulator loop barely moves until Lev4; the DOALL loop is already
  // fast at Lev2 (paper Section 3.2).
  EXPECT_GT(dot->speedup(OptLevel::Lev4, 3), dot->speedup(OptLevel::Lev2, 3) * 2.0);
  EXPECT_GT(add->speedup(OptLevel::Lev2, 3), 4.0);
}

TEST(Experiment, MeansAndFiltersAgree) {
  const StudyResult s = run_study(mini_suite());
  const double all = s.mean_speedup(OptLevel::Lev4, 3);
  EXPECT_GT(all, 1.0);
  const double doall = s.mean_speedup_where(OptLevel::Lev4, 3, true);
  const double nondoall = s.mean_speedup_where(OptLevel::Lev4, 3, false);
  // 1 DOALL (add) + 3 non-DOALL in the mini suite.
  EXPECT_NEAR(all, (doall * 1 + nondoall * 3) / 4.0, 1e-9);
}

TEST(Experiment, RegisterUsageGrowsWithLevels) {
  const StudyResult s = run_study(mini_suite());
  EXPECT_GT(s.mean_registers(OptLevel::Lev4), s.mean_registers(OptLevel::Conv));
}

TEST(Report, HistogramCountsSumToLoopCount) {
  const StudyResult s = run_study(mini_suite());
  const Histogram h = speedup_histogram(s, 3, fig10_speedup_buckets());
  for (std::size_t li = 0; li < kLevels.size(); ++li) {
    int total = 0;
    for (const auto& row : h.counts) total += row[li];
    EXPECT_EQ(total, 4);
  }
}

TEST(Report, BucketBoundariesMatchPaperAxes) {
  EXPECT_EQ(fig8_speedup_buckets().size(), 7u);
  EXPECT_EQ(fig9_speedup_buckets().size(), 9u);
  EXPECT_EQ(fig10_speedup_buckets().size(), 9u);
  EXPECT_EQ(fig11_register_buckets().size(), 7u);
  EXPECT_EQ(fig11_register_buckets().back().label, "128+");
}

TEST(Report, RenderersProduceAllSections) {
  const StudyResult s = run_study(mini_suite());
  const std::string t = render_speedup_table(s, 3);
  EXPECT_NE(t.find("dotprod"), std::string::npos);
  EXPECT_NE(t.find("MEAN"), std::string::npos);
  const std::string t2 = render_table2();
  EXPECT_NE(t2.find("PERFECT"), std::string::npos);
  EXPECT_NE(t2.find("VECTOR"), std::string::npos);
  EXPECT_NE(t2.find("maxval"), std::string::npos);
  const Histogram h = register_histogram(s);
  const std::string t3 = render_histogram(h, "title");
  EXPECT_NE(t3.find("title"), std::string::npos);
  EXPECT_NE(t3.find("Lev4"), std::string::npos);
}

}  // namespace
}  // namespace ilp
