#include "trans/swp.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "frontend/compile.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "trans/level.hpp"
#include "workloads/suite.hpp"

namespace ilp {
namespace {

using ilp::testing::cycles_per_iteration;
using ilp::testing::infinite_issue;

TEST(Swp, ShiftsFig1LoopAndPreservesBehaviour) {
  for (std::int64_t n : {1, 2, 3, 5, 9, 30}) {
    Function plain = ilp::testing::make_fig1_loop(n);
    Function swp = ilp::testing::make_fig1_loop(n);
    const SwpResult r = software_pipeline(swp, infinite_issue());
    EXPECT_EQ(r.loops_pipelined, 1);
    EXPECT_TRUE(verify(swp).ok) << verify(swp).message;
    const RunOutcome a = run_seeded(plain, infinite_issue());
    const RunOutcome b = run_seeded(swp, infinite_issue());
    ASSERT_EQ(compare_observable(plain, a, b), "") << "n=" << n << "\n" << to_string(swp);
  }
}

TEST(Swp, TwoStagePipelineBeatsPlainScheduleOnFig1) {
  // Fig 1's body is a 7-cycle chain; overlapping halves of consecutive
  // iterations should cut the steady-state initiation interval.
  auto plain = [](std::int64_t n) {
    Function fn = ilp::testing::make_fig1_loop(n);
    schedule_function(fn, infinite_issue());
    return fn;
  };
  auto swp = [](std::int64_t n) {
    Function fn = ilp::testing::make_fig1_loop(n);
    software_pipeline(fn, infinite_issue());
    schedule_function(fn, infinite_issue());
    return fn;
  };
  const double c_plain = cycles_per_iteration(plain, 64, 256, infinite_issue());
  const double c_swp = cycles_per_iteration(swp, 64, 256, infinite_issue());
  EXPECT_DOUBLE_EQ(c_plain, 7.0);
  EXPECT_LT(c_swp, c_plain);
}

TEST(Swp, DeeperPipelinesKeepImprovingOrHold) {
  auto cpi_at = [](int stages) {
    auto make = [stages](std::int64_t n) {
      Function fn = ilp::testing::make_fig1_loop(n);
      SwpOptions o;
      o.stages = stages;
      software_pipeline(fn, infinite_issue(), o);
      schedule_function(fn, infinite_issue());
      return fn;
    };
    return cycles_per_iteration(make, 64, 256, infinite_issue());
  };
  const double s2 = cpi_at(2);
  const double s3 = cpi_at(3);
  const double s4 = cpi_at(4);
  EXPECT_LE(s3, s2 + 1e-9);
  EXPECT_LE(s4, s3 + 1e-9);
  EXPECT_LT(s4, 7.0);
}

TEST(Swp, ThreeStageBehaviourPreserved) {
  for (std::int64_t n : {1, 2, 3, 4, 7, 20}) {
    Function plain = ilp::testing::make_fig1_loop(n);
    Function swp = ilp::testing::make_fig1_loop(n);
    SwpOptions o;
    o.stages = 4;
    software_pipeline(swp, infinite_issue(), o);
    EXPECT_TRUE(verify(swp).ok) << verify(swp).message;
    const RunOutcome a = run_seeded(plain, infinite_issue());
    const RunOutcome b = run_seeded(swp, infinite_issue());
    ASSERT_EQ(compare_observable(plain, a, b), "") << "n=" << n;
  }
}

TEST(Swp, SkipsUncountedAndSideExitLoops) {
  Function fig6 = ilp::testing::make_fig6_loop(10);
  const SwpResult r = software_pipeline(fig6, infinite_issue());
  EXPECT_EQ(r.loops_pipelined, 0);  // data-dependent exit: not counted
}

TEST(Swp, AccumulatorLoopStaysCorrect) {
  for (std::int64_t n : {1, 2, 5, 24}) {
    Function plain = ilp::testing::make_fig3_loop(n);
    Function swp = ilp::testing::make_fig3_loop(n);
    software_pipeline(swp, infinite_issue());
    EXPECT_TRUE(verify(swp).ok) << verify(swp).message;
    const RunOutcome a = run_seeded(plain, infinite_issue());
    const RunOutcome b = run_seeded(swp, infinite_issue());
    ASSERT_EQ(compare_observable(plain, a, b), "") << "n=" << n;
  }
}

TEST(Swp, ComposesWithLev4AcrossSuiteSubset) {
  // The paper's open question: do the ILP transformations still help under
  // software pipelining?  At minimum the composition must stay correct.
  const MachineModel m8 = MachineModel::issue(8);
  for (const char* name : {"add", "dotprod", "matrix300-1", "SDS-4", "NAS-2"}) {
    const Workload* w = find_workload(name);
    DiagnosticEngine d0;
    auto base = dsl::compile(w->source, d0);
    const RunOutcome want = run_seeded(base->fn, m8);

    DiagnosticEngine d1;
    auto opt = dsl::compile(w->source, d1);
    CompileOptions copts;
    copts.schedule = false;
    compile_at_level(opt->fn, OptLevel::Lev4, m8, copts);
    software_pipeline(opt->fn, m8);
    schedule_function(opt->fn, m8);
    EXPECT_TRUE(verify(opt->fn).ok) << name;
    const RunOutcome got = run_seeded(opt->fn, m8);
    ASSERT_EQ(compare_observable(base->fn, want, got, 1e-6), "") << name;
  }
}

TEST(Swp, FallbackPathHandlesTinyTrips) {
  // T == 1 must take the guard to the original loop.
  Function plain = ilp::testing::make_fig1_loop(1);
  Function swp = ilp::testing::make_fig1_loop(1);
  software_pipeline(swp, infinite_issue());
  const RunOutcome a = run_seeded(plain, infinite_issue());
  const RunOutcome b = run_seeded(swp, infinite_issue());
  EXPECT_EQ(compare_observable(plain, a, b), "");
}

}  // namespace
}  // namespace ilp
