#include "trans/rename.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/fixtures.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "trans/unroll.hpp"

namespace ilp {
namespace {

using ilp::testing::cycles_per_iteration;
using ilp::testing::infinite_issue;

// After renaming, no register may be defined twice in the unrolled body
// except the loop-carried finals.
int max_defs_in_block(const Function& fn, std::string_view name) {
  std::unordered_map<std::uint64_t, int> defs;
  int mx = 0;
  for (const auto& b : fn.blocks()) {
    if (b.name != name) continue;
    for (const auto& in : b.insts)
      if (in.has_dest()) mx = std::max(mx, ++defs[RegKey::key(in.dst)]);
  }
  return mx;
}

TEST(Rename, SplitsMultiplyDefinedRegisters) {
  Function fn = ilp::testing::make_fig1_loop(30);
  unroll_loops(fn, {3, 160});
  EXPECT_GT(max_defs_in_block(fn, "L1.u"), 1);
  EXPECT_GT(rename_registers(fn), 0);
  EXPECT_TRUE(verify(fn).ok) << verify(fn).message;
  EXPECT_EQ(max_defs_in_block(fn, "L1.u"), 1);
}

TEST(Rename, PreservesBehaviour) {
  for (std::int64_t n : {1, 5, 9, 30}) {
    Function plain = ilp::testing::make_fig1_loop(n);
    Function ren = ilp::testing::make_fig1_loop(n);
    unroll_loops(ren, {3, 160});
    rename_registers(ren);
    const RunOutcome a = run_seeded(plain, infinite_issue());
    const RunOutcome b = run_seeded(ren, infinite_issue());
    ASSERT_EQ(compare_observable(plain, a, b), "") << "n=" << n;
  }
}

TEST(Rename, Figure1dReaches8CyclesPer3Iterations) {
  // The paper's headline Figure 1 result: unroll 3x + rename + schedule
  // -> 8 cycles / 3 iterations on the infinite-issue machine.  The figure
  // keeps the three counter adds separate, so counter merging is disabled.
  auto make = [](std::int64_t n) {
    Function fn = ilp::testing::make_fig1_loop(n);
    UnrollOptions u{3, 160};
    u.merge_counter_updates = false;
    unroll_loops(fn, u);
    rename_registers(fn);
    schedule_function(fn, infinite_issue());
    return fn;
  };
  const double cpg = cycles_per_iteration(make, 51, 150, infinite_issue());
  EXPECT_DOUBLE_EQ(cpg * 3.0, 8.0);
}

TEST(Rename, CounterMergingBeatsFigure1d) {
  // With the Figure-5c-style merged counter the same loop reaches 7 cycles
  // per 3 iterations — strictly better than Figure 1d's 8.
  auto make = [](std::int64_t n) {
    Function fn = ilp::testing::make_fig1_loop(n);
    unroll_loops(fn, {3, 160});
    rename_registers(fn);
    schedule_function(fn, infinite_issue());
    return fn;
  };
  const double cpg = cycles_per_iteration(make, 51, 150, infinite_issue());
  EXPECT_LE(cpg * 3.0, 8.0);
}

TEST(Rename, WithoutRenamingUnrolledLoopStaysSerial) {
  // Figure 1c: unrolling alone (unmerged counters) reaches only 19 cycles /
  // 3 iterations.
  auto make = [](std::int64_t n) {
    Function fn = ilp::testing::make_fig1_loop(n);
    UnrollOptions u{3, 160};
    u.merge_counter_updates = false;
    unroll_loops(fn, u);
    schedule_function(fn, infinite_issue());
    return fn;
  };
  const double cpg = cycles_per_iteration(make, 51, 150, infinite_issue());
  EXPECT_GE(cpg * 3.0, 17.0);
  EXPECT_LE(cpg * 3.0, 19.0);
}

TEST(Rename, SkipsRegistersLiveAtSideExits) {
  // x is updated twice in the loop and read at the side-exit target: renaming
  // must leave it alone or the early exit observes a stale name.
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId out = b.create_block("out");
  const BlockId tail = b.create_block("tail");
  b.set_block(e);
  const Reg i = b.ldi(0);
  const Reg x = b.ldi(0);
  b.jump(loop);
  b.set_block(loop);
  b.iaddi_to(x, x, 1);
  b.bri(Opcode::BGT, x, 13, out);  // side exit reading nothing, but x live at out
  b.iaddi_to(x, x, 1);
  b.iaddi_to(i, i, 1);
  b.bri(Opcode::BLT, i, 50, loop);
  b.set_block(tail);
  b.jump(out);
  b.set_block(out);
  const Reg y = b.iaddi(x, 100);
  b.ret();
  fn.add_live_out(y);
  fn.add_live_out(x);
  fn.renumber();

  Function plain = fn;
  rename_registers(fn);
  EXPECT_TRUE(verify(fn).ok) << verify(fn).message;
  const RunOutcome a = run_seeded(plain, infinite_issue());
  const RunOutcome c = run_seeded(fn, infinite_issue());
  EXPECT_EQ(compare_observable(plain, a, c), "");
}

TEST(Rename, LoopCarriedFinalLandsInOriginalRegister) {
  Function fn = ilp::testing::make_fig1_loop(30);
  unroll_loops(fn, {3, 160});
  // r1 (the address IV) is carried; find it as the branch source before
  // renaming, and verify the last def of the unrolled body still writes it.
  const Block* main = nullptr;
  for (const auto& b : fn.blocks())
    if (b.name == "L1.u") main = &b;
  ASSERT_NE(main, nullptr);
  const Reg iv = main->insts.back().src1;
  rename_registers(fn);
  const Block* main2 = nullptr;
  for (const auto& b : fn.blocks())
    if (b.name == "L1.u") main2 = &b;
  int defs_of_iv = 0;
  for (const auto& in : main2->insts)
    if (in.writes(iv)) ++defs_of_iv;
  EXPECT_EQ(defs_of_iv, 1);  // exactly the final def
  EXPECT_EQ(main2->insts.back().src1, iv);  // branch still tests it
}

}  // namespace
}  // namespace ilp
