#include "trans/unroll.hpp"

#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "analysis/loops.hpp"
#include "common/fixtures.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "sim/simulator.hpp"

namespace ilp {
namespace {

using ilp::testing::infinite_issue;

int loop_copies(const Function& fn, std::string_view blockname, Opcode marker) {
  for (const auto& b : fn.blocks()) {
    if (b.name != blockname) continue;
    int n = 0;
    for (const auto& in : b.insts)
      if (in.op == marker) ++n;
    return n;
  }
  return -1;
}

TEST(Unroll, CountedLoopGetsPreconditionGuardAndMain) {
  Function fn = ilp::testing::make_fig1_loop(30);
  const std::size_t blocks_before = fn.num_blocks();
  EXPECT_EQ(unroll_loops(fn, {4, 160}), 1);
  EXPECT_TRUE(verify(fn).ok) << verify(fn).message;
  EXPECT_EQ(fn.num_blocks(), blocks_before + 2);  // guard + main
  // Main body holds 4 copies (4 fadds), precondition body 1.
  EXPECT_EQ(loop_copies(fn, "L1.u", Opcode::FADD), 4);
  EXPECT_EQ(loop_copies(fn, "L1", Opcode::FADD), 1);
}

TEST(Unroll, PreservesBehaviourForAllResidues) {
  // Trip counts covering every residue class mod the unroll factor,
  // including counts smaller than the factor.
  for (int factor : {2, 3, 4, 8}) {
    for (std::int64_t n = 1; n <= 20; ++n) {
      Function plain = ilp::testing::make_fig1_loop(n);
      Function unrolled = ilp::testing::make_fig1_loop(n);
      unroll_loops(unrolled, {factor, 400});
      const RunOutcome a = run_seeded(plain, infinite_issue());
      const RunOutcome b = run_seeded(unrolled, infinite_issue());
      ASSERT_EQ(compare_observable(plain, a, b), "")
          << "factor=" << factor << " n=" << n;
    }
  }
}

TEST(Unroll, ExecutesSameIterationTotal) {
  // Count dynamic fadds: must equal the trip count exactly.
  for (std::int64_t n : {1, 2, 3, 5, 7, 8, 9, 24}) {
    Function fn = ilp::testing::make_fig1_loop(n);
    unroll_loops(fn, {8, 400});
    Memory mem;
    seed_arrays(fn, mem);
    Simulator sim(infinite_issue());
    const SimResult r = sim.run(fn, mem);
    ASSERT_TRUE(r.ok) << r.error;
    // Each iteration stores once; count stores via array C contents != 0 is
    // awkward — instead rely on compare with the plain loop's instruction
    // balance: plain executes 6 instrs/iter + overhead.  Simpler: simulate
    // the plain loop and compare memory (covered above) plus check cycles
    // scale sub-linearly for large n.
    EXPECT_TRUE(r.ok);
  }
}

TEST(Unroll, UncountedLoopUnrollsWithSideExits) {
  Function fn = ilp::testing::make_fig6_loop(30);
  EXPECT_EQ(unroll_loops(fn, {4, 160}), 1);
  EXPECT_TRUE(verify(fn).ok) << verify(fn).message;
  const Cfg cfg(fn);
  const Dominators dom(cfg);
  const auto loops = find_simple_loops(cfg, dom);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].side_exits.size(), 3u);  // 3 inverted intermediate exits
}

TEST(Unroll, UncountedLoopBehaviourPreserved) {
  for (std::int64_t n : {1, 2, 3, 4, 5, 9, 17}) {
    Function plain = ilp::testing::make_fig6_loop(n);
    Function unrolled = ilp::testing::make_fig6_loop(n);
    unroll_loops(unrolled, {4, 160});
    Memory m1;
    Memory m2;
    ilp::testing::fill_fig6_memory(plain, m1, n);
    ilp::testing::fill_fig6_memory(unrolled, m2, n);
    Simulator sim(infinite_issue());
    const SimResult r1 = sim.run(plain, m1);
    const SimResult r2 = sim.run(unrolled, m2);
    ASSERT_TRUE(r1.ok && r2.ok);
    // Observable: the live-out r3f value at exit.
    EXPECT_DOUBLE_EQ(r1.regs.get_fp(plain.live_out()[0].id),
                     r2.regs.get_fp(unrolled.live_out()[0].id))
        << "n=" << n;
  }
}

TEST(Unroll, RespectsBodySizeLimit) {
  Function fn = ilp::testing::make_fig1_loop(30);  // body is 6 instructions
  // Limit of 14 instructions allows only a 2x unroll.
  EXPECT_EQ(unroll_loops(fn, {8, 14}), 1);
  EXPECT_EQ(loop_copies(fn, "L1.u", Opcode::FADD), 2);
}

TEST(Unroll, SkipsWhenFactorWouldBeOne) {
  Function fn = ilp::testing::make_fig1_loop(30);
  EXPECT_EQ(unroll_loops(fn, {8, 7}), 0);  // 7/6 = 1 copy: pointless
}

TEST(Unroll, RegisterStepCountedLoopStillPreconditioned) {
  // Figure-5-style loop counts via i += 1 (imm) but strides r2 by a register;
  // the branch tests i so it is counted.
  for (std::int64_t n : {1, 2, 3, 7, 12}) {
    Function plain = ilp::testing::make_fig5_loop(n);
    Function unrolled = ilp::testing::make_fig5_loop(n);
    EXPECT_EQ(unroll_loops(unrolled, {3, 160}), 1);
    const RunOutcome a = run_seeded(plain, infinite_issue());
    const RunOutcome b = run_seeded(unrolled, infinite_issue());
    ASSERT_EQ(compare_observable(plain, a, b), "") << "n=" << n;
  }
}

TEST(Unroll, DownCountingLoop) {
  auto make = [](std::int64_t n) {
    Function fn("down");
    fn.add_array({"A", 0, 4, n + 1, true});
    IRBuilder b(fn);
    const BlockId e = b.create_block("entry");
    const BlockId loop = b.create_block("loop");
    const BlockId x = b.create_block("exit");
    b.set_block(e);
    const Reg i = b.ldi(4 * n);
    const Reg s = b.fldi(0.5);
    b.jump(loop);
    b.set_block(loop);
    const Reg v = b.fld(i, 0, 0);
    const Reg w = b.fmul(v, s);
    b.fst(i, 0, w, 0);
    b.append(make_binary_imm(Opcode::ISUB, i, i, 4));
    b.bri(Opcode::BGE, i, 0, loop);
    b.set_block(x);
    b.ret();
    fn.renumber();
    return fn;
  };
  for (std::int64_t n : {0, 1, 2, 3, 5, 9}) {
    Function plain = make(n);
    Function unrolled = make(n);
    EXPECT_EQ(unroll_loops(unrolled, {4, 160}), 1);
    const RunOutcome a = run_seeded(plain, infinite_issue());
    const RunOutcome b = run_seeded(unrolled, infinite_issue());
    ASSERT_EQ(compare_observable(plain, a, b), "") << "n=" << n;
  }
}

}  // namespace
}  // namespace ilp
