// Differential oracle for the affine nest transformations (trans/nest/):
// every workload-suite source and hundreds of random DSL programs are run
// through each nest-pass combination, and the IR interpreter's bit-exact
// observable-state digest (tests/common/interp.hpp) must match the
// untransformed program's.  The interpreter is an independent implementation
// of the simulator's functional semantics, so this also pins the two
// engines against each other on the whole workload suite.
//
// Legal nest transforms never reassociate floating point (interchange and
// tiling refuse loop-carried scalars; fusion and fission preserve each
// statement instance's computation), so the digest comparison has no
// tolerance: any difference is a miscompile.
#include <gtest/gtest.h>

#include <string>

#include "common/fixtures.hpp"
#include "common/interp.hpp"
#include "frontend/compile.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "sim/simulator.hpp"
#include "trans/level.hpp"
#include "trans/nest/nest.hpp"
#include "workloads/nest_suite.hpp"
#include "workloads/suite.hpp"

namespace ilp {
namespace {

using testing::fuzz_seed_count;
using testing::random_nest_program;
using testing::random_program;
using testing::run_digest;

Function compile_src(const std::string& src) {
  DiagnosticEngine diags;
  auto r = dsl::compile(src, diags);
  EXPECT_TRUE(r.has_value()) << diags.to_string() << "\n" << src;
  return r ? std::move(r->fn) : Function{"empty"};
}

// The five pass combinations the oracle sweeps.  tile_size 4 (not the
// default 16) so the randomly drawn inner trips tile often enough to
// exercise the pass throughout the corpus.
struct Combo {
  const char* name;
  NestOptions opts;
};

std::vector<Combo> combos() {
  std::vector<Combo> cs;
  NestOptions o;
  o.interchange = true;
  cs.push_back({"interchange", o});
  o = NestOptions{};
  o.fuse = true;
  cs.push_back({"fuse", o});
  o = NestOptions{};
  o.fission = true;
  cs.push_back({"fission", o});
  o = NestOptions{};
  o.tile = true;
  o.tile_size = 4;
  cs.push_back({"tile", o});
  o = NestOptions{};
  o.interchange = o.fuse = o.fission = o.tile = true;
  o.tile_size = 4;
  cs.push_back({"all", o});
  return cs;
}

// Runs one source through every combo and checks the digest; accumulates
// per-pass application counts into `total`.
void check_all_combos(const std::string& src, const char* tag, NestStats* total) {
  const Function base = compile_src(src);
  if (base.num_blocks() == 0) return;  // compile failure already reported
  bool base_ok = false;
  std::string base_err;
  const std::uint64_t want = run_digest(base, &base_ok, &base_err);
  ASSERT_TRUE(base_ok) << tag << ": baseline failed: " << base_err << "\n" << src;

  for (const Combo& c : combos()) {
    Function fn = base;
    const NestStats stats = run_nest_pipeline(fn, c.opts);
    verify_or_die(fn, "after nest pipeline (oracle)");
    if (total != nullptr) {
      total->interchanged += stats.interchanged;
      total->fused += stats.fused;
      total->fissioned += stats.fissioned;
      total->tiled += stats.tiled;
    }
    if (stats.total() == 0) continue;  // nothing applied: trivially equal
    bool ok = false;
    std::string err;
    const std::uint64_t got = run_digest(fn, &ok, &err);
    ASSERT_TRUE(ok) << tag << " [" << c.name << "]: transformed program failed: " << err
                    << "\n"
                    << src << "\n"
                    << to_string(fn);
    ASSERT_EQ(got, want) << tag << " [" << c.name << "]: digest mismatch ("
                         << stats.interchanged << " interchanged, " << stats.fused
                         << " fused, " << stats.fissioned << " fissioned, "
                         << stats.tiled << " tiled)\n"
                         << src << "\n"
                         << to_string(fn);
  }
}

// --- The oracle over the full workload suite --------------------------------

TEST(NestSemantics, WorkloadSuitePreservedUnderAllCombos) {
  for (const Workload& w : workload_suite())
    check_all_combos(w.source, w.name.c_str(), nullptr);
}

// The nest-restructuring workloads (BENCH_7's subjects) under the same
// oracle, and the coverage pin that every pass finds work in that suite.
TEST(NestSemantics, NestSuitePreservedAndEveryPassFires) {
  NestStats total;
  for (const Workload& w : nest_suite())
    check_all_combos(w.source, w.name.c_str(), &total);
  EXPECT_GT(total.interchanged, 0);
  EXPECT_GT(total.fused, 0);
  EXPECT_GT(total.fissioned, 0);
  EXPECT_GT(total.tiled, 0);
}

// --- The oracle over the general fuzz corpus --------------------------------

TEST(NestSemantics, RandomProgramsPreservedUnderAllCombos) {
  const int n = fuzz_seed_count(200);
  NestStats total;
  for (int seed = 1; seed <= n; ++seed) {
    const std::string src = random_program(static_cast<std::uint64_t>(seed));
    check_all_combos(src, "random_program", &total);
    if (::testing::Test::HasFatalFailure()) FAIL() << "seed " << seed;
  }
  // The general corpus contains adjacent conformable loops (every seed % 10
  // == 7 appends one), so at minimum fusion must find work here.
  EXPECT_GT(total.fused, 0);
}

// --- The oracle over the nest-shaped corpus, and pass coverage --------------

TEST(NestSemantics, RandomNestProgramsPreservedAndEveryPassFires) {
  const int n = fuzz_seed_count(200);
  NestStats total;
  for (int seed = 1; seed <= n; ++seed) {
    const std::string src = random_nest_program(static_cast<std::uint64_t>(seed));
    check_all_combos(src, "random_nest_program", &total);
    if (::testing::Test::HasFatalFailure()) FAIL() << "seed " << seed;
  }
  // The corpus is shaped so every pass finds work: transposed accesses for
  // interchange, conformable adjacent pairs for fusion, independent
  // statement groups for fission, legal nests with trip > tile_size for
  // tiling.  A pass that never fires is a silently dead pass.
  EXPECT_GT(total.interchanged, 0);
  EXPECT_GT(total.fused, 0);
  EXPECT_GT(total.fissioned, 0);
  EXPECT_GT(total.tiled, 0);
}

// --- Interpreter vs simulator: two engines, one contract --------------------

TEST(NestSemantics, InterpreterAgreesWithSimulatorOnWorkloads) {
  const MachineModel m = MachineModel::issue(8);
  for (const Workload& w : workload_suite()) {
    const Function fn = compile_src(w.source);
    ASSERT_GT(fn.num_blocks(), 0u) << w.name;

    const RunOutcome sim = run_seeded(fn, m);
    ASSERT_TRUE(sim.result.ok) << w.name << ": " << sim.result.error;

    RunOutcome interp;
    seed_arrays(fn, interp.memory);
    testing::InterpResult r = testing::interpret(fn, interp.memory);
    ASSERT_TRUE(r.ok) << w.name << ": " << r.error;
    interp.result.ok = true;
    interp.result.regs = std::move(r.regs);

    // Identical functional semantics: zero tolerance.
    const std::string diff = compare_observable(fn, sim, interp, 0.0);
    EXPECT_TRUE(diff.empty()) << w.name << ": " << diff;
  }
}

// --- Nest passes composed with the full transformation pipeline -------------

TEST(NestSemantics, FullPipelineWithNestPassesPreservesSemantics) {
  const int n = fuzz_seed_count(40);
  const MachineModel m = MachineModel::issue(8);
  for (int seed = 1; seed <= n; ++seed) {
    const std::string src = random_nest_program(static_cast<std::uint64_t>(seed));
    Function base = compile_src(src);
    ASSERT_GT(base.num_blocks(), 0u) << src;
    const RunOutcome want = run_seeded(base, m);
    ASSERT_TRUE(want.result.ok) << want.result.error << "\n" << src;

    Function fn = compile_src(src);
    CompileOptions opts;
    opts.nest.interchange = opts.nest.fuse = opts.nest.fission = opts.nest.tile = true;
    opts.nest.tile_size = 4;
    compile_at_level(fn, OptLevel::Lev4, m, opts);
    const RunOutcome got = run_seeded(fn, m);
    ASSERT_TRUE(got.result.ok) << got.result.error << "\n" << src;

    // Lev3+ reassociates expression trees, so this comparison (unlike the
    // digest oracle above) needs the usual fp tolerance.
    const std::string diff = compare_observable(fn, want, got, 1e-6);
    ASSERT_TRUE(diff.empty()) << "seed " << seed << ": " << diff << "\n" << src;
  }
}

}  // namespace
}  // namespace ilp
