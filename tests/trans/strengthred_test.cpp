#include "trans/strengthred.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "sim/simulator.hpp"

namespace ilp {
namespace {

using ilp::testing::infinite_issue;

int count_op(const Function& fn, Opcode op) {
  int n = 0;
  for (const auto& b : fn.blocks())
    for (const auto& in : b.insts)
      if (in.op == op) ++n;
  return n;
}

// Builds r = x <op> C, reduces, and evaluates both for the given inputs.
struct ReducedEval {
  std::int64_t plain = 0;
  std::int64_t reduced = 0;
  bool did_reduce = false;
};

ReducedEval eval(Opcode op, std::int64_t c, std::int64_t x) {
  auto build = [&]() {
    Function fn;
    IRBuilder b(fn);
    b.set_block(b.create_block("entry"));
    const Reg xr = fn.new_int_reg();
    const Reg r = fn.new_int_reg();
    b.append(make_binary_imm(op, r, xr, c));
    b.ret();
    fn.add_live_out(r);
    fn.renumber();
    return std::pair<Function, Reg>(std::move(fn), r);
  };
  auto [plain, pr] = build();
  auto [red, rr] = build();
  const int n = strength_reduction(red);
  EXPECT_TRUE(verify(red).ok) << verify(red).message;

  auto run = [&](const Function& f, const Reg& out_reg) {
    SimOptions o;
    o.init_ints = {x};
    Memory mem;
    const SimResult r = Simulator(infinite_issue(), std::move(o)).run(f, mem);
    EXPECT_TRUE(r.ok) << r.error;
    return r.regs.get_int(out_reg.id);
  };
  ReducedEval out;
  out.plain = run(plain, pr);
  out.reduced = run(red, rr);
  out.did_reduce = n > 0;
  return out;
}

const std::int64_t kProbes[] = {0,      1,       -1,      2,     -2,    7,
                                -7,     100,     -100,    4095,  -4096, 123456789,
                                -987654321, INT64_MAX, INT64_MIN + 1, INT64_MIN};

TEST(StrengthRed, MulByPowerOfTwo) {
  for (std::int64_t c : {std::int64_t{2}, std::int64_t{4}, std::int64_t{8},
                         std::int64_t{1024}, std::int64_t{1} << 40}) {
    for (std::int64_t x : kProbes) {
      const ReducedEval e = eval(Opcode::IMUL, c, x);
      EXPECT_TRUE(e.did_reduce) << c;
      EXPECT_EQ(e.plain, e.reduced) << "c=" << c << " x=" << x;
    }
  }
}

TEST(StrengthRed, MulByTwoTermConstants) {
  for (std::int64_t c : {3, 5, 6, 7, 9, 10, 12, 15, 17, 24, 31, 33, 48, 96, 255}) {
    for (std::int64_t x : kProbes) {
      const ReducedEval e = eval(Opcode::IMUL, c, x);
      EXPECT_TRUE(e.did_reduce) << c;
      EXPECT_EQ(e.plain, e.reduced) << "c=" << c << " x=" << x;
    }
  }
}

TEST(StrengthRed, MulByNegativeAndOddConstants) {
  // -2 and -8 reduce (shift+neg); dense-bit constants like 11 may not.
  for (std::int64_t c : {-2, -8, -1}) {
    for (std::int64_t x : kProbes) {
      const ReducedEval e = eval(Opcode::IMUL, c, x);
      EXPECT_TRUE(e.did_reduce) << c;
      EXPECT_EQ(e.plain, e.reduced) << "c=" << c << " x=" << x;
    }
  }
  // Whatever happens for hard constants, semantics must hold.
  for (std::int64_t c : {11, 37, -37, 1000003}) {
    for (std::int64_t x : kProbes) {
      const ReducedEval e = eval(Opcode::IMUL, c, x);
      EXPECT_EQ(e.plain, e.reduced) << "c=" << c << " x=" << x;
    }
  }
}

TEST(StrengthRed, DivByPowerOfTwoMatchesTruncatingDivision) {
  for (std::int64_t c : {std::int64_t{2}, std::int64_t{4}, std::int64_t{8},
                         std::int64_t{64}, std::int64_t{4096}, std::int64_t{1} << 32}) {
    for (std::int64_t x : kProbes) {
      const ReducedEval e = eval(Opcode::IDIV, c, x);
      EXPECT_TRUE(e.did_reduce) << c;
      EXPECT_EQ(e.plain, e.reduced) << "c=" << c << " x=" << x;
    }
  }
}

TEST(StrengthRed, DivByNegativePowerOfTwo) {
  for (std::int64_t c : {-2, -16, -1024}) {
    for (std::int64_t x : kProbes) {
      const ReducedEval e = eval(Opcode::IDIV, c, x);
      EXPECT_TRUE(e.did_reduce) << c;
      EXPECT_EQ(e.plain, e.reduced) << "c=" << c << " x=" << x;
    }
  }
}

TEST(StrengthRed, DivByMagicConstants) {
  for (std::int64_t c : {3, 5, 7, 9, 10, 11, 12, 25, 100, 1000, 1000003, -3, -7, -100}) {
    for (std::int64_t x : kProbes) {
      const ReducedEval e = eval(Opcode::IDIV, c, x);
      EXPECT_TRUE(e.did_reduce) << c;
      EXPECT_EQ(e.plain, e.reduced) << "c=" << c << " x=" << x;
    }
  }
}

TEST(StrengthRed, DivMagicRandomSweep) {
  std::uint64_t s = 0x123456789abcdefull;
  for (int i = 0; i < 2000; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    std::int64_t c = static_cast<std::int64_t>(s >> 20) % 100000;
    if (c == 0 || c == 1 || c == -1) c = 3;
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    const std::int64_t x = static_cast<std::int64_t>(s);
    const ReducedEval e = eval(Opcode::IDIV, c, x);
    ASSERT_EQ(e.plain, e.reduced) << "c=" << c << " x=" << x;
  }
}

TEST(StrengthRed, RemByPowerOfTwo) {
  for (std::int64_t c : {2, 8, 256, -2, -64}) {
    for (std::int64_t x : kProbes) {
      const ReducedEval e = eval(Opcode::IREM, c, x);
      EXPECT_TRUE(e.did_reduce) << c;
      EXPECT_EQ(e.plain, e.reduced) << "c=" << c << " x=" << x;
    }
  }
}

TEST(StrengthRed, ReducedCodeContainsNoDivide) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_int_reg();
  const Reg q = b.idivi(x, 10);
  const Reg m = b.iremi(x, 8);
  const Reg p = b.imuli(x, 40);
  b.ret();
  fn.add_live_out(q);
  fn.add_live_out(m);
  fn.add_live_out(p);
  fn.renumber();
  EXPECT_EQ(strength_reduction(fn), 3);
  EXPECT_EQ(count_op(fn, Opcode::IDIV), 0);
  EXPECT_EQ(count_op(fn, Opcode::IREM), 0);
  EXPECT_EQ(count_op(fn, Opcode::IMUL), 0);
}

TEST(StrengthRed, OptionsDisableEachReduction) {
  StrengthRedOptions off;
  off.reduce_mul = off.reduce_div_pow2 = off.reduce_rem_pow2 = off.reduce_div_magic = false;
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_int_reg();
  const Reg q = b.idivi(x, 10);
  b.ret();
  fn.add_live_out(q);
  fn.renumber();
  EXPECT_EQ(strength_reduction(fn, off), 0);
  EXPECT_EQ(count_op(fn, Opcode::IDIV), 1);
}

TEST(StrengthRed, DoesNotTouchRegisterOperands) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_int_reg();
  const Reg y = fn.new_int_reg();
  const Reg q = b.idiv(x, y);
  b.ret();
  fn.add_live_out(q);
  fn.renumber();
  EXPECT_EQ(strength_reduction(fn), 0);
}

}  // namespace
}  // namespace ilp
