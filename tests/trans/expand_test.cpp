// Tests for the three expansion transformations (paper Figures 2-5).
#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "trans/accexpand.hpp"
#include "trans/indexpand.hpp"
#include "trans/rename.hpp"
#include "trans/searchexpand.hpp"
#include "trans/unroll.hpp"

namespace ilp {
namespace {

using ilp::testing::cycles_per_iteration;
using ilp::testing::infinite_issue;

// ---------------- Accumulator expansion --------------------------------------

TEST(AccExpand, ExpandsUnrolledDotProduct) {
  Function fn = ilp::testing::make_fig3_loop(24);
  unroll_loops(fn, {3, 160});
  EXPECT_EQ(accumulator_expansion(fn), 1);
  EXPECT_TRUE(verify(fn).ok) << verify(fn).message;
}

TEST(AccExpand, RequiresMultipleAccumulationInstructions) {
  Function fn = ilp::testing::make_fig3_loop(24);  // not unrolled: k == 1
  EXPECT_EQ(accumulator_expansion(fn), 0);
}

TEST(AccExpand, PreservesSum) {
  for (std::int64_t n : {1, 2, 3, 7, 24}) {
    Function plain = ilp::testing::make_fig3_loop(n);
    Function exp = ilp::testing::make_fig3_loop(n);
    unroll_loops(exp, {3, 160});
    accumulator_expansion(exp);
    rename_registers(exp);
    const RunOutcome a = run_seeded(plain, infinite_issue());
    const RunOutcome b = run_seeded(exp, infinite_issue());
    ASSERT_EQ(compare_observable(plain, a, b), "") << "n=" << n;
  }
}

TEST(AccExpand, RemovesAccumulatorFromCriticalPath) {
  // Figure 3: unroll+rename stays limited by the fadd recurrence; expansion
  // breaks it.  Compare steady-state cycles per 3-iteration group.
  auto lev2 = [](std::int64_t n) {
    Function fn = ilp::testing::make_fig3_loop(n);
    unroll_loops(fn, {3, 160});
    rename_registers(fn);
    schedule_function(fn, infinite_issue());
    return fn;
  };
  auto lev4 = [](std::int64_t n) {
    Function fn = ilp::testing::make_fig3_loop(n);
    unroll_loops(fn, {3, 160});
    accumulator_expansion(fn);
    induction_expansion(fn);
    rename_registers(fn);
    schedule_function(fn, infinite_issue());
    return fn;
  };
  const double c2 = cycles_per_iteration(lev2, 51, 150, infinite_issue());
  const double c4 = cycles_per_iteration(lev4, 51, 150, infinite_issue());
  EXPECT_LT(c4, c2);
  EXPECT_LE(c4, 8.0 / 3.0 + 1e-9);  // paper: 2.7 with both expansions
}

TEST(AccExpand, MixedAddSubAccumulator) {
  // acc += A[i]; acc -= B[i];  both count as inc/dec instructions.
  auto make = [](std::int64_t n, bool expand) {
    Function fn("mix");
    fn.add_array({"A", 0, 4, n, true});
    fn.add_array({"B", 1000, 4, n, true});
    IRBuilder b(fn);
    const BlockId e = b.create_block("entry");
    const BlockId loop = b.create_block("loop");
    const BlockId x = b.create_block("exit");
    b.set_block(e);
    const Reg i = b.ldi(0);
    const Reg lim = b.ldi(4 * n);
    const Reg acc = b.fldi(0.0);
    b.jump(loop);
    b.set_block(loop);
    const Reg va = b.fld(i, 0, 0);
    b.fadd_to(acc, acc, va);
    const Reg vb = b.fld(i, 1000, 1);
    b.append(make_binary(Opcode::FSUB, acc, acc, vb));
    b.iaddi_to(i, i, 4);
    b.br(Opcode::BLT, i, lim, loop);
    b.set_block(x);
    b.ret();
    fn.add_live_out(acc);
    fn.renumber();
    if (expand) EXPECT_EQ(accumulator_expansion(fn), 1);
    return fn;
  };
  for (std::int64_t n : {1, 4, 9}) {
    const Function plain = make(n, false);
    const Function exp = make(n, true);
    const RunOutcome a = run_seeded(plain, infinite_issue());
    const RunOutcome b = run_seeded(exp, infinite_issue());
    ASSERT_EQ(compare_observable(plain, a, b), "") << "n=" << n;
  }
}

TEST(AccExpand, RejectsValueUsedOutsideAccumulation) {
  // acc feeds a store each iteration: a prefix-sum, not an accumulator.
  Function fn("prefix");
  fn.add_array({"A", 0, 4, 8, true});
  fn.add_array({"P", 1000, 4, 8, true});
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId x = b.create_block("exit");
  b.set_block(e);
  const Reg i = b.ldi(0);
  const Reg acc = b.fldi(0.0);
  b.jump(loop);
  b.set_block(loop);
  const Reg v1 = b.fld(i, 0, 0);
  b.fadd_to(acc, acc, v1);
  b.fst(i, 1000, acc, 1);  // read of acc outside the accumulation
  const Reg v2 = b.fld(i, 4, 0);
  b.fadd_to(acc, acc, v2);
  b.iaddi_to(i, i, 8);
  b.bri(Opcode::BLT, i, 32, loop);
  b.set_block(x);
  b.ret();
  fn.renumber();
  EXPECT_EQ(accumulator_expansion(fn), 0);
}

TEST(AccExpand, ProductExpansionBehindOption) {
  auto make = [](std::int64_t n) {
    Function fn("prod");
    fn.add_array({"A", 0, 4, n, true});
    IRBuilder b(fn);
    const BlockId e = b.create_block("entry");
    const BlockId loop = b.create_block("loop");
    const BlockId x = b.create_block("exit");
    b.set_block(e);
    const Reg i = b.ldi(0);
    const Reg acc = b.fldi(1.0);
    b.jump(loop);
    b.set_block(loop);
    for (int u = 0; u < 2; ++u) {
      const Reg v = b.fld(i, 4 * u, 0);
      b.append(make_binary(Opcode::FMUL, acc, acc, v));
    }
    b.iaddi_to(i, i, 8);
    b.bri(Opcode::BLT, i, 4 * n, loop);
    b.set_block(x);
    b.ret();
    fn.add_live_out(acc);
    fn.renumber();
    return fn;
  };
  Function off = make(8);
  EXPECT_EQ(accumulator_expansion(off, {false}), 0);
  Function on1 = make(8);
  EXPECT_EQ(accumulator_expansion(on1, {true}), 1);
  const Function plain = make(8);
  const RunOutcome a = run_seeded(plain, infinite_issue());
  const RunOutcome b = run_seeded(on1, infinite_issue());
  EXPECT_EQ(compare_observable(plain, a, b), "");
}

// ---------------- Induction variable expansion -------------------------------

TEST(IndExpand, Figure5dReaches2CyclesPerIteration) {
  auto make = [](std::int64_t n) {
    Function fn = ilp::testing::make_fig5_loop(n);
    unroll_loops(fn, {3, 160});
    induction_expansion(fn);
    rename_registers(fn);
    schedule_function(fn, infinite_issue());
    return fn;
  };
  const double cpi = cycles_per_iteration(make, 51, 150, infinite_issue());
  EXPECT_DOUBLE_EQ(cpi, 2.0);  // paper Figure 5d: 6 cycles / 3 iterations
}

TEST(IndExpand, WithoutItUnrolledLoopIsSlower) {
  auto make = [](std::int64_t n) {
    Function fn = ilp::testing::make_fig5_loop(n);
    unroll_loops(fn, {3, 160});
    rename_registers(fn);
    schedule_function(fn, infinite_issue());
    return fn;
  };
  const double cpi = cycles_per_iteration(make, 51, 150, infinite_issue());
  EXPECT_NEAR(cpi, 8.0 / 3.0, 1e-9);  // paper Figure 5c: 8 cycles / 3 iters
}

TEST(IndExpand, PreservesBehaviourAcrossTripCounts) {
  for (std::int64_t n : {1, 2, 3, 4, 5, 11, 24}) {
    Function plain = ilp::testing::make_fig5_loop(n);
    Function exp = ilp::testing::make_fig5_loop(n);
    unroll_loops(exp, {3, 160});
    induction_expansion(exp);
    rename_registers(exp);
    const RunOutcome a = run_seeded(plain, infinite_issue());
    const RunOutcome b = run_seeded(exp, infinite_issue());
    ASSERT_EQ(compare_observable(plain, a, b), "") << "n=" << n;
  }
}

TEST(IndExpand, EightTimesUnrollMatchesPaperScaling) {
  // Paper: the same loop unrolled 8 times runs at 1.6 cycles/iteration after
  // renaming but 0.8 after induction variable expansion... for Figure 1's
  // simpler loop shape.  We assert the ordering and a large gain.
  auto lev2 = [](std::int64_t n) {
    Function fn = ilp::testing::make_fig5_loop(n);
    unroll_loops(fn, {8, 400});
    rename_registers(fn);
    schedule_function(fn, infinite_issue());
    return fn;
  };
  auto lev4 = [](std::int64_t n) {
    Function fn = ilp::testing::make_fig5_loop(n);
    unroll_loops(fn, {8, 400});
    induction_expansion(fn);
    rename_registers(fn);
    schedule_function(fn, infinite_issue());
    return fn;
  };
  const double c2 = cycles_per_iteration(lev2, 80, 400, infinite_issue());
  const double c4 = cycles_per_iteration(lev4, 80, 400, infinite_issue());
  EXPECT_LT(c4, c2 * 0.75);
}

TEST(IndExpand, ExitValueOfIvIsRecovered) {
  // The IV is live after the loop; expansion must recover it (V = p0).
  Function fn("ivout");
  fn.add_array({"A", 0, 4, 64, true});
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId x = b.create_block("exit");
  b.set_block(e);
  const Reg j = b.ldi(0);
  const Reg i = b.ldi(0);
  b.jump(loop);
  b.set_block(loop);
  // Two updates of j per iteration; j's final value observed after the loop.
  const Reg v = b.fld(j, 0, 0);
  b.fst(j, 128, v, 0);
  b.iaddi_to(j, j, 4);
  const Reg w = b.fld(j, 0, 0);
  b.fst(j, 128, w, 0);
  b.iaddi_to(j, j, 4);
  b.iaddi_to(i, i, 1);
  b.bri(Opcode::BLT, i, 6, loop);
  b.set_block(x);
  b.ret();
  fn.add_live_out(j);
  fn.renumber();

  Function plain = fn;
  EXPECT_GE(induction_expansion(fn), 1);
  EXPECT_TRUE(verify(fn).ok) << verify(fn).message;
  const RunOutcome a = run_seeded(plain, infinite_issue());
  const RunOutcome c = run_seeded(fn, infinite_issue());
  EXPECT_EQ(compare_observable(plain, a, c), "");
}

// ---------------- Search variable expansion -----------------------------------

Function make_maxval(std::int64_t n) {
  Function fn("maxval");
  fn.add_array({"A", 0, 4, n, true});
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId x = b.create_block("exit");
  b.set_block(e);
  const Reg i = b.ldi(0);
  const Reg lim = b.ldi(4 * n);
  const Reg mx = b.fldi(-1e30);
  b.jump(loop);
  b.set_block(loop);
  const Reg v = b.fld(i, 0, 0);
  b.append(make_binary(Opcode::FMAX, mx, mx, v));
  b.iaddi_to(i, i, 4);
  b.br(Opcode::BLT, i, lim, loop);
  b.set_block(x);
  b.ret();
  fn.add_live_out(mx);
  fn.renumber();
  return fn;
}

TEST(SearchExpand, ExpandsUnrolledMaxLoop) {
  Function fn = make_maxval(32);
  unroll_loops(fn, {4, 160});
  EXPECT_EQ(search_expansion(fn), 1);
  EXPECT_TRUE(verify(fn).ok) << verify(fn).message;
}

TEST(SearchExpand, PreservesMaximum) {
  for (std::int64_t n : {1, 2, 3, 5, 13, 32}) {
    Function plain = make_maxval(n);
    Function exp = make_maxval(n);
    unroll_loops(exp, {4, 160});
    search_expansion(exp);
    rename_registers(exp);
    const RunOutcome a = run_seeded(plain, infinite_issue());
    const RunOutcome b = run_seeded(exp, infinite_issue());
    ASSERT_EQ(compare_observable(plain, a, b), "") << "n=" << n;
  }
}

TEST(SearchExpand, BreaksSearchRecurrence) {
  auto lev2 = [](std::int64_t n) {
    Function fn = make_maxval(n);
    unroll_loops(fn, {4, 160});
    rename_registers(fn);
    schedule_function(fn, infinite_issue());
    return fn;
  };
  auto lev4 = [](std::int64_t n) {
    Function fn = make_maxval(n);
    unroll_loops(fn, {4, 160});
    search_expansion(fn);
    induction_expansion(fn);
    rename_registers(fn);
    schedule_function(fn, infinite_issue());
    return fn;
  };
  const double c2 = cycles_per_iteration(lev2, 80, 400, infinite_issue());
  const double c4 = cycles_per_iteration(lev4, 80, 400, infinite_issue());
  EXPECT_LT(c4, c2);
}

TEST(SearchExpand, MinLoopAlsoExpands) {
  auto make_minval = [](std::int64_t n, bool expand) {
    Function fn("minval");
    fn.add_array({"A", 0, 4, n, true});
    IRBuilder b(fn);
    const BlockId e = b.create_block("entry");
    const BlockId loop = b.create_block("loop");
    const BlockId x = b.create_block("exit");
    b.set_block(e);
    const Reg i = b.ldi(0);
    const Reg mn = b.fldi(1e30);
    b.jump(loop);
    b.set_block(loop);
    for (int u = 0; u < 2; ++u) {
      const Reg v = b.fld(i, 4 * u, 0);
      b.append(make_binary(Opcode::FMIN, mn, mn, v));
    }
    b.iaddi_to(i, i, 8);
    b.bri(Opcode::BLT, i, 4 * n, loop);
    b.set_block(x);
    b.ret();
    fn.add_live_out(mn);
    fn.renumber();
    if (expand) EXPECT_EQ(search_expansion(fn), 1);
    return fn;
  };
  const Function plain = make_minval(16, false);
  const Function exp = make_minval(16, true);
  const RunOutcome a = run_seeded(plain, infinite_issue());
  const RunOutcome b = run_seeded(exp, infinite_issue());
  EXPECT_EQ(compare_observable(plain, a, b), "");
}

TEST(SearchExpand, RejectsMixedMaxMin) {
  Function fn("mixed");
  fn.add_array({"A", 0, 4, 16, true});
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId x = b.create_block("exit");
  b.set_block(e);
  const Reg i = b.ldi(0);
  const Reg m = b.fldi(0.0);
  b.jump(loop);
  b.set_block(loop);
  const Reg v = b.fld(i, 0, 0);
  b.append(make_binary(Opcode::FMAX, m, m, v));
  const Reg w = b.fld(i, 4, 0);
  b.append(make_binary(Opcode::FMIN, m, m, w));
  b.iaddi_to(i, i, 8);
  b.bri(Opcode::BLT, i, 64, loop);
  b.set_block(x);
  b.ret();
  fn.add_live_out(m);
  fn.renumber();
  EXPECT_EQ(search_expansion(fn), 0);
}

}  // namespace
}  // namespace ilp
