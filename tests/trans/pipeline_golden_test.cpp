// Golden pin of the whole transformation pipeline's output, byte for byte.
//
// The scheduler has its own differential oracle (sched/reference.hpp); this
// file is the same contract for everything upstream of the scheduler: every
// workload x Lev0-4 x issue width is compiled through the full pipeline and
// the printed IR is hashed against a checked-in golden file.  The goldens
// were captured from the pre-arena pass implementations (unordered_map /
// returned-vector scratch, after normalizing candidate iteration to program
// order), so they prove the arena-backed dense structures changed *nothing*
// about the emitted code — same folds, same fresh-register numbering, same
// schedule.
//
// Regenerate (only legitimate after an intentional codegen change):
//   ILP_REGEN_PIPELINE_GOLDEN=1 ./build/tests/trans_test \
//       --gtest_filter='PipelineGolden.*'
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/compile.hpp"
#include "harness/experiment.hpp"
#include "ir/printer.hpp"
#include "machine/machine.hpp"
#include "support/compile_ctx.hpp"
#include "trans/level.hpp"
#include "workloads/suite.hpp"

namespace ilp {
namespace {

#ifndef ILP_GOLDEN_DIR
#error "ILP_GOLDEN_DIR must point at tests/trans/golden"
#endif

constexpr const char* kGoldenPath = ILP_GOLDEN_DIR "/pipeline_ir.txt";

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

struct Cell {
  std::string workload;
  std::string level;
  int width = 0;
  std::string hash;  // 16 hex digits, or "error" for cells that fail to compile
  std::size_t insts = 0;
};

std::string cell_id(const Cell& c) {
  std::ostringstream os;
  os << c.workload << ' ' << c.level << ' ' << "issue-" << c.width;
  return os.str();
}

std::vector<Cell> compile_grid() {
  std::vector<Cell> cells;
  for (const Workload& w : workload_suite()) {
    for (OptLevel level : kLevels) {
      for (int width : kIssueWidths) {
        const MachineModel m = MachineModel::issue(width);
        Cell c;
        c.workload = w.name;
        c.level = level_name(level);
        c.width = width;
        auto compiled = try_compile_workload(w, level, m);
        if (!compiled) {
          c.hash = "error";
        } else {
          const std::string ir = to_string(compiled->fn);
          std::ostringstream os;
          os << std::hex << fnv1a(ir);
          c.hash = os.str();
          for (const Block& b : compiled->fn.blocks()) c.insts += b.insts.size();
        }
        cells.push_back(std::move(c));
      }
    }
  }
  return cells;
}

TEST(PipelineGolden, PrintedIrMatchesPreArenaGoldens) {
  const std::vector<Cell> cells = compile_grid();

  if (std::getenv("ILP_REGEN_PIPELINE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << "# workload level width fnv1a(printed IR) total-insts\n";
    for (const Cell& c : cells)
      out << c.workload << ' ' << c.level << ' ' << c.width << ' ' << c.hash
          << ' ' << c.insts << '\n';
    GTEST_SKIP() << "regenerated " << cells.size() << " goldens at " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in.good()) << "missing golden file " << kGoldenPath
                         << " — run with ILP_REGEN_PIPELINE_GOLDEN=1 to create it";
  std::vector<Cell> want;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    Cell c;
    ASSERT_TRUE(ls >> c.workload >> c.level >> c.width >> c.hash >> c.insts)
        << "malformed golden line: " << line;
    want.push_back(std::move(c));
  }

  ASSERT_EQ(cells.size(), want.size())
      << "study grid changed shape; regenerate the goldens intentionally";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_EQ(cell_id(cells[i]), cell_id(want[i])) << "grid order changed at row " << i;
    EXPECT_EQ(cells[i].hash, want[i].hash)
        << cell_id(cells[i]) << ": pipeline output diverged from the pre-arena "
        << "golden (" << cells[i].insts << " insts now vs " << want[i].insts
        << " in the golden)";
  }
}

// Two compiles of the same cell inside one process must be bit-identical:
// the pipeline may not smuggle state between compiles (this held before
// CompileContext existed and must keep holding with pooled scratch).
TEST(PipelineGolden, RepeatedCompilesAreIdentical) {
  const MachineModel m = MachineModel::issue(4);
  for (const Workload& w : workload_suite()) {
    auto first = try_compile_workload(w, OptLevel::Lev4, m);
    auto second = try_compile_workload(w, OptLevel::Lev4, m);
    ASSERT_EQ(static_cast<bool>(first), static_cast<bool>(second)) << w.name;
    if (!first) continue;
    EXPECT_EQ(to_string(first->fn), to_string(second->fn)) << w.name;
  }
}

// A warm CompileContext must be invisible in the output: compiling two
// workloads sequentially on one context (second compile reuses the first's
// arena chunks, dense-map capacity, and pooled analysis rows) has to match
// compiling each on a fresh context exactly.
TEST(PipelineGolden, WarmContextMatchesFreshContext) {
  const MachineModel m = MachineModel::issue(8);
  const TransformSet set = TransformSet::for_level(OptLevel::Lev4);
  const auto& suite = workload_suite();

  auto front_half = [&](const Workload& w) {
    DiagnosticEngine diags;
    auto r = dsl::compile(w.source, diags);
    EXPECT_TRUE(r.has_value()) << w.name << ": " << diags.to_string();
    return r;
  };

  CompileContext warm;
  for (std::size_t i = 0; i + 1 < suite.size(); i += 2) {
    auto a1 = front_half(suite[i]);
    auto a2 = front_half(suite[i + 1]);
    auto b1 = front_half(suite[i]);
    auto b2 = front_half(suite[i + 1]);
    if (!a1 || !a2 || !b1 || !b2) continue;

    // Warm path: both compiles share one context, back to back.
    try {
      compile_with_transforms(a1->fn, set, m, {}, nullptr, warm);
      compile_with_transforms(a2->fn, set, m, {}, nullptr, warm);
    } catch (const std::exception&) {
      // Workloads that legitimately fail at Lev4 fail identically on any
      // context; the grid golden already covers them.
      continue;
    }
    // Cold path: a fresh context per compile.
    CompileContext fresh1;
    CompileContext fresh2;
    compile_with_transforms(b1->fn, set, m, {}, nullptr, fresh1);
    compile_with_transforms(b2->fn, set, m, {}, nullptr, fresh2);

    EXPECT_EQ(to_string(a1->fn), to_string(b1->fn)) << suite[i].name;
    EXPECT_EQ(to_string(a2->fn), to_string(b2->fn)) << suite[i + 1].name;
  }
  EXPECT_GE(warm.compiles(), 2u);
  EXPECT_GT(warm.arena_high_water_bytes(), 0u)
      << "pipeline never touched the context arena — pooling is dead code";
}

}  // namespace
}  // namespace ilp
