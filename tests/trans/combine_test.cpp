#include "trans/combine.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace ilp {
namespace {

using ilp::testing::infinite_issue;

TEST(Combine, AddAddChainCollapses) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_int_reg();
  const Reg a = b.iaddi(x, 4);
  const Reg c = b.iaddi(a, 4);   // -> c = x + 8
  const Reg d = b.isubi(c, 3);   // -> d = x + 5
  b.ret();
  fn.add_live_out(a);
  fn.add_live_out(c);
  fn.add_live_out(d);
  fn.renumber();
  EXPECT_GE(operation_combining(fn), 2);
  const auto& insts = fn.blocks().front().insts;
  EXPECT_EQ(insts[1].src1, x);
  EXPECT_EQ(insts[1].ival, 8);
  EXPECT_EQ(insts[2].src1, x);
  EXPECT_EQ(insts[2].op, Opcode::IADD);
  EXPECT_EQ(insts[2].ival, 5);
}

TEST(Combine, LoadOffsetAbsorbsIncrement) {
  // Figure 6's first pair: r1 = r1 + 4; r2 = MEM(r1 + 8)  =>
  // load moves above the add and reads MEM(r1 + 12).
  Function fn;
  fn.add_array({"A", 0, 4, 16, true});
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg r1 = fn.new_int_reg();
  b.iaddi_to(r1, r1, 4);
  const Reg v = b.fld(r1, 8, 0);
  b.ret();
  fn.add_live_out(v);
  fn.add_live_out(r1);
  fn.renumber();
  EXPECT_EQ(operation_combining(fn), 1);
  const auto& insts = fn.blocks().front().insts;
  // Exchange happened: load first with offset 12, then the add.
  EXPECT_EQ(insts[0].op, Opcode::FLD);
  EXPECT_EQ(insts[0].ival, 12);
  EXPECT_EQ(insts[1].op, Opcode::IADD);
}

TEST(Combine, FpCompareAbsorbsSubtract) {
  // Figure 6's second pair: r3 = r2 - 3.2; blt (r3 10.0) => blt (r2 13.2).
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId t = b.create_block("t");
  b.set_block(e);
  const Reg r2 = fn.new_fp_reg();
  const Reg r3 = b.fsubi(r2, 3.2);
  b.brf(Opcode::FBLT, r3, 10.0, t);
  b.ret();
  b.set_block(t);
  b.ret();
  fn.add_live_out(r3);
  fn.renumber();
  EXPECT_EQ(operation_combining(fn), 1);
  const Instruction& br = fn.block(e).insts[1];
  EXPECT_EQ(br.src1, r2);
  EXPECT_DOUBLE_EQ(br.fval, 13.2);
}

TEST(Combine, Figure6LoopDropsTo5Cycles) {
  // The full Figure 6 example: 7 cycles/iteration before combining, 5 after
  // (the paper's cycle label; execution-driven steady state goes from 7 to 3
  // because the branch resolves at cycle 2 — we assert the ratio the paper
  // cares about: combining strictly improves the loop).
  auto measure = [](bool combine) {
    auto run_n = [&](std::int64_t n) {
      Function fn = ilp::testing::make_fig6_loop(n);
      if (combine) operation_combining(fn);
      schedule_function(fn, infinite_issue());
      Memory mem;
      ilp::testing::fill_fig6_memory(fn, mem, n);
      Simulator sim(infinite_issue());
      const SimResult r = sim.run(fn, mem);
      EXPECT_TRUE(r.ok) << r.error;
      return r.cycles;
    };
    return static_cast<double>(run_n(150) - run_n(50)) / 100.0;
  };
  const double before = measure(false);
  const double after = measure(true);
  EXPECT_DOUBLE_EQ(before, 7.0);
  EXPECT_LE(after, 5.0);
  EXPECT_LT(after, before);
}

TEST(Combine, MulMulChain) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_int_reg();
  const Reg a = b.imuli(x, 3);
  const Reg c = b.imuli(a, 5);  // -> x * 15
  b.ret();
  fn.add_live_out(a);
  fn.add_live_out(c);
  fn.renumber();
  EXPECT_EQ(operation_combining(fn), 1);
  EXPECT_EQ(fn.blocks().front().insts[1].ival, 15);
  EXPECT_EQ(fn.blocks().front().insts[1].src1, x);
}

TEST(Combine, FpMulDivPairs) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_fp_reg();
  const Reg a = b.fmuli(x, 8.0);
  const Reg c = b.fdivi(a, 2.0);  // -> x * 4.0
  b.ret();
  fn.add_live_out(a);
  fn.add_live_out(c);
  fn.renumber();
  EXPECT_EQ(operation_combining(fn), 1);
  EXPECT_EQ(fn.blocks().front().insts[1].op, Opcode::FMUL);
  EXPECT_DOUBLE_EQ(fn.blocks().front().insts[1].fval, 4.0);
}

TEST(Combine, DoesNotCombineAcrossClobber) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_int_reg();
  const Reg a = b.iaddi(x, 4);
  b.ldi_to(x, 99);              // x redefined between producer and consumer
  const Reg c = b.iaddi(a, 4);  // must NOT become x + 8
  b.ret();
  fn.add_live_out(c);
  fn.add_live_out(x);
  fn.renumber();
  EXPECT_EQ(operation_combining(fn), 0);
}

TEST(Combine, MixedPrecedenceNotCombined) {
  // add then mul cannot combine (different precedence).
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = fn.new_int_reg();
  const Reg a = b.iaddi(x, 4);
  const Reg c = b.imuli(a, 2);
  b.ret();
  fn.add_live_out(c);
  fn.renumber();
  EXPECT_EQ(operation_combining(fn), 0);
}

TEST(Combine, UnrolledCounterChainBecomesParallel) {
  // After unrolling+renaming, the counter chain r12=r11+4; r13=r12+4;
  // r11=r13+4 combines into independent adds off r11.
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  b.set_block(e);
  const Reg r11 = fn.new_int_reg();
  const Reg r12 = b.iaddi(r11, 4);
  const Reg r13 = b.iaddi(r12, 4);
  const Reg r14 = b.iaddi(r13, 4);
  b.ret();
  fn.add_live_out(r12);
  fn.add_live_out(r13);
  fn.add_live_out(r14);
  fn.renumber();
  EXPECT_EQ(operation_combining(fn), 2);
  const auto& insts = fn.blocks().front().insts;
  EXPECT_EQ(insts[1].src1, r11);
  EXPECT_EQ(insts[1].ival, 8);
  EXPECT_EQ(insts[2].src1, r11);
  EXPECT_EQ(insts[2].ival, 12);
}

TEST(Combine, BehaviourPreservedOnRandomizedConstants) {
  for (int seed = 0; seed < 10; ++seed) {
    Function fn;
    IRBuilder b(fn);
    b.set_block(b.create_block("entry"));
    const Reg x = fn.new_int_reg();
    Reg cur = x;
    std::uint64_t s = static_cast<std::uint64_t>(seed) * 2654435761u + 17;
    for (int i = 0; i < 6; ++i) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      const std::int64_t k = static_cast<std::int64_t>(s % 37) - 18;
      cur = (s >> 40) % 2 ? b.iaddi(cur, k) : b.isubi(cur, k);
      fn.add_live_out(cur);
    }
    b.ret();
    fn.renumber();
    Function plain = fn;
    operation_combining(fn);
    EXPECT_TRUE(verify(fn).ok) << verify(fn).message;
    SimOptions o1;
    o1.init_ints = {1234};
    SimOptions o2 = o1;
    Memory m1;
    Memory m2;
    const SimResult r1 = Simulator(infinite_issue(), std::move(o1)).run(plain, m1);
    const SimResult r2 = Simulator(infinite_issue(), std::move(o2)).run(fn, m2);
    ASSERT_TRUE(r1.ok && r2.ok);
    for (const Reg& r : plain.live_out())
      EXPECT_EQ(r1.regs.get_int(r.id), r2.regs.get_int(r.id)) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace ilp
