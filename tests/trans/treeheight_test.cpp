#include "trans/treeheight.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/fixtures.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "opt/dce.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace ilp {
namespace {

using ilp::testing::infinite_issue;

// Cycle at which the function's first live-out fp register becomes ready,
// relative to the first arithmetic issue (constants excluded).
std::uint64_t result_ready_cycle(Function fn) {
  fn.renumber();
  std::vector<IssueEvent> trace;
  SimOptions opts;
  opts.trace = &trace;
  Memory mem;
  Simulator sim(infinite_issue(), std::move(opts));
  const SimResult r = sim.run(fn, mem);
  EXPECT_TRUE(r.ok) << r.error;
  // Locate the instruction writing the live-out register last, and the first
  // non-constant arithmetic issue.
  const Reg out = fn.live_out().front();
  std::unordered_map<std::uint32_t, std::uint64_t> cycle_of;
  for (const auto& ev : trace) cycle_of.emplace(ev.uid, ev.cycle);
  std::uint64_t ready = 0;
  std::uint64_t first_arith = UINT64_MAX;
  const MachineModel m = infinite_issue();
  for (const auto& b : fn.blocks()) {
    for (const auto& in : b.insts) {
      const auto it = cycle_of.find(in.uid);
      if (it == cycle_of.end()) continue;
      const std::uint64_t cyc = it->second;
      if (op_is_binary_arith(in.op)) first_arith = std::min(first_arith, cyc);
      if (in.has_dest() && in.dst == out)
        ready = std::max(ready, cyc + static_cast<std::uint64_t>(m.latency(in.op)));
    }
  }
  return ready - first_arith;
}

TEST(TreeHeight, Figure7DropsFrom22To13Cycles) {
  Function plain = ilp::testing::make_fig7_expr();
  EXPECT_EQ(result_ready_cycle(plain), 22u);

  Function reduced = ilp::testing::make_fig7_expr();
  EXPECT_EQ(tree_height_reduction(reduced), 1);
  EXPECT_TRUE(verify(reduced).ok) << verify(reduced).message;
  dead_code_elimination(reduced);
  schedule_function(reduced, infinite_issue());
  EXPECT_EQ(result_ready_cycle(reduced), 13u) << to_string(reduced);
}

TEST(TreeHeight, Figure7ValuePreserved) {
  Function plain = ilp::testing::make_fig7_expr();
  Function reduced = ilp::testing::make_fig7_expr();
  tree_height_reduction(reduced);
  dead_code_elimination(reduced);
  const RunOutcome a = run_seeded(plain, infinite_issue());
  const RunOutcome b = run_seeded(reduced, infinite_issue());
  EXPECT_EQ(compare_observable(plain, a, b, 1e-12), "");
}

TEST(TreeHeight, LongAddChainBalances) {
  // sum of 8 leaves: chain height 7*3=21 cycles; balanced: 3*3=9.
  auto make = [](bool reduce) {
    Function fn;
    IRBuilder b(fn);
    b.set_block(b.create_block("entry"));
    std::vector<Reg> leaves;
    for (int i = 0; i < 8; ++i) leaves.push_back(b.fldi(1.0 + i));
    Reg acc = leaves[0];
    for (int i = 1; i < 8; ++i) acc = b.fadd(acc, leaves[static_cast<std::size_t>(i)]);
    b.ret();
    fn.add_live_out(acc);
    fn.renumber();
    if (reduce) {
      EXPECT_GE(tree_height_reduction(fn), 1);
      dead_code_elimination(fn);
      schedule_function(fn, ilp::testing::infinite_issue());
    }
    return fn;
  };
  EXPECT_EQ(result_ready_cycle(make(false)), 21u);
  EXPECT_EQ(result_ready_cycle(make(true)), 9u);
  // Value identical (integer-valued doubles: exact under reassociation).
  const RunOutcome a = run_seeded(make(false), infinite_issue());
  const RunOutcome b = run_seeded(make(true), infinite_issue());
  EXPECT_EQ(compare_observable(make(false), a, b, 1e-12), "");
}

TEST(TreeHeight, SubtractionSignsPreserved) {
  // a - b + c - d - e  with distinctive values.
  auto make = [](bool reduce) {
    Function fn;
    IRBuilder b(fn);
    b.set_block(b.create_block("entry"));
    const Reg a = b.fldi(100.0);
    const Reg b2 = b.fldi(7.0);
    const Reg c = b.fldi(31.0);
    const Reg d = b.fldi(2.0);
    const Reg e = b.fldi(1.0);
    Reg t = b.fsub(a, b2);
    t = b.fadd(t, c);
    t = b.fsub(t, d);
    t = b.fsub(t, e);
    b.ret();
    fn.add_live_out(t);
    fn.renumber();
    if (reduce) {
      tree_height_reduction(fn);
      dead_code_elimination(fn);
    }
    return fn;
  };
  Function r = make(true);
  Memory mem;
  Simulator sim(infinite_issue());
  const SimResult res = sim.run(r, mem);
  ASSERT_TRUE(res.ok);
  EXPECT_DOUBLE_EQ(res.regs.get_fp(r.live_out()[0].id), 121.0);
}

TEST(TreeHeight, IntegerChainsBalanceExactly) {
  auto make = [](bool reduce) {
    Function fn;
    IRBuilder b(fn);
    b.set_block(b.create_block("entry"));
    const Reg x = fn.new_int_reg();
    Reg t = b.iaddi(x, 3);
    t = b.iadd(t, x);
    t = b.isubi(t, 7);
    t = b.iadd(t, x);
    b.ret();
    fn.add_live_out(t);
    fn.renumber();
    if (reduce) {
      tree_height_reduction(fn);
      dead_code_elimination(fn);
    }
    return fn;
  };
  for (std::int64_t x : {0, 5, -13, 1 << 20}) {
    SimOptions o1, o2;
    o1.init_ints = {x};
    o2.init_ints = {x};
    Memory m1, m2;
    Function f1 = make(false);
    Function f2 = make(true);
    const SimResult r1 = Simulator(infinite_issue(), std::move(o1)).run(f1, m1);
    const SimResult r2 = Simulator(infinite_issue(), std::move(o2)).run(f2, m2);
    ASSERT_TRUE(r1.ok && r2.ok);
    EXPECT_EQ(r1.regs.get_int(f1.live_out()[0].id), r2.regs.get_int(f2.live_out()[0].id))
        << "x=" << x;
  }
}

TEST(TreeHeight, MultiUseIntermediateBecomesLeafBoundary) {
  // t = a + b is used twice: the second tree must treat t as a leaf and the
  // rebuild must not delete or duplicate it incorrectly.
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg a = b.fldi(1.0);
  const Reg c = b.fldi(2.0);
  const Reg t = b.fadd(a, c);
  Reg u = b.fadd(t, a);
  u = b.fadd(u, c);
  u = b.fadd(u, t);  // t used twice overall
  b.ret();
  fn.add_live_out(u);
  fn.add_live_out(t);
  fn.renumber();
  Function plain = fn;
  tree_height_reduction(fn);
  EXPECT_TRUE(verify(fn).ok) << verify(fn).message;
  dead_code_elimination(fn);
  const RunOutcome x = run_seeded(plain, infinite_issue());
  const RunOutcome y = run_seeded(fn, infinite_issue());
  EXPECT_EQ(compare_observable(plain, x, y, 1e-12), "");
}

TEST(TreeHeight, DoesNotFireBelowThreeLeaves) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg a = b.fldi(1.0);
  const Reg c = b.fldi(2.0);
  const Reg t = b.fadd(a, c);
  b.ret();
  fn.add_live_out(t);
  fn.renumber();
  EXPECT_EQ(tree_height_reduction(fn), 0);
}

TEST(TreeHeight, LeafClobberBetweenChainAndRootBlocksRebuild) {
  // The leaf register is redefined mid-chain; rebuilding at the root would
  // read the wrong value, so the pass must skip the tree.
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg a = fn.new_fp_reg();
  const Reg c = fn.new_fp_reg();
  const Reg d = fn.new_fp_reg();
  Reg t = b.fadd(a, c);
  b.fldi_to(a, 99.0);  // clobber a
  t = b.fadd(t, d);
  t = b.fadd(t, a);    // reads the NEW a; absorbing old reads would break
  b.ret();
  fn.add_live_out(t);
  fn.renumber();
  Function plain = fn;
  tree_height_reduction(fn);
  EXPECT_TRUE(verify(fn).ok);
  SimOptions o1, o2;
  o1.init_fps = {1.0, 2.0, 3.0};
  o2.init_fps = {1.0, 2.0, 3.0};
  Memory m1, m2;
  const SimResult r1 = Simulator(infinite_issue(), std::move(o1)).run(plain, m1);
  const SimResult r2 = Simulator(infinite_issue(), std::move(o2)).run(fn, m2);
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_DOUBLE_EQ(r1.regs.get_fp(plain.live_out()[0].id),
                   r2.regs.get_fp(fn.live_out()[0].id));
}

TEST(TreeHeight, LatencyWeightedModeDelaysSlowLeaves) {
  // d = x/y (ready late) feeds a sum of five terms.  Equal-latency balancing
  // may pair d early; the latency-weighted mode (paper future work) keeps it
  // for the final add, cutting the expression's completion time.
  auto make = [](bool weighted) {
    Function fn;
    IRBuilder b(fn);
    b.set_block(b.create_block("entry"));
    const Reg x = b.fldi(40.0);
    const Reg y = b.fldi(4.0);
    const Reg d = b.fdiv(x, y);
    const Reg a = b.fldi(1.0);
    const Reg c = b.fldi(2.0);
    const Reg e = b.fldi(3.0);
    const Reg f = b.fldi(4.5);
    Reg t = b.fadd(d, a);
    t = b.fadd(t, c);
    t = b.fadd(t, e);
    t = b.fadd(t, f);
    b.ret();
    fn.add_live_out(t);
    fn.renumber();
    TreeHeightOptions opts;
    opts.latency_weighted = weighted;
    opts.machine = ilp::testing::infinite_issue();
    EXPECT_GE(tree_height_reduction(fn, opts), 1);
    dead_code_elimination(fn);
    schedule_function(fn, ilp::testing::infinite_issue());
    return fn;
  };
  const std::uint64_t plain_cycles = result_ready_cycle(make(false));
  const std::uint64_t weighted_cycles = result_ready_cycle(make(true));
  EXPECT_LE(weighted_cycles, plain_cycles);
  // Both modes compute the same value.
  Function w = make(true);
  Memory mem;
  const SimResult r = Simulator(infinite_issue()).run(w, mem);
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.regs.get_fp(w.live_out()[0].id), 40.0 / 4.0 + 1.0 + 2.0 + 3.0 + 4.5);
}

TEST(TreeHeight, LatencyWeightedPreservesRandomizedSums) {
  // Weighted balancing over mixed add/sub chains with in-block mul/div
  // leaves must stay value-correct.
  for (int seed = 1; seed <= 8; ++seed) {
    Function fn;
    IRBuilder b(fn);
    b.set_block(b.create_block("entry"));
    std::uint64_t s = static_cast<std::uint64_t>(seed) * 0x9e3779b97f4a7c15ull;
    auto rnd = [&]() {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      return (s >> 33) % 7;
    };
    std::vector<Reg> leaves;
    for (int i = 0; i < 6; ++i) {
      const Reg k = b.fldi(1.0 + static_cast<double>(rnd()));
      if (rnd() < 2) {
        const Reg k2 = b.fldi(2.0 + static_cast<double>(rnd()));
        leaves.push_back(rnd() < 3 ? b.fmul(k, k2) : b.fdiv(k, k2));
      } else {
        leaves.push_back(k);
      }
    }
    Reg t = leaves[0];
    for (std::size_t i = 1; i < leaves.size(); ++i)
      t = rnd() < 2 ? b.fsub(t, leaves[i]) : b.fadd(t, leaves[i]);
    b.ret();
    fn.add_live_out(t);
    fn.renumber();
    Function plain = fn;
    TreeHeightOptions opts;
    opts.latency_weighted = true;
    opts.machine = infinite_issue();
    tree_height_reduction(fn, opts);
    dead_code_elimination(fn);
    const RunOutcome a = run_seeded(plain, infinite_issue());
    const RunOutcome c = run_seeded(fn, infinite_issue());
    ASSERT_EQ(compare_observable(plain, a, c, 1e-12), "") << "seed=" << seed;
  }
}

TEST(TreeHeight, DivisionHeavyExpression) {
  // (a/b)/(c/d) style chains reassociate into mul/div combinations.
  auto make = [](bool reduce) {
    Function fn;
    IRBuilder b(fn);
    b.set_block(b.create_block("entry"));
    const Reg a = b.fldi(40.0);
    const Reg b2 = b.fldi(2.0);
    const Reg c = b.fldi(5.0);
    const Reg d = b.fldi(4.0);
    Reg t = b.fdiv(a, b2);
    t = b.fdiv(t, c);
    t = b.fmul(t, d);
    b.ret();
    fn.add_live_out(t);
    fn.renumber();
    if (reduce) {
      tree_height_reduction(fn);
      dead_code_elimination(fn);
    }
    return fn;
  };
  Function f = make(true);
  Memory mem;
  const SimResult r = Simulator(infinite_issue()).run(f, mem);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.regs.get_fp(f.live_out()[0].id), 16.0, 1e-12);
}

}  // namespace
}  // namespace ilp
