// Integration tests over the cumulative optimization levels (Conv..Lev4).
#include "trans/level.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "sim/simulator.hpp"

namespace ilp {
namespace {

using ilp::testing::infinite_issue;

const OptLevel kAllLevels[] = {OptLevel::Conv, OptLevel::Lev1, OptLevel::Lev2,
                               OptLevel::Lev3, OptLevel::Lev4};

TEST(Level, NamesAreStable) {
  EXPECT_STREQ(level_name(OptLevel::Conv), "Conv");
  EXPECT_STREQ(level_name(OptLevel::Lev4), "Lev4");
}

TEST(Level, ForLevelEnablesCumulativeSets) {
  const TransformSet conv = TransformSet::for_level(OptLevel::Conv);
  EXPECT_FALSE(conv.unroll);
  const TransformSet l2 = TransformSet::for_level(OptLevel::Lev2);
  EXPECT_TRUE(l2.unroll);
  EXPECT_TRUE(l2.rename);
  EXPECT_FALSE(l2.combine);
  EXPECT_FALSE(l2.acc_expand);
  const TransformSet l4 = TransformSet::for_level(OptLevel::Lev4);
  EXPECT_TRUE(l4.unroll && l4.rename && l4.combine && l4.strength && l4.height &&
              l4.acc_expand && l4.ind_expand && l4.search_expand);
}

TEST(Level, EveryLevelPreservesFig1Behaviour) {
  for (OptLevel lvl : kAllLevels) {
    for (std::int64_t n : {1, 5, 30}) {
      Function plain = ilp::testing::make_fig1_loop(n);
      Function opt = ilp::testing::make_fig1_loop(n);
      compile_at_level(opt, lvl, infinite_issue());
      EXPECT_TRUE(verify(opt).ok) << verify(opt).message;
      const RunOutcome a = run_seeded(plain, infinite_issue());
      const RunOutcome b = run_seeded(opt, infinite_issue());
      ASSERT_EQ(compare_observable(plain, a, b), "")
          << level_name(lvl) << " n=" << n << "\n"
          << to_string(opt);
    }
  }
}

TEST(Level, EveryLevelPreservesFig3Behaviour) {
  for (OptLevel lvl : kAllLevels) {
    for (std::int64_t n : {1, 7, 24}) {
      Function plain = ilp::testing::make_fig3_loop(n);
      Function opt = ilp::testing::make_fig3_loop(n);
      compile_at_level(opt, lvl, infinite_issue());
      const RunOutcome a = run_seeded(plain, infinite_issue());
      const RunOutcome b = run_seeded(opt, infinite_issue());
      ASSERT_EQ(compare_observable(plain, a, b), "")
          << level_name(lvl) << " n=" << n;
    }
  }
}

TEST(Level, EveryLevelPreservesFig5Behaviour) {
  for (OptLevel lvl : kAllLevels) {
    for (std::int64_t n : {1, 4, 13}) {
      Function plain = ilp::testing::make_fig5_loop(n);
      Function opt = ilp::testing::make_fig5_loop(n);
      compile_at_level(opt, lvl, infinite_issue());
      const RunOutcome a = run_seeded(plain, infinite_issue());
      const RunOutcome b = run_seeded(opt, infinite_issue());
      ASSERT_EQ(compare_observable(plain, a, b), "")
          << level_name(lvl) << " n=" << n;
    }
  }
}

// Cycle counts should never get *worse* as levels increase, on loops these
// transformations target (large trip count, issue-8 machine).
TEST(Level, SpeedMonotonicOnFig1) {
  const MachineModel m8 = MachineModel::issue(8);
  std::uint64_t prev = UINT64_MAX;
  for (OptLevel lvl : kAllLevels) {
    Function fn = ilp::testing::make_fig1_loop(240);
    compile_at_level(fn, lvl, m8);
    const RunOutcome r = run_seeded(fn, m8);
    ASSERT_TRUE(r.result.ok) << r.result.error;
    EXPECT_LE(r.result.cycles, prev + prev / 8)  // small tolerance for noise
        << "level " << level_name(lvl);
    prev = r.result.cycles;
  }
}

TEST(Level, Lev4BeatsConvSubstantiallyOnDotProduct) {
  const MachineModel m8 = MachineModel::issue(8);
  Function conv = ilp::testing::make_fig3_loop(240);
  Function lev4 = ilp::testing::make_fig3_loop(240);
  compile_at_level(conv, OptLevel::Conv, m8);
  compile_at_level(lev4, OptLevel::Lev4, m8);
  const RunOutcome a = run_seeded(conv, m8);
  const RunOutcome b = run_seeded(lev4, m8);
  ASSERT_TRUE(a.result.ok && b.result.ok);
  // The accumulator recurrence serializes Conv at >= 6 cycles/iteration;
  // Lev4 overlaps everything: expect at least 3x.
  EXPECT_GT(static_cast<double>(a.result.cycles) / static_cast<double>(b.result.cycles),
            3.0);
}

TEST(Level, HigherIssueRateNeedsHigherLevels) {
  // The paper's central claim: more execution resources yield little benefit
  // without the ILP transformations.
  auto cycles_at = [&](OptLevel lvl, int width) {
    Function fn = ilp::testing::make_fig1_loop(240);
    const MachineModel m = MachineModel::issue(width);
    compile_at_level(fn, lvl, m);
    const RunOutcome r = run_seeded(fn, m);
    EXPECT_TRUE(r.result.ok);
    return r.result.cycles;
  };
  // Conv: widening 1 -> 8 gains little (bounded by the serial body).
  const double conv_gain = static_cast<double>(cycles_at(OptLevel::Conv, 1)) /
                           static_cast<double>(cycles_at(OptLevel::Conv, 8));
  // Lev2: widening pays off.
  const double lev2_gain = static_cast<double>(cycles_at(OptLevel::Lev2, 1)) /
                           static_cast<double>(cycles_at(OptLevel::Lev2, 8));
  EXPECT_LT(conv_gain, 2.0);
  EXPECT_GT(lev2_gain, 2.0);
  EXPECT_GT(lev2_gain, conv_gain * 1.5);
}

TEST(Level, UncountedSearchLoopSurvivesAllLevels) {
  for (OptLevel lvl : kAllLevels) {
    for (std::int64_t n : {1, 2, 7, 30}) {
      Function plain = ilp::testing::make_fig6_loop(n);
      Function opt = ilp::testing::make_fig6_loop(n);
      compile_at_level(opt, lvl, infinite_issue());
      EXPECT_TRUE(verify(opt).ok) << verify(opt).message;
      Memory m1;
      Memory m2;
      ilp::testing::fill_fig6_memory(plain, m1, n);
      ilp::testing::fill_fig6_memory(opt, m2, n);
      const SimResult r1 = Simulator(infinite_issue()).run(plain, m1);
      const SimResult r2 = Simulator(infinite_issue()).run(opt, m2);
      ASSERT_TRUE(r1.ok && r2.ok) << level_name(lvl) << " n=" << n << " " << r2.error;
      EXPECT_DOUBLE_EQ(r1.regs.get_fp(plain.live_out()[0].id),
                       r2.regs.get_fp(opt.live_out()[0].id))
          << level_name(lvl) << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace ilp
