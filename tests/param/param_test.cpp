// Parameterized property sweeps (gtest TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <tuple>

#include "common/fixtures.hpp"
#include "ir/builder.hpp"
#include "support/strings.hpp"
#include "frontend/compile.hpp"
#include "ir/verifier.hpp"
#include "sim/simulator.hpp"
#include "trans/level.hpp"
#include "trans/strengthred.hpp"
#include "trans/unroll.hpp"
#include "workloads/suite.hpp"

namespace ilp {
namespace {

using ilp::testing::infinite_issue;

// ---------------------------------------------------------------------------
// Unrolling: (factor, merge_counters, trip count) — semantics must hold for
// every residue class, including trips smaller than the factor.
// ---------------------------------------------------------------------------

class UnrollSweep
    : public ::testing::TestWithParam<std::tuple<int, bool, std::int64_t>> {};

TEST_P(UnrollSweep, PreservesFigure1Loop) {
  const auto [factor, merge, n] = GetParam();
  Function plain = ilp::testing::make_fig1_loop(n);
  Function unrolled = ilp::testing::make_fig1_loop(n);
  UnrollOptions opts;
  opts.max_factor = factor;
  opts.max_body_insts = 400;
  opts.merge_counter_updates = merge;
  unroll_loops(unrolled, opts);
  ASSERT_TRUE(verify(unrolled).ok) << verify(unrolled).message;
  const RunOutcome a = run_seeded(plain, infinite_issue());
  const RunOutcome b = run_seeded(unrolled, infinite_issue());
  EXPECT_EQ(compare_observable(plain, a, b), "");
}

INSTANTIATE_TEST_SUITE_P(
    FactorsMergesTrips, UnrollSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Bool(),
                       ::testing::Values<std::int64_t>(1, 2, 3, 4, 7, 8, 9, 16, 23)),
    [](const ::testing::TestParamInfo<UnrollSweep::ParamType>& info) {
      return "f" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "m" : "u") + "n" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Level x issue width on representative workloads: semantics preserved and
// cycles monotone in width.
// ---------------------------------------------------------------------------

class LevelWidthSweep
    : public ::testing::TestWithParam<std::tuple<const char*, OptLevel>> {};

TEST_P(LevelWidthSweep, SemanticsAndWidthMonotonicity) {
  const auto [name, level] = GetParam();
  const Workload* w = find_workload(name);
  ASSERT_NE(w, nullptr);

  DiagnosticEngine d0;
  auto base = dsl::compile(w->source, d0);
  ASSERT_TRUE(base.has_value());
  const RunOutcome want = run_seeded(base->fn, MachineModel::issue(8));
  ASSERT_TRUE(want.result.ok);

  std::uint64_t prev = UINT64_MAX;
  for (int width : {1, 2, 4, 8}) {
    DiagnosticEngine d1;
    auto r = dsl::compile(w->source, d1);
    const MachineModel m = MachineModel::issue(width);
    compile_at_level(r->fn, level, m);
    const RunOutcome got = run_seeded(r->fn, m);
    ASSERT_TRUE(got.result.ok) << name << " width=" << width;
    ASSERT_EQ(compare_observable(base->fn, want, got, 1e-6), "")
        << name << " width=" << width;
    EXPECT_LE(got.result.cycles, prev) << name << " width=" << width;
    prev = got.result.cycles;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsByLevel, LevelWidthSweep,
    ::testing::Combine(::testing::Values("dotprod", "maxval", "SDS-4", "CSS-1",
                                         "matrix300-1"),
                       ::testing::Values(OptLevel::Conv, OptLevel::Lev2, OptLevel::Lev4)),
    [](const ::testing::TestParamInfo<LevelWidthSweep::ParamType>& info) {
      std::string n = std::get<0>(info.param);
      for (char& c : n)
        if (c == '-') c = '_';
      return n + "_" + level_name(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Strength reduction: constant sweep as a parameterized property against the
// reference IDIV/IREM/IMUL semantics.
// ---------------------------------------------------------------------------

class StrengthSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(StrengthSweep, DivRemMulAgreeWithReference) {
  const std::int64_t c = GetParam();
  for (const Opcode op : {Opcode::IMUL, Opcode::IDIV, Opcode::IREM}) {
    for (std::int64_t x :
         {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{12345},
          std::int64_t{-999999}, INT64_MAX, INT64_MIN + 1}) {
      Function plain;
      {
        IRBuilder b(plain);
        b.set_block(b.create_block("entry"));
        const Reg xr = plain.new_int_reg();
        const Reg r = plain.new_int_reg();
        b.append(make_binary_imm(op, r, xr, c));
        b.ret();
        plain.add_live_out(r);
        plain.renumber();
      }
      Function reduced = plain;
      strength_reduction(reduced);
      ASSERT_TRUE(verify(reduced).ok);
      SimOptions o1, o2;
      o1.init_ints = {x};
      o2.init_ints = {x};
      Memory m1, m2;
      const SimResult r1 = Simulator(infinite_issue(), std::move(o1)).run(plain, m1);
      const SimResult r2 = Simulator(infinite_issue(), std::move(o2)).run(reduced, m2);
      ASSERT_TRUE(r1.ok && r2.ok);
      ASSERT_EQ(r1.regs.get_int(plain.live_out()[0].id),
                r2.regs.get_int(reduced.live_out()[0].id))
          << opcode_name(op) << " c=" << c << " x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Constants, StrengthSweep,
                         ::testing::Values<std::int64_t>(2, 3, 5, 6, 7, 8, 9, 10, 12, 15,
                                                         16, 24, 100, 255, 256, 1000,
                                                         4096, 1000003, -2, -3, -8, -10,
                                                         -100),
                         [](const ::testing::TestParamInfo<std::int64_t>& info) {
                           const std::int64_t v = info.param;
                           return (v < 0 ? "neg" : "c") + std::to_string(v < 0 ? -v : v);
                         });

// ---------------------------------------------------------------------------
// Trip-count sweep for the full Lev4 pipeline over a reduction (exercises
// preconditioning remainders against the expansions' preheader code).
// ---------------------------------------------------------------------------

class TripSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TripSweep, Lev4DotProductEveryTripCount) {
  const std::int64_t n = GetParam();
  const std::string src = strformat(R"(
program trip
array A[%lld] fp
array B[%lld] fp
scalar s fp out
loop i = 0 to %lld {
  s = s + A[i] * B[i];
}
)", static_cast<long long>(n + 1), static_cast<long long>(n + 1),
                                    static_cast<long long>(n - 1));
  DiagnosticEngine d0;
  auto base = dsl::compile(src, d0);
  ASSERT_TRUE(base.has_value());
  const RunOutcome want = run_seeded(base->fn, MachineModel::issue(8));
  DiagnosticEngine d1;
  auto opt = dsl::compile(src, d1);
  compile_at_level(opt->fn, OptLevel::Lev4, MachineModel::issue(8));
  const RunOutcome got = run_seeded(opt->fn, MachineModel::issue(8));
  ASSERT_EQ(compare_observable(base->fn, want, got, 1e-9), "") << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Trips, TripSweep,
                         ::testing::Range<std::int64_t>(1, 26),
                         [](const ::testing::TestParamInfo<std::int64_t>& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ilp
