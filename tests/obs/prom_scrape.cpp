// prom_scrape — CI helper that scrapes a running ilpd's `metrics` verb,
// validates the Prometheus exposition with the same linter the unit tests
// use, and optionally asserts that a histogram family has samples.
//
//   prom_scrape --port P [--host H] [--require-hist FAMILY]...
//               [--require-metric NAME]...
//
// --require-metric asserts that at least one sample of NAME exists (labeled
// samples like `name{shard="0"} 3` count) — CI uses it to pin the per-shard
// transport gauges.  A NAME ending in '*' is a prefix match: `tune_*` asserts
// that some metric starting with `tune_` has a sample, which pins a whole
// family without enumerating it.  Prints the exposition to stdout (so CI can
// archive it) and exits nonzero on connection failure, a lint problem, an
// empty required histogram, or a missing required metric.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/prom_lint.hpp"
#include "server/json.hpp"
#include "server/netclient.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port P [--host H] [--require-hist FAMILY]... "
               "[--require-metric NAME]...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::vector<std::string> required_hists;
  std::vector<std::string> required_metrics;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next())) host = v;
    else if (arg == "--port" && (v = next())) port = std::atoi(v);
    else if (arg == "--require-hist" && (v = next())) required_hists.push_back(v);
    else if (arg == "--require-metric" && (v = next())) required_metrics.push_back(v);
    else return usage(argv[0]);
  }
  if (port <= 0) return usage(argv[0]);

  ilp::server::LineClient client;
  if (!client.connect(host, port)) {
    std::fprintf(stderr, "prom_scrape: cannot connect to %s:%d\n", host.c_str(),
                 port);
    return 1;
  }
  if (!client.send_line(R"({"id":"prom_scrape","kind":"metrics"})")) {
    std::fprintf(stderr, "prom_scrape: send failed\n");
    return 1;
  }
  const auto reply = client.recv_line(10'000);
  if (!reply) {
    std::fprintf(stderr, "prom_scrape: no reply\n");
    return 1;
  }
  std::string err;
  const auto doc = ilp::server::JsonValue::parse(*reply, &err);
  if (!doc) {
    std::fprintf(stderr, "prom_scrape: bad reply JSON: %s\n", err.c_str());
    return 1;
  }
  const ilp::server::JsonValue* ok = doc->find("ok");
  const ilp::server::JsonValue* exposition = doc->find("exposition");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool() || exposition == nullptr ||
      !exposition->is_string()) {
    std::fprintf(stderr, "prom_scrape: metrics verb failed: %s\n", reply->c_str());
    return 1;
  }
  const std::string text = exposition->as_string();
  std::fwrite(text.data(), 1, text.size(), stdout);

  int rc = 0;
  const auto problems = ilp::testing::lint_prometheus(text);
  for (const std::string& p : problems)
    std::fprintf(stderr, "prom_scrape: lint: %s\n", p.c_str());
  if (!problems.empty()) rc = 1;

  for (const std::string& family : required_hists) {
    // Non-empty means the `<family>_count` sample exists and is not 0.
    const std::string count_line = family + "_count ";
    const std::size_t at = text.find(count_line);
    if (at == std::string::npos) {
      std::fprintf(stderr, "prom_scrape: histogram '%s' not found\n",
                   family.c_str());
      rc = 1;
      continue;
    }
    const double n = std::strtod(text.c_str() + at + count_line.size(), nullptr);
    if (n <= 0) {
      std::fprintf(stderr, "prom_scrape: histogram '%s' is empty\n",
                   family.c_str());
      rc = 1;
    } else {
      std::fprintf(stderr, "prom_scrape: %s has %.0f samples\n", family.c_str(), n);
    }
  }

  for (const std::string& name : required_metrics) {
    // A sample line starts with the name followed by '{' (labeled) or ' '.
    // A trailing '*' makes the name a prefix: any metric character may
    // continue it before the '{' or ' '.
    const bool prefix = !name.empty() && name.back() == '*';
    const std::string stem = prefix ? name.substr(0, name.size() - 1) : name;
    bool found = false;
    std::size_t at = 0;
    while (!found && (at = text.find(stem, at)) != std::string::npos) {
      const bool at_line_start = at == 0 || text[at - 1] == '\n';
      std::size_t end = at + stem.size();
      if (prefix)
        while (end < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[end])) ||
                text[end] == '_' || text[end] == ':'))
          ++end;
      const char after = end < text.size() ? text[end] : '\0';
      found = at_line_start && (after == '{' || after == ' ');
      ++at;
    }
    if (!found) {
      std::fprintf(stderr, "prom_scrape: metric '%s' has no samples\n",
                   name.c_str());
      rc = 1;
    } else {
      std::fprintf(stderr, "prom_scrape: metric '%s' present\n", name.c_str());
    }
  }
  return rc;
}
