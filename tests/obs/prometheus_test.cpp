#include "obs/prometheus.hpp"

#include <string>

#include <gtest/gtest.h>

#include "engine/metrics.hpp"
#include "obs/histogram.hpp"
#include "obs/prom_lint.hpp"

namespace ilp::obs {
namespace {

TEST(Prometheus, SanitizeName) {
  EXPECT_EQ(prom::sanitize_name("pass.unroll"), "pass_unroll");
  EXPECT_EQ(prom::sanitize_name("server.request_latency"), "server_request_latency");
  EXPECT_EQ(prom::sanitize_name("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(prom::sanitize_name("9lives"), "_9lives");
  EXPECT_EQ(prom::sanitize_name("ok:name_2"), "ok:name_2");
}

TEST(Prometheus, CounterAndGaugeRenderCleanly) {
  std::string out;
  prom::append_counter(out, "server.requests", 17, "Requests received");
  prom::append_gauge(out, "server.queue_depth", 3.0);
  EXPECT_NE(out.find("# HELP server_requests Requests received"), std::string::npos);
  EXPECT_NE(out.find("# TYPE server_requests counter"), std::string::npos);
  EXPECT_NE(out.find("server_requests 17"), std::string::npos);
  EXPECT_NE(out.find("# TYPE server_queue_depth gauge"), std::string::npos);
  const auto problems = ilp::testing::lint_prometheus(out);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(Prometheus, HistogramFollowsTheConvention) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<std::uint64_t>(i) * 1000);
  std::string out;
  prom::append_histogram(out, "server.request_latency", h.snapshot(), 1e-9,
                         "Request latency");
  EXPECT_NE(out.find("# TYPE server_request_latency histogram"), std::string::npos);
  EXPECT_NE(out.find("server_request_latency_bucket{le=\"+Inf\"} 1000"),
            std::string::npos);
  EXPECT_NE(out.find("server_request_latency_count 1000"), std::string::npos);
  EXPECT_NE(out.find("server_request_latency_sum "), std::string::npos);
  const auto problems = ilp::testing::lint_prometheus(out);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(Prometheus, EmptyHistogramStillWellFormed) {
  Histogram h;
  std::string out;
  prom::append_histogram(out, "empty.hist", h.snapshot());
  EXPECT_NE(out.find("empty_hist_bucket{le=\"+Inf\"} 0"), std::string::npos);
  EXPECT_NE(out.find("empty_hist_count 0"), std::string::npos);
  const auto problems = ilp::testing::lint_prometheus(out);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(Prometheus, LintCatchesBrokenExpositions) {
  using ilp::testing::lint_prometheus;
  EXPECT_FALSE(lint_prometheus("bad name 1\n").empty());
  EXPECT_FALSE(lint_prometheus("name notanumber\n").empty());
  EXPECT_FALSE(lint_prometheus("# TYPE x bogus\nx 1\n").empty());
  // Histogram with non-cumulative buckets.
  EXPECT_FALSE(lint_prometheus("# TYPE h histogram\n"
                               "h_bucket{le=\"1\"} 5\n"
                               "h_bucket{le=\"2\"} 3\n"
                               "h_bucket{le=\"+Inf\"} 5\n"
                               "h_sum 9\nh_count 5\n")
                   .empty());
  // Histogram missing +Inf.
  EXPECT_FALSE(lint_prometheus("# TYPE h histogram\n"
                               "h_bucket{le=\"1\"} 5\n"
                               "h_sum 9\nh_count 5\n")
                   .empty());
  // _count disagreeing with the +Inf bucket.
  EXPECT_FALSE(lint_prometheus("# TYPE h histogram\n"
                               "h_bucket{le=\"+Inf\"} 4\n"
                               "h_sum 9\nh_count 5\n")
                   .empty());
  // A correct one passes.
  EXPECT_TRUE(lint_prometheus("# TYPE h histogram\n"
                              "h_bucket{le=\"1\"} 2\n"
                              "h_bucket{le=\"+Inf\"} 5\n"
                              "h_sum 9\nh_count 5\n")
                  .empty());
}

TEST(Prometheus, MetricsRegistryRoundTrip) {
  engine::MetricsRegistry reg;
  for (int i = 0; i < 3; ++i) reg.add_time("pass.unroll", 1'000'000);
  reg.add_count("trans.loops_unrolled", 7);
  reg.histogram("test.latency").record(5'000);
  reg.histogram("test.latency").record(9'000'000);
  const std::string out = reg.to_prometheus();
  const auto problems = ilp::testing::lint_prometheus(out);
  EXPECT_TRUE(problems.empty()) << problems.front();
  EXPECT_NE(out.find("pass_unroll_count 3"), std::string::npos);
  EXPECT_NE(out.find("pass_unroll_seconds_total"), std::string::npos);
  EXPECT_NE(out.find("trans_loops_unrolled 7"), std::string::npos);
  EXPECT_NE(out.find("test_latency_seconds_bucket"), std::string::npos);
  EXPECT_NE(out.find("test_latency_seconds_count 2"), std::string::npos);
}

}  // namespace
}  // namespace ilp::obs
