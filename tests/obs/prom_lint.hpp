// A small Prometheus text-exposition (0.0.4) validator, shared by the gtest
// suites and the prom_scrape CI tool.  It checks the subset the repo emits:
//
//   * every line is a `# HELP`/`# TYPE` comment or a `name[{labels}] value`
//     sample with a legal metric name and a parseable value,
//   * at most one TYPE per family, declared before the family's samples,
//   * histogram families are well-formed: `_bucket{le="..."}` series with
//     strictly ascending le, non-decreasing cumulative counts, a final
//     le="+Inf", and `_sum`/`_count` samples where `_count` equals the +Inf
//     bucket.
//
// lint_prometheus returns human-readable problems; an empty vector means the
// exposition passed.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ilp::testing {

namespace prom_lint_detail {

inline bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name.substr(1))
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
  return true;
}

inline bool parse_value(std::string_view text, double* out) {
  if (text == "+Inf" || text == "Inf") {
    *out = HUGE_VAL;
    return true;
  }
  if (text == "-Inf") {
    *out = -HUGE_VAL;
    return true;
  }
  if (text == "NaN") {
    *out = NAN;
    return true;
  }
  const std::string s(text);
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

struct Sample {
  std::string name;      // family name with _bucket/_sum/_count intact
  std::string le;        // value of the le label, "" if absent
  double value = 0.0;
};

// Parses `name[{labels}] value`; returns false with *err set on malformed.
inline bool parse_sample(std::string_view line, Sample* out, std::string* err) {
  const std::size_t brace = line.find('{');
  const std::size_t name_end = brace != std::string_view::npos ? brace : line.find(' ');
  if (name_end == std::string_view::npos) {
    *err = "sample line has no value";
    return false;
  }
  out->name = std::string(line.substr(0, name_end));
  if (!valid_metric_name(out->name)) {
    *err = "invalid metric name '" + out->name + "'";
    return false;
  }
  std::string_view rest = line.substr(name_end);
  out->le.clear();
  if (brace != std::string_view::npos) {
    const std::size_t close = rest.find('}');
    if (close == std::string_view::npos) {
      *err = "unterminated label set";
      return false;
    }
    std::string_view labels = rest.substr(1, close - 1);
    // Labels in this repo are a single le="..." pair; accept any
    // name="value" list and remember le when present.
    while (!labels.empty()) {
      const std::size_t eq = labels.find('=');
      if (eq == std::string_view::npos || eq + 1 >= labels.size() ||
          labels[eq + 1] != '"') {
        *err = "malformed label in '" + std::string(labels) + "'";
        return false;
      }
      const std::size_t quote = labels.find('"', eq + 2);
      if (quote == std::string_view::npos) {
        *err = "unterminated label value";
        return false;
      }
      if (labels.substr(0, eq) == "le")
        out->le = std::string(labels.substr(eq + 2, quote - (eq + 2)));
      labels.remove_prefix(quote + 1);
      if (!labels.empty() && labels[0] == ',') labels.remove_prefix(1);
    }
    rest = rest.substr(close + 1);
  }
  if (rest.empty() || rest[0] != ' ') {
    *err = "no space before value";
    return false;
  }
  rest.remove_prefix(1);
  if (!parse_value(rest, &out->value)) {
    *err = "unparseable value '" + std::string(rest) + "'";
    return false;
  }
  return true;
}

// Family name of a histogram-series sample, or "" if not one.
inline std::string histogram_family(const std::string& name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string_view sv(suffix);
    if (name.size() > sv.size() &&
        std::string_view(name).substr(name.size() - sv.size()) == sv)
      return name.substr(0, name.size() - sv.size());
  }
  return "";
}

}  // namespace prom_lint_detail

inline std::vector<std::string> lint_prometheus(std::string_view text) {
  using namespace prom_lint_detail;
  std::vector<std::string> problems;
  std::map<std::string, std::string> types;     // family -> declared type
  std::map<std::string, bool> sampled;          // family -> samples seen
  struct HistState {
    double prev_le = -HUGE_VAL;
    double prev_count = -1.0;
    double inf_count = -1.0;
    double count_sample = -1.0;
    bool have_sum = false, have_inf = false, have_count = false;
  };
  std::map<std::string, HistState> hists;

  std::size_t lineno = 0;
  while (!text.empty()) {
    ++lineno;
    const std::size_t nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view{} : text.substr(nl + 1);
    if (line.empty()) continue;
    auto complain = [&](const std::string& what) {
      problems.push_back("line " + std::to_string(lineno) + ": " + what + " [" +
                         std::string(line) + "]");
    };

    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name kind"; any other comment is legal.
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) {
          complain("TYPE line missing kind");
          continue;
        }
        const std::string name(rest.substr(0, sp));
        const std::string_view kind = rest.substr(sp + 1);
        if (!valid_metric_name(name)) complain("TYPE for invalid name");
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped")
          complain("unknown TYPE kind '" + std::string(kind) + "'");
        if (types.count(name) != 0) complain("duplicate TYPE for '" + name + "'");
        if (sampled.count(name) != 0) complain("TYPE after samples of '" + name + "'");
        types[name] = std::string(kind);
      } else if (line.rfind("# HELP ", 0) == 0) {
        if (line.size() <= 7 || !valid_metric_name(
                std::string(line.substr(7, line.substr(7).find(' ')))))
          complain("HELP for invalid name");
      }
      continue;
    }

    Sample s;
    std::string err;
    if (!parse_sample(line, &s, &err)) {
      complain(err);
      continue;
    }
    const std::string family = histogram_family(s.name);
    sampled[family.empty() ? s.name : family] = true;
    if (family.empty() || types.count(family) == 0 ||
        types[family] != "histogram")
      continue;

    HistState& h = hists[family];
    if (s.name == family + "_sum") {
      h.have_sum = true;
    } else if (s.name == family + "_count") {
      h.have_count = true;
      h.count_sample = s.value;
    } else {  // _bucket
      if (s.le.empty()) {
        complain("histogram bucket without le label");
        continue;
      }
      double le = 0.0;
      if (!parse_value(s.le, &le)) {
        complain("unparseable le '" + s.le + "'");
        continue;
      }
      if (le <= h.prev_le) complain("le not ascending in '" + family + "'");
      if (h.prev_count >= 0 && s.value < h.prev_count)
        complain("bucket counts not cumulative in '" + family + "'");
      h.prev_le = le;
      h.prev_count = s.value;
      if (std::isinf(le) && le > 0) {
        h.have_inf = true;
        h.inf_count = s.value;
      }
    }
  }

  for (const auto& [family, h] : hists) {
    if (!h.have_inf) problems.push_back("histogram '" + family + "' missing +Inf bucket");
    if (!h.have_sum) problems.push_back("histogram '" + family + "' missing _sum");
    if (!h.have_count) problems.push_back("histogram '" + family + "' missing _count");
    if (h.have_inf && h.have_count && h.inf_count != h.count_sample)
      problems.push_back("histogram '" + family + "': _count " +
                         std::to_string(h.count_sample) + " != +Inf bucket " +
                         std::to_string(h.inf_count));
  }
  return problems;
}

}  // namespace ilp::testing
