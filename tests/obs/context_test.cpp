#include "obs/context.hpp"

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/trace.hpp"

namespace ilp::obs {
namespace {

// Minimal span consumer for testing the context plumbing in isolation.
class VectorSink : public TraceSink {
 public:
  struct Span {
    std::string name, category, request_id;
    std::uint64_t ts_us, dur_us;
  };

  [[nodiscard]] std::uint64_t now_us() const override {
    return next_now_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_span(std::string_view name, std::string_view category,
                   std::uint64_t ts_us, std::uint64_t dur_us,
                   std::string_view request_id) override {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back({std::string(name), std::string(category),
                      std::string(request_id), ts_us, dur_us});
  }
  std::vector<Span> spans() {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

 private:
  mutable std::atomic<std::uint64_t> next_now_{0};
  std::mutex mu_;
  std::vector<Span> spans_;
};

TEST(Context, NoRequestOutsideAnyScope) {
  EXPECT_EQ(current_request(), nullptr);
  EXPECT_EQ(current_request_id(), "");
}

TEST(Context, ScopeInstallsAndRestores) {
  RequestContext outer{"r-outer", nullptr};
  RequestContext inner{"r-inner", nullptr};
  {
    RequestScope a(&outer);
    EXPECT_EQ(current_request_id(), "r-outer");
    {
      RequestScope b(&inner);
      EXPECT_EQ(current_request_id(), "r-inner");
    }
    EXPECT_EQ(current_request_id(), "r-outer");
  }
  EXPECT_EQ(current_request(), nullptr);
}

TEST(Context, SpanScopeIsInertWithoutSinkOrRequest) {
  // No request installed: must not crash, record nothing anywhere.
  { SpanScope span("orphan", "test"); }
  RequestContext untraced{"r-1", nullptr};
  RequestScope scope(&untraced);
  { SpanScope span("untraced", "test"); }
  SUCCEED();
}

TEST(Context, SpanScopeRecordsAgainstCurrentSink) {
  VectorSink sink;
  RequestContext ctx{"r-42", &sink};
  RequestScope scope(&ctx);
  {
    SpanScope outer("outer", "test");
    SpanScope inner("inner", "test");
  }
  const auto spans = sink.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Destruction order: inner closes first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  for (const auto& s : spans) {
    EXPECT_EQ(s.request_id, "r-42");
    EXPECT_EQ(s.category, "test");
  }
}

TEST(Context, ContextFollowsRequestAcrossThreadHop) {
  // The service pattern: the handler installs a context, the pool job
  // re-installs the same context on its worker thread.
  VectorSink sink;
  RequestContext ctx{"r-hop", &sink};
  {
    RequestScope handler(&ctx);
    SpanScope request_span("request", "server");
    std::thread worker([&ctx] {
      EXPECT_EQ(current_request(), nullptr);  // fresh thread: no context
      RequestScope job_scope(&ctx);
      EXPECT_EQ(current_request_id(), "r-hop");
      SpanScope job_span("job", "engine");
    });
    worker.join();
  }
  const auto spans = sink.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "job");
  EXPECT_EQ(spans[1].name, "request");
  EXPECT_EQ(spans[0].request_id, "r-hop");
  EXPECT_EQ(spans[1].request_id, "r-hop");
}

TEST(Context, ConcurrentRequestsKeepDistinctIds) {
  VectorSink sink;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&sink, t] {
      RequestContext ctx{"r-" + std::to_string(t), &sink};
      RequestScope scope(&ctx);
      for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(current_request_id(), ctx.request_id);
        SpanScope span("work", "test");
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(sink.spans().size(), 800u);
}

TEST(Context, EngineTraceRecorderImplementsSink) {
  // The real wiring: a per-request TraceRecorder as the sink, spans tagged
  // with the request id end up as Chrome-trace events.
  engine::TraceRecorder recorder;
  recorder.enable();
  RequestContext ctx{"r-real", &recorder};
  {
    RequestScope scope(&ctx);
    SpanScope span("pass.unroll", "pass");
  }
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "pass.unroll");
  EXPECT_EQ(events[0].request_id, "r-real");
}

}  // namespace
}  // namespace ilp::obs
