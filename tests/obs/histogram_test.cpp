#include "obs/histogram.hpp"

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ilp::obs {
namespace {

TEST(Histogram, LinearRangeBucketsAreExact) {
  // Values below kSubCount each get their own bucket: [v, v].
  for (std::uint64_t v = 0; v < Histogram::kSubCount; ++v) {
    const std::size_t idx = Histogram::bucket_index(v);
    EXPECT_EQ(idx, v);
    EXPECT_EQ(Histogram::bucket_lower(idx), v);
    EXPECT_EQ(Histogram::bucket_upper(idx), v);
  }
}

TEST(Histogram, EveryValueFallsInsideItsBucket) {
  // Walk powers of two and their neighbourhoods across the full range.
  std::vector<std::uint64_t> probes;
  for (int bit = 0; bit < 63; ++bit) {
    const std::uint64_t base = 1ull << bit;
    for (const std::uint64_t v : {base - 1, base, base + 1, base + base / 3})
      probes.push_back(v);
  }
  for (const std::uint64_t v : probes) {
    const std::size_t idx = Histogram::bucket_index(v);
    ASSERT_LT(idx, Histogram::kBucketCount);
    if (idx < Histogram::kBucketCount - 1) {
      EXPECT_LE(Histogram::bucket_lower(idx), v) << "value " << v;
      EXPECT_GE(Histogram::bucket_upper(idx), v) << "value " << v;
    } else {
      // Clamp bucket: only the lower bound is meaningful.
      EXPECT_LE(Histogram::bucket_lower(idx), v) << "value " << v;
    }
  }
}

TEST(Histogram, BucketsTileTheRangeWithoutGaps) {
  for (std::size_t i = 1; i < Histogram::kBucketCount; ++i)
    EXPECT_EQ(Histogram::bucket_lower(i), Histogram::bucket_upper(i - 1) + 1)
        << "gap or overlap between buckets " << i - 1 << " and " << i;
}

TEST(Histogram, BucketRelativeWidthIsBounded) {
  // Beyond the linear range, width(bucket) / lower(bucket) <= 1/32.
  for (std::size_t i = Histogram::kSubCount; i < Histogram::kBucketCount - 1; ++i) {
    const double lower = static_cast<double>(Histogram::bucket_lower(i));
    const double width = static_cast<double>(Histogram::bucket_upper(i) -
                                             Histogram::bucket_lower(i) + 1);
    EXPECT_LE(width / lower, 1.0 / 32 + 1e-12) << "bucket " << i;
  }
}

TEST(Histogram, EmptySnapshot) {
  Histogram h;
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_TRUE(snap.buckets.empty());
  EXPECT_EQ(snap.quantile(0.5), 0.0);
  EXPECT_EQ(snap.quantile(0.999), 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(Histogram, SingleSample) {
  Histogram h;
  h.record(12'345);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 12'345u);
  ASSERT_EQ(snap.buckets.size(), 1u);
  // Every quantile of a one-sample histogram is that sample's bucket.
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    const double est = snap.quantile(q);
    EXPECT_NEAR(est, 12'345.0, 12'345.0 / 32) << "q=" << q;
  }
}

TEST(Histogram, PercentilesTrackSortedReferenceOn10kRandomSamples) {
  // Mixed-magnitude distribution (log-uniform-ish), the shape service
  // latencies actually have.
  std::mt19937_64 rng(20260806);
  std::uniform_int_distribution<int> magnitude(0, 26);
  Histogram h;
  std::vector<std::uint64_t> reference;
  reference.reserve(10'000);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t hi = 1ull << magnitude(rng);
    std::uniform_int_distribution<std::uint64_t> within(hi, hi * 2 - 1);
    const std::uint64_t v = within(rng);
    h.record(v);
    reference.push_back(v);
  }
  std::sort(reference.begin(), reference.end());
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.count, reference.size());

  for (const double q : {0.50, 0.90, 0.99, 0.999}) {
    const auto rank =
        static_cast<std::size_t>(q * static_cast<double>(reference.size() - 1));
    const double exact = static_cast<double>(reference[rank]);
    const double est = snap.quantile(q);
    // Bucket width is 1/32 of the value; the midpoint estimate stays within
    // ~2 bucket widths of the exact order statistic.
    EXPECT_NEAR(est, exact, exact / 16 + 1.0) << "q=" << q;
  }
}

TEST(Histogram, SumAndMeanAreExact) {
  Histogram h;
  std::uint64_t expected_sum = 0;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    h.record(v * 7);
    expected_sum += v * 7;
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, expected_sum);
  EXPECT_DOUBLE_EQ(snap.mean(),
                   static_cast<double>(expected_sum) / 1000.0);
}

TEST(Histogram, ConcurrentShardMergeIsExact) {
  // 8 threads × 50k records; the merged snapshot must account for every one.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  Histogram h;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        h.record(static_cast<std::uint64_t>(t) * 1'000 + i % 997);
    });
  for (std::thread& t : threads) t.join();

  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto& [upper, count] : snap.buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(Histogram, ResetZeroes) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(42);
  h.reset();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_TRUE(snap.buckets.empty());
  h.record(7);  // still usable after reset
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(Histogram, HugeValuesClampIntoLastBucket) {
  Histogram h;
  h.record(~0ull);
  h.record(~0ull - 1);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  ASSERT_EQ(snap.buckets.size(), 1u);
  EXPECT_EQ(Histogram::bucket_index(~0ull), Histogram::kBucketCount - 1);
}

}  // namespace
}  // namespace ilp::obs
