#include "obs/log.hpp"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/context.hpp"
#include "server/json.hpp"

namespace ilp::obs {
namespace {

// A Logger writing into a tmpfile we can rewind and read back.
class CapturingLogger {
 public:
  CapturingLogger() : file_(std::tmpfile()) { logger_.set_sink(file_); }
  ~CapturingLogger() {
    if (file_ != nullptr) std::fclose(file_);
  }

  Logger& logger() { return logger_; }

  std::vector<std::string> lines() {
    std::fflush(file_);
    std::rewind(file_);
    std::vector<std::string> out;
    std::string line;
    int c;
    while ((c = std::fgetc(file_)) != EOF) {
      if (c == '\n') {
        out.push_back(line);
        line.clear();
      } else {
        line.push_back(static_cast<char>(c));
      }
    }
    if (!line.empty()) out.push_back(line);
    return out;
  }

 private:
  std::FILE* file_;
  Logger logger_;
};

TEST(Log, TextLineCarriesLevelMessageAndFields) {
  CapturingLogger cap;
  cap.logger().log(LogLevel::Info, "compile done",
                   {field("cycles", std::uint64_t{42}), field("ok", true),
                    field("label", "lev4"), field("ratio", 1.5)});
  const auto lines = cap.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("info"), std::string::npos);
  EXPECT_NE(lines[0].find("compile done"), std::string::npos);
  EXPECT_NE(lines[0].find("cycles=42"), std::string::npos);
  EXPECT_NE(lines[0].find("ok=true"), std::string::npos);
  EXPECT_NE(lines[0].find("label=lev4"), std::string::npos);
}

TEST(Log, JsonLinesParseAndRoundTripFields) {
  CapturingLogger cap;
  cap.logger().set_json(true);
  cap.logger().log(LogLevel::Warn, "odd \"quoted\" message\twith tab",
                   {field("n", -3), field("path", "/tmp/x \"y\"")});
  const auto lines = cap.lines();
  ASSERT_EQ(lines.size(), 1u);
  std::string err;
  const auto doc = server::JsonValue::parse(lines[0], &err);
  ASSERT_TRUE(doc) << err << " in: " << lines[0];
  EXPECT_EQ(doc->find("level")->as_string(), "warn");
  EXPECT_EQ(doc->find("msg")->as_string(), "odd \"quoted\" message\twith tab");
  EXPECT_EQ(doc->find("n")->as_int(), -3);
  EXPECT_EQ(doc->find("path")->as_string(), "/tmp/x \"y\"");
  ASSERT_NE(doc->find("ts"), nullptr);
  // ISO-8601 UTC: 2026-08-06T17:01:02.345Z
  const std::string ts = doc->find("ts")->as_string();
  EXPECT_EQ(ts.size(), 24u) << ts;
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts.back(), 'Z');
}

TEST(Log, LevelFilteringSuppressesBelowThreshold) {
  CapturingLogger cap;
  cap.logger().set_level(LogLevel::Warn);
  cap.logger().log(LogLevel::Debug, "invisible");
  cap.logger().log(LogLevel::Info, "also invisible");
  cap.logger().log(LogLevel::Warn, "visible");
  cap.logger().log(LogLevel::Error, "also visible");
  EXPECT_FALSE(cap.logger().enabled(LogLevel::Info));
  EXPECT_TRUE(cap.logger().enabled(LogLevel::Warn));
  const auto lines = cap.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("visible"), std::string::npos);
  EXPECT_EQ(cap.logger().lines_written(), 2u);
}

TEST(Log, OffDisablesEverything) {
  CapturingLogger cap;
  cap.logger().set_level(LogLevel::Off);
  cap.logger().log(LogLevel::Error, "nope");
  EXPECT_TRUE(cap.lines().empty());
}

TEST(Log, ConcurrentWritersInterleaveWholeValidJsonLines) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  CapturingLogger cap;
  cap.logger().set_json(true);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&cap, t] {
      for (int i = 0; i < kPerThread; ++i)
        cap.logger().log(LogLevel::Info, "concurrent line with some padding",
                         {field("thread", t), field("i", i),
                          field("text", "abcdefghijklmnopqrstuvwxyz")});
    });
  for (std::thread& t : threads) t.join();

  const auto lines = cap.lines();
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (const std::string& line : lines) {
    std::string err;
    const auto doc = server::JsonValue::parse(line, &err);
    ASSERT_TRUE(doc) << err << " in: " << line;
    ASSERT_NE(doc->find("thread"), nullptr);
    ASSERT_NE(doc->find("i"), nullptr);
  }
}

TEST(Log, RateLimitBoundsAHotWarnSiteAndReportsSuppression) {
  CapturingLogger cap;
  for (int i = 0; i < 100; ++i)
    cap.logger().warn_rate_limited("hot_key", "something keeps happening",
                                   {field("i", i)}, 5);
  // 100 calls in well under a second: at most the budget for one window
  // (plus one more if the loop straddled a second boundary).
  const auto burst = cap.lines();
  EXPECT_GE(burst.size(), 1u);
  EXPECT_LE(burst.size(), 10u);

  // When the window reopens, the next line reports what was swallowed.
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  cap.logger().warn_rate_limited("hot_key", "something keeps happening", {}, 5);
  const auto after = cap.lines();
  ASSERT_GT(after.size(), burst.size());
  bool reported = false;
  for (std::size_t i = burst.size(); i < after.size(); ++i)
    if (after[i].find("suppressed") != std::string::npos) reported = true;
  EXPECT_TRUE(reported);
}

TEST(Log, RateLimitIsPerKey) {
  CapturingLogger cap;
  for (int i = 0; i < 20; ++i) {
    cap.logger().warn_rate_limited("key_a", "a", {}, 2);
    cap.logger().warn_rate_limited("key_b", "b", {}, 2);
  }
  // Each key gets its own budget; neither starves the other.
  std::size_t a = 0, b = 0;
  for (const std::string& line : cap.lines()) {
    if (line.find(" a") != std::string::npos) ++a;
    if (line.find(" b") != std::string::npos) ++b;
  }
  EXPECT_GE(a, 1u);
  EXPECT_GE(b, 1u);
}

TEST(Log, StampsCurrentRequestId) {
  CapturingLogger cap;
  cap.logger().set_json(true);
  RequestContext ctx;
  ctx.request_id = "r-999";
  {
    RequestScope scope(&ctx);
    cap.logger().log(LogLevel::Info, "inside request");
  }
  cap.logger().log(LogLevel::Info, "outside request");
  const auto lines = cap.lines();
  ASSERT_EQ(lines.size(), 2u);
  std::string err;
  const auto inside = server::JsonValue::parse(lines[0], &err);
  ASSERT_TRUE(inside);
  ASSERT_NE(inside->find("req"), nullptr);
  EXPECT_EQ(inside->find("req")->as_string(), "r-999");
  const auto outside = server::JsonValue::parse(lines[1], &err);
  ASSERT_TRUE(outside);
  EXPECT_EQ(outside->find("req"), nullptr);
}

TEST(Log, ParseLogLevelNames) {
  LogLevel l{};
  EXPECT_TRUE(parse_log_level("debug", &l));
  EXPECT_EQ(l, LogLevel::Debug);
  EXPECT_TRUE(parse_log_level("off", &l));
  EXPECT_EQ(l, LogLevel::Off);
  EXPECT_FALSE(parse_log_level("chatty", &l));
  EXPECT_FALSE(parse_log_level("", &l));
}

}  // namespace
}  // namespace ilp::obs
