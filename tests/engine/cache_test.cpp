#include "engine/cache.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

namespace ilp::engine {
namespace {

// Unique scratch directory per test, removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    const auto base = std::filesystem::temp_directory_path() /
                      ("ilp_cache_test_" + std::to_string(::getpid()) + "_" +
                       std::to_string(counter()++));
    std::filesystem::create_directories(base);
    path = base.string();
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

TEST(Fnv1a, MatchesPublishedVectors) {
  // Reference digests of the 64-bit FNV-1a specification.
  EXPECT_EQ(fnv1a("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a("foobar", 6), 0x85944171f73967e8ull);
}

TEST(HashStream, FieldDelimitingPreventsConcatenationCollisions) {
  const auto h1 = HashStream().str("ab").str("c").digest();
  const auto h2 = HashStream().str("a").str("bc").digest();
  EXPECT_NE(h1, h2);
  const auto h3 = HashStream().u64(1).u64(2).digest();
  const auto h4 = HashStream().u64(2).u64(1).digest();
  EXPECT_NE(h3, h4);
}

TEST(ResultCache, MemoryTierRoundTrip) {
  ResultCache cache;
  EXPECT_FALSE(cache.lookup(42).has_value());
  cache.store(42, "payload-42");
  const auto got = cache.lookup(42);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "payload-42");
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.stores, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(ResultCache, DiskTierSurvivesProcessRestart) {
  TempDir dir;
  {
    ResultCache writer(dir.path);
    writer.store(7, "persisted");
  }
  // A fresh instance (fresh memory tier) models a new process.
  ResultCache reader(dir.path);
  const auto got = reader.lookup(7);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "persisted");
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  // The disk hit was promoted: second lookup is a memory hit.
  ASSERT_TRUE(reader.lookup(7).has_value());
  EXPECT_EQ(reader.stats().hits, 1u);
}

TEST(ResultCache, InvalidateEvictsBothTiersAndCorrectsStats) {
  TempDir dir;
  ResultCache cache(dir.path);
  cache.store(9, "garbage the caller will reject");
  ASSERT_TRUE(cache.lookup(9).has_value());
  cache.invalidate(9);
  // The poisoned entry is gone from memory and disk: next lookup is a miss.
  EXPECT_FALSE(cache.lookup(9).has_value());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.invalid, 1u);
  EXPECT_EQ(s.total_hits(), 0u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.0);
}

TEST(ResultCache, UnwritableDirDegradesToMemoryOnly) {
  ResultCache cache("/proc/definitely/not/writable");
  cache.store(1, "x");
  const auto got = cache.lookup(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "x");
}

TEST(ResultCache, ConcurrentStoreLookupIsRaceFree) {
  TempDir dir;
  ResultCache cache(dir.path);
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 100; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>(i % 25);
        cache.store(key, "v" + std::to_string(i % 25));
        const auto got = cache.lookup(key);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, "v" + std::to_string(i % 25));
      }
      (void)t;
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.size(), 25u);
}

// Heavy contention on one on-disk tier, including the cross-process shape:
// two ResultCache instances share the directory (as ilpd and a bench binary
// would), and every thread mixes stores, lookups and invalidations over a
// small key set.  Every observed payload must decode to a complete value —
// a torn read here means the write-then-rename publish or the tmp-file
// naming is broken — and the stats must balance exactly.
TEST(ResultCache, ContendedDiskTierNeverServesTornEntries) {
  TempDir dir;
  ResultCache shared_a(dir.path);
  ResultCache shared_b(dir.path);  // same disk tier, separate memory tier

  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  constexpr std::uint64_t kKeys = 7;
  // Payloads are "v<key> <body>" with a length-checkable body so partial
  // file contents cannot decode as valid.
  auto payload_for = [](std::uint64_t key) {
    std::string body(128, static_cast<char>('a' + key));
    return "v" + std::to_string(key) + " " + body;
  };

  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      ResultCache& cache = (t % 2 == 0) ? shared_a : shared_b;
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>((t + i)) % kKeys;
        switch (i % 4) {
          case 0:
            cache.store(key, payload_for(key));
            break;
          case 3:
            if (t % 4 == 1 && i % 64 == 3) {
              cache.invalidate(key);
              break;
            }
            [[fallthrough]];
          default: {
            const auto got = cache.lookup(key);
            if (got && *got != payload_for(key))
              torn.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(torn.load(), 0u);

  // Hit accounting balances under contention: every lookup was classified
  // exactly once, and no tier invented hits it never served.
  for (const ResultCache* cache : {&shared_a, &shared_b}) {
    const CacheStats s = cache->stats();
    EXPECT_EQ(s.lookups(), s.hits + s.disk_hits + s.misses);
    EXPECT_LE(s.invalid, s.hits + s.disk_hits);
    EXPECT_LE(s.total_hits(), s.lookups());
    EXPECT_GT(s.stores, 0u);
    EXPECT_GT(s.lookups(), 0u);
  }

  // Whatever survived on disk is readable and whole from a fresh instance.
  ResultCache fresh(dir.path);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const auto got = fresh.lookup(key);
    if (got) EXPECT_EQ(*got, payload_for(key)) << "key " << key;
  }
}

}  // namespace
}  // namespace ilp::engine
