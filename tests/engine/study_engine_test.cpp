// End-to-end tests of the engine-backed study: parallel runs must be
// byte-identical to serial ones, warm caches must recall every cell with
// identical results, and a bad workload must fail its own cells only.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "engine/cache.hpp"
#include "harness/experiment.hpp"

namespace ilp {
namespace {

std::vector<Workload> mini_suite() {
  std::vector<Workload> out;
  for (const char* name : {"add", "dotprod", "SDS-4", "maxval"})
    out.push_back(*find_workload(name));
  return out;
}

TEST(StudyEngine, ParallelRunIsByteIdenticalToSerial) {
  StudyOptions serial;
  serial.jobs = 1;
  const StudyResult a = run_study(mini_suite(), serial);

  StudyOptions parallel;
  parallel.jobs = 4;
  const StudyResult b = run_study(mini_suite(), parallel);

  ASSERT_EQ(a.loops.size(), b.loops.size());
  for (std::size_t i = 0; i < a.loops.size(); ++i) {
    EXPECT_EQ(a.loops[i].cycles, b.loops[i].cycles) << a.loops[i].name;
    for (std::size_t li = 0; li < kLevels.size(); ++li) {
      EXPECT_EQ(a.loops[i].regs[li].int_regs, b.loops[i].regs[li].int_regs);
      EXPECT_EQ(a.loops[i].regs[li].fp_regs, b.loops[i].regs[li].fp_regs);
    }
  }
  // The serialized study — the artifact the benches write — must match byte
  // for byte regardless of the worker count.
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(b.stats.jobs, 4);
}

TEST(StudyEngine, WarmCacheRecallsEveryCellIdentically) {
  engine::ResultCache cache;  // memory-only, shared across both runs
  StudyOptions opts;
  opts.jobs = 2;
  opts.cache = &cache;

  const StudyResult cold = run_study(mini_suite(), opts);
  EXPECT_EQ(cold.stats.cache_hits, 0u);
  EXPECT_EQ(cold.stats.cache_misses, cold.stats.cells);

  const StudyResult warm = run_study(mini_suite(), opts);
  EXPECT_EQ(warm.stats.cache_hits, warm.stats.cells);
  EXPECT_EQ(warm.stats.cache_misses, 0u);
  EXPECT_GT(warm.stats.cache_hit_rate(), 0.9);
  // Recalled cycles and registers are identical to the computed ones.
  EXPECT_EQ(cold.to_json(), warm.to_json());
}

TEST(StudyEngine, DiskCachePersistsAcrossCacheInstances) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("ilp_study_cache_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  StudyOptions opts;
  opts.jobs = 2;
  opts.cache_dir = dir.string();
  const StudyResult cold = run_study(mini_suite(), opts);
  EXPECT_EQ(cold.stats.cache_misses, cold.stats.cells);

  // A fresh ResultCache (fresh process, in effect) hits the disk tier.
  const StudyResult warm = run_study(mini_suite(), opts);
  EXPECT_EQ(warm.stats.cache_disk_hits, warm.stats.cells);
  EXPECT_EQ(cold.to_json(), warm.to_json());

  std::filesystem::remove_all(dir);
}

TEST(StudyEngine, BadWorkloadFailsItsCellsNotTheStudy) {
  std::vector<Workload> suite = mini_suite();
  Workload bad = suite[0];
  bad.name = "broken";
  bad.source = "program broken\nthis is not a valid DSL program\n";
  suite.insert(suite.begin() + 1, bad);

  for (const int jobs : {1, 4}) {
    StudyOptions opts;
    opts.jobs = jobs;
    const StudyResult s = run_study(suite, opts);
    ASSERT_EQ(s.loops.size(), 5u);
    EXPECT_FALSE(s.loops[1].ok());
    EXPECT_NE(s.loops[1].error.find("broken"), std::string::npos);
    EXPECT_EQ(s.stats.failed_cells, kLevels.size() * kIssueWidths.size());
    // Every healthy workload still produced a full result grid.
    for (const std::size_t i : {0ul, 2ul, 3ul, 4ul}) {
      EXPECT_TRUE(s.loops[i].ok()) << s.loops[i].error;
      EXPECT_GT(s.loops[i].base_cycles(), 0u);
      EXPECT_DOUBLE_EQ(s.loops[i].speedup(OptLevel::Conv, 0), 1.0);
    }
    // Failed cells read as speedup 0, never as aborts.
    EXPECT_DOUBLE_EQ(s.loops[1].speedup(OptLevel::Lev4, 3), 0.0);
  }
}

TEST(StudyEngine, CellKeyDiscriminatesEveryInput) {
  const Workload& w = *find_workload("dotprod");
  const MachineModel m8 = MachineModel::issue(8);
  const CompileOptions base;
  const auto key = study_cell_key(w, OptLevel::Lev4, m8, base);

  EXPECT_EQ(key, study_cell_key(w, OptLevel::Lev4, m8, base));  // deterministic
  EXPECT_NE(key, study_cell_key(w, OptLevel::Lev3, m8, base));
  EXPECT_NE(key, study_cell_key(w, OptLevel::Lev4, MachineModel::issue(4), base));

  Workload edited = w;
  edited.source += " ";
  EXPECT_NE(key, study_cell_key(edited, OptLevel::Lev4, m8, base));

  CompileOptions opts2;
  opts2.unroll.max_factor = 4;
  EXPECT_NE(key, study_cell_key(w, OptLevel::Lev4, m8, opts2));

  MachineModel slow_mul = m8;
  slow_mul.lat_fp_mul = 5;
  EXPECT_NE(key, study_cell_key(w, OptLevel::Lev4, slow_mul, base));
}

}  // namespace
}  // namespace ilp
