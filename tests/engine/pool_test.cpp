#include "engine/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ilp::engine {
namespace {

TEST(ThreadPool, RunsAllSubmittedJobs) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futs;
  futs.reserve(100);
  for (int i = 0; i < 100; ++i) futs.push_back(pool.submit([i] { return i * i; }));
  long long sum = 0;
  for (auto& f : futs) sum += f.get();
  long long expect = 0;
  for (int i = 0; i < 100; ++i) expect += static_cast<long long>(i) * i;
  EXPECT_EQ(sum, expect);
  pool.shutdown();
  EXPECT_EQ(pool.jobs_executed(), 100u);
}

TEST(ThreadPool, ExceptionPropagatesThroughFutureNotAbort) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("job failed"); });
  auto after = pool.submit([] { return 8; });
  // The failing job poisons only its own future; siblings and the pool live.
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(
      {
        try {
          bad.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "job failed");
          throw;
        }
      },
      std::runtime_error);
  EXPECT_EQ(after.get(), 8);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i)
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, ShutdownDrainsQueuedJobsBeforeJoining) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);  // single worker: jobs queue up behind the sleeper
    pool.submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); });
    for (int i = 0; i < 32; ++i)
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }  // destructor == graceful shutdown
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

// ThreadSanitizer-friendly stress: several producer threads hammer submit()
// concurrently with job execution and a mid-flight wait_idle, then shutdown
// races nothing (all producers joined first).  Run under -fsanitize=thread
// in CI to keep the pool race-free.
TEST(ThreadPool, StressConcurrentSubmitAndShutdown) {
  for (int round = 0; round < 5; ++round) {
    ThreadPool pool(4);
    std::atomic<long long> sum{0};
    std::vector<std::thread> producers;
    producers.reserve(4);
    for (int p = 0; p < 4; ++p)
      producers.emplace_back([&pool, &sum, p] {
        for (int i = 0; i < 200; ++i)
          pool.submit([&sum, p, i] { sum.fetch_add(p * 1000 + i, std::memory_order_relaxed); });
      });
    for (auto& t : producers) t.join();
    pool.wait_idle();
    long long expect = 0;
    for (int p = 0; p < 4; ++p)
      for (int i = 0; i < 200; ++i) expect += p * 1000 + i;
    EXPECT_EQ(sum.load(), expect);
    EXPECT_EQ(pool.jobs_executed(), 800u);
    EXPECT_GE(pool.peak_queue_depth(), 1u);
    pool.shutdown();
  }
}

TEST(JobGroup, WaitBlocksUntilAllMembersSettle) {
  ThreadPool pool(2);
  JobGroup group(pool);
  std::atomic<int> ran{0};
  std::vector<std::future<int>> futures;
  futures.reserve(10);
  for (int i = 0; i < 10; ++i)
    futures.push_back(group.submit([&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      return i * i;
    }));
  group.wait();
  EXPECT_EQ(ran.load(), 10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(futures[i].get(), i * i);
  EXPECT_EQ(group.cancelled_jobs(), 0u);
}

// Start-gated cancellation: a one-worker pool is blocked by a gate job, so
// later members are provably unstarted when cancel() lands — each must
// settle with JobCancelled instead of running.
TEST(JobGroup, CancelSkipsUnstartedMembers) {
  ThreadPool pool(1);
  JobGroup group(pool);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> started;
  auto first = group.submit([opened, &started] {
    started.set_value();
    opened.wait();
    return 1;
  });
  std::vector<std::future<int>> queued;
  queued.reserve(5);
  for (int i = 0; i < 5; ++i)
    queued.push_back(group.submit([] { return 2; }));

  // Cancellation is start-gated, so the first member only survives if it has
  // actually begun running when cancel() lands — wait for that, don't race it.
  started.get_future().wait();
  group.cancel();
  EXPECT_TRUE(group.cancel_requested());
  gate.set_value();
  group.wait();

  // The running member was never interrupted...
  EXPECT_EQ(first.get(), 1);
  // ...and every queued member settled as cancelled, exceptions in futures.
  for (auto& f : queued) EXPECT_THROW(f.get(), JobCancelled);
  EXPECT_EQ(group.cancelled_jobs(), 5u);
}

TEST(JobGroup, MemberExceptionsStayInTheirFutures) {
  ThreadPool pool(2);
  JobGroup group(pool);
  auto bad = group.submit([]() -> int { throw std::runtime_error("boom"); });
  auto good = group.submit([] { return 7; });
  group.wait();
  EXPECT_EQ(good.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(group.cancelled_jobs(), 0u);
}

}  // namespace
}  // namespace ilp::engine
