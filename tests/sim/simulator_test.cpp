#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "machine/machine.hpp"

namespace ilp {
namespace {

// Runs a single-block straight-line function and returns the result.
SimResult run_straightline(Function& fn, int width = 8, SimOptions opts = {}) {
  fn.renumber();
  Memory mem;
  Simulator sim(MachineModel::issue(width), std::move(opts));
  return sim.run(fn, mem);
}

TEST(Simulator, IntegerArithmeticSemantics) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg a = b.ldi(17);
  const Reg c = b.ldi(5);
  const Reg sum = b.iadd(a, c);
  const Reg dif = b.isub(a, c);
  const Reg prd = b.imul(a, c);
  const Reg quo = b.idiv(a, c);
  const Reg rem = b.irem(a, c);
  const Reg neg = b.imov(a);
  const Reg shl = b.ishli(a, 2);
  const Reg mx = b.imax(a, c);
  const Reg mn = b.imin(a, c);
  b.ret();
  const SimResult r = run_straightline(fn);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.regs.get_int(sum.id), 22);
  EXPECT_EQ(r.regs.get_int(dif.id), 12);
  EXPECT_EQ(r.regs.get_int(prd.id), 85);
  EXPECT_EQ(r.regs.get_int(quo.id), 3);
  EXPECT_EQ(r.regs.get_int(rem.id), 2);
  EXPECT_EQ(r.regs.get_int(neg.id), 17);
  EXPECT_EQ(r.regs.get_int(shl.id), 68);
  EXPECT_EQ(r.regs.get_int(mx.id), 17);
  EXPECT_EQ(r.regs.get_int(mn.id), 5);
}

TEST(Simulator, NegativeDivisionTruncatesTowardZero) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg a = b.ldi(-17);
  const Reg q = b.idivi(a, 5);
  const Reg m = b.iremi(a, 5);
  b.ret();
  const SimResult r = run_straightline(fn);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.regs.get_int(q.id), -3);
  EXPECT_EQ(r.regs.get_int(m.id), -2);
}

TEST(Simulator, DivisionByZeroFails) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg a = b.ldi(1);
  b.idivi(a, 0);
  b.ret();
  const SimResult r = run_straightline(fn);
  EXPECT_FALSE(r.ok);
}

TEST(Simulator, FloatArithmeticSemantics) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg x = b.fldi(6.0);
  const Reg y = b.fldi(1.5);
  const Reg s = b.fadd(x, y);
  const Reg d = b.fsub(x, y);
  const Reg p = b.fmul(x, y);
  const Reg q = b.fdiv(x, y);
  const Reg mx = b.fmax(x, y);
  const Reg mn = b.fmin(x, y);
  const Reg ng = b.fneg(x);
  b.ret();
  const SimResult r = run_straightline(fn);
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.regs.get_fp(s.id), 7.5);
  EXPECT_DOUBLE_EQ(r.regs.get_fp(d.id), 4.5);
  EXPECT_DOUBLE_EQ(r.regs.get_fp(p.id), 9.0);
  EXPECT_DOUBLE_EQ(r.regs.get_fp(q.id), 4.0);
  EXPECT_DOUBLE_EQ(r.regs.get_fp(mx.id), 6.0);
  EXPECT_DOUBLE_EQ(r.regs.get_fp(mn.id), 1.5);
  EXPECT_DOUBLE_EQ(r.regs.get_fp(ng.id), -6.0);
}

TEST(Simulator, Conversions) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg i = b.ldi(-7);
  const Reg f = b.itof(i);
  const Reg x = b.fldi(3.9);
  const Reg j = b.ftoi(x);
  b.ret();
  const SimResult r = run_straightline(fn);
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.regs.get_fp(f.id), -7.0);
  EXPECT_EQ(r.regs.get_int(j.id), 3);  // truncation
}

TEST(Simulator, MemoryRoundTrip) {
  Function fn;
  fn.add_array({"A", 100, 8, 4, false});
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg base = b.ldi(0);
  const Reg v = b.ldi(42);
  b.st(base, 100, v, 0);
  const Reg w = b.ld(base, 100, 0);
  const Reg zero = b.ld(base, 108, 0);  // never written: reads 0
  b.ret();
  const SimResult r = run_straightline(fn);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.regs.get_int(w.id), 42);
  EXPECT_EQ(r.regs.get_int(zero.id), 0);
}

TEST(Simulator, FpMemoryKeepsBits) {
  Function fn;
  fn.add_array({"A", 100, 4, 4, true});
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg base = b.ldi(0);
  const Reg v = b.fldi(2.75);
  b.fst(base, 104, v, 0);
  const Reg w = b.fld(base, 104, 0);
  b.ret();
  const SimResult r = run_straightline(fn);
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.regs.get_fp(w.id), 2.75);
}

TEST(Simulator, BranchTakenAndFallthrough) {
  // if (3 < 5) skip the poison store.
  Function fn;
  fn.add_array({"A", 0, 8, 1, false});
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId skip = b.create_block("skip");
  b.set_block(e);
  const Reg a = b.ldi(3);
  const Reg base = b.ldi(0);
  b.bri(Opcode::BLT, a, 5, skip);
  const Reg poison = b.ldi(99);
  b.st(base, 0, poison, 0);
  b.jump(skip);
  b.set_block(skip);
  const Reg v = b.ld(base, 0, 0);
  b.ret();
  fn.renumber();
  Memory mem;
  Simulator sim(MachineModel::issue(8));
  const SimResult r = sim.run(fn, mem);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.regs.get_int(v.id), 0);  // store was skipped
}

TEST(Simulator, LoopExecutesCorrectIterationCount) {
  // for (i = 0; i < 10; ++i) sum += i;  => sum = 45
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId x = b.create_block("exit");
  b.set_block(e);
  const Reg i = b.ldi(0);
  const Reg sum = b.ldi(0);
  b.jump(loop);
  b.set_block(loop);
  b.iadd_to(sum, sum, i);
  b.iaddi_to(i, i, 1);
  b.bri(Opcode::BLT, i, 10, loop);
  b.set_block(x);
  b.ret();
  fn.renumber();
  Memory mem;
  Simulator sim(MachineModel::issue(4));
  const SimResult r = sim.run(fn, mem);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.regs.get_int(sum.id), 45);
  EXPECT_EQ(r.branches, 12u);  // jump + 10 loop branches + ret
}

TEST(Simulator, LatencyChainOnWideMachine) {
  // Three dependent fp adds: each waits 3 cycles for its input.
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg a = b.fldi(1.0);   // issues cycle 0, ready 1
  const Reg t1 = b.faddi(a, 1.0);   // issue 1, ready 4
  const Reg t2 = b.faddi(t1, 1.0);  // issue 4, ready 7
  b.faddi(t2, 1.0);                 // issue 7
  b.ret();                          // issue 7 (same cycle; no deps)
  std::vector<IssueEvent> trace;
  SimOptions opts;
  opts.trace = &trace;
  const SimResult r = run_straightline(fn, 8, std::move(opts));
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace[0].cycle, 0u);
  EXPECT_EQ(trace[1].cycle, 1u);
  EXPECT_EQ(trace[2].cycle, 4u);
  EXPECT_EQ(trace[3].cycle, 7u);
}

TEST(Simulator, IssueWidthLimitsParallelism) {
  // Eight independent LDIs on a 2-wide machine need 4 cycles.
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  for (int i = 0; i < 8; ++i) b.ldi(i);
  b.ret();
  std::vector<IssueEvent> trace;
  SimOptions opts;
  opts.trace = &trace;
  const SimResult r = run_straightline(fn, 2, std::move(opts));
  ASSERT_TRUE(r.ok);
  ASSERT_GE(trace.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(trace[static_cast<size_t>(i)].cycle,
                                        static_cast<std::uint64_t>(i / 2));
}

TEST(Simulator, OneBranchSlotPerCycle) {
  // Two untaken branches cannot issue in the same cycle.
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId next = b.create_block("next");
  b.set_block(e);
  const Reg a = b.ldi(10);
  b.bri(Opcode::BLT, a, 5, next);  // untaken
  b.bri(Opcode::BLT, a, 6, next);  // untaken
  b.jump(next);
  b.set_block(next);
  b.ret();
  fn.renumber();
  std::vector<IssueEvent> trace;
  SimOptions opts;
  opts.trace = &trace;
  Memory mem;
  Simulator sim(MachineModel::issue(8), std::move(opts));
  const SimResult r = sim.run(fn, mem);
  ASSERT_TRUE(r.ok);
  // ldi@0; br1@1 (needs a ready); br2@2; jump@3; ret@4.
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace[1].cycle, 1u);
  EXPECT_EQ(trace[2].cycle, 2u);
  EXPECT_EQ(trace[3].cycle, 3u);
  EXPECT_EQ(trace[4].cycle, 4u);
}

TEST(Simulator, TakenBranchEndsIssueCycle) {
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId next = b.create_block("next");
  b.set_block(e);
  b.jump(next);  // taken at cycle 0
  b.set_block(next);
  b.ldi(1);  // must wait for redirect: cycle 1
  b.ret();
  fn.renumber();
  std::vector<IssueEvent> trace;
  SimOptions opts;
  opts.trace = &trace;
  Memory mem;
  Simulator sim(MachineModel::issue(8), std::move(opts));
  const SimResult r = sim.run(fn, mem);
  ASSERT_TRUE(r.ok);
  ASSERT_GE(trace.size(), 2u);
  EXPECT_EQ(trace[0].cycle, 0u);
  EXPECT_EQ(trace[1].cycle, 1u);
}

TEST(Simulator, LoadWaitsForStoreToSameAddress) {
  Function fn;
  fn.add_array({"A", 0, 8, 1, false});
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg base = b.ldi(0);       // cycle 0
  const Reg v = b.ldi(7);          // cycle 0
  b.st(base, 0, v, 0);             // cycle 1 (base,v ready)
  const Reg w = b.ld(base, 0, 0);  // must wait for store done: cycle 2
  b.ret();
  std::vector<IssueEvent> trace;
  SimOptions opts;
  opts.trace = &trace;
  const SimResult r = run_straightline(fn, 8, std::move(opts));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.regs.get_int(w.id), 7);
  ASSERT_GE(trace.size(), 4u);
  EXPECT_EQ(trace[2].cycle, 1u);  // store
  EXPECT_EQ(trace[3].cycle, 2u);  // load delayed by store completion
}

TEST(Simulator, InitRegistersFlowIn) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg a = fn.new_int_reg();
  const Reg f = fn.new_fp_reg();
  const Reg s = b.iaddi(a, 1);
  const Reg g = b.faddi(f, 0.5);
  b.ret();
  fn.renumber();
  SimOptions opts;
  opts.init_ints = {41};
  opts.init_fps = {1.25};
  Memory mem;
  Simulator sim(MachineModel::issue(4), std::move(opts));
  const SimResult r = sim.run(fn, mem);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.regs.get_int(s.id), 42);
  EXPECT_DOUBLE_EQ(r.regs.get_fp(g.id), 1.75);
}

TEST(Simulator, InstructionBudgetGuardsInfiniteLoops) {
  Function fn;
  IRBuilder b(fn);
  const BlockId loop = b.create_block("loop");
  b.set_block(loop);
  b.jump(loop);
  b.create_block("tail");
  b.set_block(BlockId{1});
  b.ret();
  fn.renumber();
  SimOptions opts;
  opts.max_instructions = 1000;
  Memory mem;
  Simulator sim(MachineModel::issue(1), std::move(opts));
  const SimResult r = sim.run(fn, mem);
  EXPECT_FALSE(r.ok);
}

TEST(Simulator, SeededArraysAreDeterministic) {
  Function fn;
  fn.add_array({"A", 1000, 4, 16, true});
  fn.add_array({"N", 2000, 8, 8, false});
  Memory m1;
  Memory m2;
  seed_arrays(fn, m1);
  seed_arrays(fn, m2);
  EXPECT_TRUE(m1 == m2);
  // fp values positive and bounded; int values in [1,16].
  for (int i = 0; i < 16; ++i) {
    const double v = m1.load_fp(1000 + 4 * i);
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 3.0);
  }
  for (int i = 0; i < 8; ++i) {
    const std::int64_t v = m1.load_int(2000 + 8 * i);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 16);
  }
}

}  // namespace
}  // namespace ilp
