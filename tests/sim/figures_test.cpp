// Calibration against the paper's Section 2 examples (Figures 1, 3, 5, 6, 7).
//
// The paper's issue-time tables assume an infinite-issue in-order machine.
// Where a figure's cycle count is for *scheduled* code (the paper prints
// unscheduled code with post-scheduling issue times), we hand-emit the
// schedule here; the list-scheduler tests later verify our scheduler finds
// schedules at least as good.
//
// Two deliberate deviations from the paper's illustrative labels (the
// evaluation figures come from execution-driven simulation, which is what we
// measure):
//  * Fig 3b is labeled "8 cycles/iteration" (completion of the accumulator
//    add); steady-state initiation interval under execution is 7.
//  * Fig 5b's "6 cycles" is post-scheduling; the unscheduled body runs at 7.
#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "ir/builder.hpp"
#include "sim/simulator.hpp"

namespace ilp {
namespace {

using ilp::testing::cycles_per_iteration;
using ilp::testing::infinite_issue;

TEST(Figures, Fig1bOriginalLoopRunsAt7CyclesPerIteration) {
  const double cpi =
      cycles_per_iteration(ilp::testing::make_fig1_loop, 50, 150, infinite_issue());
  EXPECT_DOUBLE_EQ(cpi, 7.0);
}

TEST(Figures, Fig1bComputesVectorAdd) {
  const Function fn = ilp::testing::make_fig1_loop(32);
  const RunOutcome out = run_seeded(fn, infinite_issue());
  ASSERT_TRUE(out.result.ok) << out.result.error;
  Memory ref;
  seed_arrays(fn, ref);
  for (int j = 0; j < 32; ++j) {
    const double a = ref.load_fp(1000 + 4 * j);
    const double b = ref.load_fp(9000 + 4 * j);
    EXPECT_DOUBLE_EQ(out.memory.load_fp(17000 + 4 * j), a + b) << "j=" << j;
  }
}

// Figure 1c: the same loop unrolled 3x without renaming, in the paper's
// program order.  19 cycles / 3 iterations.
Function make_fig1c(std::int64_t n) {
  Function fn("fig1c");
  const std::int32_t A = fn.add_array({"A", 1000, 4, n, true});
  const std::int32_t B = fn.add_array({"B", 9000, 4, n, true});
  const std::int32_t C = fn.add_array({"C", 17000, 4, n, true});
  IRBuilder b(fn);
  const BlockId entry = b.create_block("entry");
  const BlockId loop = b.create_block("L1");
  const BlockId exit = b.create_block("exit");
  b.set_block(entry);
  const Reg r1 = b.ldi(0);
  const Reg r5 = b.ldi(4 * n);
  b.jump(loop);
  b.set_block(loop);
  const Reg r2 = fn.new_fp_reg();
  const Reg r3 = fn.new_fp_reg();
  const Reg r4 = fn.new_fp_reg();
  for (int u = 0; u < 3; ++u) {
    b.fld_to(r2, r1, fn.array(A)->base, A);
    b.fld_to(r3, r1, fn.array(B)->base, B);
    b.fadd_to(r4, r2, r3);
    b.fst(r1, fn.array(C)->base, r4, C);
    b.iaddi_to(r1, r1, 4);
  }
  b.br(Opcode::BLT, r1, r5, loop);
  b.set_block(exit);
  b.ret();
  fn.renumber();
  return fn;
}

TEST(Figures, Fig1cUnrolledRunsAt19CyclesPer3Iterations) {
  const double cpg = cycles_per_iteration(make_fig1c, 51, 150, infinite_issue());
  EXPECT_DOUBLE_EQ(cpg * 3.0, 19.0);
}

// Figure 1d: unrolled 3x + renamed, hand-emitted in scheduled order.
// 8 cycles / 3 iterations.
Function make_fig1d(std::int64_t n) {
  Function fn("fig1d");
  const std::int32_t A = fn.add_array({"A", 1000, 4, n, true});
  const std::int32_t B = fn.add_array({"B", 9000, 4, n, true});
  const std::int32_t C = fn.add_array({"C", 17000, 4, n, true});
  IRBuilder b(fn);
  const BlockId entry = b.create_block("entry");
  const BlockId loop = b.create_block("L1");
  const BlockId exit = b.create_block("exit");
  b.set_block(entry);
  const Reg r11 = b.ldi(0);
  const Reg r5 = b.ldi(4 * n);
  b.jump(loop);

  b.set_block(loop);
  const Reg r12 = fn.new_int_reg();
  const Reg r13 = fn.new_int_reg();
  const std::int64_t ab = fn.array(A)->base;
  const std::int64_t bb = fn.array(B)->base;
  const std::int64_t cb = fn.array(C)->base;
  const Reg a1 = b.fld(r11, ab, A);
  const Reg b1 = b.fld(r11, bb, B);
  b.iaddi_to(r12, r11, 4);
  const Reg a2 = b.fld(r12, ab, A);
  const Reg b2 = b.fld(r12, bb, B);
  b.iaddi_to(r13, r12, 4);
  const Reg a3 = b.fld(r13, ab, A);
  const Reg b3 = b.fld(r13, bb, B);
  const Reg s1 = b.fadd(a1, b1);
  const Reg s2 = b.fadd(a2, b2);
  const Reg s3 = b.fadd(a3, b3);
  b.fst(r11, cb, s1, C);
  b.iaddi_to(r11, r13, 4);  // after the store that reads the old r11 (WAR)
  b.fst(r12, cb, s2, C);
  b.fst(r13, cb, s3, C);
  b.br(Opcode::BLT, r11, r5, loop);

  b.set_block(exit);
  b.ret();
  fn.renumber();
  return fn;
}

TEST(Figures, Fig1dUnrolledRenamedRunsAt8CyclesPer3Iterations) {
  const double cpg = cycles_per_iteration(make_fig1d, 51, 150, infinite_issue());
  EXPECT_DOUBLE_EQ(cpg * 3.0, 8.0);
}

TEST(Figures, Fig1dStillComputesVectorAdd) {
  const Function ref = ilp::testing::make_fig1_loop(30);
  const Function opt = make_fig1d(30);
  const RunOutcome a = run_seeded(ref, infinite_issue());
  const RunOutcome b = run_seeded(opt, infinite_issue());
  EXPECT_EQ(compare_observable(ref, a, b), "");
}

TEST(Figures, Fig3bMatmulInnerLoopSteadyState) {
  // Paper labels the displayed table "8 cycles/iteration" (accumulator
  // completion); execution-driven steady state is 7 — see file comment.
  const double cpi =
      cycles_per_iteration(ilp::testing::make_fig3_loop, 50, 150, infinite_issue());
  EXPECT_DOUBLE_EQ(cpi, 7.0);
}

TEST(Figures, Fig3bComputesDotProductIntoC) {
  const std::int64_t n = 24;
  const Function fn = ilp::testing::make_fig3_loop(n);
  const RunOutcome out = run_seeded(fn, infinite_issue());
  ASSERT_TRUE(out.result.ok) << out.result.error;
  Memory ref;
  seed_arrays(fn, ref);
  double acc = ref.load_fp(17000);
  for (int k = 0; k < n; ++k)
    acc += ref.load_fp(1000 + 4 * k) * ref.load_fp(9000 + 32 * k);  // B stride r8=32
  EXPECT_NEAR(out.memory.load_fp(17000), acc, 1e-9);
}

TEST(Figures, Fig5bStridedLoopSteadyState) {
  // 7 cycles unscheduled; the paper's "6 cycles" is post-scheduling and is
  // verified in the scheduler tests.
  const double cpi =
      cycles_per_iteration(ilp::testing::make_fig5_loop, 50, 150, infinite_issue());
  EXPECT_DOUBLE_EQ(cpi, 7.0);
}

TEST(Figures, Fig6bSearchLoopRunsAt7CyclesPerIteration) {
  auto run_n = [&](std::int64_t n) -> std::uint64_t {
    const Function fn = ilp::testing::make_fig6_loop(n);
    Memory mem;
    ilp::testing::fill_fig6_memory(fn, mem, n);
    Simulator sim(infinite_issue());
    const SimResult r = sim.run(fn, mem);
    EXPECT_TRUE(r.ok) << r.error;
    return r.cycles;
  };
  const std::uint64_t c1 = run_n(50);
  const std::uint64_t c2 = run_n(150);
  EXPECT_EQ((c2 - c1) / 100, 7u);
}

TEST(Figures, Fig7SequentialExpressionCompletesIn22Cycles) {
  const Function fn = ilp::testing::make_fig7_expr();
  std::vector<IssueEvent> trace;
  SimOptions opts;
  opts.trace = &trace;
  Memory mem;
  Simulator sim(infinite_issue(), std::move(opts));
  const SimResult r = sim.run(fn, mem);
  ASSERT_TRUE(r.ok);
  // Instruction uids: 0..5 = constants, 6 = fadd, 7..9 = fmuls, 10 = fdiv.
  std::uint64_t t_add = 0;
  std::uint64_t t_div = 0;
  for (const auto& ev : trace) {
    if (ev.uid == 6) t_add = ev.cycle;
    if (ev.uid == 10) t_div = ev.cycle;
  }
  // add(3) + mul(3) + mul(3) + mul(3) = 12 cycles of issue delay, then the
  // divide takes 10 more: 22 cycles from first issue to result.
  EXPECT_EQ(t_div - t_add, 12u);
  EXPECT_DOUBLE_EQ(r.regs.get_fp(fn.live_out()[0].id), 2.0 * (3.0 + 4.0) * 5.0 * 6.0 / 7.0);
}

}  // namespace
}  // namespace ilp
