// Properties of the cycle-accounting profiler (sim/profile.hpp):
//
//   * Conservation: every profile partitions the machine's whole slot
//     capacity — sum over causes == width * cycles exactly, per-block column
//     sums match the globals, the occupancy histogram sums to the cycle
//     count, and the per-opcode tallies match the issued/stalled totals.
//     Checked across the Table 2 suite, the nest suite, and a fuzz corpus,
//     at every level x width x scheduler.
//   * Off-path purity: SimOptions::profile == nullptr is byte-identical to
//     the pre-profiler simulator — cycles, instructions, branches, stalls,
//     the issue trace, final memory and registers all match exactly.
//   * Skip equivalence: stall-cycle skipping must not change attribution.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fixtures.hpp"
#include "frontend/compile.hpp"
#include "harness/experiment.hpp"
#include "sim/profile.hpp"
#include "sim/simulator.hpp"
#include "trans/level.hpp"
#include "workloads/nest_suite.hpp"
#include "workloads/suite.hpp"

namespace ilp {
namespace {

using testing::fuzz_seed_count;
using testing::random_nest_program;
using testing::random_program;

struct ProfiledRun {
  RunOutcome out;
  CycleProfile profile;
};

ProfiledRun run_profiled(const Function& fn, const MachineModel& m,
                         bool skip = true) {
  ProfiledRun r;
  SimOptions opts;
  opts.skip_stall_cycles = skip;
  opts.profile = &r.profile;
  r.out = run_seeded(fn, m, std::move(opts));
  return r;
}

// The full invariant bundle for one successful run.
void expect_conserves(const ProfiledRun& r, const std::string& label) {
  ASSERT_TRUE(r.out.result.ok) << label << ": " << r.out.result.error;
  EXPECT_EQ(r.profile.check_conservation(), "") << label;
  EXPECT_EQ(r.profile.cycles, r.out.result.cycles) << label;
  EXPECT_EQ(r.profile.slots[static_cast<std::size_t>(StallCause::Issued)],
            r.out.result.instructions)
      << label;
  // Full-stall cycles are exactly the zero-occupancy bin.
  EXPECT_EQ(r.profile.occupancy[0], r.out.result.stall_cycles) << label;
}

void expect_same_profile(const CycleProfile& a, const CycleProfile& b,
                         const std::string& label) {
  EXPECT_EQ(a.width, b.width) << label;
  EXPECT_EQ(a.cycles, b.cycles) << label;
  EXPECT_EQ(a.slots, b.slots) << label;
  EXPECT_EQ(a.block_slots, b.block_slots) << label;
  EXPECT_EQ(a.issued_by_opcode, b.issued_by_opcode) << label;
  EXPECT_EQ(a.stall_by_opcode, b.stall_by_opcode) << label;
  EXPECT_EQ(a.occupancy, b.occupancy) << label;
}

// Acceptance grid: all 40 workloads x Lev0-4 x widths 1/2/4/8 x both
// scheduling backends conserve exactly.
TEST(ProfileConservation, WorkloadGridBothSchedulers) {
  for (const Workload& w : workload_suite()) {
    for (OptLevel level : kLevels) {
      for (int width : kIssueWidths) {
        for (SchedulerKind sched : {SchedulerKind::List, SchedulerKind::Modulo}) {
          const MachineModel m = MachineModel::issue(width);
          CompileOptions copts;
          copts.scheduler = sched;
          auto compiled = try_compile_workload(w, level, m, copts);
          if (!compiled) continue;
          const std::string label =
              w.name + " " + level_name(level) + " issue-" +
              std::to_string(width) +
              (sched == SchedulerKind::Modulo ? " modulo" : " list");
          expect_conserves(run_profiled(compiled->fn, m), label);
        }
      }
    }
  }
}

// Nest-restructured code (fuse/interchange/tile enabled) conserves too; the
// restructured CFGs have the multi-loop shapes the per-block matrix indexes.
TEST(ProfileConservation, NestSuiteWithRestructuring) {
  CompileOptions copts;
  copts.nest.fuse = true;
  copts.nest.interchange = true;
  copts.nest.tile = true;
  for (const Workload& w : nest_suite()) {
    for (OptLevel level : {OptLevel::Conv, OptLevel::Lev2, OptLevel::Lev4}) {
      for (int width : {1, 8}) {
        const MachineModel m = MachineModel::issue(width);
        auto compiled = try_compile_workload(w, level, m, copts);
        if (!compiled) continue;
        expect_conserves(run_profiled(compiled->fn, m),
                         w.name + " nest " + level_name(level) + " issue-" +
                             std::to_string(width));
      }
    }
  }
}

// Fuzz corpus: random programs through the full pipeline.  Width and
// scheduler rotate with the seed so the corpus covers the whole grid while
// every level sees every seed; skip-on and skip-off attribution must agree
// slot for slot.
TEST(ProfileConservation, FuzzCorpusAndSkipEquivalence) {
  const std::uint64_t n = fuzz_seed_count(200);
  for (std::uint64_t seed = 1; seed <= n; ++seed) {
    const std::string src = seed % 3 == 0 ? random_nest_program(seed)
                                          : random_program(seed);
    const int width = kIssueWidths[seed % kIssueWidths.size()];
    const SchedulerKind sched =
        seed % 2 == 0 ? SchedulerKind::Modulo : SchedulerKind::List;
    for (OptLevel level : kLevels) {
      DiagnosticEngine diags;
      auto r = dsl::compile(src, diags);
      ASSERT_TRUE(r.has_value()) << diags.to_string() << "\n" << src;
      const MachineModel m = MachineModel::issue(width);
      CompileOptions copts;
      copts.scheduler = sched;
      compile_at_level(r->fn, level, m, copts);
      const std::string label = "seed=" + std::to_string(seed) + " " +
                                level_name(level) + " issue-" +
                                std::to_string(width);
      const ProfiledRun skip_on = run_profiled(r->fn, m, /*skip=*/true);
      expect_conserves(skip_on, label);
      const ProfiledRun skip_off = run_profiled(r->fn, m, /*skip=*/false);
      expect_conserves(skip_off, label + " noskip");
      expect_same_profile(skip_on.profile, skip_off.profile, label);
    }
  }
}

// Profiling off must be byte-identical to profiling on in every observable:
// the profiled instantiation may only *add* bookkeeping, never perturb
// timing, trace, memory or registers.  fp_tolerance 0 makes the memory and
// live-out comparison exact.
TEST(ProfileOffPath, ByteIdenticalObservables) {
  for (const Workload& w : workload_suite()) {
    for (OptLevel level : {OptLevel::Conv, OptLevel::Lev4}) {
      const MachineModel m = MachineModel::issue(8);
      auto compiled = try_compile_workload(w, level, m);
      if (!compiled) continue;
      const std::string label = w.name + " " + level_name(level);

      std::vector<IssueEvent> trace_on, trace_off;
      CycleProfile profile;
      SimOptions on;
      on.profile = &profile;
      on.trace = &trace_on;
      SimOptions off;
      off.trace = &trace_off;
      const RunOutcome a = run_seeded(compiled->fn, m, std::move(on));
      const RunOutcome b = run_seeded(compiled->fn, m, std::move(off));

      ASSERT_TRUE(a.result.ok) << label;
      ASSERT_TRUE(b.result.ok) << label;
      EXPECT_EQ(a.result.cycles, b.result.cycles) << label;
      EXPECT_EQ(a.result.instructions, b.result.instructions) << label;
      EXPECT_EQ(a.result.branches, b.result.branches) << label;
      EXPECT_EQ(a.result.stall_cycles, b.result.stall_cycles) << label;
      ASSERT_EQ(trace_on.size(), trace_off.size()) << label;
      for (std::size_t i = 0; i < trace_on.size(); ++i) {
        EXPECT_EQ(trace_on[i].uid, trace_off[i].uid) << label;
        EXPECT_EQ(trace_on[i].cycle, trace_off[i].cycle) << label;
      }
      EXPECT_EQ(compare_observable(compiled->fn, a, b, /*fp_tolerance=*/0.0), "")
          << label;
    }
  }
}

// Targeted attribution checks on hand-built programs with known timelines.

// Figure 1's loop: six instructions per iteration ending in a taken branch.
// On a wide machine the dominant losses are the redirect squash and the
// load-use interlocks; drain appears exactly once (the RET cycle).
TEST(ProfileAttribution, Fig1LoopShapes) {
  const Function fn = testing::make_fig1_loop(64);
  const ProfiledRun r = run_profiled(fn, testing::infinite_issue());
  expect_conserves(r, "fig1");
  const auto slot = [&](StallCause c) {
    return r.profile.slots[static_cast<std::size_t>(c)];
  };
  EXPECT_GT(slot(StallCause::BranchFetch), 0u);
  EXPECT_GT(slot(StallCause::MemWait), 0u);  // fadd waits on its two loads
  EXPECT_GT(slot(StallCause::Drain), 0u);
  // Drain is confined to the final cycle's leftover slots.
  EXPECT_LT(slot(StallCause::Drain), static_cast<std::uint64_t>(r.profile.width));
}

// A load stalled behind an aliasing store is memory latency, not a register
// interlock: issue-1 machine, store latency 6 -> five full mem_wait cycles.
TEST(ProfileAttribution, AliasingStoreIsMemWait) {
  Function fn("alias");
  const std::int32_t A = fn.add_array({"A", 1000, 8, 4, false});
  IRBuilder b(fn);
  const BlockId entry = b.create_block("entry");
  b.set_block(entry);
  const Reg idx = b.ldi(0);
  const Reg v1 = b.ldi(7);
  b.st(idx, fn.array(A)->base, v1, A);
  const Reg got = b.ld(idx, fn.array(A)->base, A);
  fn.add_live_out(got);
  b.ret();
  fn.renumber();

  MachineModel m = MachineModel::issue(1);
  m.lat_store = 6;
  const ProfiledRun r = run_profiled(fn, m);
  expect_conserves(r, "alias");
  EXPECT_EQ(r.profile.slots[static_cast<std::size_t>(StallCause::MemWait)], 5u);
  EXPECT_EQ(r.profile.slots[static_cast<std::size_t>(StallCause::RawWait)], 0u);
  // The blocked head was the load.
  EXPECT_EQ(r.profile.stall_by_opcode[static_cast<std::size_t>(Opcode::LD)], 5u);
}

// A register chain with no memory in sight is raw_wait; and a value loaded
// from memory then consumed counts its consumer's wait as mem_wait (the
// latest producer was a load).
TEST(ProfileAttribution, RawVersusLoadProducer) {
  const Function expr = testing::make_fig7_expr();
  const ProfiledRun r = run_profiled(expr, testing::infinite_issue());
  expect_conserves(r, "fig7");
  EXPECT_GT(r.profile.slots[static_cast<std::size_t>(StallCause::RawWait)], 0u);
  EXPECT_EQ(r.profile.slots[static_cast<std::size_t>(StallCause::MemWait)], 0u);
}

}  // namespace
}  // namespace ilp
