// Machine-model tests: the latency table must match the paper's Table 1.
#include "machine/machine.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "sim/simulator.hpp"

namespace ilp {
namespace {

TEST(Machine, Table1Latencies) {
  const MachineModel m = MachineModel::issue(4);
  // Int ALU = 1
  for (Opcode op : {Opcode::IADD, Opcode::ISUB, Opcode::ISHL, Opcode::ISHRA,
                    Opcode::ISHRL, Opcode::IAND, Opcode::IOR, Opcode::IXOR, Opcode::IMOV,
                    Opcode::INEG, Opcode::IMAX, Opcode::IMIN, Opcode::LDI})
    EXPECT_EQ(m.latency(op), 1) << opcode_name(op);
  // Int multiply = 3, divide = 10 (remainder shares the divider).
  EXPECT_EQ(m.latency(Opcode::IMUL), 3);
  EXPECT_EQ(m.latency(Opcode::IMULH), 3);
  EXPECT_EQ(m.latency(Opcode::IDIV), 10);
  EXPECT_EQ(m.latency(Opcode::IREM), 10);
  // FP ALU = 3, multiply = 3, divide = 10, conversion = 3.
  for (Opcode op : {Opcode::FADD, Opcode::FSUB, Opcode::FMAX, Opcode::FMIN})
    EXPECT_EQ(m.latency(op), 3) << opcode_name(op);
  EXPECT_EQ(m.latency(Opcode::FMUL), 3);
  EXPECT_EQ(m.latency(Opcode::FDIV), 10);
  EXPECT_EQ(m.latency(Opcode::ITOF), 3);
  EXPECT_EQ(m.latency(Opcode::FTOI), 3);
  // Memory: load = 2, store = 1.
  EXPECT_EQ(m.latency(Opcode::LD), 2);
  EXPECT_EQ(m.latency(Opcode::FLD), 2);
  EXPECT_EQ(m.latency(Opcode::ST), 1);
  EXPECT_EQ(m.latency(Opcode::FST), 1);
  // Branch = 1, 1 slot.
  EXPECT_EQ(m.latency(Opcode::BLT), 1);
  EXPECT_EQ(m.latency(Opcode::JUMP), 1);
  EXPECT_EQ(m.branch_slots, 1);
}

TEST(Machine, DescribeMentionsKeyParameters) {
  const std::string d = MachineModel::issue(8).describe();
  EXPECT_NE(d.find("issue-8"), std::string::npos);
  EXPECT_NE(d.find("IntDiv=10"), std::string::npos);
  EXPECT_NE(d.find("Load=2"), std::string::npos);
}

TEST(Machine, CustomLatenciesFlowThroughSimulation) {
  // Doubling the fp-add latency doubles a pure fadd chain's runtime.
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  Reg t = b.fldi(1.0);
  for (int i = 0; i < 10; ++i) t = b.faddi(t, 1.0);
  b.ret();
  fn.add_live_out(t);
  fn.renumber();

  MachineModel fast = MachineModel::issue(8);
  MachineModel slow = MachineModel::issue(8);
  slow.lat_fp_alu = 6;
  Memory m1;
  Memory m2;
  const SimResult r1 = Simulator(fast).run(fn, m1);
  const SimResult r2 = Simulator(slow).run(fn, m2);
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_DOUBLE_EQ(r1.regs.get_fp(fn.live_out()[0].id), 11.0);
  EXPECT_GT(r2.cycles, r1.cycles + 25);  // ~10 extra 3-cycle bubbles
}

TEST(Machine, MulhComputesHighBits) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg a = b.ldi(INT64_MAX);
  const Reg c = b.ldi(16);
  const Reg hi = fn.new_int_reg();
  b.append(make_binary(Opcode::IMULH, hi, a, c));
  const Reg neg = b.ldi(-1);
  const Reg hi2 = fn.new_int_reg();
  b.append(make_binary(Opcode::IMULH, hi2, neg, c));
  b.ret();
  fn.renumber();
  Memory mem;
  const SimResult r = Simulator(MachineModel::issue(8)).run(fn, mem);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.regs.get_int(hi.id),
            static_cast<std::int64_t>((static_cast<__int128>(INT64_MAX) * 16) >> 64));
  EXPECT_EQ(r.regs.get_int(hi2.id), -1);  // (-1 * 16) >> 64 == -1
}

}  // namespace
}  // namespace ilp
