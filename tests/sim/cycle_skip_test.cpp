// Equivalence tests for the simulator's stall cycle-skipping
// (SimOptions::skip_stall_cycles): skipping straight to the blocking
// operand's ready cycle must leave every observable — cycles, instructions,
// branches, stall_cycles, the issue trace, final memory and registers —
// identical to per-cycle evaluation.  Also regression-tests the flat
// mem_ready table (support/flat_map.hpp) against aliasing and growth.
#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.hpp"
#include "ir/builder.hpp"
#include "machine/machine.hpp"
#include "sim/simulator.hpp"
#include "workloads/suite.hpp"

namespace ilp {
namespace {

struct TracedRun {
  RunOutcome out;
  std::vector<IssueEvent> trace;
};

TracedRun run_traced(const Function& fn, const MachineModel& m, bool skip) {
  TracedRun r;
  SimOptions opts;
  opts.skip_stall_cycles = skip;
  opts.trace = &r.trace;
  r.out = run_seeded(fn, m, std::move(opts));
  return r;
}

void expect_equivalent(const Function& fn, const MachineModel& m,
                       const std::string& label) {
  const TracedRun on = run_traced(fn, m, /*skip=*/true);
  const TracedRun off = run_traced(fn, m, /*skip=*/false);
  ASSERT_EQ(on.out.result.ok, off.out.result.ok) << label;
  if (!on.out.result.ok) return;
  EXPECT_EQ(on.out.result.cycles, off.out.result.cycles) << label;
  EXPECT_EQ(on.out.result.instructions, off.out.result.instructions) << label;
  EXPECT_EQ(on.out.result.branches, off.out.result.branches) << label;
  EXPECT_EQ(on.out.result.stall_cycles, off.out.result.stall_cycles) << label;
  ASSERT_EQ(on.trace.size(), off.trace.size()) << label;
  for (std::size_t i = 0; i < on.trace.size(); ++i) {
    EXPECT_EQ(on.trace[i].uid, off.trace[i].uid) << label << " event " << i;
    EXPECT_EQ(on.trace[i].cycle, off.trace[i].cycle) << label << " event " << i;
  }
  EXPECT_EQ(compare_observable(fn, on.out, off.out), "") << label;
}

// Every workload, compiled at every level, simulated with skipping on and
// off on narrow and wide machines.  Widths 1 and 8 bracket the grid: width 1
// maximizes stall runs (best case for skipping), width 8 exercises partial
// issue cycles before a stall.
TEST(CycleSkip, EquivalentAcrossWorkloads) {
  for (const Workload& w : workload_suite()) {
    for (OptLevel level : kLevels) {
      for (int width : {1, 8}) {
        const MachineModel m = MachineModel::issue(width);
        auto compiled = try_compile_workload(w, level, m);
        if (!compiled) continue;
        expect_equivalent(compiled->fn, m,
                          w.name + " " + level_name(level) + " issue-" +
                              std::to_string(width));
      }
    }
  }
}

// Two stores to the same address: the load must wait for the *latest* store's
// completion, i.e. the mem_ready entry must be overwritten, not kept at its
// first value.  Uses a long store latency so a wrong answer visibly changes
// the cycle count.
TEST(CycleSkip, LoadWaitsForLatestAliasingStore) {
  Function fn("alias");
  const std::int32_t A = fn.add_array({"A", 1000, 8, 4, false});
  IRBuilder b(fn);
  const BlockId entry = b.create_block("entry");
  b.set_block(entry);
  const Reg idx = b.ldi(0);
  const Reg v1 = b.ldi(7);
  const Reg v2 = b.ldi(9);
  b.st(idx, fn.array(A)->base, v1, A);
  b.st(idx, fn.array(A)->base, v2, A);  // overwrites the mem_ready entry
  const Reg got = b.ld(idx, fn.array(A)->base, A);
  fn.add_live_out(got);
  b.ret();
  fn.renumber();

  MachineModel m = MachineModel::issue(1);
  m.lat_store = 6;

  const TracedRun on = run_traced(fn, m, /*skip=*/true);
  const TracedRun off = run_traced(fn, m, /*skip=*/false);
  ASSERT_TRUE(on.out.result.ok) << on.out.result.error;
  ASSERT_TRUE(off.out.result.ok) << off.out.result.error;
  // Issue-1 timeline: ldi@0, ldi@1, ldi@2, st@3, st@4, ld waits until the
  // second store completes at 4+6=10, ret@11 -> 12 cycles, 5 full stalls.
  EXPECT_EQ(on.out.result.cycles, 12u);
  EXPECT_EQ(on.out.result.stall_cycles, 5u);
  EXPECT_EQ(on.out.result.cycles, off.out.result.cycles);
  EXPECT_EQ(on.out.result.stall_cycles, off.out.result.stall_cycles);
  EXPECT_EQ(on.out.result.regs.get_int(got.id), 9);
}

// Stores to many distinct addresses force the flat mem_ready table through
// several growth rehashes mid-run; the loads that follow must still observe
// the right per-address ready cycles and values.
TEST(CycleSkip, ManyDistinctAddressesSurviveTableGrowth) {
  constexpr std::int64_t kN = 1000;
  Function fn("growth");
  const std::int32_t A = fn.add_array({"A", 1000, 8, kN, false});
  IRBuilder b(fn);
  const BlockId entry = b.create_block("entry");
  const BlockId store_loop = b.create_block("stores");
  const BlockId load_pre = b.create_block("load_pre");
  const BlockId load_loop = b.create_block("loads");
  const BlockId exit = b.create_block("exit");

  b.set_block(entry);
  const Reg i = b.ldi(0);
  const Reg limit = b.ldi(8 * kN);
  const Reg sum = b.ldi(0);
  b.jump(store_loop);

  b.set_block(store_loop);
  b.st(i, fn.array(A)->base, i, A);
  b.iaddi_to(i, i, 8);
  b.br(Opcode::BLT, i, limit, store_loop);

  b.set_block(load_pre);
  b.ldi_to(i, 0);
  b.jump(load_loop);

  b.set_block(load_loop);
  const Reg v = b.ld(i, fn.array(A)->base, A);
  b.iadd_to(sum, sum, v);
  b.iaddi_to(i, i, 8);
  b.br(Opcode::BLT, i, limit, load_loop);

  b.set_block(exit);
  b.ret();
  fn.add_live_out(sum);
  fn.renumber();

  const MachineModel m = MachineModel::issue(4);
  expect_equivalent(fn, m, "growth");
}

}  // namespace
}  // namespace ilp
