// Shared test helpers: construction of the paper's example loops (Figures 1,
// 3, 5, 6, 7), steady-state cycle measurement, and the randomized DSL
// program generator used by the differential fuzz tests, the server tests
// and the ilp_loadgen corpus.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>

#include "ir/builder.hpp"
#include "ir/function.hpp"
#include "machine/machine.hpp"
#include "sim/simulator.hpp"
#include "support/strings.hpp"

namespace ilp::testing {

// --- Randomized DSL corpus ---------------------------------------------------

// Deterministic 64-bit LCG used by all property-based tests.  next() exposes
// the top 47 bits of the state; range() draws without modulo bias (rejection
// sampling over the 47-bit output range), so small spans are exactly uniform
// — the old `next() % span` skewed low values and with them the generated
// statement mix.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed * 2654435761u + 0x9e3779b97f4a7c15ull) {}

  std::uint64_t next() {
    s_ = s_ * 6364136223846793005ull + 1442695040888963407ull;
    return s_ >> 17;
  }

  int range(int lo, int hi) {  // inclusive, unbiased
    const auto span = static_cast<std::uint64_t>(hi - lo + 1);
    constexpr std::uint64_t kOutRange = 1ull << 47;  // next() yields [0, 2^47)
    const std::uint64_t limit = kOutRange - kOutRange % span;
    std::uint64_t v;
    do {
      v = next();
    } while (v >= limit);
    return lo + static_cast<int>(v % span);
  }

  bool chance(int percent) { return range(1, 100) <= percent; }

 private:
  std::uint64_t s_;
};

// Scales a fuzz test's seed count by the ILP_FUZZ_SEEDS environment variable:
// unset/empty/invalid keeps the base count; "10" or "10x" multiplies it by 10
// (the nightly extended-fuzz CI job runs with ILP_FUZZ_SEEDS=10x).
inline int fuzz_seed_count(int base) {
  const char* env = std::getenv("ILP_FUZZ_SEEDS");
  if (env == nullptr || *env == '\0') return base;
  char* end = nullptr;
  const long mult = std::strtol(env, &end, 10);
  if (mult <= 0 || end == env) return base;
  return base * static_cast<int>(mult);
}

// Generates a random structurally valid single-nest program over fp arrays
// A..E, int arrays K/L and scalars.  The statement mix deliberately covers
// every transformation family: reductions and searches (expansion), fp and
// int recurrences, subscript offsets (disambiguation), integer
// multiply/divide/remainder by constants whose strength-reduced forms are
// shift/add chains, int-array stores, and — with small probability —
// zero-trip and single-trip loops, the unroll preconditioning edge cases.
inline std::string random_program(std::uint64_t seed) {
  Rng rng(seed);
  int trip;
  switch (rng.range(0, 19)) {
    case 0: trip = 0; break;   // zero-trip: guard branch skips the body
    case 1: trip = 1; break;   // single-trip: preconditioning leaves no kernel
    default: trip = rng.range(5, 90); break;
  }
  const int lo_off = 4;                // room for negative subscript offsets
  const int len = trip + 16;
  const bool nested = rng.chance(35);

  std::string src = "program fuzz\n";
  for (const char* a : {"A", "B", "C", "D", "E"})
    src += strformat("array %s[%d] fp\n", a, len);
  src += strformat("array K[%d] int\n", len);
  src += strformat("array L[%d] int\n", len);
  src +=
      "scalar s fp out\n"
      "scalar t fp\n"
      "scalar m fp init -1.0e30 out\n"
      "scalar n int out\n";

  // Multiplicands whose strength-reduced replacements are single shifts
  // (2^k) and two-shift add/sub chains (2^a +/- 2^b).
  static constexpr int kShiftAddConsts[] = {2, 3, 4, 5, 6, 8, 12, 15, 16, 17};
  auto shift_add_const = [&rng] { return kShiftAddConsts[rng.range(0, 9)]; };

  std::string body;
  const int stmts = rng.range(2, 8);
  bool t_defined = false;
  for (int k = 0; k < stmts; ++k) {
    switch (rng.range(0, 12)) {
      case 0:
        body += strformat("    C[i] = A[i%+d] %c B[i];\n", rng.range(-3, 3),
                          "+-*"[rng.range(0, 2)]);
        break;
      case 1:
        body += strformat("    D[i%+d] = A[i] * %d.5;\n", rng.range(-2, 2),
                          rng.range(0, 3));
        break;
      case 2:
        body += "    s = s + A[i] * B[i];\n";
        break;
      case 3:
        body += "    m = max(m, B[i] - A[i]);\n";
        break;
      case 4:
        body += strformat("    t = A[i] * %d.25 + C[i];\n", rng.range(0, 2));
        t_defined = true;
        break;
      case 5:
        if (t_defined)
          body += "    E[i] = t + B[i];\n";
        else
          body += "    E[i] = B[i] * 2.0;\n";
        break;
      case 6:
        body += strformat("    A[i] = A[i-%d] * 0.5 + B[i];\n", rng.range(1, 4));
        break;
      case 7:
        body += "    s = s + A[i] / (B[i] + 3.0);\n";
        break;
      case 8:
        body += strformat("    n = n + K[i] %% %d + K[i] / %d;\n", rng.range(2, 9),
                          rng.range(2, 9));
        break;
      case 9:
        body += "    E[i] = (A[i] + B[i]) * (C[i] + 1.5) * D[i] / (B[i] + 2.0);\n";
        break;
      case 10:  // int-array store with a shift/add-reducible multiply
        body += strformat("    K[i%+d] = K[i] * %d + %d;\n", rng.range(-2, 2),
                          shift_add_const(), rng.range(0, 7));
        break;
      case 11:  // int store reading the int reduction scalar (loop-carried)
        body += strformat("    L[i] = K[i] * %d - n;\n", shift_add_const());
        break;
      case 12:  // multiply-by-constant operand feeding an int reduction
        body += strformat("    n = n + L[i] * %d;\n", shift_add_const());
        break;
    }
  }
  if (rng.chance(25)) body += "    if (s > 1.0e14) break;\n";

  const std::string inner = strformat("  loop i = %d to %d {\n%s  }\n", lo_off,
                                      lo_off + trip - 1, body.c_str());
  if (nested)
    src += strformat("loop o = 0 to %d {\n%s}\n", rng.range(1, 2), inner.c_str());
  else
    src += inner.substr(2);  // unindent

  // Adjacent second loop: every seed ending in 7 gets one deterministically
  // (so any 10 consecutive seeds contain a multi-loop program — the nest
  // passes and their differential tests need loop sequences in the corpus),
  // plus a random 20% of the rest.  Bounds match the first loop 60% of the
  // time to produce fusion candidates; the rest are non-conformable.
  if (seed % 10 == 7 || rng.chance(20)) {
    const int trip2 = rng.chance(60) ? trip : rng.range(3, 40);
    std::string body2;
    const int stmts2 = rng.range(1, 4);
    for (int k = 0; k < stmts2; ++k) {
      switch (rng.range(0, 4)) {
        case 0: body2 += "    B[i] = A[i] * 1.5;\n"; break;
        case 1: body2 += "    s = s + C[i];\n"; break;
        case 2: body2 += strformat("    K[i] = K[i] + %d;\n", rng.range(1, 5)); break;
        case 3: body2 += strformat("    D[i] = C[i%+d] + A[i];\n", rng.range(-2, 2)); break;
        case 4: body2 += "    E[i] = E[i] * 0.5 + B[i];\n"; break;
      }
    }
    src += strformat("loop i = %d to %d {\n%s}\n", lo_off, lo_off + trip2 - 1,
                     body2.c_str());
  }
  return src;
}

// Generates programs shaped for the affine nest transformations
// (trans/nest/): perfect and imperfect 2-3-deep nests over 2-D arrays with
// every direction-vector class — (=,=), (=,<), (<,=), and the
// interchange-illegal (<,>) — transposed accesses that make interchange
// profitable, loop-carried scalar reductions (which interchange/tiling must
// refuse), adjacent fusable and fusion-preventing loop pairs, and
// multi-statement bodies for fission.  Subscript offsets stay within the +-1
// ring, and loop bounds keep every reference in range.
inline std::string random_nest_program(std::uint64_t seed) {
  Rng rng(seed);
  const int rows = rng.range(4, 8);    // 2-D outer dimension
  const int cols = rng.range(8, 24);   // 2-D inner dimension
  const int ti = rng.range(2, rows - 2);  // outer trip, i in [1, ti]
  const int tj = rng.range(4, cols - 2);  // inner trip, j in [1, tj]
  const int t1 = rng.range(4, 30);        // 1-D loop trip, i in [1, t1]
  const int len1 = t1 + 4;

  std::string src = "program nest\n";
  src += strformat("array M[%d][%d] fp\n", rows, cols);
  src += strformat("array N[%d][%d] fp\n", rows, cols);
  src += strformat("array A[%d] fp\narray B[%d] fp\narray C[%d] fp\n", len1, len1, len1);
  src += strformat("array K[%d] int\n", len1);
  src +=
      "scalar s fp out\n"
      "scalar t fp\n"
      "scalar n int out\n";

  // One statement of the perfect-nest body; the mix covers every direction
  // class plus transposed (interchange-profitable) accesses.
  auto nest_stmt = [&rng](const char* i, const char* j) {
    switch (rng.range(0, 6)) {
      case 0: return strformat("    M[%s][%s] = M[%s][%s] * 1.5 + N[%s][%s];\n",
                               i, j, i, j, i, j);              // (=,=)
      case 1: return strformat("    M[%s][%s] = M[%s][%s-1] + N[%s][%s];\n",
                               i, j, i, j, i, j);              // (=,<) serial inner
      case 2: return strformat("    M[%s][%s] = M[%s-1][%s] + 1.25;\n",
                               i, j, i, j);                    // (<,=)
      case 3: return strformat("    M[%s][%s] = M[%s-1][%s+1] * 0.5;\n",
                               i, j, i, j);                    // (<,>): interchange-illegal
      case 4: return strformat("    M[%s][%s] = M[%s][%s] + N[%s][%s];\n",
                               j, i, j, i, j, i);              // transposed: profitable swap
      case 5: return strformat("    N[%s][%s] = M[%s][%s] * 0.75;\n",
                               i, j, i, j);                    // two-array flow
      default: return strformat("    s = s + M[%s][%s];\n", i, j);  // carried scalar
    }
  };

  auto adjacent_1d_pair = [&] {
    std::string p = strformat("loop i = 1 to %d {\n    A[i] = B[i] * 1.5 + C[i];\n", t1);
    if (rng.chance(40)) p += "    K[i] = K[i] * 3 + 1;\n";
    p += "}\n";
    switch (rng.range(0, 2)) {
      case 0:  // fusable: same bounds, forward (distance <= 0) dependence only
        p += strformat("loop i = 1 to %d {\n    C[i] = A[i] + 2.0;\n}\n", t1);
        break;
      case 1:  // fusion-preventing: reads ahead of the producer
        p += strformat("loop i = 1 to %d {\n    C[i] = A[i+1] + 2.0;\n}\n", t1);
        break;
      case 2:  // non-conformable bounds
        p += strformat("loop i = 2 to %d {\n    C[i] = A[i] + 2.0;\n}\n", t1);
        break;
    }
    return p;
  };

  std::string prog;
  switch (seed % 6) {
    case 0: {  // perfect 2-deep nest
      std::string body;
      const int stmts = rng.range(1, 3);
      for (int k = 0; k < stmts; ++k) body += nest_stmt("i", "j");
      prog = strformat("loop i = 1 to %d {\n  loop j = 1 to %d {\n%s  }\n}\n", ti, tj,
                       body.c_str());
      break;
    }
    case 1: {  // imperfect: scalar work before and after the inner loop
      std::string body = nest_stmt("i", "j");
      prog = strformat(
          "loop i = 1 to %d {\n  t = A[i] * 2.0;\n  loop j = 1 to %d {\n%s"
          "    N[i][j] = N[i][j] + t;\n  }\n  B[i] = t + 1.0;\n}\n",
          ti, tj, body.c_str());
      break;
    }
    case 2: {  // 3-deep: the inner pair is perfect, the outer is not
      std::string body = nest_stmt("j", "k");
      prog = strformat(
          "loop i = 1 to %d {\n  loop j = 1 to %d {\n    loop k = 1 to %d {\n"
          "  %s      N[j][k] = N[j][k] + A[i];\n    }\n  }\n}\n",
          rng.range(1, 2), ti, tj, body.c_str());
      break;
    }
    case 3:  // adjacent 1-D pairs: fusion candidates and rejections
      prog = adjacent_1d_pair();
      break;
    case 4: {  // fission shapes: one loop, independent statement groups
      std::string body = strformat("    A[i] = B[i] * 1.5;\n    C[i] = C[i%+d] + 0.5;\n",
                                   rng.range(-1, 0));
      if (rng.chance(50)) body += "    s = s + B[i];\n";
      if (rng.chance(40)) body += strformat("    K[i] = K[i] * %d + 2;\n", rng.range(2, 5));
      prog = strformat("loop i = 1 to %d {\n%s}\n", t1, body.c_str());
      break;
    }
    default: {  // nest followed by an adjacent 1-D loop
      std::string body = nest_stmt("i", "j");
      prog = strformat("loop i = 1 to %d {\n  loop j = 1 to %d {\n%s  }\n}\n", ti, tj,
                       body.c_str());
      prog += strformat("loop i = 1 to %d {\n    n = n + K[i];\n    B[i] = A[i] + 1.0;\n}\n",
                        t1);
      break;
    }
  }
  src += prog;
  return src;
}

// Measures steady-state cycles per innermost iteration by differencing two
// runs with different trip counts (removes entry/exit overhead exactly for
// loops whose per-iteration cost is constant).
inline double cycles_per_iteration(const std::function<Function(std::int64_t)>& make,
                                   std::int64_t n1, std::int64_t n2,
                                   const MachineModel& machine) {
  const Function f1 = make(n1);
  const Function f2 = make(n2);
  const RunOutcome r1 = run_seeded(f1, machine);
  const RunOutcome r2 = run_seeded(f2, machine);
  if (!r1.result.ok || !r2.result.ok) return -1.0;
  return static_cast<double>(r2.result.cycles - r1.result.cycles) /
         static_cast<double>(n2 - n1);
}

// A machine with effectively unlimited issue slots, as assumed by all the
// paper's Section 2 examples ("a superscalar processor with infinite
// resources and no register renaming hardware").
inline MachineModel infinite_issue() { return MachineModel::issue(64); }

// --- Figure 1(a/b): do j = 1,n: C(j) = A(j) + B(j) --------------------------
//
//   L1: r2f = MEM(A+r1i)
//       r3f = MEM(B+r1i)
//       r4f = r2f+r3f
//       MEM(C+r1i) = r4f
//       r1i = r1i + 4
//       blt (r1i r5i) L1
//
// 7 cycles / iteration on the infinite-issue machine.
inline Function make_fig1_loop(std::int64_t n) {
  Function fn("fig1");
  const std::int32_t A = fn.add_array({"A", 1000, 4, n, true});
  const std::int32_t B = fn.add_array({"B", 9000, 4, n, true});
  const std::int32_t C = fn.add_array({"C", 17000, 4, n, true});
  IRBuilder b(fn);
  const BlockId entry = b.create_block("entry");
  const BlockId loop = b.create_block("L1");
  const BlockId exit = b.create_block("exit");

  b.set_block(entry);
  const Reg r1 = b.ldi(0);          // r1i: byte index
  const Reg r5 = b.ldi(4 * n);      // r5i: limit
  b.jump(loop);

  b.set_block(loop);
  const Reg r2 = b.fld(r1, fn.array(A)->base, A);
  const Reg r3 = b.fld(r1, fn.array(B)->base, B);
  const Reg r4 = b.fadd(r2, r3);
  b.fst(r1, fn.array(C)->base, r4, C);
  b.iaddi_to(r1, r1, 4);
  b.br(Opcode::BLT, r1, r5, loop);

  b.set_block(exit);
  b.ret();
  fn.renumber();
  return fn;
}

// --- Figure 3(a/b): do k = 1,SIZE: C(i,j) += A(i,k)*B(k,j) ------------------
//
//       r1f = MEM(C+r2i)            (preheader)
//   L1: r3f = MEM(A+r4i)
//       r5f = MEM(B+r6i)
//       r7f = r3f * r5f
//       r1f = r1f + r7f
//       r4i = r4i + 4
//       r6i = r6i + r8i
//       blt (r4i r9i) L1
//       MEM(C+r2i) = r1f            (exit)
//
// 8 cycles / iteration.
inline Function make_fig3_loop(std::int64_t n) {
  Function fn("fig3");
  const std::int32_t A = fn.add_array({"A", 1000, 4, n, true});
  const std::int32_t B = fn.add_array({"B", 9000, 4, 8 * n, true});
  const std::int32_t C = fn.add_array({"C", 17000, 4, 1, true});
  IRBuilder b(fn);
  const BlockId entry = b.create_block("entry");
  const BlockId loop = b.create_block("L1");
  const BlockId exit = b.create_block("exit");

  b.set_block(entry);
  const Reg r2 = b.ldi(0);        // C index
  const Reg r4 = b.ldi(0);        // A stream
  const Reg r6 = b.ldi(0);        // B stream
  const Reg r8 = b.ldi(32);       // B stride (row stride)
  const Reg r9 = b.ldi(4 * n);    // limit
  const Reg r1 = fn.new_fp_reg();
  b.fld_to(r1, r2, fn.array(C)->base, C);
  b.jump(loop);

  b.set_block(loop);
  const Reg r3 = b.fld(r4, fn.array(A)->base, A);
  const Reg r5 = b.fld(r6, fn.array(B)->base, B);
  const Reg r7 = b.fmul(r3, r5);
  b.fadd_to(r1, r1, r7);
  b.iaddi_to(r4, r4, 4);
  b.iadd_to(r6, r6, r8);
  b.br(Opcode::BLT, r4, r9, loop);

  b.set_block(exit);
  b.fst(r2, fn.array(C)->base, r1, C);
  b.ret();
  fn.add_live_out(r1);
  fn.renumber();
  return fn;
}

// --- Figure 5(a/b): do i = 1,n: C(j) = A(j)*B(j); j += K --------------------
//
//   L1: r3f = MEM(A+r2i)
//       r4f = MEM(B+r2i)
//       r5f = r3f * r4f
//       MEM(C+r2i) = r5f
//       r2i = r2i + r7i
//       r1i = r1i + 1
//       blt (r1 r6) L1
//
// 6 cycles / iteration.
inline Function make_fig5_loop(std::int64_t n) {
  Function fn("fig5");
  const std::int64_t k_stride = 8;  // K elements = 2, byte stride 8
  const std::int64_t span = n * k_stride / 4 + 4;
  const std::int32_t A = fn.add_array({"A", 1000, 4, span, true});
  const std::int32_t B = fn.add_array({"B", 9000, 4, span, true});
  const std::int32_t C = fn.add_array({"C", 17000, 4, span, true});
  IRBuilder b(fn);
  const BlockId entry = b.create_block("entry");
  const BlockId loop = b.create_block("L1");
  const BlockId exit = b.create_block("exit");

  b.set_block(entry);
  const Reg r2 = b.ldi(0);         // j byte offset
  const Reg r7 = b.ldi(k_stride);  // K byte stride
  const Reg r1 = b.ldi(0);         // i
  const Reg r6 = b.ldi(n);         // n
  b.jump(loop);

  b.set_block(loop);
  const Reg r3 = b.fld(r2, fn.array(A)->base, A);
  const Reg r4 = b.fld(r2, fn.array(B)->base, B);
  const Reg r5 = b.fmul(r3, r4);
  b.fst(r2, fn.array(C)->base, r5, C);
  b.iadd_to(r2, r2, r7);
  b.iaddi_to(r1, r1, 1);
  b.br(Opcode::BLT, r1, r6, loop);

  b.set_block(exit);
  b.ret();
  fn.renumber();
  return fn;
}

// --- Figure 6(a/b): t = A(i+2) - 3.2; if (t < 10.0) continue ----------------
//
//   L1: r1i = r1i + 4
//       r2f = MEM(r1i+8)
//       r3f = r2f - 3.2
//       blt (r3f 10.0) L1
//
// 7 cycles / iteration.  The loop runs while A(i+2) < 13.2; the caller
// controls iteration count through array contents.
inline Function make_fig6_loop(std::int64_t n) {
  Function fn("fig6");
  const std::int32_t A = fn.add_array({"A", 1000, 4, n + 4, true});
  IRBuilder b(fn);
  const BlockId entry = b.create_block("entry");
  const BlockId loop = b.create_block("L1");
  const BlockId exit = b.create_block("exit");

  b.set_block(entry);
  const Reg r1 = b.ldi(0);
  b.jump(loop);

  b.set_block(loop);
  b.iaddi_to(r1, r1, 4);
  const Reg r2 = b.fld(r1, fn.array(A)->base + 8, A);
  const Reg r3 = b.fsubi(r2, 3.2);
  b.brf(Opcode::FBLT, r3, 10.0, loop);
  fn.add_live_out(r3);

  b.set_block(exit);
  b.ret();
  fn.renumber();
  return fn;
}

// Fills Figure 6's array so the loop executes exactly n iterations.
inline void fill_fig6_memory(const Function& fn, Memory& mem, std::int64_t n) {
  const ArrayInfo* a = fn.array(0);
  for (std::int64_t i = 0; i < a->length; ++i)
    mem.store_fp(a->base + 4 * i, i < n + 2 ? 1.0 : 99.0);
}

// --- Figure 7(a/b): A = B * (C + D) * E * F / G -----------------------------
//
// Sequential evaluation; result ready 22 cycles after the first issue.
inline Function make_fig7_expr() {
  Function fn("fig7");
  IRBuilder b(fn);
  const BlockId entry = b.create_block("entry");
  b.set_block(entry);
  const Reg rB = b.fldi(2.0);
  const Reg rC = b.fldi(3.0);
  const Reg rD = b.fldi(4.0);
  const Reg rE = b.fldi(5.0);
  const Reg rF = b.fldi(6.0);
  const Reg rG = b.fldi(7.0);
  const Reg t1 = b.fadd(rC, rD);
  const Reg t2 = b.fmul(t1, rB);
  const Reg t3 = b.fmul(t2, rE);
  const Reg t4 = b.fmul(t3, rF);
  const Reg rA = b.fdiv(t4, rG);
  b.ret();
  fn.add_live_out(rA);
  fn.renumber();
  return fn;
}

}  // namespace ilp::testing
