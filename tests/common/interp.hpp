// Big-step IR interpreter: the semantic oracle for the nest-transformation
// differential tests.  It executes IR sequentially (no timing model, no issue
// widths, no stall accounting) with the exact functional semantics of
// src/sim/simulator.cpp — wrapping 64-bit integer arithmetic, the INT64_MIN
// division edge cases, 6-bit shift masking, 64-bit memory cells defaulting
// to zero — so it is an *independent implementation* of the same contract:
// if the simulator and this interpreter ever disagree on observable state,
// one of them is wrong (tests/trans/nest_semantics_test.cpp pins their
// agreement on the whole workload suite).
//
// Observable state is reduced to a single FNV-1a digest over the function's
// declared live-out registers and every array cell.  The nest passes never
// reassociate floating-point work (interchange/tiling reject carried
// scalars), so the comparison is bit-exact — no tolerance.
#pragma once

#include <cstdint>
#include <string>

#include "ir/function.hpp"
#include "sim/memory.hpp"
#include "sim/simulator.hpp"

namespace ilp::testing {

struct InterpResult {
  bool ok = false;
  std::string error;
  std::uint64_t steps = 0;  // instructions executed
  RegFile regs;
};

// Executes `fn` from its first layout block to RET, mutating `mem`.
inline InterpResult interpret(const Function& fn, Memory& mem,
                              std::uint64_t max_steps = 200'000'000ull) {
  InterpResult res;
  if (fn.num_blocks() == 0) {
    res.error = "empty function";
    return res;
  }
  std::vector<std::int64_t> ints(std::max<std::size_t>(fn.num_regs(RegClass::Int), 1), 0);
  std::vector<double> fps(std::max<std::size_t>(fn.num_regs(RegClass::Fp), 1), 0.0);

  const auto wrap_add = [](std::int64_t a, std::int64_t b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                     static_cast<std::uint64_t>(b));
  };
  const auto wrap_sub = [](std::int64_t a, std::int64_t b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                     static_cast<std::uint64_t>(b));
  };
  const auto wrap_mul = [](std::int64_t a, std::int64_t b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                     static_cast<std::uint64_t>(b));
  };

  const auto& blocks = fn.blocks();
  std::size_t bpos = 0, idx = 0;
  const auto fail = [&](std::string msg) { res.error = std::move(msg); };

  while (true) {
    while (idx >= blocks[bpos].insts.size()) {
      if (bpos + 1 >= blocks.size()) {
        fail("fell off end of function");
        return res;
      }
      ++bpos;
      idx = 0;
    }
    const Instruction& in = blocks[bpos].insts[idx];
    if (res.steps++ >= max_steps) {
      fail("interpreter step budget exceeded");
      return res;
    }
    const auto iget = [&](const Reg& r) { return ints[r.id]; };
    const auto fget = [&](const Reg& r) { return fps[r.id]; };
    const auto isrc2 = [&] { return in.src2_is_imm ? in.ival : iget(in.src2); };
    const auto fsrc2 = [&] { return in.src2_is_imm ? in.fval : fget(in.src2); };

    bool taken = false;
    bool done = false;
    switch (in.op) {
      case Opcode::IADD: ints[in.dst.id] = wrap_add(iget(in.src1), isrc2()); break;
      case Opcode::ISUB: ints[in.dst.id] = wrap_sub(iget(in.src1), isrc2()); break;
      case Opcode::IMUL: ints[in.dst.id] = wrap_mul(iget(in.src1), isrc2()); break;
      case Opcode::IMULH: {
        const __int128 p = static_cast<__int128>(iget(in.src1)) * static_cast<__int128>(isrc2());
        ints[in.dst.id] = static_cast<std::int64_t>(p >> 64);
        break;
      }
      case Opcode::IDIV:
      case Opcode::IREM: {
        const std::int64_t a = iget(in.src1);
        const std::int64_t b = isrc2();
        if (b == 0) {
          fail("integer division by zero");
          return res;
        }
        const std::int64_t q = (a == INT64_MIN && b == -1) ? INT64_MIN : a / b;
        ints[in.dst.id] = in.op == Opcode::IDIV ? q : wrap_sub(a, wrap_mul(q, b));
        break;
      }
      case Opcode::ISHL:
      case Opcode::ISHRA:
      case Opcode::ISHRL: {
        const auto a = static_cast<std::uint64_t>(iget(in.src1));
        const int s = static_cast<int>(isrc2() & 63);
        std::uint64_t r = 0;
        if (in.op == Opcode::ISHL)
          r = a << s;
        else if (in.op == Opcode::ISHRL)
          r = a >> s;
        else
          r = static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >> s);
        ints[in.dst.id] = static_cast<std::int64_t>(r);
        break;
      }
      case Opcode::IAND: ints[in.dst.id] = iget(in.src1) & isrc2(); break;
      case Opcode::IOR: ints[in.dst.id] = iget(in.src1) | isrc2(); break;
      case Opcode::IXOR: ints[in.dst.id] = iget(in.src1) ^ isrc2(); break;
      case Opcode::IMAX: ints[in.dst.id] = std::max(iget(in.src1), isrc2()); break;
      case Opcode::IMIN: ints[in.dst.id] = std::min(iget(in.src1), isrc2()); break;
      case Opcode::IMOV: ints[in.dst.id] = iget(in.src1); break;
      case Opcode::INEG: ints[in.dst.id] = wrap_sub(0, iget(in.src1)); break;
      case Opcode::LDI: ints[in.dst.id] = in.ival; break;
      case Opcode::FADD: fps[in.dst.id] = fget(in.src1) + fsrc2(); break;
      case Opcode::FSUB: fps[in.dst.id] = fget(in.src1) - fsrc2(); break;
      case Opcode::FMUL: fps[in.dst.id] = fget(in.src1) * fsrc2(); break;
      case Opcode::FDIV: fps[in.dst.id] = fget(in.src1) / fsrc2(); break;
      case Opcode::FMAX: fps[in.dst.id] = std::max(fget(in.src1), fsrc2()); break;
      case Opcode::FMIN: fps[in.dst.id] = std::min(fget(in.src1), fsrc2()); break;
      case Opcode::FMOV: fps[in.dst.id] = fget(in.src1); break;
      case Opcode::FNEG: fps[in.dst.id] = -fget(in.src1); break;
      case Opcode::FLDI: fps[in.dst.id] = in.fval; break;
      case Opcode::ITOF: fps[in.dst.id] = static_cast<double>(iget(in.src1)); break;
      case Opcode::FTOI: {
        const double v = fget(in.src1);
        if (!(v >= -9.2e18 && v <= 9.2e18)) {
          fail("ftoi out of range");
          return res;
        }
        ints[in.dst.id] = static_cast<std::int64_t>(v);
        break;
      }
      case Opcode::LD: ints[in.dst.id] = mem.load_int(wrap_add(iget(in.src1), in.ival)); break;
      case Opcode::FLD: fps[in.dst.id] = mem.load_fp(wrap_add(iget(in.src1), in.ival)); break;
      case Opcode::ST: mem.store_int(wrap_add(iget(in.src1), in.ival), iget(in.src2)); break;
      case Opcode::FST: mem.store_fp(wrap_add(iget(in.src1), in.ival), fget(in.src2)); break;
      case Opcode::JUMP: taken = true; break;
      case Opcode::RET: done = true; break;
      case Opcode::NOP: break;
      default: {
        ILP_ASSERT(in.is_branch(), "unhandled opcode in interpreter");
        bool cond;
        if (op_is_fp_compare(in.op)) {
          const double a = fget(in.src1);
          const double b = fsrc2();
          switch (in.op) {
            case Opcode::FBEQ: cond = a == b; break;
            case Opcode::FBNE: cond = a != b; break;
            case Opcode::FBLT: cond = a < b; break;
            case Opcode::FBLE: cond = a <= b; break;
            case Opcode::FBGT: cond = a > b; break;
            default: cond = a >= b; break;  // FBGE
          }
        } else {
          const std::int64_t a = iget(in.src1);
          const std::int64_t b = isrc2();
          switch (in.op) {
            case Opcode::BEQ: cond = a == b; break;
            case Opcode::BNE: cond = a != b; break;
            case Opcode::BLT: cond = a < b; break;
            case Opcode::BLE: cond = a <= b; break;
            case Opcode::BGT: cond = a > b; break;
            default: cond = a >= b; break;  // BGE
          }
        }
        taken = cond;
        break;
      }
    }
    if (done) break;
    if (taken) {
      bpos = fn.layout_index(in.target);
      idx = 0;
    } else {
      ++idx;
    }
  }

  res.ok = true;
  res.regs.ints = std::move(ints);
  res.regs.fps = std::move(fps);
  return res;
}

// FNV-1a over the observable final state: live-out registers (raw bits, in
// declaration order) then every array cell.  Induction variables and dead
// temporaries legitimately differ across transformations, so whole-register-
// file hashing would be meaningless; this is exactly the state
// compare_observable() checks, collapsed to one word.
inline std::uint64_t state_digest(const Function& fn, const InterpResult& r,
                                  const Memory& mem) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (const Reg& reg : fn.live_out()) {
    mix(reg.cls == RegClass::Fp ? 0xf0f0f0f0ull : 0x0e0e0e0eull);
    if (reg.cls == RegClass::Fp) {
      double v = r.regs.get_fp(reg.id);
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      __builtin_memcpy(&bits, &v, sizeof(bits));
      mix(bits);
    } else {
      mix(static_cast<std::uint64_t>(r.regs.get_int(reg.id)));
    }
  }
  for (const auto& arr : fn.arrays()) {
    mix(static_cast<std::uint64_t>(arr.base));
    for (std::int64_t i = 0; i < arr.length; ++i) {
      const std::int64_t addr = arr.base + i * arr.elem_size;
      if (arr.is_fp) {
        double v = mem.load_fp(addr);
        std::uint64_t bits;
        __builtin_memcpy(&bits, &v, sizeof(bits));
        mix(bits);
      } else {
        mix(static_cast<std::uint64_t>(mem.load_int(addr)));
      }
    }
  }
  return h;
}

// Seeds arrays exactly like run_seeded, interprets, and digests.  `ok_out`
// distinguishes "ran and produced this digest" from execution failure.
inline std::uint64_t run_digest(const Function& fn, bool* ok_out = nullptr,
                                std::string* err_out = nullptr) {
  Memory mem;
  seed_arrays(fn, mem);
  const InterpResult r = interpret(fn, mem);
  if (ok_out != nullptr) *ok_out = r.ok;
  if (err_out != nullptr) *err_out = r.error;
  if (!r.ok) return 0;
  return state_digest(fn, r, mem);
}

}  // namespace ilp::testing
