// Validates the reconstructed Table 2 suite: every workload's published
// attributes (size, iterations, nest depth, type, conds) must match what the
// front end actually sees in its source, and every workload must compile,
// run, and survive all optimization levels unchanged.
#include "workloads/suite.hpp"

#include <gtest/gtest.h>

#include "frontend/compile.hpp"
#include "frontend/parser.hpp"
#include "ir/verifier.hpp"
#include "sim/simulator.hpp"
#include "trans/level.hpp"

namespace ilp {
namespace {

TEST(Suite, HasExactlyFortyNests) { EXPECT_EQ(workload_suite().size(), 40u); }

TEST(Suite, GroupBreakdownMatchesTable2) {
  int perfect = 0;
  int spec = 0;
  int vec = 0;
  for (const auto& w : workload_suite()) {
    if (w.group == "PERFECT") ++perfect;
    if (w.group == "SPEC") ++spec;
    if (w.group == "VECTOR") ++vec;
  }
  EXPECT_EQ(perfect, 29);
  EXPECT_EQ(spec, 6);
  EXPECT_EQ(vec, 5);
}

TEST(Suite, TypeDistributionMatchesTable2) {
  int doall = 0;
  int doacross = 0;
  int serial = 0;
  for (const auto& w : workload_suite()) {
    switch (w.type) {
      case dsl::LoopType::DoAll: ++doall; break;
      case dsl::LoopType::DoAcross: ++doacross; break;
      case dsl::LoopType::Serial: ++serial; break;
    }
  }
  // Table 2: 18 DOALL, 6 DOACROSS, 16 serial.
  EXPECT_EQ(doall, 18);
  EXPECT_EQ(doacross, 6);
  EXPECT_EQ(serial, 16);
}

TEST(Suite, MetadataMatchesClassifier) {
  for (const auto& w : workload_suite()) {
    DiagnosticEngine diags;
    const auto ast = dsl::parse(w.source, diags);
    ASSERT_TRUE(ast.has_value()) << w.name << "\n" << diags.to_string();
    const auto loops = dsl::classify_innermost_loops(*ast);
    ASSERT_EQ(loops.size(), 1u) << w.name << ": exactly one innermost loop expected";
    const auto& l = loops[0];
    EXPECT_EQ(l.body_stmts, w.size) << w.name << " Size";
    EXPECT_EQ(l.nest_depth, w.nest) << w.name << " Nest";
    EXPECT_EQ(l.type, w.type) << w.name << " Type: classifier says "
                              << dsl::loop_type_name(l.type);
    EXPECT_EQ(l.has_conds, w.conds) << w.name << " Conds";
  }
}

TEST(Suite, InnerTripCountsMatchTable2) {
  for (const auto& w : workload_suite()) {
    DiagnosticEngine diags;
    const auto ast = dsl::parse(w.source, diags);
    ASSERT_TRUE(ast.has_value()) << w.name;
    // Find the innermost loop and check (hi - lo)/step + 1.
    const dsl::Stmt* loop = nullptr;
    std::vector<const dsl::Stmt*> work;
    for (const auto& s : ast->stmts) work.push_back(s.get());
    while (!work.empty()) {
      const dsl::Stmt* s = work.back();
      work.pop_back();
      if (s->kind != dsl::StmtKind::Loop) continue;
      bool inner = true;
      for (const auto& c : s->body) {
        if (c->kind == dsl::StmtKind::Loop) {
          inner = false;
          work.push_back(c.get());
        }
      }
      if (inner) loop = s;
    }
    ASSERT_NE(loop, nullptr) << w.name;
    ASSERT_EQ(loop->lo->kind, dsl::ExprKind::IntConst) << w.name;
    ASSERT_EQ(loop->hi->kind, dsl::ExprKind::IntConst) << w.name;
    const std::int64_t trips = (loop->hi->ival - loop->lo->ival) / loop->step + 1;
    EXPECT_EQ(trips, w.iters) << w.name;
  }
}

TEST(Suite, AllWorkloadsCompileAndRun) {
  for (const auto& w : workload_suite()) {
    DiagnosticEngine diags;
    auto r = dsl::compile(w.source, diags);
    ASSERT_TRUE(r.has_value()) << w.name << "\n" << diags.to_string();
    EXPECT_TRUE(verify(r->fn).ok) << w.name;
    const RunOutcome out = run_seeded(r->fn, MachineModel::issue(8));
    EXPECT_TRUE(out.result.ok) << w.name << ": " << out.result.error;
    EXPECT_GT(out.result.instructions, 0u) << w.name;
  }
}

TEST(Suite, EveryLevelPreservesEveryWorkload) {
  // The global differential test: all 40 nests, all 5 levels, issue-8.
  const MachineModel m8 = MachineModel::issue(8);
  for (const auto& w : workload_suite()) {
    DiagnosticEngine d0;
    auto base = dsl::compile(w.source, d0);
    ASSERT_TRUE(base.has_value()) << w.name;
    const RunOutcome want = run_seeded(base->fn, m8);
    ASSERT_TRUE(want.result.ok) << w.name;
    for (OptLevel lvl : {OptLevel::Conv, OptLevel::Lev1, OptLevel::Lev2, OptLevel::Lev3,
                         OptLevel::Lev4}) {
      DiagnosticEngine d1;
      auto r = dsl::compile(w.source, d1);
      ASSERT_TRUE(r.has_value());
      compile_at_level(r->fn, lvl, m8);
      const RunOutcome got = run_seeded(r->fn, m8);
      ASSERT_EQ(compare_observable(base->fn, want, got, 1e-6), "")
          << w.name << " at " << level_name(lvl);
    }
  }
}

TEST(Suite, FindWorkload) {
  EXPECT_NE(find_workload("dotprod"), nullptr);
  EXPECT_EQ(find_workload("dotprod")->iters, 1024);
  EXPECT_EQ(find_workload("nope"), nullptr);
}

}  // namespace
}  // namespace ilp
