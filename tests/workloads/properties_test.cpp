// Per-workload property tests (TEST_P over the full Table 2 suite): the
// paper's qualitative claims, asserted loop by loop at issue-8.
#include <gtest/gtest.h>

#include "frontend/compile.hpp"
#include "harness/experiment.hpp"
#include "workloads/suite.hpp"

namespace ilp {
namespace {

struct Measured {
  double conv = 0.0;
  double lev2 = 0.0;
  double lev4 = 0.0;
};

Measured measure(const Workload& w) {
  const MachineModel m8 = MachineModel::issue(8);
  const MachineModel m1 = MachineModel::issue(1);
  const CompiledLoop base = compile_workload(w, OptLevel::Conv, m1);
  const double base_cycles = static_cast<double>(simulate_cycles(base.fn, m1));
  auto speedup = [&](OptLevel l) {
    const CompiledLoop c = compile_workload(w, l, m8);
    return base_cycles / static_cast<double>(simulate_cycles(c.fn, m8));
  };
  return Measured{speedup(OptLevel::Conv), speedup(OptLevel::Lev2),
                  speedup(OptLevel::Lev4)};
}

class WorkloadProps : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadProps, PaperClaimsHoldPerLoop) {
  const Workload& w = workload_suite()[static_cast<std::size_t>(GetParam())];
  const Measured m = measure(w);

  // Higher levels never hurt materially (within scheduling noise).
  EXPECT_GE(m.lev2, m.conv * 0.95) << w.name;
  EXPECT_GE(m.lev4, m.lev2 * 0.90) << w.name;

  // "Loop unrolling and register renaming expose a large amount of ILP" for
  // DOALL loops (Section 3.2): every DOALL loop at least triples.
  if (w.type == dsl::LoopType::DoAll) EXPECT_GE(m.lev2, 3.0) << w.name;

  // "Increasing execution resources yields little performance improvement
  // unless loop unrolling and register renaming are applied": Conv on the
  // wide machine leaves most of the width unused except for very large
  // bodies (NAS-5, doduc-1, tomcatv-1 have enough intra-iteration ILP).
  if (w.size <= 11) EXPECT_LE(m.conv, 3.0) << w.name;
}

INSTANTIATE_TEST_SUITE_P(Table2, WorkloadProps, ::testing::Range(0, 40),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string n =
                               workload_suite()[static_cast<std::size_t>(info.param)]
                                   .name;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// The expansion transformations' headline: reduction/search loops that crawl
// at Lev2 take off at Lev4 (paper Figures 14-15 discussion).
class ReductionProps : public ::testing::TestWithParam<const char*> {};

TEST_P(ReductionProps, Lev4BreaksTheRecurrence) {
  const Workload* w = find_workload(GetParam());
  ASSERT_NE(w, nullptr);
  const Measured m = measure(*w);
  EXPECT_GE(m.lev4, m.lev2 * 1.5) << w->name;
  EXPECT_GE(m.lev4, 3.5) << w->name;
}

INSTANTIATE_TEST_SUITE_P(Reductions, ReductionProps,
                         ::testing::Values("dotprod", "sum", "maxval", "NAS-4", "LWS-2",
                                           "SRS-6", "MTS-1", "SDS-1"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace ilp
