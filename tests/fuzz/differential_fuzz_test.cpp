// Property-based differential testing: random (structurally valid) DSL
// programs are compiled at every optimization level and every transformation
// subset, then executed; the observable results (final array images and
// live-out scalars) must match the unoptimized program's.
//
// This is the repository's main correctness oracle beyond the hand-written
// unit tests: any miscompilation in unrolling arithmetic, expansion fixups,
// combining constants, renaming, scheduling order, or disambiguation shows
// up as a differential failure with the program text attached.
#include <gtest/gtest.h>

#include <string>

#include "frontend/compile.hpp"
#include "ir/printer.hpp"
#include "sim/simulator.hpp"
#include "support/strings.hpp"
#include "regalloc/assign.hpp"
#include "sched/scheduler.hpp"
#include "trans/level.hpp"
#include "trans/swp.hpp"

namespace ilp {
namespace {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed * 2654435761u + 0x9e3779b97f4a7c15ull) {}
  std::uint64_t next() {
    s_ = s_ * 6364136223846793005ull + 1442695040888963407ull;
    return s_ >> 17;
  }
  int range(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(next() % static_cast<std::uint64_t>(hi - lo + 1));
  }
  bool chance(int percent) { return range(1, 100) <= percent; }

 private:
  std::uint64_t s_;
};

// Generates a random single-nest program over fp arrays A..E and scalars.
std::string random_program(std::uint64_t seed) {
  Rng rng(seed);
  const int trip = rng.range(5, 90);
  const int lo_off = 4;                // room for negative subscript offsets
  const int len = trip + 16;
  const bool nested = rng.chance(35);

  std::string src = "program fuzz\n";
  for (const char* a : {"A", "B", "C", "D", "E"})
    src += strformat("array %s[%d] fp\n", a, len);
  src += strformat("array K[%d] int\n", len);
  src +=
      "scalar s fp out\n"
      "scalar t fp\n"
      "scalar m fp init -1.0e30 out\n"
      "scalar n int out\n";

  std::string body;
  const int stmts = rng.range(2, 8);
  bool t_defined = false;
  for (int k = 0; k < stmts; ++k) {
    switch (rng.range(0, 9)) {
      case 0:
        body += strformat("    C[i] = A[i%+d] %c B[i];\n", rng.range(-3, 3),
                          "+-*"[rng.range(0, 2)]);
        break;
      case 1:
        body += strformat("    D[i%+d] = A[i] * %d.5;\n", rng.range(-2, 2),
                          rng.range(0, 3));
        break;
      case 2:
        body += "    s = s + A[i] * B[i];\n";
        break;
      case 3:
        body += "    m = max(m, B[i] - A[i]);\n";
        break;
      case 4:
        body += strformat("    t = A[i] * %d.25 + C[i];\n", rng.range(0, 2));
        t_defined = true;
        break;
      case 5:
        if (t_defined)
          body += "    E[i] = t + B[i];\n";
        else
          body += "    E[i] = B[i] * 2.0;\n";
        break;
      case 6:
        body += strformat("    A[i] = A[i-%d] * 0.5 + B[i];\n", rng.range(1, 4));
        break;
      case 7:
        body += "    s = s + A[i] / (B[i] + 3.0);\n";
        break;
      case 8:
        body += strformat("    n = n + K[i] %% %d + K[i] / %d;\n", rng.range(2, 9),
                          rng.range(2, 9));
        break;
      case 9:
        body += "    E[i] = (A[i] + B[i]) * (C[i] + 1.5) * D[i] / (B[i] + 2.0);\n";
        break;
    }
  }
  if (rng.chance(25)) body += "    if (s > 1.0e14) break;\n";

  const std::string inner = strformat("  loop i = %d to %d {\n%s  }\n", lo_off,
                                      lo_off + trip - 1, body.c_str());
  if (nested)
    src += strformat("loop o = 0 to %d {\n%s}\n", rng.range(1, 2), inner.c_str());
  else
    src += inner.substr(2);  // unindent
  return src;
}

RunOutcome run_program(const std::string& src, OptLevel level, int width,
                       const TransformSet* custom = nullptr) {
  DiagnosticEngine diags;
  auto r = dsl::compile(src, diags);
  EXPECT_TRUE(r.has_value()) << diags.to_string() << "\n" << src;
  if (!r) return {};
  const MachineModel m = MachineModel::issue(width);
  if (custom)
    compile_with_transforms(r->fn, *custom, m);
  else
    compile_at_level(r->fn, level, m);
  return run_seeded(r->fn, m);
}

TEST(DifferentialFuzz, AllLevelsPreserveRandomPrograms) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const std::string src = random_program(seed);
    DiagnosticEngine diags;
    auto base = dsl::compile(src, diags);
    ASSERT_TRUE(base.has_value()) << diags.to_string() << "\n" << src;
    const RunOutcome want = run_seeded(base->fn, MachineModel::issue(8));
    ASSERT_TRUE(want.result.ok) << want.result.error << "\n" << src;

    for (OptLevel lvl : {OptLevel::Conv, OptLevel::Lev1, OptLevel::Lev2, OptLevel::Lev3,
                         OptLevel::Lev4}) {
      const RunOutcome got = run_program(src, lvl, 8);
      ASSERT_EQ(compare_observable(base->fn, want, got, 1e-6), "")
          << "seed=" << seed << " level=" << level_name(lvl) << "\n"
          << src;
    }
  }
}

TEST(DifferentialFuzz, RandomTransformSubsetsPreserveRandomPrograms) {
  for (std::uint64_t seed = 100; seed <= 140; ++seed) {
    const std::string src = random_program(seed);
    DiagnosticEngine diags;
    auto base = dsl::compile(src, diags);
    ASSERT_TRUE(base.has_value());
    const RunOutcome want = run_seeded(base->fn, MachineModel::issue(8));
    ASSERT_TRUE(want.result.ok) << want.result.error;

    Rng rng(seed * 77);
    TransformSet set;
    set.unroll = rng.chance(80);
    set.rename = rng.chance(70);
    set.combine = rng.chance(50);
    set.strength = rng.chance(50);
    set.height = rng.chance(50);
    set.acc_expand = rng.chance(50);
    set.ind_expand = rng.chance(50);
    set.search_expand = rng.chance(50);
    const RunOutcome got = run_program(src, OptLevel::Conv, 8, &set);
    ASSERT_EQ(compare_observable(base->fn, want, got, 1e-6), "")
        << "seed=" << seed << "\n"
        << src;
  }
}

TEST(DifferentialFuzz, NarrowAndWideMachinesAgreeFunctionally) {
  for (std::uint64_t seed = 200; seed <= 220; ++seed) {
    const std::string src = random_program(seed);
    const RunOutcome w1 = run_program(src, OptLevel::Lev4, 1);
    const RunOutcome w8 = run_program(src, OptLevel::Lev4, 8);
    ASSERT_TRUE(w1.result.ok && w8.result.ok) << src;
    DiagnosticEngine diags;
    auto base = dsl::compile(src, diags);
    // Note: the two runs compiled independently but from the same source;
    // observable state must agree between machine widths.
    ASSERT_EQ(compare_observable(base->fn, w1, w8, 1e-9), "") << src;
    EXPECT_LE(w8.result.cycles, w1.result.cycles) << src;
  }
}

TEST(DifferentialFuzz, SoftwarePipeliningPreservesRandomPrograms) {
  for (std::uint64_t seed = 300; seed <= 330; ++seed) {
    const std::string src = random_program(seed);
    DiagnosticEngine d0;
    auto base = dsl::compile(src, d0);
    ASSERT_TRUE(base.has_value());
    const RunOutcome want = run_seeded(base->fn, MachineModel::issue(8));
    ASSERT_TRUE(want.result.ok) << want.result.error;

    for (int stages : {2, 3}) {
      DiagnosticEngine d1;
      auto r = dsl::compile(src, d1);
      const MachineModel m = MachineModel::issue(8);
      CompileOptions copts;
      copts.schedule = false;
      compile_at_level(r->fn, OptLevel::Lev4, m, copts);
      SwpOptions so;
      so.stages = stages;
      software_pipeline(r->fn, m, so);
      schedule_function(r->fn, m);
      const RunOutcome got = run_seeded(r->fn, m);
      ASSERT_EQ(compare_observable(base->fn, want, got, 1e-6), "")
          << "seed=" << seed << " stages=" << stages << "\n" << src;
    }
  }
}

TEST(DifferentialFuzz, RegisterAssignmentPreservesRandomPrograms) {
  for (std::uint64_t seed = 400; seed <= 425; ++seed) {
    const std::string src = random_program(seed);
    DiagnosticEngine d0;
    auto base = dsl::compile(src, d0);
    ASSERT_TRUE(base.has_value());
    const RunOutcome want = run_seeded(base->fn, MachineModel::issue(8));
    ASSERT_TRUE(want.result.ok);

    for (int k : {48, 16}) {
      DiagnosticEngine d1;
      auto r = dsl::compile(src, d1);
      const MachineModel m = MachineModel::issue(8);
      compile_at_level(r->fn, OptLevel::Lev4, m);
      const AssignResult ar = assign_registers(r->fn, {k, k, 0x7f000000});
      ASSERT_TRUE(ar.ok) << "seed=" << seed << " k=" << k;
      const RunOutcome got = run_seeded(r->fn, m);
      ASSERT_TRUE(got.result.ok) << got.result.error;
      // Memory images must match; live-out registers were re-targeted by the
      // allocator, so compare them positionally.
      for (const auto& arr : base->fn.arrays()) {
        for (std::int64_t i = 0; i < arr.length; ++i) {
          const std::int64_t addr = arr.base + i * arr.elem_size;
          if (arr.is_fp)
            ASSERT_NEAR(want.memory.load_fp(addr), got.memory.load_fp(addr), 1e-6)
                << "seed=" << seed << " k=" << k << " " << arr.name << "[" << i << "]";
          else
            ASSERT_EQ(want.memory.load_int(addr), got.memory.load_int(addr))
                << "seed=" << seed << " k=" << k;
        }
      }
      ASSERT_EQ(base->fn.live_out().size(), r->fn.live_out().size());
      for (std::size_t i = 0; i < base->fn.live_out().size(); ++i) {
        const Reg pr = base->fn.live_out()[i];
        const Reg ar2 = r->fn.live_out()[i];
        if (pr.cls == RegClass::Fp)
          ASSERT_NEAR(want.result.regs.get_fp(pr.id), got.result.regs.get_fp(ar2.id),
                      1e-6)
              << "seed=" << seed << " k=" << k;
        else
          ASSERT_EQ(want.result.regs.get_int(pr.id), got.result.regs.get_int(ar2.id))
              << "seed=" << seed << " k=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace ilp
