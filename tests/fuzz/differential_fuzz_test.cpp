// Property-based differential testing: random (structurally valid) DSL
// programs are compiled at every optimization level and every transformation
// subset, then executed; the observable results (final array images and
// live-out scalars) must match the unoptimized program's.
//
// This is the repository's main correctness oracle beyond the hand-written
// unit tests: any miscompilation in unrolling arithmetic, expansion fixups,
// combining constants, renaming, scheduling order, or disambiguation shows
// up as a differential failure with the program text attached.
#include <gtest/gtest.h>

#include <string>

#include "common/fixtures.hpp"
#include "frontend/compile.hpp"
#include "ir/printer.hpp"
#include "sim/simulator.hpp"
#include "support/strings.hpp"
#include "regalloc/assign.hpp"
#include "sched/scheduler.hpp"
#include "trans/level.hpp"
#include "trans/swp.hpp"

namespace ilp {
namespace {

// The corpus generator lives in tests/common/fixtures.hpp so the server tests
// and ilp_loadgen replay the same program distribution.  Seed counts scale
// with ILP_FUZZ_SEEDS (the nightly job sets 10x).
using testing::fuzz_seed_count;
using testing::random_program;
using testing::Rng;

RunOutcome run_program(const std::string& src, OptLevel level, int width,
                       const TransformSet* custom = nullptr) {
  DiagnosticEngine diags;
  auto r = dsl::compile(src, diags);
  EXPECT_TRUE(r.has_value()) << diags.to_string() << "\n" << src;
  if (!r) return {};
  const MachineModel m = MachineModel::issue(width);
  if (custom)
    compile_with_transforms(r->fn, *custom, m);
  else
    compile_at_level(r->fn, level, m);
  return run_seeded(r->fn, m);
}

TEST(DifferentialFuzz, AllLevelsPreserveRandomPrograms) {
  const std::uint64_t n = fuzz_seed_count(60);
  for (std::uint64_t seed = 1; seed <= n; ++seed) {
    const std::string src = random_program(seed);
    DiagnosticEngine diags;
    auto base = dsl::compile(src, diags);
    ASSERT_TRUE(base.has_value()) << diags.to_string() << "\n" << src;
    const RunOutcome want = run_seeded(base->fn, MachineModel::issue(8));
    ASSERT_TRUE(want.result.ok) << want.result.error << "\n" << src;

    for (OptLevel lvl : {OptLevel::Conv, OptLevel::Lev1, OptLevel::Lev2, OptLevel::Lev3,
                         OptLevel::Lev4}) {
      const RunOutcome got = run_program(src, lvl, 8);
      ASSERT_EQ(compare_observable(base->fn, want, got, 1e-6), "")
          << "seed=" << seed << " level=" << level_name(lvl) << "\n"
          << src;
    }
  }
}

TEST(DifferentialFuzz, RandomTransformSubsetsPreserveRandomPrograms) {
  const std::uint64_t n = 100 + fuzz_seed_count(41) - 1;
  for (std::uint64_t seed = 100; seed <= n; ++seed) {
    const std::string src = random_program(seed);
    DiagnosticEngine diags;
    auto base = dsl::compile(src, diags);
    ASSERT_TRUE(base.has_value());
    const RunOutcome want = run_seeded(base->fn, MachineModel::issue(8));
    ASSERT_TRUE(want.result.ok) << want.result.error;

    Rng rng(seed * 77);
    TransformSet set;
    set.unroll = rng.chance(80);
    set.rename = rng.chance(70);
    set.combine = rng.chance(50);
    set.strength = rng.chance(50);
    set.height = rng.chance(50);
    set.acc_expand = rng.chance(50);
    set.ind_expand = rng.chance(50);
    set.search_expand = rng.chance(50);
    const RunOutcome got = run_program(src, OptLevel::Conv, 8, &set);
    ASSERT_EQ(compare_observable(base->fn, want, got, 1e-6), "")
        << "seed=" << seed << "\n"
        << src;
  }
}

TEST(DifferentialFuzz, NarrowAndWideMachinesAgreeFunctionally) {
  const std::uint64_t n = 200 + fuzz_seed_count(21) - 1;
  for (std::uint64_t seed = 200; seed <= n; ++seed) {
    const std::string src = random_program(seed);
    const RunOutcome w1 = run_program(src, OptLevel::Lev4, 1);
    const RunOutcome w8 = run_program(src, OptLevel::Lev4, 8);
    ASSERT_TRUE(w1.result.ok && w8.result.ok) << src;
    DiagnosticEngine diags;
    auto base = dsl::compile(src, diags);
    // Note: the two runs compiled independently but from the same source;
    // observable state must agree between machine widths.
    ASSERT_EQ(compare_observable(base->fn, w1, w8, 1e-9), "") << src;
    EXPECT_LE(w8.result.cycles, w1.result.cycles) << src;
  }
}

TEST(DifferentialFuzz, SoftwarePipeliningPreservesRandomPrograms) {
  const std::uint64_t n = 300 + fuzz_seed_count(31) - 1;
  for (std::uint64_t seed = 300; seed <= n; ++seed) {
    const std::string src = random_program(seed);
    DiagnosticEngine d0;
    auto base = dsl::compile(src, d0);
    ASSERT_TRUE(base.has_value());
    const RunOutcome want = run_seeded(base->fn, MachineModel::issue(8));
    ASSERT_TRUE(want.result.ok) << want.result.error;

    for (int stages : {2, 3}) {
      DiagnosticEngine d1;
      auto r = dsl::compile(src, d1);
      const MachineModel m = MachineModel::issue(8);
      CompileOptions copts;
      copts.schedule = false;
      compile_at_level(r->fn, OptLevel::Lev4, m, copts);
      SwpOptions so;
      so.stages = stages;
      software_pipeline(r->fn, m, so);
      schedule_function(r->fn, m);
      const RunOutcome got = run_seeded(r->fn, m);
      ASSERT_EQ(compare_observable(base->fn, want, got, 1e-6), "")
          << "seed=" << seed << " stages=" << stages << "\n" << src;
    }
  }
}

TEST(DifferentialFuzz, RegisterAssignmentPreservesRandomPrograms) {
  const std::uint64_t n = 400 + fuzz_seed_count(26) - 1;
  for (std::uint64_t seed = 400; seed <= n; ++seed) {
    const std::string src = random_program(seed);
    DiagnosticEngine d0;
    auto base = dsl::compile(src, d0);
    ASSERT_TRUE(base.has_value());
    const RunOutcome want = run_seeded(base->fn, MachineModel::issue(8));
    ASSERT_TRUE(want.result.ok);

    for (int k : {48, 16}) {
      DiagnosticEngine d1;
      auto r = dsl::compile(src, d1);
      const MachineModel m = MachineModel::issue(8);
      compile_at_level(r->fn, OptLevel::Lev4, m);
      const AssignResult ar = assign_registers(r->fn, {k, k, 0x7f000000});
      ASSERT_TRUE(ar.ok) << "seed=" << seed << " k=" << k;
      const RunOutcome got = run_seeded(r->fn, m);
      ASSERT_TRUE(got.result.ok) << got.result.error;
      // Memory images must match; live-out registers were re-targeted by the
      // allocator, so compare them positionally.
      for (const auto& arr : base->fn.arrays()) {
        for (std::int64_t i = 0; i < arr.length; ++i) {
          const std::int64_t addr = arr.base + i * arr.elem_size;
          if (arr.is_fp)
            ASSERT_NEAR(want.memory.load_fp(addr), got.memory.load_fp(addr), 1e-6)
                << "seed=" << seed << " k=" << k << " " << arr.name << "[" << i << "]";
          else
            ASSERT_EQ(want.memory.load_int(addr), got.memory.load_int(addr))
                << "seed=" << seed << " k=" << k;
        }
      }
      ASSERT_EQ(base->fn.live_out().size(), r->fn.live_out().size());
      for (std::size_t i = 0; i < base->fn.live_out().size(); ++i) {
        const Reg pr = base->fn.live_out()[i];
        const Reg ar2 = r->fn.live_out()[i];
        if (pr.cls == RegClass::Fp)
          ASSERT_NEAR(want.result.regs.get_fp(pr.id), got.result.regs.get_fp(ar2.id),
                      1e-6)
              << "seed=" << seed << " k=" << k;
        else
          ASSERT_EQ(want.result.regs.get_int(pr.id), got.result.regs.get_int(ar2.id))
              << "seed=" << seed << " k=" << k;
      }
    }
  }
}

// The nest transformations (fusion in particular) only find work in programs
// with more than one loop, and for a long time the corpus never produced any
// — every generated program was a single (possibly nested) loop, so the
// fusion paths of downstream differential tests ran against nothing.  The
// generator now appends an adjacent loop for every seed ending in 7; pin
// that corpus property so it cannot silently regress.
TEST(DifferentialFuzz, CorpusContainsMultiLoopPrograms) {
  const std::uint64_t n = fuzz_seed_count(200);
  auto loop_count = [](const std::string& src) {
    int count = 0;
    for (std::size_t pos = src.find("loop "); pos != std::string::npos;
         pos = src.find("loop ", pos + 5))
      ++count;
    return count;
  };
  int multi = 0;
  for (std::uint64_t start = 1; start + 9 <= n; start += 10) {
    int in_window = 0;
    for (std::uint64_t seed = start; seed < start + 10; ++seed) {
      // "Multi-loop" means adjacent loops, not a nest: a 2-deep nest has two
      // `loop` keywords but only one top-level statement sequence.  Seeds
      // ending in 7 get an adjacent loop appended regardless of nesting, so
      // count programs whose loop count exceeds nesting alone can explain.
      const std::string src = random_program(seed);
      const bool nested = src.find("loop o") != std::string::npos;
      if (loop_count(src) >= (nested ? 3 : 2)) ++in_window;
    }
    EXPECT_GE(in_window, 1) << "no multi-loop program in seeds [" << start << ", "
                            << (start + 9) << "]";
    multi += in_window;
  }
  // Beyond the per-window floor, adjacent loops should make up a healthy
  // fraction of the corpus overall (deterministic 10% + random 20%).
  EXPECT_GE(multi, static_cast<int>(n) / 5);
}

}  // namespace
}  // namespace ilp
