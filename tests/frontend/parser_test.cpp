#include "frontend/parser.hpp"

#include <gtest/gtest.h>

namespace ilp::dsl {
namespace {

std::optional<Program> try_parse(std::string_view src) {
  DiagnosticEngine diags;
  return parse(src, diags);
}

TEST(Parser, MinimalProgram) {
  const auto p = try_parse("program p\n");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->name, "p");
  EXPECT_TRUE(p->stmts.empty());
}

TEST(Parser, Declarations) {
  const auto p = try_parse(R"(
    program decls
    array A[64] fp
    array M[8][16] int
    scalar s fp init 1.5 out
    scalar n int init -3
  )");
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->arrays.size(), 2u);
  EXPECT_EQ(p->arrays[0].name, "A");
  EXPECT_EQ(p->arrays[0].dim0, 64);
  EXPECT_EQ(p->arrays[0].dim1, 0);
  EXPECT_EQ(p->arrays[1].dim1, 16);
  EXPECT_EQ(p->arrays[1].type, Type::Int);
  ASSERT_EQ(p->scalars.size(), 2u);
  EXPECT_TRUE(p->scalars[0].is_out);
  EXPECT_DOUBLE_EQ(p->scalars[0].finit, 1.5);
  EXPECT_EQ(p->scalars[1].iinit, -3);
  EXPECT_FALSE(p->scalars[1].is_out);
}

TEST(Parser, LoopNest) {
  const auto p = try_parse(R"(
    program nest
    array A[8][8] fp
    scalar s fp out
    loop i = 0 to 7 {
      loop j = 0 to 7 step 2 {
        s = s + A[i][j];
      }
    }
  )");
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->stmts.size(), 1u);
  const Stmt& outer = *p->stmts[0];
  EXPECT_EQ(outer.kind, StmtKind::Loop);
  EXPECT_EQ(outer.loop_var, "i");
  ASSERT_EQ(outer.body.size(), 1u);
  const Stmt& inner = *outer.body[0];
  EXPECT_EQ(inner.loop_var, "j");
  EXPECT_EQ(inner.step, 2);
  ASSERT_EQ(inner.body.size(), 1u);
  EXPECT_EQ(inner.body[0]->kind, StmtKind::Assign);
}

TEST(Parser, ExpressionsWithPrecedence) {
  const auto p = try_parse(R"(
    program e
    scalar a fp
    scalar b fp
    scalar c fp
    a = b + c * 2.0 - (a / b);
  )");
  ASSERT_TRUE(p.has_value());
  const Stmt& s = *p->stmts[0];
  // ((b + (c*2.0)) - (a/b))
  ASSERT_EQ(s.rhs->kind, ExprKind::Binary);
  EXPECT_EQ(s.rhs->op, BinOp::Sub);
  EXPECT_EQ(s.rhs->lhs->op, BinOp::Add);
  EXPECT_EQ(s.rhs->lhs->rhs->op, BinOp::Mul);
  EXPECT_EQ(s.rhs->rhs->op, BinOp::Div);
}

TEST(Parser, MaxMinAndBreak) {
  const auto p = try_parse(R"(
    program m
    array A[16] fp
    scalar mx fp out
    loop i = 0 to 15 {
      mx = max(mx, A[i]);
      if (mx > 100.0) break;
    }
  )");
  ASSERT_TRUE(p.has_value());
  const Stmt& loop = *p->stmts[0];
  EXPECT_EQ(loop.body[0]->rhs->kind, ExprKind::MinMax);
  EXPECT_TRUE(loop.body[0]->rhs->is_max);
  EXPECT_EQ(loop.body[1]->kind, StmtKind::IfBreak);
  EXPECT_EQ(loop.body[1]->cmp, CmpOp::Gt);
}

TEST(Parser, CommentsAndNegativeLiterals) {
  const auto p = try_parse(R"(
    program c  # trailing comment
    scalar x fp init -2.5e1   # scientific
    # whole-line comment
    x = -x;
  )");
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->scalars[0].finit, -25.0);
  EXPECT_EQ(p->stmts[0]->rhs->kind, ExprKind::Neg);
}

TEST(Parser, ErrorsAreReported) {
  DiagnosticEngine d1;
  EXPECT_FALSE(parse("program\n", d1).has_value());
  EXPECT_TRUE(d1.has_errors());

  DiagnosticEngine d2;
  EXPECT_FALSE(parse("program p\nscalar s fp\ns = ;\n", d2).has_value());
  EXPECT_TRUE(d2.has_errors());

  DiagnosticEngine d3;
  EXPECT_FALSE(parse("program p\nloop i = 0 to 3 { \n", d3).has_value());

  DiagnosticEngine d4;  // general if bodies are unsupported
  EXPECT_FALSE(parse("program p\nscalar s int\nloop i = 0 to 3 { if (s < 2) s = 3; }\n",
                     d4)
                   .has_value());
}

TEST(Parser, ZeroStepRejected) {
  DiagnosticEngine d;
  EXPECT_FALSE(
      parse("program p\nscalar s int\nloop i = 0 to 3 step 0 { s = 1; }\n", d)
          .has_value());
}

}  // namespace
}  // namespace ilp::dsl
