#include "frontend/classify.hpp"

#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "workloads/suite.hpp"

namespace ilp::dsl {
namespace {

std::vector<InnerLoopSummary> classify(std::string_view src) {
  DiagnosticEngine diags;
  const auto p = parse(src, diags);
  EXPECT_TRUE(p.has_value()) << diags.to_string();
  if (!p) return {};
  return classify_innermost_loops(*p);
}

TEST(Classify, VectorAddIsDoall) {
  const auto s = classify(R"(
    program p
    array A[8] fp
    array B[8] fp
    array C[8] fp
    loop i = 0 to 7 { C[i] = A[i] + B[i]; }
  )");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].type, LoopType::DoAll);
  EXPECT_FALSE(s[0].has_conds);
  EXPECT_EQ(s[0].nest_depth, 1);
  EXPECT_EQ(s[0].body_stmts, 1);
}

TEST(Classify, ReductionIsSerial) {
  const auto s = classify(R"(
    program p
    array A[8] fp
    scalar sum fp out
    loop i = 0 to 7 { sum = sum + A[i]; }
  )");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].type, LoopType::Serial);
}

TEST(Classify, SearchIsSerialWithConds) {
  const auto s = classify(R"(
    program p
    array A[8] fp
    scalar m fp out
    loop i = 0 to 7 { m = max(m, A[i]); }
  )");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].type, LoopType::Serial);
  EXPECT_TRUE(s[0].has_conds);
}

TEST(Classify, CarriedArrayDependenceIsDoacross) {
  const auto s = classify(R"(
    program p
    array A[64] fp
    array B[64] fp
    loop i = 2 to 63 { A[i] = A[i-2] + B[i]; }
  )");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].type, LoopType::DoAcross);
}

TEST(Classify, IterationLocalArrayUseIsDoall) {
  const auto s = classify(R"(
    program p
    array A[64] fp
    loop i = 0 to 63 { A[i] = A[i] * 2.0; }
  )");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].type, LoopType::DoAll);
}

TEST(Classify, NonCollidingOffsetsAreIndependent) {
  // Writes even cells, reads odd cells: distance is fractional => no dep.
  const auto s = classify(R"(
    program p
    array A[128] fp
    loop i = 0 to 30 { A[2*i] = A[2*i + 1] * 0.5; }
  )");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].type, LoopType::DoAll);
}

TEST(Classify, StrideTwoCarriedDependence) {
  const auto s = classify(R"(
    program p
    array A[128] fp
    loop i = 1 to 30 { A[2*i] = A[2*i - 2] + 1.0; }
  )");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].type, LoopType::DoAcross);
}

TEST(Classify, PrivateScalarStaysDoall) {
  // t written before read inside each iteration: privatizable.
  const auto s = classify(R"(
    program p
    array A[8] fp
    array C[8] fp
    scalar t fp
    loop i = 0 to 7 {
      t = A[i] * 2.0;
      C[i] = t + 1.0;
    }
  )");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].type, LoopType::DoAll);
}

TEST(Classify, ScalarReadBeforeWriteIsSerial) {
  const auto s = classify(R"(
    program p
    array A[8] fp
    array C[8] fp
    scalar t fp
    loop i = 0 to 7 {
      C[i] = t + 1.0;
      t = A[i] * 2.0;
    }
  )");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].type, LoopType::Serial);
}

TEST(Classify, GeneralRecurrenceIsSerial) {
  const auto s = classify(R"(
    program p
    array B[8] fp
    scalar t fp out
    loop i = 0 to 7 { t = t * 0.5 + B[i]; }
  )");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].type, LoopType::Serial);
}

TEST(Classify, OuterLoopVarTreatedAsInvariant) {
  const auto s = classify(R"(
    program p
    array M[8][8] fp
    array V[8] fp
    loop i = 0 to 7 {
      loop j = 0 to 7 {
        M[i][j] = V[j] * 2.0;
      }
    }
  )");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].nest_depth, 2);
  EXPECT_EQ(s[0].type, LoopType::DoAll);
}

TEST(Classify, RowRecurrenceAcrossOuterVarIsDoallInner) {
  // Dependence is carried by the *outer* loop (i-1 row): the inner loop is
  // still DOALL.
  const auto s = classify(R"(
    program p
    array M[8][8] fp
    loop i = 1 to 7 {
      loop j = 0 to 7 {
        M[i][j] = M[i-1][j] + 1.0;
      }
    }
  )");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].type, LoopType::DoAll);
}

TEST(Classify, IfBreakMarksConds) {
  const auto s = classify(R"(
    program p
    array A[8] fp
    scalar n int out
    loop i = 0 to 7 {
      n = n + 1;
      if (A[i] > 10.0) break;
    }
  )");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE(s[0].has_conds);
}

TEST(Classify, MultipleInnermostLoopsReported) {
  const auto s = classify(R"(
    program p
    array A[8] fp
    array B[8] fp
    scalar x fp out
    loop i = 0 to 7 { A[i] = B[i] + 1.0; }
    loop j = 0 to 7 { x = x + A[j]; }
  )");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].type, LoopType::DoAll);
  EXPECT_EQ(s[1].type, LoopType::Serial);
}

TEST(Classify, NonAffineSubscriptIsSerial) {
  const auto s = classify(R"(
    program p
    array A[64] fp
    array K[64] int
    loop i = 0 to 7 { A[K[i]] = 1.0; }
  )");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].type, LoopType::Serial);
}

TEST(Classify, ReductionOnlyDistinguishesFixableSerialLoops) {
  // Sum reduction: serial but fixable by Lev4.
  auto s1 = classify(R"(
    program p
    array A[8] fp
    scalar sum fp out
    loop i = 0 to 7 { sum = sum + A[i]; }
  )");
  ASSERT_EQ(s1.size(), 1u);
  EXPECT_EQ(s1[0].type, LoopType::Serial);
  EXPECT_TRUE(s1[0].reduction_only);

  // Linear recurrence: serial and NOT fixable.
  auto s2 = classify(R"(
    program p
    array A[8] fp
    scalar t fp out
    loop i = 0 to 7 { t = t * 0.5 + A[i]; }
  )");
  ASSERT_EQ(s2.size(), 1u);
  EXPECT_EQ(s2[0].type, LoopType::Serial);
  EXPECT_FALSE(s2[0].reduction_only);

  // Search reduction: fixable.
  auto s3 = classify(R"(
    program p
    array A[8] fp
    scalar m fp out
    loop i = 0 to 7 { m = max(m, A[i]); }
  )");
  EXPECT_TRUE(s3[0].reduction_only);

  // Reduction plus a carried scalar: not reduction-only.
  auto s4 = classify(R"(
    program p
    array A[8] fp
    array C[8] fp
    scalar sum fp out
    scalar t fp
    loop i = 0 to 7 {
      C[i] = t + 1.0;
      t = A[i];
      sum = sum + A[i];
    }
  )");
  EXPECT_EQ(s4[0].type, LoopType::Serial);
  EXPECT_FALSE(s4[0].reduction_only);

  // DOALL loops are trivially not reduction-only.
  auto s5 = classify(R"(
    program p
    array A[8] fp
    array C[8] fp
    loop i = 0 to 7 { C[i] = A[i]; }
  )");
  EXPECT_FALSE(s5[0].reduction_only);
}

TEST(Classify, ReductionOnlyLoopsInSuiteTakeOffAtLev4) {
  // Structural cross-check over Table 2: the fixable-serial marker matches
  // the loops EXPERIMENTS.md reports as Lev4's big winners.
  int fixable = 0;
  for (const char* name : {"dotprod", "sum", "maxval", "SRS-6", "SDS-1", "NAS-4"}) {
    DiagnosticEngine d;
    const auto ast = parse(ilp::find_workload(name)->source, d);
    ASSERT_TRUE(ast.has_value());
    const auto loops = classify_innermost_loops(*ast);
    EXPECT_TRUE(loops[0].reduction_only) << name;
    ++fixable;
  }
  EXPECT_EQ(fixable, 6);
  // And the genuinely serial ones are not marked.
  for (const char* name : {"LWS-1", "SDS-2", "nasa7-2"}) {
    DiagnosticEngine d;
    const auto ast = parse(ilp::find_workload(name)->source, d);
    const auto loops = classify_innermost_loops(*ast);
    EXPECT_FALSE(loops[0].reduction_only) << name;
  }
}

}  // namespace
}  // namespace ilp::dsl
