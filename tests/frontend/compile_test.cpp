#include "frontend/compile.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "machine/machine.hpp"
#include "sim/simulator.hpp"
#include "trans/level.hpp"

namespace ilp::dsl {
namespace {

using ilp::testing::infinite_issue;

CompileResult must_compile(std::string_view src) {
  DiagnosticEngine diags;
  auto r = compile(src, diags);
  EXPECT_TRUE(r.has_value()) << diags.to_string();
  return std::move(*r);
}

Reg scalar_reg(const CompileResult& r, std::string_view name) {
  for (const auto& [n, reg] : r.scalar_regs)
    if (n == name) return reg;
  ADD_FAILURE() << "no scalar " << name;
  return kNoReg;
}

TEST(Compile, VectorAddComputesCorrectly) {
  CompileResult r = must_compile(R"(
    program vadd
    array A[32] fp
    array B[32] fp
    array C[32] fp
    loop i = 0 to 31 {
      C[i] = A[i] + B[i];
    }
  )");
  const RunOutcome out = run_seeded(r.fn, infinite_issue());
  ASSERT_TRUE(out.result.ok) << out.result.error;
  const ArrayInfo* a = r.fn.array(0);
  const ArrayInfo* b = r.fn.array(1);
  const ArrayInfo* c = r.fn.array(2);
  Memory ref;
  seed_arrays(r.fn, ref);
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(out.memory.load_fp(c->base + 4 * i),
                     ref.load_fp(a->base + 4 * i) + ref.load_fp(b->base + 4 * i))
        << i;
  }
}

TEST(Compile, DotProductLiveOut) {
  CompileResult r = must_compile(R"(
    program dot
    array A[16] fp
    array B[16] fp
    scalar sum fp out
    loop i = 0 to 15 {
      sum = sum + A[i] * B[i];
    }
  )");
  const RunOutcome out = run_seeded(r.fn, infinite_issue());
  ASSERT_TRUE(out.result.ok);
  Memory ref;
  seed_arrays(r.fn, ref);
  double want = 0.0;
  for (int i = 0; i < 16; ++i)
    want += ref.load_fp(r.fn.array(0)->base + 4 * i) *
            ref.load_fp(r.fn.array(1)->base + 4 * i);
  EXPECT_NEAR(out.result.regs.get_fp(scalar_reg(r, "sum").id), want, 1e-12);
}

TEST(Compile, ReductionLowersToSingleRegisterShape) {
  CompileResult r = must_compile(R"(
    program dot
    array A[8] fp
    scalar sum fp out
    loop i = 0 to 7 {
      sum = sum + A[i];
    }
  )");
  // The loop body must contain exactly one FADD targeting sum's register
  // (the canonical accumulator shape, no extra moves).
  const Reg sum = scalar_reg(r, "sum");
  int fadds_to_sum = 0;
  int fmovs = 0;
  for (const auto& b : r.fn.blocks()) {
    if (b.name.rfind("loop.", 0) != 0) continue;
    for (const auto& in : b.insts) {
      if (in.op == Opcode::FADD && in.dst == sum) ++fadds_to_sum;
      if (in.op == Opcode::FMOV) ++fmovs;
    }
  }
  EXPECT_EQ(fadds_to_sum, 1);
  EXPECT_EQ(fmovs, 0);
}

TEST(Compile, TwoDimensionalArrays) {
  CompileResult r = must_compile(R"(
    program mat
    array M[4][8] fp
    array V[8] fp
    array O[4] fp
    scalar t fp
    loop i = 0 to 3 {
      t = 0.0;
      loop j = 0 to 7 {
        t = t + M[i][j] * V[j];
      }
      O[i] = t;
    }
  )");
  const RunOutcome out = run_seeded(r.fn, infinite_issue());
  ASSERT_TRUE(out.result.ok) << out.result.error;
  Memory ref;
  seed_arrays(r.fn, ref);
  const std::int64_t mb = r.fn.array(0)->base;
  const std::int64_t vb = r.fn.array(1)->base;
  const std::int64_t ob = r.fn.array(2)->base;
  for (int i = 0; i < 4; ++i) {
    double want = 0.0;
    for (int j = 0; j < 8; ++j)
      want += ref.load_fp(mb + 4 * (8 * i + j)) * ref.load_fp(vb + 4 * j);
    EXPECT_NEAR(out.memory.load_fp(ob + 4 * i), want, 1e-12) << i;
  }
}

TEST(Compile, StridedAndOffsetSubscripts) {
  CompileResult r = must_compile(R"(
    program stride
    array A[64] fp
    array C[64] fp
    loop i = 0 to 9 {
      C[2*i + 3] = A[i + 2] * 2.0;
    }
  )");
  const RunOutcome out = run_seeded(r.fn, infinite_issue());
  ASSERT_TRUE(out.result.ok);
  Memory ref;
  seed_arrays(r.fn, ref);
  for (int i = 0; i <= 9; ++i)
    EXPECT_DOUBLE_EQ(out.memory.load_fp(r.fn.array(1)->base + 4 * (2 * i + 3)),
                     ref.load_fp(r.fn.array(0)->base + 4 * (i + 2)) * 2.0);
}

TEST(Compile, IntArraysAndModulo) {
  CompileResult r = must_compile(R"(
    program ints
    array K[16] int
    scalar s int out
    loop i = 0 to 15 {
      s = s + K[i] % 3;
    }
  )");
  const RunOutcome out = run_seeded(r.fn, infinite_issue());
  ASSERT_TRUE(out.result.ok);
  Memory ref;
  seed_arrays(r.fn, ref);
  std::int64_t want = 0;
  for (int i = 0; i < 16; ++i) want += ref.load_int(r.fn.array(0)->base + 4 * i) % 3;
  EXPECT_EQ(out.result.regs.get_int(scalar_reg(r, "s").id), want);
}

TEST(Compile, MaxLowersToFmax) {
  CompileResult r = must_compile(R"(
    program mx
    array A[8] fp
    scalar m fp init -1.0e30 out
    loop i = 0 to 7 {
      m = max(m, A[i]);
    }
  )");
  int fmax_count = 0;
  for (const auto& b : r.fn.blocks())
    for (const auto& in : b.insts)
      if (in.op == Opcode::FMAX) ++fmax_count;
  EXPECT_EQ(fmax_count, 1);
  const RunOutcome out = run_seeded(r.fn, infinite_issue());
  Memory ref;
  seed_arrays(r.fn, ref);
  double want = -1.0e30;
  for (int i = 0; i < 8; ++i)
    want = std::max(want, ref.load_fp(r.fn.array(0)->base + 4 * i));
  EXPECT_DOUBLE_EQ(out.result.regs.get_fp(scalar_reg(r, "m").id), want);
}

TEST(Compile, BreakExitsLoopEarly) {
  CompileResult r = must_compile(R"(
    program brk
    scalar n int out
    loop i = 0 to 99 {
      n = n + 1;
      if (n >= 5) break;
    }
  )");
  const RunOutcome out = run_seeded(r.fn, infinite_issue());
  ASSERT_TRUE(out.result.ok);
  EXPECT_EQ(out.result.regs.get_int(scalar_reg(r, "n").id), 5);
}

TEST(Compile, ZeroTripLoopSkipped) {
  CompileResult r = must_compile(R"(
    program zt
    scalar n int out
    loop i = 5 to 2 {
      n = n + 1;
    }
  )");
  const RunOutcome out = run_seeded(r.fn, infinite_issue());
  ASSERT_TRUE(out.result.ok);
  EXPECT_EQ(out.result.regs.get_int(scalar_reg(r, "n").id), 0);
}

TEST(Compile, NegativeStepLoop) {
  CompileResult r = must_compile(R"(
    program down
    scalar n int out
    loop i = 10 to 1 step -2 {
      n = n + i;
    }
  )");
  const RunOutcome out = run_seeded(r.fn, infinite_issue());
  ASSERT_TRUE(out.result.ok);
  EXPECT_EQ(out.result.regs.get_int(scalar_reg(r, "n").id), 10 + 8 + 6 + 4 + 2);
}

TEST(Compile, SemanticErrors) {
  auto fails = [](std::string_view src) {
    DiagnosticEngine diags;
    const auto r = compile(src, diags);
    EXPECT_FALSE(r.has_value());
    EXPECT_TRUE(diags.has_errors());
  };
  fails("program p\nscalar s fp\ns = t;\n");                       // unknown scalar
  fails("program p\narray A[4] fp\nA[0] = B[0];\n");               // unknown array
  fails("program p\narray A[4][4] fp\nA[1] = 0.0;\n");             // missing subscript
  fails("program p\nscalar s int\ns = 1.5;\n");                    // fp into int
  fails("program p\nscalar s fp\ns = 1.0 % 2.0;\n");               // fp modulo
  fails("program p\narray A[4] fp\nscalar s fp\ns = A[1.5];\n");   // fp subscript
  fails("program p\nscalar i int\nloop i = 0 to 3 { i = 1; }\n");  // shadow + assign
  fails("program p\nscalar s int\nif (s < 1) break;\n");           // break outside loop
}

TEST(Compile, FullPipelineOverDslProgram) {
  // End-to-end: DSL -> Conv..Lev4 -> identical observable results.
  const char* src = R"(
    program pipeline
    array A[64] fp
    array B[64] fp
    array C[64] fp
    scalar sum fp out
    loop i = 0 to 63 {
      C[i] = A[i] * 2.0 + B[i];
      sum = sum + C[i];
    }
  )";
  CompileResult base = must_compile(src);
  const RunOutcome want = run_seeded(base.fn, infinite_issue());
  ASSERT_TRUE(want.result.ok);
  for (OptLevel lvl : {OptLevel::Conv, OptLevel::Lev1, OptLevel::Lev2, OptLevel::Lev3,
                       OptLevel::Lev4}) {
    CompileResult r = must_compile(src);
    compile_at_level(r.fn, lvl, MachineModel::issue(8));
    const RunOutcome got = run_seeded(r.fn, MachineModel::issue(8));
    ASSERT_EQ(compare_observable(base.fn, want, got), "") << level_name(lvl);
  }
}

}  // namespace
}  // namespace ilp::dsl
