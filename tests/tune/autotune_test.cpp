// Autotuner tests: deterministic search, the never-worse-than-Lev4 floor,
// cache-driven repeat tuning, the fixed-subgrid pruning audit, and the
// differential interpreter oracle over tuned fuzz programs.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "common/fixtures.hpp"
#include "common/interp.hpp"
#include "engine/cache.hpp"
#include "engine/pool.hpp"
#include "frontend/compile.hpp"
#include "harness/experiment.hpp"
#include "sim/simulator.hpp"
#include "tune/tune.hpp"
#include "workloads/suite.hpp"

namespace ilp {
namespace {

using testing::fuzz_seed_count;
using testing::random_program;
using testing::run_digest;

tune::TuneOptions small_budget() {
  tune::TuneOptions opts;
  opts.beam_width = 2;
  opts.max_rounds = 2;
  opts.max_sims = 16;
  return opts;
}

const std::string& suite_source(const char* name) {
  const Workload* w = find_workload(name);
  EXPECT_NE(w, nullptr) << name;
  return w->source;
}

// --- Determinism ------------------------------------------------------------

// The search must be a pure function of (source, options): rerunning it,
// running it on a thread pool, and running it against a warm cache must all
// produce byte-identical signatures (the signature covers every candidate,
// its round, prune/simulate flag, and cycles).
TEST(Autotune, DeterministicAcrossRerunsParallelismAndCacheWarmth) {
  const std::string& src = suite_source("APS-1");
  const tune::TuneResult serial = tune::autotune(src, small_budget());
  ASSERT_TRUE(serial.ok) << serial.error;
  EXPECT_GT(serial.lev4_cycles, 0u);

  const tune::TuneResult again = tune::autotune(src, small_budget());
  EXPECT_EQ(serial.signature(), again.signature());

  engine::ThreadPool pool(4);
  engine::ResultCache cache;
  const tune::TuneResult parallel =
      tune::autotune(src, small_budget(), &pool, &cache);
  EXPECT_EQ(serial.signature(), parallel.signature());

  const tune::TuneResult warm =
      tune::autotune(src, small_budget(), &pool, &cache);
  EXPECT_EQ(serial.signature(), warm.signature());
}

// --- The floor: best found is never worse than Lev4 -------------------------

TEST(Autotune, BestNeverWorseThanLev4OnWholeSuite) {
  engine::ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
  engine::ResultCache cache;
  for (const Workload& w : workload_suite()) {
    tune::TuneOptions opts = small_budget();
    opts.max_rounds = 1;
    const tune::TuneResult r = tune::autotune(w.source, opts, &pool, &cache);
    ASSERT_TRUE(r.ok) << w.name << ": " << r.error;
    ASSERT_GT(r.lev4_cycles, 0u) << w.name;
    // The Lev4 seed is always simulated, so this holds by construction; it
    // failing means the seed round or the ranking lost a result.
    EXPECT_LE(r.best_cycles, r.lev4_cycles) << w.name;
    EXPECT_GE(r.speedup_vs_lev4(), 1.0) << w.name;
  }
}

// --- Bookkeeping ------------------------------------------------------------

TEST(Autotune, CountsAreConsistentAndAuditTrailIsComplete) {
  const tune::TuneResult r = tune::autotune(suite_source("NAS-2"), small_budget());
  ASSERT_TRUE(r.ok) << r.error;
  // Every considered candidate lands in the audit trail exactly once:
  // simulated, pruned, or failed-to-analyze.
  EXPECT_EQ(r.evals.size(), r.considered);
  EXPECT_LE(r.simulated + r.pruned, r.considered);
  EXPECT_GE(r.simulated, kLevels.size());  // seeds are always simulated
  EXPECT_LE(r.simulated, static_cast<std::uint64_t>(small_budget().max_sims));
  std::uint64_t simulated = 0, pruned = 0, failed = 0;
  for (const tune::CandidateEval& e : r.evals) {
    if (e.simulated)
      ++simulated;
    else if (e.ok)
      ++pruned;
    else
      ++failed;
    if (e.simulated && e.ok) {
      EXPECT_GT(e.cycles, 0u) << e.config.name();
    }
  }
  EXPECT_EQ(simulated, r.simulated);
  EXPECT_EQ(pruned, r.pruned);
  EXPECT_EQ(simulated + pruned + failed, r.considered);
}

TEST(Autotune, RepeatTuningIsServedFromTheCache) {
  engine::ResultCache cache;
  const std::string& src = suite_source("APS-3");
  const tune::TuneResult cold = tune::autotune(src, small_budget(), nullptr, &cache);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.cache_hits, 0u);

  std::uint64_t ok_sims = 0;
  for (const tune::CandidateEval& e : cold.evals)
    if (e.simulated && e.ok) ++ok_sims;

  const tune::TuneResult warm = tune::autotune(src, small_budget(), nullptr, &cache);
  ASSERT_TRUE(warm.ok) << warm.error;
  // Determinism means the second search simulates the same candidates, and
  // every successful measurement replays from the cache.
  EXPECT_EQ(warm.signature(), cold.signature());
  EXPECT_EQ(warm.cache_hits, ok_sims);
}

TEST(Autotune, CancelledStopsAfterSeedsWithBestSoFar) {
  tune::TuneOptions opts = small_budget();
  opts.cancelled = [] { return true; };
  const tune::TuneResult r = tune::autotune(suite_source("APS-1"), opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.stopped_early);
  EXPECT_EQ(r.rounds, 0);
  EXPECT_EQ(r.simulated, kLevels.size());  // exactly the seed round
  EXPECT_LE(r.best_cycles, r.lev4_cycles);
}

TEST(Autotune, BrokenSourceReportsErrorNotCrash) {
  const tune::TuneResult r = tune::autotune("loop { this is not a program",
                                            small_budget());
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

// --- Pruning audit ----------------------------------------------------------

// The cost-model contract from the issue: on a fixed sub-grid, pruning must
// skip a substantial share of the grid while still finding the exhaustive
// best.  The audit measures the pruned-away set too (ground truth), so
// precision is exact, not sampled.
TEST(Autotune, PruningAuditEqualBestOnSubgrid) {
  engine::ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
  engine::ResultCache cache;
  tune::LocalEvaluator eval(&pool, &cache);
  const std::vector<tune::TuneConfig> grid = tune::default_audit_grid();
  for (const char* name : {"APS-1", "NAS-1", "SRS-1", "TFS-1"}) {
    const tune::PruningAudit a =
        tune::audit_pruning(suite_source(name), tune::TuneOptions{}, grid, eval);
    ASSERT_TRUE(a.ok) << name << ": " << a.error;
    EXPECT_EQ(a.grid_size, grid.size()) << name;
    EXPECT_GE(a.pruned_fraction(), 0.30) << name;
    EXPECT_TRUE(a.equal_best())
        << name << ": pruned best " << a.pruned_best << " vs exhaustive best "
        << a.exhaustive_best;
    EXPECT_GT(a.precision(), 0.0) << name;
  }
}

// --- Differential interpreter oracle over tuned fuzz programs ---------------

// For every tuned random program: the winning configuration must (a) run
// under the independent interpreter and produce a stable digest — the same
// config recompiled digests identically, pinning compile determinism — and
// (b) agree with the unoptimized baseline on observable state under the
// standard fp tolerance (Lev3+ winners legally reassociate fp reductions, so
// bit-exactness against the baseline is not required across configs).
TEST(Autotune, TunedFuzzProgramsPreserveSemantics) {
  const int n = fuzz_seed_count(12);
  engine::ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
  engine::ResultCache cache;
  const MachineModel m = MachineModel::issue(8);
  for (int seed = 1; seed <= n; ++seed) {
    const std::string src = random_program(static_cast<std::uint64_t>(seed));
    tune::TuneOptions opts = small_budget();
    opts.max_rounds = 1;
    const tune::TuneResult r = tune::autotune(src, opts, &pool, &cache);
    ASSERT_TRUE(r.ok) << "seed=" << seed << ": " << r.error << "\n" << src;
    ASSERT_LE(r.best_cycles, r.lev4_cycles) << "seed=" << seed;

    DiagnosticEngine diags;
    auto base = dsl::compile(src, diags);
    ASSERT_TRUE(base.has_value()) << diags.to_string();
    const RunOutcome want = run_seeded(base->fn, m);
    ASSERT_TRUE(want.result.ok) << want.result.error << "\n" << src;

    Workload w;
    w.name = "tuned-fuzz";
    w.source = src;
    const auto compile_winner = [&] {
      return try_compile_workload(w, r.best.level, m,
                                  tune::to_compile_options(r.best));
    };
    auto winner = compile_winner();
    ASSERT_TRUE(winner) << "seed=" << seed << ": " << winner.error_message();

    // (a) Interpreter digest: runs, and is reproducible across recompiles.
    bool ok = false;
    std::string err;
    const std::uint64_t digest = run_digest(winner->fn, &ok, &err);
    ASSERT_TRUE(ok) << "seed=" << seed << " config=" << r.best.name() << ": "
                    << err << "\n" << src;
    auto winner2 = compile_winner();
    ASSERT_TRUE(winner2);
    EXPECT_EQ(run_digest(winner2->fn), digest)
        << "seed=" << seed << " config=" << r.best.name();

    // (b) Interpreter state matches the simulator's baseline observables.
    RunOutcome interp;
    seed_arrays(winner->fn, interp.memory);
    testing::InterpResult ir = testing::interpret(winner->fn, interp.memory);
    ASSERT_TRUE(ir.ok) << ir.error;
    interp.result.ok = true;
    interp.result.regs = std::move(ir.regs);
    const std::string diff = compare_observable(base->fn, want, interp, 1e-6);
    ASSERT_EQ(diff, "") << "seed=" << seed << " config=" << r.best.name()
                        << "\n" << src;
  }
}

}  // namespace
}  // namespace ilp
