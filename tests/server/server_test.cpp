// Socket-level tests: a real Server on an ephemeral port, driven through the
// same LineClient that ilp_loadgen uses.  request_stop() here is exactly the
// code path ilpd's SIGTERM handler takes (one self-pipe write), so these
// tests are the drain story end to end: accepted requests answered, new
// connections refused, wait() returning only after both.
#include "server/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>

#include "common/fixtures.hpp"
#include "server/json.hpp"
#include "server/netclient.hpp"
#include "support/strings.hpp"

namespace ilp::server {
namespace {

ServiceConfig workers(int n) {
  ServiceConfig cfg;
  cfg.workers = n;
  return cfg;
}

JsonValue parse_ok(const std::string& line) {
  std::string err;
  auto v = JsonValue::parse(line, &err);
  EXPECT_TRUE(v.has_value()) << err << "\n" << line;
  return v.value_or(JsonValue{});
}

std::string compile_line(std::uint64_t seed, std::int64_t sleep_ms = 0) {
  std::string line = strformat(
      R"({"id": %llu, "kind": "compile", "source": "%s", "level": "lev1")",
      static_cast<unsigned long long>(seed),
      json_escape(ilp::testing::random_program(seed)).c_str());
  if (sleep_ms > 0) line += strformat(R"(, "debug_sleep_ms": %lld)",
                                      static_cast<long long>(sleep_ms));
  line += "}";
  return line;
}

TEST(Server, ServesRequestsOverTcp) {
  Service service(workers(2));
  Server server(service);
  ASSERT_TRUE(server.start()) << server.error();
  ASSERT_GT(server.port(), 0);

  LineClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  ASSERT_TRUE(client.send_line(compile_line(8800)));
  const auto reply = client.recv_line();
  ASSERT_TRUE(reply.has_value());
  const auto v = parse_ok(*reply);
  EXPECT_TRUE(v.find("ok")->as_bool()) << *reply;
  EXPECT_EQ(v.find("id")->as_int(), 8800);
  EXPECT_GT(v.find("cycles")->as_int(), 0);

  // Several requests on one connection; pipelined before any reply is read.
  ASSERT_TRUE(client.send_line(R"({"id": 1, "kind": "stats"})"));
  ASSERT_TRUE(client.send_line(compile_line(8800)));  // warm now
  const auto stats = parse_ok(client.recv_line().value_or(""));
  EXPECT_EQ(stats.find("kind")->as_string(), "stats");
  const auto warm = parse_ok(client.recv_line().value_or(""));
  EXPECT_TRUE(warm.find("cached")->as_bool());
}

TEST(Server, ConcurrentConnectionsAreServed) {
  Service service(workers(4));
  Server server(service);
  ASSERT_TRUE(server.start()) << server.error();

  constexpr int kClients = 6;
  std::vector<std::future<bool>> done;
  done.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    done.push_back(std::async(std::launch::async, [&, i] {
      LineClient c;
      if (!c.connect("127.0.0.1", server.port())) return false;
      for (int r = 0; r < 3; ++r) {
        if (!c.send_line(compile_line(8900 + i))) return false;
        const auto reply = c.recv_line();
        if (!reply) return false;
        const auto v = JsonValue::parse(*reply);
        if (!v || !v->find("ok")->as_bool()) return false;
      }
      return true;
    }));
  }
  for (auto& f : done) EXPECT_TRUE(f.get());
}

TEST(Server, MalformedLineGetsBadRequestNotDisconnect) {
  Service service(workers(1));
  Server server(service);
  ASSERT_TRUE(server.start()) << server.error();

  LineClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  ASSERT_TRUE(client.send_line("this is not json"));
  const auto reply = parse_ok(client.recv_line().value_or(""));
  EXPECT_FALSE(reply.find("ok")->as_bool());
  EXPECT_EQ(reply.find("error")->find("kind")->as_string(), "bad_request");

  // The connection survives the bad line.
  ASSERT_TRUE(client.send_line(R"({"kind": "stats"})"));
  EXPECT_TRUE(parse_ok(client.recv_line().value_or("")).find("ok")->as_bool());
}

// The SIGTERM drain, minus the signal: a request whose line was fully
// received before the stop completes with a real answer; connections arriving
// after the stop are refused at the kernel.
TEST(Server, GracefulDrainAnswersAcceptedRequests) {
  Service service(workers(2));
  Server server(service);
  ASSERT_TRUE(server.start()) << server.error();
  const int port = server.port();

  LineClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port));
  ASSERT_TRUE(client.send_line(compile_line(8950, /*sleep_ms=*/400)));
  while (service.inflight_cells() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  server.request_stop();  // exactly what ilpd's SIGTERM handler calls
  server.wait();          // listener closed, accepted request answered, drained

  const auto reply = client.recv_line(1000);
  ASSERT_TRUE(reply.has_value()) << "accepted request was dropped by the drain";
  EXPECT_TRUE(parse_ok(*reply).find("ok")->as_bool()) << *reply;
  EXPECT_EQ(service.inflight_cells(), 0u);

  LineClient late;
  EXPECT_FALSE(late.connect("127.0.0.1", port));  // refused after stop
}

TEST(Server, StopWithIdleConnectionsReturnsPromptly) {
  Service service(workers(1));
  ServerConfig fast_poll;
  fast_poll.poll_interval_ms = 10;
  Server server(service, fast_poll);
  ASSERT_TRUE(server.start()) << server.error();

  LineClient idle;
  ASSERT_TRUE(idle.connect("127.0.0.1", server.port()));

  const auto t0 = std::chrono::steady_clock::now();
  server.request_stop();
  server.wait();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // An idle connection must not hold the drain hostage; it is noticed within
  // a poll interval, not a socket timeout.
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  EXPECT_FALSE(idle.recv_line(200).has_value());  // server closed it
}

}  // namespace
}  // namespace ilp::server
