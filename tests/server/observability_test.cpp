// End-to-end observability through the service layer: the `metrics` verb,
// per-request trace files, transformation counters in responses, and the
// latency histograms backing stats_json — all via handle_line, no sockets.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "common/fixtures.hpp"
#include "obs/prom_lint.hpp"
#include "server/json.hpp"
#include "server/service.hpp"
#include "support/strings.hpp"

namespace ilp::server {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    static int counter = 0;
    const auto base = std::filesystem::temp_directory_path() /
                      ("ilp_obs_test_" + std::to_string(::getpid()) + "_" +
                       std::to_string(counter++));
    std::filesystem::create_directories(base);
    path = base.string();
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

JsonValue parse_ok(const std::string& line) {
  std::string err;
  auto v = JsonValue::parse(line, &err);
  EXPECT_TRUE(v.has_value()) << err << "\n" << line;
  return v.value_or(JsonValue{});
}

std::string compile_line(std::uint64_t seed, const char* level = "lev4",
                         bool trace = false) {
  return strformat(
      R"({"id": %llu, "kind": "compile", "source": "%s", "level": "%s", "issue": 8%s})",
      static_cast<unsigned long long>(seed),
      json_escape(ilp::testing::random_program(seed)).c_str(), level,
      trace ? R"(, "trace": true)" : "");
}

TEST(Observability, MetricsVerbReturnsValidPrometheusExposition) {
  Service service(ServiceConfig{});
  // Give the histograms something to chew on.
  for (std::uint64_t seed = 1; seed <= 3; ++seed)
    parse_ok(service.handle_line(compile_line(seed)));

  const auto reply =
      parse_ok(service.handle_line(R"({"id": "m", "kind": "metrics"})"));
  ASSERT_TRUE(reply.find("ok")->as_bool());
  EXPECT_EQ(reply.find("kind")->as_string(), "metrics");
  EXPECT_EQ(reply.find("format")->as_string(), "prometheus-0.0.4");
  ASSERT_NE(reply.find("exposition"), nullptr);
  const std::string exposition = reply.find("exposition")->as_string();

  const auto problems = ilp::testing::lint_prometheus(exposition);
  EXPECT_TRUE(problems.empty()) << problems.front() << "\n--- exposition:\n"
                                << exposition;

  // The request-latency histogram must be present and non-empty: we just
  // served three compile requests.
  EXPECT_NE(exposition.find("# TYPE server_request_latency_seconds histogram"),
            std::string::npos);
  EXPECT_EQ(exposition.find("server_request_latency_seconds_count 0\n"),
            std::string::npos);
  // Service counters and gauges ride along.
  EXPECT_NE(exposition.find("server_requests_received"), std::string::npos);
  EXPECT_NE(exposition.find("server_queue_depth"), std::string::npos);
  EXPECT_NE(exposition.find("cache_memory_bytes"), std::string::npos);
  // Phase histograms from compute_cell.
  EXPECT_NE(exposition.find("server_phase_compile_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(exposition.find("server_phase_simulate_seconds_bucket"),
            std::string::npos);
}

// A live-out dot-product reduction: Lev4 must unroll it and expand the
// accumulator (without `out` the whole reduction is dead and DCE'd away).
constexpr const char* kDotProduct =
    "program dot\\narray A[256] fp\\narray B[256] fp\\n"
    "scalar s fp out\\nloop i = 0 to 255 { s = s + A[i] * B[i]; }\\n";

TEST(Observability, CompileResponseCarriesTransformCounters) {
  Service service(ServiceConfig{});
  const auto reply = parse_ok(service.handle_line(
      strformat(R"({"id": 1, "kind": "compile", "source": "%s", "level": "lev4"})",
                kDotProduct)));
  ASSERT_TRUE(reply.find("ok")->as_bool()) << reply.find("error") << "\n";
  const JsonValue* t = reply.find("transforms");
  ASSERT_NE(t, nullptr);
  for (const char* key :
       {"loops_unrolled", "regs_renamed", "accs_expanded", "inds_expanded",
        "searches_expanded", "ops_combined", "strength_reduced",
        "trees_rebalanced", "ir_insts_before", "ir_insts_after"})
    ASSERT_NE(t->find(key), nullptr) << key;
  // Lev4 on a reducible accumulator loop must at least unroll and expand.
  EXPECT_GT(t->find("loops_unrolled")->as_int(), 0);
  EXPECT_GT(t->find("accs_expanded")->as_int(), 0);
  EXPECT_GT(t->find("ir_insts_before")->as_int(), 0);
  EXPECT_GE(t->find("ir_insts_after")->as_int(),
            t->find("ir_insts_before")->as_int());
  // And the response is tagged with the server-minted request id.
  ASSERT_NE(reply.find("request_id"), nullptr);
  EXPECT_EQ(reply.find("request_id")->as_string().rfind("r-", 0), 0u);
}

TEST(Observability, ConvCellReportsZeroTransforms) {
  Service service(ServiceConfig{});
  const auto reply = parse_ok(service.handle_line(
      strformat(R"({"id": 1, "kind": "compile", "source": "%s", "level": "conv"})",
                kDotProduct)));
  ASSERT_TRUE(reply.find("ok")->as_bool());
  const JsonValue* t = reply.find("transforms");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->find("loops_unrolled")->as_int(), 0);
  EXPECT_EQ(t->find("regs_renamed")->as_int(), 0);
  EXPECT_EQ(t->find("accs_expanded")->as_int(), 0);
}

TEST(Observability, TracedRequestWritesChromeTraceWithCorrelatedSpans) {
  TempDir traces;
  ServiceConfig cfg;
  cfg.trace_dir = traces.path;
  Service service(cfg);

  const auto reply =
      parse_ok(service.handle_line(compile_line(42, "lev4", /*trace=*/true)));
  ASSERT_TRUE(reply.find("ok")->as_bool());
  ASSERT_NE(reply.find("request_id"), nullptr);
  const std::string rid = reply.find("request_id")->as_string();
  ASSERT_NE(reply.find("trace_file"), nullptr);
  const std::string trace_file = reply.find("trace_file")->as_string();
  ASSERT_TRUE(std::filesystem::exists(trace_file)) << trace_file;

  std::ifstream in(trace_file);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto doc = parse_ok(ss.str());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  // The trace must contain the request span, the engine job span, and at
  // least one compiler pass span — all tagged with this request's id.
  std::set<std::string> names;
  for (const JsonValue& ev : events->items()) {
    ASSERT_NE(ev.find("name"), nullptr);
    const JsonValue* args = ev.find("args");
    ASSERT_NE(args, nullptr) << "span without args: " << ev.find("name")->as_string();
    ASSERT_NE(args->find("request_id"), nullptr);
    EXPECT_EQ(args->find("request_id")->as_string(), rid);
    names.insert(ev.find("name")->as_string());
  }
  EXPECT_TRUE(names.count("request")) << "missing request span";
  EXPECT_TRUE(names.count("job")) << "missing job span";
  bool has_pass = false;
  for (const std::string& n : names)
    if (n.rfind("pass.", 0) == 0) has_pass = true;
  EXPECT_TRUE(has_pass) << "no pass.* span in trace";
}

TEST(Observability, UntracedRequestsWriteNothing) {
  TempDir traces;
  ServiceConfig cfg;
  cfg.trace_dir = traces.path;
  Service service(cfg);
  parse_ok(service.handle_line(compile_line(43)));
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(traces.path))
    ++files;
  EXPECT_EQ(files, 0u);
}

TEST(Observability, TraceRequestWithoutTraceDirStillSucceeds) {
  Service service(ServiceConfig{});
  const auto reply =
      parse_ok(service.handle_line(compile_line(44, "lev4", /*trace=*/true)));
  ASSERT_TRUE(reply.find("ok")->as_bool());
  EXPECT_EQ(reply.find("trace_file"), nullptr);
}

TEST(Observability, StatsJsonExposesLatencyPercentilesAndGauges) {
  Service service(ServiceConfig{});
  // The latency histogram lives in the process-wide registry, so other
  // tests in this binary may already have fed it: assert on the delta.
  const auto before = parse_ok(service.handle_line(R"({"id": 1, "kind": "stats"})"));
  const std::int64_t baseline =
      before.find("stats")->find("latency_us")->find("count")->as_int();
  for (std::uint64_t seed = 10; seed < 14; ++seed)
    parse_ok(service.handle_line(compile_line(seed)));
  const auto reply = parse_ok(service.handle_line(R"({"id": 2, "kind": "stats"})"));
  const JsonValue* stats = reply.find("stats");
  ASSERT_NE(stats, nullptr);
  const JsonValue* lat = stats->find("latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->as_int(), baseline + 4);
  EXPECT_GT(lat->find("p50")->as_double(), 0.0);
  EXPECT_GE(lat->find("p99")->as_double(), lat->find("p50")->as_double());
  const JsonValue* pool = stats->find("pool");
  ASSERT_NE(pool, nullptr);
  ASSERT_NE(pool->find("queue_depth"), nullptr);
  ASSERT_NE(pool->find("active_jobs"), nullptr);
  EXPECT_EQ(pool->find("queue_depth")->as_int(), 0);  // idle after the burst
  const JsonValue* cache = stats->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->find("memory_bytes")->as_int(), 0);
}

TEST(Observability, RequestIdsAreUniqueAndMonotonic) {
  Service service(ServiceConfig{});
  std::set<std::string> ids;
  for (std::uint64_t seed = 50; seed < 55; ++seed) {
    const auto reply = parse_ok(service.handle_line(compile_line(seed)));
    ASSERT_NE(reply.find("request_id"), nullptr);
    ids.insert(reply.find("request_id")->as_string());
  }
  EXPECT_EQ(ids.size(), 5u);
}

TEST(Observability, CachedRepeatStillGetsFreshRequestIdAndTransforms) {
  TempDir cache;
  ServiceConfig cfg;
  cfg.cache_dir = cache.path;
  Service service(cfg);
  const auto first = parse_ok(service.handle_line(compile_line(77)));
  const auto second = parse_ok(service.handle_line(compile_line(77)));
  ASSERT_TRUE(second.find("ok")->as_bool());
  EXPECT_TRUE(second.find("cached")->as_bool());
  // v2 cache payloads round-trip the transformation counters.
  ASSERT_NE(second.find("transforms"), nullptr);
  EXPECT_EQ(second.find("transforms")->find("loops_unrolled")->as_int(),
            first.find("transforms")->find("loops_unrolled")->as_int());
  EXPECT_NE(first.find("request_id")->as_string(),
            second.find("request_id")->as_string());
}

}  // namespace
}  // namespace ilp::server
