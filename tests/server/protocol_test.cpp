// Wire-protocol unit tests: the JSON reader, request validation, and the
// response serializers, all exercised without a service or a socket.
#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "server/json.hpp"

namespace ilp::server {
namespace {

// --- JSON reader -----------------------------------------------------------

TEST(Json, ParsesScalarsAndNesting) {
  std::string err;
  const auto v = JsonValue::parse(
      R"({"a": 1, "b": -2.5, "c": "x\ny", "d": [true, false, null], "e": {"f": 12345678901234}})",
      &err);
  ASSERT_TRUE(v.has_value()) << err;
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->find("a")->as_int(), 1);
  EXPECT_DOUBLE_EQ(v->find("b")->as_double(), -2.5);
  EXPECT_EQ(v->find("c")->as_string(), "x\ny");
  ASSERT_TRUE(v->find("d")->is_array());
  EXPECT_EQ(v->find("d")->size(), 3u);
  EXPECT_TRUE(v->find("d")->items()[0].as_bool());
  EXPECT_TRUE(v->find("d")->items()[2].is_null());
  // Integral literals round-trip exactly, beyond double's 2^53 comfort zone.
  EXPECT_EQ(v->find("e")->find("f")->as_int(), 12345678901234ll);
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(Json, DecodesUnicodeEscapes) {
  const auto v = JsonValue::parse(R"("Aé中😀")");
  ASSERT_TRUE(v.has_value());
  // A, é (2 bytes), 中 (3 bytes), 😀 (surrogate pair -> 4 bytes).
  EXPECT_EQ(v->as_string(), "A\xc3\xa9\xe4\xb8\xad\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedDocuments) {
  std::string err;
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "1.2.3", "\"unterminated",
        "\"bad\\q\"", "{} trailing", "nan", "--1"}) {
    EXPECT_FALSE(JsonValue::parse(bad, &err).has_value()) << bad;
    EXPECT_NE(err.find("json parse error"), std::string::npos) << bad;
  }
}

TEST(Json, RejectsRawControlCharactersInStrings) {
  EXPECT_FALSE(JsonValue::parse("\"a\nb\"").has_value());
  EXPECT_TRUE(JsonValue::parse(R"("a\nb")").has_value());
}

// --- Request parsing -------------------------------------------------------

TEST(ParseRequest, CompileDefaults) {
  std::string err;
  const auto req =
      parse_request(R"({"id": 7, "kind": "compile", "workload": "APS-1"})", &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->kind, RequestKind::Compile);
  EXPECT_EQ(req->id_json, "7");
  EXPECT_EQ(req->compile.workload, "APS-1");
  EXPECT_TRUE(req->compile.source.empty());
  EXPECT_EQ(req->compile.level, OptLevel::Lev4);
  EXPECT_FALSE(req->compile.transforms.has_value());
  EXPECT_EQ(req->compile.issue, 8);
  EXPECT_EQ(req->compile.unroll, 8);
}

TEST(ParseRequest, CompileExplicitFields) {
  std::string err;
  const auto req = parse_request(
      R"({"id": "req-1", "kind": "compile", "source": "program p\n",)"
      R"( "level": "lev2", "issue": 4, "unroll": 2, "deadline_ms": 1500})",
      &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->id_json, "\"req-1\"");  // string ids re-serialize quoted
  EXPECT_EQ(req->compile.source, "program p\n");
  EXPECT_EQ(req->compile.level, OptLevel::Lev2);
  EXPECT_EQ(req->compile.issue, 4);
  EXPECT_EQ(req->compile.unroll, 2);
  EXPECT_EQ(req->compile.deadline_ms, 1500);
}

TEST(ParseRequest, CompileTransformSetOverridesLevel) {
  std::string err;
  const auto req = parse_request(
      R"({"kind": "compile", "workload": "APS-1",)"
      R"( "transforms": {"unroll": true, "rename": true, "strength": false}})",
      &err);
  ASSERT_TRUE(req.has_value()) << err;
  ASSERT_TRUE(req->compile.transforms.has_value());
  EXPECT_TRUE(req->compile.transforms->unroll);
  EXPECT_TRUE(req->compile.transforms->rename);
  EXPECT_FALSE(req->compile.transforms->strength);
  EXPECT_FALSE(req->compile.transforms->combine);  // absent members default off
  EXPECT_EQ(req->id_json, "null");                 // absent id echoes as null
}

TEST(ParseRequest, BatchFields) {
  std::string err;
  const auto req = parse_request(
      R"({"kind": "batch", "workloads": ["APS-1", "SDS-1"],)"
      R"( "levels": ["conv", "lev4"], "widths": [1, 8], "deadline_ms": 2000})",
      &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->kind, RequestKind::Batch);
  ASSERT_EQ(req->batch.workloads.size(), 2u);
  EXPECT_EQ(req->batch.workloads[1], "SDS-1");
  ASSERT_EQ(req->batch.levels.size(), 2u);
  EXPECT_EQ(req->batch.levels[0], OptLevel::Conv);
  EXPECT_EQ(req->batch.levels[1], OptLevel::Lev4);
  ASSERT_EQ(req->batch.widths.size(), 2u);
  EXPECT_EQ(req->batch.widths[1], 8);
  EXPECT_EQ(req->batch.deadline_ms, 2000);
}

TEST(ParseRequest, RejectsInvalidRequests) {
  std::string err;
  const char* cases[] = {
      "not json at all",
      "[1, 2]",                                              // not an object
      R"({"id": 1})",                                        // missing kind
      R"({"kind": "frobnicate"})",                           // unknown kind
      R"({"kind": "compile"})",                              // no source/workload
      R"({"kind": "compile", "source": "x", "workload": "y"})",  // both
      R"({"kind": "compile", "workload": "APS-1", "level": "lev9"})",
      R"({"kind": "compile", "workload": "APS-1", "issue": 0})",
      R"({"kind": "compile", "workload": "APS-1", "issue": "wide"})",
      R"({"kind": "compile", "workload": "APS-1", "transforms": ["unroll"]})",
      R"({"kind": "batch", "widths": [0]})",
      R"({"kind": "batch", "levels": ["fast"]})",
  };
  for (const char* line : cases) {
    err.clear();
    EXPECT_FALSE(parse_request(line, &err).has_value()) << line;
    EXPECT_FALSE(err.empty()) << line;
  }
}

// --- Response serialization ------------------------------------------------

TEST(Serialize, CompileResponseRoundTripsThroughTheReader) {
  CompileResponse r;
  r.cycles = 590;
  r.base_cycles = 2707;
  r.speedup = 4.588;
  r.dynamic_instructions = 1648;
  r.stall_cycles = 219;
  r.static_instructions = 86;
  r.blocks = 7;
  r.int_regs = 3;
  r.fp_regs = 24;
  r.cached = true;
  const std::string line = serialize_compile_response("42", r);

  std::string err;
  const auto v = JsonValue::parse(line, &err);
  ASSERT_TRUE(v.has_value()) << err << "\n" << line;
  EXPECT_EQ(v->find("id")->as_int(), 42);
  EXPECT_TRUE(v->find("ok")->as_bool());
  EXPECT_EQ(v->find("kind")->as_string(), "compile");
  EXPECT_EQ(v->find("cycles")->as_int(), 590);
  EXPECT_EQ(v->find("base_cycles")->as_int(), 2707);
  EXPECT_NEAR(v->find("speedup")->as_double(), 4.588, 1e-6);
  EXPECT_EQ(v->find("schedule")->find("blocks")->as_int(), 7);
  EXPECT_EQ(v->find("schedule")->find("stall_cycles")->as_int(), 219);
  EXPECT_EQ(v->find("registers")->find("int")->as_int(), 3);
  EXPECT_EQ(v->find("registers")->find("fp")->as_int(), 24);
  EXPECT_TRUE(v->find("cached")->as_bool());
}

TEST(Serialize, ErrorResponseCarriesKindAndEscapedMessage) {
  const std::string line =
      serialize_error("\"x\"", ErrorKind::Overloaded, "queue \"full\"\n");
  std::string err;
  const auto v = JsonValue::parse(line, &err);
  ASSERT_TRUE(v.has_value()) << err << "\n" << line;
  EXPECT_EQ(v->find("id")->as_string(), "x");
  EXPECT_FALSE(v->find("ok")->as_bool());
  EXPECT_EQ(v->find("error")->find("kind")->as_string(), "overloaded");
  EXPECT_EQ(v->find("error")->find("message")->as_string(), "queue \"full\"\n");
}

TEST(Serialize, EveryErrorKindHasAStableName) {
  EXPECT_STREQ(error_kind_name(ErrorKind::BadRequest), "bad_request");
  EXPECT_STREQ(error_kind_name(ErrorKind::Overloaded), "overloaded");
  EXPECT_STREQ(error_kind_name(ErrorKind::ShuttingDown), "shutting_down");
  EXPECT_STREQ(error_kind_name(ErrorKind::DeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(error_kind_name(ErrorKind::CompileError), "compile_error");
  EXPECT_STREQ(error_kind_name(ErrorKind::SimError), "sim_error");
  EXPECT_STREQ(error_kind_name(ErrorKind::Internal), "internal");
}

}  // namespace
}  // namespace ilp::server
