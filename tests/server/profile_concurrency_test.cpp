// Concurrent profile accumulation: many threads drive profiled and
// unprofiled compile requests over a shared cell set through both service
// entry points while readers poll the `profile` verb, then the daemon-wide
// accumulators are compared EXACTLY against a single-threaded local
// recompute of every distinct cell.  Works because execution is
// exactly-once per cell key (coalescing + result cache), the simulator is
// deterministic, and the `{"profile": true}` flag only gates serialization
// — so the totals are independent of thread interleaving.  Run under TSan
// in CI, this also pins the accumulators' and hot-tier's thread safety.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "server/json.hpp"
#include "server/service.hpp"
#include "sim/profile.hpp"
#include "support/strings.hpp"
#include "workloads/suite.hpp"

namespace ilp::server {
namespace {

const char* wire_level(OptLevel level) {
  switch (level) {
    case OptLevel::Conv: return "conv";
    case OptLevel::Lev1: return "lev1";
    case OptLevel::Lev2: return "lev2";
    case OptLevel::Lev3: return "lev3";
    case OptLevel::Lev4: return "lev4";
  }
  return "conv";
}

struct CellSpec {
  const Workload* w = nullptr;
  OptLevel level = OptLevel::Conv;
  int width = 1;
};

// Ground truth for one cell, recomputed outside the service.
struct CellTruth {
  std::uint64_t cycles = 0;
  std::array<std::uint64_t, kNumStallCauses> slots{};
  std::vector<std::uint64_t> occupancy;
};

CellTruth local_truth(const CellSpec& s) {
  // Mirror compute_cell's options: request defaults unroll=8, list
  // scheduler, no nest restructuring.
  const MachineModel m = MachineModel::issue(s.width);
  CompileOptions opts;
  opts.unroll.max_factor = 8;
  auto compiled = try_compile_workload(*s.w, s.level, m, opts);
  EXPECT_TRUE(compiled.has_value()) << s.w->name;
  auto sim = try_simulate_profile(compiled->fn, m);
  EXPECT_TRUE(sim.has_value()) << s.w->name;
  EXPECT_EQ(sim->profile.check_conservation(), "");
  CellTruth t;
  t.cycles = sim->result.cycles;
  t.slots = sim->profile.slots;
  t.occupancy = sim->profile.occupancy;
  return t;
}

std::string compile_line(const CellSpec& s, bool profile, int id) {
  return strformat(
      "{\"id\": %d, \"kind\": \"compile\", \"workload\": \"%s\", "
      "\"level\": \"%s\", \"issue\": %d%s}",
      id, s.w->name.c_str(), wire_level(s.level), s.width,
      profile ? ", \"profile\": true" : "");
}

JsonValue parse_line(const std::string& line) {
  std::string err;
  auto v = JsonValue::parse(line, &err);
  EXPECT_TRUE(v.has_value()) << err << "\n" << line;
  return v.value_or(JsonValue{});
}

void expect_profile_matches(const JsonValue& prof, const CellSpec& s,
                            const CellTruth& t) {
  ASSERT_NE(prof.find("slots"), nullptr);
  EXPECT_EQ(prof.find("width")->as_int(), s.width);
  EXPECT_EQ(prof.find("cycles")->as_int(),
            static_cast<std::int64_t>(t.cycles));
  for (int i = 0; i < kNumStallCauses; ++i) {
    const StallCause cause = static_cast<StallCause>(i);
    const JsonValue* slot = prof.find("slots")->find(stall_cause_name(cause));
    ASSERT_NE(slot, nullptr) << stall_cause_name(cause);
    EXPECT_EQ(slot->as_int(),
              static_cast<std::int64_t>(t.slots[static_cast<std::size_t>(i)]))
        << s.w->name << " " << stall_cause_name(cause);
  }
  const JsonValue* occ = prof.find("occupancy");
  ASSERT_NE(occ, nullptr);
  ASSERT_EQ(occ->size(), t.occupancy.size());
  for (std::size_t k = 0; k < t.occupancy.size(); ++k)
    EXPECT_EQ(occ->items()[k].as_int(),
              static_cast<std::int64_t>(t.occupancy[k]));
}

TEST(ProfileConcurrency, AccumulatorsMatchLocalRecomputeExactly) {
  const auto& suite = workload_suite();
  std::vector<CellSpec> cells;
  for (std::size_t i = 0; i < 5 && i < suite.size(); ++i)
    for (const OptLevel level : kLevels)
      for (const int width : {2, 8}) cells.push_back({&suite[i], level, width});

  std::vector<CellTruth> truth;
  truth.reserve(cells.size());
  std::array<std::uint64_t, kNumStallCauses> want_slots{};
  std::uint64_t want_cycles = 0;
  for (const CellSpec& s : cells) {
    truth.push_back(local_truth(s));
    want_cycles += truth.back().cycles;
    for (int i = 0; i < kNumStallCauses; ++i)
      want_slots[static_cast<std::size_t>(i)] +=
          truth.back().slots[static_cast<std::size_t>(i)];
  }

  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_limit = 256;
  Service service(cfg);

  // 8 writers x every cell, half asking for the profile payload, entry
  // point alternating between the pool path and the direct path; one reader
  // polls the `profile` verb throughout (it must always parse and conserve).
  constexpr int kThreads = 8;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::string line =
          service.handle_line("{\"id\": 0, \"kind\": \"profile\"}");
      const JsonValue v = parse_line(line);
      ASSERT_TRUE(v.find("ok")->as_bool());
      const JsonValue* p = v.find("profile");
      ASSERT_NE(p, nullptr);
      // Mid-run snapshot: whole executed cells only, so slots stay a
      // multiple-free partition — verify it sums to 8 * cycles-ish bound is
      // not possible mid-cell-mix of widths; just require parseability and
      // monotone sanity (issued <= total).
      ASSERT_NE(p->find("slots"), nullptr);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&, t] {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const std::size_t idx = (i + static_cast<std::size_t>(t) * 7) % cells.size();
        const bool profiled = (t + static_cast<int>(i)) % 2 == 0;
        const std::string line =
            compile_line(cells[idx], profiled, t * 1000 + static_cast<int>(i));
        const std::string resp = (t % 2 == 0)
                                     ? service.handle_line(line)
                                     : service.serve(line).to_line();
        const JsonValue v = parse_line(resp);
        ASSERT_TRUE(v.find("ok")->as_bool()) << resp;
        const JsonValue* prof = v.find("profile");
        if (profiled) {
          ASSERT_NE(prof, nullptr) << resp;
          expect_profile_matches(*prof, cells[idx], truth[idx]);
        } else {
          EXPECT_EQ(prof, nullptr) << resp;
        }
      }
    });
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // Exactly-once execution per cell key makes the daemon totals equal the
  // local recompute, independent of interleaving.
  const JsonValue v =
      parse_line(service.handle_line("{\"id\": 1, \"kind\": \"profile\"}"));
  const JsonValue* p = v.find("profile");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->find("cells")->as_int(), static_cast<std::int64_t>(cells.size()));
  EXPECT_EQ(p->find("cycles")->as_int(), static_cast<std::int64_t>(want_cycles));
  for (int i = 0; i < kNumStallCauses; ++i) {
    const StallCause cause = static_cast<StallCause>(i);
    EXPECT_EQ(p->find("slots")->find(stall_cause_name(cause))->as_int(),
              static_cast<std::int64_t>(want_slots[static_cast<std::size_t>(i)]))
        << stall_cause_name(cause);
  }
  // Occupancy bins sum to total cycles (bin identity survives aggregation).
  const JsonValue* occ = p->find("occupancy");
  ASSERT_NE(occ, nullptr);
  std::int64_t occ_sum = 0;
  for (const JsonValue& bin : occ->items()) occ_sum += bin.as_int();
  EXPECT_EQ(occ_sum, static_cast<std::int64_t>(want_cycles));

  // The executed-cell counter agrees: every later request was a cache, hot
  // or coalesced hit.
  EXPECT_EQ(service.counters().cells_executed, cells.size());
}

}  // namespace
}  // namespace ilp::server
