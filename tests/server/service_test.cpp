// Service-layer tests: admission control, request coalescing, deadlines and
// graceful drain, all through handle_line — no sockets involved.  The
// debug_sleep_ms request field (part of the cell key) manufactures slow cells
// so overload and drain states are reachable deterministically.
#include "server/service.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/fixtures.hpp"
#include "server/json.hpp"
#include "support/strings.hpp"

namespace ilp::server {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    static int counter = 0;
    const auto base = std::filesystem::temp_directory_path() /
                      ("ilp_service_test_" + std::to_string(::getpid()) + "_" +
                       std::to_string(counter++));
    std::filesystem::create_directories(base);
    path = base.string();
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

ServiceConfig config(int workers, std::size_t queue_limit = 64,
                     std::string cache_dir = "") {
  ServiceConfig cfg;
  cfg.workers = workers;
  cfg.queue_limit = queue_limit;
  cfg.cache_dir = std::move(cache_dir);
  return cfg;
}

JsonValue parse_ok(const std::string& line) {
  std::string err;
  auto v = JsonValue::parse(line, &err);
  EXPECT_TRUE(v.has_value()) << err << "\n" << line;
  return v.value_or(JsonValue{});
}

std::string error_kind_of(const JsonValue& v) {
  const JsonValue* e = v.find("error");
  return e != nullptr && e->find("kind") != nullptr ? e->find("kind")->as_string()
                                                    : std::string();
}

// A compile request over a generated source; `sleep_ms` manufactures a slow
// cell (and is part of the cell key, so distinct sleeps never coalesce).
std::string compile_line(std::uint64_t seed, std::int64_t sleep_ms = 0,
                         std::int64_t deadline_ms = 0) {
  std::string line = strformat(
      R"({"id": %llu, "kind": "compile", "source": "%s", "level": "lev2", "issue": 8)",
      static_cast<unsigned long long>(seed),
      json_escape(ilp::testing::random_program(seed)).c_str());
  if (sleep_ms > 0) line += strformat(R"(, "debug_sleep_ms": %lld)",
                                      static_cast<long long>(sleep_ms));
  if (deadline_ms > 0) line += strformat(R"(, "deadline_ms": %lld)",
                                         static_cast<long long>(deadline_ms));
  line += "}";
  return line;
}

TEST(Service, CompileRequestReturnsMeasuredCell) {
  Service service(config(2));
  const auto v = parse_ok(service.handle_line(
      R"({"id": 1, "kind": "compile", "workload": "APS-1", "level": "lev4"})"));
  ASSERT_TRUE(v.find("ok")->as_bool()) << error_kind_of(v);
  EXPECT_GT(v.find("cycles")->as_int(), 0);
  EXPECT_GT(v.find("base_cycles")->as_int(), v.find("cycles")->as_int());
  EXPECT_GT(v.find("speedup")->as_double(), 1.0);
  EXPECT_GT(v.find("registers")->find("fp")->as_int(), 0);
  EXPECT_FALSE(v.find("cached")->as_bool());
}

TEST(Service, RepeatRequestIsServedFromCache) {
  Service service(config(2));
  const std::string line = compile_line(9001);
  const auto first = parse_ok(service.handle_line(line));
  ASSERT_TRUE(first.find("ok")->as_bool()) << error_kind_of(first);
  EXPECT_FALSE(first.find("cached")->as_bool());

  const auto second = parse_ok(service.handle_line(line));
  ASSERT_TRUE(second.find("ok")->as_bool());
  EXPECT_TRUE(second.find("cached")->as_bool());
  EXPECT_EQ(second.find("cycles")->as_int(), first.find("cycles")->as_int());
  EXPECT_EQ(service.counters().cells_executed, 1u);
}

TEST(Service, CacheSurvivesRestartThroughDiskTier) {
  TempDir dir;
  const std::string line = compile_line(9002);
  std::int64_t cycles = 0;
  {
    Service service(config(2, 64, dir.path));
    const auto v = parse_ok(service.handle_line(line));
    ASSERT_TRUE(v.find("ok")->as_bool()) << error_kind_of(v);
    cycles = v.find("cycles")->as_int();
  }
  Service restarted(config(2, 64, dir.path));
  const auto v = parse_ok(restarted.handle_line(line));
  ASSERT_TRUE(v.find("ok")->as_bool());
  EXPECT_TRUE(v.find("cached")->as_bool());
  EXPECT_EQ(v.find("cycles")->as_int(), cycles);
  EXPECT_EQ(restarted.counters().cells_executed, 0u);
}

// The bounded queue: capacity = workers + queue_limit = 1; a second distinct
// request while the first sleeps must be rejected immediately with
// `overloaded` — not parked, not hung.
TEST(Service, OverloadIsRejectedImmediately) {
  Service service(config(1, 0));
  ASSERT_EQ(service.capacity(), 1u);

  auto slow = std::async(std::launch::async, [&] {
    return service.handle_line(compile_line(9100, /*sleep_ms=*/800));
  });
  while (service.inflight_cells() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  const auto t0 = std::chrono::steady_clock::now();
  const auto v = parse_ok(service.handle_line(compile_line(9101)));
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_FALSE(v.find("ok")->as_bool());
  EXPECT_EQ(error_kind_of(v), "overloaded");
  EXPECT_LT(elapsed, std::chrono::milliseconds(500));  // never waits for the slot
  EXPECT_EQ(service.counters().overloaded, 1u);

  const auto ok = parse_ok(slow.get());
  EXPECT_TRUE(ok.find("ok")->as_bool()) << error_kind_of(ok);
}

TEST(Service, OverflowingBatchIsRejectedWhole) {
  Service service(config(1, 1));  // capacity 2
  const auto v = parse_ok(service.handle_line(
      R"({"kind": "batch", "workloads": ["APS-1"], "levels": ["conv"],)"
      R"( "widths": [1, 2, 4]})"));  // 3 cells > capacity 2
  EXPECT_FALSE(v.find("ok")->as_bool());
  EXPECT_EQ(error_kind_of(v), "overloaded");
  EXPECT_EQ(service.inflight_cells(), 0u);  // all-or-nothing admission
}

// Two identical in-flight requests coalesce onto one engine job.
TEST(Service, DuplicateInflightRequestsCoalesce) {
  Service service(config(2));
  const std::string line = compile_line(9200, /*sleep_ms=*/300);

  auto a = std::async(std::launch::async, [&] { return service.handle_line(line); });
  while (service.inflight_cells() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto b = std::async(std::launch::async, [&] { return service.handle_line(line); });

  const auto ra = parse_ok(a.get());
  const auto rb = parse_ok(b.get());
  ASSERT_TRUE(ra.find("ok")->as_bool()) << error_kind_of(ra);
  ASSERT_TRUE(rb.find("ok")->as_bool()) << error_kind_of(rb);
  EXPECT_EQ(ra.find("cycles")->as_int(), rb.find("cycles")->as_int());

  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.coalesced, 1u);       // the second arrival joined the first
  EXPECT_EQ(c.cells_executed, 1u);  // exactly one cell ran
}

TEST(Service, DeadlineExceededWhileQueued) {
  Service service(config(1, 4));
  // Occupy the only worker...
  auto slow = std::async(std::launch::async, [&] {
    return service.handle_line(compile_line(9300, /*sleep_ms=*/600));
  });
  while (service.inflight_cells() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // ...so this one times out in the queue and reports deadline_exceeded.
  const auto v = parse_ok(
      service.handle_line(compile_line(9301, /*sleep_ms=*/0, /*deadline_ms=*/60)));
  EXPECT_FALSE(v.find("ok")->as_bool());
  EXPECT_EQ(error_kind_of(v), "deadline_exceeded");
  EXPECT_GE(service.counters().deadline_exceeded, 1u);

  EXPECT_TRUE(parse_ok(slow.get()).find("ok")->as_bool());
  service.begin_drain();
  service.wait_drained();  // the cancelled cell settled; nothing leaks
  EXPECT_EQ(service.inflight_cells(), 0u);
}

TEST(Service, BatchComputesFullCrossProduct) {
  Service service(config(4));
  const auto v = parse_ok(service.handle_line(
      R"({"id": 5, "kind": "batch", "workloads": ["APS-1", "SDS-1"],)"
      R"( "levels": ["conv", "lev4"], "widths": [1, 8]})"));
  ASSERT_TRUE(v.find("ok")->as_bool()) << error_kind_of(v);
  const JsonValue* cells = v.find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->size(), 8u);  // 2 workloads x 2 levels x 2 widths
  for (const JsonValue& cell : cells->items()) {
    EXPECT_EQ(cell.find("error")->as_string(), "");
    EXPECT_GT(cell.find("cycles")->as_int(), 0);
  }
  // Lev4@8 must beat Conv@1 for APS-1 (the paper's headline case).
  EXPECT_LT(cells->items()[3].find("cycles")->as_int(),
            cells->items()[0].find("cycles")->as_int());
  EXPECT_EQ(service.inflight_cells(), 0u);
}

TEST(Service, BatchReusesCompileCacheEntries) {
  Service service(config(2));
  parse_ok(service.handle_line(
      R"({"kind": "compile", "workload": "SDS-1", "level": "conv", "issue": 1})"));
  const std::uint64_t executed = service.counters().cells_executed;
  const auto v = parse_ok(service.handle_line(
      R"({"kind": "batch", "workloads": ["SDS-1"], "levels": ["conv"], "widths": [1]})"));
  ASSERT_TRUE(v.find("ok")->as_bool());
  // The batch cell hit the entry the compile request stored: same key space.
  EXPECT_EQ(service.counters().cells_executed, executed);
}

// Drain: new work is refused with `shutting_down`, the sleeping request that
// was already admitted completes, and wait_drained() returns.
TEST(Service, DrainFinishesAdmittedWorkAndRefusesNew) {
  Service service(config(2));
  auto slow = std::async(std::launch::async, [&] {
    return service.handle_line(compile_line(9400, /*sleep_ms=*/400));
  });
  while (service.inflight_cells() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  service.begin_drain();
  EXPECT_TRUE(service.draining());

  const auto refused = parse_ok(service.handle_line(compile_line(9401)));
  EXPECT_FALSE(refused.find("ok")->as_bool());
  EXPECT_EQ(error_kind_of(refused), "shutting_down");

  // Stats must still answer during a drain (that is how drains are observed).
  const auto stats = parse_ok(service.handle_line(R"({"kind": "stats"})"));
  ASSERT_TRUE(stats.find("ok")->as_bool());
  EXPECT_TRUE(stats.find("stats")->find("draining")->as_bool());

  service.wait_drained();
  EXPECT_EQ(service.inflight_cells(), 0u);
  const auto done = parse_ok(slow.get());
  EXPECT_TRUE(done.find("ok")->as_bool()) << error_kind_of(done);
}

TEST(Service, MalformedAndUnknownInputsProduceProtocolErrors) {
  Service service(config(1));
  EXPECT_EQ(error_kind_of(parse_ok(service.handle_line("{{{{"))), "bad_request");
  EXPECT_EQ(error_kind_of(parse_ok(service.handle_line(
                R"({"kind": "compile", "workload": "NOPE-99"})"))),
            "bad_request");
  const auto compile_err = parse_ok(service.handle_line(
      R"({"kind": "compile", "source": "program broken\nloop i = {"})"));
  EXPECT_EQ(error_kind_of(compile_err), "compile_error");
  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.bad_request, 2u);
  EXPECT_EQ(c.compile_errors, 1u);
  EXPECT_EQ(service.inflight_cells(), 0u);
}

TEST(Service, StatsReflectTraffic) {
  Service service(config(2));
  parse_ok(service.handle_line(compile_line(9500)));
  parse_ok(service.handle_line(compile_line(9500)));  // cache hit
  const auto v = parse_ok(service.handle_line(R"({"id": 9, "kind": "stats"})"));
  ASSERT_TRUE(v.find("ok")->as_bool());
  EXPECT_EQ(v.find("id")->as_int(), 9);
  const JsonValue* stats = v.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->find("requests")->find("received")->as_int(), 3);
  EXPECT_EQ(stats->find("cells_executed")->as_int(), 1);
  EXPECT_EQ(stats->find("workers")->as_int(), 2);
  EXPECT_GT(stats->find("cache")->find("hits")->as_int(), 0);
}

}  // namespace
}  // namespace ilp::server
