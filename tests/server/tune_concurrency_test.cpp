// Autotune verb tests: protocol validation, whole-result caching, deadline
// and drain behavior, the tune job limit, stats/metrics families, and mixed
// concurrent autotune+compile traffic (the TSan target for the tuner's
// service integration).
#include "server/service.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/fixtures.hpp"
#include "server/json.hpp"
#include "support/strings.hpp"

namespace ilp::server {
namespace {

JsonValue parse_ok(const std::string& line) {
  std::string err;
  auto v = JsonValue::parse(line, &err);
  EXPECT_TRUE(v.has_value()) << err << "\n" << line;
  return v.value_or(JsonValue{});
}

std::string error_kind_of(const JsonValue& v) {
  const JsonValue* e = v.find("error");
  return e != nullptr && e->find("kind") != nullptr ? e->find("kind")->as_string()
                                                    : std::string();
}

std::string autotune_line(const std::string& workload, int rounds = 1,
                          std::int64_t deadline_ms = 0, int max_sims = 12) {
  std::string line = strformat(
      R"({"id": 7, "kind": "autotune", "workload": "%s", "beam": 2, )"
      R"("rounds": %d, "max_sims": %d)",
      workload.c_str(), rounds, max_sims);
  if (deadline_ms > 0)
    line += strformat(R"(, "deadline_ms": %lld)",
                      static_cast<long long>(deadline_ms));
  line += "}";
  return line;
}

ServiceConfig config(int workers) {
  ServiceConfig cfg;
  cfg.workers = workers;
  return cfg;
}

TEST(TuneVerb, AutotuneReturnsBestNoWorseThanLev4) {
  Service service(config(4));
  const JsonValue v = parse_ok(service.handle_line(autotune_line("APS-1")));
  ASSERT_TRUE(v.find("ok") != nullptr && v.find("ok")->as_bool()) << error_kind_of(v);
  EXPECT_EQ(v.find("kind")->as_string(), "autotune");
  EXPECT_FALSE(v.find("cached")->as_bool());
  ASSERT_NE(v.find("request_id"), nullptr);
  const JsonValue* r = v.find("result");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->find("ok")->as_bool());
  const std::int64_t best = r->find("best_cycles")->as_int();
  const std::int64_t lev4 = r->find("lev4_cycles")->as_int();
  EXPECT_GT(lev4, 0);
  EXPECT_LE(best, lev4);
  EXPECT_GE(r->find("speedup_vs_lev4")->as_double(), 1.0);

  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.tune_requests, 1u);
  EXPECT_EQ(c.tune_cached, 0u);
  EXPECT_GE(c.tune_candidates_simulated, 5u);  // the seed round at minimum
}

TEST(TuneVerb, RepeatSearchReplaysWholeResultFromCache) {
  Service service(config(4));
  const std::string line = autotune_line("SRS-1");
  const JsonValue cold = parse_ok(service.handle_line(line));
  ASSERT_TRUE(cold.find("ok")->as_bool());
  const JsonValue warm = parse_ok(service.handle_line(line));
  ASSERT_TRUE(warm.find("ok")->as_bool());
  EXPECT_TRUE(warm.find("cached")->as_bool());
  // The replay is the stored search verbatim: same winner, same counts.
  EXPECT_EQ(warm.find("result")->find("best_name")->as_string(),
            cold.find("result")->find("best_name")->as_string());
  EXPECT_EQ(warm.find("result")->find("best_cycles")->as_int(),
            cold.find("result")->find("best_cycles")->as_int());
  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.tune_requests, 2u);
  EXPECT_EQ(c.tune_cached, 1u);
}

TEST(TuneVerb, MalformedRequestsAreBadRequests) {
  Service service(config(2));
  const char* bad[] = {
      // unknown workload
      R"({"kind": "autotune", "workload": "NOPE-9"})",
      // neither source nor workload / both at once
      R"({"kind": "autotune"})",
      R"({"kind": "autotune", "workload": "APS-1", "source": "x"})",
      // out-of-range knobs
      R"({"kind": "autotune", "workload": "APS-1", "sim_fraction": 0})",
      R"({"kind": "autotune", "workload": "APS-1", "sim_fraction": 1.5})",
      R"({"kind": "autotune", "workload": "APS-1", "beam": 0})",
      R"({"kind": "autotune", "workload": "APS-1", "rounds": -1})",
      R"({"kind": "autotune", "workload": "APS-1", "max_sims": 0})",
  };
  for (const char* line : bad) {
    const JsonValue v = parse_ok(service.handle_line(line));
    EXPECT_FALSE(v.find("ok")->as_bool()) << line;
    EXPECT_EQ(error_kind_of(v), "bad_request") << line;
  }
}

TEST(TuneVerb, DeadlineStopsSearchWithBestSoFarNotError) {
  Service service(config(4));
  // 1 ms cannot cover the seed round, so the search stops at the first
  // cancellation poll — and still answers with the seeds' best.
  const JsonValue v =
      parse_ok(service.handle_line(autotune_line("APS-1", /*rounds=*/4,
                                                 /*deadline_ms=*/1,
                                                 /*max_sims=*/48)));
  ASSERT_TRUE(v.find("ok")->as_bool()) << error_kind_of(v);
  const JsonValue* r = v.find("result");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->find("stopped_early")->as_bool());
  EXPECT_LE(r->find("best_cycles")->as_int(), r->find("lev4_cycles")->as_int());
  EXPECT_EQ(service.counters().tune_stopped_early, 1u);

  // A truncated search must not poison the whole-result cache: the same
  // search with a generous deadline runs fresh and completes...
  const JsonValue full =
      parse_ok(service.handle_line(autotune_line("APS-1", /*rounds=*/4)));
  ASSERT_TRUE(full.find("ok")->as_bool());
  EXPECT_FALSE(full.find("cached")->as_bool());
  EXPECT_FALSE(full.find("result")->find("stopped_early")->as_bool());
  // ...and only the complete run is what later requests replay.
  const JsonValue warm =
      parse_ok(service.handle_line(autotune_line("APS-1", /*rounds=*/4)));
  EXPECT_TRUE(warm.find("cached")->as_bool());
  EXPECT_FALSE(warm.find("result")->find("stopped_early")->as_bool());
}

TEST(TuneVerb, DrainRefusesNewSearches) {
  Service service(config(2));
  service.begin_drain();
  const JsonValue v = parse_ok(service.handle_line(autotune_line("APS-1")));
  EXPECT_FALSE(v.find("ok")->as_bool());
  EXPECT_EQ(error_kind_of(v), "shutting_down");
}

TEST(TuneVerb, JobLimitRejectsSearchesAsOverloaded) {
  ServiceConfig cfg = config(2);
  cfg.tune_job_limit = 0;
  Service service(cfg);
  const JsonValue v = parse_ok(service.handle_line(autotune_line("APS-1")));
  EXPECT_FALSE(v.find("ok")->as_bool());
  EXPECT_EQ(error_kind_of(v), "overloaded");
}

TEST(TuneVerb, StatsAndMetricsCarryTuneFamilies) {
  Service service(config(4));
  // The exposition carries the tune histograms from boot, before any search.
  EXPECT_NE(service.metrics_exposition().find("tune_phase_search_seconds"),
            std::string::npos);
  ASSERT_TRUE(parse_ok(service.handle_line(autotune_line("APS-1")))
                  .find("ok")
                  ->as_bool());

  const JsonValue stats = parse_ok(service.handle_line(R"({"kind": "stats"})"));
  const JsonValue* tune = stats.find("stats")->find("tune");
  ASSERT_NE(tune, nullptr);
  EXPECT_GE(tune->find("requests")->as_int(), 1);
  EXPECT_GE(tune->find("candidates")->find("simulated")->as_int(), 5);
  EXPECT_GE(tune->find("search_us")->find("count")->as_int(), 1);
  EXPECT_GE(tune->find("simulate_us")->find("count")->as_int(), 1);

  const std::string exposition = service.metrics_exposition();
  for (const char* name :
       {"tune_requests", "tune_results_cached", "tune_coalesced",
        "tune_stopped_early", "tune_candidates_simulated",
        "tune_candidates_pruned", "tune_candidate_cache_hits",
        "tune_jobs_inflight", "tune_phase_search_seconds",
        "tune_phase_simulate_seconds"})
    EXPECT_NE(exposition.find(name), std::string::npos) << name;
}

// Identical searches racing from many threads: every reply carries the same
// winner, whether it executed, coalesced onto the in-flight search, or
// replayed from the whole-result cache.
TEST(TuneVerb, ConcurrentIdenticalSearchesAgree) {
  Service service(config(4));
  constexpr int kThreads = 6;
  std::vector<std::string> replies(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
      threads.emplace_back([&service, &replies, i] {
        replies[static_cast<std::size_t>(i)] =
            service.handle_line(autotune_line("TFS-1"));
      });
    for (std::thread& t : threads) t.join();
  }
  std::string best_name;
  for (const std::string& reply : replies) {
    const JsonValue v = parse_ok(reply);
    ASSERT_TRUE(v.find("ok")->as_bool()) << reply;
    const std::string name = v.find("result")->find("best_name")->as_string();
    if (best_name.empty()) best_name = name;
    EXPECT_EQ(name, best_name);
  }
  EXPECT_EQ(service.counters().tune_requests,
            static_cast<std::uint64_t>(kThreads));
}

// The TSan workhorse: autotune searches and compile requests for overlapping
// sources running concurrently — candidate evaluations and compile cells
// share the same shard caches and coalescing maps.
TEST(TuneVerb, ConcurrentAutotuneAndCompileTraffic) {
  Service service(config(4));
  const char* workloads[] = {"APS-1", "SDS-1"};
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (const char* w : workloads)
    threads.emplace_back([&service, &failures, w] {
      std::string err;
      const auto v = JsonValue::parse(service.handle_line(autotune_line(w)), &err);
      if (!v || v->find("ok") == nullptr || !v->find("ok")->as_bool())
        failures.fetch_add(1);
    });
  for (const char* w : workloads)
    for (const char* level : {"lev2", "lev4"})
      threads.emplace_back([&service, &failures, w, level] {
        const std::string line = strformat(
            R"({"kind": "compile", "workload": "%s", "level": "%s"})", w, level);
        for (int i = 0; i < 3; ++i) {
          std::string err;
          const auto v = JsonValue::parse(service.handle_line(line), &err);
          if (!v || v->find("ok") == nullptr || !v->find("ok")->as_bool())
            failures.fetch_add(1);
        }
      });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Drain still settles with tune traffic in the mix.
  service.begin_drain();
  service.wait_drained();
  EXPECT_EQ(service.inflight_cells(), 0u);
}

}  // namespace
}  // namespace ilp::server
