// Transport-equivalence tests: the epoll/writev path must be byte-identical
// to the in-process handle_line path, and pipelined replies must come back
// in request order even when shards complete out of order.
//
// Byte-identity is the acceptance contract for the zero-copy response split
// (protocol.hpp CompileBody): a warm reply assembled from pre-serialized
// segments via writev and a cold reply built as one string must be the same
// bytes on the wire.  Two identically-configured Services are driven with
// the same line sequence — one through handle_line, one through a real
// Server socket — so the minted request ids (r-<n>) line up and the replies
// can be compared verbatim.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fixtures.hpp"
#include "server/json.hpp"
#include "server/netclient.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "support/strings.hpp"

namespace ilp::server {
namespace {

ServiceConfig workers(int n) {
  ServiceConfig cfg;
  cfg.workers = n;
  return cfg;
}

std::string compile_line(std::uint64_t seed, const char* extra = "") {
  return strformat(
      R"({"id": %llu, "kind": "compile", "source": "%s", "level": "lev4", "issue": 8%s})",
      static_cast<unsigned long long>(seed),
      json_escape(ilp::testing::random_program(seed)).c_str(), extra);
}

// The fuzz-corpus sequence both paths replay: cold compiles, warm repeats
// (the zero-copy segment path), the modulo backend, a parse error, an
// unknown workload and a named-workload compile.  Batch is excluded — its
// response embeds wall-clock timing and can never be byte-stable.
std::vector<std::string> corpus_lines() {
  std::vector<std::string> lines;
  for (std::uint64_t seed = 9'100; seed < 9'104; ++seed)
    lines.push_back(compile_line(seed));
  lines.push_back(compile_line(9'100));  // warm repeat: cached=true segments
  lines.push_back(compile_line(9'101));
  lines.push_back(compile_line(9'102, R"(, "scheduler": "modulo")"));
  lines.push_back(compile_line(9'102, R"(, "scheduler": "modulo")"));  // warm
  lines.push_back("{\"kind\": \"compile\"");                 // parse error
  lines.push_back(R"({"id": 7, "kind": "compile", "workload": "no-such", "level": "lev1"})");
  lines.push_back(R"({"id": 8, "kind": "compile", "workload": "APS-1", "level": "lev2"})");
  return lines;
}

TEST(EpollTransport, RepliesAreByteIdenticalToHandleLine) {
  const std::vector<std::string> lines = corpus_lines();

  // Reference: the in-process path, one fresh service.
  std::vector<std::string> expected;
  {
    Service reference(workers(2));
    expected.reserve(lines.size());
    for (const std::string& line : lines)
      expected.push_back(reference.handle_line(line));
  }

  // Same sequence over a real socket, sequentially so the request-id mint
  // stays aligned with the reference service.
  Service service(workers(2));
  Server server(service);
  ASSERT_TRUE(server.start()) << server.error();
  LineClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));
  for (std::size_t i = 0; i < lines.size(); ++i) {
    ASSERT_TRUE(client.send_line(lines[i]));
    const auto reply = client.recv_line(30'000);
    ASSERT_TRUE(reply.has_value()) << "no reply to line " << i;
    EXPECT_EQ(*reply, expected[i]) << "transport changed the bytes of line " << i;
  }
}

// Pipelined requests on one connection complete on different shards in
// whatever order the work dictates; the replies must still be emitted in
// request order.  The first request sleeps, so every later (fast, warm)
// request finishes before it — any reordering bug surfaces immediately.
TEST(EpollTransport, PipelinedRepliesKeepRequestOrder) {
  Service service(workers(2));
  Server server(service);
  ASSERT_TRUE(server.start()) << server.error();
  LineClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

  // Warm the fast cells first so the pipelined phase is pure dispatch.
  for (std::uint64_t seed = 9'200; seed < 9'204; ++seed) {
    ASSERT_TRUE(client.send_line(compile_line(seed)));
    ASSERT_TRUE(client.recv_line(30'000).has_value());
  }

  std::vector<std::string> batch;
  batch.push_back(compile_line(9'210, R"(, "debug_sleep_ms": 200)"));
  for (std::uint64_t seed = 9'200; seed < 9'204; ++seed)
    batch.push_back(compile_line(seed));
  std::string wire;
  for (const std::string& line : batch) wire += line + "\n";
  ASSERT_TRUE(client.send_raw(wire));

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto reply = client.recv_line(30'000);
    ASSERT_TRUE(reply.has_value()) << "no reply to pipelined line " << i;
    const auto v = JsonValue::parse(*reply);
    ASSERT_TRUE(v.has_value()) << *reply;
    EXPECT_TRUE(v->find("ok")->as_bool()) << *reply;
    const std::int64_t want = i == 0 ? 9'210 : static_cast<std::int64_t>(9'199 + i);
    EXPECT_EQ(v->find("id")->as_int(), want)
        << "reply " << i << " out of order: " << *reply;
  }
}

// A full dispatch ring is explicit backpressure: the line is answered
// `overloaded` by the transport itself, still in request order, and the
// connection survives.
TEST(EpollTransport, FullRingAnswersOverloadedInOrder) {
  Service service(workers(1));
  ServerConfig cfg;
  cfg.ring_capacity = 1;
  Server server(service, cfg);
  ASSERT_TRUE(server.start()) << server.error();
  LineClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

  // Warm the fast cell, then pipeline: one sleeper to occupy the only shard
  // worker plus a burst that must overflow the one-slot ring.
  ASSERT_TRUE(client.send_line(compile_line(9'300)));
  ASSERT_TRUE(client.recv_line(30'000).has_value());

  constexpr int kBurst = 10;
  std::string wire = compile_line(9'301, R"(, "debug_sleep_ms": 300)") + "\n";
  for (int i = 0; i < kBurst; ++i) wire += compile_line(9'300) + "\n";
  ASSERT_TRUE(client.send_raw(wire));

  int ok = 0, overloaded = 0;
  std::vector<std::int64_t> ids;
  for (int i = 0; i < kBurst + 1; ++i) {
    const auto reply = client.recv_line(30'000);
    ASSERT_TRUE(reply.has_value()) << "no reply to burst line " << i;
    const auto v = JsonValue::parse(*reply);
    ASSERT_TRUE(v.has_value()) << *reply;
    ids.push_back(v->find("id")->as_int());
    if (v->find("ok")->as_bool()) {
      ++ok;
    } else {
      EXPECT_EQ(v->find("error")->find("kind")->as_string(), "overloaded");
      ++overloaded;
    }
  }
  // The sleeper always completes; with a one-slot ring at most one burst
  // line can be parked behind it, so most of the burst is shed.
  EXPECT_GE(ok, 1);
  EXPECT_GT(overloaded, 0);
  EXPECT_EQ(ok + overloaded, kBurst + 1);
  // Replies stay in request order even when some are transport-synthesized.
  ASSERT_EQ(ids.size(), static_cast<std::size_t>(kBurst + 1));
  EXPECT_EQ(ids.front(), 9'301);
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_EQ(ids[i], 9'300);
}

}  // namespace
}  // namespace ilp::server
