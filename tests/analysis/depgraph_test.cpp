#include "analysis/depgraph.hpp"

#include <gtest/gtest.h>

#include "analysis/addresses.hpp"
#include "ir/builder.hpp"

namespace ilp {
namespace {

struct GraphFixture {
  Function fn;
  BlockId blk;
  const DepEdge* find(std::uint32_t from, std::uint32_t to, const DepGraph& g) const {
    for (const auto& e : g.edges())
      if (e.from == from && e.to == to) return &e;
    return nullptr;
  }
};

TEST(Addresses, DistinguishesOffsetsFromSameBase) {
  Function fn;
  const std::int32_t A = fn.add_array({"A", 0, 4, 16, true});
  IRBuilder b(fn);
  const BlockId blk = b.create_block("b");
  b.set_block(blk);
  const Reg base = fn.new_int_reg();  // live-in
  b.fld(base, 0, A);                  // idx 0
  b.fld(base, 4, A);                  // idx 1
  b.iaddi_to(base, base, 4);          // idx 2
  b.fld(base, 0, A);                  // idx 3 == idx 1's address
  b.ret();
  const BlockAddresses addrs(fn, blk);
  EXPECT_EQ(addrs.relation(0, 1), AddrRelation::Distinct);
  EXPECT_EQ(addrs.relation(1, 3), AddrRelation::Identical);
  EXPECT_EQ(addrs.relation(0, 3), AddrRelation::Distinct);
}

TEST(Addresses, UnknownRootsAreUnknown) {
  Function fn;
  IRBuilder b(fn);
  const BlockId blk = b.create_block("b");
  b.set_block(blk);
  const Reg p = fn.new_int_reg();
  const Reg q = fn.new_int_reg();
  b.fld(p, 0, kMayAliasAll);  // 0
  b.fld(q, 0, kMayAliasAll);  // 1
  b.ret();
  const BlockAddresses addrs(fn, blk);
  EXPECT_EQ(addrs.relation(0, 1), AddrRelation::Unknown);
}

TEST(Addresses, DifferentArraysNeverAlias) {
  Function fn;
  const std::int32_t A = fn.add_array({"A", 0, 4, 4, true});
  const std::int32_t B = fn.add_array({"B", 100, 4, 4, true});
  IRBuilder b(fn);
  const BlockId blk = b.create_block("b");
  b.set_block(blk);
  const Reg p = fn.new_int_reg();
  const Reg q = fn.new_int_reg();
  const Reg v = fn.new_fp_reg();
  b.fst(p, 0, v, A);
  b.fst(q, 0, v, B);
  b.ret();
  const BlockAddresses addrs(fn, blk);
  const Block& bb = fn.block(blk);
  EXPECT_FALSE(may_alias(bb.insts[0], bb.insts[1], addrs.relation(0, 1)));
}

TEST(DepGraph, FlowAntiOutputEdges) {
  GraphFixture f;
  IRBuilder b(f.fn);
  f.blk = b.create_block("b");
  b.set_block(f.blk);
  const Reg x = b.ldi(1);       // 0: def x
  const Reg y = b.iaddi(x, 1);  // 1: use x, def y
  b.ldi_to(x, 5);               // 2: redef x
  (void)y;
  b.ret();                      // 3
  f.fn.renumber();
  const Cfg cfg(f.fn);
  const Liveness live(cfg);
  const DepGraph g(f.fn, f.blk, MachineModel::issue(8), live);

  const DepEdge* flow = f.find(0, 1, g);
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->kind, DepKind::Flow);
  EXPECT_EQ(flow->latency, 1);

  const DepEdge* anti = f.find(1, 2, g);
  ASSERT_NE(anti, nullptr);
  EXPECT_EQ(anti->kind, DepKind::Anti);
  EXPECT_EQ(anti->latency, 0);

  const DepEdge* outp = f.find(0, 2, g);
  ASSERT_NE(outp, nullptr);
  EXPECT_EQ(outp->kind, DepKind::Output);
}

TEST(DepGraph, FlowLatencyTracksProducer) {
  GraphFixture f;
  IRBuilder b(f.fn);
  f.blk = b.create_block("b");
  b.set_block(f.blk);
  const Reg x = b.fldi(1.0);   // 0
  const Reg y = b.fmul(x, x);  // 1 (latency 3 producer for 2)
  b.fdiv(y, x);                // 2 (latency 10 producer)
  b.fadd(b.fldi(0.0), y);      // 3: fldi, 4: fadd
  b.ret();
  f.fn.renumber();
  const Cfg cfg(f.fn);
  const Liveness live(cfg);
  const DepGraph g(f.fn, f.blk, MachineModel::issue(8), live);
  EXPECT_EQ(f.find(1, 2, g)->latency, 3);
  EXPECT_EQ(f.find(1, 4, g)->latency, 3);
}

TEST(DepGraph, MemoryDisambiguationSkipsProvablyDistinct) {
  GraphFixture f;
  const std::int32_t A = f.fn.add_array({"A", 0, 4, 16, true});
  IRBuilder b(f.fn);
  f.blk = b.create_block("b");
  b.set_block(f.blk);
  const Reg base = f.fn.new_int_reg();
  const Reg v = f.fn.new_fp_reg();
  b.fst(base, 0, v, A);   // 0
  b.fld(base, 4, A);      // 1: distinct offset: no edge
  b.fld(base, 0, A);      // 2: same address: MemFlow edge
  b.ret();
  f.fn.renumber();
  const Cfg cfg(f.fn);
  const Liveness live(cfg);
  const DepGraph g(f.fn, f.blk, MachineModel::issue(8), live);
  EXPECT_EQ(f.find(0, 1, g), nullptr);
  const DepEdge* e = f.find(0, 2, g);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, DepKind::MemFlow);
  EXPECT_EQ(e->latency, 1);  // store latency
}

TEST(DepGraph, StoresOrderedAcrossBranches) {
  GraphFixture f;
  const std::int32_t A = f.fn.add_array({"A", 0, 4, 16, true});
  IRBuilder b(f.fn);
  f.blk = b.create_block("b");
  const BlockId out = b.create_block("out");
  b.set_block(f.blk);
  const Reg base = f.fn.new_int_reg();
  const Reg v = f.fn.new_fp_reg();
  b.fst(base, 0, v, A);             // 0: store before branch
  b.bri(Opcode::BEQ, base, 0, out); // 1: side exit
  b.fst(base, 4, v, A);             // 2: store after branch
  b.ret();                          // 3
  b.set_block(out);
  b.ret();
  f.fn.renumber();
  const Cfg cfg(f.fn);
  const Liveness live(cfg);
  const DepGraph g(f.fn, f.blk, MachineModel::issue(8), live);
  ASSERT_NE(f.find(0, 1, g), nullptr);  // store must stay above exit
  EXPECT_EQ(f.find(0, 1, g)->kind, DepKind::Control);
  ASSERT_NE(f.find(1, 2, g), nullptr);  // store must stay below exit
}

TEST(DepGraph, DefLiveAtSideExitTargetPinnedAroundBranch) {
  GraphFixture f;
  IRBuilder b(f.fn);
  f.blk = b.create_block("b");
  const BlockId out = b.create_block("out");
  b.set_block(f.blk);
  const Reg x = f.fn.new_int_reg();
  const Reg c = f.fn.new_int_reg();
  b.bri(Opcode::BEQ, c, 0, out);  // 0
  b.ldi_to(x, 1);                 // 1: x live at `out` => cannot hoist above 0
  b.ret();                        // 2
  b.set_block(out);
  b.iaddi(x, 1);  // use x
  b.ret();
  f.fn.renumber();
  const Cfg cfg(f.fn);
  const Liveness live(cfg);
  const DepGraph g(f.fn, f.blk, MachineModel::issue(8), live);
  const DepEdge* e = f.find(0, 1, g);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, DepKind::Control);
}

TEST(DepGraph, LoadsMayFloatAboveBranches) {
  GraphFixture f;
  const std::int32_t A = f.fn.add_array({"A", 0, 4, 16, true});
  IRBuilder b(f.fn);
  f.blk = b.create_block("b");
  const BlockId out = b.create_block("out");
  b.set_block(f.blk);
  const Reg base = f.fn.new_int_reg();
  const Reg c = f.fn.new_int_reg();
  b.bri(Opcode::BEQ, c, 0, out);  // 0
  b.fld(base, 0, A);              // 1: dest not live at out -> speculatable
  b.ret();                        // 2
  b.set_block(out);
  b.ret();
  f.fn.renumber();
  const Cfg cfg(f.fn);
  const Liveness live(cfg);
  const DepGraph g(f.fn, f.blk, MachineModel::issue(8), live);
  EXPECT_EQ(f.find(0, 1, g), nullptr);
}

TEST(DepGraph, HeightsAreCriticalPaths) {
  GraphFixture f;
  IRBuilder b(f.fn);
  f.blk = b.create_block("b");
  b.set_block(f.blk);
  const Reg x = b.fldi(1.0);   // 0: 1 + 3 + 10 = 14 to the end of the chain
  const Reg y = b.fmul(x, x);  // 1: height 3 + 10 = 13
  b.fdiv(y, y);                // 2: height 10
  b.ret();                     // 3
  f.fn.renumber();
  const Cfg cfg(f.fn);
  const Liveness live(cfg);
  const DepGraph g(f.fn, f.blk, MachineModel::issue(8), live);
  // ret is pinned after everything (terminator control edges, latency 0).
  EXPECT_EQ(g.height()[2], 0 + 0);       // fdiv -> ret (control, 0)
  EXPECT_EQ(g.height()[1], 3);           // fmul -> fdiv (3) -> ...
  EXPECT_EQ(g.height()[0], 1 + 3);       // fldi(1) -> fmul -> fdiv
}

}  // namespace
}  // namespace ilp
