// Legality property tests for the direction/distance-vector layer
// (analysis/depdist) and the adversarial cases the nest passes must refuse:
// interchange on a (<,>) vector, fusion across a backward loop-carried
// dependence, fission through a dependence cycle, and the tiling==interchange
// legality equivalence.  Fixtures are DSL nests compiled through the real
// frontend, so the vectors are computed from lowered subscript arithmetic,
// not hand-built IR.
#include <gtest/gtest.h>

#include <string>

#include "analysis/depdist.hpp"
#include "common/fixtures.hpp"
#include "common/interp.hpp"
#include "frontend/compile.hpp"
#include "support/strings.hpp"
#include "trans/nest/nest.hpp"

namespace ilp {
namespace {

Function compile_dsl(const std::string& body) {
  const std::string src =
      "program t\n"
      "array M[8][12] fp\n"
      "array N[8][12] fp\n"
      "array A[40] fp\narray B[40] fp\narray C[40] fp\n"
      "scalar s fp out\n" +
      body;
  DiagnosticEngine diags;
  auto r = dsl::compile(src, diags);
  EXPECT_TRUE(r.has_value()) << diags.to_string() << "\n" << src;
  return r ? std::move(r->fn) : Function{"empty"};
}

// The (outer, inner) pair of the first perfect nest in `fn`.
struct Nest {
  CanonLoop outer, inner;
  bool found = false;
};

Nest find_nest(const Function& fn) {
  Nest n;
  const auto loops = find_canonical_loops(fn);
  for (const CanonLoop& o : loops) {
    for (const CanonLoop& i : loops) {
      if (o.header == i.pre && perfectly_nested(fn, o, i)) {
        n.outer = o;
        n.inner = i;
        n.found = true;
        return n;
      }
    }
  }
  return n;
}

bool has_vector(const std::vector<NestDep>& deps, Dir d0, Dir d1) {
  for (const NestDep& d : deps)
    if (d.d0 == d0 && d.d1 == d1) return true;
  return false;
}

std::string nest_src(const char* stmt) {
  return strformat("loop i = 1 to 5 {\n  loop j = 1 to 9 {\n    %s\n  }\n}\n", stmt);
}

// --- Direction-vector classes ------------------------------------------------

TEST(DepDist, SameIterationDependenceIsEqEq) {
  const Function fn = compile_dsl(nest_src("M[i][j] = M[i][j] * 1.5;"));
  const Nest n = find_nest(fn);
  ASSERT_TRUE(n.found);
  const auto deps = nest_dependences(fn, n.outer, n.inner);
  ASSERT_FALSE(deps.empty());
  EXPECT_TRUE(has_vector(deps, Dir::Eq, Dir::Eq));
  EXPECT_FALSE(has_vector(deps, Dir::Lt, Dir::Gt));
  for (const NestDep& d : deps) {
    ASSERT_TRUE(d.dist_known);
    EXPECT_EQ(d.dist0, 0);
    EXPECT_EQ(d.dist1, 0);
  }
}

TEST(DepDist, InnerCarriedDependenceIsEqLt) {
  const Function fn = compile_dsl(nest_src("M[i][j] = M[i][j-1] + 1.0;"));
  const Nest n = find_nest(fn);
  ASSERT_TRUE(n.found);
  const auto deps = nest_dependences(fn, n.outer, n.inner);
  EXPECT_TRUE(has_vector(deps, Dir::Eq, Dir::Lt));
  bool saw_dist = false;
  for (const NestDep& d : deps)
    if (d.dist_known && d.dist0 == 0 && d.dist1 == 1) saw_dist = true;
  EXPECT_TRUE(saw_dist);
  EXPECT_TRUE(interchange_legal_vectors(deps));  // (=,<) survives the swap
}

TEST(DepDist, OuterCarriedDependenceIsLtEq) {
  const Function fn = compile_dsl(nest_src("M[i][j] = M[i-1][j] + 1.0;"));
  const Nest n = find_nest(fn);
  ASSERT_TRUE(n.found);
  const auto deps = nest_dependences(fn, n.outer, n.inner);
  EXPECT_TRUE(has_vector(deps, Dir::Lt, Dir::Eq));
  EXPECT_TRUE(interchange_legal_vectors(deps));
}

TEST(DepDist, MixedDependenceIsLtGtAndRejectsInterchange) {
  const Function fn = compile_dsl(nest_src("M[i][j] = M[i-1][j+1] * 0.5;"));
  const Nest n = find_nest(fn);
  ASSERT_TRUE(n.found);
  const auto deps = nest_dependences(fn, n.outer, n.inner);
  EXPECT_TRUE(has_vector(deps, Dir::Lt, Dir::Gt));
  EXPECT_FALSE(interchange_legal_vectors(deps));
  EXPECT_FALSE(interchange_legal(fn, n.outer, n.inner));
}

TEST(DepDist, DisjointReferencesCarryNoDependence) {
  const Function fn = compile_dsl(nest_src("M[i][j] = N[i][j] + 1.0;"));
  const Nest n = find_nest(fn);
  ASSERT_TRUE(n.found);
  // Store to M, load from N: different arrays never conflict.
  EXPECT_TRUE(nest_dependences(fn, n.outer, n.inner).empty());
}

// --- Interchange legality ----------------------------------------------------

TEST(DepDist, InterchangeLegalOnCleanNest) {
  const Function fn = compile_dsl(nest_src("M[j][i] = M[j][i] + N[j][i];"));
  const Nest n = find_nest(fn);
  ASSERT_TRUE(n.found);
  EXPECT_TRUE(interchange_legal(fn, n.outer, n.inner));
  const NestStrides s = nest_strides(fn, n.outer, n.inner);
  ASSERT_TRUE(s.known);
  EXPECT_GT(s.inner, s.outer);  // transposed access: the swap is profitable
}

TEST(DepDist, InterchangeRejectsCarriedScalarReduction) {
  const Function fn = compile_dsl(nest_src("s = s + M[i][j];"));
  const Nest n = find_nest(fn);
  ASSERT_TRUE(n.found);
  EXPECT_FALSE(carried_scalars(fn, n.inner).empty());
  EXPECT_FALSE(interchange_legal(fn, n.outer, n.inner));
}

TEST(DepDist, TilingLegalityEqualsInterchangeLegality) {
  // Tiling = strip-mine (always order-preserving) + interchange, so the two
  // passes must agree on every fixture: apply both to the same programs and
  // require tile fires exactly where interchange legality holds.
  const char* legal = "M[j][i] = M[j][i] + N[j][i];";
  const char* illegal = "M[j][i] = M[j-1][i+1] + N[j][i];";  // (<,>) on (i,j)
  for (const char* stmt : {legal, illegal}) {
    const Function base = compile_dsl(nest_src(stmt));
    const Nest n = find_nest(base);
    ASSERT_TRUE(n.found) << stmt;
    const bool legal_now = interchange_legal(base, n.outer, n.inner);

    Function tiled = base;
    NestOptions topt;
    topt.tile = true;
    topt.tile_size = 4;  // inner trip is 9: more than one tile
    EXPECT_EQ(tile_loops(tiled, topt) > 0, legal_now) << stmt;
  }
}

// --- Fusion ------------------------------------------------------------------

TEST(DepDist, ForwardDependenceDoesNotPreventFusion) {
  const Function fn = compile_dsl(
      "loop i = 2 to 20 {\n  A[i] = B[i] * 1.5;\n}\n"
      "loop i = 2 to 20 {\n  C[i] = A[i-1] + 2.0;\n}\n");
  const auto loops = find_canonical_loops(fn);
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_FALSE(fusion_preventing_dep(fn, loops[0], loops[1]));
}

TEST(DepDist, BackwardDependencePreventsFusion) {
  const Function fn = compile_dsl(
      "loop i = 2 to 20 {\n  A[i] = B[i] * 1.5;\n}\n"
      "loop i = 2 to 20 {\n  C[i] = A[i+1] + 2.0;\n}\n");
  const auto loops = find_canonical_loops(fn);
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_TRUE(fusion_preventing_dep(fn, loops[0], loops[1]));

  // And the pass itself must refuse.
  Function fn2 = fn;
  NestOptions fopt;
  fopt.fuse = true;
  EXPECT_EQ(fuse_loops(fn2, fopt), 0);
}

TEST(DepDist, FusePassMergesConformableLoops) {
  Function fn = compile_dsl(
      "loop i = 2 to 20 {\n  A[i] = B[i] * 1.5;\n}\n"
      "loop i = 2 to 20 {\n  C[i] = A[i] + 2.0;\n}\n");
  const std::uint64_t before = ilp::testing::run_digest(fn);
  NestOptions fopt;
  fopt.fuse = true;
  EXPECT_EQ(fuse_loops(fn, fopt), 1);
  EXPECT_EQ(ilp::testing::run_digest(fn), before);
}

// --- Fission -----------------------------------------------------------------

TEST(DepDist, FissionSplitsIndependentStatements) {
  Function fn = compile_dsl(
      "loop i = 2 to 20 {\n  A[i] = B[i] * 1.5;\n  C[i] = C[i-1] + 0.5;\n}\n");
  const std::uint64_t before = ilp::testing::run_digest(fn);
  NestOptions opt;
  opt.fission = true;
  EXPECT_GE(fission_loops(fn, opt), 1);
  EXPECT_EQ(ilp::testing::run_digest(fn), before);
}

TEST(DepDist, FissionNeverSplitsADependenceCycle) {
  // A[i] = B[i-1]...; B[i] = A[i]...: a flow dependence within the iteration
  // (A) plus a backward one across iterations (B) — a cycle in the statement
  // dependence graph.  Everything must stay in one loop.
  Function fn = compile_dsl(
      "loop i = 2 to 20 {\n  A[i] = B[i-1] * 0.5;\n  B[i] = A[i] + C[i];\n}\n");
  NestOptions opt;
  opt.fission = true;
  EXPECT_EQ(fission_loops(fn, opt), 0);
}

// --- Broken legality must be caught by the semantic oracle -------------------

TEST(DepDist, SkippingLegalityOnIllegalNestChangesSemantics) {
  // The (<,>) nest from above, with the transposed store making the swap
  // profitable.  With the legality layer bypassed the pass applies the
  // interchange — and the observable state digest must change, proving the
  // differential oracle detects exactly the bug the legality layer prevents.
  Function fn = compile_dsl(nest_src("M[j][i] = M[j-1][i+1] + N[j][i];"));
  const std::uint64_t before = ilp::testing::run_digest(fn);

  Function broken = fn;
  NestOptions unsafe;
  unsafe.interchange = true;
  unsafe.unsafe_skip_legality = true;
  ASSERT_GT(interchange_loops(broken, unsafe), 0);
  bool ok = false;
  const std::uint64_t after = ilp::testing::run_digest(broken, &ok);
  ASSERT_TRUE(ok);
  EXPECT_NE(after, before);

  // The guarded pass refuses the same nest and preserves the digest.
  Function guarded = fn;
  NestOptions safe;
  safe.interchange = true;
  EXPECT_EQ(interchange_loops(guarded, safe), 0);
  EXPECT_EQ(ilp::testing::run_digest(guarded), before);
}

}  // namespace
}  // namespace ilp
