#include "analysis/reaching.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "frontend/compile.hpp"
#include "ir/builder.hpp"
#include "trans/level.hpp"
#include "trans/swp.hpp"
#include "workloads/suite.hpp"

namespace ilp {
namespace {

TEST(Reaching, StraightLineNearestDefWins) {
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  b.set_block(e);
  const Reg x = fn.new_int_reg();
  b.ldi_to(x, 1);      // site 0
  b.ldi_to(x, 2);      // site 1
  const Reg y = b.iaddi(x, 0);  // use of x at index 2
  (void)y;
  b.ret();
  fn.renumber();
  const Cfg cfg(fn);
  const ReachingDefs rd(cfg);
  const auto defs = rd.reaching_defs_of(e, 2, x);
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(rd.def_sites()[defs[0]].index, 1u);  // the second ldi
}

TEST(Reaching, LoopMergesPreheaderAndBackedgeDefs) {
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId x = b.create_block("exit");
  b.set_block(e);
  const Reg i = b.ldi(0);  // site 0
  b.jump(loop);
  b.set_block(loop);
  b.iaddi_to(i, i, 1);  // site 1: reads i at index 0
  b.bri(Opcode::BLT, i, 5, loop);
  b.set_block(x);
  b.ret();
  fn.renumber();
  const Cfg cfg(fn);
  const ReachingDefs rd(cfg);
  // Both the preheader LDI and the in-loop update reach the loop's use.
  const auto defs = rd.reaching_defs_of(loop, 0, i);
  EXPECT_EQ(defs.size(), 2u);
}

TEST(Reaching, UndefinedUseDetected) {
  Function fn;
  IRBuilder b(fn);
  b.set_block(b.create_block("entry"));
  const Reg ghost = fn.new_int_reg();
  b.iaddi(ghost, 1);  // reads a register never defined
  b.ret();
  fn.renumber();
  const auto bad = find_undefined_uses(fn);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].reg, ghost);
  // Declaring it a function input clears the report.
  EXPECT_TRUE(find_undefined_uses(fn, {ghost}).empty());
}

TEST(Reaching, FigureLoopsHaveNoUndefinedUses) {
  for (std::int64_t n : {1, 8}) {
    const Function f1 = ilp::testing::make_fig1_loop(n);
    EXPECT_TRUE(find_undefined_uses(f1).empty());
    const Function f3 = ilp::testing::make_fig3_loop(n);
    EXPECT_TRUE(find_undefined_uses(f3).empty());
  }
}

// The heavyweight oracle: every workload, compiled at every level (plus
// software pipelining), must contain no register read without a reaching
// definition.  This catches renaming/expansion bookkeeping bugs that happen
// to produce the right values on seeded data.
TEST(Reaching, PipelineNeverCreatesUndefinedUses) {
  const MachineModel m8 = MachineModel::issue(8);
  for (const auto& w : workload_suite()) {
    for (OptLevel lvl : {OptLevel::Conv, OptLevel::Lev2, OptLevel::Lev4}) {
      DiagnosticEngine d;
      auto r = dsl::compile(w.source, d);
      ASSERT_TRUE(r.has_value()) << w.name;
      compile_at_level(r->fn, lvl, m8);
      const auto bad = find_undefined_uses(r->fn);
      EXPECT_TRUE(bad.empty()) << w.name << " at " << level_name(lvl) << ": r"
                               << (bad.empty() ? 0 : bad[0].reg.id);
    }
    DiagnosticEngine d;
    auto r = dsl::compile(w.source, d);
    CompileOptions copts;
    copts.schedule = false;
    compile_at_level(r->fn, OptLevel::Lev4, m8, copts);
    software_pipeline(r->fn, m8);
    EXPECT_TRUE(find_undefined_uses(r->fn).empty()) << w.name << " +swp";
  }
}

}  // namespace
}  // namespace ilp
