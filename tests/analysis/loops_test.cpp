#include "analysis/loops.hpp"

#include <gtest/gtest.h>

#include "common/fixtures.hpp"
#include "ir/builder.hpp"

namespace ilp {
namespace {

TEST(Loops, FindsSimpleLoopInFig1) {
  const Function fn = ilp::testing::make_fig1_loop(8);
  const Cfg cfg(fn);
  const Dominators dom(cfg);
  const auto loops = find_simple_loops(cfg, dom);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(fn.block(loops[0].body).name, "L1");
  EXPECT_EQ(fn.block(loops[0].preheader).name, "entry");
  EXPECT_FALSE(loops[0].has_side_exits());
  EXPECT_EQ(loops[0].back_branch, fn.block(loops[0].body).insts.size() - 1);
}

TEST(Loops, NaturalLoopMatchesSimpleLoop) {
  const Function fn = ilp::testing::make_fig1_loop(8);
  const Cfg cfg(fn);
  const Dominators dom(cfg);
  const auto nat = find_natural_loops(cfg, dom);
  ASSERT_EQ(nat.size(), 1u);
  EXPECT_EQ(nat[0].blocks.size(), 1u);
  EXPECT_EQ(nat[0].latches.size(), 1u);
  EXPECT_EQ(nat[0].header, nat[0].latches[0]);
}

TEST(Loops, SideExitLoopIsStillSimple) {
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId out = b.create_block("out");
  b.set_block(e);
  const Reg i = b.ldi(0);
  b.jump(loop);
  b.set_block(loop);
  b.bri(Opcode::BGT, i, 50, out);  // side exit
  b.iaddi_to(i, i, 1);
  b.bri(Opcode::BLT, i, 10, loop);
  b.set_block(out);
  b.ret();
  const Cfg cfg(fn);
  const Dominators dom(cfg);
  const auto loops = find_simple_loops(cfg, dom);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_TRUE(loops[0].has_side_exits());
  EXPECT_EQ(loops[0].side_exits.size(), 1u);
  EXPECT_EQ(loops[0].side_exits[0], 0u);
}

TEST(Loops, MatchesCountedLoop) {
  const Function fn = ilp::testing::make_fig1_loop(8);
  const Cfg cfg(fn);
  const Dominators dom(cfg);
  const auto loops = find_simple_loops(cfg, dom);
  ASSERT_EQ(loops.size(), 1u);
  const auto info = match_counted_loop(fn, loops[0]);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->step, 4);
  EXPECT_EQ(info->cmp, Opcode::BLT);
  EXPECT_FALSE(info->bound_is_imm);
  EXPECT_TRUE(info->iv.is_int());
}

TEST(Loops, DataDependentLoopIsNotCounted) {
  // Figure 6's loop exits on a loaded value: not counted.
  const Function fn = ilp::testing::make_fig6_loop(8);
  const Cfg cfg(fn);
  const Dominators dom(cfg);
  const auto loops = find_simple_loops(cfg, dom);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_FALSE(match_counted_loop(fn, loops[0]).has_value());
}

TEST(Loops, VaryingStepIsNotCounted) {
  // i += k where k is a register: unrollable only without preconditioning.
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId x = b.create_block("exit");
  b.set_block(e);
  const Reg i = b.ldi(0);
  const Reg k = b.ldi(3);
  b.jump(loop);
  b.set_block(loop);
  b.iadd_to(i, i, k);  // register step
  b.bri(Opcode::BLT, i, 30, loop);
  b.set_block(x);
  b.ret();
  const Cfg cfg(fn);
  const Dominators dom(cfg);
  const auto loops = find_simple_loops(cfg, dom);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_FALSE(match_counted_loop(fn, loops[0]).has_value());
}

TEST(Loops, BoundModifiedInLoopIsNotCounted) {
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId x = b.create_block("exit");
  b.set_block(e);
  const Reg i = b.ldi(0);
  const Reg n = b.ldi(10);
  b.jump(loop);
  b.set_block(loop);
  b.iaddi_to(i, i, 1);
  b.isubi(n, 0);  // new def is a different reg; now really modify n:
  b.iaddi_to(n, n, 0);
  b.br(Opcode::BLT, i, n, loop);
  b.set_block(x);
  b.ret();
  const Cfg cfg(fn);
  const Dominators dom(cfg);
  const auto loops = find_simple_loops(cfg, dom);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_FALSE(match_counted_loop(fn, loops[0]).has_value());
}

}  // namespace
}  // namespace ilp
