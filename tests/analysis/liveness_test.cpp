#include "analysis/liveness.hpp"

#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace ilp {
namespace {

TEST(Liveness, LoopCarriedValueIsLiveIn) {
  // loop: i += 1; blt i, n, loop  — both i and n live into the loop block.
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId loop = b.create_block("loop");
  const BlockId x = b.create_block("exit");
  b.set_block(e);
  const Reg i = b.ldi(0);
  const Reg n = b.ldi(10);
  b.jump(loop);
  b.set_block(loop);
  b.iaddi_to(i, i, 1);
  b.br(Opcode::BLT, i, n, loop);
  b.set_block(x);
  b.ret();

  const Cfg cfg(fn);
  const Liveness live(cfg);
  EXPECT_TRUE(live.is_live_in(loop, i));
  EXPECT_TRUE(live.is_live_in(loop, n));
  EXPECT_FALSE(live.is_live_in(e, i));
}

TEST(Liveness, DefKillsLiveness) {
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId t = b.create_block("tail");
  b.set_block(e);
  const Reg a = b.ldi(1);
  b.jump(t);
  b.set_block(t);
  b.ldi_to(a, 2);  // kills incoming a before any use
  b.iaddi(a, 1);
  b.ret();
  const Cfg cfg(fn);
  const Liveness live(cfg);
  EXPECT_FALSE(live.is_live_in(t, a));
}

TEST(Liveness, SideExitKeepsValueLiveDespiteLaterKill) {
  // Block: br cond -> out;  x = 0;  ...  with x live at `out`.
  // Block-summary liveness would kill x; the scan-based analysis must not.
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  const BlockId body = b.create_block("body");
  const BlockId out = b.create_block("out");
  b.set_block(e);
  const Reg x = b.ldi(7);
  const Reg c = b.ldi(0);
  b.jump(body);
  b.set_block(body);
  b.bri(Opcode::BEQ, c, 1, out);
  b.ldi_to(x, 0);  // kill after the side exit
  b.ret();
  b.set_block(out);
  const Reg y = b.iaddi(x, 1);  // use of x on the exit path
  (void)y;
  b.ret();

  const Cfg cfg(fn);
  const Liveness live(cfg);
  EXPECT_TRUE(live.is_live_in(body, x));
  EXPECT_TRUE(live.is_live_in(out, x));
}

TEST(Liveness, RetInjectsFunctionLiveOut) {
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  b.set_block(e);
  const Reg a = b.ldi(1);
  const Reg dead = b.ldi(2);
  (void)dead;
  b.ret();
  fn.add_live_out(a);
  const Cfg cfg(fn);
  const Liveness live(cfg);
  // After the first ldi, `a` is live (needed at RET); `dead` never is.
  const BitVector after0 = live.live_after(e, 0);
  EXPECT_TRUE(after0.test(RegKey::key(a)));
  const BitVector after1 = live.live_after(e, 1);
  EXPECT_TRUE(after1.test(RegKey::key(a)));
  EXPECT_FALSE(after1.test(RegKey::key(dead)));
}

TEST(Liveness, LiveAfterAllMatchesPointQueries) {
  Function fn;
  IRBuilder b(fn);
  const BlockId e = b.create_block("entry");
  b.set_block(e);
  const Reg a = b.ldi(1);
  const Reg c = b.iaddi(a, 1);
  b.iadd(a, c);
  b.ret();
  const Cfg cfg(fn);
  const Liveness live(cfg);
  const auto all = live.live_after_all(e);
  ASSERT_EQ(all.size(), 4u);
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_TRUE(all[i] == live.live_after(e, i)) << "at " << i;
}

}  // namespace
}  // namespace ilp
