#include "analysis/cfg.hpp"

#include <gtest/gtest.h>

#include "analysis/dominators.hpp"
#include "ir/builder.hpp"

namespace ilp {
namespace {

// entry -> loop (self edge + fallthrough to exit), side exit from loop to out.
struct Diamond {
  Function fn;
  BlockId entry, loop, exit, out;
  Diamond() {
    IRBuilder b(fn);
    entry = b.create_block("entry");
    loop = b.create_block("loop");
    exit = b.create_block("exit");
    out = b.create_block("out");
    b.set_block(entry);
    const Reg i = b.ldi(0);
    const Reg n = b.ldi(10);
    b.jump(loop);
    b.set_block(loop);
    b.bri(Opcode::BGT, i, 100, out);  // side exit
    b.iaddi_to(i, i, 1);
    b.br(Opcode::BLT, i, n, loop);
    b.set_block(exit);
    b.jump(out);
    b.set_block(out);
    b.ret();
    fn.renumber();
  }
};

TEST(Cfg, SuccessorsIncludeSideExitsAndFallthrough) {
  Diamond d;
  const Cfg cfg(d.fn);
  const auto& s = cfg.succs(d.loop);
  // side exit target, back edge, fallthrough
  EXPECT_EQ(s.size(), 3u);
  EXPECT_NE(std::find(s.begin(), s.end(), d.out), s.end());
  EXPECT_NE(std::find(s.begin(), s.end(), d.loop), s.end());
  EXPECT_NE(std::find(s.begin(), s.end(), d.exit), s.end());
  EXPECT_EQ(cfg.succs(d.entry).size(), 1u);
  EXPECT_TRUE(cfg.succs(d.out).empty());
}

TEST(Cfg, PredecessorsMirrorSuccessors) {
  Diamond d;
  const Cfg cfg(d.fn);
  const auto& p = cfg.preds(d.loop);
  EXPECT_EQ(p.size(), 2u);  // entry and self
  EXPECT_EQ(cfg.preds(d.entry).size(), 0u);
  EXPECT_EQ(cfg.preds(d.out).size(), 2u);  // loop (side exit) and exit
}

TEST(Cfg, RpoStartsAtEntry) {
  Diamond d;
  const Cfg cfg(d.fn);
  ASSERT_EQ(cfg.rpo().size(), 4u);
  EXPECT_EQ(cfg.rpo().front(), d.entry);
}

TEST(Cfg, JumpBlockHasNoFallthrough) {
  Function fn;
  IRBuilder b(fn);
  const BlockId a = b.create_block("a");
  const BlockId mid = b.create_block("mid");
  const BlockId c = b.create_block("c");
  b.set_block(a);
  b.jump(c);
  b.set_block(mid);
  b.jump(c);
  b.set_block(c);
  b.ret();
  const Cfg cfg(fn);
  EXPECT_EQ(cfg.succs(a).size(), 1u);
  EXPECT_EQ(cfg.succs(a)[0], c);
}

TEST(Dominators, EntryDominatesAll) {
  Diamond d;
  const Cfg cfg(d.fn);
  const Dominators dom(cfg);
  EXPECT_TRUE(dom.dominates(d.entry, d.loop));
  EXPECT_TRUE(dom.dominates(d.entry, d.out));
  EXPECT_TRUE(dom.dominates(d.loop, d.exit));
  EXPECT_FALSE(dom.dominates(d.exit, d.out));  // out also reached via side exit
  EXPECT_TRUE(dom.dominates(d.loop, d.out));
  EXPECT_TRUE(dom.dominates(d.loop, d.loop));
}

TEST(Dominators, IdomChain) {
  Diamond d;
  const Cfg cfg(d.fn);
  const Dominators dom(cfg);
  EXPECT_EQ(dom.idom(d.entry), d.entry);
  EXPECT_EQ(dom.idom(d.loop), d.entry);
  EXPECT_EQ(dom.idom(d.exit), d.loop);
  EXPECT_EQ(dom.idom(d.out), d.loop);
}

}  // namespace
}  // namespace ilp
