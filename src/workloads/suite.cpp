#include "workloads/suite.hpp"

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace ilp {

namespace {

using dsl::LoopType;

// ---- Generators for the large bodies ----------------------------------------

// N pairs of "store temp / consume temp" element-wise statements (2N stmts).
std::string elementwise_pairs(const char* idx, int pairs, std::int64_t len,
                              std::string* decls) {
  std::string body;
  for (int p = 0; p < pairs; ++p) {
    *decls += strformat("array T%d[%lld] fp\narray U%d[%lld] fp\n", p,
                        static_cast<long long>(len), p, static_cast<long long>(len));
    body += strformat("    T%d[%s] = A[%s] * %d.5 + B[%s];\n", p, idx, idx, p + 1, idx);
    body += strformat("    U%d[%s] = T%d[%s] * D[%s];\n", p, idx, p, idx, idx);
  }
  return body;
}

// NAS-1: 22 statements, 1500 iterations, depth 1, DOALL.
Workload nas1() {
  std::string decls =
      "program nas1\n"
      "array A[1500] fp\narray B[1500] fp\narray D[1500] fp\n";
  const std::string body = elementwise_pairs("i", 11, 1500, &decls);
  return {"NAS-1", "PERFECT", 22, 1500, 1, LoopType::DoAll, false,
          decls + "loop i = 0 to 1499 {\n" + body + "}\n"};
}

// NAS-5: 71 statements, 1500 iterations, depth 2, serial (one reduction).
Workload nas5() {
  std::string decls =
      "program nas5\n"
      "array A[1500] fp\narray B[1500] fp\narray D[1500] fp\n"
      "scalar s fp out\n";
  const std::string body = elementwise_pairs("i", 35, 1500, &decls);
  const std::string src = decls +
                          "loop o = 0 to 2 {\n"
                          "  loop i = 0 to 1499 {\n" +
                          body + "    s = s + T0[i] * U34[i];\n  }\n}\n";
  return {"NAS-5", "PERFECT", 71, 1500, 2, LoopType::Serial, false, src};
}

// NAS-6: 24 statements, 635 iterations, depth 2, DOACROSS (distance 5).
Workload nas6() {
  std::string decls =
      "program nas6\n"
      "array A[1500] fp\narray B[1500] fp\narray D[1500] fp\narray R[1500] fp\n";
  const std::string body = elementwise_pairs("i", 11, 1500, &decls);  // 22 stmts
  const std::string src = decls +
                          "loop o = 0 to 2 {\n"
                          "  loop i = 5 to 639 {\n"
                          "    R[i] = R[i-5] * 0.5 + B[i];\n" +
                          body + "    A[i] = U10[i] + R[i];\n  }\n}\n";
  return {"NAS-6", "PERFECT", 24, 635, 2, LoopType::DoAcross, false, src};
}

// SRS-5: 21 statements, 287 iterations, depth 2, DOALL.
Workload srs5() {
  std::string decls =
      "program srs5\n"
      "array A[300] fp\narray B[300] fp\narray D[300] fp\n"
      "array V[300] fp\n";
  const std::string body = elementwise_pairs("i", 10, 300, &decls);  // 20 stmts
  const std::string src = decls +
                          "loop o = 0 to 2 {\n"
                          "  loop i = 0 to 286 {\n" +
                          body + "    V[i] = T9[i] / U0[i];\n  }\n}\n";
  return {"SRS-5", "PERFECT", 21, 287, 2, LoopType::DoAll, false, src};
}

// TFS-1: 11 statements, 89 iterations, depth 2, DOALL, long expressions.
Workload tfs1() {
  std::string decls =
      "program tfs1\n"
      "array A[100] fp\narray B[100] fp\narray C[100] fp\narray D[100] fp\n"
      "array F[100] fp\narray G[100] fp\n";
  std::string body;
  for (int p = 0; p < 11; ++p) {
    decls += strformat("array E%d[100] fp\n", p);
    body += strformat(
        "    E%d[i] = B[i] * (C[i] + D[i]) * A[i] * F[i] / (G[i] + %d.0);\n", p, p + 1);
  }
  const std::string src = decls +
                          "loop o = 0 to 2 {\n"
                          "  loop i = 0 to 88 {\n" +
                          body + "  }\n}\n";
  return {"TFS-1", "PERFECT", 11, 89, 2, LoopType::DoAll, false, src};
}

// tomcatv-1: 21 statements, 255 iterations, depth 2, DOALL, stencil loads.
Workload tomcatv1() {
  std::string decls =
      "program tomcatv1\n"
      "array X[260] fp\narray Y[260] fp\n";
  std::string body;
  for (int p = 0; p < 21; ++p) {
    decls += strformat("array W%d[260] fp\n", p);
    body += strformat(
        "    W%d[i] = (X[i-1] + X[i+1] - X[i] * 2.0) * %d.25 + Y[i] * (X[i] + %d.5);\n",
        p, p + 1, p);
  }
  const std::string src = decls +
                          "loop o = 0 to 2 {\n"
                          "  loop i = 1 to 255 {\n" +
                          body + "  }\n}\n";
  return {"tomcatv-1", "SPEC", 21, 255, 2, LoopType::DoAll, false, src};
}

// doduc-1: 38 statements, 13 iterations, depth 1, serial, with a break.
Workload doduc1() {
  std::string decls =
      "program doduc1\n"
      "array A[20] fp\narray B[20] fp\narray C[20] fp\narray D[20] fp\n"
      "scalar acc fp out\nscalar t fp\n";
  std::string body;
  body += "    t = t * 0.5 + A[i] * B[i];\n";           // general recurrence
  for (int p = 0; p < 35; ++p) {
    decls += strformat("array P%d[20] fp\n", p);
    body += strformat("    P%d[i] = (A[i] + %d.25) * (B[i] - %d.125) * C[i] / (D[i] + "
                      "%d.5);\n",
                      p, p + 1, p, p + 2);
  }
  body += "    acc = acc + t;\n";
  body += "    if (acc > 1.0e15) break;\n";
  const std::string src =
      decls + "loop i = 0 to 12 {\n" + body + "}\n";
  return {"doduc-1", "SPEC", 38, 13, 1, LoopType::Serial, true, src};
}

std::vector<Workload> build_suite() {
  std::vector<Workload> w;

  // ---------------- PERFECT club ---------------------------------------------
  w.push_back({"APS-1", "PERFECT", 2, 64, 2, LoopType::DoAll, false, R"(
program aps1
array A[64] fp
array B[64] fp
array E[64] fp
array T[64] fp
array D[64] fp
scalar c1 fp init 1.25
loop o = 0 to 2 {
  loop i = 0 to 63 {
    T[i] = A[i] * c1 + B[i];
    D[i] = T[i] * E[i];
  }
}
)"});

  w.push_back({"APS-2", "PERFECT", 8, 31, 2, LoopType::DoAll, false, R"(
program aps2
array A[31] fp
array B[31] fp
array C[31] fp
array D[31] fp
array E[31] fp
array F[31] fp
array G[31] fp
array H[31] fp
array P[31] fp
array Q[31] fp
loop o = 0 to 2 {
  loop i = 0 to 30 {
    P[i] = A[i] + B[i];
    Q[i] = C[i] - D[i];
    E[i] = P[i] * Q[i];
    F[i] = P[i] + Q[i] * 0.5;
    G[i] = A[i] * C[i] + B[i] * D[i];
    H[i] = A[i] / (B[i] + 3.0);
    A[i] = A[i] * 1.0625;
    B[i] = B[i] * 0.9375;
  }
}
)"});

  w.push_back({"APS-3", "PERFECT", 2, 776, 1, LoopType::DoAll, false, R"(
program aps3
array A[776] fp
array B[776] fp
array C[776] fp
array D[776] fp
loop i = 0 to 775 {
  C[i] = A[i] * B[i];
  D[i] = A[i] + B[i] * 2.0;
}
)"});

  w.push_back({"CSS-1", "PERFECT", 6, 67, 1, LoopType::Serial, true, R"(
program css1
array A[67] fp
array B[67] fp
array C[67] fp
array D[67] fp
array E[67] fp
scalar acc fp out
scalar t fp
scalar u fp
loop i = 0 to 66 {
  t = A[i] * B[i];
  u = t + C[i];
  D[i] = u * 0.5;
  acc = acc + u;
  E[i] = u - t;
  if (acc > 1.0e12) break;
}
)"});

  w.push_back({"LWS-1", "PERFECT", 2, 343, 2, LoopType::Serial, false, R"(
program lws1
array A[343] fp
array B[343] fp
scalar t fp out
loop o = 0 to 2 {
  loop i = 0 to 342 {
    t = t * 0.75 + A[i];
    B[i] = t;
  }
}
)"});

  w.push_back({"LWS-2", "PERFECT", 1, 3087, 2, LoopType::Serial, false, R"(
program lws2
array A[3087] fp
array B[3087] fp
scalar s fp out
loop o = 0 to 1 {
  loop i = 0 to 3086 {
    s = s + A[i] * B[i];
  }
}
)"});

  w.push_back({"MTS-1", "PERFECT", 2, 423, 2, LoopType::Serial, true, R"(
program mts1
array W[423] fp
scalar m fp init -1.0e30 out
scalar s fp out
loop o = 0 to 2 {
  loop i = 0 to 422 {
    m = max(m, W[i]);
    s = s + W[i];
  }
}
)"});

  w.push_back({"MTS-2", "PERFECT", 2, 24, 3, LoopType::Serial, true, R"(
program mts2
array M[2][24] fp
scalar m fp init 1.0e30 out
scalar n fp out
loop o = 0 to 2 {
  loop j = 0 to 1 {
    loop k = 0 to 23 {
      m = min(m, M[j][k]);
      n = n + M[j][k];
    }
  }
}
)"});

  w.push_back(nas1());

  w.push_back({"NAS-2", "PERFECT", 5, 1520, 1, LoopType::DoAll, false, R"(
program nas2
array A[1520] fp
array B[1520] fp
array C[1520] fp
array D[1520] fp
array E[1520] fp
array F[1520] fp
array G[1520] fp
loop i = 0 to 1519 {
  C[i] = A[i] + B[i];
  D[i] = A[i] - B[i];
  E[i] = C[i] * D[i];
  F[i] = C[i] / (D[i] + 4.0);
  G[i] = E[i] + F[i];
}
)"});

  w.push_back({"NAS-3", "PERFECT", 6, 6000, 1, LoopType::DoAll, false, R"(
program nas3
array A[6000] fp
array B[6000] fp
array C[6000] fp
array D[6000] fp
array E[6000] fp
array F[6000] fp
array G[6000] fp
array H[6000] fp
loop i = 0 to 5999 {
  C[i] = A[i] * 2.5;
  D[i] = B[i] * 0.5;
  E[i] = C[i] + D[i];
  F[i] = C[i] - D[i];
  G[i] = E[i] * F[i];
  H[i] = E[i] + F[i] * 3.0;
}
)"});

  w.push_back({"NAS-4", "PERFECT", 2, 1204, 1, LoopType::Serial, false, R"(
program nas4
array A[1204] fp
array B[1204] fp
array C[1204] fp
scalar s1 fp out
scalar s2 fp out
loop i = 0 to 1203 {
  s1 = s1 + A[i] * B[i];
  s2 = s2 + (A[i] - C[i]);
}
)"});

  w.push_back(nas5());
  w.push_back(nas6());

  w.push_back({"SDS-1", "PERFECT", 1, 25, 2, LoopType::Serial, false, R"(
program sds1
array A[25] fp
scalar s fp out
loop o = 0 to 2 {
  loop i = 0 to 24 {
    s = s + A[i] * A[i];
  }
}
)"});

  w.push_back({"SDS-2", "PERFECT", 1, 32, 3, LoopType::Serial, false, R"(
program sds2
array M[2][32] fp
scalar t fp out
loop o = 0 to 2 {
  loop j = 0 to 1 {
    loop k = 0 to 31 {
      t = t * 0.875 + M[j][k];
    }
  }
}
)"});

  w.push_back({"SDS-3", "PERFECT", 1, 25, 2, LoopType::Serial, false, R"(
program sds3
array A[25] fp
scalar p fp init 1.0 out
loop o = 0 to 2 {
  loop i = 0 to 24 {
    p = p * (1.0 + A[i] * 0.001);
  }
}
)"});

  w.push_back({"SDS-4", "PERFECT", 3, 25, 2, LoopType::DoAcross, false, R"(
program sds4
array A[30] fp
array B[30] fp
array C[30] fp
array D[30] fp
loop o = 0 to 2 {
  loop i = 3 to 27 {
    A[i] = A[i-3] + B[i];
    C[i] = B[i] * 1.5;
    D[i] = C[i] + A[i];
  }
}
)"});

  w.push_back({"SRS-1", "PERFECT", 3, 287, 1, LoopType::DoAll, false, R"(
program srs1
array A[287] fp
array B[287] fp
array C[287] fp
array D[287] fp
array E[287] fp
loop i = 0 to 286 {
  C[i] = A[i] * 0.25 + B[i];
  D[i] = A[i] - B[i] * 0.125;
  E[i] = C[i] * D[i];
}
)"});

  w.push_back({"SRS-2", "PERFECT", 5, 287, 2, LoopType::DoAcross, false, R"(
program srs2
array A[300] fp
array B[300] fp
array C[300] fp
array D[300] fp
array E[300] fp
loop o = 0 to 2 {
  loop i = 2 to 288 {
    A[i] = A[i-2] * 0.5 + B[i];
    C[i] = B[i] + 2.0;
    D[i] = C[i] * B[i];
    E[i] = D[i] - C[i];
    B[i] = B[i] * 1.0078125;
  }
}
)"});

  w.push_back({"SRS-3", "PERFECT", 1, 287, 2, LoopType::DoAll, false, R"(
program srs3
array A[287] fp
array B[287] fp
loop o = 0 to 2 {
  loop i = 0 to 286 {
    B[i] = A[i] * 2.5;
  }
}
)"});

  w.push_back({"SRS-4", "PERFECT", 9, 87, 3, LoopType::DoAll, false, R"(
program srs4
array A[87] fp
array B[87] fp
array C[87] fp
array D[87] fp
array E[87] fp
array F[87] fp
array G[87] fp
array H[87] fp
array P[87] fp
array Q[87] fp
loop o = 0 to 1 {
  loop j = 0 to 1 {
    loop k = 0 to 86 {
      C[k] = A[k] + B[k];
      D[k] = A[k] - B[k];
      E[k] = C[k] * 0.5;
      F[k] = D[k] * 0.25;
      G[k] = E[k] + F[k];
      H[k] = E[k] - F[k];
      P[k] = G[k] * H[k];
      Q[k] = G[k] / (H[k] + 2.0);
      A[k] = A[k] * 1.03125;
    }
  }
}
)"});

  w.push_back(srs5());

  w.push_back({"SRS-6", "PERFECT", 1, 287, 2, LoopType::Serial, false, R"(
program srs6
array A[287] fp
scalar s fp out
loop o = 0 to 2 {
  loop i = 0 to 286 {
    s = s + A[i];
  }
}
)"});

  w.push_back(tfs1());

  w.push_back({"TFS-2", "PERFECT", 7, 120, 2, LoopType::DoAcross, false, R"(
program tfs2
array A[130] fp
array B[130] fp
array C[130] fp
array D[130] fp
array E[130] fp
array F[130] fp
loop o = 0 to 2 {
  loop i = 4 to 123 {
    A[i] = A[i-4] * 0.25 + B[i];
    C[i] = (B[i] + D[i]) * (B[i] - D[i]);
    E[i] = C[i] * B[i] + D[i];
    F[i] = E[i] / (C[i] + 3.0);
    D[i] = D[i] * 1.015625;
    B[i] = B[i] + 0.125;
    E[i] = E[i] + A[i];
  }
}
)"});

  w.push_back({"TFS-3", "PERFECT", 2, 49, 3, LoopType::DoAll, false, R"(
program tfs3
array A[49] fp
array B[49] fp
array C[49] fp
array D[49] fp
loop o = 0 to 1 {
  loop j = 0 to 1 {
    loop k = 0 to 48 {
      C[k] = A[k] * B[k] + 1.5;
      D[k] = A[k] / (B[k] + 2.0);
    }
  }
}
)"});

  w.push_back({"WSS-1", "PERFECT", 1, 96, 2, LoopType::DoAll, false, R"(
program wss1
array A[96] fp
array B[96] fp
loop o = 0 to 2 {
  loop i = 0 to 95 {
    B[i] = A[i] * 0.333 + 1.0;
  }
}
)"});

  w.push_back({"WSS-2", "PERFECT", 4, 39, 2, LoopType::DoAcross, false, R"(
program wss2
array A[45] fp
array B[45] fp
array C[45] fp
array D[45] fp
loop o = 0 to 2 {
  loop i = 2 to 40 {
    A[i] = A[i-2] + B[i] * 0.5;
    C[i] = B[i] * B[i];
    D[i] = C[i] - B[i];
    B[i] = B[i] * 1.0009765625;
  }
}
)"});

  // ---------------- SPEC ------------------------------------------------------
  w.push_back(doduc1());

  w.push_back({"matrix300-1", "SPEC", 1, 300, 1, LoopType::DoAll, false, R"(
program matrix300
array A[300] fp
array C[300] fp
scalar bk fp init 1.2
loop i = 0 to 299 {
  C[i] = C[i] + A[i] * bk;
}
)"});

  w.push_back({"nasa7-1", "SPEC", 1, 256, 3, LoopType::DoAll, false, R"(
program nasa7a
array M[2][256] fp
array X[256] fp
loop o = 0 to 1 {
  loop j = 0 to 1 {
    loop k = 0 to 255 {
      X[k] = X[k] + M[j][k];
    }
  }
}
)"});

  w.push_back({"nasa7-2", "SPEC", 3, 1000, 3, LoopType::DoAcross, false, R"(
program nasa7b
array A[1010] fp
array B[1010] fp
array C[1010] fp
loop o = 0 to 1 {
  loop j = 0 to 1 {
    loop k = 8 to 1007 {
      A[k] = A[k-8] * 0.5 + B[k];
      C[k] = B[k] * 2.0;
      B[k] = B[k] + 0.0625;
    }
  }
}
)"});

  w.push_back(tomcatv1());

  w.push_back({"tomcatv-2", "SPEC", 8, 255, 2, LoopType::Serial, true, R"(
program tomcatv2
array X[255] fp
array Y[255] fp
array XO[255] fp
array YO[255] fp
scalar dx fp
scalar dy fp
scalar rx fp init -1.0e30 out
scalar ry fp init -1.0e30 out
scalar sx fp out
scalar sy fp out
loop o = 0 to 2 {
  loop i = 0 to 254 {
    dx = X[i] - XO[i];
    dy = Y[i] - YO[i];
    rx = max(rx, dx);
    ry = max(ry, dy);
    XO[i] = X[i];
    YO[i] = Y[i];
    sx = sx + dx;
    sy = sy + dy;
  }
}
)"});

  // ---------------- Vector library --------------------------------------------
  w.push_back({"add", "VECTOR", 1, 1024, 1, LoopType::DoAll, false, R"(
program vadd
array A[1024] fp
array B[1024] fp
array C[1024] fp
loop i = 0 to 1023 {
  C[i] = A[i] + B[i];
}
)"});

  w.push_back({"dotprod", "VECTOR", 1, 1024, 1, LoopType::Serial, false, R"(
program dotprod
array A[1024] fp
array B[1024] fp
scalar s fp out
loop i = 0 to 1023 {
  s = s + A[i] * B[i];
}
)"});

  w.push_back({"maxval", "VECTOR", 3, 1024, 1, LoopType::Serial, true, R"(
program maxval
array A[1024] fp
array W[1024] fp
scalar t fp
scalar m fp init -1.0e30 out
scalar s fp out
loop i = 0 to 1023 {
  t = A[i] * W[i];
  m = max(m, t);
  s = s + t;
}
)"});

  w.push_back({"merge", "VECTOR", 4, 1024, 1, LoopType::DoAll, true, R"(
program vmerge
array A[1024] fp
array B[1024] fp
array C[1024] fp
scalar a fp
scalar b fp
scalar c fp
loop i = 0 to 1023 {
  a = A[i];
  b = B[i];
  c = max(a, b);
  C[i] = c;
}
)"});

  w.push_back({"sum", "VECTOR", 1, 1024, 1, LoopType::Serial, false, R"(
program vsum
array A[1024] fp
scalar s fp out
loop i = 0 to 1023 {
  s = s + A[i];
}
)"});

  ILP_ASSERT(w.size() == 40, "Table 2 has 40 loop nests");
  return w;
}

}  // namespace

const std::vector<Workload>& workload_suite() {
  static const std::vector<Workload> suite = build_suite();
  return suite;
}

const Workload* find_workload(std::string_view name) {
  for (const auto& w : workload_suite())
    if (w.name == name) return &w;
  return nullptr;
}

}  // namespace ilp
