// Loop nests sized for the affine restructuring passes (trans/nest/):
// column-major traversals that interchange fixes, adjacent conformable loops
// that fuse, mixed-recurrence bodies that fission splits, and square nests
// big enough for tiling to matter.  Kept separate from workload_suite() —
// that set is pinned to the paper's Table 2 (exactly 40 single-innermost
// nests) and validated as such by tests/workloads/suite_test.cpp.
//
// bench_nest.cpp sweeps this suite across levels x widths x nest on/off and
// writes the BENCH_7 artifact; nest_semantics_test runs every entry through
// the differential interpreter oracle.
#pragma once

#include "workloads/suite.hpp"

namespace ilp {

// Nest-restructuring workload set (names prefixed "NEST-").
const std::vector<Workload>& nest_suite();

}  // namespace ilp
