// The 40 loop nests of the paper's Table 2, reconstructed in the DSL.
//
// The original PERFECT club / SPEC / vector-library Fortran sources are not
// available, so each nest is synthesized to match every attribute the paper
// publishes: innermost source size (statement count), average innermost
// iteration count, nesting depth, KAP classification (DOALL / DOACROSS /
// serial), and the presence of conditionals — and to exercise the same
// transformation opportunities (reductions, searches, induction streams,
// recurrences, long arithmetic expressions).  Outer-loop trip counts are
// scaled down (2-3 iterations) so execution-driven simulation of the whole
// study stays fast; ILP and the paper's speedups are properties of the
// innermost loops, which run at the published iteration counts.
//
// Each workload's metadata is validated against its own source by
// tests/workloads/suite_test.cpp using the front end's classifier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/classify.hpp"

namespace ilp {

struct Workload {
  std::string name;   // Table 2 "Name" (e.g. "APS-1")
  std::string group;  // PERFECT / SPEC / VECTOR
  int size = 0;       // innermost body statements (Table 2 "Size")
  std::int64_t iters = 0;  // innermost iterations (Table 2 "Iters")
  int nest = 1;            // nesting depth (Table 2 "Nest")
  dsl::LoopType type = dsl::LoopType::DoAll;  // Table 2 "Type"
  bool conds = false;                         // Table 2 "Conds"
  std::string source;                         // DSL program text
};

// The full 40-nest suite, in Table 2 order.
const std::vector<Workload>& workload_suite();

// Lookup by name; nullptr if absent.
const Workload* find_workload(std::string_view name);

}  // namespace ilp
