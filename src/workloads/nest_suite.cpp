#include "workloads/nest_suite.hpp"

namespace ilp {

using dsl::LoopType;

const std::vector<Workload>& nest_suite() {
  static const std::vector<Workload> w = [] {
    std::vector<Workload> v;

    // Column-major traversal of row-major storage: the inner loop walks the
    // row dimension, so interchange (and tiling) turn stride-12 accesses
    // into stride-1.  All dependences are (=,=) — every reordering is legal.
    v.push_back({"NEST-XPOSE", "NEST", 1, 8, 2, LoopType::DoAll, false, R"(
program nest_xpose
array M[8][12] fp
array N[8][12] fp
scalar c fp init 1.25
loop i = 0 to 11 {
  loop j = 0 to 7 {
    M[j][i] = M[j][i] * c + N[j][i];
  }
}
)"});

    // Two adjacent conformable loops over the same range with a forward
    // (loop-independent after fusion) dependence A -> second loop: fusable.
    v.push_back({"NEST-FUSE", "NEST", 1, 48, 1, LoopType::DoAll, false, R"(
program nest_fuse
array A[48] fp
array B[48] fp
array C[48] fp
scalar c fp init 0.5
loop i = 0 to 47 {
  A[i] = B[i] * c + 1.0;
}
loop i = 0 to 47 {
  C[i] = A[i] + B[i];
}
)"});

    // One loop mixing an independent DOALL stream with a first-order
    // recurrence: fission splits them so the stream schedules at full width.
    v.push_back({"NEST-FISS", "NEST", 2, 40, 1, LoopType::DoAcross, false, R"(
program nest_fiss
array A[41] fp
array B[41] fp
array C[41] fp
scalar c fp init 0.75
loop i = 1 to 40 {
  A[i] = B[i] * c + 2.0;
  C[i] = C[i - 1] * c + B[i];
}
)"});

    // Square nest with reuse along both dimensions; big enough that the
    // tiling pass strip-mines it (trip 16 > default test tile sizes).
    v.push_back({"NEST-TILE", "NEST", 1, 16, 2, LoopType::DoAll, false, R"(
program nest_tile
array M[16][16] fp
array N[16][16] fp
loop i = 0 to 15 {
  loop j = 0 to 15 {
    M[j][i] = M[j][i] + N[j][i] * 1.5;
  }
}
)"});

    // Skewed dependence M[i-1][j+1]: direction (<,>), the textbook
    // interchange-illegal nest.  The legality layer must leave it alone, so
    // this row pins the "nest on == nest off" baseline in BENCH_7.
    v.push_back({"NEST-SKEW", "NEST", 1, 10, 2, LoopType::DoAcross, false, R"(
program nest_skew
array M[8][12] fp
array N[8][12] fp
loop i = 1 to 6 {
  loop j = 1 to 10 {
    M[i][j] = M[i - 1][j + 1] + N[i][j];
  }
}
)"});

    // Fusion chain: three conformable loops where fusing the first pair is
    // legal but the third carries a backward dependence on the second
    // (B[i+1]) — fuses exactly once, pinning the fusion-preventing test.
    v.push_back({"NEST-CHAIN", "NEST", 1, 32, 1, LoopType::DoAll, false, R"(
program nest_chain
array A[34] fp
array B[34] fp
array C[34] fp
loop i = 1 to 32 {
  A[i] = B[i] * 1.25;
}
loop i = 1 to 32 {
  C[i] = A[i] + 0.5;
}
loop i = 1 to 32 {
  B[i + 1] = C[i] * 2.0;
}
)"});

    return v;
  }();
  return w;
}

}  // namespace ilp
