// Hand-written lexer for the loop-nest DSL.  '#' starts a to-end-of-line
// comment.  Numbers with '.', 'e'/'E' exponents are fp literals.
#pragma once

#include <string_view>
#include <vector>

#include "frontend/token.hpp"
#include "support/diagnostics.hpp"

namespace ilp {

class Lexer {
 public:
  Lexer(std::string_view src, DiagnosticEngine& diags) : src_(src), diags_(&diags) {}

  // Lexes the whole input; the final token is Tok::End.  On error, reports a
  // diagnostic and skips the offending character.
  std::vector<Token> lex_all();

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek() const { return at_end() ? '\0' : src_[pos_]; }
  char advance();
  [[nodiscard]] SourceLoc here() const { return SourceLoc{line_, col_}; }

  Token lex_number();
  Token lex_ident();

  std::string_view src_;
  DiagnosticEngine* diags_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace ilp
