// KAP-style classification of innermost loops (paper Table 2): DOALL,
// DOACROSS, or serial, plus the Conds flag and source-size metadata.
//
// Rules (applied to each innermost loop):
//   * A scalar defined in terms of its own previous value is a recurrence:
//     reductions (s = s + e, s = s - e, s = max/min(s, e)) and general
//     recurrences both make the loop *serial* (the paper's dotprod/maxval
//     loops are listed serial; their recurrences are exactly what Lev4's
//     expansion transformations remove).
//   * Affine array subscripts are compared store-vs-reference; a constant
//     nonzero iteration distance makes the loop DOACROSS, distance zero is
//     iteration-local, a non-affine or coefficient-mismatched pair is
//     conservatively serial.
//   * A scalar read before it is (re)written in the body carries a value
//     across iterations: serial.
//   * Otherwise the loop is DOALL.
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.hpp"

namespace ilp::dsl {

enum class LoopType { DoAll, DoAcross, Serial };

[[nodiscard]] const char* loop_type_name(LoopType t);

struct InnerLoopSummary {
  std::string var;
  int nest_depth = 1;     // 1 = not nested
  int body_stmts = 0;     // statement count of the innermost body ("Size")
  LoopType type = LoopType::DoAll;
  bool has_conds = false; // if-break or max/min updates present
  // Serial loops whose only recurrences are sum/product/max/min reductions:
  // exactly the class Lev4's expansion transformations can fix (serial loops
  // with general recurrences stay serial at every level).
  bool reduction_only = false;
};

// Summaries for every innermost loop in the program, in source order.
std::vector<InnerLoopSummary> classify_innermost_loops(const Program& program);

}  // namespace ilp::dsl
