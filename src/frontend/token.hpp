// Token definitions for the loop-nest DSL.
//
// The DSL expresses the paper's workload shape: FORTRAN-style loop nests over
// arrays with affine subscripts, scalar reductions, max/min searches, and
// data-dependent early exits.  See frontend/parser.hpp for the grammar.
#pragma once

#include <cstdint>
#include <string>

#include "support/diagnostics.hpp"

namespace ilp {

enum class Tok : std::uint8_t {
  End,
  Ident,
  IntLit,
  FpLit,
  // Keywords
  KwProgram,
  KwArray,
  KwScalar,
  KwLoop,
  KwTo,
  KwStep,
  KwIf,
  KwBreak,
  KwFp,
  KwInt,
  KwOut,
  KwInit,
  KwMax,
  KwMin,
  // Punctuation / operators
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  LParen,
  RParen,
  Comma,
  Semi,
  Assign,  // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  Ne,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;        // identifier spelling
  std::int64_t ival = 0;   // IntLit value
  double fval = 0.0;       // FpLit value
  SourceLoc loc;
};

[[nodiscard]] const char* token_name(Tok t);

}  // namespace ilp
