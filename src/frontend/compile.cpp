#include "frontend/compile.hpp"

#include <unordered_map>

#include "frontend/parser.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "support/strings.hpp"

namespace ilp::dsl {

namespace {

struct ArraySym {
  std::int32_t id = -1;
  const ArrayDecl* decl = nullptr;
};

struct PendingBranch {
  BlockId block;
  std::size_t index;
};

class Lowerer {
 public:
  Lowerer(const Program& p, DiagnosticEngine& diags)
      : prog_(p), diags_(&diags), result_{Function(p.name), {}}, b_(result_.fn) {}

  std::optional<CompileResult> run() {
    declare();
    if (diags_->has_errors()) return std::nullopt;

    const BlockId entry = b_.create_block("entry");
    b_.set_block(entry);
    emit_scalar_inits();
    for (const auto& s : prog_.stmts) {
      lower_stmt(*s);
      if (diags_->has_errors()) return std::nullopt;
    }
    b_.ret();
    result_.fn.renumber();
    const VerifyResult v = verify(result_.fn);
    if (!v.ok) {
      diags_->error({}, "internal: lowered IR failed verification: " + v.message);
      return std::nullopt;
    }
    return std::move(result_);
  }

 private:
  void declare() {
    std::int64_t next_base = 0x10000;
    for (const auto& a : prog_.arrays) {
      if (arrays_.count(a.name) || scalars_.count(a.name)) {
        diags_->error(a.loc, "duplicate symbol '" + a.name + "'");
        continue;
      }
      if (a.dim0 <= 0 || (a.dim1 < 0)) {
        diags_->error(a.loc, "array dimensions must be positive");
        continue;
      }
      ArrayInfo info;
      info.name = a.name;
      info.base = next_base;
      info.elem_size = 4;
      info.length = a.elements();
      info.is_fp = a.type == Type::Fp;
      next_base += info.length * info.elem_size + 256;  // padding between arrays
      arrays_[a.name] = ArraySym{result_.fn.add_array(info), &a};
    }
    for (const auto& s : prog_.scalars) {
      if (arrays_.count(s.name) || scalars_.count(s.name)) {
        diags_->error(s.loc, "duplicate symbol '" + s.name + "'");
        continue;
      }
      const Reg r = result_.fn.new_reg(s.type == Type::Fp ? RegClass::Fp : RegClass::Int);
      scalars_[s.name] = r;
      scalar_types_[s.name] = s.type;
      result_.scalar_regs.emplace_back(s.name, r);
      if (s.is_out) result_.fn.add_live_out(r);
    }
  }

  void emit_scalar_inits() {
    for (const auto& s : prog_.scalars) {
      const auto it = scalars_.find(s.name);
      if (it == scalars_.end()) continue;
      if (s.type == Type::Fp)
        b_.fldi_to(it->second, s.has_init ? s.finit : 0.0);
      else
        b_.ldi_to(it->second, s.has_init ? s.iinit : 0);
    }
  }

  // ---- Statements -----------------------------------------------------------

  struct LoopCtx {
    std::vector<PendingBranch> breaks;
  };

  void lower_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Assign: lower_assign(s); break;
      case StmtKind::Loop: lower_loop(s); break;
      case StmtKind::IfBreak: lower_ifbreak(s); break;
    }
  }

  void lower_loop(const Stmt& s) {
    if (scalars_.count(s.loop_var) || arrays_.count(s.loop_var) ||
        loop_vars_.count(s.loop_var)) {
      diags_->error(s.loc, "loop variable '" + s.loop_var + "' shadows another symbol");
      return;
    }
    const Reg var = result_.fn.new_int_reg();
    loop_vars_[s.loop_var] = var;

    // Preheader part: var = lo; hi into a register; zero-trip guard.
    const Reg lo = eval_int(*s.lo);
    if (diags_->has_errors()) return;
    b_.imov_to(var, lo);
    const Reg hi = eval_int(*s.hi);
    if (diags_->has_errors()) return;
    const Opcode guard_op = s.step > 0 ? Opcode::BGT : Opcode::BLT;
    b_.br(guard_op, var, hi, BlockId{0});  // target patched to the exit below
    const PendingBranch guard{b_.current_block(),
                              result_.fn.block(b_.current_block()).insts.size() - 1};

    const BlockId body = b_.create_block(strformat("loop.%s", s.loop_var.c_str()));
    b_.set_block(body);
    LoopCtx ctx;
    loop_stack_.push_back(&ctx);
    for (const auto& inner : s.body) {
      lower_stmt(*inner);
      if (diags_->has_errors()) {
        loop_stack_.pop_back();
        return;
      }
    }
    loop_stack_.pop_back();

    // Latch: var += step; branch back while in range.
    b_.iaddi_to(var, var, s.step);
    const Opcode latch_op = s.step > 0 ? Opcode::BLE : Opcode::BGE;
    b_.br(latch_op, var, hi, body);

    const BlockId exit = b_.create_block(strformat("exit.%s", s.loop_var.c_str()));
    result_.fn.block(guard.block).insts[guard.index].target = exit;
    for (const PendingBranch& br : ctx.breaks)
      result_.fn.block(br.block).insts[br.index].target = exit;
    b_.set_block(exit);
    loop_vars_.erase(s.loop_var);
  }

  void lower_ifbreak(const Stmt& s) {
    if (loop_stack_.empty()) {
      diags_->error(s.loc, "'if (...) break' outside of a loop");
      return;
    }
    const Type lt = type_of(*s.cmp_lhs);
    const Type rt = type_of(*s.cmp_rhs);
    if (diags_->has_errors()) return;
    const bool fp = lt == Type::Fp || rt == Type::Fp;
    Reg a = fp ? eval_fp(*s.cmp_lhs) : eval_int(*s.cmp_lhs);
    Reg c = fp ? eval_fp(*s.cmp_rhs) : eval_int(*s.cmp_rhs);
    if (diags_->has_errors()) return;
    Opcode op;
    switch (s.cmp) {
      case CmpOp::Lt: op = fp ? Opcode::FBLT : Opcode::BLT; break;
      case CmpOp::Le: op = fp ? Opcode::FBLE : Opcode::BLE; break;
      case CmpOp::Gt: op = fp ? Opcode::FBGT : Opcode::BGT; break;
      case CmpOp::Ge: op = fp ? Opcode::FBGE : Opcode::BGE; break;
      case CmpOp::Eq: op = fp ? Opcode::FBEQ : Opcode::BEQ; break;
      case CmpOp::Ne: op = fp ? Opcode::FBNE : Opcode::BNE; break;
    }
    b_.br(op, a, c, BlockId{0});  // patched when the loop exit exists
    loop_stack_.back()->breaks.push_back(PendingBranch{
        b_.current_block(), result_.fn.block(b_.current_block()).insts.size() - 1});
  }

  void lower_assign(const Stmt& s) {
    if (!s.lhs_subscripts.empty()) {
      // Array element store.
      const auto it = arrays_.find(s.lhs_name);
      if (it == arrays_.end()) {
        diags_->error(s.loc, "unknown array '" + s.lhs_name + "'");
        return;
      }
      const ArraySym& sym = it->second;
      if (s.lhs_subscripts.size() != (sym.decl->dim1 > 0 ? 2u : 1u)) {
        diags_->error(s.loc, "wrong number of subscripts for '" + s.lhs_name + "'");
        return;
      }
      const Reg addr = eval_address(sym, s.lhs_subscripts, s.loc);
      if (diags_->has_errors()) return;
      if (sym.decl->type == Type::Fp) {
        const Reg v = eval_fp(*s.rhs);
        if (diags_->has_errors()) return;
        b_.fst(addr, result_.fn.array(sym.id)->base, v, sym.id);
      } else {
        const Reg v = eval_int(*s.rhs);
        if (diags_->has_errors()) return;
        b_.st(addr, result_.fn.array(sym.id)->base, v, sym.id);
      }
      return;
    }
    // Scalar assignment.
    if (loop_vars_.count(s.lhs_name)) {
      diags_->error(s.loc, "cannot assign to loop variable '" + s.lhs_name + "'");
      return;
    }
    const auto it = scalars_.find(s.lhs_name);
    if (it == scalars_.end()) {
      diags_->error(s.loc, "unknown scalar '" + s.lhs_name + "'");
      return;
    }
    eval_into(it->second, scalar_types_[s.lhs_name], *s.rhs);
  }

  // ---- Expressions ----------------------------------------------------------

  Type type_of(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntConst: return Type::Int;
      case ExprKind::FpConst: return Type::Fp;
      case ExprKind::ScalarRef: {
        if (loop_vars_.count(e.name)) return Type::Int;
        const auto it = scalar_types_.find(e.name);
        if (it == scalar_types_.end()) {
          diags_->error(e.loc, "unknown scalar '" + e.name + "'");
          return Type::Int;
        }
        return it->second;
      }
      case ExprKind::ArrayRef: {
        const auto it = arrays_.find(e.name);
        if (it == arrays_.end()) {
          diags_->error(e.loc, "unknown array '" + e.name + "'");
          return Type::Fp;
        }
        return it->second.decl->type;
      }
      case ExprKind::Neg:
        return type_of(*e.lhs);
      case ExprKind::MinMax:
      case ExprKind::Binary: {
        const Type a = type_of(*e.lhs);
        const Type c = type_of(*e.rhs);
        if (e.kind == ExprKind::Binary && e.op == BinOp::Rem &&
            (a == Type::Fp || c == Type::Fp))
          diags_->error(e.loc, "'%' requires integer operands");
        return (a == Type::Fp || c == Type::Fp) ? Type::Fp : Type::Int;
      }
    }
    return Type::Int;
  }

  Reg eval_int(const Expr& e) {
    if (type_of(e) != Type::Int) {
      diags_->error(e.loc, "expected integer expression");
      return result_.fn.new_int_reg();
    }
    return eval(e, Type::Int);
  }

  Reg eval_fp(const Expr& e) {
    const Reg r = eval(e, type_of(e));
    if (r.is_fp()) return r;
    return b_.itof(r);  // implicit int -> fp promotion
  }

  Reg eval(const Expr& e, Type want) {
    switch (e.kind) {
      case ExprKind::IntConst: return b_.ldi(e.ival);
      case ExprKind::FpConst: return b_.fldi(e.fval);
      case ExprKind::ScalarRef: {
        const auto lv = loop_vars_.find(e.name);
        if (lv != loop_vars_.end()) return lv->second;
        const auto it = scalars_.find(e.name);
        if (it == scalars_.end()) {
          diags_->error(e.loc, "unknown scalar '" + e.name + "'");
          return result_.fn.new_int_reg();
        }
        return it->second;
      }
      case ExprKind::ArrayRef: {
        const auto it = arrays_.find(e.name);
        if (it == arrays_.end()) {
          diags_->error(e.loc, "unknown array '" + e.name + "'");
          return result_.fn.new_fp_reg();
        }
        const ArraySym& sym = it->second;
        if (e.subscripts.size() != (sym.decl->dim1 > 0 ? 2u : 1u)) {
          diags_->error(e.loc, "wrong number of subscripts for '" + e.name + "'");
          return result_.fn.new_fp_reg();
        }
        const Reg addr = eval_address(sym, e.subscripts, e.loc);
        const std::int64_t base = result_.fn.array(sym.id)->base;
        return sym.decl->type == Type::Fp ? b_.fld(addr, base, sym.id)
                                          : b_.ld(addr, base, sym.id);
      }
      case ExprKind::Neg: {
        const Reg v = eval(*e.lhs, type_of(*e.lhs));
        if (v.is_fp()) return b_.fneg(v);
        const Reg d = result_.fn.new_int_reg();
        b_.append(make_unary(Opcode::INEG, d, v));
        return d;
      }
      case ExprKind::MinMax:
      case ExprKind::Binary: {
        const Type t = type_of(e);
        (void)want;
        Reg a = t == Type::Fp ? eval_fp(*e.lhs) : eval_int(*e.lhs);
        Reg c = t == Type::Fp ? eval_fp(*e.rhs) : eval_int(*e.rhs);
        return emit_binop(e, t, a, c, kNoReg);
      }
    }
    return result_.fn.new_int_reg();
  }

  // Emits the binary/minmax op; if `dst` is valid the result is written there,
  // else into a fresh register (returned).
  Reg emit_binop(const Expr& e, Type t, Reg a, Reg c, Reg dst) {
    Opcode op;
    if (e.kind == ExprKind::MinMax) {
      op = t == Type::Fp ? (e.is_max ? Opcode::FMAX : Opcode::FMIN)
                         : (e.is_max ? Opcode::IMAX : Opcode::IMIN);
    } else {
      switch (e.op) {
        case BinOp::Add: op = t == Type::Fp ? Opcode::FADD : Opcode::IADD; break;
        case BinOp::Sub: op = t == Type::Fp ? Opcode::FSUB : Opcode::ISUB; break;
        case BinOp::Mul: op = t == Type::Fp ? Opcode::FMUL : Opcode::IMUL; break;
        case BinOp::Div: op = t == Type::Fp ? Opcode::FDIV : Opcode::IDIV; break;
        case BinOp::Rem: op = Opcode::IREM; break;
      }
    }
    if (!dst.valid())
      dst = result_.fn.new_reg(t == Type::Fp ? RegClass::Fp : RegClass::Int);
    b_.append(make_binary(op, dst, a, c));
    return dst;
  }

  // Evaluates `e` directly into scalar register `dst` (type `dt`), keeping
  // reductions in the canonical single-register shape.
  void eval_into(Reg dst, Type dt, const Expr& e) {
    const Type et = type_of(e);
    if (diags_->has_errors()) return;
    if (dt == Type::Int && et == Type::Fp) {
      diags_->error(e.loc, "cannot assign fp value to int scalar");
      return;
    }
    if ((e.kind == ExprKind::Binary || e.kind == ExprKind::MinMax) && et == dt) {
      Reg a = dt == Type::Fp ? eval_fp(*e.lhs) : eval_int(*e.lhs);
      Reg c = dt == Type::Fp ? eval_fp(*e.rhs) : eval_int(*e.rhs);
      if (diags_->has_errors()) return;
      emit_binop(e, dt, a, c, dst);
      return;
    }
    Reg v = dt == Type::Fp ? eval_fp(e) : eval_int(e);
    if (diags_->has_errors()) return;
    if (v == dst) return;  // s = s;
    if (dt == Type::Fp)
      b_.fmov_to(dst, v);
    else
      b_.imov_to(dst, v);
  }

  // Computes the byte-offset register for an array reference.
  Reg eval_address(const ArraySym& sym, const std::vector<ExprPtr>& subs, SourceLoc loc) {
    (void)loc;
    Reg idx = eval_int(*subs[0]);
    if (diags_->has_errors()) return idx;
    if (sym.decl->dim1 > 0) {
      const Reg scaled = b_.imuli(idx, sym.decl->dim1);
      const Reg col = eval_int(*subs[1]);
      if (diags_->has_errors()) return idx;
      idx = b_.iadd(scaled, col);
    }
    return b_.imuli(idx, result_.fn.array(sym.id)->elem_size);
  }

  const Program& prog_;
  DiagnosticEngine* diags_;
  CompileResult result_;
  IRBuilder b_;
  std::unordered_map<std::string, ArraySym> arrays_;
  std::unordered_map<std::string, Reg> scalars_;
  std::unordered_map<std::string, Type> scalar_types_;
  std::unordered_map<std::string, Reg> loop_vars_;
  std::vector<LoopCtx*> loop_stack_;
};

}  // namespace

std::optional<CompileResult> lower(const Program& program, DiagnosticEngine& diags) {
  Lowerer l(program, diags);
  return l.run();
}

std::optional<CompileResult> compile(std::string_view source, DiagnosticEngine& diags) {
  const auto ast = parse(source, diags);
  if (!ast) return std::nullopt;
  return lower(*ast, diags);
}

}  // namespace ilp::dsl
