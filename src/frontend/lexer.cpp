#include "frontend/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "support/strings.hpp"

namespace ilp {

const char* token_name(Tok t) {
  switch (t) {
    case Tok::End: return "end of input";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::FpLit: return "fp literal";
    case Tok::KwProgram: return "'program'";
    case Tok::KwArray: return "'array'";
    case Tok::KwScalar: return "'scalar'";
    case Tok::KwLoop: return "'loop'";
    case Tok::KwTo: return "'to'";
    case Tok::KwStep: return "'step'";
    case Tok::KwIf: return "'if'";
    case Tok::KwBreak: return "'break'";
    case Tok::KwFp: return "'fp'";
    case Tok::KwInt: return "'int'";
    case Tok::KwOut: return "'out'";
    case Tok::KwInit: return "'init'";
    case Tok::KwMax: return "'max'";
    case Tok::KwMin: return "'min'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::EqEq: return "'=='";
    case Tok::Ne: return "'!='";
  }
  return "?";
}

char Lexer::advance() {
  const char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

Token Lexer::lex_number() {
  const SourceLoc loc = here();
  std::string text;
  bool is_fp = false;
  while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '.' ||
                       peek() == 'e' || peek() == 'E' ||
                       ((peek() == '+' || peek() == '-') && !text.empty() &&
                        (text.back() == 'e' || text.back() == 'E')))) {
    if (peek() == '.' || peek() == 'e' || peek() == 'E') is_fp = true;
    text.push_back(advance());
  }
  Token t;
  t.loc = loc;
  if (is_fp) {
    t.kind = Tok::FpLit;
    t.fval = std::strtod(text.c_str(), nullptr);
  } else {
    t.kind = Tok::IntLit;
    t.ival = std::strtoll(text.c_str(), nullptr, 10);
  }
  return t;
}

Token Lexer::lex_ident() {
  static const std::unordered_map<std::string_view, Tok> kKeywords = {
      {"program", Tok::KwProgram}, {"array", Tok::KwArray}, {"scalar", Tok::KwScalar},
      {"loop", Tok::KwLoop},       {"to", Tok::KwTo},       {"step", Tok::KwStep},
      {"if", Tok::KwIf},           {"break", Tok::KwBreak}, {"fp", Tok::KwFp},
      {"int", Tok::KwInt},         {"out", Tok::KwOut},     {"init", Tok::KwInit},
      {"max", Tok::KwMax},         {"min", Tok::KwMin},
  };
  const SourceLoc loc = here();
  std::string text;
  while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_'))
    text.push_back(advance());
  Token t;
  t.loc = loc;
  const auto it = kKeywords.find(text);
  if (it != kKeywords.end()) {
    t.kind = it->second;
  } else {
    t.kind = Tok::Ident;
    t.text = std::move(text);
  }
  return t;
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  while (!at_end()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '#') {
      while (!at_end() && peek() != '\n') advance();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      out.push_back(lex_number());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(lex_ident());
      continue;
    }
    const SourceLoc loc = here();
    advance();
    auto push = [&](Tok k) {
      Token t;
      t.kind = k;
      t.loc = loc;
      out.push_back(t);
    };
    switch (c) {
      case '{': push(Tok::LBrace); break;
      case '}': push(Tok::RBrace); break;
      case '[': push(Tok::LBracket); break;
      case ']': push(Tok::RBracket); break;
      case '(': push(Tok::LParen); break;
      case ')': push(Tok::RParen); break;
      case ',': push(Tok::Comma); break;
      case ';': push(Tok::Semi); break;
      case '+': push(Tok::Plus); break;
      case '-': push(Tok::Minus); break;
      case '*': push(Tok::Star); break;
      case '/': push(Tok::Slash); break;
      case '%': push(Tok::Percent); break;
      case '=':
        if (peek() == '=') {
          advance();
          push(Tok::EqEq);
        } else {
          push(Tok::Assign);
        }
        break;
      case '<':
        if (peek() == '=') {
          advance();
          push(Tok::Le);
        } else {
          push(Tok::Lt);
        }
        break;
      case '>':
        if (peek() == '=') {
          advance();
          push(Tok::Ge);
        } else {
          push(Tok::Gt);
        }
        break;
      case '!':
        if (peek() == '=') {
          advance();
          push(Tok::Ne);
        } else {
          diags_->error(loc, "stray '!'");
        }
        break;
      default:
        diags_->error(loc, strformat("unexpected character '%c'", c));
        break;
    }
  }
  Token end;
  end.kind = Tok::End;
  end.loc = here();
  out.push_back(end);
  return out;
}

}  // namespace ilp
