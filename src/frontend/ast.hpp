// AST for the loop-nest DSL.
//
// The language models the paper's workloads: declarations of fp/int arrays
// (1-D or 2-D) and scalars, then a statement list of loop nests containing
// assignments, max/min search updates, and data-dependent early exits.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace ilp::dsl {

enum class Type : std::uint8_t { Int, Fp };

// ---------------- Expressions ------------------------------------------------

enum class ExprKind : std::uint8_t {
  IntConst,
  FpConst,
  ScalarRef,
  ArrayRef,
  Binary,
  Neg,
  MinMax,
};

enum class BinOp : std::uint8_t { Add, Sub, Mul, Div, Rem };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::IntConst;
  SourceLoc loc;
  Type type = Type::Int;  // filled by sema

  std::int64_t ival = 0;           // IntConst
  double fval = 0.0;               // FpConst
  std::string name;                // ScalarRef / ArrayRef
  std::vector<ExprPtr> subscripts; // ArrayRef (1 or 2)
  BinOp op = BinOp::Add;           // Binary
  bool is_max = false;             // MinMax
  ExprPtr lhs;                     // Binary / Neg / MinMax
  ExprPtr rhs;                     // Binary / MinMax
};

// ---------------- Statements --------------------------------------------------

enum class StmtKind : std::uint8_t { Assign, Loop, IfBreak };

enum class CmpOp : std::uint8_t { Lt, Le, Gt, Ge, Eq, Ne };

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind = StmtKind::Assign;
  SourceLoc loc;

  // Assign: lhs_* describes the target, rhs the value.
  std::string lhs_name;
  std::vector<ExprPtr> lhs_subscripts;  // empty for scalar targets
  ExprPtr rhs;

  // Loop.
  std::string loop_var;
  ExprPtr lo;
  ExprPtr hi;
  std::int64_t step = 1;
  std::vector<StmtPtr> body;

  // IfBreak: if (cmp_lhs OP cmp_rhs) break;
  CmpOp cmp = CmpOp::Lt;
  ExprPtr cmp_lhs;
  ExprPtr cmp_rhs;
};

// ---------------- Declarations & program ---------------------------------------

struct ArrayDecl {
  std::string name;
  Type type = Type::Fp;
  std::int64_t dim0 = 0;
  std::int64_t dim1 = 0;  // 0 => 1-D
  SourceLoc loc;
  [[nodiscard]] std::int64_t elements() const { return dim1 > 0 ? dim0 * dim1 : dim0; }
};

struct ScalarDecl {
  std::string name;
  Type type = Type::Fp;
  bool has_init = false;
  double finit = 0.0;
  std::int64_t iinit = 0;
  bool is_out = false;  // live-out: observable after the program
  SourceLoc loc;
};

struct Program {
  std::string name;
  std::vector<ArrayDecl> arrays;
  std::vector<ScalarDecl> scalars;
  std::vector<StmtPtr> stmts;
};

}  // namespace ilp::dsl
