// Recursive-descent parser for the loop-nest DSL.
//
// Grammar (EBNF; '#' comments, newline-insensitive):
//
//   program   := "program" IDENT decl* stmt*
//   decl      := "array" IDENT "[" INT "]" ("[" INT "]")? ("fp"|"int")
//              | "scalar" IDENT ("fp"|"int") ("init" number)? ("out")?
//   stmt      := loop | assign | ifbreak
//   loop      := "loop" IDENT "=" expr "to" expr ("step" INT)? "{" stmt* "}"
//   assign    := lvalue "=" expr ";"
//   ifbreak   := "if" "(" expr relop expr ")" "break" ";"
//   lvalue    := IDENT ("[" expr "]" ("[" expr "]")?)?
//   expr      := term (("+"|"-") term)*
//   term      := factor (("*"|"/"|"%") factor)*
//   factor    := number | lvalue | "(" expr ")" | "-" factor
//              | ("max"|"min") "(" expr "," expr ")"
//   relop     := "<" | "<=" | ">" | ">=" | "==" | "!="
#pragma once

#include <optional>

#include "frontend/ast.hpp"
#include "frontend/token.hpp"

namespace ilp::dsl {

// Parses source text into an AST; returns nullopt (with diagnostics) on
// syntax errors.
std::optional<Program> parse(std::string_view source, DiagnosticEngine& diags);

}  // namespace ilp::dsl
