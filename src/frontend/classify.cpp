#include "frontend/classify.hpp"

#include <map>
#include <optional>
#include <cstdlib>
#include <set>
#include <string>

namespace ilp::dsl {

const char* loop_type_name(LoopType t) {
  switch (t) {
    case LoopType::DoAll: return "doall";
    case LoopType::DoAcross: return "doacross";
    case LoopType::Serial: return "serial";
  }
  return "?";
}

namespace {

// Affine form over the innermost loop variable: coef*var + Σ others + cst.
struct Affine {
  std::int64_t coef = 0;
  std::map<std::string, std::int64_t> others;
  std::int64_t cst = 0;

  [[nodiscard]] bool pure_const() const { return coef == 0 && others.empty(); }
};

std::optional<Affine> affine_of(const Expr& e, const std::string& var) {
  switch (e.kind) {
    case ExprKind::IntConst: {
      Affine a;
      a.cst = e.ival;
      return a;
    }
    case ExprKind::ScalarRef: {
      Affine a;
      if (e.name == var)
        a.coef = 1;
      else
        a.others[e.name] = 1;
      return a;
    }
    case ExprKind::Neg: {
      auto a = affine_of(*e.lhs, var);
      if (!a) return std::nullopt;
      a->coef = -a->coef;
      a->cst = -a->cst;
      for (auto& [k, v] : a->others) v = -v;
      return a;
    }
    case ExprKind::Binary: {
      auto l = affine_of(*e.lhs, var);
      auto r = affine_of(*e.rhs, var);
      if (!l || !r) return std::nullopt;
      switch (e.op) {
        case BinOp::Add:
        case BinOp::Sub: {
          const std::int64_t s = e.op == BinOp::Add ? 1 : -1;
          Affine a = *l;
          a.coef += s * r->coef;
          a.cst += s * r->cst;
          for (const auto& [k, v] : r->others) {
            a.others[k] += s * v;
            if (a.others[k] == 0) a.others.erase(k);
          }
          return a;
        }
        case BinOp::Mul: {
          const Affine* scale = nullptr;
          const Affine* val = nullptr;
          if (l->pure_const()) {
            scale = &*l;
            val = &*r;
          } else if (r->pure_const()) {
            scale = &*r;
            val = &*l;
          } else {
            return std::nullopt;
          }
          Affine a = *val;
          a.coef *= scale->cst;
          a.cst *= scale->cst;
          for (auto& [k, v] : a.others) v *= scale->cst;
          return a;
        }
        default:
          return std::nullopt;  // div/rem: non-affine
      }
    }
    default:
      return std::nullopt;
  }
}

// Linearized affine subscript of an array reference (folds 2-D refs).
std::optional<Affine> ref_affine(const std::vector<ExprPtr>& subs, std::int64_t dim1,
                                 const std::string& var) {
  auto a0 = affine_of(*subs[0], var);
  if (!a0) return std::nullopt;
  if (subs.size() == 1) return a0;
  auto a1 = affine_of(*subs[1], var);
  if (!a1) return std::nullopt;
  Affine a = *a0;
  a.coef *= dim1;
  a.cst *= dim1;
  for (auto& [k, v] : a.others) v *= dim1;
  a.coef += a1->coef;
  a.cst += a1->cst;
  for (const auto& [k, v] : a1->others) {
    a.others[k] += v;
    if (a.others[k] == 0) a.others.erase(k);
  }
  return a;
}

struct ArrayRefInfo {
  std::string array;
  bool is_store = false;
  std::optional<Affine> addr;
};

// Does `e` read scalar `s` anywhere?
bool expr_reads(const Expr& e, const std::string& s) {
  if (e.kind == ExprKind::ScalarRef && e.name == s) return true;
  if (e.lhs && expr_reads(*e.lhs, s)) return true;
  if (e.rhs && expr_reads(*e.rhs, s)) return true;
  for (const auto& sub : e.subscripts)
    if (expr_reads(*sub, s)) return true;
  return false;
}

void collect_scalar_reads(const Expr& e, std::set<std::string>& out) {
  if (e.kind == ExprKind::ScalarRef) out.insert(e.name);
  if (e.lhs) collect_scalar_reads(*e.lhs, out);
  if (e.rhs) collect_scalar_reads(*e.rhs, out);
  for (const auto& sub : e.subscripts) collect_scalar_reads(*sub, out);
}

void collect_array_refs(const Expr& e, const Program& prog, const std::string& var,
                        std::vector<ArrayRefInfo>& out) {
  if (e.kind == ExprKind::ArrayRef) {
    std::int64_t dim1 = 0;
    for (const auto& a : prog.arrays)
      if (a.name == e.name) dim1 = a.dim1;
    out.push_back(ArrayRefInfo{e.name, false, ref_affine(e.subscripts, dim1, var)});
  }
  if (e.lhs) collect_array_refs(*e.lhs, prog, var, out);
  if (e.rhs) collect_array_refs(*e.rhs, prog, var, out);
  for (const auto& sub : e.subscripts) collect_array_refs(*sub, prog, var, out);
}

bool expr_has_minmax(const Expr& e) {
  if (e.kind == ExprKind::MinMax) return true;
  if (e.lhs && expr_has_minmax(*e.lhs)) return true;
  if (e.rhs && expr_has_minmax(*e.rhs)) return true;
  for (const auto& sub : e.subscripts)
    if (expr_has_minmax(*sub)) return true;
  return false;
}

// Is `rhs` a reduction update of scalar s?  (s = s op e / s = e op s with e
// not reading s; or s = max/min(s, e).)
bool is_reduction(const Expr& rhs, const std::string& s) {
  if (rhs.kind == ExprKind::MinMax) {
    const bool l = rhs.lhs->kind == ExprKind::ScalarRef && rhs.lhs->name == s;
    const bool r = rhs.rhs->kind == ExprKind::ScalarRef && rhs.rhs->name == s;
    if (l && !expr_reads(*rhs.rhs, s)) return true;
    if (r && !expr_reads(*rhs.lhs, s)) return true;
    return false;
  }
  if (rhs.kind != ExprKind::Binary) return false;
  if (rhs.op != BinOp::Add && rhs.op != BinOp::Sub && rhs.op != BinOp::Mul) return false;
  const bool l = rhs.lhs->kind == ExprKind::ScalarRef && rhs.lhs->name == s;
  const bool r = rhs.rhs->kind == ExprKind::ScalarRef && rhs.rhs->name == s;
  if (l && !expr_reads(*rhs.rhs, s)) return true;
  // s = e + s is a reduction; s = e - s is not (alternating sign recurrence).
  if (r && rhs.op != BinOp::Sub && !expr_reads(*rhs.lhs, s)) return true;
  return false;
}

LoopType classify_body(const Stmt& loop, const Program& prog, bool* reduction_only) {
  const std::string& var = loop.loop_var;
  bool serial = false;
  bool carried_array = false;
  bool general_recurrence = false;
  bool nonscalar_serial = false;

  // ---- Scalar dependences. ----
  std::set<std::string> written;
  std::set<std::string> written_anywhere;
  for (const auto& st : loop.body)
    if (st->kind == StmtKind::Assign && st->lhs_subscripts.empty())
      written_anywhere.insert(st->lhs_name);

  for (const auto& st : loop.body) {
    std::set<std::string> reads;
    if (st->kind == StmtKind::Assign) {
      collect_scalar_reads(*st->rhs, reads);
      for (const auto& sub : st->lhs_subscripts) collect_scalar_reads(*sub, reads);
    } else if (st->kind == StmtKind::IfBreak) {
      collect_scalar_reads(*st->cmp_lhs, reads);
      collect_scalar_reads(*st->cmp_rhs, reads);
    }
    const bool scalar_assign =
        st->kind == StmtKind::Assign && st->lhs_subscripts.empty();
    for (const auto& r : reads) {
      if (r == var) continue;
      // A self-read inside the defining assignment is the recurrence case,
      // handled below (and possibly a fixable reduction).
      if (scalar_assign && r == st->lhs_name) continue;
      if (written_anywhere.count(r) && !written.count(r)) {
        serial = true;  // carried scalar value
        nonscalar_serial = true;
      }
    }
    if (st->kind == StmtKind::Assign && st->lhs_subscripts.empty()) {
      const std::string& s = st->lhs_name;
      if (expr_reads(*st->rhs, s)) {
        serial = true;  // recurrence (incl. reductions)
        if (!is_reduction(*st->rhs, s)) general_recurrence = true;
      }
      written.insert(s);
    }
  }

  // ---- Array dependences. ----
  std::vector<ArrayRefInfo> refs;
  for (const auto& st : loop.body) {
    if (st->kind == StmtKind::Assign) {
      collect_array_refs(*st->rhs, prog, var, refs);
      if (!st->lhs_subscripts.empty()) {
        std::int64_t dim1 = 0;
        for (const auto& a : prog.arrays)
          if (a.name == st->lhs_name) dim1 = a.dim1;
        refs.push_back(ArrayRefInfo{st->lhs_name, true,
                                    ref_affine(st->lhs_subscripts, dim1, var)});
      }
      for (const auto& sub : st->lhs_subscripts) collect_array_refs(*sub, prog, var, refs);
    } else if (st->kind == StmtKind::IfBreak) {
      collect_array_refs(*st->cmp_lhs, prog, var, refs);
      collect_array_refs(*st->cmp_rhs, prog, var, refs);
    }
  }
  for (const ArrayRefInfo& r : refs) {
    if (!r.is_store) continue;
    // A store whose address is non-affine may collide with itself across
    // iterations (indirect subscript), and a store to a fixed cell repeats
    // every iteration: carried output dependences, conservatively serial.
    if (!r.addr || r.addr->coef == 0) {
      serial = true;
      nonscalar_serial = true;
    }
  }
  for (std::size_t i = 0; i < refs.size(); ++i) {
    for (std::size_t j = 0; j < refs.size(); ++j) {
      if (i == j) continue;
      const ArrayRefInfo& a = refs[i];
      const ArrayRefInfo& c = refs[j];
      if (!a.is_store || a.array != c.array) continue;
      if (!a.addr || !c.addr) {
        serial = true;  // non-affine subscript: conservative
        nonscalar_serial = true;
        continue;
      }
      if (a.addr->coef != c.addr->coef || a.addr->others != c.addr->others) {
        serial = true;  // differing shapes: conservative
        nonscalar_serial = true;
        continue;
      }
      const std::int64_t diff = a.addr->cst - c.addr->cst;
      if (diff == 0) {
        // Same address: iteration-local when the subscript moves with the
        // loop, a carried dependence when it is a fixed cell.
        if (a.addr->coef == 0) {
          serial = true;
          nonscalar_serial = true;
        }
        continue;
      }
      if (a.addr->coef == 0) continue;  // two distinct fixed cells: independent
      // A collision needs var1 - var2 = diff/coef with both vars in the
      // iteration set {lo, lo+step, ...}: diff must be a multiple of
      // coef*step, and the iteration distance must fit in the trip span
      // (when the bounds are compile-time constants; otherwise assume it
      // does).  Out-of-span distances are dependences carried by an
      // *enclosing* loop, which do not serialize this one.
      const std::int64_t unit = a.addr->coef * loop.step;
      if (unit == 0 || diff % unit != 0) continue;
      const std::int64_t k = diff / unit;  // iteration distance
      bool in_span = true;
      if (loop.lo->kind == ExprKind::IntConst && loop.hi->kind == ExprKind::IntConst) {
        const std::int64_t span =
            (loop.hi->ival - loop.lo->ival) / loop.step;  // iterations - 1
        if (span < 0 || std::abs(k) > span) in_span = false;
      }
      if (k != 0 && in_span) carried_array = true;
    }
  }

  if (reduction_only != nullptr)
    *reduction_only = serial && !general_recurrence && !nonscalar_serial;
  if (serial) return LoopType::Serial;
  if (carried_array) return LoopType::DoAcross;
  return LoopType::DoAll;
}

bool body_has_conds(const Stmt& loop) {
  for (const auto& st : loop.body) {
    if (st->kind == StmtKind::IfBreak) return true;
    if (st->kind == StmtKind::Assign && expr_has_minmax(*st->rhs)) return true;
  }
  return false;
}

void walk(const Stmt& st, const Program& prog, int depth,
          std::vector<InnerLoopSummary>& out) {
  if (st.kind != StmtKind::Loop) return;
  bool has_inner = false;
  for (const auto& inner : st.body)
    if (inner->kind == StmtKind::Loop) has_inner = true;
  if (has_inner) {
    for (const auto& inner : st.body) walk(*inner, prog, depth + 1, out);
    return;
  }
  InnerLoopSummary s;
  s.var = st.loop_var;
  s.nest_depth = depth;
  s.body_stmts = static_cast<int>(st.body.size());
  s.type = classify_body(st, prog, &s.reduction_only);
  s.has_conds = body_has_conds(st);
  out.push_back(s);
}

}  // namespace

std::vector<InnerLoopSummary> classify_innermost_loops(const Program& program) {
  std::vector<InnerLoopSummary> out;
  for (const auto& st : program.stmts) walk(*st, program, 1, out);
  return out;
}

}  // namespace ilp::dsl
