// Semantic analysis and lowering of the DSL AST to IR.
//
// Lowering is deliberately naive — subscript arithmetic is recomputed at
// every reference, scalars live in fixed registers, loops are rotated into
// guard + do-while form — because the paper's "Conv" baseline (constant/copy
// propagation, CSE, LICM, induction-variable strength reduction/elimination)
// is what turns this into the tight pointer-bumping loops of the paper's
// examples.  Assignments evaluate into the target's register directly so
// reductions keep the canonical "s = s + x" single-register shape the
// expansion transformations pattern-match.
//
// Loop semantics: `loop i = lo to hi [step s]` iterates i = lo, lo+s, ...
// while i <= hi (s > 0) or i >= hi (s < 0); zero-trip loops are skipped by a
// guard branch.  `if (...) break;` exits the innermost enclosing loop (a
// superblock side exit).  max()/min() lower to select-form FMAX/FMIN/IMAX/
// IMIN — the if-converted shape search variable expansion operates on.
#pragma once

#include <optional>

#include "frontend/ast.hpp"
#include "ir/function.hpp"
#include "support/diagnostics.hpp"

namespace ilp::dsl {

struct CompileResult {
  Function fn{"dsl"};
  // Scalar name -> register (for tests and harness observation).
  std::vector<std::pair<std::string, Reg>> scalar_regs;
};

// Lowers a parsed program; returns nullopt (with diagnostics) on semantic
// errors.  `out` scalars become the function's live-out registers.
std::optional<CompileResult> lower(const Program& program, DiagnosticEngine& diags);

// Convenience: parse + lower.
std::optional<CompileResult> compile(std::string_view source, DiagnosticEngine& diags);

}  // namespace ilp::dsl
