#include "frontend/parser.hpp"

#include "frontend/lexer.hpp"
#include "support/strings.hpp"

namespace ilp::dsl {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> toks, DiagnosticEngine& diags)
      : toks_(std::move(toks)), diags_(&diags) {}

  std::optional<Program> parse_program() {
    Program p;
    if (!expect(Tok::KwProgram, "at start of program")) return std::nullopt;
    if (cur().kind != Tok::Ident) {
      error("expected program name");
      return std::nullopt;
    }
    p.name = cur().text;
    next();

    while (cur().kind == Tok::KwArray || cur().kind == Tok::KwScalar) {
      if (cur().kind == Tok::KwArray) {
        if (auto a = parse_array())
          p.arrays.push_back(std::move(*a));
        else
          return std::nullopt;
      } else {
        if (auto s = parse_scalar())
          p.scalars.push_back(std::move(*s));
        else
          return std::nullopt;
      }
    }
    while (cur().kind != Tok::End) {
      StmtPtr s = parse_stmt();
      if (!s) return std::nullopt;
      p.stmts.push_back(std::move(s));
    }
    return p;
  }

 private:
  const Token& cur() const { return toks_[idx_]; }
  void next() {
    if (idx_ + 1 < toks_.size()) ++idx_;
  }
  void error(const std::string& msg) { diags_->error(cur().loc, msg); }
  bool expect(Tok k, const char* ctx) {
    if (cur().kind != k) {
      error(strformat("expected %s %s, got %s", token_name(k), ctx,
                      token_name(cur().kind)));
      return false;
    }
    next();
    return true;
  }

  std::optional<ArrayDecl> parse_array() {
    ArrayDecl d;
    d.loc = cur().loc;
    next();  // 'array'
    if (cur().kind != Tok::Ident) {
      error("expected array name");
      return std::nullopt;
    }
    d.name = cur().text;
    next();
    if (!expect(Tok::LBracket, "after array name")) return std::nullopt;
    if (cur().kind != Tok::IntLit) {
      error("expected array dimension");
      return std::nullopt;
    }
    d.dim0 = cur().ival;
    next();
    if (!expect(Tok::RBracket, "after dimension")) return std::nullopt;
    if (cur().kind == Tok::LBracket) {
      next();
      if (cur().kind != Tok::IntLit) {
        error("expected second dimension");
        return std::nullopt;
      }
      d.dim1 = cur().ival;
      next();
      if (!expect(Tok::RBracket, "after dimension")) return std::nullopt;
    }
    if (cur().kind == Tok::KwFp) {
      d.type = Type::Fp;
      next();
    } else if (cur().kind == Tok::KwInt) {
      d.type = Type::Int;
      next();
    } else {
      error("expected 'fp' or 'int' array type");
      return std::nullopt;
    }
    return d;
  }

  std::optional<ScalarDecl> parse_scalar() {
    ScalarDecl d;
    d.loc = cur().loc;
    next();  // 'scalar'
    if (cur().kind != Tok::Ident) {
      error("expected scalar name");
      return std::nullopt;
    }
    d.name = cur().text;
    next();
    if (cur().kind == Tok::KwFp) {
      d.type = Type::Fp;
      next();
    } else if (cur().kind == Tok::KwInt) {
      d.type = Type::Int;
      next();
    } else {
      error("expected 'fp' or 'int' scalar type");
      return std::nullopt;
    }
    if (cur().kind == Tok::KwInit) {
      next();
      d.has_init = true;
      bool neg = false;
      if (cur().kind == Tok::Minus) {
        neg = true;
        next();
      }
      if (cur().kind == Tok::IntLit) {
        d.iinit = neg ? -cur().ival : cur().ival;
        d.finit = static_cast<double>(d.iinit);
        next();
      } else if (cur().kind == Tok::FpLit) {
        d.finit = neg ? -cur().fval : cur().fval;
        next();
      } else {
        error("expected literal after 'init'");
        return std::nullopt;
      }
    }
    if (cur().kind == Tok::KwOut) {
      d.is_out = true;
      next();
    }
    return d;
  }

  StmtPtr parse_stmt() {
    switch (cur().kind) {
      case Tok::KwLoop: return parse_loop();
      case Tok::KwIf: return parse_ifbreak();
      case Tok::Ident: return parse_assign();
      default:
        error(strformat("expected statement, got %s", token_name(cur().kind)));
        return nullptr;
    }
  }

  StmtPtr parse_loop() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Loop;
    s->loc = cur().loc;
    next();  // 'loop'
    if (cur().kind != Tok::Ident) {
      error("expected loop variable");
      return nullptr;
    }
    s->loop_var = cur().text;
    next();
    if (!expect(Tok::Assign, "after loop variable")) return nullptr;
    s->lo = parse_expr();
    if (!s->lo) return nullptr;
    if (!expect(Tok::KwTo, "in loop bounds")) return nullptr;
    s->hi = parse_expr();
    if (!s->hi) return nullptr;
    if (cur().kind == Tok::KwStep) {
      next();
      bool neg = false;
      if (cur().kind == Tok::Minus) {
        neg = true;
        next();
      }
      if (cur().kind != Tok::IntLit) {
        error("expected constant step");
        return nullptr;
      }
      s->step = neg ? -cur().ival : cur().ival;
      next();
      if (s->step == 0) {
        error("loop step must be nonzero");
        return nullptr;
      }
    }
    if (!expect(Tok::LBrace, "to open loop body")) return nullptr;
    while (cur().kind != Tok::RBrace) {
      if (cur().kind == Tok::End) {
        error("unterminated loop body");
        return nullptr;
      }
      StmtPtr inner = parse_stmt();
      if (!inner) return nullptr;
      s->body.push_back(std::move(inner));
    }
    next();  // '}'
    return s;
  }

  StmtPtr parse_ifbreak() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::IfBreak;
    s->loc = cur().loc;
    next();  // 'if'
    if (!expect(Tok::LParen, "after 'if'")) return nullptr;
    s->cmp_lhs = parse_expr();
    if (!s->cmp_lhs) return nullptr;
    switch (cur().kind) {
      case Tok::Lt: s->cmp = CmpOp::Lt; break;
      case Tok::Le: s->cmp = CmpOp::Le; break;
      case Tok::Gt: s->cmp = CmpOp::Gt; break;
      case Tok::Ge: s->cmp = CmpOp::Ge; break;
      case Tok::EqEq: s->cmp = CmpOp::Eq; break;
      case Tok::Ne: s->cmp = CmpOp::Ne; break;
      default:
        error("expected comparison operator");
        return nullptr;
    }
    next();
    s->cmp_rhs = parse_expr();
    if (!s->cmp_rhs) return nullptr;
    if (!expect(Tok::RParen, "after condition")) return nullptr;
    if (!expect(Tok::KwBreak, "in if statement (only 'if (...) break;' is supported)"))
      return nullptr;
    if (!expect(Tok::Semi, "after 'break'")) return nullptr;
    return s;
  }

  StmtPtr parse_assign() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Assign;
    s->loc = cur().loc;
    s->lhs_name = cur().text;
    next();
    while (cur().kind == Tok::LBracket && s->lhs_subscripts.size() < 2) {
      next();
      ExprPtr e = parse_expr();
      if (!e) return nullptr;
      s->lhs_subscripts.push_back(std::move(e));
      if (!expect(Tok::RBracket, "after subscript")) return nullptr;
    }
    if (!expect(Tok::Assign, "in assignment")) return nullptr;
    s->rhs = parse_expr();
    if (!s->rhs) return nullptr;
    if (!expect(Tok::Semi, "after assignment")) return nullptr;
    return s;
  }

  ExprPtr parse_expr() {
    ExprPtr lhs = parse_term();
    if (!lhs) return nullptr;
    while (cur().kind == Tok::Plus || cur().kind == Tok::Minus) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Binary;
      e->loc = cur().loc;
      e->op = cur().kind == Tok::Plus ? BinOp::Add : BinOp::Sub;
      next();
      e->lhs = std::move(lhs);
      e->rhs = parse_term();
      if (!e->rhs) return nullptr;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_term() {
    ExprPtr lhs = parse_factor();
    if (!lhs) return nullptr;
    while (cur().kind == Tok::Star || cur().kind == Tok::Slash ||
           cur().kind == Tok::Percent) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Binary;
      e->loc = cur().loc;
      e->op = cur().kind == Tok::Star   ? BinOp::Mul
              : cur().kind == Tok::Slash ? BinOp::Div
                                         : BinOp::Rem;
      next();
      e->lhs = std::move(lhs);
      e->rhs = parse_factor();
      if (!e->rhs) return nullptr;
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_factor() {
    const SourceLoc loc = cur().loc;
    switch (cur().kind) {
      case Tok::IntLit: {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::IntConst;
        e->loc = loc;
        e->ival = cur().ival;
        next();
        return e;
      }
      case Tok::FpLit: {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::FpConst;
        e->loc = loc;
        e->fval = cur().fval;
        next();
        return e;
      }
      case Tok::Minus: {
        next();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Neg;
        e->loc = loc;
        e->lhs = parse_factor();
        if (!e->lhs) return nullptr;
        return e;
      }
      case Tok::LParen: {
        next();
        ExprPtr e = parse_expr();
        if (!e) return nullptr;
        if (!expect(Tok::RParen, "to close parenthesis")) return nullptr;
        return e;
      }
      case Tok::KwMax:
      case Tok::KwMin: {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::MinMax;
        e->loc = loc;
        e->is_max = cur().kind == Tok::KwMax;
        next();
        if (!expect(Tok::LParen, "after max/min")) return nullptr;
        e->lhs = parse_expr();
        if (!e->lhs) return nullptr;
        if (!expect(Tok::Comma, "between max/min arguments")) return nullptr;
        e->rhs = parse_expr();
        if (!e->rhs) return nullptr;
        if (!expect(Tok::RParen, "to close max/min")) return nullptr;
        return e;
      }
      case Tok::Ident: {
        auto e = std::make_unique<Expr>();
        e->loc = loc;
        e->name = cur().text;
        next();
        if (cur().kind == Tok::LBracket) {
          e->kind = ExprKind::ArrayRef;
          while (cur().kind == Tok::LBracket && e->subscripts.size() < 2) {
            next();
            ExprPtr sub = parse_expr();
            if (!sub) return nullptr;
            e->subscripts.push_back(std::move(sub));
            if (!expect(Tok::RBracket, "after subscript")) return nullptr;
          }
        } else {
          e->kind = ExprKind::ScalarRef;
        }
        return e;
      }
      default:
        error(strformat("expected expression, got %s", token_name(cur().kind)));
        return nullptr;
    }
  }

  std::vector<Token> toks_;
  DiagnosticEngine* diags_;
  std::size_t idx_ = 0;
};

}  // namespace

std::optional<Program> parse(std::string_view source, DiagnosticEngine& diags) {
  Lexer lexer(source, diags);
  std::vector<Token> toks = lexer.lex_all();
  if (diags.has_errors()) return std::nullopt;
  Parser p(std::move(toks), diags);
  auto prog = p.parse_program();
  if (diags.has_errors()) return std::nullopt;
  return prog;
}

}  // namespace ilp::dsl
