// ilp_loadgen — closed-loop load generator for ilpd.
//
//   ilp_loadgen [--host H] --port P [--connections N[,N...]] [--duration-s S]
//               [--corpus N] [--seed-base N] [--issue W] [--out FILE]
//               [--scheduler list|modulo|both] [--no-warmup] [--autotune]
//
// --autotune switches the corpus from compile requests to autotune requests
// (one bounded search per fuzz program: beam 2, one mutation round).  The
// warm-up pass runs every search once, so the timed phase measures the
// daemon's whole-result replay path plus whatever coalesces mid-flight; the
// report then adds the server's own per-stage tuning percentiles (search =
// analyze+rank wall, simulate = measurement batches) from the stats verb's
// tune section, which is where the search-vs-simulate split actually lives —
// client latency can't see it.
//
// Builds a corpus of randomized fuzz-generator programs (the same
// distribution the differential tests replay), pre-serializes one compile
// request per program per selected scheduling backend, optionally runs a
// warm-up pass so the daemon's result cache is hot, then hammers the server
// from N connections for S seconds.  Reports throughput and
// p50/p90/p99/p999/max latency — overall AND per backend, since modulo
// compiles are strictly more work than list compiles and mixing their
// percentiles would hide both distributions.  Samples go through
// obs::Histogram (the daemon's own log-bucketed histogram, ~3% bucket
// resolution), so the record path is three relaxed atomic adds and the
// percentile math is shared with the server instead of re-derived from an
// ad-hoc sort.
//
// --connections takes a comma-separated sweep (e.g. 8,16,64,128); each point
// runs the full timed phase and emits one JSON record per line, both to
// stdout and to --out (BENCH_6.json in CI is the single-point 64-connection
// run).
//
// After each timed phase the daemon's own `stats` verb is queried and its
// request-latency histogram percentiles are reported next to the
// client-side numbers: client-side includes the network round trip,
// server-side is request-handling wall time, so the gap is the transport tax
// and the two should otherwise agree within histogram resolution.
//
// Exit status is nonzero on any protocol failure — a dropped connection, an
// unparseable response, or an `ok:false` reply — so CI catches crashes and
// protocol bugs without being sensitive to machine speed.
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fixtures.hpp"
#include "obs/histogram.hpp"
#include "server/json.hpp"
#include "server/netclient.hpp"
#include "support/strings.hpp"

namespace {

using Clock = std::chrono::steady_clock;

// A corpus entry: the pre-serialized request line, tagged with the backend
// it targets so latency samples never mix across schedulers.
struct CorpusRequest {
  std::string line;
  int sched = 0;  // index into kSchedulerNames
};

constexpr const char* kSchedulerNames[] = {"list", "modulo"};

// Latency sinks for one sweep point: overall plus one histogram per backend.
// obs::Histogram is internally sharded, so every worker records straight
// into these with no client-side aggregation step.
struct LatencySinks {
  ilp::obs::Histogram overall;
  ilp::obs::Histogram by_sched[2];
  void reset() {
    overall.reset();
    by_sched[0].reset();
    by_sched[1].reset();
  }
};

struct WorkerResult {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::string first_error;
};

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  std::vector<int> connections = {8};  // --connections 8 or a sweep 8,16,64
  int duration_s = 10;
  int corpus = 32;
  std::uint64_t seed_base = 7'000;
  int issue = 8;
  bool run_list = true;    // --scheduler list|modulo|both
  bool run_modulo = false;
  bool autotune = false;   // corpus of autotune searches instead of compiles
  std::string out;
  bool warmup = true;
};

// One closed-loop connection: send, wait for the reply, repeat.
void run_worker(const Options& opt, const std::vector<CorpusRequest>& requests,
                Clock::time_point deadline, int worker_id, LatencySinks* lat,
                WorkerResult* out) {
  ilp::server::LineClient client;
  if (!client.connect(opt.host, opt.port)) {
    out->errors = 1;
    out->first_error = "connect failed";
    return;
  }
  std::size_t next = static_cast<std::size_t>(worker_id);  // stagger the corpus walk
  while (Clock::now() < deadline) {
    const CorpusRequest& req = requests[next % requests.size()];
    ++next;
    const auto t0 = Clock::now();
    if (!client.send_line(req.line)) {
      ++out->errors;
      if (out->first_error.empty()) out->first_error = "send failed";
      return;
    }
    const auto reply = client.recv_line();
    const auto t1 = Clock::now();
    if (!reply) {
      ++out->errors;
      if (out->first_error.empty()) out->first_error = "recv failed (timeout/EOF)";
      return;
    }
    ++out->requests;
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
    lat->overall.record(us);
    lat->by_sched[req.sched].record(us);
    std::string err;
    const auto parsed = ilp::server::JsonValue::parse(*reply, &err);
    const ilp::server::JsonValue* ok = parsed ? parsed->find("ok") : nullptr;
    if (!parsed || ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
      ++out->errors;
      if (out->first_error.empty())
        out->first_error = "bad response: " + *reply;
    }
  }
}

// Percentile block shared by the overall and per-backend report sections.
std::string percentile_json(const ilp::obs::Histogram::Snapshot& snap) {
  return ilp::strformat(
      "\"p50\":%.1f,\"p90\":%.1f,\"p99\":%.1f,\"p999\":%.1f,\"max\":%llu",
      snap.quantile(0.50), snap.quantile(0.90), snap.quantile(0.99),
      snap.quantile(0.999), static_cast<unsigned long long>(snap.max_value));
}

// The daemon's view of its own request latency, from the `stats` verb.
struct ServerLatency {
  bool ok = false;
  std::uint64_t count = 0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, p999 = 0.0;
};

ServerLatency fetch_server_latency(const Options& opt) {
  ServerLatency out;
  ilp::server::LineClient client;
  if (!client.connect(opt.host, opt.port)) return out;
  if (!client.send_line(R"({"id":"loadgen-stats","kind":"stats"})")) return out;
  const auto reply = client.recv_line(10'000);
  if (!reply) return out;
  std::string err;
  const auto parsed = ilp::server::JsonValue::parse(*reply, &err);
  if (!parsed) return out;
  const ilp::server::JsonValue* stats = parsed->find("stats");
  const ilp::server::JsonValue* lat =
      stats != nullptr ? stats->find("latency_us") : nullptr;
  if (lat == nullptr) return out;
  auto num = [&](const char* name) -> double {
    const ilp::server::JsonValue* v = lat->find(name);
    return v != nullptr && v->is_number() ? v->as_double() : 0.0;
  };
  out.ok = true;
  out.count = static_cast<std::uint64_t>(num("count"));
  out.p50 = num("p50");
  out.p90 = num("p90");
  out.p99 = num("p99");
  out.p999 = num("p999");
  return out;
}

// The daemon's per-stage tuning split (stats verb, "tune" section): search =
// analyze+rank batches, simulate = measurement batches.
struct TunePhases {
  bool ok = false;
  ServerLatency search, simulate;
};

TunePhases fetch_tune_phases(const Options& opt) {
  TunePhases out;
  ilp::server::LineClient client;
  if (!client.connect(opt.host, opt.port)) return out;
  if (!client.send_line(R"({"id":"loadgen-tune","kind":"stats"})")) return out;
  const auto reply = client.recv_line(10'000);
  if (!reply) return out;
  std::string err;
  const auto parsed = ilp::server::JsonValue::parse(*reply, &err);
  if (!parsed) return out;
  const ilp::server::JsonValue* stats = parsed->find("stats");
  const ilp::server::JsonValue* tune =
      stats != nullptr ? stats->find("tune") : nullptr;
  if (tune == nullptr) return out;
  auto read = [&](const char* section, ServerLatency* dst) {
    const ilp::server::JsonValue* s = tune->find(section);
    if (s == nullptr) return;
    auto num = [&](const char* name) -> double {
      const ilp::server::JsonValue* v = s->find(name);
      return v != nullptr && v->is_number() ? v->as_double() : 0.0;
    };
    dst->ok = true;
    dst->count = static_cast<std::uint64_t>(num("count"));
    dst->p50 = num("p50");
    dst->p90 = num("p90");
    dst->p99 = num("p99");
    dst->p999 = num("p999");
  };
  read("search_us", &out.search);
  read("simulate_us", &out.simulate);
  out.ok = out.search.ok && out.simulate.ok;
  return out;
}

// Runs one sweep point (N connections for duration_s) and returns its JSON
// record.  Protocol errors accumulate into *errors / *first_error.
std::string run_point(const Options& opt,
                      const std::vector<CorpusRequest>& requests,
                      int connections, LatencySinks& lat,
                      std::uint64_t* errors, std::string* first_error) {
  lat.reset();
  const auto start = Clock::now();
  const auto deadline = start + std::chrono::seconds(opt.duration_s);
  std::vector<WorkerResult> results(static_cast<std::size_t>(connections));
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (int w = 0; w < connections; ++w)
    threads.emplace_back(run_worker, std::cref(opt), std::cref(requests),
                         deadline, w, &lat, &results[static_cast<std::size_t>(w)]);
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::uint64_t total = 0;
  for (const WorkerResult& r : results) {
    total += r.requests;
    *errors += r.errors;
    if (first_error->empty()) *first_error = r.first_error;
  }
  const auto all = lat.overall.snapshot();
  const double rps = elapsed_s > 0 ? static_cast<double>(total) / elapsed_s : 0.0;
  const ServerLatency server = fetch_server_latency(opt);

  std::string report = ilp::strformat(
      "{\"bench\":\"ilp_loadgen\",\"mode\":\"%s\",\"connections\":%d,"
      "\"duration_s\":%.3f,"
      "\"corpus\":%d,\"issue\":%d,\"warm_cache\":%s,\"requests\":%llu,"
      "\"errors\":%llu,\"throughput_rps\":%.1f,\"latency_us\":{%s}",
      opt.autotune ? "autotune" : "compile", connections, elapsed_s, opt.corpus,
      opt.issue, opt.warmup ? "true" : "false",
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(*errors), rps,
      percentile_json(all).c_str());
  // Per-backend percentiles: present only for the backends that ran, so
  // downstream tooling never mistakes an empty bucket for a fast one.
  // (Autotune searches explore both backends internally, so the per-backend
  // split doesn't apply in that mode.)
  if (!opt.autotune) {
    std::string sect;
    for (int sched = 0; sched < 2; ++sched) {
      const auto snap = lat.by_sched[sched].snapshot();
      if (snap.count == 0) continue;
      sect += ilp::strformat(
          "%s\"%s\":{\"requests\":%llu,%s}", sect.empty() ? "" : ",",
          kSchedulerNames[sched], static_cast<unsigned long long>(snap.count),
          percentile_json(snap).c_str());
    }
    if (!sect.empty()) report += ",\"by_scheduler\":{" + sect + "}";
  }
  if (server.ok)
    report += ilp::strformat(
        ",\"server_latency_us\":{\"count\":%llu,\"p50\":%.1f,\"p90\":%.1f,"
        "\"p99\":%.1f,\"p999\":%.1f}",
        static_cast<unsigned long long>(server.count), server.p50, server.p90,
        server.p99, server.p999);
  if (opt.autotune) {
    const TunePhases phases = fetch_tune_phases(opt);
    if (phases.ok) {
      auto phase_json = [](const ServerLatency& p) {
        return ilp::strformat(
            "{\"count\":%llu,\"p50\":%.1f,\"p90\":%.1f,\"p99\":%.1f,"
            "\"p999\":%.1f}",
            static_cast<unsigned long long>(p.count), p.p50, p.p90, p.p99,
            p.p999);
      };
      report += ",\"server_tune_us\":{\"search\":" + phase_json(phases.search) +
                ",\"simulate\":" + phase_json(phases.simulate) + "}";
      std::fprintf(stderr,
                   "[%d conns] tune_us       search  |  simulate\n"
                   "  p50      %8.0f  | %8.0f\n"
                   "  p90      %8.0f  | %8.0f\n"
                   "  p99      %8.0f  | %8.0f\n"
                   "  p999     %8.0f  | %8.0f\n"
                   "(server-side per-stage wall: %llu search batches, "
                   "%llu measurement batches)\n",
                   connections, phases.search.p50, phases.simulate.p50,
                   phases.search.p90, phases.simulate.p90, phases.search.p99,
                   phases.simulate.p99, phases.search.p999,
                   phases.simulate.p999,
                   static_cast<unsigned long long>(phases.search.count),
                   static_cast<unsigned long long>(phases.simulate.count));
    } else {
      std::fprintf(stderr,
                   "[%d conns] server tune stats unavailable (old daemon?)\n",
                   connections);
    }
  }
  report += "}";

  if (server.ok) {
    std::fprintf(stderr,
                 "[%d conns] latency_us    client  |  server\n"
                 "  p50      %8.0f  | %8.0f\n"
                 "  p90      %8.0f  | %8.0f\n"
                 "  p99      %8.0f  | %8.0f\n"
                 "  p999     %8.0f  | %8.0f\n"
                 "(client includes the network round trip; server is "
                 "request-handling wall time over %llu requests)\n",
                 connections, all.quantile(0.50), server.p50,
                 all.quantile(0.90), server.p90, all.quantile(0.99), server.p99,
                 all.quantile(0.999), server.p999,
                 static_cast<unsigned long long>(server.count));
  }
  return report;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] --port P [--connections N[,N...]]\n"
               "          [--duration-s S] [--corpus N] [--seed-base N]\n"
               "          [--issue W] [--out FILE]\n"
               "          [--scheduler list|modulo|both] [--no-warmup]\n"
               "          [--autotune]\n",
               argv0);
  return 2;
}

bool parse_connections(const char* arg, std::vector<int>* out) {
  out->clear();
  std::string cur;
  for (const char* p = arg;; ++p) {
    if (*p != '\0' && *p != ',') {
      cur += *p;
      continue;
    }
    const int n = std::atoi(cur.c_str());
    if (n <= 0) return false;
    out->push_back(n);
    cur.clear();
    if (*p == '\0') break;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next())) opt.host = v;
    else if (arg == "--port" && (v = next())) opt.port = std::atoi(v);
    else if (arg == "--connections" && (v = next())) {
      if (!parse_connections(v, &opt.connections)) {
        std::fprintf(stderr, "bad --connections '%s'\n", v);
        return usage(argv[0]);
      }
    }
    else if (arg == "--duration-s" && (v = next())) opt.duration_s = std::atoi(v);
    else if (arg == "--corpus" && (v = next())) opt.corpus = std::atoi(v);
    else if (arg == "--seed-base" && (v = next()))
      opt.seed_base = static_cast<std::uint64_t>(std::atoll(v));
    else if (arg == "--issue" && (v = next())) opt.issue = std::atoi(v);
    else if (arg == "--scheduler" && (v = next())) {
      const std::string k = v;
      opt.run_list = k == "list" || k == "both";
      opt.run_modulo = k == "modulo" || k == "both";
      if (!opt.run_list && !opt.run_modulo) {
        std::fprintf(stderr, "bad --scheduler '%s'\n", v);
        return usage(argv[0]);
      }
    }
    else if (arg == "--out" && (v = next())) opt.out = v;
    else if (arg == "--no-warmup") opt.warmup = false;
    else if (arg == "--autotune") opt.autotune = true;
    else {
      std::fprintf(stderr, "unknown or incomplete flag '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (opt.port <= 0 || opt.duration_s <= 0 || opt.corpus <= 0)
    return usage(argv[0]);

  // Pre-serialize one compile request per (corpus program, backend);
  // id = corpus index.  Interleaving backends per program keeps each worker's
  // closed-loop walk mixed, while the per-request `sched` tag keeps the
  // latency accounting separate.
  std::vector<CorpusRequest> requests;
  requests.reserve(static_cast<std::size_t>(opt.corpus) * 2);
  for (int c = 0; c < opt.corpus; ++c) {
    const std::string src = ilp::testing::random_program(opt.seed_base + c);
    if (opt.autotune) {
      // One bounded search per program.  The small budget (beam 2, one
      // mutation round, ≤16 simulations) keeps closed-loop iterations short;
      // the warm-up pass completes each search once, so the timed phase hits
      // the whole-result cache and whatever coalesces onto in-flight repeats.
      requests.push_back(CorpusRequest{
          ilp::strformat(R"({"id":%d,"kind":"autotune","source":"%s",)"
                         R"("issue":%d,"beam":2,"rounds":1,"max_sims":16})",
                         c, ilp::json_escape(src).c_str(), opt.issue),
          0});
      continue;
    }
    for (int sched = 0; sched < 2; ++sched) {
      if ((sched == 0 && !opt.run_list) || (sched == 1 && !opt.run_modulo)) continue;
      requests.push_back(CorpusRequest{
          ilp::strformat(R"({"id":%d,"kind":"compile","source":"%s","level":"lev4",)"
                         R"("issue":%d,"scheduler":"%s"})",
                         c, ilp::json_escape(src).c_str(), opt.issue,
                         kSchedulerNames[sched]),
          sched});
    }
  }

  // Warm-up: one sequential pass so every corpus cell lands in the daemon's
  // cache; the timed phases then measure service overhead, not compile time.
  if (opt.warmup) {
    ilp::server::LineClient warm;
    if (!warm.connect(opt.host, opt.port)) {
      std::fprintf(stderr, "ilp_loadgen: cannot connect to %s:%d\n",
                   opt.host.c_str(), opt.port);
      return 1;
    }
    for (const CorpusRequest& req : requests) {
      if (!warm.send_line(req.line) || !warm.recv_line(120'000)) {
        std::fprintf(stderr, "ilp_loadgen: warmup request failed\n");
        return 1;
      }
    }
  }

  // One timed phase per sweep point, one JSON record per line.
  auto lat = std::make_unique<LatencySinks>();  // too big for the stack
  std::uint64_t errors = 0;
  std::string first_error;
  std::vector<std::string> records;
  records.reserve(opt.connections.size());
  for (const int conns : opt.connections) {
    records.push_back(
        run_point(opt, requests, conns, *lat, &errors, &first_error));
    std::printf("%s\n", records.back().c_str());
    std::fflush(stdout);
  }

  if (!opt.out.empty()) {
    std::FILE* f = std::fopen(opt.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ilp_loadgen: cannot write %s\n", opt.out.c_str());
      return 1;
    }
    for (const std::string& r : records) std::fprintf(f, "%s\n", r.c_str());
    std::fclose(f);
  }
  if (errors > 0) {
    std::fprintf(stderr, "ilp_loadgen: %llu protocol errors (first: %s)\n",
                 static_cast<unsigned long long>(errors), first_error.c_str());
    return 1;
  }
  return 0;
}
