// ilpc — command-line driver for the ILP transformation compiler.
//
// Usage:
//   ilpc [options] <source.ilp>
//   ilpc --workload <name>            (compile a built-in Table 2 nest)
//
// Options:
//   --level conv|lev1|lev2|lev3|lev4  transformation level (default lev4)
//   --issue N                         issue width (default 8)
//   --unroll N                        max unroll factor (default 8)
//   --nest p1,p2,...                  enable affine nest pre-passes, from
//                                     interchange|fuse|fission|tile (or "all")
//   --tile-size N                     tile size for --nest tile (default 16)
//   --emit-ir                         print the final IR
//   --emit-ir-before                  print the IR before optimization
//   --no-sim                          skip simulation
//   --profile                         cycle-accounting profile of the run
//                                     (per-cause slot table, occupancy, top
//                                     stall blocks/opcodes)
//   --explain                         profile Conv..Lev4 and report which
//                                     stall causes each level removed, plus
//                                     the list-vs-modulo diff at Lev4
//   --classify                        print the loop classification and exit
//   --list-workloads                  list the built-in Table 2 suite
//
// Study mode (runs Section 3.1's full 800-cell sweep through the engine):
//   --study                           run the Table 2 study and print means
//   --jobs N                          pool workers (0 = hardware threads)
//   --seq                             serial execution (same as --jobs 1)
//   --json PATH                       write deterministic study JSON
//   --cache-dir DIR                   persistent per-cell result cache
//   --metrics PATH                    write engine telemetry JSON
//   --trace PATH                      write a Chrome trace of the sweep
//
// Autotune mode (beam search over {level, unroll, nest, tile, scheduler}):
//   --autotune                        tune the given source/workload
//   --beam N                          beam width (default 4)
//   --rounds N                        mutation rounds after the seeds (default 3)
//   --sim-fraction F                  share of each frontier simulated (0,1]
//   --max-sims N                      simulation budget, seeds included
//   --no-cost-model                   simulate every candidate (exhaustive)
//   (--issue/--jobs/--cache-dir/--json apply; the cache makes repeat and
//   overlapping tuning runs nearly free)
//
// Exit codes: 0 ok, 1 usage, 2 compile error, 3 simulation error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "engine/trace.hpp"
#include "frontend/classify.hpp"
#include "frontend/compile.hpp"
#include "frontend/parser.hpp"
#include "harness/experiment.hpp"
#include "harness/explain.hpp"
#include "ir/printer.hpp"
#include "machine/machine.hpp"
#include "regalloc/regalloc.hpp"
#include "sim/simulator.hpp"
#include "trans/level.hpp"
#include "tune/tune.hpp"
#include "workloads/suite.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: ilpc [--level conv|lev1|lev2|lev3|lev4] [--issue N] "
               "[--unroll N]\n"
               "            [--nest interchange,fuse,fission,tile|all] [--tile-size N]\n"
               "            [--scheduler list|modulo] [--emit-ir] [--emit-ir-before]\n"
               "            [--no-sim] [--profile] [--explain] [--classify]\n"
               "            (<source.ilp> | --workload <name> | --list-workloads)\n"
               "       ilpc --study [--scheduler list|modulo] [--jobs N | --seq] "
               "[--json PATH]\n"
               "            [--cache-dir DIR] [--metrics PATH] [--trace PATH]\n"
               "       ilpc --autotune [--beam N] [--rounds N] [--sim-fraction F]\n"
               "            [--max-sims N] [--no-cost-model] [--issue N] [--jobs N]\n"
               "            [--cache-dir DIR] [--json PATH] "
               "(<source.ilp> | --workload <name>)\n");
}

// Runs the full Table 2 study through the experiment engine.
int run_study_mode(ilp::SchedulerKind scheduler, int jobs, const std::string& json_path,
                   const std::string& cache_dir, const std::string& metrics_path,
                   const std::string& trace_path) {
  using namespace ilp;
  if (!trace_path.empty()) engine::TraceRecorder::global().enable();
  StudyOptions opts;
  opts.compile.scheduler = scheduler;
  opts.jobs = jobs;
  opts.cache_dir = cache_dir;
  const StudyResult s = run_study(opts);

  std::printf("study: %zu loops, %llu cells, %d jobs, %.2fs wall, cache hit rate %.1f%%\n",
              s.loops.size(), static_cast<unsigned long long>(s.stats.cells),
              s.stats.jobs, s.stats.wall_seconds, 100.0 * s.stats.cache_hit_rate());
  std::printf("%-6s", "level");
  for (const int w : kIssueWidths) std::printf("  issue-%d", w);
  std::printf("\n");
  for (const OptLevel l : kLevels) {
    std::printf("%-6s", level_name(l));
    for (std::size_t wi = 0; wi < kIssueWidths.size(); ++wi)
      std::printf("  %7.2f", s.mean_speedup(l, static_cast<int>(wi)));
    std::printf("\n");
  }
  int failed = 0;
  for (const auto& l : s.loops)
    if (!l.ok()) {
      std::fprintf(stderr, "FAILED %s: %s\n", l.name.c_str(), l.error.c_str());
      ++failed;
    }
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 3;
    }
    out << s.to_json();
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::trunc);
    if (out) out << s.telemetry_json();
  }
  if (!trace_path.empty())
    engine::TraceRecorder::global().write_chrome_trace(trace_path);
  return failed == 0 ? 0 : 3;
}

// Tunes one program: beam search over the transformation space on a thread
// pool, memoized through the (optionally persistent) result cache.
int run_autotune_mode(const std::string& source, const ilp::tune::TuneOptions& topts,
                      int jobs, const std::string& cache_dir,
                      const std::string& json_path) {
  using namespace ilp;
  engine::ThreadPool pool(jobs == 0 ? std::thread::hardware_concurrency()
                                    : static_cast<unsigned>(jobs));
  engine::ResultCache cache(cache_dir);
  const tune::TuneResult r = tune::autotune(source, topts, &pool, &cache);
  if (!r.ok) {
    std::fprintf(stderr, "autotune failed: %s\n", r.error.c_str());
    return 2;
  }
  std::printf("best    %s\n", r.best.name().c_str());
  std::printf("cycles  %llu (Lev4 baseline %llu, speedup %.3fx)%s\n",
              static_cast<unsigned long long>(r.best_cycles),
              static_cast<unsigned long long>(r.lev4_cycles), r.speedup_vs_lev4(),
              r.stopped_early ? "  [stopped early]" : "");
  std::printf("search  %d rounds, %llu candidates: %llu simulated, %llu pruned "
              "(%llu cache hits), model MAPE %.1f%%\n",
              r.rounds, static_cast<unsigned long long>(r.considered),
              static_cast<unsigned long long>(r.simulated),
              static_cast<unsigned long long>(r.pruned),
              static_cast<unsigned long long>(r.cache_hits), 100.0 * r.model_mape);
  for (const tune::CandidateEval& e : r.evals)
    if (e.simulated && e.ok && e.cycles == r.best_cycles &&
        e.config == r.best)
      std::printf("found   round %d\n", e.round);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 3;
    }
    out << r.to_json();
  }
  return 0;
}

// "--nest interchange,fuse" style comma list; "all" turns on every pass.
bool parse_nest_list(const char* s, ilp::NestOptions& out) {
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, ',')) {
    if (item == "interchange") out.interchange = true;
    else if (item == "fuse") out.fuse = true;
    else if (item == "fission") out.fission = true;
    else if (item == "tile") out.tile = true;
    else if (item == "all") out.interchange = out.fuse = out.fission = out.tile = true;
    else {
      std::fprintf(stderr, "unknown nest pass '%s'\n", item.c_str());
      return false;
    }
  }
  return true;
}

std::optional<ilp::OptLevel> parse_level(const char* s) {
  using ilp::OptLevel;
  if (!std::strcmp(s, "conv")) return OptLevel::Conv;
  if (!std::strcmp(s, "lev1")) return OptLevel::Lev1;
  if (!std::strcmp(s, "lev2")) return OptLevel::Lev2;
  if (!std::strcmp(s, "lev3")) return OptLevel::Lev3;
  if (!std::strcmp(s, "lev4")) return OptLevel::Lev4;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ilp;

  OptLevel level = OptLevel::Lev4;
  SchedulerKind scheduler = SchedulerKind::List;
  NestOptions nest;
  int issue = 8;
  int unroll = 8;
  bool emit_ir = false;
  bool emit_ir_before = false;
  bool do_sim = true;
  bool do_profile = false;
  bool do_explain = false;
  bool classify_only = false;
  bool study_mode = false;
  bool autotune_mode = false;
  tune::TuneOptions topts;
  int jobs = 1;
  std::string json_path;
  std::string cache_dir;
  std::string metrics_path;
  std::string trace_path;
  std::string source_path;
  std::string workload_name;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(1);
      }
      return argv[++i];
    };
    if (a == "--level") {
      const auto l = parse_level(next());
      if (!l) {
        usage();
        return 1;
      }
      level = *l;
    } else if (a == "--scheduler") {
      const auto k = parse_scheduler_kind(next());
      if (!k) {
        usage();
        return 1;
      }
      scheduler = *k;
    } else if (a == "--issue") {
      issue = std::atoi(next());
      if (issue < 1) {
        usage();
        return 1;
      }
    } else if (a == "--unroll") {
      unroll = std::atoi(next());
    } else if (a == "--nest") {
      if (!parse_nest_list(next(), nest)) {
        usage();
        return 1;
      }
    } else if (a == "--tile-size") {
      nest.tile_size = std::atoi(next());
      if (nest.tile_size < 2) {
        usage();
        return 1;
      }
    } else if (a == "--emit-ir") {
      emit_ir = true;
    } else if (a == "--emit-ir-before") {
      emit_ir_before = true;
    } else if (a == "--no-sim") {
      do_sim = false;
    } else if (a == "--profile") {
      do_profile = true;
    } else if (a == "--explain") {
      do_explain = true;
    } else if (a == "--classify") {
      classify_only = true;
    } else if (a == "--study") {
      study_mode = true;
    } else if (a == "--autotune") {
      autotune_mode = true;
    } else if (a == "--beam") {
      topts.beam_width = std::atoi(next());
      if (topts.beam_width < 1) {
        usage();
        return 1;
      }
    } else if (a == "--rounds") {
      topts.max_rounds = std::atoi(next());
      if (topts.max_rounds < 0) {
        usage();
        return 1;
      }
    } else if (a == "--sim-fraction") {
      topts.sim_fraction = std::atof(next());
      if (topts.sim_fraction <= 0.0 || topts.sim_fraction > 1.0) {
        usage();
        return 1;
      }
    } else if (a == "--max-sims") {
      topts.max_sims = std::atoi(next());
      if (topts.max_sims < 1) {
        usage();
        return 1;
      }
    } else if (a == "--no-cost-model") {
      topts.use_cost_model = false;
    } else if (a == "--jobs") {
      jobs = std::atoi(next());
      if (jobs < 0) {
        usage();
        return 1;
      }
    } else if (a == "--seq") {
      jobs = 1;
    } else if (a == "--json") {
      json_path = next();
    } else if (a == "--cache-dir") {
      cache_dir = next();
    } else if (a == "--metrics") {
      metrics_path = next();
    } else if (a == "--trace") {
      trace_path = next();
    } else if (a == "--workload") {
      workload_name = next();
    } else if (a == "--list-workloads") {
      for (const auto& w : workload_suite())
        std::printf("%-14s %-8s size=%-3d iters=%-5lld nest=%d %s%s\n", w.name.c_str(),
                    w.group.c_str(), w.size, static_cast<long long>(w.iters), w.nest,
                    dsl::loop_type_name(w.type), w.conds ? " conds" : "");
      return 0;
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      usage();
      return 1;
    } else {
      source_path = a;
    }
  }

  if (study_mode)
    return run_study_mode(scheduler, jobs, json_path, cache_dir, metrics_path,
                          trace_path);

  // Load the source text.
  std::string source;
  if (!workload_name.empty()) {
    const Workload* w = find_workload(workload_name);
    if (w == nullptr) {
      std::fprintf(stderr, "unknown workload '%s' (try --list-workloads)\n",
                   workload_name.c_str());
      return 1;
    }
    source = w->source;
  } else if (!source_path.empty()) {
    std::ifstream in(source_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", source_path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  } else {
    usage();
    return 1;
  }

  if (autotune_mode) {
    topts.issue = issue;
    return run_autotune_mode(source, topts, jobs, cache_dir, json_path);
  }

  DiagnosticEngine diags;
  if (classify_only) {
    const auto ast = dsl::parse(source, diags);
    if (!ast) {
      std::fprintf(stderr, "%s", diags.to_string().c_str());
      return 2;
    }
    for (const auto& l : dsl::classify_innermost_loops(*ast))
      std::printf("loop %-8s depth=%d stmts=%-3d %s%s\n", l.var.c_str(), l.nest_depth,
                  l.body_stmts, dsl::loop_type_name(l.type),
                  l.has_conds ? " conds" : "");
    return 0;
  }

  if (do_explain) {
    const MachineModel machine = MachineModel::issue(issue);
    CompileOptions opts;
    opts.unroll.max_factor = unroll;
    opts.nest = nest;
    opts.scheduler = scheduler;
    const std::string label =
        !workload_name.empty() ? workload_name
                               : (!source_path.empty() ? source_path : "program");
    auto report = explain_source(label, source, machine, opts);
    if (!report) {
      std::fprintf(stderr, "%s\n", report.error_message().c_str());
      return 3;
    }
    std::printf("%s", report->c_str());
    return 0;
  }

  auto compiled = dsl::compile(source, diags);
  if (!compiled) {
    std::fprintf(stderr, "%s", diags.to_string().c_str());
    return 2;
  }
  if (emit_ir_before) std::printf("%s\n", to_string(compiled->fn).c_str());

  const MachineModel machine = MachineModel::issue(issue);
  CompileOptions opts;
  opts.unroll.max_factor = unroll;
  opts.nest = nest;
  opts.scheduler = scheduler;
  TransformStats tstats;
  compile_with_transforms(compiled->fn, TransformSet::for_level(level), machine, opts,
                          &tstats);

  if (emit_ir) std::printf("%s\n", to_string(compiled->fn).c_str());

  const RegUsage regs = measure_register_usage(compiled->fn);
  std::printf("level=%s scheduler=%s issue=%d instructions=%zu registers=%d(int)+%d(fp)\n",
              level_name(level), scheduler_kind_name(scheduler), issue,
              compiled->fn.num_insts(), regs.int_regs, regs.fp_regs);
  if (nest.any())
    std::printf("nest: interchanged=%d fused=%d fissioned=%d tiled=%d\n",
                tstats.loops_interchanged, tstats.loops_fused, tstats.loops_fissioned,
                tstats.loops_tiled);

  if (do_sim) {
    CycleProfile profile;
    SimOptions sim_opts;
    if (do_profile) sim_opts.profile = &profile;
    const RunOutcome run = run_seeded(compiled->fn, machine, std::move(sim_opts));
    if (!run.result.ok) {
      std::fprintf(stderr, "simulation failed: %s\n", run.result.error.c_str());
      return 3;
    }
    std::printf("cycles=%llu dynamic-instructions=%llu ipc=%.2f\n",
                static_cast<unsigned long long>(run.result.cycles),
                static_cast<unsigned long long>(run.result.instructions),
                static_cast<double>(run.result.instructions) /
                    static_cast<double>(run.result.cycles));
    if (do_profile) std::printf("%s", format_profile(profile).c_str());
    for (const auto& [name, reg] : compiled->scalar_regs) {
      bool is_out = false;
      for (const Reg& r : compiled->fn.live_out())
        if (r == reg) is_out = true;
      if (!is_out) continue;
      if (reg.is_fp())
        std::printf("out %s = %.9g\n", name.c_str(), run.result.regs.get_fp(reg.id));
      else
        std::printf("out %s = %lld\n", name.c_str(),
                    static_cast<long long>(run.result.regs.get_int(reg.id)));
    }
  }
  return 0;
}
