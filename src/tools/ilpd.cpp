// ilpd — the batching compile-and-simulate daemon.
//
//   ilpd [--host H] [--port P] [--workers N] [--queue-limit N]
//        [--deadline-ms MS] [--cache-dir DIR] [--stats-on-exit]
//        [--log-level debug|info|warn|error|off] [--log-json]
//        [--trace-dir DIR]
//
// Speaks newline-delimited JSON (see src/server/protocol.hpp for the wire
// format): `compile` / `batch` / `stats` / `metrics` / `profile` verbs.
// Compile requests accept {"profile": true} to attach the cell's
// stall-accounting summary; the `profile` verb reports the daemon-lifetime
// per-cause totals.  SIGTERM/SIGINT trigger a graceful drain: the listener
// closes immediately, every request whose full line was received is
// answered, then the process exits 0.
//
// Logs go to stderr (stdout carries only the "listening" line and the
// optional exit stats, so scripts can keep parsing it).  --trace-dir arms
// per-request Chrome tracing: compile requests with {"trace": true} write
// request → job → pass span files there, with the simulated issue window
// rendered as per-slot lanes.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/log.hpp"
#include "server/server.hpp"
#include "server/service.hpp"

namespace {

ilp::server::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();  // async-signal-safe
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--workers N] [--queue-limit N]\n"
               "          [--deadline-ms MS] [--cache-dir DIR] [--stats-on-exit]\n"
               "          [--log-level debug|info|warn|error|off] [--log-json]\n"
               "          [--trace-dir DIR]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ilp::server::ServiceConfig scfg;
  ilp::server::ServerConfig ncfg;
  bool stats_on_exit = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--host") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      ncfg.host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      ncfg.port = std::atoi(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      scfg.workers = std::atoi(v);
    } else if (arg == "--queue-limit") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      scfg.queue_limit = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      scfg.default_deadline_ms = std::atol(v);
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      scfg.cache_dir = v;
    } else if (arg == "--trace-dir") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      scfg.trace_dir = v;
    } else if (arg == "--log-level") {
      const char* v = next();
      ilp::obs::LogLevel level{};
      if (!v || !ilp::obs::parse_log_level(v, &level)) return usage(argv[0]);
      ilp::obs::Logger::global().set_level(level);
    } else if (arg == "--log-json") {
      ilp::obs::Logger::global().set_json(true);
    } else if (arg == "--stats-on-exit") {
      stats_on_exit = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  ilp::server::Service service(scfg);
  ilp::server::Server server(service, ncfg);
  if (!server.start()) {
    std::fprintf(stderr, "ilpd: %s\n", server.error().c_str());
    return 1;
  }
  g_server = &server;

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // peers may close mid-write; write_all handles it

  std::printf("ilpd listening on %s:%d (%d workers, capacity %zu)\n",
              ncfg.host.c_str(), server.port(), service.workers(),
              service.capacity());
  std::fflush(stdout);

  server.wait();  // returns once the drain completes
  g_server = nullptr;

  if (stats_on_exit) {
    std::printf("%s\n", service.stats_json().c_str());
    std::fflush(stdout);
  }
  return 0;
}
