// The transformation "explain" layer: turns cycle-accounting profiles
// (sim/profile.hpp) into the paper's argument, stated per program — each
// transformation level buys its speedup by removing a *specific* kind of
// stall.  explain_source() compiles one DSL program at Conv..Lev4, profiles
// every run, and reports which causes each level removed ("renaming removed
// 41% of raw_wait slots"); format_profile() renders a single profile as a
// human-readable table for ilpc --profile.
#pragma once

#include <string>

#include "machine/machine.hpp"
#include "sim/profile.hpp"
#include "support/expected.hpp"
#include "trans/level.hpp"

namespace ilp {

// Cause table with shares, the issue-occupancy histogram, and the top
// stalled blocks and opcodes (by slots lost while that block/opcode held the
// blocked head of the issue window).
std::string format_profile(const CycleProfile& p);

// One line per transformation level (cycles, ipc, per-cause shares) followed
// by a diff against the previous level naming the causes it removed or
// added.  When `compare_schedulers` is set, the final level is additionally
// compiled with the other scheduling backend and the two are diffed — the
// modulo-vs-list stall story.  `opts` carries the unroll/nest/scheduler
// knobs; `name` only labels the report.
Expected<std::string> explain_source(const std::string& name, const std::string& source,
                                     const MachineModel& machine,
                                     const CompileOptions& opts = {},
                                     bool compare_schedulers = true);

}  // namespace ilp
