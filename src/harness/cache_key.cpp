#include "harness/cache_key.hpp"

#include "sched/modulo/modulo.hpp"

namespace ilp {

void hash_domain_salt(engine::HashStream& h, std::string_view domain) {
  h.str(domain);
  h.i32(kCacheKeyVersion);
}

void hash_machine_model(engine::HashStream& h, const MachineModel& m) {
  h.i32(m.issue_width).i32(m.branch_slots);
  h.i32(m.lat_int_alu).i32(m.lat_int_mul).i32(m.lat_int_div).i32(m.lat_branch);
  h.i32(m.lat_load).i32(m.lat_store);
  h.i32(m.lat_fp_alu).i32(m.lat_fp_conv).i32(m.lat_fp_mul).i32(m.lat_fp_div);
}

void hash_compile_options(engine::HashStream& h, const CompileOptions& opts) {
  h.i32(opts.unroll.max_factor);
  h.u64(opts.unroll.max_body_insts);
  h.boolean(opts.unroll.merge_counter_updates);
  // Nest restructuring knobs change the compiled shape before any other pass.
  h.boolean(opts.nest.interchange).boolean(opts.nest.fuse);
  h.boolean(opts.nest.fission).boolean(opts.nest.tile);
  h.i32(opts.nest.tile_size);
  h.boolean(opts.schedule);
  // Scheduler backend identity: results from one backend must never be
  // served to a request for the other, and any behavior change in the
  // modulo scheduler (kModuloSchedulerVersion bump) invalidates its cells.
  h.i32(static_cast<int>(opts.scheduler));
  if (opts.scheduler == SchedulerKind::Modulo) {
    h.i32(kModuloSchedulerVersion);
    h.u64(opts.modulo.max_body_insts);
    h.i32(opts.modulo.max_stages);
    h.i32(opts.modulo.max_ii_over_min);
    h.i32(opts.modulo.budget_ratio);
  }
}

std::uint64_t service_cell_key(std::string_view source, OptLevel level,
                               const std::optional<TransformSet>& transforms,
                               const NestOptions& nest, SchedulerKind scheduler,
                               int issue, int unroll, std::int64_t debug_sleep_ms) {
  engine::HashStream h;
  hash_domain_salt(h, "ilpd-cell");
  h.str(source);
  h.boolean(transforms.has_value());
  if (transforms) {
    h.boolean(transforms->unroll).boolean(transforms->rename);
    h.boolean(transforms->combine).boolean(transforms->strength);
    h.boolean(transforms->height).boolean(transforms->acc_expand);
    h.boolean(transforms->ind_expand).boolean(transforms->search_expand);
  } else {
    h.i32(static_cast<int>(level));
  }
  // The service materializes exactly these CompileOptions in compute_cell;
  // hashing through the shared builder keeps key and computation in lockstep.
  CompileOptions opts;
  opts.unroll.max_factor = unroll;
  opts.nest = nest;
  opts.scheduler = scheduler;
  hash_compile_options(h, opts);
  h.i32(issue);
  h.i64(debug_sleep_ms);
  return h.digest();
}

}  // namespace ilp
