// Shared, versioned cache-key salt builder.
//
// Three content-addressed caches hash compile knobs into their keys: the
// study cells ("ilp92-cell"), the ilpd service cells ("ilpd-cell"), and the
// pre-serialized hot response tier (which salts the cell key per variant).
// Before this header each site hand-maintained its own field list and its
// own "-vN" literal, so adding a knob meant three edits that could drift.
// Now every key flows through the helpers below and `kCacheKeyVersion`:
// adding a knob (or changing what an existing one means) is one bump here
// and every persisted cache rolls over together.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "engine/cache.hpp"
#include "machine/machine.hpp"
#include "trans/level.hpp"

namespace ilp {

// Version of the knob wire format below.  v3 was the last hand-maintained
// generation ("ilp92-cell-v3" / "ilpd-cell-v3"); v4 is the first shared one.
inline constexpr int kCacheKeyVersion = 4;

// Domain salt: the cache family name plus the shared version, so distinct
// families can never collide and all of them invalidate on one bump.
void hash_domain_salt(engine::HashStream& h, std::string_view domain);

// Machine identity: issue width, branch slots and the full Table-1 latency
// set — results for one machine must never answer a request for another.
void hash_machine_model(engine::HashStream& h, const MachineModel& m);

// Every compile-affecting knob in CompileOptions: unroll limits, nest
// restructuring (pass subset + tile size), the scheduling toggle, and the
// scheduler-backend identity — including kModuloSchedulerVersion and the
// modulo search limits when that backend is selected, so a behavior change
// in the modulo scheduler invalidates exactly its cells.
void hash_compile_options(engine::HashStream& h, const CompileOptions& opts);

// Content hash of one service/tune evaluation cell: (source, level-or-
// explicit-transform-set, nest, scheduler, issue, unroll).  ilpd request
// routing, in-flight coalescing, the response cache and the autotuner's
// candidate evaluations all use this one function, so tuning traffic and
// compile traffic share cache entries for identical work.
std::uint64_t service_cell_key(std::string_view source, OptLevel level,
                               const std::optional<TransformSet>& transforms,
                               const NestOptions& nest, SchedulerKind scheduler,
                               int issue, int unroll, std::int64_t debug_sleep_ms);

// Hot-tier variant salt ("profile" in ASCII): a pre-serialized profiled body
// must never answer an unprofiled request for the same cell, and vice versa.
constexpr std::uint64_t hot_profile_variant(std::uint64_t key) {
  return key ^ 0x70726f66696c65ull;
}

}  // namespace ilp
