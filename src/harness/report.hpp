// Histogram bucketing and text rendering for the paper's figures.
//
// Each figure plots, per transformation level, how many of the 40 loops fall
// into each speedup (or register-count) range; the ranges below are read off
// the published axes.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace ilp {

struct Bucket {
  double lo = 0.0;
  double hi = 0.0;  // exclusive; <= 0 means open-ended
  std::string label;
};

// The published ranges.
const std::vector<Bucket>& fig8_speedup_buckets();   // issue-2
const std::vector<Bucket>& fig9_speedup_buckets();   // issue-4
const std::vector<Bucket>& fig10_speedup_buckets();  // issue-8 (also 12/14)
const std::vector<Bucket>& fig11_register_buckets(); // issue-8 (also 13/15)

// Counts per (bucket, level).
struct Histogram {
  std::vector<Bucket> buckets;
  // counts[bucket][level]
  std::vector<std::array<int, 5>> counts;
};

enum class LoopFilter { All, DoAllOnly, NonDoAllOnly };

Histogram speedup_histogram(const StudyResult& study, int width_index,
                            const std::vector<Bucket>& buckets,
                            LoopFilter filter = LoopFilter::All);
Histogram register_histogram(const StudyResult& study, LoopFilter filter = LoopFilter::All);

// Renders "rows = ranges, columns = Conv..Lev4" with a title.
std::string render_histogram(const Histogram& h, const std::string& title);

// Renders a per-loop speedup table for one issue width.
std::string render_speedup_table(const StudyResult& study, int width_index);

// Renders the Table 2 reconstruction.
std::string render_table2();

}  // namespace ilp
