#include "harness/report.hpp"

#include <sstream>

#include "support/strings.hpp"

namespace ilp {

namespace {

std::vector<Bucket> make_buckets(const std::vector<std::pair<double, double>>& edges) {
  std::vector<Bucket> out;
  for (const auto& [lo, hi] : edges) {
    Bucket b;
    b.lo = lo;
    b.hi = hi;
    if (hi <= 0)
      b.label = strformat("%.2f+", lo);
    else
      b.label = strformat("%.2f-%.2f", lo, hi - 0.01);
    out.push_back(std::move(b));
  }
  return out;
}

std::vector<Bucket> make_int_buckets(const std::vector<std::pair<int, int>>& edges) {
  std::vector<Bucket> out;
  for (const auto& [lo, hi] : edges) {
    Bucket b;
    b.lo = lo;
    b.hi = hi <= 0 ? 0 : hi;
    b.label = hi <= 0 ? strformat("%d+", lo) : strformat("%d-%d", lo, hi - 1);
    out.push_back(std::move(b));
  }
  return out;
}

bool keeps(const LoopStudy& l, LoopFilter f) {
  switch (f) {
    case LoopFilter::All: return true;
    case LoopFilter::DoAllOnly: return l.type == dsl::LoopType::DoAll;
    case LoopFilter::NonDoAllOnly: return l.type != dsl::LoopType::DoAll;
  }
  return true;
}

int bucket_of(const std::vector<Bucket>& buckets, double v) {
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const Bucket& b = buckets[i];
    if (b.hi <= 0) {
      if (v >= b.lo) return static_cast<int>(i);
    } else if (v >= b.lo && v < b.hi) {
      return static_cast<int>(i);
    }
  }
  return v < buckets.front().lo ? 0 : static_cast<int>(buckets.size()) - 1;
}

}  // namespace

const std::vector<Bucket>& fig8_speedup_buckets() {
  static const auto b = make_buckets({{0.0, 1.25},
                                      {1.25, 1.50},
                                      {1.50, 1.75},
                                      {1.75, 2.00},
                                      {2.00, 2.50},
                                      {2.50, 3.00},
                                      {3.00, -1}});
  return b;
}

const std::vector<Bucket>& fig9_speedup_buckets() {
  static const auto b = make_buckets({{0.0, 1.50},
                                      {1.50, 2.00},
                                      {2.00, 2.50},
                                      {2.50, 3.00},
                                      {3.00, 3.50},
                                      {3.50, 4.00},
                                      {4.00, 5.00},
                                      {5.00, 6.00},
                                      {6.00, -1}});
  return b;
}

const std::vector<Bucket>& fig10_speedup_buckets() {
  static const auto b = make_buckets({{0.0, 2.00},
                                      {2.00, 2.50},
                                      {2.50, 3.00},
                                      {3.00, 4.00},
                                      {4.00, 5.00},
                                      {5.00, 6.00},
                                      {6.00, 7.00},
                                      {7.00, 8.00},
                                      {8.00, -1}});
  return b;
}

const std::vector<Bucket>& fig11_register_buckets() {
  static const auto b = make_int_buckets(
      {{0, 16}, {16, 32}, {32, 48}, {48, 64}, {64, 96}, {96, 128}, {128, -1}});
  return b;
}

Histogram speedup_histogram(const StudyResult& study, int width_index,
                            const std::vector<Bucket>& buckets, LoopFilter filter) {
  Histogram h;
  h.buckets = buckets;
  h.counts.assign(buckets.size(), {});
  for (const auto& l : study.loops) {
    if (!keeps(l, filter)) continue;
    for (std::size_t li = 0; li < kLevels.size(); ++li) {
      const double s = l.speedup(kLevels[li], width_index);
      ++h.counts[static_cast<std::size_t>(bucket_of(buckets, s))][li];
    }
  }
  return h;
}

Histogram register_histogram(const StudyResult& study, LoopFilter filter) {
  Histogram h;
  h.buckets = fig11_register_buckets();
  h.counts.assign(h.buckets.size(), {});
  for (const auto& l : study.loops) {
    if (!keeps(l, filter)) continue;
    for (std::size_t li = 0; li < kLevels.size(); ++li) {
      const double r = l.regs[li].total();
      ++h.counts[static_cast<std::size_t>(bucket_of(h.buckets, r))][li];
    }
  }
  return h;
}

std::string render_histogram(const Histogram& h, const std::string& title) {
  std::ostringstream os;
  os << title << "\n";
  os << pad_right("range", 14);
  for (OptLevel l : kLevels) os << pad_left(level_name(l), 7);
  os << "\n";
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    os << pad_right(h.buckets[i].label, 14);
    for (std::size_t li = 0; li < kLevels.size(); ++li)
      os << pad_left(strformat("%d", h.counts[i][li]), 7);
    os << "\n";
  }
  return os.str();
}

std::string render_speedup_table(const StudyResult& study, int width_index) {
  std::ostringstream os;
  os << pad_right("loop", 14) << pad_right("type", 10);
  for (OptLevel l : kLevels) os << pad_left(level_name(l), 8);
  os << "\n";
  for (const auto& l : study.loops) {
    os << pad_right(l.name, 14) << pad_right(dsl::loop_type_name(l.type), 10);
    for (OptLevel lvl : kLevels)
      os << pad_left(strformat("%.2f", l.speedup(lvl, width_index)), 8);
    os << "\n";
  }
  os << pad_right("MEAN", 24);
  for (OptLevel lvl : kLevels)
    os << pad_left(strformat("%.2f", study.mean_speedup(lvl, width_index)), 8);
  os << "\n";
  return os.str();
}

std::string render_table2() {
  std::ostringstream os;
  os << pad_right("Name", 14) << pad_left("Size", 6) << pad_left("Iters", 8)
     << pad_left("Nest", 6) << pad_right("  Type", 11) << pad_right("Conds", 6) << "\n";
  std::string group;
  for (const auto& w : workload_suite()) {
    if (w.group != group) {
      group = w.group;
      os << "-- " << group << " --\n";
    }
    os << pad_right(w.name, 14) << pad_left(strformat("%d", w.size), 6)
       << pad_left(strformat("%lld", static_cast<long long>(w.iters)), 8)
       << pad_left(strformat("%d", w.nest), 6) << "  "
       << pad_right(dsl::loop_type_name(w.type), 9) << pad_right(w.conds ? "yes" : "no", 6)
       << "\n";
  }
  return os.str();
}

}  // namespace ilp
