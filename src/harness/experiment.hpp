// The paper's experimental methodology (Section 3.1), end to end:
//
//   for each of the 40 loop nests
//     for each transformation level Conv..Lev4
//       compile (front end -> Conv -> ILP transformations -> superblock
//       scheduling), measure graph-coloring register usage, and run the
//       execution-driven simulator at issue rates 1, 2, 4, 8.
//
// Speedups are relative to the issue-1 processor with conventional
// optimizations, exactly as in the paper ("the base configuration for all
// speedup calculations is an issue-1 processor with conventional compiler
// transformations"), so super-linear speedups can occur.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "regalloc/regalloc.hpp"
#include "trans/level.hpp"
#include "workloads/suite.hpp"

namespace ilp {

inline constexpr std::array<int, 4> kIssueWidths = {1, 2, 4, 8};
inline constexpr std::array<OptLevel, 5> kLevels = {
    OptLevel::Conv, OptLevel::Lev1, OptLevel::Lev2, OptLevel::Lev3, OptLevel::Lev4};

struct LoopStudy {
  std::string name;
  std::string group;
  dsl::LoopType type = dsl::LoopType::DoAll;
  bool conds = false;

  // cycles[level][width-index]; width indices follow kIssueWidths.
  std::array<std::array<std::uint64_t, 4>, 5> cycles{};
  // Register usage of the code compiled for the issue-8 machine, per level
  // (Figure 11 reports usage for the issue-8 configuration).
  std::array<RegUsage, 5> regs{};

  [[nodiscard]] std::uint64_t base_cycles() const { return cycles[0][0]; }
  [[nodiscard]] double speedup(OptLevel level, int width_index) const {
    const auto c = cycles[static_cast<std::size_t>(level)][static_cast<std::size_t>(
        width_index)];
    return c == 0 ? 0.0 : static_cast<double>(base_cycles()) / static_cast<double>(c);
  }
};

struct StudyOptions {
  CompileOptions compile;   // unroll limits etc.
  bool verbose = false;     // progress lines to stderr
};

struct StudyResult {
  std::vector<LoopStudy> loops;

  [[nodiscard]] double mean_speedup(OptLevel level, int width_index) const;
  // Subset means (Figures 12/14): predicate over loop type.
  [[nodiscard]] double mean_speedup_where(OptLevel level, int width_index,
                                          bool doall_only) const;
  [[nodiscard]] double mean_registers(OptLevel level) const;
};

// Runs the full study over the Table 2 suite (or a caller-provided subset).
StudyResult run_study(const StudyOptions& opts = {});
StudyResult run_study(const std::vector<Workload>& workloads,
                      const StudyOptions& opts = {});

// Compiles one workload at one level for one machine; exposed for benches.
struct CompiledLoop {
  Function fn{"x"};
  RegUsage regs;
};
CompiledLoop compile_workload(const Workload& w, OptLevel level, const MachineModel& m,
                              const CompileOptions& opts = {});

// Simulates a compiled loop on seeded memory; returns cycle count.
std::uint64_t simulate_cycles(const Function& fn, const MachineModel& m);

}  // namespace ilp
