// The paper's experimental methodology (Section 3.1), end to end:
//
//   for each of the 40 loop nests
//     for each transformation level Conv..Lev4
//       compile (front end -> Conv -> ILP transformations -> superblock
//       scheduling), measure graph-coloring register usage, and run the
//       execution-driven simulator at issue rates 1, 2, 4, 8.
//
// Speedups are relative to the issue-1 processor with conventional
// optimizations, exactly as in the paper ("the base configuration for all
// speedup calculations is an issue-1 processor with conventional compiler
// transformations"), so super-linear speedups can occur.
//
// The sweep is embarrassingly parallel (800 independent cells for the full
// suite) and runs through the experiment engine (src/engine/): a thread pool
// executes the cells (`StudyOptions::jobs`), a content-addressed cache
// memoizes them across runs and processes (`StudyOptions::cache_dir`), and
// the telemetry layer records per-pass and per-cell wall times.  Results are
// aggregated by cell index, so parallel output — including the serialized
// JSON — is byte-identical to a serial run.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/cache.hpp"
#include "regalloc/regalloc.hpp"
#include "sim/profile.hpp"
#include "sim/simulator.hpp"
#include "support/expected.hpp"
#include "trans/level.hpp"
#include "workloads/suite.hpp"

namespace ilp {

inline constexpr std::array<int, 4> kIssueWidths = {1, 2, 4, 8};
inline constexpr std::array<OptLevel, 5> kLevels = {
    OptLevel::Conv, OptLevel::Lev1, OptLevel::Lev2, OptLevel::Lev3, OptLevel::Lev4};

struct LoopStudy {
  std::string name;
  std::string group;
  dsl::LoopType type = dsl::LoopType::DoAll;
  bool conds = false;
  // Empty when every cell of this loop succeeded; otherwise the first
  // failing cell's message (tagged with level/width).  Failed cells leave
  // cycles == 0, which speedup() already maps to 0.0.
  std::string error;

  // cycles[level][width-index]; width indices follow kIssueWidths.
  std::array<std::array<std::uint64_t, 4>, 5> cycles{};
  // Register usage of the code compiled for the issue-8 machine, per level
  // (Figure 11 reports usage for the issue-8 configuration).
  std::array<RegUsage, 5> regs{};

  [[nodiscard]] bool ok() const { return error.empty(); }
  [[nodiscard]] std::uint64_t base_cycles() const { return cycles[0][0]; }
  [[nodiscard]] double speedup(OptLevel level, int width_index) const {
    const auto c = cycles[static_cast<std::size_t>(level)][static_cast<std::size_t>(
        width_index)];
    return c == 0 ? 0.0 : static_cast<double>(base_cycles()) / static_cast<double>(c);
  }
};

struct StudyOptions {
  CompileOptions compile;   // unroll limits etc.
  bool verbose = false;     // progress lines to stderr
  // Worker threads for the cell sweep: 1 = serial in the calling thread
  // (the default, and the reference for determinism checks), 0 = one per
  // hardware thread, N = exactly N pool workers.
  int jobs = 1;
  // Non-empty: persist cell results under this directory (created lazily)
  // so re-runs of unchanged cells are near-free across processes.
  std::string cache_dir;
  // Optional externally owned cache (takes precedence over cache_dir); lets
  // several run_study calls in one process share a memoization tier.
  engine::ResultCache* cache = nullptr;
};

// Engine observability for one run_study call.  Wall-clock values vary run
// to run, so none of this participates in StudyResult::to_json (which must
// stay byte-identical between serial and parallel runs); it is exported
// separately via telemetry_json().
struct StudyStats {
  std::uint64_t cells = 0;         // total study cells executed or recalled
  std::uint64_t failed_cells = 0;  // cells that recorded an error
  std::uint64_t cache_hits = 0;    // memory-tier hits during this run
  std::uint64_t cache_disk_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_invalid = 0;  // hits rejected as stale/corrupted
  int jobs = 1;                    // resolved worker count actually used
  std::size_t peak_queue_depth = 0;
  double wall_seconds = 0.0;

  [[nodiscard]] double cache_hit_rate() const {
    const std::uint64_t n = cache_hits + cache_disk_hits + cache_misses;
    return n == 0 ? 0.0
                  : static_cast<double>(cache_hits + cache_disk_hits - cache_invalid) /
                        static_cast<double>(n);
  }
};

struct StudyResult {
  std::vector<LoopStudy> loops;
  StudyStats stats;

  [[nodiscard]] double mean_speedup(OptLevel level, int width_index) const;
  // Subset means (Figures 12/14): predicate over loop type.
  [[nodiscard]] double mean_speedup_where(OptLevel level, int width_index,
                                          bool doall_only) const;
  [[nodiscard]] double mean_registers(OptLevel level) const;

  // Deterministic serialization of the study (schema "ilp92-study-v1"):
  // loops with per-cell cycles, per-level registers, speedups and the mean
  // tables.  Byte-identical for a given workload set regardless of jobs or
  // cache state; see tests/engine/study_engine_test.cpp.
  [[nodiscard]] std::string to_json() const;
  // Engine telemetry (stats above + the global pass-timing registry).
  [[nodiscard]] std::string telemetry_json() const;
};

// Runs the full study over the Table 2 suite (or a caller-provided subset).
StudyResult run_study(const StudyOptions& opts = {});
StudyResult run_study(const std::vector<Workload>& workloads,
                      const StudyOptions& opts = {});

// Compiles one workload at one level for one machine; exposed for benches.
struct CompiledLoop {
  Function fn{"x"};
  RegUsage regs;
};

// Error-returning paths used by the study so one bad workload fails its
// cell, not the whole sweep.
// `stats`, when non-null, receives the per-compile transformation counters
// (loops unrolled, accumulators expanded, ...; see trans/level.hpp).
Expected<CompiledLoop> try_compile_workload(const Workload& w, OptLevel level,
                                            const MachineModel& m,
                                            const CompileOptions& opts = {},
                                            TransformStats* stats = nullptr);
Expected<std::uint64_t> try_simulate_cycles(const Function& fn, const MachineModel& m);

// Profiled variant: same seeded run, but every cycle x issue slot is
// attributed through sim/profile.hpp.  The profile is returned next to the
// result so callers (ilpc --profile, the explain layer, ilpd, bench_profile)
// get cycles and the why-of-the-cycles from one simulation.
struct ProfiledSim {
  SimResult result;
  CycleProfile profile;
};
Expected<ProfiledSim> try_simulate_profile(const Function& fn, const MachineModel& m);

// Hard-failing convenience wrappers (abort with the error message), kept for
// direct callers — the ablation/regpressure/swp benches — where a failure is
// a programming error rather than data.
CompiledLoop compile_workload(const Workload& w, OptLevel level, const MachineModel& m,
                              const CompileOptions& opts = {});
std::uint64_t simulate_cycles(const Function& fn, const MachineModel& m);

// Content-address of one study cell: FNV-1a over the workload source, level,
// every machine parameter and every compile option (plus a schema version).
// Exposed for the cache tests.
std::uint64_t study_cell_key(const Workload& w, OptLevel level, const MachineModel& m,
                             const CompileOptions& opts);

}  // namespace ilp
