#include "harness/explain.hpp"

#include <algorithm>
#include <vector>

#include "frontend/compile.hpp"
#include "harness/experiment.hpp"
#include "support/strings.hpp"

namespace ilp {

namespace {

std::uint64_t cause_slots(const CycleProfile& p, StallCause c) {
  return p.slots[static_cast<std::size_t>(c)];
}

// Stalled slots attributed to one block row (everything but Issued).
std::uint64_t row_stalled(const std::array<std::uint64_t, kNumStallCauses>& row) {
  std::uint64_t s = 0;
  for (int c = 1; c < kNumStallCauses; ++c) s += row[static_cast<std::size_t>(c)];
  return s;
}

// "issued 28.8% raw 40.5% mem 20.3% width 1.0% branch 9.3% drain 0.1%"
std::string share_line(const CycleProfile& p) {
  static constexpr const char* kShort[] = {"issued", "raw",    "mem",
                                           "width",  "branch", "drain"};
  std::string out;
  for (int c = 0; c < kNumStallCauses; ++c)
    out += strformat("%s%s %.1f%%", c == 0 ? "" : "  ", kShort[c],
                     100.0 * p.fraction(static_cast<StallCause>(c)));
  return out;
}

// Per-cause delta prose between two profiles of the same program:
// "removed 41.2% of mem_wait slots (8210 -> 4830)".  Small moves (under 5%
// of the cause's previous total and under 8 slots) stay unreported.
std::string cause_deltas(const CycleProfile& prev, const CycleProfile& cur,
                         const char* indent) {
  std::string out;
  for (int c = 1; c < kNumStallCauses; ++c) {
    const auto cause = static_cast<StallCause>(c);
    const std::uint64_t a = cause_slots(prev, cause);
    const std::uint64_t b = cause_slots(cur, cause);
    if (a == b) continue;
    const std::uint64_t diff = a > b ? a - b : b - a;
    if (diff < 8 && diff * 20 < std::max(a, b)) continue;
    if (a == 0) {
      out += strformat("%sadded %llu %s slots\n", indent,
                       static_cast<unsigned long long>(b), stall_cause_name(cause));
    } else {
      const double rel = 100.0 * static_cast<double>(diff) / static_cast<double>(a);
      out += strformat("%s%s %.1f%% of %s slots (%llu -> %llu)\n", indent,
                       a > b ? "removed" : "added", rel, stall_cause_name(cause),
                       static_cast<unsigned long long>(a),
                       static_cast<unsigned long long>(b));
    }
  }
  if (out.empty()) out = strformat("%sno significant stall shifts\n", indent);
  return out;
}

double ipc(const CycleProfile& p) {
  return p.cycles == 0 ? 0.0
                       : static_cast<double>(p.slots[0]) / static_cast<double>(p.cycles);
}

Expected<CycleProfile> profile_one(const std::string& source, OptLevel level,
                                   const MachineModel& machine,
                                   const CompileOptions& opts) {
  DiagnosticEngine diags;
  auto compiled = dsl::compile(source, diags);
  if (!compiled) return Error{"compile failed: " + diags.to_string()};
  try {
    compile_with_transforms(compiled->fn, TransformSet::for_level(level), machine, opts);
  } catch (const std::exception& e) {
    return Error{strformat("%s failed: %s", level_name(level), e.what())};
  }
  auto sim = try_simulate_profile(compiled->fn, machine);
  if (!sim) return Error{sim.error_message()};
  return std::move(sim->profile);
}

}  // namespace

std::string format_profile(const CycleProfile& p) {
  std::string out;
  out += strformat("width=%d cycles=%llu slots=%llu ipc=%.2f\n", p.width,
                   static_cast<unsigned long long>(p.cycles),
                   static_cast<unsigned long long>(p.total_slots()), ipc(p));
  out += strformat("  %-15s %12s %7s\n", "cause", "slots", "share");
  for (int c = 0; c < kNumStallCauses; ++c) {
    const auto cause = static_cast<StallCause>(c);
    out += strformat("  %-15s %12llu %6.1f%%\n", stall_cause_name(cause),
                     static_cast<unsigned long long>(cause_slots(p, cause)),
                     100.0 * p.fraction(cause));
  }
  out += "  occupancy (cycles issuing k):";
  for (std::size_t k = 0; k < p.occupancy.size(); ++k)
    out += strformat(" %zu:%llu", k, static_cast<unsigned long long>(p.occupancy[k]));
  out += "\n";

  // Blocks ranked by slots lost while their instruction blocked the head.
  std::vector<std::size_t> order(p.block_slots.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return row_stalled(p.block_slots[a]) > row_stalled(p.block_slots[b]);
  });
  out += "  top stall blocks:\n";
  int shown = 0;
  for (const std::size_t i : order) {
    const std::uint64_t lost = row_stalled(p.block_slots[i]);
    if (lost == 0 || shown == 3) break;
    int worst = 1;
    for (int c = 2; c < kNumStallCauses; ++c)
      if (p.block_slots[i][static_cast<std::size_t>(c)] >
          p.block_slots[i][static_cast<std::size_t>(worst)])
        worst = c;
    out += strformat("    %-12s %10llu stalled (mostly %s)\n", p.block_names[i].c_str(),
                     static_cast<unsigned long long>(lost),
                     stall_cause_name(static_cast<StallCause>(worst)));
    ++shown;
  }

  std::vector<int> ops;
  for (int op = 0; op < kNumOpcodes; ++op)
    if (p.stall_by_opcode[static_cast<std::size_t>(op)] > 0) ops.push_back(op);
  std::sort(ops.begin(), ops.end(), [&](int a, int b) {
    return p.stall_by_opcode[static_cast<std::size_t>(a)] >
           p.stall_by_opcode[static_cast<std::size_t>(b)];
  });
  out += "  top stall opcodes:";
  for (std::size_t i = 0; i < ops.size() && i < 5; ++i) {
    const auto name = opcode_name(static_cast<Opcode>(ops[i]));
    out += strformat(" %.*s:%llu", static_cast<int>(name.size()), name.data(),
                     static_cast<unsigned long long>(
                         p.stall_by_opcode[static_cast<std::size_t>(ops[i])]));
  }
  out += "\n";
  return out;
}

Expected<std::string> explain_source(const std::string& name, const std::string& source,
                                     const MachineModel& machine,
                                     const CompileOptions& opts,
                                     bool compare_schedulers) {
  std::string out = strformat("explain %s (issue-%d, %s scheduler)\n", name.c_str(),
                              machine.issue_width, scheduler_kind_name(opts.scheduler));
  constexpr std::array<OptLevel, 5> kAll = {OptLevel::Conv, OptLevel::Lev1,
                                            OptLevel::Lev2, OptLevel::Lev3,
                                            OptLevel::Lev4};
  std::vector<CycleProfile> profs;
  for (const OptLevel level : kAll) {
    auto p = profile_one(source, level, machine, opts);
    if (!p) return Error{strformat("%s: %s", level_name(level), p.error_message().c_str())};
    out += strformat("%-5s cycles=%-9llu ipc=%-5.2f %s\n", level_name(level),
                     static_cast<unsigned long long>(p->cycles), ipc(*p),
                     share_line(*p).c_str());
    if (!profs.empty()) {
      const CycleProfile& prev = profs.back();
      const double speedup = p->cycles == 0
                                 ? 0.0
                                 : static_cast<double>(prev.cycles) /
                                       static_cast<double>(p->cycles);
      out += strformat("  vs %s: %.2fx (%llu -> %llu cycles)\n",
                       level_name(kAll[profs.size() - 1]), speedup,
                       static_cast<unsigned long long>(prev.cycles),
                       static_cast<unsigned long long>(p->cycles));
      out += cause_deltas(prev, *p, "    ");
    }
    profs.push_back(std::move(*p));
  }

  if (compare_schedulers) {
    CompileOptions other = opts;
    other.scheduler = opts.scheduler == SchedulerKind::List ? SchedulerKind::Modulo
                                                            : SchedulerKind::List;
    auto p = profile_one(source, OptLevel::Lev4, machine, other);
    if (p) {
      const CycleProfile& base = profs.back();
      const double speedup = p->cycles == 0
                                 ? 0.0
                                 : static_cast<double>(base.cycles) /
                                       static_cast<double>(p->cycles);
      out += strformat("%s@Lev4 cycles=%-9llu ipc=%-5.2f %s\n",
                       scheduler_kind_name(other.scheduler),
                       static_cast<unsigned long long>(p->cycles), ipc(*p),
                       share_line(*p).c_str());
      out += strformat("  vs %s: %.2fx (%llu -> %llu cycles)\n",
                       scheduler_kind_name(opts.scheduler), speedup,
                       static_cast<unsigned long long>(base.cycles),
                       static_cast<unsigned long long>(p->cycles));
      out += cause_deltas(base, *p, "    ");
    } else {
      out += strformat("%s@Lev4: %s\n", scheduler_kind_name(other.scheduler),
                       p.error_message().c_str());
    }
  }
  return out;
}

}  // namespace ilp
