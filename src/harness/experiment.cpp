#include "harness/experiment.hpp"

#include <cinttypes>
#include <cstdio>
#include <exception>
#include <future>
#include <memory>
#include <thread>

#include "engine/metrics.hpp"
#include "engine/pool.hpp"
#include "engine/trace.hpp"
#include "frontend/compile.hpp"
#include "harness/cache_key.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"

namespace ilp {

Expected<CompiledLoop> try_compile_workload(const Workload& w, OptLevel level,
                                            const MachineModel& m,
                                            const CompileOptions& opts,
                                            TransformStats* stats) {
  DiagnosticEngine diags;
  auto r = dsl::compile(w.source, diags);
  if (!r)
    return Error{strformat("workload '%s' failed to compile: %s", w.name.c_str(),
                           diags.to_string().c_str())};
  try {
    compile_with_transforms(r->fn, TransformSet::for_level(level), m, opts, stats);
  } catch (const std::exception& e) {
    return Error{strformat("workload '%s' failed at %s: %s", w.name.c_str(),
                           level_name(level), e.what())};
  }
  CompiledLoop out;
  out.fn = std::move(r->fn);
  out.regs = measure_register_usage(out.fn);
  return out;
}

Expected<std::uint64_t> try_simulate_cycles(const Function& fn, const MachineModel& m) {
  engine::ScopedTimer timer("pass.simulate");
  const RunOutcome out = run_seeded(fn, m);
  if (!out.result.ok) return Error{"simulation failed: " + out.result.error};
  return out.result.cycles;
}

Expected<ProfiledSim> try_simulate_profile(const Function& fn, const MachineModel& m) {
  engine::ScopedTimer timer("pass.simulate");
  ProfiledSim out;
  SimOptions opts;
  opts.profile = &out.profile;
  RunOutcome run = run_seeded(fn, m, std::move(opts));
  if (!run.result.ok) return Error{"simulation failed: " + run.result.error};
  out.result = std::move(run.result);
  return out;
}

CompiledLoop compile_workload(const Workload& w, OptLevel level, const MachineModel& m,
                              const CompileOptions& opts) {
  auto r = try_compile_workload(w, level, m, opts);
  ILP_ASSERT(r.has_value(), r.error_message().c_str());
  return std::move(*r);
}

std::uint64_t simulate_cycles(const Function& fn, const MachineModel& m) {
  auto r = try_simulate_cycles(fn, m);
  ILP_ASSERT(r.has_value(), r.error_message().c_str());
  return *r;
}

std::uint64_t study_cell_key(const Workload& w, OptLevel level, const MachineModel& m,
                             const CompileOptions& opts) {
  engine::HashStream h;
  hash_domain_salt(h, "ilp92-cell");  // shared version: see harness/cache_key.hpp
  h.str(w.source);
  h.i32(static_cast<int>(level));
  hash_machine_model(h, m);
  hash_compile_options(h, opts);
  return h.digest();
}

namespace {

// One (loop, level, width) cell of the sweep, in cacheable form.
struct CellResult {
  std::uint64_t cycles = 0;
  RegUsage regs{};
  std::string error;
};

std::string encode_cell(const CellResult& c) {
  if (!c.error.empty()) return "v1 err " + c.error;
  return strformat("v1 ok %" PRIu64 " %d %d", c.cycles, c.regs.int_regs, c.regs.fp_regs);
}

bool decode_cell(const std::string& payload, CellResult& out) {
  if (payload.rfind("v1 err ", 0) == 0) {
    out = CellResult{};
    out.error = payload.substr(7);
    return true;
  }
  CellResult c;
  if (std::sscanf(payload.c_str(), "v1 ok %" SCNu64 " %d %d", &c.cycles,
                  &c.regs.int_regs, &c.regs.fp_regs) == 3) {
    out = c;
    return true;
  }
  return false;  // unknown schema (stale disk entry): treat as miss
}

CellResult compute_cell(const Workload& w, OptLevel level, const MachineModel& m,
                        const CompileOptions& opts) {
  CellResult c;
  auto compiled = try_compile_workload(w, level, m, opts);
  if (!compiled) {
    c.error = compiled.error_message();
    return c;
  }
  c.regs = compiled->regs;
  auto cycles = try_simulate_cycles(compiled->fn, m);
  if (!cycles) {
    c.error = strformat("workload '%s' at %s issue-%d: %s", w.name.c_str(),
                        level_name(level), m.issue_width, cycles.error_message().c_str());
    return c;
  }
  c.cycles = *cycles;
  return c;
}

CellResult run_cell(const Workload& w, OptLevel level, int width,
                    const CompileOptions& copts, engine::ResultCache* cache) {
  const MachineModel m = MachineModel::issue(width);
  engine::TraceScope trace(
      strformat("%s/%s/w%d", w.name.c_str(), level_name(level), width), "cell");
  std::uint64_t key = 0;
  if (cache != nullptr) {
    key = study_cell_key(w, level, m, copts);
    if (auto payload = cache->lookup(key)) {
      CellResult c;
      if (decode_cell(*payload, c)) return c;
      cache->invalidate(key);  // stale/corrupted entry: recompute and rewrite
    }
  }
  engine::ScopedTimer timer("study.cell");
  CellResult c = compute_cell(w, level, m, copts);
  if (cache != nullptr) cache->store(key, encode_cell(c));
  return c;
}

}  // namespace

StudyResult run_study(const std::vector<Workload>& workloads, const StudyOptions& opts) {
  engine::Stopwatch wall;

  std::unique_ptr<engine::ResultCache> owned_cache;
  engine::ResultCache* cache = opts.cache;
  if (cache == nullptr && !opts.cache_dir.empty()) {
    owned_cache = std::make_unique<engine::ResultCache>(opts.cache_dir);
    cache = owned_cache.get();
  }
  const engine::CacheStats cache_before = cache ? cache->stats() : engine::CacheStats{};

  constexpr std::size_t kCellsPerLoop = kLevels.size() * kIssueWidths.size();
  std::vector<CellResult> cells(workloads.size() * kCellsPerLoop);
  auto cell_index = [&](std::size_t loop_i, std::size_t li, std::size_t wi) {
    return loop_i * kCellsPerLoop + li * kIssueWidths.size() + wi;
  };

  int jobs = opts.jobs;
  if (jobs <= 0) jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;

  StudyResult res;
  res.stats.jobs = jobs;

  if (jobs == 1) {
    for (std::size_t loop_i = 0; loop_i < workloads.size(); ++loop_i)
      for (std::size_t li = 0; li < kLevels.size(); ++li)
        for (std::size_t wi = 0; wi < kIssueWidths.size(); ++wi)
          cells[cell_index(loop_i, li, wi)] =
              run_cell(workloads[loop_i], kLevels[li], kIssueWidths[wi], opts.compile,
                       cache);
  } else {
    engine::ThreadPool pool(static_cast<unsigned>(jobs));
    std::vector<std::future<CellResult>> futures;
    futures.reserve(cells.size());
    for (std::size_t loop_i = 0; loop_i < workloads.size(); ++loop_i)
      for (std::size_t li = 0; li < kLevels.size(); ++li)
        for (std::size_t wi = 0; wi < kIssueWidths.size(); ++wi) {
          const Workload& w = workloads[loop_i];
          const OptLevel level = kLevels[li];
          const int width = kIssueWidths[wi];
          futures.push_back(pool.submit([&w, level, width, &opts, cache] {
            return run_cell(w, level, width, opts.compile, cache);
          }));
        }
    // Collect by submission index — never by completion order — so parallel
    // aggregation is byte-identical to serial.  A job that escaped with an
    // exception fails its cell only.
    for (std::size_t i = 0; i < futures.size(); ++i) {
      try {
        cells[i] = futures[i].get();
      } catch (const std::exception& e) {
        cells[i].error = strformat("study job threw: %s", e.what());
      }
    }
    res.stats.peak_queue_depth = pool.peak_queue_depth();
  }

  for (std::size_t loop_i = 0; loop_i < workloads.size(); ++loop_i) {
    const Workload& w = workloads[loop_i];
    LoopStudy ls;
    ls.name = w.name;
    ls.group = w.group;
    ls.type = w.type;
    ls.conds = w.conds;
    for (std::size_t li = 0; li < kLevels.size(); ++li) {
      for (std::size_t wi = 0; wi < kIssueWidths.size(); ++wi) {
        const CellResult& c = cells[cell_index(loop_i, li, wi)];
        if (!c.error.empty()) {
          ++res.stats.failed_cells;
          if (ls.error.empty()) ls.error = c.error;
          continue;
        }
        ls.cycles[li][wi] = c.cycles;
        if (kIssueWidths[wi] == 8) ls.regs[li] = c.regs;
      }
    }
    if (opts.verbose) {
      if (ls.ok())
        std::fprintf(stderr, "  %-12s base=%llu lev4@8=%llu\n", ls.name.c_str(),
                     static_cast<unsigned long long>(ls.base_cycles()),
                     static_cast<unsigned long long>(ls.cycles[4][3]));
      else
        std::fprintf(stderr, "  %-12s FAILED: %s\n", ls.name.c_str(), ls.error.c_str());
    }
    res.loops.push_back(std::move(ls));
  }

  res.stats.cells = cells.size();
  if (cache != nullptr) {
    const engine::CacheStats after = cache->stats();
    res.stats.cache_hits = after.hits - cache_before.hits;
    res.stats.cache_disk_hits = after.disk_hits - cache_before.disk_hits;
    res.stats.cache_misses = after.misses - cache_before.misses;
    res.stats.cache_invalid = after.invalid - cache_before.invalid;
  } else {
    res.stats.cache_misses = cells.size();
  }
  res.stats.wall_seconds = wall.seconds();
  return res;
}

StudyResult run_study(const StudyOptions& opts) { return run_study(workload_suite(), opts); }

double StudyResult::mean_speedup(OptLevel level, int width_index) const {
  if (loops.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& l : loops) sum += l.speedup(level, width_index);
  return sum / static_cast<double>(loops.size());
}

double StudyResult::mean_speedup_where(OptLevel level, int width_index,
                                       bool doall_only) const {
  double sum = 0.0;
  int n = 0;
  for (const auto& l : loops) {
    const bool is_doall = l.type == dsl::LoopType::DoAll;
    if (is_doall != doall_only) continue;
    sum += l.speedup(level, width_index);
    ++n;
  }
  return n == 0 ? 0.0 : sum / n;
}

double StudyResult::mean_registers(OptLevel level) const {
  if (loops.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& l : loops)
    sum += l.regs[static_cast<std::size_t>(level)].total();
  return sum / static_cast<double>(loops.size());
}

std::string StudyResult::to_json() const {
  std::string out;
  out.reserve(4096 + loops.size() * 1024);
  out += "{\n  \"schema\": \"ilp92-study-v1\",\n  \"issue_widths\": [1, 2, 4, 8],\n";
  out += "  \"levels\": [\"Conv\", \"Lev1\", \"Lev2\", \"Lev3\", \"Lev4\"],\n";
  out += "  \"loops\": [\n";
  for (std::size_t i = 0; i < loops.size(); ++i) {
    const LoopStudy& l = loops[i];
    out += strformat("    {\"name\": \"%s\", \"group\": \"%s\", \"type\": \"%s\", "
                     "\"conds\": %s,\n",
                     json_escape(l.name).c_str(), json_escape(l.group).c_str(),
                     dsl::loop_type_name(l.type), l.conds ? "true" : "false");
    out += strformat("     \"error\": \"%s\",\n", json_escape(l.error).c_str());
    out += "     \"cycles\": [";
    for (std::size_t li = 0; li < kLevels.size(); ++li) {
      out += li == 0 ? "[" : ", [";
      for (std::size_t wi = 0; wi < kIssueWidths.size(); ++wi)
        out += strformat("%s%llu", wi == 0 ? "" : ", ",
                         static_cast<unsigned long long>(l.cycles[li][wi]));
      out += "]";
    }
    out += "],\n     \"registers\": [";
    for (std::size_t li = 0; li < kLevels.size(); ++li)
      out += strformat("%s{\"int\": %d, \"fp\": %d}", li == 0 ? "" : ", ",
                       l.regs[li].int_regs, l.regs[li].fp_regs);
    out += "],\n     \"speedups\": [";
    for (std::size_t li = 0; li < kLevels.size(); ++li) {
      out += li == 0 ? "[" : ", [";
      for (std::size_t wi = 0; wi < kIssueWidths.size(); ++wi)
        out += strformat("%s%.6f", wi == 0 ? "" : ", ",
                         l.speedup(kLevels[li], static_cast<int>(wi)));
      out += "]";
    }
    out += strformat("]}%s\n", i + 1 < loops.size() ? "," : "");
  }
  out += "  ],\n  \"mean_speedup\": [";
  for (std::size_t li = 0; li < kLevels.size(); ++li) {
    out += li == 0 ? "[" : ", [";
    for (std::size_t wi = 0; wi < kIssueWidths.size(); ++wi)
      out += strformat("%s%.6f", wi == 0 ? "" : ", ",
                       mean_speedup(kLevels[li], static_cast<int>(wi)));
    out += "]";
  }
  out += "],\n  \"mean_registers\": [";
  for (std::size_t li = 0; li < kLevels.size(); ++li)
    out += strformat("%s%.6f", li == 0 ? "" : ", ", mean_registers(kLevels[li]));
  out += "]\n}\n";
  return out;
}

std::string StudyResult::telemetry_json() const {
  std::string out = "{\n";
  out += strformat(
      "  \"cells\": %llu,\n  \"failed_cells\": %llu,\n  \"jobs\": %d,\n"
      "  \"peak_queue_depth\": %llu,\n  \"wall_seconds\": %.6f,\n"
      "  \"cache\": {\"hits\": %llu, \"disk_hits\": %llu, \"misses\": %llu, "
      "\"invalid\": %llu, \"hit_rate\": %.4f},\n",
      static_cast<unsigned long long>(stats.cells),
      static_cast<unsigned long long>(stats.failed_cells), stats.jobs,
      static_cast<unsigned long long>(stats.peak_queue_depth), stats.wall_seconds,
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_disk_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.cache_invalid), stats.cache_hit_rate());
  out += "  \"passes\": " + engine::MetricsRegistry::global().to_json(2) + "\n}\n";
  return out;
}

}  // namespace ilp
