#include "harness/experiment.hpp"

#include <cstdio>

#include "frontend/compile.hpp"
#include "sim/simulator.hpp"
#include "support/assert.hpp"

namespace ilp {

CompiledLoop compile_workload(const Workload& w, OptLevel level, const MachineModel& m,
                              const CompileOptions& opts) {
  DiagnosticEngine diags;
  auto r = dsl::compile(w.source, diags);
  ILP_ASSERT(r.has_value(), "workload source must compile");
  compile_at_level(r->fn, level, m, opts);
  CompiledLoop out;
  out.fn = std::move(r->fn);
  out.regs = measure_register_usage(out.fn);
  return out;
}

std::uint64_t simulate_cycles(const Function& fn, const MachineModel& m) {
  const RunOutcome out = run_seeded(fn, m);
  ILP_ASSERT(out.result.ok, out.result.error.c_str());
  return out.result.cycles;
}

StudyResult run_study(const std::vector<Workload>& workloads, const StudyOptions& opts) {
  StudyResult res;
  for (const Workload& w : workloads) {
    LoopStudy ls;
    ls.name = w.name;
    ls.group = w.group;
    ls.type = w.type;
    ls.conds = w.conds;
    for (std::size_t li = 0; li < kLevels.size(); ++li) {
      for (std::size_t wi = 0; wi < kIssueWidths.size(); ++wi) {
        const MachineModel m = MachineModel::issue(kIssueWidths[wi]);
        const CompiledLoop c = compile_workload(w, kLevels[li], m, opts.compile);
        ls.cycles[li][wi] = simulate_cycles(c.fn, m);
        if (kIssueWidths[wi] == 8) ls.regs[li] = c.regs;
      }
    }
    if (opts.verbose)
      std::fprintf(stderr, "  %-12s base=%llu lev4@8=%llu\n", ls.name.c_str(),
                   static_cast<unsigned long long>(ls.base_cycles()),
                   static_cast<unsigned long long>(ls.cycles[4][3]));
    res.loops.push_back(std::move(ls));
  }
  return res;
}

StudyResult run_study(const StudyOptions& opts) { return run_study(workload_suite(), opts); }

double StudyResult::mean_speedup(OptLevel level, int width_index) const {
  if (loops.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& l : loops) sum += l.speedup(level, width_index);
  return sum / static_cast<double>(loops.size());
}

double StudyResult::mean_speedup_where(OptLevel level, int width_index,
                                       bool doall_only) const {
  double sum = 0.0;
  int n = 0;
  for (const auto& l : loops) {
    const bool is_doall = l.type == dsl::LoopType::DoAll;
    if (is_doall != doall_only) continue;
    sum += l.speedup(level, width_index);
    ++n;
  }
  return n == 0 ? 0.0 : sum / n;
}

double StudyResult::mean_registers(OptLevel level) const {
  if (loops.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& l : loops)
    sum += l.regs[static_cast<std::size_t>(level)].total();
  return sum / static_cast<double>(loops.size());
}

}  // namespace ilp
