// Lightweight always-on assertion macros for internal invariants.
//
// ILP_ASSERT is used for programmer errors inside the compiler/simulator
// (malformed IR, broken pass invariants).  It is kept enabled in all build
// types: this library's correctness story rests on differential testing, and
// a silently corrupted IR would invalidate every downstream measurement.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ilp::detail {
[[noreturn]] inline void assert_fail(const char* cond, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "ILP_ASSERT failed: %s\n  at %s:%d\n  %s\n", cond, file, line,
               msg ? msg : "");
  std::abort();
}
}  // namespace ilp::detail

#define ILP_ASSERT(cond, msg)                                          \
  do {                                                                 \
    if (!(cond)) ::ilp::detail::assert_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define ILP_UNREACHABLE(msg) ::ilp::detail::assert_fail("unreachable", __FILE__, __LINE__, (msg))
