// Bounded lock-free multi-producer/single-consumer ring buffer.
//
// This is the dispatch primitive of the shard-per-core server: the epoll
// thread(s) produce parsed request lines, one shard worker consumes them.
// It is a Vyukov-style bounded queue — every slot carries a sequence number,
// so producers claim slots with one fetch_add and publish with one release
// store, and the consumer never takes a lock.  Capacity is fixed at
// construction (rounded up to a power of two); a full ring fails the push
// instead of blocking, which is exactly the explicit-backpressure contract
// the admission layer wants (the caller turns a failed push into an
// `overloaded` response and a `shard_ring_drops` tick).
//
// Memory layout follows the obs::Histogram shard idiom: the producer cursor,
// consumer cursor and the slot array start are all cache-line separated so
// producers on other cores never false-share with the consumer.
//
// Progress guarantees: try_push is lock-free across producers; try_pop is
// wait-free for the single consumer.  The queue is linearizable per slot:
// a pop observes a fully-constructed element (release/acquire on the slot
// sequence).  FIFO holds per producer; elements from different producers
// interleave in claim order.
//
// The consumer side is written for ONE consumer thread.  (The algorithm is
// actually Vyukov's MPMC and would tolerate several consumers, but the
// server never needs that and the single-consumer contract keeps pop() free
// of CAS retries on the hot path.)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "support/assert.hpp"

namespace ilp {

template <typename T>
class MpscRing {
 public:
  // `capacity` is rounded up to the next power of two (minimum 2).
  explicit MpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cap_mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      slots_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return cap_mask_ + 1; }

  // Multi-producer push.  Returns false when the ring is full (the element
  // is NOT consumed; the caller still owns `v`).
  bool try_push(T& v) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & cap_mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        // Slot is free for this ticket; claim it.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
        // Lost the race; `pos` was reloaded by compare_exchange.
      } else if (dif < 0) {
        // The consumer has not recycled this slot yet: ring is full.  Reload
        // the head once to distinguish "full" from "stale pos" — if head
        // moved we simply retry with the fresh value.
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        if (head == pos) return false;
        pos = head;
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    Slot& slot = slots_[pos & cap_mask_];
    slot.value = std::move(v);
    slot.seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool try_push(T&& v) { return try_push(v); }

  // Single-consumer pop.  Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & cap_mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1) < 0)
      return false;  // producer has not published this slot yet
    ILP_ASSERT(seq == pos + 1, "MpscRing: second consumer detected");
    out = std::move(slot.value);
    slot.value = T{};  // drop payload refs eagerly (Ts carry shared_ptrs)
    slot.seq.store(pos + cap_mask_ + 1, std::memory_order_release);
    tail_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  // Instantaneous occupancy estimate (racy by nature; for gauges only).
  [[nodiscard]] std::size_t size_approx() const {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    return head >= tail ? static_cast<std::size_t>(head - tail) : 0;
  }

  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  alignas(64) std::atomic<std::uint64_t> head_{0};  // producers' claim cursor
  // Single-consumer cursor; atomic (relaxed) only so gauges on other threads
  // can read it without a data race.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::unique_ptr<Slot[]> slots_;
  std::size_t cap_mask_ = 0;
};

}  // namespace ilp
