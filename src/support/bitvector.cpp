#include "support/bitvector.hpp"

#include <bit>

namespace ilp {

void BitVector::resize(std::size_t nbits, bool value) {
  const std::size_t old_bits = nbits_;
  nbits_ = nbits;
  words_.resize(word_count(nbits), value ? ~0ull : 0ull);
  if (value && old_bits < nbits && old_bits % 64 != 0) {
    // Fill the tail of the previously-partial word.
    words_[old_bits >> 6] |= ~((1ull << (old_bits % 64)) - 1);
  }
  clear_padding();
}

BitVector& BitVector::operator|=(const BitVector& o) {
  ILP_ASSERT(nbits_ == o.nbits_, "BitVector size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& o) {
  ILP_ASSERT(nbits_ == o.nbits_, "BitVector size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

BitVector& BitVector::subtract(const BitVector& o) {
  ILP_ASSERT(nbits_ == o.nbits_, "BitVector size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

bool BitVector::any() const {
  for (auto w : words_)
    if (w != 0) return true;
  return false;
}

std::size_t BitVector::count() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

}  // namespace ilp
