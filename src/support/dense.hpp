// Epoch-stamped dense maps and sets keyed by small integers.
//
// The pass pipeline keys nearly all of its scratch by RegKey (dense register
// index) or instruction uid.  A dense array beats unordered_map for these:
// O(1) with no hashing, no nodes, perfect locality — and an epoch stamp makes
// clear() O(1), so one map instance serves thousands of compiles without
// re-zeroing.  Slots auto-grow: passes allocate fresh registers mid-flight,
// so the key universe expands while a map is live.
//
// Determinism note: these structures are deliberately iteration-free.  A pass
// that needs to walk its keys keeps an explicit key list (program order),
// which is exactly what keeps codegen independent of container layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace ilp {

template <typename V>
class DenseMap {
 public:
  // O(1) amortized: bumps the epoch; slot stamps go stale wholesale.
  void clear() {
    if (++epoch_ == 0) {  // wraparound after 2^32 clears: hard-reset stamps
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
    count_ = 0;
  }

  void reserve(std::size_t nkeys) {
    if (nkeys > stamp_.size()) {
      stamp_.resize(nkeys, 0u);
      vals_.resize(nkeys);
    }
  }

  [[nodiscard]] bool contains(std::size_t k) const {
    return k < stamp_.size() && stamp_[k] == epoch_;
  }

  [[nodiscard]] const V* find(std::size_t k) const {
    return contains(k) ? &vals_[k] : nullptr;
  }
  [[nodiscard]] V* find(std::size_t k) {
    return contains(k) ? &vals_[k] : nullptr;
  }

  [[nodiscard]] V get_or(std::size_t k, V fallback) const {
    const V* v = find(k);
    return v != nullptr ? *v : fallback;
  }

  // Inserts a default-constructed value on first touch this epoch.
  V& operator[](std::size_t k) {
    reserve(k + 1);
    if (stamp_[k] != epoch_) {
      stamp_[k] = epoch_;
      vals_[k] = V{};
      ++count_;
    }
    return vals_[k];
  }

  void erase(std::size_t k) {
    if (contains(k)) {
      stamp_[k] = epoch_ - 1;
      --count_;
    }
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

 private:
  std::vector<V> vals_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 1;
  std::size_t count_ = 0;
};

class DenseSet {
 public:
  void clear() {
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
    count_ = 0;
  }

  void reserve(std::size_t nkeys) {
    if (nkeys > stamp_.size()) stamp_.resize(nkeys, 0u);
  }

  [[nodiscard]] bool contains(std::size_t k) const {
    return k < stamp_.size() && stamp_[k] == epoch_;
  }

  // Returns true when k was newly inserted this epoch.
  bool insert(std::size_t k) {
    reserve(k + 1);
    if (stamp_[k] == epoch_) return false;
    stamp_[k] = epoch_;
    ++count_;
    return true;
  }

  void erase(std::size_t k) {
    if (contains(k)) {
      stamp_[k] = epoch_ - 1;
      --count_;
    }
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 1;
  std::size_t count_ = 0;
};

}  // namespace ilp
