// Monotonic bump-arena allocation for pass-local scratch.
//
// The transformation pipeline runs a dozen passes per compile, each of which
// used to build (and tear down) its own heap-backed scratch: unordered maps,
// returned vectors, per-block bit-vector arrays.  Under service traffic that
// churn dominated the compile phase.  The cure is the classic one (LoopModels
// uses the same shape): allocate pass scratch from a bump arena that is
// *reset*, not freed, between compiles, so the warm path touches only memory
// it already owns.
//
// Three pieces live here:
//   Arena         chunked bump allocator with O(1) scoped checkpoints
//   ArenaVector   push_back-only vector of trivially-copyable T in an Arena
//   ScratchBuffer reusable std::vector<T> that is cleared, never shrunk
//
// None of these run element destructors: Arena/ArenaVector are restricted to
// trivially destructible types (enforced at compile time).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace ilp {

class Arena {
 public:
  explicit Arena(std::size_t first_chunk_bytes = 64 * 1024)
      : first_chunk_bytes_(first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* alloc(std::size_t bytes, std::size_t align) {
    ILP_ASSERT((align & (align - 1)) == 0, "Arena alignment must be a power of two");
    while (cur_ < chunks_.size()) {
      Chunk& c = chunks_[cur_];
      const std::size_t base = (c.used + align - 1) & ~(align - 1);
      if (base + bytes <= c.size) {
        c.used = base + bytes;
        live_bytes_ += bytes;
        if (live_bytes_ > high_water_) high_water_ = live_bytes_;
        return c.data.get() + base;
      }
      ++cur_;
      if (cur_ < chunks_.size()) chunks_[cur_].used = 0;
    }
    // Need a new chunk: double the last size, but always fit the request.
    std::size_t want = chunks_.empty() ? first_chunk_bytes_ : chunks_.back().size * 2;
    if (want < bytes + align) want = bytes + align;
    chunks_.push_back(Chunk{std::make_unique<char[]>(want), want, 0});
    cur_ = chunks_.size() - 1;
    return alloc(bytes, align);
  }

  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(alloc(n * sizeof(T), alignof(T)));
  }

  // Scoped checkpoint: everything allocated after mark() is reclaimed by
  // rewind() in O(1).  Chunks are retained.
  struct Marker {
    std::size_t chunk = 0;
    std::size_t used = 0;
    std::size_t live = 0;
  };
  [[nodiscard]] Marker mark() const {
    return Marker{cur_, cur_ < chunks_.size() ? chunks_[cur_].used : 0, live_bytes_};
  }
  void rewind(const Marker& m) {
    cur_ = m.chunk;
    if (cur_ < chunks_.size()) chunks_[cur_].used = m.used;
    live_bytes_ = m.live;
  }

  class Scope {
   public:
    explicit Scope(Arena& a) : arena_(a), mark_(a.mark()) {}
    ~Scope() { arena_.rewind(mark_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Arena& arena_;
    Marker mark_;
  };

  // Forgets every allocation but keeps the chunks hot for the next compile.
  void reset() {
    cur_ = 0;
    if (!chunks_.empty()) chunks_[0].used = 0;
    live_bytes_ = 0;
  }

  [[nodiscard]] std::size_t live_bytes() const { return live_bytes_; }
  [[nodiscard]] std::size_t high_water_bytes() const { return high_water_; }
  [[nodiscard]] std::size_t reserved_bytes() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::size_t first_chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;
  std::size_t live_bytes_ = 0;
  std::size_t high_water_ = 0;
};

// Growable array of trivially-copyable T whose storage comes from an Arena.
// Reallocation abandons the old storage (reclaimed at the next reset/rewind);
// suited to short-lived pass-local lists, not long accumulations.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>,
                "ArenaVector requires trivial T");

 public:
  explicit ArenaVector(Arena& arena, std::size_t initial_capacity = 8)
      : arena_(&arena) {
    reserve(initial_capacity);
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ == 0 ? 8 : cap_ * 2);
    data_[size_++] = v;
  }
  void clear() { size_ = 0; }
  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& back() { return data_[size_ - 1]; }

 private:
  void grow(std::size_t n) {
    T* next = arena_->alloc_array<T>(n);
    if (size_ > 0) std::memcpy(next, data_, size_ * sizeof(T));
    data_ = next;
    cap_ = n;
  }

  Arena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

// A std::vector<T> that hands itself out cleared but never shrunk, so the
// borrower reuses the previous capacity.  One ScratchBuffer serves one
// borrow site (no nesting on the same buffer).
template <typename T>
class ScratchBuffer {
 public:
  std::vector<T>& acquire() {
    buf_.clear();
    return buf_;
  }
  [[nodiscard]] std::size_t capacity() const { return buf_.capacity(); }

 private:
  std::vector<T> buf_;
};

}  // namespace ilp
