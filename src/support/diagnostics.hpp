// Diagnostic reporting shared by the front end (syntax/semantic errors with
// source positions) and the pass pipeline (verifier failures).
#pragma once

#include <string>
#include <vector>

namespace ilp {

struct SourceLoc {
  int line = 0;    // 1-based; 0 means "no location"
  int column = 0;  // 1-based
};

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;
};

// Collects diagnostics; callers test has_errors() after each phase.
class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

  // Render "line:col: error: message" lines, one per diagnostic.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Diagnostic> diags_;
  int error_count_ = 0;
};

}  // namespace ilp
