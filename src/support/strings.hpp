// Small string/format helpers used by printers and report generators.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ilp {

// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Splits on a single character; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

// Left/right pads `s` with spaces to at least `width` characters.
std::string pad_right(std::string_view s, std::size_t width);
std::string pad_left(std::string_view s, std::size_t width);

// Escapes `s` for inclusion inside a double-quoted JSON string literal
// (quotes, backslashes, control characters).
std::string json_escape(std::string_view s);

}  // namespace ilp
