// Dense bit vector used by the dataflow analyses (liveness, reaching defs).
//
// Dataflow over loop bodies of a few thousand instructions dominates analysis
// time, so the set operations are word-parallel and allocation-free once
// sized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace ilp {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t nbits, bool value = false)
      : nbits_(nbits), words_(word_count(nbits), value ? ~0ull : 0ull) {
    clear_padding();
  }

  [[nodiscard]] std::size_t size() const { return nbits_; }
  [[nodiscard]] bool empty() const { return nbits_ == 0; }

  void resize(std::size_t nbits, bool value = false);

  [[nodiscard]] bool test(std::size_t i) const {
    ILP_ASSERT(i < nbits_, "BitVector::test out of range");
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) {
    ILP_ASSERT(i < nbits_, "BitVector::set out of range");
    words_[i >> 6] |= (1ull << (i & 63));
  }
  void reset(std::size_t i) {
    ILP_ASSERT(i < nbits_, "BitVector::reset out of range");
    words_[i >> 6] &= ~(1ull << (i & 63));
  }
  void set_all() {
    for (auto& w : words_) w = ~0ull;
    clear_padding();
  }
  void reset_all() {
    for (auto& w : words_) w = 0;
  }

  // Word-parallel set algebra; operands must be the same size.
  BitVector& operator|=(const BitVector& o);
  BitVector& operator&=(const BitVector& o);
  // this = this & ~o
  BitVector& subtract(const BitVector& o);

  [[nodiscard]] bool operator==(const BitVector& o) const {
    return nbits_ == o.nbits_ && words_ == o.words_;
  }
  [[nodiscard]] bool any() const;
  [[nodiscard]] std::size_t count() const;

  // Calls fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

 private:
  static std::size_t word_count(std::size_t nbits) { return (nbits + 63) / 64; }
  void clear_padding() {
    if (nbits_ % 64 != 0 && !words_.empty())
      words_.back() &= (1ull << (nbits_ % 64)) - 1;
  }

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ilp
