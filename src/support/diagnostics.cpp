#include "support/diagnostics.hpp"

#include <sstream>

namespace ilp {

void DiagnosticEngine::report(Severity sev, SourceLoc loc, std::string message) {
  if (sev == Severity::Error) ++error_count_;
  diags_.push_back(Diagnostic{sev, loc, std::move(message)});
}

std::string DiagnosticEngine::to_string() const {
  std::ostringstream os;
  for (const auto& d : diags_) {
    if (d.loc.line > 0) os << d.loc.line << ":" << d.loc.column << ": ";
    switch (d.severity) {
      case Severity::Note: os << "note: "; break;
      case Severity::Warning: os << "warning: "; break;
      case Severity::Error: os << "error: "; break;
    }
    os << d.message << "\n";
  }
  return os.str();
}

}  // namespace ilp
