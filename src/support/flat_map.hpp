// Open-addressed hash map from int64 keys to uint64 values, used on the hot
// paths that a node-based std::unordered_map dominates: the simulator's data
// memory and memory-readiness table (address -> cycle), and the dependence
// graph's duplicate-edge index ((from,to) -> edge id).
//
// Compared with std::unordered_map this avoids one heap allocation per entry
// and the pointer chase per probe: the table is a single flat array of
// (key, value) slots probed linearly.  Supports insert/overwrite and lookup
// only — no client erases, so tombstones are unnecessary.
//
// The hash is a policy: packed or adversarial keys want full avalanche
// (SplitMix64Hash), while keys that arrive in runs — the simulator's
// sequential array addresses — want a locality-preserving map so that
// consecutive keys land in consecutive slots and a linear scan of the keys
// is a linear scan of the table (ShiftHash).  With an avalanche hash a
// sequential sweep over a table bigger than the cache is one miss per
// access; with ShiftHash it is a hardware-prefetchable stride.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ilp {

// splitmix64 finalizer: full avalanche, so arbitrary keys spread evenly and
// linear probing stays near one slot per lookup.
struct SplitMix64Hash {
  std::size_t operator()(std::int64_t key) const {
    auto x = static_cast<std::uint64_t>(key);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

// Identity shifted by the key stride: keys Shift apart map to adjacent slots.
// Only for keys that are naturally spread (e.g. addresses); clustered key
// sets degrade to long linear probes.
template <unsigned Shift>
struct ShiftHash {
  std::size_t operator()(std::int64_t key) const {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(key) >> Shift);
  }
};

template <class Hash>
class BasicFlatMap64 {
 public:
  BasicFlatMap64() { rehash(kInitialCapacity); }

  // Inserts key -> value, overwriting any existing entry.
  void put(std::int64_t key, std::uint64_t value) {
    if ((size_ + 1) * 10 >= capacity_ * 7) rehash(capacity_ * 2);
    Slot& s = probe(key);
    if (!s.used) {
      s.used = true;
      s.key = key;
      ++size_;
    }
    s.value = value;
  }

  // Inserts key -> value only if absent.  Returns the value slot (existing or
  // new) and whether the insert happened; the pointer is valid until the next
  // mutating call.
  std::pair<std::uint64_t*, bool> try_emplace(std::int64_t key, std::uint64_t value) {
    if ((size_ + 1) * 10 >= capacity_ * 7) rehash(capacity_ * 2);
    Slot& s = probe(key);
    if (s.used) return {&s.value, false};
    s.used = true;
    s.key = key;
    s.value = value;
    ++size_;
    return {&s.value, true};
  }

  // Grows the table so `n` entries fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = capacity_;
    while ((n + 1) * 10 >= cap * 7) cap *= 2;
    if (cap != capacity_) rehash(cap);
  }

  // Returns a pointer to the value for `key`, or nullptr if absent.
  [[nodiscard]] const std::uint64_t* find(std::int64_t key) const {
    const Slot& s = const_cast<BasicFlatMap64*>(this)->probe(key);
    return s.used ? &s.value : nullptr;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  // Calls fn(key, value) for every entry, in unspecified order.
  template <class F>
  void for_each(F&& fn) const {
    for (const Slot& s : slots_)
      if (s.used) fn(s.key, s.value);
  }

  void clear() {
    for (Slot& s : slots_) s.used = false;
    size_ = 0;
  }

 private:
  struct Slot {
    std::int64_t key = 0;
    std::uint64_t value = 0;
    bool used = false;
  };

  static constexpr std::size_t kInitialCapacity = 64;  // power of two

  Slot& probe(std::int64_t key) {
    std::size_t i = Hash{}(key) & (capacity_ - 1);
    while (slots_[i].used && slots_[i].key != key) i = (i + 1) & (capacity_ - 1);
    return slots_[i];
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    capacity_ = new_capacity;
    slots_.assign(capacity_, Slot{});
    for (const Slot& s : old) {
      if (!s.used) continue;
      Slot& dst = probe(s.key);
      dst = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
};

using FlatHashMap64 = BasicFlatMap64<SplitMix64Hash>;

}  // namespace ilp
