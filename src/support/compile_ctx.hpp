// Per-thread compile state: one arena plus every pass's reusable scratch.
//
// A CompileContext owns the memory the transformation pipeline works in.  It
// is reset — never freed — between compiles, so a warm context compiles with
// near-zero heap traffic: the arena bump-resets, dense maps bump an epoch,
// pooled analysis storage (CFG adjacency, liveness rows) is recycled by the
// next construction.  The engine's worker threads and ilpd's request jobs
// each get one automatically via CompileContext::local(), which is how
// service requests reuse hot memory across compiles.
//
// Pass scratch is held in type-erased PassSlots keyed by pass name, so each
// pass keeps its state struct private to its own .cpp: the first use in a
// context constructs it, later compiles reuse it.  Analyses that can nest
// (ivopt builds a Cfg while another Cfg is live) stash their storage in a
// StoragePool, whose take()/give() degrades gracefully to a fresh object
// when the pooled one is already borrowed.
//
// Determinism contract: nothing in this header may influence pass *output* —
// only where scratch lives.  The pipeline's golden test
// (tests/trans/pipeline_golden_test.cpp) pins byte-identical IR against the
// pre-arena implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "support/arena.hpp"

namespace ilp {

// One type-erased, lazily-constructed state object.  Each slot is owned by
// exactly one pass, which always instantiates it at the same type.
class PassSlot {
 public:
  PassSlot() = default;
  PassSlot(const PassSlot&) = delete;
  PassSlot& operator=(const PassSlot&) = delete;
  ~PassSlot() {
    if (ptr_ != nullptr) destroy_(ptr_);
  }

  template <typename T>
  T& get() {
    if (ptr_ == nullptr) {
      ptr_ = new T();
      destroy_ = [](void* p) { delete static_cast<T*>(p); };
    }
    return *static_cast<T*>(ptr_);
  }

 private:
  void* ptr_ = nullptr;
  void (*destroy_)(void*) = nullptr;
};

// Recycles one instance of a storage aggregate between constructions of the
// same analysis.  take() hands out the pooled instance (capacity intact) or
// a default-constructed one when the pool is empty/borrowed; give() returns
// it.  Nested borrowers simply miss the pool — correct, just colder.
template <typename T>
class StoragePool {
 public:
  [[nodiscard]] T take() {
    T out = std::move(store_);
    store_ = T{};
    return out;
  }
  void give(T&& v) { store_ = std::move(v); }

 private:
  T store_;
};

class CompileContext {
 public:
  CompileContext() = default;
  CompileContext(const CompileContext&) = delete;
  CompileContext& operator=(const CompileContext&) = delete;

  // The calling thread's pooled context.  Worker threads in the engine pool
  // (and therefore ilpd request jobs) land here, so every compile on a warm
  // thread reuses the previous compile's memory.
  static CompileContext& local() {
    thread_local CompileContext ctx;
    return ctx;
  }

  Arena& arena() { return arena_; }

  // Marks the start of one compile: reclaims all arena memory (keeping the
  // chunks) and counts the compile for stats.
  void begin_compile() {
    arena_.reset();
    ++compiles_;
  }

  [[nodiscard]] std::uint64_t compiles() const { return compiles_; }
  [[nodiscard]] std::size_t arena_high_water_bytes() const {
    return arena_.high_water_bytes();
  }

  // One slot per pass/analysis; see the owning .cpp for each state type.
  PassSlot cfg;
  PassSlot liveness;
  PassSlot reaching;
  PassSlot constprop;
  PassSlot copyprop;
  PassSlot cse;
  PassSlot dce;
  PassSlot licm;
  PassSlot ivopt;
  PassSlot rename;
  PassSlot accexpand;
  PassSlot indexpand;
  PassSlot searchexpand;
  PassSlot treeheight;
  PassSlot unroll;
  PassSlot scheduler;
  PassSlot regalloc;

 private:
  Arena arena_;
  std::uint64_t compiles_ = 0;
};

}  // namespace ilp
