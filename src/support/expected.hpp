// Minimal expected-style result type (C++20; std::expected is C++23).
//
// Used by the experiment harness so a malformed workload or a failing
// simulation fails *its* study cell with a recorded message instead of
// ILP_ASSERT-aborting the whole 800-cell sweep.  Deliberately tiny: value or
// error string, no monadic interface.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "support/assert.hpp"

namespace ilp {

struct Error {
  std::string message;
};

template <typename T>
class Expected {
 public:
  Expected(T value) : v_(std::move(value)) {}                 // NOLINT(implicit)
  Expected(Error error) : v_(std::move(error)) {}             // NOLINT(implicit)

  [[nodiscard]] bool has_value() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] T& value() {
    ILP_ASSERT(has_value(), error_message().c_str());
    return std::get<T>(v_);
  }
  [[nodiscard]] const T& value() const {
    ILP_ASSERT(has_value(), error_message().c_str());
    return std::get<T>(v_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  [[nodiscard]] const std::string& error_message() const {
    static const std::string ok = "(no error)";
    return has_value() ? ok : std::get<Error>(v_).message;
  }

 private:
  std::variant<T, Error> v_;
};

}  // namespace ilp
