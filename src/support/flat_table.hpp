// Open-addressed hash table with epoch-stamped O(1) clear.
//
// Generalizes flat_map.hpp's int64-keyed map to arbitrary POD keys: slots
// store the full key and resolve probe collisions by comparing it, so lookup
// semantics are exactly std::map::find (exact key or nothing) — a hash
// collision can never merge two distinct keys.  Like DenseMap, clear() bumps
// an epoch instead of touching slots, so one instance amortizes across every
// block of every compile.  The table is insert/lookup-only by design — no
// iteration — which keeps pass output independent of hash layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace ilp {

template <typename K, typename V, typename Hash>
class FlatTable {
 public:
  explicit FlatTable(std::size_t initial_capacity = 64) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap *= 2;
    slots_.resize(cap);
  }

  void clear() {
    if (++epoch_ == 0) {
      for (Slot& s : slots_) s.stamp = 0;
      epoch_ = 1;
    }
    size_ = 0;
  }

  [[nodiscard]] V* find(const K& key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key) & mask;
    while (true) {
      Slot& s = slots_[i];
      if (s.stamp != epoch_) return nullptr;
      if (s.key == key) return &s.val;
      i = (i + 1) & mask;
    }
  }

  void insert_or_assign(const K& key, const V& val) {
    if ((size_ + 1) * 10 >= slots_.size() * 7) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key) & mask;
    while (true) {
      Slot& s = slots_[i];
      if (s.stamp != epoch_) {
        s.stamp = epoch_;
        s.key = key;
        s.val = val;
        ++size_;
        return;
      }
      if (s.key == key) {
        s.val = val;
        return;
      }
      i = (i + 1) & mask;
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  struct Slot {
    K key{};
    V val{};
    std::uint32_t stamp = 0;
  };

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const std::uint32_t live = epoch_;
    epoch_ = 1;
    size_ = 0;
    for (Slot& s : old)
      if (s.stamp == live) insert_or_assign(s.key, s.val);
  }

  std::vector<Slot> slots_;
  std::uint32_t epoch_ = 1;
  std::size_t size_ = 0;
};

}  // namespace ilp
