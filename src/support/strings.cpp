#include "support/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace ilp {

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.append(width - s.size(), ' ');
  out.append(s);
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace ilp
