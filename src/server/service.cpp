#include "server/service.hpp"

#include <cinttypes>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "engine/trace.hpp"
#include "frontend/compile.hpp"
#include "harness/cache_key.hpp"
#include "harness/experiment.hpp"
#include "obs/context.hpp"
#include "obs/log.hpp"
#include "obs/prometheus.hpp"
#include "regalloc/regalloc.hpp"
#include "sim/simulator.hpp"
#include "support/strings.hpp"
#include "tune/tune.hpp"
#include "workloads/suite.hpp"

namespace ilp::server {

// Future value of one admitted cell; errors are values, never exceptions, so
// cleanup and accounting stay on one code path.
struct Service::CellOutcome {
  bool ok = false;
  ErrorKind err = ErrorKind::Internal;
  std::string message;
  CompileResponse resp;
};

struct Service::Inflight {
  std::shared_future<CellOutcome> future;
  // Cancellation hook for pool-executed cells; null when the cell runs
  // inline on a shard worker (an inline cell has started by definition, and
  // running cells are never interrupted).
  std::shared_ptr<engine::JobGroup> group;
  std::atomic<int> waiters{1};
};

// Per-request observability state, shared between the handler thread and the
// pool job (the job can outlive the handler when a deadline fires, so this
// is reference-counted, and the trace recorder lives here).
struct Service::RequestObs {
  std::string id;
  engine::Stopwatch wall;  // started at handle_line entry
  std::shared_ptr<engine::TraceRecorder> recorder;  // null unless traced
  obs::RequestContext ctx;

  explicit RequestObs(std::string rid, bool traced) : id(std::move(rid)) {
    if (traced) {
      recorder = std::make_shared<engine::TraceRecorder>();
      recorder->enable();
    }
    ctx.request_id = id;
    ctx.sink = recorder.get();
  }
};

namespace {

using Clock = std::chrono::steady_clock;

std::optional<ErrorKind> parse_error_kind(std::string_view name) {
  for (const ErrorKind k :
       {ErrorKind::BadRequest, ErrorKind::Overloaded, ErrorKind::ShuttingDown,
        ErrorKind::DeadlineExceeded, ErrorKind::CompileError, ErrorKind::SimError,
        ErrorKind::Internal})
    if (name == error_kind_name(k)) return k;
  return std::nullopt;
}

// Cache payload schema for one served cell.  Versioned like the study cells:
// an unknown prefix (including pre-observability "ilpd-v1"/"ilpd-v2" entries,
// "ilpd-v3" ones, which lack the nest-restructuring counters, and "ilpd-v4"
// ones, which lack the stall-accounting tail) decodes as a miss, never as
// garbage.  The v5 tail is the ProfileSummary: width, cycles, the six
// per-cause slot totals, then the occupancy histogram (count-prefixed).
std::string encode_cell(const Service::CellOutcome& c) {
  if (!c.ok)
    return strformat("ilpd-v5 err %s %s", error_kind_name(c.err), c.message.c_str());
  const CompileResponse& r = c.resp;
  const TransformStats& t = r.transforms;
  std::string s =
      strformat("ilpd-v5 ok %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                " %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %zu %zu"
                " %d %d %d %d %d %d %d",
                r.cycles, r.base_cycles, r.dynamic_instructions, r.stall_cycles,
                r.static_instructions, r.blocks, r.int_regs, r.fp_regs,
                t.loops_unrolled, t.regs_renamed, t.accs_expanded,
                t.inds_expanded, t.searches_expanded, t.ops_combined,
                t.strength_reduced, t.trees_rebalanced, t.loops_interchanged,
                t.loops_fused, t.loops_fissioned, t.loops_tiled,
                t.ir_insts_before, t.ir_insts_after, static_cast<int>(r.scheduler),
                t.modulo.loops_pipelined, t.modulo.loops_fallback,
                t.modulo.backtracks, t.modulo.min_ii_sum,
                t.modulo.achieved_ii_sum, t.modulo.max_stages);
  const ProfileSummary& p = r.profile;
  s += strformat(" %d %" PRIu64, p.width, p.cycles);
  for (const std::uint64_t v : p.slots) s += strformat(" %" PRIu64, v);
  s += strformat(" %zu", p.occupancy.size());
  for (const std::uint64_t v : p.occupancy) s += strformat(" %" PRIu64, v);
  return s;
}

bool decode_cell(const std::string& payload, Service::CellOutcome& out) {
  if (payload.rfind("ilpd-v5 err ", 0) == 0) {
    const std::string rest = payload.substr(12);
    const std::size_t sp = rest.find(' ');
    if (sp == std::string::npos) return false;
    const auto kind = parse_error_kind(rest.substr(0, sp));
    if (!kind) return false;
    out = Service::CellOutcome{};
    out.err = *kind;
    out.message = rest.substr(sp + 1);
    return true;
  }
  Service::CellOutcome c;
  CompileResponse& r = c.resp;
  TransformStats& t = r.transforms;
  int sched_kind = 0;
  int consumed = 0;
  if (std::sscanf(payload.c_str(),
                  "ilpd-v5 ok %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                  " %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %zu %zu"
                  " %d %d %d %d %d %d %d%n",
                  &r.cycles, &r.base_cycles, &r.dynamic_instructions, &r.stall_cycles,
                  &r.static_instructions, &r.blocks, &r.int_regs, &r.fp_regs,
                  &t.loops_unrolled, &t.regs_renamed, &t.accs_expanded,
                  &t.inds_expanded, &t.searches_expanded, &t.ops_combined,
                  &t.strength_reduced, &t.trees_rebalanced, &t.loops_interchanged,
                  &t.loops_fused, &t.loops_fissioned, &t.loops_tiled,
                  &t.ir_insts_before, &t.ir_insts_after, &sched_kind,
                  &t.modulo.loops_pipelined, &t.modulo.loops_fallback,
                  &t.modulo.backtracks, &t.modulo.min_ii_sum,
                  &t.modulo.achieved_ii_sum, &t.modulo.max_stages, &consumed) != 29)
    return false;
  const char* q = payload.c_str() + consumed;
  auto next_u64 = [&q](std::uint64_t& v) {
    char* end = nullptr;
    v = std::strtoull(q, &end, 10);
    if (end == q) return false;
    q = end;
    return true;
  };
  ProfileSummary& p = r.profile;
  std::uint64_t width = 0, occ_count = 0;
  if (!next_u64(width) || !next_u64(p.cycles)) return false;
  p.width = static_cast<int>(width);
  for (std::uint64_t& v : p.slots)
    if (!next_u64(v)) return false;
  // Occupancy is width + 1 bins by construction; a tail claiming more is a
  // corrupt payload, not a larger machine.
  if (!next_u64(occ_count) || occ_count != width + 1) return false;
  p.occupancy.resize(occ_count);
  for (std::uint64_t& v : p.occupancy)
    if (!next_u64(v)) return false;
  r.scheduler = sched_kind == 1 ? SchedulerKind::Modulo : SchedulerKind::List;
  c.ok = true;
  r.have_transforms = true;
  r.speedup = r.cycles == 0 ? 0.0
                            : static_cast<double>(r.base_cycles) /
                                  static_cast<double>(r.cycles);
  out = c;
  return true;
}

// Content hash of one service cell; doubles as the in-flight coalescing key
// and (mixed) as the shard-routing key.
std::uint64_t cell_key(const std::string& source, OptLevel level,
                       const std::optional<TransformSet>& transforms,
                       const NestOptions& nest, SchedulerKind scheduler, int issue,
                       int unroll, std::int64_t debug_sleep_ms) {
  // Delegates to the shared versioned salt builder (harness/cache_key.hpp)
  // so autotune candidate evaluations and compile requests for identical
  // work land on the same cache entry, and a new knob bumps this key, the
  // study key and the hot tier together.
  return service_cell_key(source, level, transforms, nest, scheduler, issue, unroll,
                          debug_sleep_ms);
}

// Deadline-aware sleep used by debug_sleep_ms: wakes early on cancellation
// so drains and deadline tests settle promptly.
void interruptible_sleep(std::int64_t ms, const engine::JobGroup& group) {
  const auto until = Clock::now() + std::chrono::milliseconds(ms);
  while (Clock::now() < until && !group.cancel_requested())
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
}

// Content hash of one autotune search: source + every search knob, salted in
// the shared version domain so a knob bump rolls the whole-result cache over
// with the cells.
std::uint64_t tune_request_key(const std::string& source, const AutotuneRequest& a) {
  engine::HashStream h;
  hash_domain_salt(h, "ilpd-tune");
  h.str(source);
  h.i32(a.issue).i32(a.beam).i32(a.rounds).i32(a.max_sims);
  std::uint64_t frac_bits = 0;
  static_assert(sizeof(frac_bits) == sizeof(a.sim_fraction));
  std::memcpy(&frac_bits, &a.sim_fraction, sizeof(frac_bits));
  h.u64(frac_bits);
  h.boolean(a.cost_model);
  return h.digest();
}

// Cache payload prefix for whole autotune results: the stored body is the
// "tune-result-v1" JSON object, replayed verbatim on a warm hit.
constexpr std::string_view kTunePayloadPrefix = "ilpd-tune-v1 ";

}  // namespace

// Conv @ issue-1 cycles of `source` — the paper's speedup baseline.  Cached
// under its own key: every level/width of the same source shares one entry.
std::uint64_t Service::base_cycles_for(const std::string& source) {
  engine::HashStream h;
  h.str("ilpd-base-v1");
  h.str(source);
  const std::uint64_t key = h.digest();
  engine::ResultCache& cache = cache_for(key);
  if (auto payload = cache.lookup(key)) {
    std::uint64_t cycles = 0;
    if (std::sscanf(payload->c_str(), "%" SCNu64, &cycles) == 1) return cycles;
    cache.invalidate(key);
  }
  Workload w;
  w.name = "adhoc";
  w.source = source;
  std::uint64_t cycles = 0;
  auto compiled = try_compile_workload(w, OptLevel::Conv, MachineModel::issue(1));
  if (compiled) {
    auto sim = try_simulate_cycles(compiled->fn, MachineModel::issue(1));
    if (sim) cycles = *sim;
  }
  cache.store(key, strformat("%" PRIu64, cycles));
  return cycles;
}

// Compile + simulate one cell (no cache, no accounting — callers own both).
// Phase wall times land in the server.phase.* histograms; the transformation
// counters land in the response.
Service::CellOutcome Service::compute_cell(
    const std::string& source, OptLevel level,
    const std::optional<TransformSet>& transforms, const NestOptions& nest,
    SchedulerKind scheduler, int issue, int unroll) {
  static obs::Histogram& compile_hist =
      engine::MetricsRegistry::global().histogram("server.phase.compile");
  static obs::Histogram& schedule_hist =
      engine::MetricsRegistry::global().histogram("server.phase.schedule");
  static obs::Histogram& simulate_hist =
      engine::MetricsRegistry::global().histogram("server.phase.simulate");

  Service::CellOutcome out;
  const MachineModel m = MachineModel::issue(issue);
  CompileOptions opts;
  opts.unroll.max_factor = unroll;
  opts.nest = nest;
  opts.scheduler = scheduler;

  TransformStats tstats;
  engine::Stopwatch compile_watch;
  Function fn{"x"};
  if (transforms) {
    DiagnosticEngine diags;
    auto r = dsl::compile(source, diags);
    if (!r) {
      out.err = ErrorKind::CompileError;
      out.message = diags.to_string();
      return out;
    }
    try {
      compile_with_transforms(r->fn, *transforms, m, opts, &tstats);
    } catch (const std::exception& e) {
      out.err = ErrorKind::CompileError;
      out.message = e.what();
      return out;
    }
    fn = std::move(r->fn);
  } else {
    Workload w;
    w.name = "adhoc";
    w.source = source;
    auto compiled = try_compile_workload(w, level, m, opts, &tstats);
    if (!compiled) {
      out.err = ErrorKind::CompileError;
      out.message = compiled.error_message();
      return out;
    }
    fn = std::move(compiled->fn);
  }
  compile_hist.record(compile_watch.nanos());
  schedule_hist.record(tstats.schedule_ns);

  const RegUsage regs = measure_register_usage(fn);
  engine::Stopwatch sim_watch;
  // Every executed cell is profiled: the daemon-lifetime accumulators behind
  // the `profile` verb and the sim_stall_slots_total exposition sum over all
  // cells, and {"profile": true} responses serialize the summary straight
  // out of the cache entry.  A profiled run is observably identical to an
  // unprofiled one (SimOptions::profile contract), so the cell key does not
  // include the flag and coalescing/caching work across it.
  CycleProfile profile;
  std::vector<IssueEvent> issue_events;
  SimOptions sim_opts;
  sim_opts.profile = &profile;
  const obs::RequestContext* rc = obs::current_request();
  const bool lanes = rc != nullptr && rc->sink != nullptr;
  if (lanes) sim_opts.trace = &issue_events;
  const RunOutcome run = [&] {
    obs::SpanScope span("simulate", "sim");
    return run_seeded(fn, m, sim_opts);
  }();
  simulate_hist.record(sim_watch.nanos());
  if (!run.result.ok) {
    out.err = ErrorKind::SimError;
    out.message = run.result.error;
    return out;
  }
  accumulate_profile(profile);
  if (lanes && !issue_events.empty()) {
    // Per-request Chrome trace: render the (trace_limit-bounded) issue window
    // as one lane per slot.  Slot index is the event's position within its
    // cycle — the trace records issues in order, so a cycle's events arrive
    // consecutively.
    std::unordered_map<std::uint32_t, Opcode> op_of;
    for (const Block& b : fn.blocks())
      for (const Instruction& in : b.insts) op_of.emplace(in.uid, in.op);
    std::uint64_t cur_cycle = ~std::uint64_t{0};
    int slot = 0;
    for (const IssueEvent& e : issue_events) {
      if (e.cycle != cur_cycle) {
        cur_cycle = e.cycle;
        slot = 0;
      }
      const auto it = op_of.find(e.uid);
      rc->sink->record_issue_slot(
          it != op_of.end() ? opcode_name(it->second) : "?", e.cycle, slot++,
          rc->request_id);
    }
  }

  out.ok = true;
  CompileResponse& r = out.resp;
  r.profile = ProfileSummary::from(profile);
  r.cycles = run.result.cycles;
  r.dynamic_instructions = run.result.instructions;
  r.stall_cycles = run.result.stall_cycles;
  r.static_instructions = static_cast<int>(fn.num_insts());
  r.blocks = static_cast<int>(fn.num_blocks());
  r.int_regs = regs.int_regs;
  r.fp_regs = regs.fp_regs;
  r.have_transforms = true;
  r.transforms = tstats;
  r.scheduler = scheduler;
  r.base_cycles = base_cycles_for(source);
  r.speedup = r.cycles == 0 ? 0.0
                            : static_cast<double>(r.base_cycles) /
                                  static_cast<double>(r.cycles);
  return out;
}

// --- Autotune plumbing ------------------------------------------------------

// Future value of one whole autotune search (the coalescing unit).
struct Service::TuneOutcome {
  bool ok = false;
  ErrorKind err = ErrorKind::Internal;
  std::string message;
  std::string result_json;  // "tune-result-v1" object when ok
  bool stopped_early = false;
};

struct Service::TuneInflight {
  std::shared_future<TuneOutcome> future;
};

// Evaluation backend bridging the tuner onto the service.  Candidate
// measurements run as shard-pinned pool jobs keyed with the compile verb's
// cell key, so autotune traffic and compile traffic for identical work share
// one cache entry — and one execution.  Batches return in submission-index
// order, preserving the tuner's determinism contract; batch wall times land
// in the tune.phase.* histograms that stats_json and loadgen report.
class Service::TuneEvaluator final : public tune::Evaluator {
 public:
  TuneEvaluator(Service& svc, std::shared_ptr<RequestObs> ro)
      : svc_(svc), ro_(std::move(ro)) {}

  std::vector<Analysis> analyze(const std::string& source, int issue,
                                const std::vector<tune::TuneConfig>& cfgs) override {
    static obs::Histogram& search_hist =
        engine::MetricsRegistry::global().histogram("tune.phase.search");
    engine::Stopwatch wall;
    const MachineModel m = MachineModel::issue(issue);
    std::vector<std::future<Analysis>> futures;
    futures.reserve(cfgs.size());
    for (const tune::TuneConfig& c : cfgs)
      futures.push_back(svc_.pool_->submit([this, &source, &m, c]() -> Analysis {
        obs::RequestScope scope(&ro_->ctx);
        const std::string label = "analyze " + c.name();
        obs::SpanScope span(label, "tune");
        Analysis a;
        Workload w;
        w.name = "tune";
        w.source = source;
        auto compiled =
            try_compile_workload(w, c.level, m, tune::to_compile_options(c));
        if (!compiled) {
          a.error = compiled.error_message();
          return a;
        }
        a.ok = true;
        a.features = tune::extract_features(compiled->fn, m);
        return a;
      }));
    std::vector<Analysis> out(cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) out[i] = futures[i].get();
    search_hist.record(wall.nanos());
    return out;
  }

  std::vector<Measurement> measure(const std::string& source, int issue,
                                   const std::vector<tune::TuneConfig>& cfgs) override {
    static obs::Histogram& simulate_hist =
        engine::MetricsRegistry::global().histogram("tune.phase.simulate");
    engine::Stopwatch wall;
    std::vector<std::future<Measurement>> futures;
    futures.reserve(cfgs.size());
    for (const tune::TuneConfig& c : cfgs) {
      const std::uint64_t key = cell_key(source, c.level, std::nullopt, c.nest,
                                         c.scheduler, issue, c.unroll, 0);
      futures.push_back(svc_.pool_->submit_pinned(
          static_cast<unsigned>(svc_.shard_index(key)),
          [this, &source, issue, c, key]() -> Measurement {
            obs::RequestScope scope(&ro_->ctx);
            const std::string label = "measure " + c.name();
            obs::SpanScope span(label, "tune");
            engine::ResultCache& cache = svc_.cache_for(key);
            if (auto payload = cache.lookup(key)) {
              CellOutcome hit;
              if (decode_cell(*payload, hit))
                return to_measurement(hit, /*cache_hit=*/true);
              cache.invalidate(key);
            }
            CellOutcome out = svc_.compute_cell(source, c.level, std::nullopt,
                                                c.nest, c.scheduler, issue,
                                                c.unroll);
            cache.store(key, encode_cell(out));
            svc_.bump(kCellsExecuted);
            return to_measurement(out, /*cache_hit=*/false);
          }));
    }
    std::vector<Measurement> out(cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) out[i] = futures[i].get();
    simulate_hist.record(wall.nanos());
    return out;
  }

 private:
  // Converts a service cell into the tuner's measurement, enforcing the
  // conservation identity on the cached ProfileSummary — a result whose slot
  // accounting does not close must never rank, let alone win.
  static Measurement to_measurement(const CellOutcome& cell, bool cache_hit) {
    Measurement m;
    m.cache_hit = cache_hit;
    if (!cell.ok) {
      m.error = cell.message;
      return m;
    }
    const ProfileSummary& p = cell.resp.profile;
    std::uint64_t total = 0;
    for (const std::uint64_t v : p.slots) total += v;
    if (total != static_cast<std::uint64_t>(p.width) * p.cycles) {
      m.error = "profile summary conservation violated";
      return m;
    }
    m.ok = true;
    m.cycles = cell.resp.cycles;
    m.mem_wait =
        total == 0
            ? 0.0
            : static_cast<double>(
                  p.slots[static_cast<std::size_t>(StallCause::MemWait)]) /
                  static_cast<double>(total);
    return m;
  }

  Service& svc_;
  std::shared_ptr<RequestObs> ro_;
};

Service::Service(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      latency_hist_(
          engine::MetricsRegistry::global().histogram("server.request_latency")),
      queue_wait_hist_(
          engine::MetricsRegistry::global().histogram("server.queue_wait")) {
  workers_ = cfg_.workers;
  if (workers_ <= 0) workers_ = static_cast<int>(std::thread::hardware_concurrency());
  if (workers_ < 1) workers_ = 1;
  capacity_ = static_cast<std::size_t>(workers_) + cfg_.queue_limit;
  shards_.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    auto sh = std::make_unique<Shard>();
    // Shards partition the memory tier; the disk tier is one directory
    // shared by all of them (keys are globally unique, so partitions never
    // collide on a file, and a restart with a different worker count still
    // finds every entry).
    sh->cache = std::make_unique<engine::ResultCache>(cfg_.cache_dir);
    shards_.push_back(std::move(sh));
  }
  pool_ = std::make_unique<engine::ThreadPool>(static_cast<unsigned>(workers_));
  // Materialize the tune-phase histograms at boot so the exposition carries
  // them before the first autotune request (scrapes can --require-hist them).
  engine::MetricsRegistry::global().histogram("tune.phase.search");
  engine::MetricsRegistry::global().histogram("tune.phase.simulate");
  obs::log_info("service started",
                {obs::field("workers", workers_), obs::field("capacity", capacity_),
                 obs::field("shards", static_cast<int>(shards_.size())),
                 obs::field("cache_dir", cfg_.cache_dir),
                 obs::field("trace_dir", cfg_.trace_dir)});
}

Service::~Service() {
  // Jobs capture `this`; drain them while every member is still alive.
  pool_->shutdown();
}

std::size_t Service::shard_index(std::uint64_t key) const {
  // Fibonacci-mix the digest so structured keys still spread evenly.
  return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) %
         shards_.size();
}

void Service::hot_insert(Shard& sh, std::uint64_t key,
                         std::shared_ptr<const CompileBody> body) {
  if (cfg_.hot_entries_per_shard == 0) return;
  if (sh.hot.size() >= cfg_.hot_entries_per_shard) sh.hot.clear();
  sh.hot[key] = std::move(body);
}

void Service::begin_drain() {
  if (!draining_.exchange(true, std::memory_order_acq_rel))
    obs::log_info("drain started",
                  {obs::field("inflight_cells", inflight_cells())});
}

bool Service::draining() const { return draining_.load(std::memory_order_acquire); }

void Service::wait_drained() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drained_cv_.wait(lock, [this] {
    return inflight_cells_.load(std::memory_order_acquire) == 0;
  });
}

ServiceCounters Service::counters() const {
  auto get = [this](Counter c) {
    return counters_[c].load(std::memory_order_relaxed);
  };
  ServiceCounters c;
  c.received = get(kReceived);
  c.ok = get(kOk);
  c.bad_request = get(kBadRequest);
  c.overloaded = get(kOverloaded);
  c.shutting_down = get(kShuttingDown);
  c.deadline_exceeded = get(kDeadlineExceeded);
  c.compile_errors = get(kCompileErrors);
  c.internal_errors = get(kInternalErrors);
  c.coalesced = get(kCoalesced);
  c.cells_executed = get(kCellsExecuted);
  c.hot_hits = get(kHotHits);
  c.tune_requests = get(kTuneRequests);
  c.tune_cached = get(kTuneCached);
  c.tune_coalesced = get(kTuneCoalesced);
  c.tune_stopped_early = get(kTuneStoppedEarly);
  c.tune_candidates_simulated =
      tune_cand_simulated_.load(std::memory_order_relaxed);
  c.tune_candidates_pruned = tune_cand_pruned_.load(std::memory_order_relaxed);
  c.tune_candidate_cache_hits =
      tune_cand_cache_hits_.load(std::memory_order_relaxed);
  return c;
}

engine::CacheStats Service::cache_stats() const {
  engine::CacheStats total;
  for (const auto& sh : shards_) {
    const engine::CacheStats s = sh->cache->stats();
    total.hits += s.hits;
    total.disk_hits += s.disk_hits;
    total.misses += s.misses;
    total.invalid += s.invalid;
    total.stores += s.stores;
  }
  return total;
}

bool Service::try_admit(std::size_t n) {
  std::size_t cur = inflight_cells_.load(std::memory_order_relaxed);
  while (cur + n <= capacity_)
    if (inflight_cells_.compare_exchange_weak(cur, cur + n,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed))
      return true;
  return false;
}

void Service::settle_cells(std::size_t n) {
  if (inflight_cells_.fetch_sub(n, std::memory_order_acq_rel) == n) {
    // Notify under the drain lock so a waiter between its predicate check
    // and its sleep cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(drain_mu_);
    drained_cv_.notify_all();
  }
}

Service::ParsedRequest Service::parse_and_route(const std::string& line) const {
  ParsedRequest p;
  std::string error;
  p.req = parse_request(line, &error);
  if (!p.req) {
    p.parse_error = std::move(error);
    return p;
  }
  if (p.req->kind != RequestKind::Compile) return p;
  const CompileRequest& c = p.req->compile;
  if (!c.workload.empty()) {
    const Workload* w = find_workload(c.workload);
    if (w == nullptr) return p;  // source stays empty: bad_request downstream
    p.source = w->source;
  } else {
    p.source = c.source;
  }
  p.cell_key = cell_key(p.source, c.level, c.transforms, c.nest, c.scheduler,
                        c.issue, c.unroll, c.debug_sleep_ms);
  p.has_key = true;
  p.shard = shard_index(p.cell_key);
  return p;
}

Reply Service::serve(const std::string& line, std::uint64_t queued_ns) {
  return serve_parsed(parse_and_route(line), queued_ns);
}

Reply Service::serve_parsed(ParsedRequest p, std::uint64_t queued_ns) {
  auto flat = [](std::string s) {
    Reply r;
    r.flat = std::move(s);
    return r;
  };
  bump(kReceived);
  if (!p.req) {
    bump(kBadRequest);
    obs::Logger::global().warn_rate_limited(
        "bad_request", "request rejected: malformed line",
        {obs::field("error", p.parse_error)});
    return flat(serialize_error("null", ErrorKind::BadRequest, p.parse_error));
  }
  const Request& req = *p.req;
  switch (req.kind) {
    case RequestKind::Stats: {
      bump(kOk);
      return flat(serialize_stats_response(req.id_json, stats_json()));
    }
    case RequestKind::Metrics: {
      bump(kOk);
      return flat(serialize_metrics_response(req.id_json, metrics_exposition()));
    }
    case RequestKind::Profile: {
      // Like stats: answers during a drain so accounting stays observable.
      bump(kOk);
      return flat(serialize_profile_response(req.id_json, profile_json()));
    }
    case RequestKind::Compile:
    case RequestKind::Batch:
    case RequestKind::Autotune: {
      if (draining()) {
        bump(kShuttingDown);
        return flat(serialize_error(req.id_json, ErrorKind::ShuttingDown,
                                    "drain in progress; no new work accepted"));
      }
      const bool wants_trace =
          (req.kind == RequestKind::Compile && req.compile.trace) ||
          (req.kind == RequestKind::Autotune && req.autotune.trace);
      const bool traced = wants_trace && !cfg_.trace_dir.empty();
      auto ro = std::make_shared<RequestObs>(
          strformat("r-%" PRIu64,
                    request_seq_.fetch_add(1, std::memory_order_relaxed) + 1),
          traced);
      if (wants_trace && !traced)
        obs::Logger::global().warn_rate_limited(
            "trace_untraceable", "trace requested but no --trace-dir configured");
      obs::RequestScope scope(&ro->ctx);
      obs::log_debug(req.kind == RequestKind::Compile  ? "compile request"
                     : req.kind == RequestKind::Batch ? "batch request"
                                                      : "autotune request");
      Reply r;
      if (req.kind == RequestKind::Batch)
        r.flat = handle_batch(req);
      else if (req.kind == RequestKind::Autotune)
        r.flat = handle_autotune(req, ro);
      else if (traced)
        r.flat = handle_compile(req, ro);  // traces need the pool-span path
      else
        r = handle_compile_direct(p, ro, queued_ns);
      latency_hist_.record(ro->wall.nanos());
      return r;
    }
  }
  bump(kInternalErrors);
  return flat(
      serialize_error(req.id_json, ErrorKind::Internal, "unhandled request kind"));
}

std::string Service::handle_line(const std::string& line) {
  bump(kReceived);

  std::string error;
  const auto req = parse_request(line, &error);
  if (!req) {
    bump(kBadRequest);
    obs::Logger::global().warn_rate_limited(
        "bad_request", "request rejected: malformed line",
        {obs::field("error", error)});
    return serialize_error("null", ErrorKind::BadRequest, error);
  }

  switch (req->kind) {
    case RequestKind::Stats: {
      bump(kOk);
      return serialize_stats_response(req->id_json, stats_json());
    }
    case RequestKind::Metrics: {
      bump(kOk);
      return serialize_metrics_response(req->id_json, metrics_exposition());
    }
    case RequestKind::Profile: {
      bump(kOk);
      return serialize_profile_response(req->id_json, profile_json());
    }
    case RequestKind::Compile:
    case RequestKind::Batch:
    case RequestKind::Autotune: {
      if (draining()) {
        bump(kShuttingDown);
        return serialize_error(req->id_json, ErrorKind::ShuttingDown,
                               "drain in progress; no new work accepted");
      }
      // Mint the request id and install the request context for the handler
      // thread; the engine job re-installs it on its worker (RequestObs is
      // shared with the job, which can outlive this frame on a deadline).
      const bool wants_trace =
          (req->kind == RequestKind::Compile && req->compile.trace) ||
          (req->kind == RequestKind::Autotune && req->autotune.trace);
      const bool traced = wants_trace && !cfg_.trace_dir.empty();
      auto ro = std::make_shared<RequestObs>(
          strformat("r-%" PRIu64,
                    request_seq_.fetch_add(1, std::memory_order_relaxed) + 1),
          traced);
      if (wants_trace && !traced)
        obs::Logger::global().warn_rate_limited(
            "trace_untraceable", "trace requested but no --trace-dir configured");
      obs::RequestScope scope(&ro->ctx);
      obs::log_debug(req->kind == RequestKind::Compile  ? "compile request"
                     : req->kind == RequestKind::Batch ? "batch request"
                                                       : "autotune request");
      std::string response = req->kind == RequestKind::Compile
                                 ? handle_compile(*req, ro)
                             : req->kind == RequestKind::Autotune
                                 ? handle_autotune(*req, ro)
                                 : handle_batch(*req);
      latency_hist_.record(ro->wall.nanos());
      return response;
    }
  }
  bump(kInternalErrors);
  return serialize_error(req->id_json, ErrorKind::Internal, "unhandled request kind");
}

std::string Service::handle_compile(const Request& req,
                                    const std::shared_ptr<RequestObs>& ro) {
  auto respond = [&](CellOutcome out) {
    out.resp.request_id = ro->id;
    if (out.ok) {
      bump(kOk);
      // Every cell carries its summary; the request's flag only gates
      // serialization, so coalesced twins with different flags each get
      // the response shape they asked for.
      out.resp.have_profile = req.compile.profile;
      return serialize_compile_response(req.id_json, out.resp);
    }
    bump(out.err == ErrorKind::Internal ? kInternalErrors : kCompileErrors);
    obs::log_debug("compile request failed",
                   {obs::field("kind", error_kind_name(out.err)),
                    obs::field("message", out.message)});
    return serialize_error(req.id_json, out.err, out.message);
  };

  const CompileRequest& c = req.compile;
  std::string source = c.source;
  if (!c.workload.empty()) {
    const Workload* w = find_workload(c.workload);
    if (w == nullptr) {
      bump(kBadRequest);
      return serialize_error(req.id_json, ErrorKind::BadRequest,
                             strformat("unknown workload '%s'", c.workload.c_str()));
    }
    source = w->source;
  }

  const std::uint64_t key = cell_key(source, c.level, c.transforms, c.nest,
                                     c.scheduler, c.issue, c.unroll, c.debug_sleep_ms);
  Shard& sh = shard_for(key);

  // Warm path: a previously served identical request costs one cache lookup.
  if (auto payload = sh.cache->lookup(key)) {
    CellOutcome out;
    if (decode_cell(*payload, out)) {
      out.resp.cached = true;
      return respond(std::move(out));
    }
    sh.cache->invalidate(key);
  }

  // Join an identical in-flight request, or admit a new cell.  Admission and
  // publication are atomic per shard, so duplicates can never slip past the
  // map; the cell-count bound itself is a lock-free global counter.
  std::shared_ptr<Inflight> entry;
  bool joined = false;
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.inflight.find(key);
    if (it != sh.inflight.end()) {
      entry = it->second;
      entry->waiters.fetch_add(1, std::memory_order_relaxed);
      joined = true;
    } else if (try_admit(1)) {
      // Bounded queue: an admission that would exceed `workers + queue_limit`
      // cells leaves `entry` null and is rejected outside the lock.
      entry = std::make_shared<Inflight>();
      entry->group = std::make_shared<engine::JobGroup>(*pool_);
      auto group = entry->group;
      engine::Stopwatch queued;
      // Submitted outside the group wrapper: the outcome (including
      // cancelled-while-queued) is always a value, so the in-flight erase and
      // cell settlement below run on every path.
      entry->future =
          pool_->submit([this, source, c, key, group, ro, queued]() -> CellOutcome {
            queue_wait_hist_.record(queued.nanos());
            // Re-establish the minting request's context on the worker so
            // logs, spans and the trace recorder follow the request across
            // the thread hop.
            obs::RequestScope scope(&ro->ctx);
            obs::SpanScope span("job", "engine");
            CellOutcome out;
            if (c.debug_sleep_ms > 0 && !group->cancel_requested())
              interruptible_sleep(c.debug_sleep_ms, *group);
            if (group->cancel_requested()) {
              out.err = ErrorKind::DeadlineExceeded;
              out.message = "cancelled while queued (deadline exceeded)";
            } else {
              Shard& osh = shard_for(key);
              // Close the lookup->admit race: an identical cell can finish
              // (cache store, then inflight erase, in that order) between
              // this request's cache miss and its admission.  The admission
              // lock synchronizes with the erase, so re-checking here is
              // guaranteed to see the twin's payload — every cell executes
              // (and accumulates into the profile counters) exactly once.
              bool raced_hit = false;
              if (auto payload = osh.cache->lookup(key)) {
                CellOutcome hit;
                if (decode_cell(*payload, hit)) {
                  hit.resp.cached = true;
                  out = std::move(hit);
                  raced_hit = true;
                }
              }
              if (!raced_hit) {
                out = compute_cell(source, c.level, c.transforms, c.nest,
                                   c.scheduler, c.issue, c.unroll);
                osh.cache->store(key, encode_cell(out));
                bump(kCellsExecuted);
              }
            }
            {
              std::lock_guard<std::mutex> mlock(shard_for(key).mu);
              shard_for(key).inflight.erase(key);
            }
            settle_cells(1);
            return out;
          }).share();
      sh.inflight.emplace(key, entry);
    }
  }

  if (entry == nullptr) {
    bump(kOverloaded);
    obs::Logger::global().warn_rate_limited(
        "overloaded", "request rejected: admission queue full",
        {obs::field("capacity", capacity_)});
    return serialize_error(
        req.id_json, ErrorKind::Overloaded,
        strformat("admission queue full (%zu cells in flight, capacity %zu)",
                  inflight_cells(), capacity_));
  }
  if (joined) bump(kCoalesced);

  const std::int64_t deadline_ms =
      c.deadline_ms > 0 ? c.deadline_ms : cfg_.default_deadline_ms;
  std::shared_future<CellOutcome> fut = entry->future;
  if (deadline_ms > 0 &&
      fut.wait_for(std::chrono::milliseconds(deadline_ms)) ==
          std::future_status::timeout) {
    // Last waiter out cancels the job; if it has not started it settles as
    // cancelled, if it is running it finishes into the cache for next time.
    // (Inline-executed cells have no group — they are running by definition.)
    if (entry->waiters.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        entry->group != nullptr)
      entry->group->cancel();
    bump(kDeadlineExceeded);
    obs::log_debug("deadline exceeded while waiting",
                   {obs::field("deadline_ms", deadline_ms)});
    return serialize_error(req.id_json, ErrorKind::DeadlineExceeded,
                           strformat("deadline of %lld ms exceeded",
                                     static_cast<long long>(deadline_ms)));
  }
  entry->waiters.fetch_sub(1, std::memory_order_acq_rel);
  CellOutcome out = fut.get();
  if (!out.ok && out.err == ErrorKind::DeadlineExceeded)
    bump(kDeadlineExceeded);

  // The trace belongs to the request that admitted the cell; joiners shared
  // the future but not the spans.  The request span is recorded explicitly
  // (rather than via SpanScope) so it lands before the file is written.
  if (ro->recorder != nullptr && !joined) {
    ro->recorder->record_span("request", "server", 0,
                              ro->recorder->now_us(), ro->id);
    const std::string path =
        (std::filesystem::path(cfg_.trace_dir) / ("req-" + ro->id + ".json"))
            .string();
    std::error_code ec;
    std::filesystem::create_directories(cfg_.trace_dir, ec);
    if (ro->recorder->write_chrome_trace(path)) {
      out.resp.trace_file = path;
      obs::log_info("request trace written",
                    {obs::field("path", path),
                     obs::field("spans", ro->recorder->event_count())});
    } else {
      obs::log_warn("failed to write request trace", {obs::field("path", path)});
    }
  }
  return respond(std::move(out));
}

Reply Service::handle_compile_direct(const ParsedRequest& p,
                                     const std::shared_ptr<RequestObs>& ro,
                                     std::uint64_t queued_ns) {
  const Request& req = *p.req;
  const CompileRequest& c = req.compile;
  auto flat = [](std::string s) {
    Reply r;
    r.flat = std::move(s);
    return r;
  };
  // Error/bookkeeping twin of the pool path's respond(): same counters, same
  // bytes (serialize_error for failures, segment assembly for successes).
  auto respond_error = [&](const CellOutcome& out) {
    bump(out.err == ErrorKind::Internal ? kInternalErrors : kCompileErrors);
    obs::log_debug("compile request failed",
                   {obs::field("kind", error_kind_name(out.err)),
                    obs::field("message", out.message)});
    return flat(serialize_error(req.id_json, out.err, out.message));
  };
  auto segment_reply = [&](std::shared_ptr<const CompileBody> body, bool cached) {
    bump(kOk);
    Reply r;
    r.body = std::move(body);
    r.id_json = req.id_json;
    r.cached = cached;
    r.request_id = ro->id;
    return r;
  };

  if (!c.workload.empty() && p.source.empty()) {
    bump(kBadRequest);
    return flat(serialize_error(
        req.id_json, ErrorKind::BadRequest,
        strformat("unknown workload '%s'", c.workload.c_str())));
  }
  const std::uint64_t key = p.cell_key;
  // Pre-serialized bodies differ between profiled and unprofiled responses
  // (the "profile" field lives in the shared `post` segment), so the hot
  // tier keys the two shapes apart.  The cell key itself — coalescing, the
  // result cache, shard routing — is profile-blind: every executed cell
  // carries its summary and the flag only gates serialization.
  const std::uint64_t hot_key = c.profile ? hot_profile_variant(key) : key;
  Shard& sh = *shards_[p.shard];
  queue_wait_hist_.record(queued_ns);

  // Hot tier: the response segments for this cell were already built — the
  // reply is three pointer copies, serialized (or writev'd) at write time.
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.hot.find(hot_key);
    if (it != sh.hot.end()) {
      bump(kHotHits);
      return segment_reply(it->second, /*cached=*/true);
    }
  }

  // Result-cache tier (memory partition, then shared disk).  A decoded hit
  // is pre-serialized once and promoted into the hot tier.
  if (auto payload = sh.cache->lookup(key)) {
    CellOutcome out;
    if (decode_cell(*payload, out)) {
      if (out.ok) {
        out.resp.have_profile = c.profile;
        auto body =
            std::make_shared<const CompileBody>(serialize_compile_body(out.resp));
        {
          std::lock_guard<std::mutex> lock(sh.mu);
          hot_insert(sh, hot_key, body);
        }
        return segment_reply(std::move(body), /*cached=*/true);
      }
      return respond_error(out);
    }
    sh.cache->invalidate(key);
  }

  const std::int64_t deadline_ms =
      c.deadline_ms > 0 ? c.deadline_ms : cfg_.default_deadline_ms;
  const std::int64_t queued_ms = static_cast<std::int64_t>(queued_ns / 1'000'000);
  auto deadline_reply = [&]() {
    bump(kDeadlineExceeded);
    obs::log_debug("deadline exceeded while waiting",
                   {obs::field("deadline_ms", deadline_ms)});
    return flat(serialize_error(req.id_json, ErrorKind::DeadlineExceeded,
                                strformat("deadline of %lld ms exceeded",
                                          static_cast<long long>(deadline_ms))));
  };
  // The dispatch ring is this path's admission queue: a line whose ring wait
  // already consumed its whole deadline is cancelled-while-queued, before it
  // can occupy an admission slot.
  if (deadline_ms > 0 && queued_ms >= deadline_ms) return deadline_reply();

  // Join an identical in-flight cell (it can only be executing on another
  // shard worker or a pool thread — identical keys on THIS shard's ring are
  // processed serially), or admit and execute inline.
  std::shared_ptr<Inflight> entry;
  std::promise<CellOutcome> settle_promise;
  bool executor = false;
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.inflight.find(key);
    if (it != sh.inflight.end()) {
      entry = it->second;
      entry->waiters.fetch_add(1, std::memory_order_relaxed);
    } else if (try_admit(1)) {
      entry = std::make_shared<Inflight>();
      entry->future = settle_promise.get_future().share();
      sh.inflight.emplace(key, entry);
      executor = true;
    }
  }
  if (entry == nullptr) {
    bump(kOverloaded);
    obs::Logger::global().warn_rate_limited(
        "overloaded", "request rejected: admission queue full",
        {obs::field("capacity", capacity_)});
    return flat(serialize_error(
        req.id_json, ErrorKind::Overloaded,
        strformat("admission queue full (%zu cells in flight, capacity %zu)",
                  inflight_cells(), capacity_)));
  }

  if (!executor) {
    bump(kCoalesced);
    std::shared_future<CellOutcome> fut = entry->future;
    if (deadline_ms > 0 &&
        fut.wait_for(std::chrono::milliseconds(deadline_ms - queued_ms)) ==
            std::future_status::timeout) {
      if (entry->waiters.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
          entry->group != nullptr)
        entry->group->cancel();
      return deadline_reply();
    }
    entry->waiters.fetch_sub(1, std::memory_order_acq_rel);
    CellOutcome out = fut.get();
    if (!out.ok && out.err == ErrorKind::DeadlineExceeded)
      bump(kDeadlineExceeded);
    out.resp.request_id = ro->id;
    if (out.ok) {
      bump(kOk);
      out.resp.have_profile = c.profile;
      return flat(serialize_compile_response(req.id_json, out.resp));
    }
    return respond_error(out);
  }

  // Executor: the cell runs here, on the shard worker that owns its state.
  CellOutcome out;
  bool deadline_hit = false;
  obs::SpanScope span("job", "engine");
  if (c.debug_sleep_ms > 0) {
    // debug_sleep stands in for long compute; honor the remaining deadline
    // budget the way a queued pool job honors cancellation.
    const auto sleep_end = Clock::now() + std::chrono::milliseconds(c.debug_sleep_ms);
    const auto deadline_end =
        Clock::now() + std::chrono::milliseconds(deadline_ms - queued_ms);
    while (Clock::now() < sleep_end) {
      if (deadline_ms > 0 && Clock::now() >= deadline_end) {
        deadline_hit = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  std::shared_ptr<const CompileBody> body;
  bool raced_hit = false;
  if (deadline_hit) {
    out.ok = false;
    out.err = ErrorKind::DeadlineExceeded;
    out.message = "cancelled while queued (deadline exceeded)";
  } else {
    // Close the lookup->admit race: an identical cell can finish (cache
    // store, then inflight erase, in that order) between this request's
    // cache miss and its admission.  The admission lock synchronizes with
    // the erase, so re-checking here is guaranteed to see the twin's
    // payload — every cell executes (and accumulates into the profile
    // counters) exactly once.
    if (auto payload = sh.cache->lookup(key)) {
      CellOutcome hit;
      if (decode_cell(*payload, hit)) {
        out = std::move(hit);
        raced_hit = true;
      }
    }
    if (!raced_hit) {
      try {
        out = compute_cell(p.source, c.level, c.transforms, c.nest, c.scheduler,
                           c.issue, c.unroll);
      } catch (const std::exception& e) {
        out.ok = false;
        out.err = ErrorKind::Internal;
        out.message = strformat("cell threw: %s", e.what());
      }
      sh.cache->store(key, encode_cell(out));
      bump(kCellsExecuted);
    }
    if (out.ok) {
      out.resp.have_profile = c.profile;  // joiners re-gate from their own flag
      body = std::make_shared<const CompileBody>(serialize_compile_body(out.resp));
    }
  }
  settle_promise.set_value(out);
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.inflight.erase(key);
    if (body != nullptr) hot_insert(sh, hot_key, body);
  }
  settle_cells(1);

  if (deadline_hit) return deadline_reply();
  if (out.ok) return segment_reply(std::move(body), /*cached=*/raced_hit);
  return respond_error(out);
}

std::string Service::handle_batch(const Request& req) {
  const BatchRequest& b = req.batch;
  engine::Stopwatch elapsed;

  // Resolve the slice up front so a bad name is a bad_request, not a cell.
  std::vector<const Workload*> loops;
  if (b.workloads.empty()) {
    for (const Workload& w : workload_suite()) loops.push_back(&w);
  } else {
    for (const std::string& name : b.workloads) {
      const Workload* w = find_workload(name);
      if (w == nullptr) {
        bump(kBadRequest);
        return serialize_error(req.id_json, ErrorKind::BadRequest,
                               strformat("unknown workload '%s'", name.c_str()));
      }
      loops.push_back(w);
    }
  }
  std::vector<OptLevel> levels(b.levels);
  if (levels.empty()) levels.assign(kLevels.begin(), kLevels.end());
  std::vector<int> widths(b.widths);
  if (widths.empty()) widths.assign(kIssueWidths.begin(), kIssueWidths.end());

  const std::size_t n = loops.size() * levels.size() * widths.size();
  if (n == 0) {
    bump(kBadRequest);
    return serialize_error(req.id_json, ErrorKind::BadRequest, "empty batch");
  }

  // All-or-nothing admission for the whole slice.
  if (!try_admit(n)) {
    bump(kOverloaded);
    obs::Logger::global().warn_rate_limited(
        "overloaded", "batch rejected: admission queue full",
        {obs::field("cells", n), obs::field("capacity", capacity_)});
    return serialize_error(
        req.id_json, ErrorKind::Overloaded,
        strformat("batch of %zu cells exceeds capacity %zu (in flight: %zu)", n,
                  capacity_, inflight_cells()));
  }

  // One job group per batch: the whole slice cancels as a unit when the
  // deadline fires; members already running finish (and land in the cache).
  // Each cell is pinned to the pool worker owning its shard, so a cell's
  // cache partition is written by the thread that owns it.
  engine::JobGroup group(*pool_);
  std::vector<BatchCell> cells(n);
  std::vector<std::future<BatchCell>> futures;
  futures.reserve(n);
  std::size_t idx = 0;
  for (const Workload* w : loops)
    for (const OptLevel level : levels)
      for (const int width : widths) {
        BatchCell& slot = cells[idx++];
        slot.workload = w->name;
        slot.level = level;
        slot.width = width;
        engine::Stopwatch queued;
        const SchedulerKind scheduler = req.batch.scheduler;
        const std::uint64_t key = cell_key(w->source, level, std::nullopt,
                                           NestOptions{}, scheduler, width, 8, 0);
        futures.push_back(group.submit_pinned(
            static_cast<unsigned>(shard_index(key)),
            [this, w, level, width, scheduler, key, queued]() -> BatchCell {
              queue_wait_hist_.record(queued.nanos());
              BatchCell cell;
              cell.workload = w->name;
              cell.level = level;
              cell.width = width;
              engine::ResultCache& cache = cache_for(key);
              if (auto payload = cache.lookup(key)) {
                CellOutcome cached;
                if (decode_cell(*payload, cached)) {
                  if (cached.ok) {
                    cell.cycles = cached.resp.cycles;
                    cell.int_regs = cached.resp.int_regs;
                    cell.fp_regs = cached.resp.fp_regs;
                  } else {
                    cell.error = cached.message;
                  }
                  return cell;
                }
                cache.invalidate(key);
              }
              CellOutcome out = compute_cell(w->source, level, std::nullopt,
                                             NestOptions{}, scheduler, width, 8);
              cache.store(key, encode_cell(out));
              bump(kCellsExecuted);
              if (out.ok) {
                cell.cycles = out.resp.cycles;
                cell.int_regs = out.resp.int_regs;
                cell.fp_regs = out.resp.fp_regs;
              } else {
                cell.error = out.message;
              }
              return cell;
            }));
      }

  const std::int64_t deadline_ms =
      b.deadline_ms > 0 ? b.deadline_ms : cfg_.default_deadline_ms;
  const auto deadline_tp = Clock::now() + std::chrono::milliseconds(
                                              deadline_ms > 0 ? deadline_ms : 0);
  bool cancelled = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (deadline_ms > 0 && !cancelled &&
        futures[i].wait_until(deadline_tp) == std::future_status::timeout) {
      group.cancel();  // queued members settle as JobCancelled below
      cancelled = true;
      bump(kDeadlineExceeded);
    }
    try {
      cells[i] = futures[i].get();
    } catch (const engine::JobCancelled&) {
      cells[i].error = "cancelled: batch deadline exceeded";
    } catch (const std::exception& e) {
      cells[i].error = strformat("batch cell threw: %s", e.what());
    }
  }
  settle_cells(n);

  bump(kOk);
  return serialize_batch_response(req.id_json, cells, elapsed.seconds() * 1e3);
}

std::string Service::handle_autotune(const Request& req,
                                     const std::shared_ptr<RequestObs>& ro) {
  bump(kTuneRequests);
  const AutotuneRequest& a = req.autotune;
  std::string source = a.source;
  if (!a.workload.empty()) {
    const Workload* w = find_workload(a.workload);
    if (w == nullptr) {
      bump(kBadRequest);
      return serialize_error(req.id_json, ErrorKind::BadRequest,
                             strformat("unknown workload '%s'", a.workload.c_str()));
    }
    source = w->source;
  }

  const std::uint64_t tkey = tune_request_key(source, a);
  engine::ResultCache& tcache = cache_for(tkey);

  auto respond = [&](const TuneOutcome& out, bool cached,
                     const std::string& trace_file) {
    if (out.ok) {
      bump(kOk);
      return serialize_autotune_response(req.id_json, out.result_json, cached,
                                         ro->id, trace_file,
                                         ro->wall.seconds() * 1e3);
    }
    bump(out.err == ErrorKind::Internal ? kInternalErrors : kCompileErrors);
    obs::log_debug("autotune request failed",
                   {obs::field("kind", error_kind_name(out.err)),
                    obs::field("message", out.message)});
    return serialize_error(req.id_json, out.err, out.message);
  };

  // Warm path: an identical search already ran to completion — replay it.
  if (auto payload = tcache.lookup(tkey)) {
    if (payload->rfind(kTunePayloadPrefix, 0) == 0) {
      bump(kTuneCached);
      TuneOutcome out;
      out.ok = true;
      out.result_json = payload->substr(kTunePayloadPrefix.size());
      return respond(out, /*cached=*/true, {});
    }
    tcache.invalidate(tkey);
  }

  // Join an identical in-flight search, or admit a new one against both the
  // tune-job bound (searches saturate the pool, so a handful is plenty) and
  // the global admission counter (a search occupies one cell slot end to
  // end, which is what folds it into drain accounting).
  std::shared_ptr<TuneInflight> entry;
  std::promise<TuneOutcome> publish;
  bool executor = false;
  {
    std::lock_guard<std::mutex> lock(tune_mu_);
    auto it = tune_inflight_.find(tkey);
    if (it != tune_inflight_.end()) {
      entry = it->second;
    } else if (tune_jobs_.load(std::memory_order_relaxed) < cfg_.tune_job_limit &&
               try_admit(1)) {
      tune_jobs_.fetch_add(1, std::memory_order_relaxed);
      entry = std::make_shared<TuneInflight>();
      entry->future = publish.get_future().share();
      tune_inflight_.emplace(tkey, entry);
      executor = true;
    }
  }
  if (entry == nullptr) {
    bump(kOverloaded);
    obs::Logger::global().warn_rate_limited(
        "overloaded", "autotune rejected: job limit reached",
        {obs::field("limit", cfg_.tune_job_limit)});
    return serialize_error(
        req.id_json, ErrorKind::Overloaded,
        strformat("autotune job limit reached (%zu searches in flight)",
                  cfg_.tune_job_limit));
  }

  const std::int64_t deadline_ms =
      a.deadline_ms > 0 ? a.deadline_ms : cfg_.default_deadline_ms;

  if (!executor) {
    bump(kTuneCoalesced);
    std::shared_future<TuneOutcome> fut = entry->future;
    if (deadline_ms > 0 &&
        fut.wait_for(std::chrono::milliseconds(deadline_ms)) ==
            std::future_status::timeout) {
      bump(kDeadlineExceeded);
      obs::log_debug("deadline exceeded while waiting",
                     {obs::field("deadline_ms", deadline_ms)});
      return serialize_error(req.id_json, ErrorKind::DeadlineExceeded,
                             strformat("deadline of %lld ms exceeded",
                                       static_cast<long long>(deadline_ms)));
    }
    return respond(fut.get(), /*cached=*/false, {});
  }

  // Executor: the search runs on this thread; candidate evaluations fan onto
  // the pool through the evaluator.  The deadline and a drain both feed the
  // tuner's cancellation hook, so either stops the search between batches
  // with the best found so far (stopped_early), never a dropped request.
  const auto deadline_tp =
      Clock::now() +
      std::chrono::milliseconds(deadline_ms > 0 ? deadline_ms : 0);
  tune::TuneOptions topts;
  topts.issue = a.issue;
  topts.beam_width = a.beam;
  topts.max_rounds = a.rounds;
  topts.sim_fraction = a.sim_fraction;
  topts.max_sims = a.max_sims;
  topts.use_cost_model = a.cost_model;
  topts.cancelled = [this, deadline_ms, deadline_tp] {
    return draining() || (deadline_ms > 0 && Clock::now() >= deadline_tp);
  };

  TuneOutcome out;
  {
    obs::SpanScope span("autotune", "tune");
    TuneEvaluator eval(*this, ro);
    const tune::TuneResult r = [&] {
      try {
        return tune::autotune(source, topts, eval);
      } catch (const std::exception& e) {
        tune::TuneResult bad;
        bad.error = strformat("search threw: %s", e.what());
        return bad;
      }
    }();
    tune_cand_simulated_.fetch_add(r.simulated, std::memory_order_relaxed);
    tune_cand_pruned_.fetch_add(r.pruned, std::memory_order_relaxed);
    tune_cand_cache_hits_.fetch_add(r.cache_hits, std::memory_order_relaxed);
    if (r.stopped_early) bump(kTuneStoppedEarly);
    out.stopped_early = r.stopped_early;
    if (r.ok) {
      out.ok = true;
      out.result_json = r.to_json();
      // Whole-search memoization: only complete runs are stored — a
      // deadline-truncated search must not shadow the full answer for the
      // next identical request.
      if (!r.stopped_early)
        tcache.store(tkey, std::string(kTunePayloadPrefix) + out.result_json);
      obs::log_info(
          "autotune finished",
          {obs::field("best", r.best.name()),
           obs::field("best_cycles", r.best_cycles),
           obs::field("lev4_cycles", r.lev4_cycles),
           obs::field("simulated", r.simulated),
           obs::field("pruned", r.pruned),
           obs::field("stopped_early", r.stopped_early ? 1 : 0)});
    } else {
      out.err = ErrorKind::CompileError;
      out.message = r.error;
    }
  }

  publish.set_value(out);
  {
    std::lock_guard<std::mutex> lock(tune_mu_);
    tune_inflight_.erase(tkey);
  }
  tune_jobs_.fetch_sub(1, std::memory_order_relaxed);
  settle_cells(1);

  std::string trace_file;
  if (ro->recorder != nullptr) {
    ro->recorder->record_span("request", "server", 0, ro->recorder->now_us(),
                              ro->id);
    const std::string path =
        (std::filesystem::path(cfg_.trace_dir) / ("req-" + ro->id + ".json"))
            .string();
    std::error_code ec;
    std::filesystem::create_directories(cfg_.trace_dir, ec);
    if (ro->recorder->write_chrome_trace(path)) {
      trace_file = path;
      obs::log_info("request trace written",
                    {obs::field("path", path),
                     obs::field("spans", ro->recorder->event_count())});
    } else {
      obs::log_warn("failed to write request trace", {obs::field("path", path)});
    }
  }
  return respond(out, /*cached=*/false, trace_file);
}

void Service::accumulate_profile(const CycleProfile& p) {
  for (int i = 0; i < kNumStallCauses; ++i)
    stall_slots_[static_cast<std::size_t>(i)].fetch_add(
        p.slots[static_cast<std::size_t>(i)], std::memory_order_relaxed);
  for (std::size_t k = 0; k < p.occupancy.size(); ++k) {
    const std::size_t bin = k < kOccupancyBins ? k : kOccupancyBins - 1;
    occupancy_[bin].fetch_add(p.occupancy[k], std::memory_order_relaxed);
  }
  profiled_cells_.fetch_add(1, std::memory_order_relaxed);
  profiled_cycles_.fetch_add(p.cycles, std::memory_order_relaxed);
}

std::string Service::profile_json() const {
  std::string slots = "{";
  for (int i = 0; i < kNumStallCauses; ++i) {
    if (i > 0) slots += ", ";
    slots += strformat(
        "\"%s\": %" PRIu64, stall_cause_name(static_cast<StallCause>(i)),
        stall_slots_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed));
  }
  slots += "}";
  // Trim trailing zero bins so single-width daemons stay readable; bin 0 is
  // always reported (it is the stall-cycle count).
  std::size_t top = kOccupancyBins;
  while (top > 1 && occupancy_[top - 1].load(std::memory_order_relaxed) == 0)
    --top;
  std::string occ = "[";
  for (std::size_t k = 0; k < top; ++k) {
    if (k > 0) occ += ", ";
    occ += strformat("%" PRIu64, occupancy_[k].load(std::memory_order_relaxed));
  }
  occ += "]";
  return strformat("{\"cells\": %" PRIu64 ", \"cycles\": %" PRIu64
                   ", \"slots\": %s, \"occupancy\": %s}",
                   profiled_cells_.load(std::memory_order_relaxed),
                   profiled_cycles_.load(std::memory_order_relaxed), slots.c_str(),
                   occ.c_str());
}

std::string Service::stats_json() const {
  const ServiceCounters c = counters();
  const engine::CacheStats cs = cache_stats();
  std::size_t cache_entries = 0, cache_bytes = 0, hot_entries = 0;
  for (const auto& sh : shards_) {
    cache_entries += sh->cache->size();
    cache_bytes += sh->cache->memory_bytes();
    std::lock_guard<std::mutex> lock(sh->mu);
    hot_entries += sh->hot.size();
  }
  const obs::Histogram::Snapshot lat = latency_hist_.snapshot();
  const obs::Histogram::Snapshot qw = queue_wait_hist_.snapshot();
  // Per-stage search/simulate wall percentiles: what loadgen's --autotune
  // mode reports as the server-side split of tuning latency.
  const obs::Histogram::Snapshot tsearch =
      engine::MetricsRegistry::global().histogram("tune.phase.search").snapshot();
  const obs::Histogram::Snapshot tsim =
      engine::MetricsRegistry::global().histogram("tune.phase.simulate").snapshot();
  const std::string tune = strformat(
      "\"tune\": {\"requests\": %" PRIu64 ", \"cached\": %" PRIu64
      ", \"coalesced\": %" PRIu64 ", \"stopped_early\": %" PRIu64
      ", \"jobs_inflight\": %zu, "
      "\"candidates\": {\"simulated\": %" PRIu64 ", \"pruned\": %" PRIu64
      ", \"cache_hits\": %" PRIu64 "}, "
      "\"search_us\": {\"count\": %" PRIu64 ", \"p50\": %.1f, \"p90\": %.1f, "
      "\"p99\": %.1f, \"p999\": %.1f, \"mean\": %.1f}, "
      "\"simulate_us\": {\"count\": %" PRIu64 ", \"p50\": %.1f, \"p90\": %.1f, "
      "\"p99\": %.1f, \"p999\": %.1f, \"mean\": %.1f}}",
      c.tune_requests, c.tune_cached, c.tune_coalesced, c.tune_stopped_early,
      tune_jobs_.load(std::memory_order_relaxed), c.tune_candidates_simulated,
      c.tune_candidates_pruned, c.tune_candidate_cache_hits, tsearch.count,
      tsearch.quantile(0.50) / 1e3, tsearch.quantile(0.90) / 1e3,
      tsearch.quantile(0.99) / 1e3, tsearch.quantile(0.999) / 1e3,
      tsearch.mean() / 1e3, tsim.count, tsim.quantile(0.50) / 1e3,
      tsim.quantile(0.90) / 1e3, tsim.quantile(0.99) / 1e3,
      tsim.quantile(0.999) / 1e3, tsim.mean() / 1e3);
  return strformat(
      "{\"uptime_seconds\": %.3f, \"draining\": %s, \"workers\": %d, "
      "\"shards\": %d, "
      "\"capacity\": %zu, \"inflight_cells\": %zu, "
      "\"requests\": {\"received\": %" PRIu64 ", \"ok\": %" PRIu64
      ", \"bad_request\": %" PRIu64 ", \"overloaded\": %" PRIu64
      ", \"shutting_down\": %" PRIu64 ", \"deadline_exceeded\": %" PRIu64
      ", \"compile_errors\": %" PRIu64 ", \"internal\": %" PRIu64
      ", \"coalesced\": %" PRIu64 ", \"hot_hits\": %" PRIu64 "}, "
      "\"cells_executed\": %" PRIu64 ", "
      "\"latency_us\": {\"count\": %" PRIu64 ", \"p50\": %.1f, \"p90\": %.1f, "
      "\"p99\": %.1f, \"p999\": %.1f, \"mean\": %.1f}, "
      "\"queue_wait_us\": {\"count\": %" PRIu64 ", \"p50\": %.1f, \"p90\": %.1f, "
      "\"p99\": %.1f, \"p999\": %.1f, \"mean\": %.1f}, "
      "\"pool\": {\"jobs_executed\": %zu, \"queue_depth\": %zu, "
      "\"active_jobs\": %zu, \"peak_queue_depth\": %zu}, "
      "\"cache\": {\"hits\": %" PRIu64 ", \"disk_hits\": %" PRIu64
      ", \"misses\": %" PRIu64 ", \"invalid\": %" PRIu64 ", \"stores\": %" PRIu64
      ", \"hit_rate\": %.4f, \"memory_entries\": %zu, \"memory_bytes\": %zu, "
      "\"hot_entries\": %zu}, %s}",
      uptime_.seconds(), draining() ? "true" : "false", workers_,
      shard_count(), capacity_, inflight_cells(), c.received, c.ok,
      c.bad_request, c.overloaded, c.shutting_down, c.deadline_exceeded,
      c.compile_errors, c.internal_errors, c.coalesced, c.hot_hits,
      c.cells_executed, lat.count, lat.quantile(0.50) / 1e3,
      lat.quantile(0.90) / 1e3, lat.quantile(0.99) / 1e3,
      lat.quantile(0.999) / 1e3, lat.mean() / 1e3, qw.count,
      qw.quantile(0.50) / 1e3, qw.quantile(0.90) / 1e3, qw.quantile(0.99) / 1e3,
      qw.quantile(0.999) / 1e3, qw.mean() / 1e3, pool_->jobs_executed(),
      pool_->queue_depth(), pool_->active_jobs(), pool_->peak_queue_depth(),
      cs.hits, cs.disk_hits, cs.misses, cs.invalid, cs.stores, cs.hit_rate(),
      cache_entries, cache_bytes, hot_entries, tune.c_str());
}

std::string Service::metrics_exposition() const {
  // The registry covers pass.*, trans.*, study.* and the server.* histograms;
  // the service adds its own counters and point-in-time gauges.
  std::string out = engine::MetricsRegistry::global().to_prometheus();

  const ServiceCounters c = counters();
  obs::prom::append_counter(out, "server.requests_received", c.received,
                            "Request lines received (any verb)");
  obs::prom::append_counter(out, "server.requests_ok", c.ok);
  obs::prom::append_counter(out, "server.requests_bad_request", c.bad_request);
  obs::prom::append_counter(out, "server.requests_overloaded", c.overloaded);
  obs::prom::append_counter(out, "server.requests_shutting_down", c.shutting_down);
  obs::prom::append_counter(out, "server.requests_deadline_exceeded",
                            c.deadline_exceeded);
  obs::prom::append_counter(out, "server.requests_compile_errors", c.compile_errors);
  obs::prom::append_counter(out, "server.requests_internal_errors",
                            c.internal_errors);
  obs::prom::append_counter(out, "server.requests_coalesced", c.coalesced,
                            "Requests that joined an in-flight twin");
  obs::prom::append_counter(out, "server.requests_hot_hits", c.hot_hits,
                            "Replies served from pre-serialized segments");
  obs::prom::append_counter(out, "server.cells_executed", c.cells_executed,
                            "Cells actually computed (not cache hits)");

  obs::prom::append_counter(out, "tune.requests", c.tune_requests,
                            "Autotune searches requested");
  obs::prom::append_counter(out, "tune.results_cached", c.tune_cached,
                            "Whole-search results replayed from the cache");
  obs::prom::append_counter(out, "tune.coalesced", c.tune_coalesced,
                            "Requests that joined an identical in-flight search");
  obs::prom::append_counter(out, "tune.stopped_early", c.tune_stopped_early,
                            "Searches stopped by a deadline or drain");
  obs::prom::append_counter(out, "tune.candidates_simulated",
                            c.tune_candidates_simulated);
  obs::prom::append_counter(out, "tune.candidates_pruned",
                            c.tune_candidates_pruned,
                            "Candidates skipped by the cost model");
  obs::prom::append_counter(out, "tune.candidate_cache_hits",
                            c.tune_candidate_cache_hits,
                            "Candidate measurements served from the cell cache");

  // Cycle-accounting taxonomy (sim/profile.hpp), summed over every executed
  // cell: the six series partition width * cycles exactly.
  obs::prom::begin_counter_family(
      out, "sim.stall_slots_total",
      "Simulated issue slots by attribution cause (closed taxonomy; the "
      "series sum to issue_width * cycles over all executed cells)");
  for (int i = 0; i < kNumStallCauses; ++i)
    obs::prom::append_counter_sample(
        out, "sim.stall_slots_total", "cause",
        stall_cause_name(static_cast<StallCause>(i)),
        stall_slots_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed));
  obs::prom::begin_counter_family(
      out, "sim.issue_occupancy_total",
      "Simulated cycles by number of instructions issued that cycle");
  for (std::size_t k = 0; k < kOccupancyBins; ++k) {
    const std::uint64_t v = occupancy_[k].load(std::memory_order_relaxed);
    if (v != 0 || k == 0)
      obs::prom::append_counter_sample(out, "sim.issue_occupancy_total", "slots",
                                       std::to_string(k), v);
  }
  obs::prom::append_counter(out, "sim.profiled_cells", profiled_cells_.load(
                                                           std::memory_order_relaxed),
                            "Executed cells whose profile was accumulated");
  obs::prom::append_counter(
      out, "sim.profiled_cycles",
      profiled_cycles_.load(std::memory_order_relaxed),
      "Simulated cycles across all accumulated profiles");

  obs::prom::append_gauge(out, "server.uptime_seconds", uptime_.seconds());
  obs::prom::append_gauge(out, "server.workers", workers_);
  obs::prom::append_gauge(out, "server.shards",
                          static_cast<double>(shard_count()));
  obs::prom::append_gauge(out, "server.capacity", static_cast<double>(capacity_));
  obs::prom::append_gauge(out, "server.inflight_cells",
                          static_cast<double>(inflight_cells()),
                          "Admitted-but-unsettled cells (queued or executing)");
  obs::prom::append_gauge(out, "server.queue_depth",
                          static_cast<double>(pool_->queue_depth()),
                          "Jobs waiting in the pool queue right now");
  obs::prom::append_gauge(out, "server.active_jobs",
                          static_cast<double>(pool_->active_jobs()));
  obs::prom::append_gauge(out, "server.draining", draining() ? 1.0 : 0.0);
  obs::prom::append_gauge(out, "tune.jobs_inflight",
                          static_cast<double>(
                              tune_jobs_.load(std::memory_order_relaxed)),
                          "Autotune searches currently executing");

  const engine::CacheStats cs = cache_stats();
  obs::prom::append_counter(out, "cache.hits", cs.hits);
  obs::prom::append_counter(out, "cache.disk_hits", cs.disk_hits);
  obs::prom::append_counter(out, "cache.misses", cs.misses);
  obs::prom::append_counter(out, "cache.invalid", cs.invalid);
  obs::prom::append_counter(out, "cache.stores", cs.stores);
  std::size_t cache_entries = 0, cache_bytes = 0;
  std::vector<std::size_t> hot_sizes, inflight_sizes;
  hot_sizes.reserve(shards_.size());
  inflight_sizes.reserve(shards_.size());
  for (const auto& sh : shards_) {
    cache_entries += sh->cache->size();
    cache_bytes += sh->cache->memory_bytes();
    std::lock_guard<std::mutex> lock(sh->mu);
    hot_sizes.push_back(sh->hot.size());
    inflight_sizes.push_back(sh->inflight.size());
  }
  obs::prom::append_gauge(out, "cache.memory_entries",
                          static_cast<double>(cache_entries));
  obs::prom::append_gauge(out, "cache.memory_bytes",
                          static_cast<double>(cache_bytes),
                          "Payload bytes held by the in-memory tier");

  obs::prom::begin_gauge_family(out, "server.shard_hot_entries",
                                "Pre-serialized responses held per shard");
  for (std::size_t i = 0; i < hot_sizes.size(); ++i)
    obs::prom::append_gauge_sample(out, "server.shard_hot_entries", "shard",
                                   std::to_string(i),
                                   static_cast<double>(hot_sizes[i]));
  obs::prom::begin_gauge_family(out, "server.shard_inflight",
                                "Coalescing-map entries per shard");
  for (std::size_t i = 0; i < inflight_sizes.size(); ++i)
    obs::prom::append_gauge_sample(out, "server.shard_inflight", "shard",
                                   std::to_string(i),
                                   static_cast<double>(inflight_sizes[i]));

  {
    std::lock_guard<std::mutex> lock(transport_mu_);
    if (transport_metrics_) transport_metrics_(out);
  }
  return out;
}

void Service::set_transport_metrics(std::function<void(std::string&)> fn) {
  std::lock_guard<std::mutex> lock(transport_mu_);
  transport_metrics_ = std::move(fn);
}

}  // namespace ilp::server
