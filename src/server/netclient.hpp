// Tiny blocking line-oriented TCP client for the ilpd protocol, shared by
// ilp_loadgen and tests/server/.  Header-only on purpose: both users want a
// couple of calls, not a client library.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <string>

namespace ilp::server {

class LineClient {
 public:
  LineClient() = default;
  ~LineClient() { close(); }

  LineClient(LineClient&& other) noexcept : fd_(other.fd_), buf_(std::move(other.buf_)) {
    other.fd_ = -1;
  }
  LineClient& operator=(LineClient&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      buf_ = std::move(other.buf_);
      other.fd_ = -1;
    }
    return *this;
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  bool connect(const std::string& host, int port) {
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return true;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buf_.clear();
  }

  bool send_line(const std::string& line) {
    std::string framed = line;
    framed += '\n';
    return send_raw(framed);
  }

  // Sends bytes exactly as given (no framing) — for pipelining several
  // already-framed lines in one write.
  bool send_raw(const std::string& framed) {
    const char* p = framed.data();
    std::size_t n = framed.size();
    while (n > 0) {
      const ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += w;
      n -= static_cast<std::size_t>(w);
    }
    return true;
  }

  // One response line (newline stripped), or nullopt on timeout/EOF/error.
  std::optional<std::string> recv_line(int timeout_ms = 30'000) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      pollfd p{fd_, POLLIN, 0};
      const int r = ::poll(&p, 1, timeout_ms);
      if (r <= 0) return std::nullopt;  // timeout or poll failure
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return std::nullopt;  // peer closed
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace ilp::server
