#include "server/protocol.hpp"

#include <cinttypes>

#include "support/strings.hpp"

namespace ilp::server {

const char* error_kind_name(ErrorKind k) {
  switch (k) {
    case ErrorKind::BadRequest: return "bad_request";
    case ErrorKind::Overloaded: return "overloaded";
    case ErrorKind::ShuttingDown: return "shutting_down";
    case ErrorKind::DeadlineExceeded: return "deadline_exceeded";
    case ErrorKind::CompileError: return "compile_error";
    case ErrorKind::SimError: return "sim_error";
    case ErrorKind::Internal: return "internal";
  }
  return "internal";
}

std::optional<OptLevel> parse_level_name(std::string_view name) {
  if (name == "conv") return OptLevel::Conv;
  if (name == "lev1") return OptLevel::Lev1;
  if (name == "lev2") return OptLevel::Lev2;
  if (name == "lev3") return OptLevel::Lev3;
  if (name == "lev4") return OptLevel::Lev4;
  return std::nullopt;
}

namespace {

// Client ids are echoed byte-for-byte; only scalars are accepted (an id that
// needed structural round-tripping would force this file to be a full JSON
// writer for no protocol benefit).
std::optional<std::string> serialize_scalar(const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::Null: return std::string("null");
    case JsonValue::Kind::Bool: return std::string(v.as_bool() ? "true" : "false");
    case JsonValue::Kind::Number:
      if (v.as_double() == static_cast<double>(v.as_int()))
        return strformat("%lld", static_cast<long long>(v.as_int()));
      return strformat("%.17g", v.as_double());
    case JsonValue::Kind::String:
      return strformat("\"%s\"", json_escape(v.as_string()).c_str());
    default: return std::nullopt;
  }
}

bool read_int_field(const JsonValue& obj, const char* name, std::int64_t& out,
                    std::string* error) {
  const JsonValue* v = obj.find(name);
  if (v == nullptr) return true;
  if (!v->is_number()) {
    *error = strformat("field '%s' must be a number", name);
    return false;
  }
  out = v->as_int();
  return true;
}

bool parse_compile(const JsonValue& obj, CompileRequest& out, std::string* error) {
  if (const JsonValue* v = obj.find("source")) {
    if (!v->is_string()) {
      *error = "field 'source' must be a string";
      return false;
    }
    out.source = v->as_string();
  }
  if (const JsonValue* v = obj.find("workload")) {
    if (!v->is_string()) {
      *error = "field 'workload' must be a string";
      return false;
    }
    out.workload = v->as_string();
  }
  if (out.source.empty() == out.workload.empty()) {
    *error = "compile requests need exactly one of 'source' or 'workload'";
    return false;
  }
  if (const JsonValue* v = obj.find("level")) {
    const auto l = v->is_string() ? parse_level_name(v->as_string()) : std::nullopt;
    if (!l) {
      *error = "field 'level' must be one of conv|lev1|lev2|lev3|lev4";
      return false;
    }
    out.level = *l;
  }
  if (const JsonValue* v = obj.find("transforms")) {
    if (!v->is_object()) {
      *error = "field 'transforms' must be an object of booleans";
      return false;
    }
    TransformSet set;
    for (const auto& [name, flag] : v->members()) {
      if (!flag.is_bool()) {
        *error = strformat("transform '%s' must be a boolean", name.c_str());
        return false;
      }
      const bool on = flag.as_bool();
      if (name == "unroll") set.unroll = on;
      else if (name == "rename") set.rename = on;
      else if (name == "combine") set.combine = on;
      else if (name == "strength") set.strength = on;
      else if (name == "height") set.height = on;
      else if (name == "acc_expand") set.acc_expand = on;
      else if (name == "ind_expand") set.ind_expand = on;
      else if (name == "search_expand") set.search_expand = on;
      else {
        *error = strformat("unknown transform '%s'", name.c_str());
        return false;
      }
    }
    out.transforms = set;
  }
  if (const JsonValue* v = obj.find("nest")) {
    if (!v->is_object()) {
      *error = "field 'nest' must be an object";
      return false;
    }
    for (const auto& [name, flag] : v->members()) {
      if (name == "tile_size") {
        const std::int64_t ts = flag.is_number() ? flag.as_int() : 0;
        if (ts < 2 || ts > 4096) {
          *error = "nest field 'tile_size' must be in [2, 4096]";
          return false;
        }
        out.nest.tile_size = static_cast<int>(ts);
        continue;
      }
      if (!flag.is_bool()) {
        *error = strformat("nest pass '%s' must be a boolean", name.c_str());
        return false;
      }
      const bool on = flag.as_bool();
      if (name == "interchange") out.nest.interchange = on;
      else if (name == "fuse") out.nest.fuse = on;
      else if (name == "fission") out.nest.fission = on;
      else if (name == "tile") out.nest.tile = on;
      else {
        *error = strformat("unknown nest pass '%s'", name.c_str());
        return false;
      }
    }
  }
  if (const JsonValue* v = obj.find("scheduler")) {
    const auto k = v->is_string() ? parse_scheduler_kind(v->as_string()) : std::nullopt;
    if (!k) {
      *error = "field 'scheduler' must be \"list\" or \"modulo\"";
      return false;
    }
    out.scheduler = *k;
  }
  std::int64_t issue = out.issue, unroll = out.unroll;
  if (!read_int_field(obj, "issue", issue, error)) return false;
  if (!read_int_field(obj, "unroll", unroll, error)) return false;
  if (issue < 1 || issue > 64) {
    *error = "field 'issue' must be in [1, 64]";
    return false;
  }
  if (unroll < 1 || unroll > 64) {
    *error = "field 'unroll' must be in [1, 64]";
    return false;
  }
  out.issue = static_cast<int>(issue);
  out.unroll = static_cast<int>(unroll);
  if (!read_int_field(obj, "deadline_ms", out.deadline_ms, error)) return false;
  if (!read_int_field(obj, "debug_sleep_ms", out.debug_sleep_ms, error)) return false;
  if (out.deadline_ms < 0 || out.debug_sleep_ms < 0) {
    *error = "deadline_ms / debug_sleep_ms must be non-negative";
    return false;
  }
  if (const JsonValue* v = obj.find("trace")) {
    if (!v->is_bool()) {
      *error = "field 'trace' must be a boolean";
      return false;
    }
    out.trace = v->as_bool();
  }
  if (const JsonValue* v = obj.find("profile")) {
    if (!v->is_bool()) {
      *error = "field 'profile' must be a boolean";
      return false;
    }
    out.profile = v->as_bool();
  }
  return true;
}

bool parse_batch(const JsonValue& obj, BatchRequest& out, std::string* error) {
  if (const JsonValue* v = obj.find("workloads")) {
    if (!v->is_array()) {
      *error = "field 'workloads' must be an array of names";
      return false;
    }
    for (const JsonValue& item : v->items()) {
      if (!item.is_string()) {
        *error = "field 'workloads' must contain only strings";
        return false;
      }
      out.workloads.push_back(item.as_string());
    }
  }
  if (const JsonValue* v = obj.find("levels")) {
    if (!v->is_array()) {
      *error = "field 'levels' must be an array of level names";
      return false;
    }
    for (const JsonValue& item : v->items()) {
      const auto l =
          item.is_string() ? parse_level_name(item.as_string()) : std::nullopt;
      if (!l) {
        *error = "field 'levels' entries must be conv|lev1|lev2|lev3|lev4";
        return false;
      }
      out.levels.push_back(*l);
    }
  }
  if (const JsonValue* v = obj.find("widths")) {
    if (!v->is_array()) {
      *error = "field 'widths' must be an array of issue widths";
      return false;
    }
    for (const JsonValue& item : v->items()) {
      const std::int64_t w = item.is_number() ? item.as_int() : 0;
      if (w < 1 || w > 64) {
        *error = "field 'widths' entries must be in [1, 64]";
        return false;
      }
      out.widths.push_back(static_cast<int>(w));
    }
  }
  if (const JsonValue* v = obj.find("scheduler")) {
    const auto k = v->is_string() ? parse_scheduler_kind(v->as_string()) : std::nullopt;
    if (!k) {
      *error = "field 'scheduler' must be \"list\" or \"modulo\"";
      return false;
    }
    out.scheduler = *k;
  }
  if (!read_int_field(obj, "deadline_ms", out.deadline_ms, error)) return false;
  if (out.deadline_ms < 0) {
    *error = "deadline_ms must be non-negative";
    return false;
  }
  return true;
}

bool parse_autotune(const JsonValue& obj, AutotuneRequest& out, std::string* error) {
  if (const JsonValue* v = obj.find("source")) {
    if (!v->is_string()) {
      *error = "field 'source' must be a string";
      return false;
    }
    out.source = v->as_string();
  }
  if (const JsonValue* v = obj.find("workload")) {
    if (!v->is_string()) {
      *error = "field 'workload' must be a string";
      return false;
    }
    out.workload = v->as_string();
  }
  if (out.source.empty() == out.workload.empty()) {
    *error = "autotune requests need exactly one of 'source' or 'workload'";
    return false;
  }
  std::int64_t issue = out.issue, beam = out.beam, rounds = out.rounds,
               max_sims = out.max_sims;
  if (!read_int_field(obj, "issue", issue, error)) return false;
  if (!read_int_field(obj, "beam", beam, error)) return false;
  if (!read_int_field(obj, "rounds", rounds, error)) return false;
  if (!read_int_field(obj, "max_sims", max_sims, error)) return false;
  if (issue < 1 || issue > 64) {
    *error = "field 'issue' must be in [1, 64]";
    return false;
  }
  if (beam < 1 || beam > 64) {
    *error = "field 'beam' must be in [1, 64]";
    return false;
  }
  if (rounds < 0 || rounds > 64) {
    *error = "field 'rounds' must be in [0, 64]";
    return false;
  }
  if (max_sims < 1 || max_sims > 4096) {
    *error = "field 'max_sims' must be in [1, 4096]";
    return false;
  }
  out.issue = static_cast<int>(issue);
  out.beam = static_cast<int>(beam);
  out.rounds = static_cast<int>(rounds);
  out.max_sims = static_cast<int>(max_sims);
  if (const JsonValue* v = obj.find("sim_fraction")) {
    if (!v->is_number() || v->as_double() <= 0.0 || v->as_double() > 1.0) {
      *error = "field 'sim_fraction' must be a number in (0, 1]";
      return false;
    }
    out.sim_fraction = v->as_double();
  }
  if (const JsonValue* v = obj.find("cost_model")) {
    if (!v->is_bool()) {
      *error = "field 'cost_model' must be a boolean";
      return false;
    }
    out.cost_model = v->as_bool();
  }
  if (!read_int_field(obj, "deadline_ms", out.deadline_ms, error)) return false;
  if (out.deadline_ms < 0) {
    *error = "deadline_ms must be non-negative";
    return false;
  }
  if (const JsonValue* v = obj.find("trace")) {
    if (!v->is_bool()) {
      *error = "field 'trace' must be a boolean";
      return false;
    }
    out.trace = v->as_bool();
  }
  return true;
}

}  // namespace

std::optional<Request> parse_request(const std::string& line, std::string* error) {
  const auto doc = JsonValue::parse(line, error);
  if (!doc) return std::nullopt;
  if (!doc->is_object()) {
    *error = "request must be a JSON object";
    return std::nullopt;
  }

  Request req;
  req.id_json = "null";
  if (const JsonValue* id = doc->find("id")) {
    const auto echoed = serialize_scalar(*id);
    if (!echoed) {
      *error = "field 'id' must be a scalar";
      return std::nullopt;
    }
    req.id_json = *echoed;
  }

  const JsonValue* kind = doc->find("kind");
  if (kind == nullptr || !kind->is_string()) {
    *error = "field 'kind' (string) is required";
    return std::nullopt;
  }
  if (kind->as_string() == "compile") {
    req.kind = RequestKind::Compile;
    if (!parse_compile(*doc, req.compile, error)) return std::nullopt;
  } else if (kind->as_string() == "batch") {
    req.kind = RequestKind::Batch;
    if (!parse_batch(*doc, req.batch, error)) return std::nullopt;
  } else if (kind->as_string() == "autotune") {
    req.kind = RequestKind::Autotune;
    if (!parse_autotune(*doc, req.autotune, error)) return std::nullopt;
  } else if (kind->as_string() == "stats") {
    req.kind = RequestKind::Stats;
  } else if (kind->as_string() == "metrics") {
    req.kind = RequestKind::Metrics;
  } else if (kind->as_string() == "profile") {
    req.kind = RequestKind::Profile;
  } else {
    *error = strformat("unknown request kind '%s'", kind->as_string().c_str());
    return std::nullopt;
  }
  return req;
}

std::string ProfileSummary::to_json() const {
  std::string out = strformat("{\"width\": %d, \"cycles\": %" PRIu64 ", \"slots\": {",
                              width, cycles);
  for (int c = 0; c < kNumStallCauses; ++c)
    out += strformat("%s\"%s\": %" PRIu64, c == 0 ? "" : ", ",
                     stall_cause_name(static_cast<StallCause>(c)),
                     slots[static_cast<std::size_t>(c)]);
  out += "}, \"occupancy\": [";
  for (std::size_t k = 0; k < occupancy.size(); ++k)
    out += strformat("%s%" PRIu64, k == 0 ? "" : ", ", occupancy[k]);
  out += "]}";
  return out;
}

CompileBody serialize_compile_body(const CompileResponse& r) {
  CompileBody body;
  body.pre = strformat(
      ", \"ok\": true, \"kind\": \"compile\", \"cycles\": %" PRIu64
      ", \"base_cycles\": %" PRIu64 ", \"speedup\": %.6f, "
      "\"dynamic_instructions\": %" PRIu64 ", \"static_instructions\": %d, "
      "\"schedule\": {\"blocks\": %d, \"stall_cycles\": %" PRIu64 "}, "
      "\"registers\": {\"int\": %d, \"fp\": %d}, \"cached\": ",
      r.cycles, r.base_cycles, r.speedup, r.dynamic_instructions,
      r.static_instructions, r.blocks, r.stall_cycles, r.int_regs, r.fp_regs);
  std::string& out = body.post;
  out = strformat(", \"scheduler\": \"%s\"", scheduler_kind_name(r.scheduler));
  if (r.have_transforms) {
    const TransformStats& t = r.transforms;
    out += strformat(
        ", \"transforms\": {\"loops_unrolled\": %d, \"regs_renamed\": %d, "
        "\"accs_expanded\": %d, \"inds_expanded\": %d, \"searches_expanded\": %d, "
        "\"ops_combined\": %d, \"strength_reduced\": %d, \"trees_rebalanced\": %d, "
        "\"loops_interchanged\": %d, \"loops_fused\": %d, \"loops_fissioned\": %d, "
        "\"loops_tiled\": %d, "
        "\"ir_insts_before\": %zu, \"ir_insts_after\": %zu}",
        t.loops_unrolled, t.regs_renamed, t.accs_expanded, t.inds_expanded,
        t.searches_expanded, t.ops_combined, t.strength_reduced,
        t.trees_rebalanced, t.loops_interchanged, t.loops_fused,
        t.loops_fissioned, t.loops_tiled, t.ir_insts_before, t.ir_insts_after);
    if (r.scheduler == SchedulerKind::Modulo) {
      const ModuloStats& ms = t.modulo;
      out += strformat(
          ", \"modulo\": {\"loops_pipelined\": %d, \"loops_fallback\": %d, "
          "\"backtracks\": %d, \"min_ii_sum\": %d, \"achieved_ii_sum\": %d, "
          "\"max_stages\": %d}",
          ms.loops_pipelined, ms.loops_fallback, ms.backtracks, ms.min_ii_sum,
          ms.achieved_ii_sum, ms.max_stages);
    }
  }
  if (r.have_profile) out += ", \"profile\": " + r.profile.to_json();
  return body;
}

std::string assemble_compile_response(const std::string& id_json,
                                      const CompileBody& body, bool cached,
                                      const std::string& request_id,
                                      const std::string& trace_file) {
  std::string out;
  out.reserve(8 + id_json.size() + body.pre.size() + body.post.size() +
              request_id.size() + trace_file.size() + 40);
  out += "{\"id\": ";
  out += id_json;
  out += body.pre;
  out += cached ? "true" : "false";
  out += body.post;
  if (!request_id.empty())
    out += strformat(", \"request_id\": \"%s\"", json_escape(request_id).c_str());
  if (!trace_file.empty())
    out += strformat(", \"trace_file\": \"%s\"", json_escape(trace_file).c_str());
  out += "}";
  return out;
}

std::string serialize_compile_response(const std::string& id_json,
                                       const CompileResponse& r) {
  return assemble_compile_response(id_json, serialize_compile_body(r), r.cached,
                                   r.request_id, r.trace_file);
}

std::string serialize_autotune_response(const std::string& id_json,
                                        const std::string& result_json,
                                        bool cached,
                                        const std::string& request_id,
                                        const std::string& trace_file,
                                        double elapsed_ms) {
  std::string out = strformat(
      "{\"id\": %s, \"ok\": true, \"kind\": \"autotune\", \"result\": %s, "
      "\"cached\": %s",
      id_json.c_str(), result_json.c_str(), cached ? "true" : "false");
  if (!request_id.empty())
    out += strformat(", \"request_id\": \"%s\"", json_escape(request_id).c_str());
  if (!trace_file.empty())
    out += strformat(", \"trace_file\": \"%s\"", json_escape(trace_file).c_str());
  out += strformat(", \"elapsed_ms\": %.3f}", elapsed_ms);
  return out;
}

std::string serialize_batch_response(const std::string& id_json,
                                     const std::vector<BatchCell>& cells,
                                     double elapsed_ms) {
  std::string out = strformat(
      "{\"id\": %s, \"ok\": true, \"kind\": \"batch\", \"cells\": [", id_json.c_str());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const BatchCell& c = cells[i];
    out += strformat(
        "%s{\"workload\": \"%s\", \"level\": \"%s\", \"width\": %d, "
        "\"cycles\": %" PRIu64 ", \"registers\": {\"int\": %d, \"fp\": %d}, "
        "\"error\": \"%s\"}",
        i == 0 ? "" : ", ", json_escape(c.workload).c_str(), level_name(c.level),
        c.width, c.cycles, c.int_regs, c.fp_regs, json_escape(c.error).c_str());
  }
  out += strformat("], \"elapsed_ms\": %.3f}", elapsed_ms);
  return out;
}

std::string serialize_stats_response(const std::string& id_json,
                                     const std::string& stats_body) {
  return strformat("{\"id\": %s, \"ok\": true, \"kind\": \"stats\", \"stats\": %s}",
                   id_json.c_str(), stats_body.c_str());
}

std::string serialize_metrics_response(const std::string& id_json,
                                       const std::string& exposition) {
  return strformat(
      "{\"id\": %s, \"ok\": true, \"kind\": \"metrics\", \"format\": "
      "\"prometheus-0.0.4\", \"exposition\": \"%s\"}",
      id_json.c_str(), json_escape(exposition).c_str());
}

std::string serialize_profile_response(const std::string& id_json,
                                       const std::string& profile_body) {
  return strformat(
      "{\"id\": %s, \"ok\": true, \"kind\": \"profile\", \"profile\": %s}",
      id_json.c_str(), profile_body.c_str());
}

std::string serialize_error(const std::string& id_json, ErrorKind kind,
                            const std::string& message) {
  return strformat(
      "{\"id\": %s, \"ok\": false, \"error\": {\"kind\": \"%s\", \"message\": \"%s\"}}",
      id_json.c_str(), error_kind_name(kind), json_escape(message).c_str());
}

}  // namespace ilp::server
