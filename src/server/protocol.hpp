// The ilpd wire protocol: one JSON object per line, in both directions.
//
// Requests (all fields beyond `kind` optional unless noted):
//
//   {"id": <any scalar, echoed>, "kind": "compile",
//    "source": "<DSL text>" | "workload": "<Table 2 name>",   // exactly one
//    "level": "conv"|"lev1"|"lev2"|"lev3"|"lev4",             // default lev4
//    "transforms": {"unroll": true, ...},   // overrides level (ablation form)
//    "nest": {"interchange": true, "fuse": true, "fission": true,
//             "tile": true, "tile_size": 16},  // pre-pass loop restructuring
//    "issue": 8, "unroll": 8,
//    "deadline_ms": 10000, "debug_sleep_ms": 0}
//
//   {"kind": "batch",
//    "workloads": ["APS-1", ...],           // empty/absent = full suite
//    "levels": ["conv", ...], "widths": [1, 2, 4, 8],
//    "deadline_ms": 60000}
//
//   {"kind": "autotune",
//    "source": "<DSL text>" | "workload": "<Table 2 name>",   // exactly one
//    "issue": 8, "beam": 4, "rounds": 3, "sim_fraction": 0.5,
//    "max_sims": 48, "cost_model": true,    // false: exhaustive (no pruning)
//    "deadline_ms": 30000, "trace": true}   // deadline stops the search with
//                                           // the best found so far
//
//   {"kind": "stats"}
//
//   {"kind": "metrics"}        // Prometheus text exposition, JSON-wrapped
//
//   {"kind": "profile"}        // daemon-lifetime stall accounting: global
//                              // per-cause slot totals and the issue-
//                              // occupancy histogram over every simulated
//                              // cell (sim/profile.hpp taxonomy)
//
// Compile requests additionally accept {"trace": true}: when the daemon was
// started with --trace-dir, the request is traced end to end (request → job
// → pass spans, all tagged with the minted request id) and the response
// names the Chrome trace file that was written; traced requests also carry
// the simulated issue-slot lanes.  {"profile": true} attaches the cell's
// cycle-accounting summary (per-cause slots + occupancy histogram) to the
// compile response under "profile".
//
// Responses: {"id": ..., "ok": true, "kind": ..., <result fields>} or
// {"id": ..., "ok": false, "error": {"kind": "<ErrorKind>", "message": ...}}.
// Compile responses echo the server-minted "request_id" and, for cells that
// were actually compiled (not cache hits from before this schema), the
// paper's per-transformation counters under "transforms".
//
// Error kinds are a closed enum so clients can switch on them; `overloaded`
// and `shutting_down` are the admission controller's explicit backpressure
// signals — the daemon never parks a request it cannot serve.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "server/json.hpp"
#include "sim/profile.hpp"
#include "trans/level.hpp"

namespace ilp::server {

enum class RequestKind { Compile, Batch, Autotune, Stats, Metrics, Profile };

enum class ErrorKind {
  BadRequest,        // malformed JSON / unknown fields / bad values
  Overloaded,        // admission queue full — retry later
  ShuttingDown,      // drain in progress — connect elsewhere
  DeadlineExceeded,  // request-scoped deadline fired first
  CompileError,      // DSL front-end / transformation failure
  SimError,          // simulation failed
  Internal,          // engine job threw
};

[[nodiscard]] const char* error_kind_name(ErrorKind k);

struct CompileRequest {
  std::string source;           // exactly one of source/workload is set
  std::string workload;
  OptLevel level = OptLevel::Lev4;
  std::optional<TransformSet> transforms;  // set => custom ablation pipeline
  NestOptions nest;  // affine nest restructuring pre-passes (all off by default)
  SchedulerKind scheduler = SchedulerKind::List;  // "scheduler": "list"|"modulo"
  int issue = 8;
  int unroll = 8;
  std::int64_t deadline_ms = 0;     // 0 => service default
  std::int64_t debug_sleep_ms = 0;  // test/bench aid: sleep inside the job
  bool trace = false;               // request-scoped Chrome trace (needs --trace-dir)
  bool profile = false;             // attach the cell's stall-accounting summary
};

struct BatchRequest {
  std::vector<std::string> workloads;  // empty => full Table 2 suite
  std::vector<OptLevel> levels;        // empty => all five
  std::vector<int> widths;             // empty => {1, 2, 4, 8}
  SchedulerKind scheduler = SchedulerKind::List;
  std::int64_t deadline_ms = 0;
};

struct AutotuneRequest {
  std::string source;  // exactly one of source/workload is set
  std::string workload;
  int issue = 8;
  int beam = 4;
  int rounds = 3;
  double sim_fraction = 0.5;
  int max_sims = 48;
  bool cost_model = true;  // false: simulate every candidate (exhaustive)
  std::int64_t deadline_ms = 0;  // 0 => service default; stops, not kills
  bool trace = false;  // request-scoped Chrome trace (needs --trace-dir)
};

struct Request {
  RequestKind kind = RequestKind::Stats;
  std::string id_json;  // client id, re-serialized verbatim ("null" if absent)
  CompileRequest compile;
  BatchRequest batch;
  AutotuneRequest autotune;
};

// Parses one request line.  On failure returns nullopt and fills `error`
// with a message suitable for a bad_request response.
std::optional<Request> parse_request(const std::string& line, std::string* error);

// --- Response builders (serialization only; the service fills the data) ----

// Wire-compact cycle-accounting summary: the global per-cause totals and the
// occupancy histogram of one cell's profiled run.  The full CycleProfile
// (per-block matrix, per-opcode tallies) stays server-local — the summary is
// what round-trips through the response and the result cache.
struct ProfileSummary {
  int width = 0;
  std::uint64_t cycles = 0;
  std::array<std::uint64_t, kNumStallCauses> slots{};
  std::vector<std::uint64_t> occupancy;  // width + 1 bins

  static ProfileSummary from(const CycleProfile& p) {
    ProfileSummary s;
    s.width = p.width;
    s.cycles = p.cycles;
    s.slots = p.slots;
    s.occupancy = p.occupancy;
    return s;
  }
  // {"width": W, "cycles": C, "slots": {"issued": ...}, "occupancy": [...]}
  [[nodiscard]] std::string to_json() const;
};

struct CompileResponse {
  std::uint64_t cycles = 0;
  std::uint64_t base_cycles = 0;  // Conv @ issue-1 of the same source
  double speedup = 0.0;
  std::uint64_t dynamic_instructions = 0;
  std::uint64_t stall_cycles = 0;  // cycles slot 0 could not issue (schedule quality)
  int static_instructions = 0;
  int blocks = 0;                  // schedule summary
  int int_regs = 0;
  int fp_regs = 0;
  bool cached = false;  // served without running compile+simulate
  // Which ILP transformations fired for this cell (trans/level.hpp); absent
  // from responses decoded out of pre-observability cache entries.
  bool have_transforms = false;
  TransformStats transforms;
  // Set when the request asked for {"profile": true}; serialized into the
  // response's "profile" field.
  bool have_profile = false;
  ProfileSummary profile;
  SchedulerKind scheduler = SchedulerKind::List;  // echoed backend choice
  std::string request_id;  // server-minted; also the trace correlation key
  std::string trace_file;  // non-empty when a request-scoped trace was written
};

struct BatchCell {
  std::string workload;
  OptLevel level = OptLevel::Conv;
  int width = 1;
  std::uint64_t cycles = 0;
  int int_regs = 0;
  int fp_regs = 0;
  std::string error;  // per-cell failure; batch itself still succeeds
};

std::string serialize_compile_response(const std::string& id_json,
                                       const CompileResponse& r);

// --- Zero-copy response segments -------------------------------------------
//
// A compile response differs between two replies for the same cell only in
// the echoed client id, the `cached` flag and the server-minted request id.
// Everything else is split into two immutable segments that the service
// caches per cell and the epoll transport emits with writev — no per-reply
// serialization, no per-reply copy of the (largest) measured part:
//
//   {"id": <id_json><pre><true|false><post>, "request_id": "r-N"}\n
//
// assemble_compile_response() glues the same pieces into one string; by
// construction it produces exactly the bytes serialize_compile_response
// yields for the equivalent CompileResponse (the golden transport-equivalence
// test in tests/server/ holds the two paths together).
struct CompileBody {
  std::string pre;   // `, "ok": true, ... "cached": ` — follows the echoed id
  std::string post;  // `, "scheduler": ...` — transforms/modulo tail, pre-`}`
};

// Serializes the id-independent segments of `r` (ignores r.cached,
// r.request_id and r.trace_file — those are per-reply).
CompileBody serialize_compile_body(const CompileResponse& r);

std::string assemble_compile_response(const std::string& id_json,
                                      const CompileBody& body, bool cached,
                                      const std::string& request_id,
                                      const std::string& trace_file);

// One response, ready for the wire.  Either `flat` holds the whole line
// (stats, errors, traced requests, batch), or `body` is set and the line is
// assembled from shared segments at write time.
struct Reply {
  std::string flat;                         // used when body == nullptr
  std::shared_ptr<const CompileBody> body;  // zero-copy compile form
  std::string id_json;
  bool cached = false;
  std::string request_id;

  [[nodiscard]] std::string to_line() const {
    return body == nullptr ? flat
                           : assemble_compile_response(id_json, *body, cached,
                                                       request_id, {});
  }
};
// `result_json` is the tuner's own "tune-result-v1" object (tune/tune.hpp);
// `cached` marks a whole-search replay from the tune result cache.
std::string serialize_autotune_response(const std::string& id_json,
                                        const std::string& result_json,
                                        bool cached,
                                        const std::string& request_id,
                                        const std::string& trace_file,
                                        double elapsed_ms);
std::string serialize_batch_response(const std::string& id_json,
                                     const std::vector<BatchCell>& cells,
                                     double elapsed_ms);
// `stats_body` is a pre-rendered JSON object (the service owns the schema).
std::string serialize_stats_response(const std::string& id_json,
                                     const std::string& stats_body);
// Wraps a Prometheus text exposition as a JSON string field.
std::string serialize_metrics_response(const std::string& id_json,
                                       const std::string& exposition);
// `profile_body` is a pre-rendered JSON object (the service owns the schema:
// daemon-lifetime per-cause totals + occupancy accumulated over every cell).
std::string serialize_profile_response(const std::string& id_json,
                                       const std::string& profile_body);
std::string serialize_error(const std::string& id_json, ErrorKind kind,
                            const std::string& message);

// Shared helpers.
[[nodiscard]] std::optional<OptLevel> parse_level_name(std::string_view name);

}  // namespace ilp::server
