// The compile-and-simulate service behind ilpd: admission control, request
// coalescing, deadlines and graceful drain on top of the experiment engine —
// sharded per core so the hot path never takes a cross-core lock.
//
// Request life cycle:
//
//   handle_line(text) -> parse -> admission -> engine pool -> response line
//   serve(text)       -> parse -> admission -> inline on the shard worker
//                                              -> zero-copy response segments
//
//   * State is sharded: the result cache, the pre-serialized hot-response
//     tier and the in-flight coalescing map are split into `workers` shards
//     keyed by the cell's content hash.  The epoll transport routes requests
//     so that a shard's structures are touched by one worker thread almost
//     always; per-shard mutexes remain for cross-shard joiners, the
//     pool-backed handle_line path and the stats walkers, but they are
//     uncontended in steady state.
//   * Admission is a bounded counter: at most `workers + queue_limit` study
//     cells may be in flight (queued or executing).  A request that would
//     exceed the bound is rejected immediately with an `overloaded` error —
//     backpressure is always explicit, never a silently growing queue.
//   * Identical in-flight compile requests coalesce: the request key is the
//     engine cache's content hash (HashStream over source, pipeline, machine
//     and options), and the owning shard's in-flight map lets later arrivals
//     share the first arrival's future instead of duplicating work — even
//     when the arrivals ride different transports.
//   * Completed cells persist in the shard's engine::ResultCache partition
//     (memory + optional shared disk tier), and successful compile cells
//     additionally keep their serialized response segments in the shard's
//     hot tier, so a warm repeat over the epoll transport costs one hash
//     lookup and a writev — no JSON is built per reply (protocol.hpp
//     CompileBody).
//   * Every request carries a deadline (client-set or the service default).
//     On the pool path a deadline that fires while the job is still queued
//     cancels it through the engine's JobGroup hook; on the direct path the
//     queue is the transport's dispatch ring, and a line whose ring wait
//     already exceeded its deadline is answered `deadline_exceeded` without
//     executing.  A cell already running always finishes into the cache.
//   * begin_drain() flips the service into shutdown mode: compile/batch
//     requests are refused with `shutting_down` (stats still answers), and
//     wait_drained() blocks until every admitted cell has settled.
//   * Observability: every request gets a server-minted id (r-<n>) that is
//     stamped on log lines, echoed in compile responses, and used as the
//     span correlation key.  Work requests record end-to-end latency and
//     queue wait into log-bucketed histograms; the `metrics` verb returns a
//     Prometheus text exposition of everything (including per-shard gauges
//     the transport registers via set_transport_metrics), and a compile
//     request with {"trace": true} writes a request-scoped Chrome trace when
//     the service has a trace_dir — with the simulated issue window rendered
//     as per-slot lanes next to the wall-clock spans.
//   * Cycle accounting: every executed cell runs under the simulator's
//     stall-attribution profile (sim/profile.hpp).  A compile request with
//     {"profile": true} gets the cell's summary in its response; the
//     `profile` verb reports daemon-lifetime per-cause totals; the metrics
//     exposition carries them as sim_stall_slots_total{cause=...} and
//     sim_issue_occupancy_total{slots=...}.
//
// The service is transport-agnostic and fully thread-safe; server.cpp feeds
// it lines from its shard workers via serve(), tests call handle_line
// directly.  Both paths produce byte-identical response lines for the same
// request sequence (pinned by tests/server/epoll_transport_test.cpp).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <optional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/cache.hpp"
#include "engine/metrics.hpp"
#include "engine/pool.hpp"
#include "obs/histogram.hpp"
#include "server/protocol.hpp"

namespace ilp::server {

struct ServiceConfig {
  int workers = 0;                 // 0 = one per hardware thread
  std::size_t queue_limit = 64;    // admitted-but-unfinished cells beyond workers
  std::int64_t default_deadline_ms = 30'000;  // 0 = no default deadline
  std::string cache_dir;           // non-empty: persistent result tier
  // Non-empty: compile requests with {"trace": true} write a per-request
  // Chrome trace (request → job → pass spans) to <trace_dir>/req-<id>.json.
  std::string trace_dir;
  // Hot-tier bound per shard: pre-serialized response bodies kept for warm
  // zero-copy replies.  The tier is cleared wholesale when it fills (the
  // result cache underneath still answers; only the pre-serialization is
  // redone), so memory stays bounded under adversarial key churn.
  std::size_t hot_entries_per_shard = 4096;
  // Concurrent autotune searches (each one fans candidate evaluations onto
  // the engine pool, so a handful saturates every worker).  A request beyond
  // the bound is refused `overloaded`, like any admission failure.
  std::size_t tune_job_limit = 4;
};

struct ServiceCounters {
  std::uint64_t received = 0;
  std::uint64_t ok = 0;
  std::uint64_t bad_request = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t shutting_down = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t compile_errors = 0;  // compile_error + sim_error responses
  std::uint64_t internal_errors = 0;
  std::uint64_t coalesced = 0;       // requests that joined an in-flight twin
  std::uint64_t cells_executed = 0;  // cells actually computed (not cached)
  std::uint64_t hot_hits = 0;        // replies served from pre-serialized segments
  // Autotune verb accounting (the tune.* metric families).
  std::uint64_t tune_requests = 0;
  std::uint64_t tune_cached = 0;         // whole-search replays from the cache
  std::uint64_t tune_coalesced = 0;      // joined an identical in-flight search
  std::uint64_t tune_stopped_early = 0;  // deadline/drain stopped the search
  std::uint64_t tune_candidates_simulated = 0;
  std::uint64_t tune_candidates_pruned = 0;    // skipped by the cost model
  std::uint64_t tune_candidate_cache_hits = 0; // measurements served from cache
};

class Service {
 public:
  explicit Service(ServiceConfig cfg = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Processes one request line, blocking until the response is ready.
  // Always returns a single response line (no trailing newline) — every
  // failure mode has a protocol representation.  Compile cells run on the
  // engine pool.
  std::string handle_line(const std::string& line);

  // Transport entry, split in two so each half runs on the right thread.
  //
  // parse_and_route runs on the IO thread: it parses the line once, resolves
  // the compile source and computes the cell's content hash, whose shard
  // index tells the transport which dispatch ring the line belongs to
  // (identical cells always route to the same shard, so coalescing and cache
  // hits stay shard-local).  Unroutable lines (parse errors, stats, batch,
  // unknown workloads) get shard 0 — any shard answers them correctly.
  //
  // serve_parsed runs on the shard worker: identical protocol behavior to
  // handle_line, but compile cells execute inline on the calling thread (the
  // shard worker set IS the execution resource) and warm hits return shared
  // pre-serialized segments instead of a fresh string.  `queued_ns` is the
  // time the line waited in the dispatch ring; it counts against the
  // request's deadline and lands in the queue-wait histogram.
  struct ParsedRequest {
    std::optional<Request> req;  // nullopt => parse_error holds the reason
    std::string parse_error;
    std::string source;  // resolved compile source text ("" if unknown workload)
    std::uint64_t cell_key = 0;
    bool has_key = false;
    std::size_t shard = 0;
  };
  [[nodiscard]] ParsedRequest parse_and_route(const std::string& line) const;
  Reply serve_parsed(ParsedRequest p, std::uint64_t queued_ns = 0);
  // Both halves in one call (tests and single-threaded callers).
  Reply serve(const std::string& line, std::uint64_t queued_ns = 0);

  // Refuse new compile/batch work from now on (`shutting_down`); stats
  // requests still answer so drains are observable.
  void begin_drain();
  [[nodiscard]] bool draining() const;
  // Blocks until every admitted cell has settled (run, failed or cancelled).
  void wait_drained();

  [[nodiscard]] ServiceCounters counters() const;
  [[nodiscard]] engine::CacheStats cache_stats() const;
  [[nodiscard]] std::size_t inflight_cells() const {
    return inflight_cells_.load(std::memory_order_acquire);
  }
  [[nodiscard]] int workers() const { return workers_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  // Number of state shards (== workers): cache partition, hot tier and
  // coalescing map are all split this way, and the transport sizes its
  // dispatch rings to match.
  [[nodiscard]] int shard_count() const { return workers_; }

  // The stats-response body; exposed for ilpd's --stats-on-exit report.
  [[nodiscard]] std::string stats_json() const;
  // The profile-response body: daemon-lifetime cycle-accounting totals
  // (per-cause slots + issue-occupancy histogram, sim/profile.hpp taxonomy)
  // summed over every executed cell.  Like stats, the `profile` verb answers
  // during a drain.
  [[nodiscard]] std::string profile_json() const;
  // Prometheus text exposition: the global MetricsRegistry (pass.*, trans.*,
  // server.* histograms) plus the service's own gauges and counters and
  // whatever the transport registered.  The `metrics` wire verb returns
  // this, JSON-wrapped.
  [[nodiscard]] std::string metrics_exposition() const;
  // Transport hook: called (under a lock) during metrics_exposition so the
  // server can append its per-shard ring gauges (shard_queue_depth,
  // shard_ring_drops) to the same exposition.
  void set_transport_metrics(std::function<void(std::string&)> fn);

  // Defined in service.cpp; public so the file-local compute/encode helpers
  // there can name them.
  struct CellOutcome;
  struct Inflight;
  struct RequestObs;
  struct TuneOutcome;
  struct TuneInflight;
  class TuneEvaluator;

 private:
  // Internal counter mirror of ServiceCounters (same order); relaxed
  // atomics so the request path never takes a stats lock.
  enum Counter : unsigned {
    kReceived, kOk, kBadRequest, kOverloaded, kShuttingDown,
    kDeadlineExceeded, kCompileErrors, kInternalErrors, kCoalesced,
    kCellsExecuted, kHotHits, kTuneRequests, kTuneCached, kTuneCoalesced,
    kTuneStoppedEarly, kCounterCount,
  };
  void bump(Counter c) {
    counters_[c].fetch_add(1, std::memory_order_relaxed);
  }

  // One state shard.  Padded so neighbouring shards never false-share; the
  // mutex is uncontended when the transport routes by the same hash.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::shared_ptr<Inflight>> inflight;
    std::unordered_map<std::uint64_t, std::shared_ptr<const CompileBody>> hot;
    std::unique_ptr<engine::ResultCache> cache;
  };

  [[nodiscard]] std::size_t shard_index(std::uint64_t key) const;
  [[nodiscard]] Shard& shard_for(std::uint64_t key) {
    return *shards_[shard_index(key)];
  }
  [[nodiscard]] engine::ResultCache& cache_for(std::uint64_t key) {
    return *shard_for(key).cache;
  }
  // Bounded-insert into the shard's hot tier (clears wholesale when full).
  void hot_insert(Shard& sh, std::uint64_t key,
                  std::shared_ptr<const CompileBody> body);

  // Bounded admission: reserves `n` cells or fails without blocking.
  bool try_admit(std::size_t n);
  // Exactly-once bookkeeping when admitted cells settle.
  void settle_cells(std::size_t n);

  std::string handle_compile(const Request& req, const std::shared_ptr<RequestObs>& ro);
  // Direct-execution variant for serve_parsed(): runs the cell on the
  // calling thread, keeps coalescing via a promise-backed in-flight entry,
  // returns zero-copy segments on warm hits.
  Reply handle_compile_direct(const ParsedRequest& p,
                              const std::shared_ptr<RequestObs>& ro,
                              std::uint64_t queued_ns);
  std::string handle_batch(const Request& req);
  // Autotune verb: coalesced by search content hash, whole results cached,
  // candidate evaluations fanned onto the pool via TuneEvaluator (sharing
  // the compile verb's cell cache), deadline/drain folded into the search's
  // cancellation hook so it stops with the best found so far.
  std::string handle_autotune(const Request& req,
                              const std::shared_ptr<RequestObs>& ro);

  CellOutcome compute_cell(const std::string& source, OptLevel level,
                           const std::optional<TransformSet>& transforms,
                           const NestOptions& nest, SchedulerKind scheduler,
                           int issue, int unroll);
  std::uint64_t base_cycles_for(const std::string& source);
  // Folds one executed cell's profile into the daemon-lifetime accumulators
  // behind profile_json() and the sim.* metric families.
  void accumulate_profile(const CycleProfile& p);

  ServiceConfig cfg_;
  int workers_ = 1;
  std::size_t capacity_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<engine::ThreadPool> pool_;
  engine::Stopwatch uptime_;
  std::atomic<std::uint64_t> request_seq_{0};  // request-id mint

  // Latency histograms live in the (process-global) MetricsRegistry so the
  // exposition walks them with everything else; the references are cached
  // here because histogram() takes the registry lock.
  obs::Histogram& latency_hist_;
  obs::Histogram& queue_wait_hist_;

  std::atomic<std::size_t> inflight_cells_{0};
  std::mutex drain_mu_;  // pairs with drained_cv_ only (never on the hot path)
  std::condition_variable drained_cv_;
  std::atomic<bool> draining_{false};

  std::array<std::atomic<std::uint64_t>, kCounterCount> counters_{};

  // Daemon-lifetime cycle accounting (relaxed: totals, not orderings).
  // Occupancy bins cover issue widths up to kOccupancyBins - 1; wider
  // machines clamp into the top bin.
  static constexpr std::size_t kOccupancyBins = 33;
  std::array<std::atomic<std::uint64_t>, kNumStallCauses> stall_slots_{};
  std::array<std::atomic<std::uint64_t>, kOccupancyBins> occupancy_{};
  std::atomic<std::uint64_t> profiled_cells_{0};
  std::atomic<std::uint64_t> profiled_cycles_{0};

  // Autotune state: a service-wide coalescing map (searches are rare and
  // long compared to cells, so one mutex is fine) and bounded-concurrency
  // accounting.  Candidate counters are add-by-n, hence outside Counter.
  std::mutex tune_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<TuneInflight>> tune_inflight_;
  std::atomic<std::size_t> tune_jobs_{0};
  std::atomic<std::uint64_t> tune_cand_simulated_{0};
  std::atomic<std::uint64_t> tune_cand_pruned_{0};
  std::atomic<std::uint64_t> tune_cand_cache_hits_{0};

  mutable std::mutex transport_mu_;
  std::function<void(std::string&)> transport_metrics_;
};

}  // namespace ilp::server
