// The compile-and-simulate service behind ilpd: admission control, request
// coalescing, deadlines and graceful drain on top of the experiment engine.
//
// Request life cycle:
//
//   handle_line(text) -> parse -> admission -> engine pool -> response line
//
//   * Admission is a bounded counter: at most `workers + queue_limit` study
//     cells may be in flight (queued or executing).  A request that would
//     exceed the bound is rejected immediately with an `overloaded` error —
//     backpressure is always explicit, never a silently growing queue.
//   * Identical in-flight compile requests coalesce: the request key is the
//     engine cache's content hash (HashStream over source, pipeline, machine
//     and options), and a map of in-flight jobs lets later arrivals share the
//     first arrival's future instead of submitting duplicate work.
//   * Completed cells persist in an engine::ResultCache (memory + optional
//     disk tier), so a warm cache serves repeats without compiling at all.
//   * Every request carries a deadline (client-set or the service default).
//     A deadline that fires while the job is still queued cancels it through
//     the engine's JobGroup cancellation hook; a job already running finishes
//     and lands in the cache, but the caller gets `deadline_exceeded` now.
//   * begin_drain() flips the service into shutdown mode: compile/batch
//     requests are refused with `shutting_down` (stats still answers), and
//     wait_drained() blocks until every admitted cell has settled.
//   * Observability: every request gets a server-minted id (r-<n>) that is
//     stamped on log lines, echoed in compile responses, and used as the
//     span correlation key.  Work requests record end-to-end latency and
//     queue wait into log-bucketed histograms; the `metrics` verb returns a
//     Prometheus text exposition of everything, and a compile request with
//     {"trace": true} writes a request-scoped Chrome trace when the service
//     has a trace_dir.
//
// The service is transport-agnostic and fully thread-safe; server.cpp feeds
// it lines from sockets, tests call handle_line directly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "engine/cache.hpp"
#include "engine/metrics.hpp"
#include "engine/pool.hpp"
#include "obs/histogram.hpp"
#include "server/protocol.hpp"

namespace ilp::server {

struct ServiceConfig {
  int workers = 0;                 // 0 = one per hardware thread
  std::size_t queue_limit = 64;    // admitted-but-unfinished cells beyond workers
  std::int64_t default_deadline_ms = 30'000;  // 0 = no default deadline
  std::string cache_dir;           // non-empty: persistent result tier
  // Non-empty: compile requests with {"trace": true} write a per-request
  // Chrome trace (request → job → pass spans) to <trace_dir>/req-<id>.json.
  std::string trace_dir;
};

struct ServiceCounters {
  std::uint64_t received = 0;
  std::uint64_t ok = 0;
  std::uint64_t bad_request = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t shutting_down = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t compile_errors = 0;  // compile_error + sim_error responses
  std::uint64_t internal_errors = 0;
  std::uint64_t coalesced = 0;       // requests that joined an in-flight twin
  std::uint64_t cells_executed = 0;  // cells actually computed (not cached)
};

class Service {
 public:
  explicit Service(ServiceConfig cfg = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Processes one request line, blocking until the response is ready.
  // Always returns a single response line (no trailing newline) — every
  // failure mode has a protocol representation.
  std::string handle_line(const std::string& line);

  // Refuse new compile/batch work from now on (`shutting_down`); stats
  // requests still answer so drains are observable.
  void begin_drain();
  [[nodiscard]] bool draining() const;
  // Blocks until every admitted cell has settled (run, failed or cancelled).
  void wait_drained();

  [[nodiscard]] ServiceCounters counters() const;
  [[nodiscard]] engine::CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] std::size_t inflight_cells() const;
  [[nodiscard]] int workers() const { return workers_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  // The stats-response body; exposed for ilpd's --stats-on-exit report.
  [[nodiscard]] std::string stats_json() const;
  // Prometheus text exposition: the global MetricsRegistry (pass.*, trans.*,
  // server.* histograms) plus the service's own gauges and counters.  The
  // `metrics` wire verb returns this, JSON-wrapped.
  [[nodiscard]] std::string metrics_exposition() const;

  // Defined in service.cpp; public so the file-local compute/encode helpers
  // there can name them.
  struct CellOutcome;
  struct Inflight;
  struct RequestObs;

 private:
  std::string handle_compile(const Request& req, const std::shared_ptr<RequestObs>& ro);
  std::string handle_batch(const Request& req);

  // Exactly-once bookkeeping when an admitted cell settles.
  void settle_cells(std::size_t n);
  // Single locked increment for a ServiceCounters field — every counter bump
  // in the service goes through here.
  void bump(std::uint64_t ServiceCounters::* field);

  ServiceConfig cfg_;
  int workers_ = 1;
  std::size_t capacity_ = 1;
  engine::ResultCache cache_;
  std::unique_ptr<engine::ThreadPool> pool_;
  engine::Stopwatch uptime_;
  std::atomic<std::uint64_t> request_seq_{0};  // request-id mint

  // Latency histograms live in the (process-global) MetricsRegistry so the
  // exposition walks them with everything else; the references are cached
  // here because histogram() takes the registry lock.
  obs::Histogram& latency_hist_;
  obs::Histogram& queue_wait_hist_;

  mutable std::mutex mu_;                 // guards inflight_ map + cell count
  std::condition_variable drained_cv_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Inflight>> inflight_;
  std::size_t inflight_cells_ = 0;
  std::atomic<bool> draining_{false};

  mutable std::mutex stats_mu_;
  ServiceCounters counters_;
};

}  // namespace ilp::server
