#include "server/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "support/strings.hpp"

namespace ilp::server {

const JsonValue* JsonValue::find(std::string_view name) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == name) return &v;
  return nullptr;
}

// Not in an anonymous namespace: JsonValue's friend declaration names
// ilp::server::Parser.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v;
    if (!value(v)) {
      if (error != nullptr)
        *error = strformat("json parse error at byte %zu: %s", pos_, err_.c_str());
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr)
        *error = strformat("json parse error at byte %zu: trailing characters", pos_);
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const char* msg) {
    if (err_.empty()) err_ = msg;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] int peek() {
    skip_ws();
    return pos_ < text_.size() ? static_cast<unsigned char>(text_[pos_]) : -1;
  }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  bool literal(const char* word, std::size_t n) {
    if (text_.size() - pos_ < n || text_.compare(pos_, n, word) != 0)
      return fail("invalid literal");
    pos_ += n;
    return true;
  }

  bool value(JsonValue& out) {
    switch (peek()) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': {
        out.kind_ = JsonValue::Kind::String;
        return string(out.str_);
      }
      case 't':
        out.kind_ = JsonValue::Kind::Bool;
        out.bool_ = true;
        return literal("true", 4);
      case 'f':
        out.kind_ = JsonValue::Kind::Bool;
        out.bool_ = false;
        return literal("false", 5);
      case 'n':
        out.kind_ = JsonValue::Kind::Null;
        return literal("null", 4);
      case -1: return fail("unexpected end of input");
      default: return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.kind_ = JsonValue::Kind::Object;
    ++pos_;  // '{'
    if (consume('}')) return true;
    for (;;) {
      std::string key;
      if (peek() != '"') return fail("expected object key");
      if (!string(key)) return false;
      if (!consume(':')) return fail("expected ':'");
      JsonValue v;
      if (!value(v)) return false;
      out.members_.emplace_back(std::move(key), std::move(v));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out) {
    out.kind_ = JsonValue::Kind::Array;
    ++pos_;  // '['
    if (consume(']')) return true;
    for (;;) {
      JsonValue v;
      if (!value(v)) return false;
      out.items_.push_back(std::move(v));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    ++pos_;  // opening quote (caller peeked it)
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (!unicode_escape(out)) return false;
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool unicode_escape(std::string& out) {
    unsigned cp = 0;
    if (!hex4(cp)) return false;
    // Surrogate pair: decode the low half if present and well-formed.
    if (cp >= 0xD800 && cp <= 0xDBFF && text_.size() - pos_ >= 6 &&
        text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
      pos_ += 2;
      unsigned lo = 0;
      if (!hex4(lo)) return false;
      if (lo < 0xDC00 || lo > 0xDFFF) return fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return true;
  }

  bool hex4(unsigned& out) {
    if (text_.size() - pos_ < 4) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("invalid \\u escape");
    }
    return true;
  }

  bool number(JsonValue& out) {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    bool integral = pos_ > start && text_[pos_ - 1] != '-';
    if (!integral) return fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    const std::string tok(text_.substr(start, pos_ - start));
    out.kind_ = JsonValue::Kind::Number;
    errno = 0;
    out.num_ = std::strtod(tok.c_str(), nullptr);
    if (integral) {
      errno = 0;
      const long long v = std::strtoll(tok.c_str(), nullptr, 10);
      if (errno != ERANGE) {
        out.int_ = v;
        out.int_exact_ = true;
      }
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string err_;
};

std::optional<JsonValue> JsonValue::parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace ilp::server
