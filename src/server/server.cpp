#include "server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/log.hpp"
#include "support/strings.hpp"

namespace ilp::server {

namespace {

// write() the whole buffer, riding out EINTR and short writes.
bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

Server::Server(Service& service, ServerConfig cfg)
    : service_(service), cfg_(std::move(cfg)) {}

Server::~Server() {
  request_stop();
  wait();
  for (const int fd : {wake_pipe_[0], wake_pipe_[1]})
    if (fd >= 0) ::close(fd);
}

bool Server::start() {
  if (::pipe(wake_pipe_) != 0) {
    error_ = strformat("pipe: %s", std::strerror(errno));
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = strformat("socket: %s", std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    error_ = strformat("invalid listen address '%s'", cfg_.host.c_str());
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error_ = strformat("bind %s:%d: %s", cfg_.host.c_str(), cfg_.port,
                       std::strerror(errno));
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    error_ = strformat("listen: %s", std::strerror(errno));
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);

  obs::log_info("listener started",
                {obs::field("host", cfg_.host), obs::field("port", port_)});
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::request_stop() {
  if (wake_pipe_[1] >= 0) {
    const char b = 's';
    // Best effort; a full pipe means a stop is already pending.
    [[maybe_unused]] const ssize_t r = ::write(wake_pipe_[1], &b, 1);
  }
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int r = ::poll(fds, 2, -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // stop requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    const int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    obs::log_debug("connection accepted", {obs::field("fd", conn)});
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back([this, conn] { connection_loop(conn); });
  }

  // Drain: refuse new connections at the kernel, stop admitting new work,
  // let every accepted request finish, then join the connection threads.
  obs::log_info("listener closing; drain begins");
  stopping_.store(true, std::memory_order_release);
  ::close(listen_fd_);
  listen_fd_ = -1;
  service_.begin_drain();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(connections_);
  }
  for (std::thread& t : conns)
    if (t.joinable()) t.join();
  service_.wait_drained();
  obs::log_info("drain complete");
}

void Server::connection_loop(int fd) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    // Serve every complete line already received — during a drain these are
    // the "accepted" requests that must still be answered.
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::string response = service_.handle_line(line) + "\n";
      if (!write_all(fd, response.data(), response.size())) {
        obs::Logger::global().warn_rate_limited(
            "conn_write", "dropping connection: response write failed",
            {obs::field("fd", fd), obs::field("errno", std::strerror(errno))});
        ::close(fd);
        return;
      }
    }
    if (stopping()) break;  // answered everything received; close politely

    pollfd p{fd, POLLIN, 0};
    const int r = ::poll(&p, 1, cfg_.poll_interval_ms);
    if (r < 0 && errno != EINTR) break;
    if (r <= 0) continue;  // timeout: re-check the stopping flag
    if ((p.revents & (POLLERR | POLLNVAL)) != 0) break;
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed (or POLLHUP with nothing buffered)
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
}

}  // namespace ilp::server
