#include "server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>

#include "obs/log.hpp"
#include "obs/prometheus.hpp"
#include "support/strings.hpp"

namespace ilp::server {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Wire literals for segment-assembled replies.  Byte-for-byte the pieces
// assemble_compile_response() glues around the shared CompileBody segments —
// the transport-equivalence test pins the two paths together.
constexpr std::string_view kIdPrefix = "{\"id\": ";
constexpr std::string_view kTrue = "true";
constexpr std::string_view kFalse = "false";
constexpr std::string_view kReqIdPrefix = ", \"request_id\": \"";
constexpr std::string_view kSegTail = "\"}\n";

// At most this many segments describe one reply on the wire.
constexpr std::size_t kMaxSegments = 8;

// Fills `segs` with the reply's wire segments; returns the count.  Flat
// replies must already carry their trailing newline.
std::size_t reply_segments(const Reply& r,
                           std::array<std::string_view, kMaxSegments>& segs) {
  if (r.body == nullptr) {
    segs[0] = r.flat;
    return 1;
  }
  segs = {kIdPrefix, r.id_json,           r.body->pre, r.cached ? kTrue : kFalse,
          r.body->post, kReqIdPrefix, r.request_id, kSegTail};
  return kMaxSegments;
}

std::size_t reply_wire_size(const Reply& r) {
  std::array<std::string_view, kMaxSegments> segs;
  const std::size_t n = reply_segments(r, segs);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += segs[i].size();
  return total;
}

}  // namespace

// Per-connection transport state; owned and touched by the IO thread only.
struct Server::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  std::string inbuf;           // bytes read, tail may be a partial line
  std::uint64_t next_seq = 0;  // arrival number of the next dispatched line
  std::uint64_t next_write = 0;  // seq whose reply is emitted next
  std::uint64_t inflight = 0;    // dispatched lines without a reply yet
  std::map<std::uint64_t, Reply> pending;  // out-of-order completions parked
  // Ordered outgoing replies.  front_off is how many bytes of the front
  // reply a previous short writev already sent.
  std::deque<Reply> outq;
  std::size_t front_off = 0;
  bool want_write = false;  // EPOLLOUT currently armed
  bool peer_closed = false;
  bool reading = true;  // false once the drain begins
};

Server::Server(Service& service, ServerConfig cfg)
    : service_(service), cfg_(std::move(cfg)) {}

Server::~Server() {
  request_stop();
  wait();
  service_.set_transport_metrics(nullptr);
  for (const int fd : {stop_efd_, done_efd_, epoll_fd_})
    if (fd >= 0) ::close(fd);
}

bool Server::start() {
  stop_efd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  done_efd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (stop_efd_ < 0 || done_efd_ < 0 || epoll_fd_ < 0) {
    error_ = strformat("eventfd/epoll: %s", std::strerror(errno));
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    error_ = strformat("socket: %s", std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    error_ = strformat("invalid listen address '%s'", cfg_.host.c_str());
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error_ = strformat("bind %s:%d: %s", cfg_.host.c_str(), cfg_.port,
                       std::strerror(errno));
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    error_ = strformat("listen: %s", std::strerror(errno));
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);

  const std::size_t shards = static_cast<std::size_t>(service_.shard_count());
  lanes_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto lane = std::make_unique<Lane>(cfg_.ring_capacity);
    lane->efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (lane->efd < 0) {
      error_ = strformat("eventfd: %s", std::strerror(errno));
      return false;
    }
    lanes_.push_back(std::move(lane));
  }
  // Outstanding replies are bounded by what the lanes can hold plus one
  // executing request per shard, so a completion ring this size cannot fill
  // while connections are alive; the producer still spins-and-wakes if it
  // ever does (e.g. replies parked for a closed connection).
  completions_ = std::make_unique<MpscRing<Completion>>(
      shards * lanes_[0]->ring.capacity() + shards);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // 0 = listener
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = 1;  // 1 = stop eventfd
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, stop_efd_, &ev);
  ev.data.u64 = 2;  // 2 = completion eventfd
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, done_efd_, &ev);

  service_.set_transport_metrics(
      [this](std::string& out) { append_transport_metrics(out); });

  obs::log_info("listener started",
                {obs::field("host", cfg_.host), obs::field("port", port_),
                 obs::field("shards", static_cast<int>(shards)),
                 obs::field("ring_capacity", lanes_[0]->ring.capacity())});
  workers_live_.store(static_cast<int>(shards), std::memory_order_release);
  for (std::size_t i = 0; i < shards; ++i)
    lanes_[i]->thread = std::thread([this, i] { worker_loop(i); });
  io_thread_ = std::thread([this] { io_loop(); });
  return true;
}

void Server::request_stop() {
  if (stop_efd_ >= 0) {
    const std::uint64_t one = 1;
    // Best effort; eventfd write is async-signal-safe, and a full counter
    // means a stop is already pending.
    [[maybe_unused]] const ssize_t r = ::write(stop_efd_, &one, sizeof one);
  }
}

void Server::wait() {
  if (io_thread_.joinable()) io_thread_.join();
}

void Server::wake_io() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = ::write(done_efd_, &one, sizeof one);
}

void Server::wake_lane(Lane& lane) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = ::write(lane.efd, &one, sizeof one);
}

// ---------------------------------------------------------------------------
// Shard workers

void Server::worker_loop(std::size_t shard) {
  Lane& lane = *lanes_[shard];
  Dispatch d;
  for (;;) {
    if (lane.ring.try_pop(d)) {
      const std::uint64_t t = now_ns();
      Completion comp;
      comp.conn_id = d.conn_id;
      comp.seq = d.seq;
      comp.reply =
          service_.serve_parsed(std::move(d.parsed),
                                t > d.enqueued_ns ? t - d.enqueued_ns : 0);
      d = Dispatch{};  // release request strings before parking
      while (!completions_->try_push(std::move(comp))) {
        // Only replies for closed connections can accumulate this far; the
        // IO thread is the consumer, so wake it and retry.
        wake_io();
        std::this_thread::yield();
      }
      // Gated wakeup (store-buffer pattern): the IO thread sets io_parked_
      // and re-checks the ring before sleeping, we publish and re-check the
      // flag.  Both sides fence, so at least one of them sees the other.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (io_parked_.load(std::memory_order_relaxed)) wake_io();
      continue;
    }
    if (workers_stop_.load(std::memory_order_acquire)) break;
    // Park until the IO thread pushes; the timeout bounds any lost wakeup.
    lane.parked.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (lane.ring.empty_approx() &&
        !workers_stop_.load(std::memory_order_acquire)) {
      pollfd p{lane.efd, POLLIN, 0};
      ::poll(&p, 1, cfg_.poll_interval_ms);
      std::uint64_t drain = 0;
      [[maybe_unused]] const ssize_t r =
          ::read(lane.efd, &drain, sizeof drain);
    }
    lane.parked.store(false, std::memory_order_relaxed);
  }
  workers_live_.fetch_sub(1, std::memory_order_acq_rel);
  // The IO thread may be parked on its own eventfd waiting for us to exit.
  wake_io();
}

// ---------------------------------------------------------------------------
// IO thread

void Server::io_loop() {
  epoll_event events[64];
  for (;;) {
    drain_completions();

    // Drain finished: every connection has been answered, flushed and
    // closed.  Stop the workers, let them finish ring stragglers (replies
    // for force-closed connections), then wait out the service.
    if (stopping_.load(std::memory_order_acquire) && conns_.empty()) {
      workers_stop_.store(true, std::memory_order_release);
      for (auto& lane : lanes_) wake_lane(*lane);
      while (workers_live_.load(std::memory_order_acquire) > 0) {
        drain_completions();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      for (auto& lane : lanes_)
        if (lane->thread.joinable()) lane->thread.join();
      drain_completions();
      service_.wait_drained();
      obs::log_info("drain complete");
      return;
    }

    io_parked_.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int n = 0;
    if (completions_->empty_approx())
      n = ::epoll_wait(epoll_fd_, events, 64, cfg_.poll_interval_ms);
    io_parked_.store(false, std::memory_order_relaxed);
    if (n < 0) {
      if (errno == EINTR) continue;
      obs::log_warn("epoll_wait failed",
                    {obs::field("errno", std::strerror(errno))});
      continue;
    }

    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        accept_ready();
        continue;
      }
      if (tag == 1) {  // request_stop()
        std::uint64_t v = 0;
        [[maybe_unused]] const ssize_t r = ::read(stop_efd_, &v, sizeof v);
        begin_drain_locked_io();
        continue;
      }
      if (tag == 2) {  // completions pending
        std::uint64_t v = 0;
        [[maybe_unused]] const ssize_t r = ::read(done_efd_, &v, sizeof v);
        continue;  // drained at the top of the loop
      }
      const auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Conn& c = *it->second;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 && c.inflight == 0 &&
          c.outq.empty()) {
        close_conn(c);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0 && !flush_conn(c)) {
        close_conn(c);
        continue;
      }
      if ((events[i].events & (EPOLLIN | EPOLLHUP)) != 0) read_ready(c);
    }

    // Deferred erase: events later in a batch may still name a closed conn.
    for (const std::uint64_t id : dead_conns_) conns_.erase(id);
    dead_conns_.clear();
  }
}

void Server::begin_drain_locked_io() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  obs::log_info("listener closing; drain begins");
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  ::close(listen_fd_);
  listen_fd_ = -1;
  service_.begin_drain();
  // Every complete line already received is dispatched (the service answers
  // `shutting_down` for work it no longer admits); reading stops, so partial
  // lines never complete.  Idle connections close right here.
  for (auto& [id, conn] : conns_) {
    Conn& c = *conn;
    c.reading = false;
    dispatch_lines(c);
    maybe_finish_conn(c);
  }
  for (const std::uint64_t id : dead_conns_) conns_.erase(id);
  dead_conns_.clear();
}

void Server::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      obs::log_warn("accept failed",
                    {obs::field("errno", std::strerror(errno))});
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    obs::log_debug("connection accepted", {obs::field("fd", fd)});
    conns_.emplace(conn->id, std::move(conn));
  }
}

void Server::read_ready(Conn& c) {
  if (!c.reading) return;
  char chunk[16384];
  for (;;) {
    const ssize_t n = ::read(c.fd, chunk, sizeof chunk);
    if (n > 0) {
      c.inbuf.append(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof chunk) break;  // drained
      continue;
    }
    if (n == 0) {
      c.peer_closed = true;  // serve what arrived, close once flushed
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    c.peer_closed = true;
    break;
  }
  dispatch_lines(c);
  maybe_finish_conn(c);
}

void Server::dispatch_lines(Conn& c) {
  std::size_t nl;
  while ((nl = c.inbuf.find('\n')) != std::string::npos) {
    std::string line = c.inbuf.substr(0, nl);
    c.inbuf.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;

    Dispatch d;
    d.conn_id = c.id;
    d.seq = c.next_seq++;
    d.parsed = service_.parse_and_route(line);
    d.enqueued_ns = now_ns();
    ++c.inflight;

    Lane& lane = *lanes_[d.parsed.shard];
    const std::string id_json =
        d.parsed.req ? d.parsed.req->id_json : std::string("null");
    if (!lane.ring.try_push(std::move(d))) {
      // try_push leaves `d` intact on failure, but we only need its seq:
      // the ring is this path's admission queue, so a full ring is the same
      // explicit backpressure as a full service queue.
      lane.drops.fetch_add(1, std::memory_order_relaxed);
      Reply r;
      r.flat = serialize_error(id_json, ErrorKind::Overloaded,
                               "dispatch ring full; retry later");
      r.flat += '\n';
      on_reply(c, c.next_seq - 1, std::move(r));
      continue;
    }
    lane.dispatched.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (lane.parked.load(std::memory_order_relaxed)) wake_lane(lane);
  }
}

void Server::drain_completions() {
  Completion comp;
  while (completions_->try_pop(comp)) {
    const auto it = conns_.find(comp.conn_id);
    if (it == conns_.end()) continue;  // connection died while we worked
    Conn& c = *it->second;
    on_reply(c, comp.seq, std::move(comp.reply));
    maybe_finish_conn(c);
  }
}

// Sequences one finished reply into the connection's ordered output and
// flushes opportunistically.
void Server::on_reply(Conn& c, std::uint64_t seq, Reply r) {
  --c.inflight;
  if (r.body == nullptr && (r.flat.empty() || r.flat.back() != '\n'))
    r.flat += '\n';
  c.pending.emplace(seq, std::move(r));
  while (!c.pending.empty() && c.pending.begin()->first == c.next_write) {
    c.outq.push_back(std::move(c.pending.begin()->second));
    c.pending.erase(c.pending.begin());
    ++c.next_write;
  }
  if (!flush_conn(c)) close_conn(c);
}

// Gathers as many queued replies as fit into one writev, straight from the
// shared response segments.  Returns false if the connection broke.
bool Server::flush_conn(Conn& c) {
  if (c.fd < 0) return false;
  while (!c.outq.empty()) {
    iovec iov[64];
    std::size_t iovs = 0;
    std::size_t skip = c.front_off;
    for (const Reply& r : c.outq) {
      std::array<std::string_view, kMaxSegments> segs;
      const std::size_t nseg = reply_segments(r, segs);
      for (std::size_t s = 0; s < nseg && iovs < 64; ++s) {
        std::string_view seg = segs[s];
        if (skip >= seg.size()) {
          skip -= seg.size();
          continue;
        }
        seg.remove_prefix(skip);
        skip = 0;
        iov[iovs].iov_base = const_cast<char*>(seg.data());
        iov[iovs].iov_len = seg.size();
        ++iovs;
      }
      if (iovs >= 64) break;
    }
    if (iovs == 0) return true;
    const ssize_t w = ::writev(c.fd, iov, static_cast<int>(iovs));
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!c.want_write) {
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
          ev.data.u64 = c.id;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
          c.want_write = true;
        }
        return true;
      }
      obs::Logger::global().warn_rate_limited(
          "conn_write", "dropping connection: response write failed",
          {obs::field("fd", c.fd), obs::field("errno", std::strerror(errno))});
      return false;
    }
    // Advance the cursor across fully-written replies.
    std::size_t advanced = static_cast<std::size_t>(w) + c.front_off;
    while (!c.outq.empty()) {
      const std::size_t sz = reply_wire_size(c.outq.front());
      if (advanced < sz) break;
      advanced -= sz;
      c.outq.pop_front();
    }
    c.front_off = advanced;
  }
  if (c.want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.u64 = c.id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
    c.want_write = false;
  }
  return true;
}

void Server::close_conn(Conn& c) {
  if (c.fd < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  c.fd = -1;
  dead_conns_.push_back(c.id);
}

// Closes the connection once there is nothing left to do on it: no reply in
// flight, everything flushed, and either the drain or the peer ended it.
void Server::maybe_finish_conn(Conn& c) {
  if (c.fd < 0) return;
  const bool quiesced = c.inflight == 0 && c.outq.empty() && c.pending.empty();
  if (quiesced && (stopping_.load(std::memory_order_acquire) || c.peer_closed))
    close_conn(c);
}

void Server::append_transport_metrics(std::string& out) const {
  obs::prom::begin_gauge_family(out, "server.shard_queue_depth",
                                "Lines waiting in each shard's dispatch ring");
  for (std::size_t i = 0; i < lanes_.size(); ++i)
    obs::prom::append_gauge_sample(
        out, "server.shard_queue_depth", "shard", std::to_string(i),
        static_cast<double>(lanes_[i]->ring.size_approx()));
  obs::prom::begin_counter_family(
      out, "server.shard_ring_drops",
      "Lines answered `overloaded` because the dispatch ring was full");
  for (std::size_t i = 0; i < lanes_.size(); ++i)
    obs::prom::append_counter_sample(
        out, "server.shard_ring_drops", "shard", std::to_string(i),
        lanes_[i]->drops.load(std::memory_order_relaxed));
  obs::prom::begin_counter_family(out, "server.shard_dispatched",
                                  "Lines routed to each shard's ring");
  for (std::size_t i = 0; i < lanes_.size(); ++i)
    obs::prom::append_counter_sample(
        out, "server.shard_dispatched", "shard", std::to_string(i),
        lanes_[i]->dispatched.load(std::memory_order_relaxed));
}

}  // namespace ilp::server
