// Shard-per-core TCP front end for the service: newline-delimited JSON over
// a non-blocking epoll event loop, lock-free dispatch rings, and zero-copy
// writev responses.
//
// Threading model (one of each per Server):
//
//   IO thread ──► per-shard MPSC dispatch rings ──► shard workers
//       ▲                                               │
//       └────────── completion MPSC ring ◄──────────────┘
//
//   * The IO thread owns every socket.  It accepts, does edge-triggered
//     non-blocking reads with per-connection buffering (partial NDJSON lines
//     simply wait for the next readable event), parses each complete line
//     once (Service::parse_and_route) and pushes it onto the dispatch ring
//     of the shard that owns the request's content hash.  Identical requests
//     therefore always reach the same shard worker — cache hits and
//     coalescing are shard-local, with no cross-core locks on the hot path.
//   * Each shard worker drains its ring in FIFO order and executes requests
//     inline (Service::serve_parsed), then pushes the reply onto the shared
//     completion ring.  Rings are bounded and cache-line padded
//     (support/mpsc_ring.hpp); a full dispatch ring answers `overloaded`
//     immediately instead of blocking the IO thread, counted in the
//     server.shard_ring_drops gauge.
//   * The IO thread sequences replies per connection (pipelined requests may
//     complete out of order across shards; responses are emitted strictly in
//     request order) and writes them with writev straight from the service's
//     pre-serialized response segments — a warm hit is never flattened into
//     a per-reply string.
//   * Wakeups are eventfd-based and gated: a producer only issues the write
//     syscall when the consumer has announced it is parked, so a pipelined
//     burst costs one wakeup, not one per line.  Every park also has a
//     poll_interval_ms timeout as a lost-wakeup backstop.
//
// Drain contract (the SIGTERM story): request_stop() writes one byte to an
// eventfd — the only async-signal-safe operation involved.  The IO thread
// wakes, closes the listening socket (new connections are refused by the
// kernel from that instant), flips the service into drain mode, and stops
// reading.  Every complete line received before that instant is still
// dispatched and answered (possibly with `shutting_down` if the service
// refused it); partial lines are abandoned.  Connections close once their
// last reply is flushed, idle connections close immediately, and wait()
// returns only after the service reports zero in-flight cells — no admitted
// work is ever dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/service.hpp"
#include "support/mpsc_ring.hpp"

namespace ilp::server {

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = kernel-assigned ephemeral port (see Server::port())
  // Lost-wakeup backstop for every parked thread (epoll_wait timeout, worker
  // ring poll); also bounds drain latency.
  int poll_interval_ms = 50;
  // Per-shard dispatch ring capacity (rounded up to a power of two).  A full
  // ring is explicit backpressure: the line is answered `overloaded` without
  // ever blocking the IO thread.
  std::size_t ring_capacity = 1024;
};

class Server {
 public:
  Server(Service& service, ServerConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, spawns the IO thread and one worker per service shard.
  // Returns false (with a message in error()) if the address cannot be bound.
  bool start();
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  // Async-signal-safe shutdown trigger (writes to the stop eventfd).
  void request_stop();
  // Blocks until the drain completes: listener closed, every accepted
  // request answered and flushed, workers joined, service drained.
  void wait();
  [[nodiscard]] bool stopping() const {
    return stopping_.load(std::memory_order_acquire);
  }

 private:
  // One request in flight between the IO thread and a shard worker.
  struct Dispatch {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;  // per-connection arrival number
    Service::ParsedRequest parsed;
    std::uint64_t enqueued_ns = 0;  // Stopwatch origin for ring wait
  };
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    Reply reply;
  };
  // A shard's dispatch lane.  Padded: the ring cursors inside already are,
  // this keeps the per-lane flags of neighbours apart too.
  struct alignas(64) Lane {
    explicit Lane(std::size_t capacity) : ring(capacity) {}
    MpscRing<Dispatch> ring;
    int efd = -1;                     // worker parks here
    std::atomic<bool> parked{false};  // gate for the producer-side wakeup
    std::atomic<std::uint64_t> drops{0};       // ring-full rejections
    std::atomic<std::uint64_t> dispatched{0};  // lines routed to this lane
    std::thread thread;
  };
  struct Conn;

  void io_loop();
  void worker_loop(std::size_t shard);
  void begin_drain_locked_io();
  void accept_ready();
  void read_ready(Conn& c);
  void dispatch_lines(Conn& c);
  void drain_completions();
  void on_reply(Conn& c, std::uint64_t seq, Reply r);
  bool flush_conn(Conn& c);  // false => connection must be closed
  void close_conn(Conn& c);
  void maybe_finish_conn(Conn& c);
  void wake_lane(Lane& lane);
  void wake_io();
  void append_transport_metrics(std::string& out) const;

  Service& service_;
  ServerConfig cfg_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int stop_efd_ = -1;  // request_stop() -> IO thread
  int done_efd_ = -1;  // shard workers -> IO thread (completions pending)
  int port_ = 0;
  std::string error_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> workers_stop_{false};
  std::atomic<int> workers_live_{0};
  std::atomic<bool> io_parked_{false};

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::unique_ptr<MpscRing<Completion>> completions_;

  // IO-thread-only state.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  // Conn ids share the epoll tag space with the listener (0), the stop
  // eventfd (1) and the completion eventfd (2), so they start above those.
  std::uint64_t next_conn_id_ = 3;
  std::vector<std::uint64_t> dead_conns_;  // deferred erase within one event batch

  std::thread io_thread_;
};

}  // namespace ilp::server
