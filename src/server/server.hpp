// POSIX TCP front end for the service: newline-delimited JSON over
// thread-per-connection sockets, with signal-safe graceful drain.
//
// Lifecycle:
//
//   Server srv(service, cfg);
//   srv.start();                 // bound + listening; port() is now real
//   ... srv.request_stop() ...   // from a signal handler or another thread
//   srv.wait();                  // accepted requests answered, sockets closed
//
// Drain contract (the SIGTERM story): request_stop() writes one byte to a
// self-pipe — the only async-signal-safe operation involved.  The accept
// loop wakes, closes the listening socket (new connections are refused by
// the kernel from that instant), flips the service into drain mode, and the
// connection threads finish every request whose full line had been received,
// answer any further lines on live connections with `shutting_down`, then
// close.  wait() returns only after the service reports zero in-flight
// cells, so no admitted work is ever dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/service.hpp"

namespace ilp::server {

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = kernel-assigned ephemeral port (see Server::port())
  // Idle poll granularity for connection threads; bounds drain latency.
  int poll_interval_ms = 50;
};

class Server {
 public:
  Server(Service& service, ServerConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens and spawns the accept thread.  Returns false (with a
  // message in error()) if the address cannot be bound.
  bool start();
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  // Async-signal-safe shutdown trigger (writes to the self-pipe).
  void request_stop();
  // Blocks until the drain completes: listener closed, every accepted
  // request answered, all connection threads joined.
  void wait();
  [[nodiscard]] bool stopping() const {
    return stopping_.load(std::memory_order_acquire);
  }

 private:
  void accept_loop();
  void connection_loop(int fd);

  Service& service_;
  ServerConfig cfg_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // [0] read end (polled), [1] signal-safe write end
  int port_ = 0;
  std::string error_;
  std::atomic<bool> stopping_{false};

  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
};

}  // namespace ilp::server
