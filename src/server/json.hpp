// Minimal JSON value + recursive-descent parser for the ilpd wire protocol.
//
// The daemon speaks newline-delimited JSON over a raw POSIX socket and the
// repository is dependency-free by policy, so this is a deliberately small
// self-contained reader: UTF-8 pass-through strings, doubles with an exact
// int64 sidecar for integral literals, objects as insertion-ordered vectors
// (requests are tiny — linear find beats a map).  Serialization stays where
// it always was: strformat + json_escape (support/strings.hpp); only parsing
// needed new machinery.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ilp::server {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  // Integral literals round-trip exactly; non-integral numbers truncate.
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    if (!is_number()) return fallback;
    return int_exact_ ? int_ : static_cast<std::int64_t>(num_);
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  [[nodiscard]] const std::vector<JsonValue>& items() const { return items_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }

  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view name) const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Parses exactly one JSON document (trailing whitespace allowed, trailing
  // garbage rejected).  On failure returns nullopt and, when `error` is
  // non-null, a byte-offset-tagged message.
  static std::optional<JsonValue> parse(std::string_view text, std::string* error = nullptr);

 private:
  friend class Parser;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool int_exact_ = false;
  std::string str_;
  std::vector<JsonValue> items_;                           // Array
  std::vector<std::pair<std::string, JsonValue>> members_;  // Object
};

}  // namespace ilp::server
