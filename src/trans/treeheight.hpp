// Tree height reduction (paper Section 2, after Baer & Bovet).
//
// Rebuilds single-use chains of associative/commutative arithmetic into
// balanced trees, reducing the dependence height of long expressions
// (Figure 7: B*(C+D)*E*F/G drops from 22 to 13 cycles).  As in the paper the
// algorithm works on intermediate code, uses commutativity + associativity
// but NOT distributivity, and balances assuming equal operation latencies.
//
// Families:
//   * fp additive  (FADD/FSUB — leaves carry signs),
//   * fp multiplicative (FMUL/FDIV — leaves carry inversion flags; division
//     reassociation is the paper's, e.g. x*F/G == x*(F/G)),
//   * int additive (IADD/ISUB),
//   * int multiplicative (IMUL only; integer division is not associative).
//
// Negated/inverted leaves pair with plain leaves first (emitting SUB/DIV
// early), which is what lets Figure 7's divide start at cycle 0.
// Floating-point rebalancing reassociates, as the paper's does.
#pragma once

#include "ir/function.hpp"
#include "machine/machine.hpp"
#include "support/compile_ctx.hpp"

namespace ilp {

struct TreeHeightOptions {
  // The paper's future work ("allow different latencies for operations"):
  // balance by operation latencies from the machine model instead of
  // counting levels.  Leaves produced by in-block instructions are weighted
  // by their producer's latency, so e.g. a divide feeding a sum joins the
  // tree last instead of being treated like any other operand.
  bool latency_weighted = false;
  MachineModel machine;  // consulted only when latency_weighted
};

// Returns the number of expression trees rebalanced.
int tree_height_reduction(Function& fn, const TreeHeightOptions& opts,
                          CompileContext& ctx);

// Convenience overload on the calling thread's pooled context.
int tree_height_reduction(Function& fn, const TreeHeightOptions& opts = {});

}  // namespace ilp
