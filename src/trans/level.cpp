#include "trans/level.hpp"

#include "ir/verifier.hpp"
#include "opt/pipeline.hpp"
#include "sched/scheduler.hpp"
#include "trans/accexpand.hpp"
#include "trans/combine.hpp"
#include "trans/indexpand.hpp"
#include "trans/rename.hpp"
#include "trans/searchexpand.hpp"
#include "trans/strengthred.hpp"
#include "trans/treeheight.hpp"
#include "trans/unroll.hpp"

namespace ilp {

TransformSet TransformSet::for_level(OptLevel level) {
  TransformSet s;
  const int l = static_cast<int>(level);
  s.unroll = l >= 1;
  s.rename = l >= 2;
  s.combine = s.strength = s.height = l >= 3;
  s.acc_expand = s.ind_expand = s.search_expand = l >= 4;
  return s;
}

void compile_with_transforms(Function& fn, const TransformSet& set,
                             const MachineModel& machine, const CompileOptions& opts) {
  run_conventional_optimizations(fn);

  if (set.unroll) {
    unroll_loops(fn, opts.unroll);
    verify_or_die(fn, "after unrolling");
  }
  // Expansions run before renaming so each recurrence still targets a single
  // register name (the shapes of Figures 2 and 4).
  if (set.acc_expand) {
    accumulator_expansion(fn);
    verify_or_die(fn, "after accumulator expansion");
  }
  if (set.ind_expand) {
    induction_expansion(fn);
    verify_or_die(fn, "after induction expansion");
  }
  if (set.search_expand) {
    search_expansion(fn);
    verify_or_die(fn, "after search expansion");
  }
  if (set.rename) {
    rename_registers(fn);
    verify_or_die(fn, "after renaming");
  }
  if (set.combine) {
    operation_combining(fn);
    verify_or_die(fn, "after operation combining");
  }
  if (set.strength) {
    strength_reduction(fn);
    verify_or_die(fn, "after strength reduction");
  }
  if (set.height) {
    tree_height_reduction(fn);
    verify_or_die(fn, "after tree height reduction");
  }
  run_cleanup(fn);
  verify_or_die(fn, "after cleanup");
  if (opts.schedule) {
    schedule_function(fn, machine);
    verify_or_die(fn, "after scheduling");
  }
  fn.renumber();
}

void compile_at_level(Function& fn, OptLevel level, const MachineModel& machine,
                      const CompileOptions& opts) {
  compile_with_transforms(fn, TransformSet::for_level(level), machine, opts);
}

}  // namespace ilp
