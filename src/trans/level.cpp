#include "trans/level.hpp"

#include "engine/metrics.hpp"
#include "ir/verifier.hpp"
#include "obs/context.hpp"
#include "opt/pipeline.hpp"
#include "sched/scheduler.hpp"
#include "trans/accexpand.hpp"
#include "trans/combine.hpp"
#include "trans/indexpand.hpp"
#include "trans/rename.hpp"
#include "trans/searchexpand.hpp"
#include "trans/strengthred.hpp"
#include "trans/treeheight.hpp"
#include "trans/unroll.hpp"

namespace ilp {

TransformSet TransformSet::for_level(OptLevel level) {
  TransformSet s;
  const int l = static_cast<int>(level);
  s.unroll = l >= 1;
  s.rename = l >= 2;
  s.combine = s.strength = s.height = l >= 3;
  s.acc_expand = s.ind_expand = s.search_expand = l >= 4;
  return s;
}

namespace {

// Per-pass wall-time telemetry (engine/metrics.hpp): each pass of every
// compile lands in the "pass.<name>" namespace of the global registry,
// exported via StudyResult::telemetry_json / the benches' --metrics flag.
// When the current request is traced (obs/context.hpp), the pass also
// records a span, so request-scoped Chrome traces show request→job→pass.
// Returns the pass's wall time in nanoseconds.
template <typename F>
std::uint64_t timed_pass(const char* name, Function& fn, const char* verify_msg,
                         F&& pass) {
  engine::Stopwatch wall;
  {
    obs::SpanScope span(name, "pass");
    engine::ScopedTimer timer(name);
    pass();
  }
  verify_or_die(fn, verify_msg);
  return wall.nanos();
}

// The level whose transform set equals `set`, for per-level IR-size metric
// names; custom ablation subsets report as "custom".
const char* set_label(const TransformSet& set) {
  for (const OptLevel l : {OptLevel::Conv, OptLevel::Lev1, OptLevel::Lev2,
                           OptLevel::Lev3, OptLevel::Lev4})
    if (set == TransformSet::for_level(l)) return level_name(l);
  return "custom";
}

}  // namespace

void compile_with_transforms(Function& fn, const TransformSet& set,
                             const MachineModel& machine, const CompileOptions& opts,
                             TransformStats* stats, CompileContext& ctx) {
  ctx.begin_compile();
  TransformStats local;
  TransformStats& s = stats != nullptr ? *stats : local;
  s = TransformStats{};

  // Nest restructuring sees the naive lowered IR: explicit affine subscripts
  // and the canonical guarded loop shape, both of which the conventional
  // optimizations rewrite away.
  if (opts.nest.fuse)
    timed_pass("pass.nest.fuse", fn, "after loop fusion",
               [&] { s.loops_fused = fuse_loops(fn, opts.nest); });
  if (opts.nest.interchange)
    timed_pass("pass.nest.interchange", fn, "after loop interchange",
               [&] { s.loops_interchanged = interchange_loops(fn, opts.nest); });
  if (opts.nest.tile)
    timed_pass("pass.nest.tile", fn, "after loop tiling",
               [&] { s.loops_tiled = tile_loops(fn, opts.nest); });
  if (opts.nest.fission)
    timed_pass("pass.nest.fission", fn, "after loop fission",
               [&] { s.loops_fissioned = fission_loops(fn, opts.nest); });

  timed_pass("pass.conventional", fn, "after conventional optimizations",
             [&] { run_conventional_optimizations(fn, ctx); });
  s.ir_insts_before = fn.num_insts();

  if (set.unroll)
    timed_pass("pass.unroll", fn, "after unrolling",
               [&] { s.loops_unrolled = unroll_loops(fn, opts.unroll); });
  // Expansions run before renaming so each recurrence still targets a single
  // register name (the shapes of Figures 2 and 4).
  if (set.acc_expand)
    timed_pass("pass.accexpand", fn, "after accumulator expansion",
               [&] { s.accs_expanded = accumulator_expansion(fn, {}, ctx); });
  if (set.ind_expand)
    timed_pass("pass.indexpand", fn, "after induction expansion",
               [&] { s.inds_expanded = induction_expansion(fn, ctx); });
  if (set.search_expand)
    timed_pass("pass.searchexpand", fn, "after search expansion",
               [&] { s.searches_expanded = search_expansion(fn, ctx); });
  if (set.rename)
    timed_pass("pass.rename", fn, "after renaming",
               [&] { s.regs_renamed = rename_registers(fn, ctx); });
  if (set.combine)
    timed_pass("pass.combine", fn, "after operation combining",
               [&] { s.ops_combined = operation_combining(fn); });
  if (set.strength)
    timed_pass("pass.strengthred", fn, "after strength reduction",
               [&] { s.strength_reduced = strength_reduction(fn); });
  if (set.height)
    timed_pass("pass.treeheight", fn, "after tree height reduction",
               [&] { s.trees_rebalanced = tree_height_reduction(fn, {}, ctx); });
  timed_pass("pass.cleanup", fn, "after cleanup", [&] { run_cleanup(fn, ctx); });
  // The modulo backend pipelines eligible loops into prologue/kernel/epilogue
  // form; the list scheduler below then packs every block (including the new
  // kernels), so both backends share one final scheduling pass.
  if (opts.schedule && opts.scheduler == SchedulerKind::Modulo)
    timed_pass("pass.modulo", fn, "after modulo pipelining",
               [&] { s.modulo = modulo_pipeline_function(fn, machine, opts.modulo); });
  if (opts.schedule)
    s.schedule_ns = timed_pass("pass.schedule", fn, "after scheduling",
                               [&] { schedule_function(fn, machine, ctx); });
  fn.renumber();
  s.ir_insts_after = fn.num_insts();

  // Global transformation counters: a handful of locked adds per compile,
  // nothing per-instruction, so the metrics-on overhead stays in the noise.
  engine::MetricsRegistry& reg = engine::MetricsRegistry::global();
  if (s.loops_fused > 0)
    reg.add_count("trans.nest.loops_fused", static_cast<std::uint64_t>(s.loops_fused));
  if (s.loops_interchanged > 0)
    reg.add_count("trans.nest.loops_interchanged",
                  static_cast<std::uint64_t>(s.loops_interchanged));
  if (s.loops_tiled > 0)
    reg.add_count("trans.nest.loops_tiled", static_cast<std::uint64_t>(s.loops_tiled));
  if (s.loops_fissioned > 0)
    reg.add_count("trans.nest.loops_fissioned",
                  static_cast<std::uint64_t>(s.loops_fissioned));
  if (s.loops_unrolled > 0)
    reg.add_count("trans.loops_unrolled", static_cast<std::uint64_t>(s.loops_unrolled));
  if (s.regs_renamed > 0)
    reg.add_count("trans.regs_renamed", static_cast<std::uint64_t>(s.regs_renamed));
  if (s.accs_expanded > 0)
    reg.add_count("trans.accs_expanded", static_cast<std::uint64_t>(s.accs_expanded));
  if (s.inds_expanded > 0)
    reg.add_count("trans.inds_expanded", static_cast<std::uint64_t>(s.inds_expanded));
  if (s.searches_expanded > 0)
    reg.add_count("trans.searches_expanded",
                  static_cast<std::uint64_t>(s.searches_expanded));
  if (s.ops_combined > 0)
    reg.add_count("trans.ops_combined", static_cast<std::uint64_t>(s.ops_combined));
  if (s.strength_reduced > 0)
    reg.add_count("trans.strength_reduced",
                  static_cast<std::uint64_t>(s.strength_reduced));
  if (s.trees_rebalanced > 0)
    reg.add_count("trans.trees_rebalanced",
                  static_cast<std::uint64_t>(s.trees_rebalanced));
  // Modulo scheduling backend counters (satellite of the scheduler work):
  // achieved vs. minimum II, search effort, and the fallback rate.
  if (s.modulo.loops_pipelined > 0) {
    reg.add_count("sched.modulo.loops_pipelined",
                  static_cast<std::uint64_t>(s.modulo.loops_pipelined));
    reg.add_count("sched.modulo.achieved_ii_sum",
                  static_cast<std::uint64_t>(s.modulo.achieved_ii_sum));
    reg.add_count("sched.modulo.min_ii_sum",
                  static_cast<std::uint64_t>(s.modulo.min_ii_sum));
    reg.record_max("sched.modulo.max_stages",
                   static_cast<std::uint64_t>(s.modulo.max_stages));
  }
  if (s.modulo.loops_fallback > 0)
    reg.add_count("sched.modulo.loops_fallback",
                  static_cast<std::uint64_t>(s.modulo.loops_fallback));
  if (s.modulo.backtracks > 0)
    reg.add_count("sched.modulo.backtracks",
                  static_cast<std::uint64_t>(s.modulo.backtracks));
  const char* label = set_label(set);
  reg.add_count(engine::MetricsRegistry::intern_name(
                    std::string("trans.ir_insts_before.") + label),
                s.ir_insts_before);
  reg.add_count(engine::MetricsRegistry::intern_name(
                    std::string("trans.ir_insts_after.") + label),
                s.ir_insts_after);
  // Context reuse telemetry: how many compiles landed on warm contexts and
  // the deepest any context's arena ever got.
  reg.add_count("ctx.compiles");
  if (ctx.compiles() > 1) reg.add_count("ctx.warm_compiles");
  reg.record_max("ctx.arena_high_water_bytes",
                 static_cast<std::uint64_t>(ctx.arena_high_water_bytes()));
}

void compile_with_transforms(Function& fn, const TransformSet& set,
                             const MachineModel& machine, const CompileOptions& opts,
                             TransformStats* stats) {
  compile_with_transforms(fn, set, machine, opts, stats, CompileContext::local());
}

void compile_at_level(Function& fn, OptLevel level, const MachineModel& machine,
                      const CompileOptions& opts) {
  compile_with_transforms(fn, TransformSet::for_level(level), machine, opts);
}

}  // namespace ilp
