#include "trans/level.hpp"

#include "engine/metrics.hpp"
#include "ir/verifier.hpp"
#include "opt/pipeline.hpp"
#include "sched/scheduler.hpp"
#include "trans/accexpand.hpp"
#include "trans/combine.hpp"
#include "trans/indexpand.hpp"
#include "trans/rename.hpp"
#include "trans/searchexpand.hpp"
#include "trans/strengthred.hpp"
#include "trans/treeheight.hpp"
#include "trans/unroll.hpp"

namespace ilp {

TransformSet TransformSet::for_level(OptLevel level) {
  TransformSet s;
  const int l = static_cast<int>(level);
  s.unroll = l >= 1;
  s.rename = l >= 2;
  s.combine = s.strength = s.height = l >= 3;
  s.acc_expand = s.ind_expand = s.search_expand = l >= 4;
  return s;
}

namespace {

// Per-pass wall-time telemetry (engine/metrics.hpp): each pass of every
// compile lands in the "pass.<name>" namespace of the global registry,
// exported via StudyResult::telemetry_json / the benches' --metrics flag.
template <typename F>
void timed_pass(const char* name, Function& fn, const char* verify_msg, F&& pass) {
  engine::ScopedTimer timer(name);
  pass();
  verify_or_die(fn, verify_msg);
}

}  // namespace

void compile_with_transforms(Function& fn, const TransformSet& set,
                             const MachineModel& machine, const CompileOptions& opts) {
  {
    engine::ScopedTimer timer("pass.conventional");
    run_conventional_optimizations(fn);
  }

  if (set.unroll)
    timed_pass("pass.unroll", fn, "after unrolling", [&] { unroll_loops(fn, opts.unroll); });
  // Expansions run before renaming so each recurrence still targets a single
  // register name (the shapes of Figures 2 and 4).
  if (set.acc_expand)
    timed_pass("pass.accexpand", fn, "after accumulator expansion",
               [&] { accumulator_expansion(fn); });
  if (set.ind_expand)
    timed_pass("pass.indexpand", fn, "after induction expansion",
               [&] { induction_expansion(fn); });
  if (set.search_expand)
    timed_pass("pass.searchexpand", fn, "after search expansion",
               [&] { search_expansion(fn); });
  if (set.rename)
    timed_pass("pass.rename", fn, "after renaming", [&] { rename_registers(fn); });
  if (set.combine)
    timed_pass("pass.combine", fn, "after operation combining",
               [&] { operation_combining(fn); });
  if (set.strength)
    timed_pass("pass.strengthred", fn, "after strength reduction",
               [&] { strength_reduction(fn); });
  if (set.height)
    timed_pass("pass.treeheight", fn, "after tree height reduction",
               [&] { tree_height_reduction(fn); });
  timed_pass("pass.cleanup", fn, "after cleanup", [&] { run_cleanup(fn); });
  if (opts.schedule)
    timed_pass("pass.schedule", fn, "after scheduling",
               [&] { schedule_function(fn, machine); });
  fn.renumber();
}

void compile_at_level(Function& fn, OptLevel level, const MachineModel& machine,
                      const CompileOptions& opts) {
  compile_with_transforms(fn, TransformSet::for_level(level), machine, opts);
}

}  // namespace ilp
