// Accumulator variable expansion (paper Figure 2).
//
// For each register V in a simple loop where
//   1. all instructions modifying V are increment/decrement instructions
//      (V = V + x, V = V - x; integer or floating point),
//   2. V is referenced only by those instructions inside the loop,
//   3. there is more than one such instruction (i.e. the loop is unrolled),
// the k definitions get k temporary accumulators: the first initialized to
// V, the rest to zero, each replacing one definition; every loop exit gains
// a summation of the temporaries into V.  This removes the flow, anti and
// output dependences between the accumulation instructions — the critical
// path of reduction loops (Figure 3).
//
// Floating-point expansion reassociates the reduction, as in the paper.
#pragma once

#include "ir/function.hpp"
#include "support/compile_ctx.hpp"

namespace ilp {

struct AccExpandOptions {
  // Extension beyond the paper's algorithm: also expand multiplicative
  // accumulators (V = V * x) with temporaries initialized to 1.
  bool expand_products = false;
};

// Returns the number of accumulators expanded.
int accumulator_expansion(Function& fn, const AccExpandOptions& opts,
                          CompileContext& ctx);

// Convenience overload on the calling thread's pooled context.
int accumulator_expansion(Function& fn, const AccExpandOptions& opts = {});

}  // namespace ilp
