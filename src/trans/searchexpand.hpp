// Search variable expansion (paper Section 2, "Search Variable Expansion").
//
// A search variable accumulates a maximum or minimum across iterations
// ("a single value, such as a maximum or minimum, is often determined for
// matrices or arrays").  The front end if-converts `if (x > V) V = x` into
// select-form FMAX/FMIN/IMAX/IMIN updates during superblock formation, so
// inside an unrolled body the pattern is a chain of k dependent max/min
// updates of V.  Expansion gives each update its own temporary — every
// temporary initialized to V, which is the identity for the running
// max/min — and compares the temporaries into V at every loop exit.
#pragma once

#include "ir/function.hpp"
#include "support/compile_ctx.hpp"

namespace ilp {

// Returns the number of search variables expanded.
int search_expansion(Function& fn, CompileContext& ctx);

// Convenience overload on the calling thread's pooled context.
int search_expansion(Function& fn);

}  // namespace ilp
