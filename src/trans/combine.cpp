#include "trans/combine.hpp"

#include <cmath>
#include <optional>

#include "ir/reg.hpp"
#include "support/assert.hpp"

namespace ilp {

namespace {

bool is_int_addsub_imm(const Instruction& in) {
  return (in.op == Opcode::IADD || in.op == Opcode::ISUB) && in.src2_is_imm;
}
bool is_fp_addsub_imm(const Instruction& in) {
  return (in.op == Opcode::FADD || in.op == Opcode::FSUB) && in.src2_is_imm;
}
bool is_fp_muldiv_imm(const Instruction& in) {
  return (in.op == Opcode::FMUL || in.op == Opcode::FDIV) && in.src2_is_imm;
}
bool is_int_branch(const Instruction& in) {
  return in.is_branch() && !op_is_fp_compare(in.op);
}

// The register whose producing instruction we try to combine away, for a
// given I2 form; invalid Reg if the form is not combinable.
Reg combinable_source(const Instruction& i2) {
  if (is_int_addsub_imm(i2) || is_fp_addsub_imm(i2) || is_fp_muldiv_imm(i2)) return i2.src1;
  if (i2.op == Opcode::IMUL && i2.src2_is_imm) return i2.src1;
  if (i2.is_memory()) return i2.src1;  // address base; offset is the constant
  if (i2.is_branch() && i2.src2_is_imm) return i2.src1;
  return kNoReg;
}

// Attempts to rewrite `i2` to read `i1`'s source instead of its result.
// Returns the rewritten instruction, or nullopt when the pair is not
// combinable (including int-overflow aborts).
std::optional<Instruction> combine_pair(const Instruction& i1, const Instruction& i2) {
  Instruction out = i2;

  // ---- Integer add/sub producer. ----
  if (is_int_addsub_imm(i1) && i1.dst.is_int()) {
    const std::int64_t d1 = i1.op == Opcode::IADD ? i1.ival : -i1.ival;
    if (is_int_addsub_imm(i2)) {
      const std::int64_t d2 = i2.op == Opcode::IADD ? i2.ival : -i2.ival;
      std::int64_t net = 0;
      if (__builtin_add_overflow(d1, d2, &net) || net == INT64_MIN) return std::nullopt;
      out.op = net >= 0 ? Opcode::IADD : Opcode::ISUB;
      out.ival = net >= 0 ? net : -net;
      out.src1 = i1.src1;
      return out;
    }
    if (i2.is_memory() && i2.src1 == i1.dst) {
      std::int64_t off = 0;
      if (__builtin_add_overflow(i2.ival, d1, &off)) return std::nullopt;
      out.ival = off;
      out.src1 = i1.src1;
      return out;
    }
    if (is_int_branch(i2) && i2.src2_is_imm) {
      std::int64_t c = 0;
      if (__builtin_sub_overflow(i2.ival, d1, &c)) return std::nullopt;
      out.ival = c;
      out.src1 = i1.src1;
      return out;
    }
    return std::nullopt;
  }

  // ---- Integer multiply producer. ----
  if (i1.op == Opcode::IMUL && i1.src2_is_imm) {
    if (i2.op != Opcode::IMUL || !i2.src2_is_imm) return std::nullopt;
    std::int64_t c = 0;
    if (__builtin_mul_overflow(i1.ival, i2.ival, &c)) return std::nullopt;
    out.ival = c;
    out.src1 = i1.src1;
    return out;
  }

  // ---- FP add/sub producer. ----
  if (is_fp_addsub_imm(i1)) {
    const double d1 = i1.op == Opcode::FADD ? i1.fval : -i1.fval;
    if (is_fp_addsub_imm(i2)) {
      const double d2 = i2.op == Opcode::FADD ? i2.fval : -i2.fval;
      const double net = d1 + d2;
      if (!std::isfinite(net)) return std::nullopt;
      out.op = Opcode::FADD;
      out.fval = net;
      out.src1 = i1.src1;
      return out;
    }
    if (op_is_fp_compare(i2.op) && i2.src2_is_imm) {
      const double c = i2.fval - d1;
      if (!std::isfinite(c)) return std::nullopt;
      out.fval = c;
      out.src1 = i1.src1;
      return out;
    }
    return std::nullopt;
  }

  // ---- FP multiply/divide producer. ----
  if (is_fp_muldiv_imm(i1)) {
    if (!is_fp_muldiv_imm(i2)) return std::nullopt;
    const bool m1 = i1.op == Opcode::FMUL;
    const bool m2 = i2.op == Opcode::FMUL;
    double c = 0.0;
    Opcode op = Opcode::FMUL;
    if (m1 && m2) {
      c = i1.fval * i2.fval;
      op = Opcode::FMUL;
    } else if (m1 && !m2) {
      c = i1.fval / i2.fval;
      op = Opcode::FMUL;
    } else if (!m1 && m2) {
      c = i2.fval / i1.fval;
      op = Opcode::FMUL;
    } else {
      c = i1.fval * i2.fval;
      op = Opcode::FDIV;
    }
    if (!std::isfinite(c) || c == 0.0) return std::nullopt;
    out.op = op;
    out.fval = c;
    out.src1 = i1.src1;
    return out;
  }

  return std::nullopt;
}

// Legality of moving rewritten `i2p` from position j to just before i
// ("exchange positions", needed when I1 increments its own source).
bool can_exchange(const Block& b, std::size_t i, std::size_t j, const Instruction& i2p) {
  if (i2p.is_branch()) return false;  // never reorder control
  for (std::size_t k = i; k < j; ++k) {
    const Instruction& x = b.insts[k];
    if (x.is_control()) return false;
    // X must not write i2p's sources (the pre-increment read is the point of
    // the exchange, so the producer's own write of src1 at k == i is fine
    // for the source it rewrote; any other hazard aborts).
    if (k != i) {
      if (x.has_dest() && i2p.reads(x.dst)) return false;
    } else {
      // The producer may only redefine the register i2p now reads *as* the
      // pre-increment value (its own source); other overlaps abort.
      if (x.has_dest() && i2p.reads(x.dst) && x.dst != x.src1) return false;
    }
    if (i2p.has_dest() && (x.reads(i2p.dst) || (x.has_dest() && x.dst == i2p.dst)))
      return false;
    // Memory hazards: conservatively keep relative order of memory ops.
    if (i2p.is_load() && x.is_store()) return false;
    if (i2p.is_store() && x.is_memory()) return false;
  }
  return true;
}

// Phase 1 rewrites memory and branch consumers only; phase 2 collapses
// arithmetic chains.  Doing memory/branches first matters: once an address
// chain like "r37 = r6+4; r6 = r37+4" collapses to "r6 = r6+8", later
// references through the old names can no longer be rewritten, and the
// self-incremented register pins every reference behind an anti-dependence
// mid-block (serializing unrolled copies).
int combine_block_phase(Block& b, bool memory_and_branches) {
  int combined = 0;
  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 64) {
    changed = false;
    for (std::size_t j = 0; j < b.insts.size(); ++j) {
      const bool is_mb = b.insts[j].is_memory() || b.insts[j].is_branch();
      if (is_mb != memory_and_branches) continue;
      const Reg r1 = combinable_source(b.insts[j]);
      if (!r1.valid()) continue;

      // Nearest preceding definition of r1.
      std::size_t i = j;
      bool found = false;
      while (i-- > 0) {
        if (b.insts[i].writes(r1)) {
          found = true;
          break;
        }
      }
      if (!found) continue;
      const Instruction i1 = b.insts[i];

      auto i2p = combine_pair(i1, b.insts[j]);
      if (!i2p) continue;

      const bool self_inc = i1.has_dest() && i1.dst == i1.src1;
      // The rewritten source must still hold I1's input at j.
      bool src_clobbered = false;
      for (std::size_t k = i + 1; k < j; ++k)
        if (b.insts[k].writes(i1.src1)) src_clobbered = true;
      if (src_clobbered) continue;

      if (!self_inc) {
        b.insts[j] = *i2p;
        ++combined;
        changed = true;
        continue;
      }
      // Producer overwrote its own source: exchange positions.
      if (!can_exchange(b, i, j, *i2p)) continue;
      b.insts.erase(b.insts.begin() + static_cast<std::ptrdiff_t>(j));
      b.insts.insert(b.insts.begin() + static_cast<std::ptrdiff_t>(i), *i2p);
      ++combined;
      changed = true;
    }
  }
  return combined;
}

int combine_block(Block& b) {
  int n = combine_block_phase(b, /*memory_and_branches=*/true);
  n += combine_block_phase(b, /*memory_and_branches=*/false);
  n += combine_block_phase(b, /*memory_and_branches=*/true);
  return n;
}

}  // namespace

int operation_combining(Function& fn) {
  int n = 0;
  for (Block& b : fn.blocks()) n += combine_block(b);
  if (n > 0) fn.renumber();
  return n;
}

}  // namespace ilp
