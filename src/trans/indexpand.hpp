// Induction variable expansion (paper Figure 4).
//
// For a register V in a simple loop where every definition is
// "V = V + m" / "V = V - m" with the *same* loop-invariant m (immediate or
// invariant register), there is more than one such definition, and V has at
// least one other use (distinguishing it from an accumulator):
//
//   1. allocate k+1 temporaries p_0..p_k and an increment z = k*m,
//   2. initialize p_i = V + i*m in the preheader,
//   3. uses before the first update read p_0, uses between update i and i+1
//      read p_i, uses after update k read p_k,
//   4. remove the k updates; before the back edge, bump every p_i by z.
//
// This removes the serial chain of index updates feeding address
// computations (Figure 5: 2.7 -> 2.0 cycles/iteration at 3x unroll).
//
// Deviations needed for a working compiler (see DESIGN.md):
//   * If the back-edge branch itself tests V, it is rewritten to test p_k
//     against bound+z (the bumps execute before the branch).
//   * V's value at each exit is recovered: p_0 post-bump equals V at the
//     fall-through exit; p_i equals V at a side exit crossed after i updates.
#pragma once

#include "ir/function.hpp"
#include "support/compile_ctx.hpp"

namespace ilp {

// Returns the number of induction variables expanded.
int induction_expansion(Function& fn, CompileContext& ctx);

// Convenience overload on the calling thread's pooled context.
int induction_expansion(Function& fn);

}  // namespace ilp
