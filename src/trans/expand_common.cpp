#include "trans/expand_common.hpp"

#include "support/assert.hpp"

namespace ilp {

BlockId splice_fallthrough_fixup(Function& fn, const SimpleLoop& loop,
                                 const std::vector<Instruction>& code) {
  const BlockId fix = fn.insert_block_after(loop.body, fn.block(loop.body).name + ".fx");
  Block& fb = fn.block(fix);
  fb.insts = code;
  return fix;
}

BlockId splice_side_exit_fixup(Function& fn, const SimpleLoop& loop,
                               std::size_t side_exit_idx,
                               const std::vector<Instruction>& code) {
  Block& body = fn.block(loop.body);
  Instruction& br = body.insts[side_exit_idx];
  ILP_ASSERT(br.is_branch(), "side exit index must be a branch");
  const BlockId target = br.target;
  // Place the stub at the very end of the layout (it ends in a jump).
  const BlockId last = fn.blocks().back().id;
  const BlockId stub = fn.insert_block_after(last, fn.block(loop.body).name + ".se");
  Block& sb = fn.block(stub);
  sb.insts = code;
  sb.insts.push_back(make_jump(target));
  fn.block(loop.body).insts[side_exit_idx].target = stub;
  return stub;
}

void append_to_preheader(Function& fn, const SimpleLoop& loop,
                         const std::vector<Instruction>& code) {
  Block& pre = fn.block(loop.preheader);
  const std::size_t pos = pre.has_terminator() ? pre.insts.size() - 1 : pre.insts.size();
  pre.insts.insert(pre.insts.begin() + static_cast<std::ptrdiff_t>(pos), code.begin(),
                   code.end());
}

std::vector<Instruction> make_fold(Opcode op, Reg dst, const std::vector<Reg>& values) {
  ILP_ASSERT(!values.empty(), "make_fold needs at least one value");
  std::vector<Instruction> out;
  if (values.size() == 1) {
    out.push_back(make_unary(dst.cls == RegClass::Fp ? Opcode::FMOV : Opcode::IMOV, dst,
                             values[0]));
    return out;
  }
  out.push_back(make_binary(op, dst, values[0], values[1]));
  for (std::size_t i = 2; i < values.size(); ++i)
    out.push_back(make_binary(op, dst, dst, values[i]));
  return out;
}

}  // namespace ilp
