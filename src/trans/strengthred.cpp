#include "trans/strengthred.hpp"

#include <cstdlib>
#include <vector>

#include "ir/reg.hpp"
#include "support/assert.hpp"

namespace ilp {

namespace {

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
int log2_u64(std::uint64_t v) { return 63 - __builtin_clzll(v); }

// Signed magic numbers (Hacker's Delight, 2nd ed., Fig. 10-1) for 64-bit
// division by a constant d with |d| >= 2.
struct Magic {
  std::int64_t m = 0;
  int s = 0;
};

Magic signed_magic(std::int64_t d) {
  const std::uint64_t two63 = 1ull << 63;
  const std::uint64_t ad = d < 0 ? 0ull - static_cast<std::uint64_t>(d)
                                 : static_cast<std::uint64_t>(d);
  const std::uint64_t t = two63 + (static_cast<std::uint64_t>(d) >> 63);
  const std::uint64_t anc = t - 1 - t % ad;
  int p = 63;
  std::uint64_t q1 = two63 / anc;
  std::uint64_t r1 = two63 - q1 * anc;
  std::uint64_t q2 = two63 / ad;
  std::uint64_t r2 = two63 - q2 * ad;
  std::uint64_t delta = 0;
  do {
    ++p;
    q1 *= 2;
    r1 *= 2;
    if (r1 >= anc) {
      ++q1;
      r1 -= anc;
    }
    q2 *= 2;
    r2 *= 2;
    if (r2 >= ad) {
      ++q2;
      r2 -= ad;
    }
    delta = ad - r2;
  } while (q1 < delta || (q1 == delta && r1 == 0));
  Magic mag;
  mag.m = static_cast<std::int64_t>(q2 + 1);
  if (d < 0) mag.m = -mag.m;
  mag.s = p - 64;
  return mag;
}

class Reducer {
 public:
  Reducer(Function& fn, const StrengthRedOptions& opts) : fn_(fn), opts_(opts) {}

  int run() {
    int n = 0;
    for (Block& b : fn_.blocks()) {
      std::vector<Instruction> out;
      out.reserve(b.insts.size());
      for (const Instruction& in : b.insts) {
        const std::size_t before = out.size();
        if (try_reduce(in, out)) {
          ++n;
          (void)before;
          continue;
        }
        out.push_back(in);
      }
      b.insts = std::move(out);
    }
    if (n > 0) fn_.renumber();
    return n;
  }

 private:
  bool try_reduce(const Instruction& in, std::vector<Instruction>& out) {
    if (!in.src2_is_imm) return false;
    switch (in.op) {
      case Opcode::IMUL:
        return opts_.reduce_mul && reduce_mul(in, out);
      case Opcode::IDIV:
        if (in.ival == 0) return false;
        if (is_pow2(std::llabs(in.ival)))
          return opts_.reduce_div_pow2 && reduce_div_pow2(in, out);
        return opts_.reduce_div_magic && std::llabs(in.ival) >= 2 &&
               in.ival != INT64_MIN && reduce_div_magic(in, out);
      case Opcode::IREM:
        if (in.ival == 0 || in.ival == INT64_MIN) return false;
        return opts_.reduce_rem_pow2 && is_pow2(std::llabs(in.ival)) &&
               reduce_rem_pow2(in, out);
      default:
        return false;
    }
  }

  // x * C  ->  shifts/adds when the dependence height beats IntMul (3).
  bool reduce_mul(const Instruction& in, std::vector<Instruction>& out) {
    const std::int64_t c = in.ival;
    if (c == 0 || c == 1) return false;  // handled by algebraic simplification
    if (c == -1) {
      out.push_back(make_unary(Opcode::INEG, in.dst, in.src1));
      return true;
    }
    const bool neg = c < 0;
    if (c == INT64_MIN) return false;
    const std::uint64_t a = static_cast<std::uint64_t>(neg ? -c : c);

    if (is_pow2(a)) {  // height 1 (+1 for negation, still < 3)
      const int k = log2_u64(a);
      if (neg) {
        const Reg t = fn_.new_int_reg();
        out.push_back(make_binary_imm(Opcode::ISHL, t, in.src1, k));
        out.push_back(make_unary(Opcode::INEG, in.dst, t));
      } else {
        out.push_back(make_binary_imm(Opcode::ISHL, in.dst, in.src1, k));
      }
      return true;
    }
    if (neg) return false;  // two terms + neg = height 3: no better than IMUL

    // a = 2^hi + 2^lo  (two set bits): shl, shl, add — height 2.
    if (__builtin_popcountll(a) == 2) {
      const int hi = log2_u64(a);
      const int lo = __builtin_ctzll(a);
      const Reg t1 = fn_.new_int_reg();
      out.push_back(make_binary_imm(Opcode::ISHL, t1, in.src1, hi));
      if (lo == 0) {
        out.push_back(make_binary(Opcode::IADD, in.dst, t1, in.src1));
      } else {
        const Reg t2 = fn_.new_int_reg();
        out.push_back(make_binary_imm(Opcode::ISHL, t2, in.src1, lo));
        out.push_back(make_binary(Opcode::IADD, in.dst, t1, t2));
      }
      return true;
    }
    // a = 2^hi - 2^lo: shl, shl, sub — height 2.  (a + 2^ctz(a) is a power
    // of two exactly in this case.)
    {
      const std::uint64_t lo_bit = a & (0ull - a);
      if (is_pow2(a + lo_bit) && a + lo_bit != 0) {
        const int hi = log2_u64(a + lo_bit);
        const int lo = __builtin_ctzll(a);
        if (hi <= 62) {
          const Reg t1 = fn_.new_int_reg();
          out.push_back(make_binary_imm(Opcode::ISHL, t1, in.src1, hi));
          if (lo == 0) {
            out.push_back(make_binary(Opcode::ISUB, in.dst, t1, in.src1));
          } else {
            const Reg t2 = fn_.new_int_reg();
            out.push_back(make_binary_imm(Opcode::ISHL, t2, in.src1, lo));
            out.push_back(make_binary(Opcode::ISUB, in.dst, t1, t2));
          }
          return true;
        }
      }
    }
    return false;
  }

  // Emits the round-toward-zero shift sequence for x / 2^k into `q`.
  void emit_div_pow2(const Reg& x, int k, const Reg& q, std::vector<Instruction>& out) {
    // t1 = x >> 63 (all sign bits); t2 = t1 & (2^k - 1); q = (x + t2) >> k.
    const Reg t1 = fn_.new_int_reg();
    const Reg t2 = fn_.new_int_reg();
    const Reg t3 = fn_.new_int_reg();
    out.push_back(make_binary_imm(Opcode::ISHRA, t1, x, 63));
    out.push_back(make_binary_imm(Opcode::IAND, t2, t1, (std::int64_t{1} << k) - 1));
    out.push_back(make_binary(Opcode::IADD, t3, x, t2));
    out.push_back(make_binary_imm(Opcode::ISHRA, q, t3, k));
  }

  bool reduce_div_pow2(const Instruction& in, std::vector<Instruction>& out) {
    const bool neg = in.ival < 0;
    const std::uint64_t a = static_cast<std::uint64_t>(neg ? -in.ival : in.ival);
    const int k = log2_u64(a);
    if (k == 0) return false;  // |c| == 1: algebraic
    if (neg) {
      const Reg q = fn_.new_int_reg();
      emit_div_pow2(in.src1, k, q, out);
      out.push_back(make_unary(Opcode::INEG, in.dst, q));
    } else {
      emit_div_pow2(in.src1, k, in.dst, out);
    }
    return true;
  }

  bool reduce_rem_pow2(const Instruction& in, std::vector<Instruction>& out) {
    // x % (+/-2^k) = x - (x / 2^k) * 2^k  (C truncation: sign of dividend).
    const std::uint64_t a =
        static_cast<std::uint64_t>(in.ival < 0 ? -in.ival : in.ival);
    const int k = log2_u64(a);
    if (k == 0) {  // x % 1 == 0
      out.push_back(make_ldi(in.dst, 0));
      return true;
    }
    const Reg q = fn_.new_int_reg();
    emit_div_pow2(in.src1, k, q, out);
    const Reg m = fn_.new_int_reg();
    out.push_back(make_binary_imm(Opcode::ISHL, m, q, k));
    out.push_back(make_binary(Opcode::ISUB, in.dst, in.src1, m));
    return true;
  }

  bool reduce_div_magic(const Instruction& in, std::vector<Instruction>& out) {
    const std::int64_t d = in.ival;
    const Magic mag = signed_magic(d);
    const Reg x = in.src1;
    const Reg mreg = fn_.new_int_reg();
    const Reg hi = fn_.new_int_reg();
    out.push_back(make_ldi(mreg, mag.m));
    out.push_back(make_binary(Opcode::IMULH, hi, x, mreg));
    Reg q = hi;
    if (d > 0 && mag.m < 0) {
      const Reg t = fn_.new_int_reg();
      out.push_back(make_binary(Opcode::IADD, t, hi, x));
      q = t;
    } else if (d < 0 && mag.m > 0) {
      const Reg t = fn_.new_int_reg();
      out.push_back(make_binary(Opcode::ISUB, t, hi, x));
      q = t;
    }
    if (mag.s > 0) {
      const Reg t = fn_.new_int_reg();
      out.push_back(make_binary_imm(Opcode::ISHRA, t, q, mag.s));
      q = t;
    }
    // q += sign bit of q (round toward zero).
    const Reg sign = fn_.new_int_reg();
    out.push_back(make_binary_imm(Opcode::ISHRL, sign, q, 63));
    out.push_back(make_binary(Opcode::IADD, in.dst, q, sign));
    return true;
  }

  Function& fn_;
  StrengthRedOptions opts_;
};

}  // namespace

int strength_reduction(Function& fn, const StrengthRedOptions& opts) {
  return Reducer(fn, opts).run();
}

}  // namespace ilp
