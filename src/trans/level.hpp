// The cumulative transformation levels of the paper's evaluation
// (Section 3.2):
//
//   Conv  conventional scalar optimizations only
//   Lev1  + loop unrolling
//   Lev2  + register renaming
//   Lev3  + operation combining, strength reduction, tree height reduction
//   Lev4  + accumulator / induction / search variable expansion
//
// Pipeline order (each level enables a subset):
//   conventional -> unroll -> expansions (pre-renaming, so the recurrence
//   registers still carry one name) -> renaming -> combining/strength/height
//   -> cleanup -> superblock scheduling.
#pragma once

#include "ir/function.hpp"
#include "machine/machine.hpp"
#include "trans/unroll.hpp"

namespace ilp {

enum class OptLevel { Conv = 0, Lev1 = 1, Lev2 = 2, Lev3 = 3, Lev4 = 4 };

inline const char* level_name(OptLevel l) {
  switch (l) {
    case OptLevel::Conv: return "Conv";
    case OptLevel::Lev1: return "Lev1";
    case OptLevel::Lev2: return "Lev2";
    case OptLevel::Lev3: return "Lev3";
    case OptLevel::Lev4: return "Lev4";
  }
  return "?";
}

struct CompileOptions {
  UnrollOptions unroll;
  bool schedule = true;  // superblock-schedule at the end
};

// Applies the full pipeline for `level`, scheduling for `machine`.
void compile_at_level(Function& fn, OptLevel level, const MachineModel& machine,
                      const CompileOptions& opts = {});

// Individual-transformation toggles, used by the ablation bench.
struct TransformSet {
  bool unroll = false;
  bool rename = false;
  bool combine = false;
  bool strength = false;
  bool height = false;
  bool acc_expand = false;
  bool ind_expand = false;
  bool search_expand = false;

  static TransformSet for_level(OptLevel level);
};

void compile_with_transforms(Function& fn, const TransformSet& set,
                             const MachineModel& machine, const CompileOptions& opts = {});

}  // namespace ilp
